// Sweep-grid tests: axis expansion counts and order, label defaults and
// overrides, multi-spec documents, error paths, and repeat expansion with
// derived seeds.
#include <gtest/gtest.h>

#include "harness/sweep_cli.h"
#include "harness/sweep_spec.h"

namespace lion {
namespace {

Json MustParse(const std::string& text) {
  Json v;
  Status s = Json::Parse(text, &v);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return v;
}

TEST(SweepSpecTest, ExpandsCartesianProductFirstAxisOutermost) {
  Json doc = MustParse(R"({
    "name": "G",
    "base": {"workload": "ycsb", "duration_s": 1},
    "axes": [
      {"path": "protocol", "values": ["2PC", "Lion"]},
      {"path": "ycsb.cross_ratio", "values": [0, 0.5, 1]}
    ]
  })");
  SweepSpec spec;
  ASSERT_TRUE(SweepSpec::FromJson(doc, &spec).ok());
  EXPECT_EQ(spec.num_points(), 6u);

  std::vector<SweepPoint> points;
  ASSERT_TRUE(spec.Expand(&points).ok());
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].name, "G/protocol=2PC/cross_ratio=0");
  EXPECT_EQ(points[1].name, "G/protocol=2PC/cross_ratio=0.5");
  EXPECT_EQ(points[3].name, "G/protocol=Lion/cross_ratio=0");
  EXPECT_EQ(points[0].config.protocol, "2PC");
  EXPECT_EQ(points[3].config.protocol, "Lion");
  EXPECT_DOUBLE_EQ(points[4].config.ycsb.cross_ratio, 0.5);
  // base applied to every point
  for (const SweepPoint& p : points) {
    EXPECT_EQ(p.config.workload, "ycsb");
    EXPECT_EQ(p.config.duration, 1 * kSecond);
  }
}

TEST(SweepSpecTest, ExplicitLabelsNamePoints) {
  Json doc = MustParse(R"({
    "name": "Fig7a",
    "axes": [
      {"path": "ycsb.cross_ratio", "values": [0, 0.2],
       "labels": ["cross=0", "cross=20"]}
    ]
  })");
  SweepSpec spec;
  ASSERT_TRUE(SweepSpec::FromJson(doc, &spec).ok());
  std::vector<SweepPoint> points;
  ASSERT_TRUE(spec.Expand(&points).ok());
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].name, "Fig7a/cross=0");
  EXPECT_EQ(points[1].name, "Fig7a/cross=20");
}

TEST(SweepSpecTest, NoAxesYieldsSinglePoint) {
  Json doc = MustParse(R"({"name": "solo", "base": {"protocol": "Leap"}})");
  std::vector<SweepPoint> points;
  ASSERT_TRUE(ExpandSweepDocument(doc, &points).ok());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].name, "solo");
  EXPECT_EQ(points[0].config.protocol, "Leap");
}

TEST(SweepSpecTest, ArrayDocumentConcatenatesSpecsInOrder) {
  Json doc = MustParse(R"([
    {"name": "A", "axes": [{"path": "seed", "values": [1, 2]}]},
    {"name": "B", "axes": [{"path": "seed", "values": [3]}]}
  ])");
  std::vector<SweepPoint> points;
  ASSERT_TRUE(ExpandSweepDocument(doc, &points).ok());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].name, "A/seed=1");
  EXPECT_EQ(points[2].name, "B/seed=3");
  EXPECT_EQ(points[2].config.seed, 3u);
}

TEST(SweepSpecTest, ErrorsCarryContext) {
  SweepSpec spec;
  Status s = SweepSpec::FromJson(MustParse(R"({"axes": []})"), &spec);
  ASSERT_TRUE(s.IsInvalidArgument());  // missing name
  s = SweepSpec::FromJson(
      MustParse(R"({"name": "x", "bogus": 1})"), &spec);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("bogus"), std::string::npos);
  s = SweepSpec::FromJson(
      MustParse(R"({"name": "x", "base": {"typo": 1}})"), &spec);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("base.typo"), std::string::npos) << s.message();
  s = SweepSpec::FromJson(
      MustParse(R"({"name": "x", "axes": [{"path": "seed", "values": []}]})"),
      &spec);
  ASSERT_TRUE(s.IsInvalidArgument());
  s = SweepSpec::FromJson(
      MustParse(
          R"({"name": "x",
              "axes": [{"path": "seed", "values": [1, 2], "labels": ["a"]}]})"),
      &spec);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("labels"), std::string::npos);

  // Unknown axis path surfaces at Expand with its location.
  ASSERT_TRUE(SweepSpec::FromJson(
                  MustParse(
                      R"({"name": "x",
                          "axes": [{"path": "nope.field", "values": [1]}]})"),
                  &spec)
                  .ok());
  std::vector<SweepPoint> points;
  s = spec.Expand(&points);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("nope.field"), std::string::npos) << s.message();
}

TEST(SweepSpecTest, ExpandRepeatDerivesSeedsAndNames) {
  std::vector<SweepPoint> points(2);
  points[0].name = "p0";
  points[0].config.seed = 10;
  points[1].name = "p1";
  points[1].config.seed = 20;

  std::vector<SweepPoint> same = ExpandRepeat(points, 1);
  ASSERT_EQ(same.size(), 2u);
  EXPECT_EQ(same[0].name, "p0");

  std::vector<SweepPoint> runs = ExpandRepeat(points, 3);
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs[0].name, "p0/rep=0");
  EXPECT_EQ(runs[2].name, "p0/rep=2");
  EXPECT_EQ(runs[3].name, "p1/rep=0");
  EXPECT_EQ(runs[0].config.seed, 10u);
  EXPECT_EQ(runs[2].config.seed, 12u);
  EXPECT_EQ(runs[5].config.seed, 22u);
}

}  // namespace
}  // namespace lion
