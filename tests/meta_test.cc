// Meta-protocol tests: fixed-seed determinism of the merged result JSON,
// adaptive flipping on drifting workloads, safe handoff (no stranded
// partitions, no parked stragglers), meta-off emission parity, child-name
// validation, and the seasonal-naive predictor (per-class rule and the
// per-partition forecast path the meta protocol consumes).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/seasonal_predictor.h"
#include "harness/experiment.h"
#include "protocols/meta_protocol.h"

namespace lion {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.workers_per_node = 4;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 500;
  cfg.record_bytes = 100;
  cfg.init_replicas = 2;
  cfg.remaster_base_delay = 1 * kMillisecond;
  return cfg;
}

/// A drifting hotspot over a small cluster: the phase changes every 200 ms,
/// so a 700 ms run crosses several regimes and the meta protocol has both
/// reason and time (70 epochs) to flip partitions.
ExperimentBuilder MetaBuilder() {
  ExperimentBuilder builder;
  builder.Protocol("meta").Workload("ycsb-hotspot-position");
  builder.config().cluster = SmallCluster();
  builder.DynamicPeriod(200 * kMillisecond);
  builder.Warmup(100 * kMillisecond).Duration(600 * kMillisecond).Seed(7);
  return builder;
}

TEST(MetaExperimentTest, FixedSeedRunsAreByteIdentical) {
  ExperimentResult first, second;
  ASSERT_TRUE(MetaBuilder().Run(&first).ok());
  ASSERT_TRUE(MetaBuilder().Run(&second).ok());
  EXPECT_GT(first.committed, 0u);
  EXPECT_EQ(first.ToJson(), second.ToJson());
}

TEST(MetaExperimentTest, FlipsPartitionsOnDriftingWorkload) {
  std::unique_ptr<Experiment> exp;
  ExperimentBuilder builder = MetaBuilder();
  ASSERT_TRUE(builder.Build(&exp).ok());
  ExperimentResult res = exp->Run();

  EXPECT_TRUE(res.meta_active);
  ASSERT_EQ(res.meta_children.size(), 2u);
  EXPECT_EQ(res.meta_children[0], "2PC");
  EXPECT_EQ(res.meta_children[1], "Star");
  EXPECT_GE(res.protocol_switches.size(), 1u);

  auto* meta = dynamic_cast<MetaProtocol*>(exp->protocol());
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->switches_completed(), res.protocol_switches.size());
  // Safe handoff: nothing mid-switch, nothing parked once the run is over.
  EXPECT_FALSE(meta->SwitchInProgress());
  EXPECT_EQ(meta->parked(), 0u);

  // The assignment histogram covers every partition exactly once.
  uint64_t assigned = 0;
  for (uint64_t n : res.meta_assignment) assigned += n;
  EXPECT_EQ(assigned, static_cast<uint64_t>(SmallCluster().num_nodes *
                                            SmallCluster().partitions_per_node));

  std::string json = res.ToJson();
  EXPECT_NE(json.find("\"meta\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol_switches\""), std::string::npos);
}

TEST(MetaExperimentTest, MetaOffEmitsNoMetaFields) {
  ExperimentBuilder builder;
  builder.Protocol("2PC").Workload("ycsb");
  builder.config().cluster = SmallCluster();
  builder.Warmup(50 * kMillisecond).Duration(200 * kMillisecond).Seed(7);

  ExperimentResult res;
  ASSERT_TRUE(builder.Run(&res).ok());
  EXPECT_FALSE(res.meta_active);
  std::string json = res.ToJson();
  EXPECT_EQ(json.find("\"meta\""), std::string::npos);
  EXPECT_EQ(json.find("protocol_switches"), std::string::npos);
}

TEST(MetaExperimentTest, ValidateRejectsUnknownChild) {
  ExperimentBuilder builder = MetaBuilder();
  builder.config().meta.single_master = "NoSuchProtocol";
  EXPECT_FALSE(builder.Validate().ok());
}

TEST(MetaExperimentTest, ValidateRejectsSelfNesting) {
  ExperimentBuilder builder = MetaBuilder();
  builder.config().meta.wan = "meta";
  EXPECT_FALSE(builder.Validate().ok());
}

TEST(MetaExperimentTest, PredictorOffStillAdapts) {
  // With the predictor disabled the decision rule falls back to the
  // observed EWMAs alone; the drifting workload must still trigger flips.
  ExperimentBuilder builder = MetaBuilder();
  builder.config().predictor.kind = "off";
  ExperimentResult res;
  ASSERT_TRUE(builder.Run(&res).ok());
  EXPECT_TRUE(res.meta_active);
  EXPECT_GE(res.protocol_switches.size(), 1u);
}

// --- seasonal-naive predictor ------------------------------------------------

/// Exposes the protected per-class forecast rule for direct testing.
class SeasonalProbe : public SeasonalPredictor {
 public:
  explicit SeasonalProbe(PredictorConfig cfg) : SeasonalPredictor(cfg) {}
  double Forecast(const std::vector<double>& series, int horizon) const {
    WorkloadClass cls;
    cls.series = series;
    return ForecastClass(cls, horizon);
  }
};

TEST(SeasonalPredictorTest, ForecastRepeatsLastSeason) {
  PredictorConfig cfg;
  cfg.seasonal_period = 4;
  SeasonalProbe probe(cfg);
  const std::vector<double> s = {1, 2, 3, 4, 10, 20, 30, 40};
  // ŷ(T+h) = y(T+h−m): indices 4..7 are the last observed season.
  EXPECT_DOUBLE_EQ(probe.Forecast(s, 1), 10.0);
  EXPECT_DOUBLE_EQ(probe.Forecast(s, 2), 20.0);
  EXPECT_DOUBLE_EQ(probe.Forecast(s, 4), 40.0);
  // Beyond one season the forecast wraps: h and h+m agree.
  EXPECT_DOUBLE_EQ(probe.Forecast(s, 5), 10.0);
  // Nonpositive horizons clamp to one interval ahead.
  EXPECT_DOUBLE_EQ(probe.Forecast(s, 0), 10.0);
}

TEST(SeasonalPredictorTest, ShortSeriesFallsBackToNaive) {
  PredictorConfig cfg;
  cfg.seasonal_period = 4;
  SeasonalProbe probe(cfg);
  EXPECT_DOUBLE_EQ(probe.Forecast({5, 7}, 1), 7.0);  // < one full season
  EXPECT_DOUBLE_EQ(probe.Forecast({}, 1), 0.0);

  cfg.seasonal_period = 1;  // m = 1 degenerates to the plain naive rule
  SeasonalProbe naive(cfg);
  EXPECT_DOUBLE_EQ(naive.Forecast({3, 8}, 3), 8.0);
}

TEST(SeasonalPredictorTest, ForecastPartitionsTracksPeriodicLoad) {
  PredictorConfig cfg;
  cfg.sample_interval = 10 * kMillisecond;
  cfg.seasonal_period = 2;
  SeasonalPredictor pred(cfg);
  // Partition 1 alternates 2 and 6 txns per interval (period 2).
  SimTime t = 0;
  for (int interval = 0; interval < 6; ++interval) {
    int count = (interval % 2 == 0) ? 2 : 6;
    for (int i = 0; i < count; ++i) pred.OnTxn({1}, t);
    t += cfg.sample_interval;
  }
  std::vector<double> out;
  pred.ForecastPartitions(t, /*horizon=*/1, &out);
  // Last closed season is (2, 6); one interval ahead of ...,2,6 repeats 2.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(SeasonalPredictorTest, RunsEndToEndUnderLion) {
  ExperimentBuilder builder;
  builder.Protocol("Lion").Workload("ycsb-hotspot-interval");
  builder.config().cluster = SmallCluster();
  builder.config().predictor.kind = "seasonal";
  builder.config().predictor.seasonal_period = 5;
  builder.DynamicPeriod(200 * kMillisecond);
  builder.Warmup(100 * kMillisecond).Duration(400 * kMillisecond).Seed(7);
  ExperimentResult res;
  ASSERT_TRUE(builder.Run(&res).ok());
  EXPECT_GT(res.committed, 0u);
}

}  // namespace
}  // namespace lion
