// Interplay between transaction execution and partition blocking: operations
// must wait out in-flight remastering (split-brain avoidance, Sec. III), and
// execution resumes correctly against the post-remaster placement.
#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "replication/cluster.h"
#include "sim/simulator.h"
#include "txn/two_phase_engine.h"

namespace lion {
namespace {

ClusterConfig Cfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 1;
  cfg.records_per_partition = 100;
  cfg.record_bytes = 100;
  cfg.remaster_base_delay = 2 * kMillisecond;
  return cfg;
}

TxnPtr WriteTxn(TxnId id, std::vector<PartitionId> parts, Key key = 5) {
  auto txn = std::make_unique<Transaction>(id, 0);
  for (PartitionId pid : parts) {
    Operation op;
    op.partition = pid;
    op.key = key;
    op.type = OpType::kWrite;
    op.write_value = id;
    txn->ops().push_back(op);
  }
  return txn;
}

TEST(EngineWaitTest, LocalExecutionWaitsForRemasterToFinish) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  // Block partition 0 by remastering it to its secondary (n1).
  cluster.remaster().Remaster(0, 1, [](bool) {});
  ASSERT_TRUE(cluster.remaster().IsBlocked(0));

  // A transaction on partition 0 submitted during the block: it must wait
  // at least the remaining remaster time before committing.
  auto txn = WriteTxn(1, {0});
  SimTime done_at = -1;
  bool committed = false;
  engine.Run(txn.get(), cluster.PrimaryOf(0), TwoPhaseEngine::Options{},
             [&](bool ok) {
               committed = ok;
               done_at = sim.Now();
             });
  sim.RunUntilIdle();
  EXPECT_TRUE(committed);
  EXPECT_GE(done_at, cfg.remaster_base_delay);
  // The write landed after the promotion; n1 is the primary now.
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_EQ(cluster.store(0)->VersionOf(5), 2u);
}

TEST(EngineWaitTest, RemoteExecutionWaitsForRemoteBlock) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  // Distributed txn from n0 touching partitions 0 (local) and 1 (remote,
  // primary n1); partition 1 is mid-remaster to n2.
  cluster.remaster().Remaster(1, 2, [](bool) {});
  auto txn = WriteTxn(1, {0, 1});
  SimTime done_at = -1;
  engine.Run(txn.get(), 0, TwoPhaseEngine::Options{},
             [&](bool ok) {
               EXPECT_TRUE(ok);
               done_at = sim.Now();
             });
  sim.RunUntilIdle();
  EXPECT_GE(done_at, cfg.remaster_base_delay);
  EXPECT_EQ(txn->exec_class(), ExecClass::kDistributed);
  EXPECT_EQ(cluster.store(1)->VersionOf(5), 2u);
}

TEST(EngineWaitTest, PrimaryMovedBetweenExecutionAndPrepareForcesRetry) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  cfg.remaster_base_delay = 10 * kMicrosecond;  // fast flip mid-transaction
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  // Distributed txn executing against partition 1's primary n1. Flip the
  // primary while the txn is in its execution round trips: the prepare
  // handler detects the stale participant and votes no.
  auto txn = WriteTxn(1, {0, 1});
  bool result = true;
  bool finished = false;
  engine.Run(txn.get(), 0, TwoPhaseEngine::Options{}, [&](bool ok) {
    result = ok;
    finished = true;
  });
  sim.Schedule(30 * kMicrosecond, [&]() {
    cluster.remaster().Remaster(1, 2, [](bool) {});
  });
  sim.RunUntilIdle();
  ASSERT_TRUE(finished);
  if (!result) {
    // Aborted because the participant moved: locks must all be free.
    EXPECT_FALSE(cluster.store(0)->IsLockedByOther(5, 999));
    EXPECT_FALSE(cluster.store(1)->IsLockedByOther(5, 999));
    EXPECT_GE(metrics.aborts(), 1u);
  }
}

TEST(EngineWaitTest, ManyWaitersAllReleased) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  cluster.remaster().Remaster(0, 1, [](bool) {});
  int committed = 0;
  std::vector<TxnPtr> txns;
  for (int i = 0; i < 10; ++i) {
    txns.push_back(WriteTxn(i + 1, {0}, /*key=*/10 + i));  // disjoint keys
    engine.Run(txns.back().get(), 1, TwoPhaseEngine::Options{},
               [&](bool ok) { committed += ok ? 1 : 0; });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(committed, 10);
  EXPECT_FALSE(cluster.remaster().IsBlocked(0));
}

}  // namespace
}  // namespace lion
