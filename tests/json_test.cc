// Unit tests for the minimal JSON model: strict parsing, lossless number
// lexemes, escape handling, and error positions.
#include <gtest/gtest.h>

#include "common/json.h"

namespace lion {
namespace {

TEST(JsonTest, ParsesScalars) {
  Json v;
  ASSERT_TRUE(Json::Parse("null", &v).ok());
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(Json::Parse("true", &v).ok());
  bool b = false;
  ASSERT_TRUE(v.GetBool(&b).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(Json::Parse("-12.5e2", &v).ok());
  double d = 0;
  ASSERT_TRUE(v.GetDouble(&d).ok());
  EXPECT_DOUBLE_EQ(d, -1250.0);
  ASSERT_TRUE(Json::Parse("\"hi\"", &v).ok());
  EXPECT_EQ(v.str(), "hi");
}

TEST(JsonTest, ParsesContainers) {
  Json v;
  ASSERT_TRUE(Json::Parse(" { \"a\" : [1, 2, {\"b\": false}] , \"c\": {} } ",
                          &v)
                  .ok());
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 2u);
  const Json* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_TRUE(a->items()[2].Find("b")->is_bool());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, NumberLexemesSurviveRoundTrip) {
  // A uint64 beyond double precision must not be mangled.
  Json v;
  ASSERT_TRUE(Json::Parse("18446744073709551615", &v).ok());
  uint64_t u = 0;
  ASSERT_TRUE(v.GetUint64(&u).ok());
  EXPECT_EQ(u, 18446744073709551615ull);
  EXPECT_EQ(v.Dump(), "18446744073709551615");
}

TEST(JsonTest, DoubleEmissionIsShortestRoundTrip) {
  for (double d : {0.1, 1.0 / 3.0, 2.5e-9, 117.0 * 1024 * 1024, -0.25}) {
    Json v = Json::Double(d);
    Json back;
    ASSERT_TRUE(Json::Parse(v.Dump(), &back).ok());
    double parsed = 0;
    ASSERT_TRUE(back.GetDouble(&parsed).ok());
    EXPECT_EQ(parsed, d) << v.Dump();
  }
  EXPECT_EQ(Json::Double(0.1).Dump(), "0.1");
  EXPECT_EQ(Json::Double(2.0).Dump(), "2");
}

TEST(JsonTest, IntegerAccessorsRejectFractionsAndOverflow) {
  Json v;
  ASSERT_TRUE(Json::Parse("1.5", &v).ok());
  int64_t i = 0;
  EXPECT_TRUE(v.GetInt64(&i).IsInvalidArgument());
  uint64_t u = 0;
  ASSERT_TRUE(Json::Parse("-3", &v).ok());
  EXPECT_TRUE(v.GetUint64(&u).IsInvalidArgument());
  ASSERT_TRUE(Json::Parse("99999999999999999999999", &v).ok());
  EXPECT_TRUE(v.GetInt64(&i).IsInvalidArgument());
  ASSERT_TRUE(Json::Parse("\"5\"", &v).ok());
  EXPECT_TRUE(v.GetInt64(&i).IsInvalidArgument());
}

TEST(JsonTest, StringEscapes) {
  Json v;
  ASSERT_TRUE(
      Json::Parse("\"a\\n\\t\\\"q\\\\\\u0041\\u00e9\\ud83d\\ude00\"", &v)
          .ok());
  EXPECT_EQ(v.str(), "a\n\t\"q\\A\xC3\xA9\xF0\x9F\x98\x80");
  // Emission escapes control characters and quotes back out.
  Json s = Json::Str("line1\nline2\"q\"");
  Json back;
  ASSERT_TRUE(Json::Parse(s.Dump(), &back).ok());
  EXPECT_EQ(back.str(), s.str());
}

TEST(JsonTest, MalformedDocumentsAreInvalidArgument) {
  Json v;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "{\"a\":1,\"a\":2}", "\"unterminated", "\"bad\\q\"", "01", "- 1",
        "nul", "[1 2]", "\"\\ud800x\""}) {
    Status s = Json::Parse(bad, &v);
    EXPECT_TRUE(s.IsInvalidArgument()) << bad << " -> " << s.ToString();
  }
}

TEST(JsonTest, ErrorsCarryLineAndColumn) {
  Json v;
  Status s = Json::Parse("{\n  \"a\": tru\n}", &v);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("2:8"), std::string::npos) << s.message();
}

TEST(JsonTest, ParseFileMissingIsNotFound) {
  Json v;
  EXPECT_TRUE(Json::ParseFile("/nonexistent/x.json", &v).IsNotFound());
}

TEST(JsonTest, DumpIsStableAndCompact) {
  Json obj = Json::Object();
  obj.Set("b", Json::Int(1));
  obj.Set("a", Json::Array());
  EXPECT_EQ(obj.Dump(), "{\"b\":1,\"a\":[]}");  // insertion order, no ws
}

}  // namespace
}  // namespace lion
