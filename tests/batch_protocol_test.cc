// Direct tests of the shared BatchProtocol machinery via a minimal concrete
// subclass: epoch-aligned flushing, size-cap flushing, requeue-on-abort, and
// epoch-end commit visibility.
#include <gtest/gtest.h>

#include "protocols/batch_protocol.h"

namespace lion {
namespace {

/// Test double: commits every transaction instantly at execution time,
/// optionally aborting each transaction's first attempt.
class RecordingBatchProtocol : public BatchProtocol {
 public:
  RecordingBatchProtocol(Cluster* cluster, MetricsCollector* metrics,
                         size_t max_batch, bool abort_first_attempt)
      : BatchProtocol(cluster, metrics, max_batch),
        abort_first_(abort_first_attempt) {}

  std::string name() const override { return "test-batch"; }

  std::vector<size_t> batch_sizes;
  std::vector<SimTime> flush_times;

 protected:
  void ExecuteBatch(std::vector<Item> batch) override {
    batch_sizes.push_back(batch.size());
    flush_times.push_back(cluster_->sim()->Now());
    for (auto& item : batch) {
      TxnId id = (*item.txn)->id();
      if (abort_first_ && attempted_.insert(id).second) {
        Requeue(std::move(item));
        continue;
      }
      CommitAtEpochEnd(&item);
    }
  }

 private:
  bool abort_first_;
  std::set<TxnId> attempted_;
};

ClusterConfig Cfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.partitions_per_node = 1;
  cfg.records_per_partition = 100;
  cfg.record_bytes = 100;
  return cfg;
}

TxnPtr Txn(TxnId id) {
  auto t = std::make_unique<Transaction>(id, 0);
  Operation op;
  op.partition = 0;
  op.key = 1;
  op.type = OpType::kRead;
  t->ops().push_back(op);
  return t;
}

TEST(BatchProtocolTest, FlushesOncePerEpoch) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  RecordingBatchProtocol proto(&cluster, &metrics, 1000, false);
  proto.Start();
  int done = 0;
  for (int i = 0; i < 5; ++i) proto.Submit(Txn(i + 1), [&](TxnPtr) { done++; });
  sim.RunUntil(3 * cfg.epoch_interval);
  ASSERT_EQ(proto.batch_sizes.size(), 1u);  // empty batches are not flushed
  EXPECT_EQ(proto.batch_sizes[0], 5u);
  EXPECT_EQ(proto.flush_times[0], cfg.epoch_interval);
  EXPECT_EQ(done, 5);
}

TEST(BatchProtocolTest, SizeCapFlushesEarly) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  RecordingBatchProtocol proto(&cluster, &metrics, 3, false);
  proto.Start();
  for (int i = 0; i < 7; ++i) proto.Submit(Txn(i + 1), [](TxnPtr) {});
  // Two size-triggered flushes at t=0; the remaining txn waits for the epoch.
  ASSERT_GE(proto.batch_sizes.size(), 2u);
  EXPECT_EQ(proto.batch_sizes[0], 3u);
  EXPECT_EQ(proto.batch_sizes[1], 3u);
  EXPECT_EQ(proto.flush_times[0], 0);
  sim.RunUntil(2 * cfg.epoch_interval);
  ASSERT_EQ(proto.batch_sizes.size(), 3u);
  EXPECT_EQ(proto.batch_sizes[2], 1u);
}

TEST(BatchProtocolTest, RequeuedTxnsJoinNextBatchAndCommit) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  RecordingBatchProtocol proto(&cluster, &metrics, 1000, /*abort_first=*/true);
  proto.Start();
  int done = 0;
  for (int i = 0; i < 4; ++i) proto.Submit(Txn(i + 1), [&](TxnPtr) { done++; });
  sim.RunUntil(4 * cfg.epoch_interval);
  EXPECT_EQ(done, 4);
  EXPECT_EQ(metrics.aborts(), 4u);
  // First flush carries the 4 fresh txns; the second carries the 4 retries.
  ASSERT_GE(proto.batch_sizes.size(), 2u);
  EXPECT_EQ(proto.batch_sizes[0], 4u);
  EXPECT_EQ(proto.batch_sizes[1], 4u);
  // Restart counters were bumped by Requeue.
  EXPECT_EQ(metrics.committed(), 4u);
}

TEST(BatchProtocolTest, CommitVisibilityAtEpochBoundary) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  RecordingBatchProtocol proto(&cluster, &metrics, 1000, false);
  proto.Start();
  SimTime done_at = -1;
  proto.Submit(Txn(1), [&](TxnPtr t) {
    done_at = sim.Now();
    EXPECT_GT(t->breakdown().replication, 0);
  });
  sim.RunUntil(5 * cfg.epoch_interval);
  // Flushed at epoch 1, visible at epoch 2's boundary.
  EXPECT_EQ(done_at, 2 * cfg.epoch_interval);
}

}  // namespace
}  // namespace lion
