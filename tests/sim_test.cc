// Unit tests for the DES core: Simulator, Network, WorkerPool,
// PeriodicTimer.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/network.h"
#include "sim/periodic_timer.h"
#include "sim/simulator.h"
#include "sim/worker_pool.h"

namespace lion {
namespace {

// --- Simulator ----------------------------------------------------------------
// The core ordering contract is scheduler-independent: every test in this
// section runs against both the reference 4-ary heap and the calendar
// queue (tests/scheduler_equivalence_test.cc additionally asserts the two
// produce identical pop sequences on randomized workloads).

class SimulatorTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  SimConfig Cfg() const { return SimConfig{GetParam()}; }
};

INSTANTIATE_TEST_SUITE_P(
    Schedulers, SimulatorTest,
    ::testing::Values(SchedulerKind::kHeap, SchedulerKind::kCalendar),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      return info.param == SchedulerKind::kHeap ? "Heap" : "Calendar";
    });

TEST_P(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim(1, Cfg());
  std::vector<int> order;
  sim.Schedule(30, [&]() { order.push_back(3); });
  sim.Schedule(10, [&]() { order.push_back(1); });
  sim.Schedule(20, [&]() { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST_P(SimulatorTest, TiesRunFifo) {
  Simulator sim(1, Cfg());
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.Schedule(100, [&, i]() { order.push_back(i); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim(1, Cfg());
  int ran = 0;
  sim.Schedule(10, [&]() { ran++; });
  sim.Schedule(20, [&]() { ran++; });
  sim.Schedule(30, [&]() { ran++; });
  sim.RunUntil(20);
  EXPECT_EQ(ran, 2);           // events at t=10 and t=20 inclusive
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST_P(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim(1, Cfg());
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST_P(SimulatorTest, NestedScheduling) {
  Simulator sim(1, Cfg());
  SimTime inner_time = -1;
  sim.Schedule(10, [&]() {
    sim.Schedule(15, [&]() { inner_time = sim.Now(); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(inner_time, 25);
}

TEST_P(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim(1, Cfg());
  sim.Schedule(10, [&]() {
    sim.Schedule(-5, [&]() { EXPECT_EQ(sim.Now(), 10); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(sim.processed_events(), 2u);
}

TEST_P(SimulatorTest, ProcessedEventCount) {
  Simulator sim(1, Cfg());
  for (int i = 0; i < 100; ++i) sim.Schedule(i, []() {});
  sim.RunUntilIdle();
  EXPECT_EQ(sim.processed_events(), 100u);
}

TEST_P(SimulatorTest, ManyEventsInReverseOrderPopSorted) {
  // Exercises per-bucket sorting (calendar) and deep sifts (heap): inserts
  // arrive in strictly decreasing time order, the worst case for both.
  Simulator sim(1, Cfg());
  std::vector<SimTime> times;
  for (int i = 4096; i > 0; --i) {
    sim.Schedule(i * 7, [&]() { times.push_back(sim.Now()); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 4096u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.front(), 7);
  EXPECT_EQ(times.back(), 4096 * 7);
}

TEST_P(SimulatorTest, FarFutureEventsInterleaveCorrectly) {
  // Far deadlines land in the calendar's overflow list; near deadlines
  // admitted later must still pop first, and the far ones must surface once
  // the clock catches up.
  Simulator sim(1, Cfg());
  std::vector<int> order;
  sim.Schedule(10 * kSecond, [&]() { order.push_back(2); });  // overflow-far
  sim.Schedule(30 * kSecond, [&]() { order.push_back(3); });
  sim.Schedule(5, [&]() {
    order.push_back(0);
    sim.Schedule(20 * kSecond, [&]() { order.push_back(2); });
  });
  sim.Schedule(100, [&]() { order.push_back(1); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 2, 3}));
  EXPECT_EQ(sim.Now(), 30 * kSecond);
}

TEST_P(SimulatorTest, GrowShrinkChurnStaysOrdered) {
  // Pending depth swings 3 -> ~3000 -> 3 and back, forcing calendar
  // rebuilds in both directions; order and counts must hold throughout.
  Simulator sim(7, Cfg());
  SimTime last = -1;
  uint64_t ran = 0;
  auto check = [&]() {
    EXPECT_GE(sim.Now(), last);
    last = sim.Now();
    ran++;
  };
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3000; ++i) {
      sim.Schedule(static_cast<SimTime>(sim.rng().Uniform(100000)), check);
    }
    sim.RunUntilIdle();  // drain fully, then grow again
  }
  EXPECT_EQ(ran, 9000u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST_P(SimulatorTest, DeepQueueGeometrySamplingKeepsOrder) {
  // Grows the pending set past the rebuild-time geometry sample cap (4096),
  // so calendar rebuilds derive bucket width from a reservoir sample of the
  // deadlines instead of sorting all of them. Sampling shapes geometry
  // only — the (time, seq) pop order must stay exact.
  Simulator sim(11, Cfg());
  SimTime last = -1;
  uint64_t ran = 0;
  auto check = [&]() {
    EXPECT_GE(sim.Now(), last);
    last = sim.Now();
    ran++;
  };
  for (int i = 0; i < 20000; ++i) {
    // Mixed scales: dense ns-range work plus a ms-range band, so resampled
    // widths actually move between rebuilds.
    SimTime d = (i % 5 == 0)
                    ? static_cast<SimTime>(sim.rng().Uniform(50)) * kMillisecond
                    : static_cast<SimTime>(sim.rng().Uniform(200000));
    sim.Schedule(d, check);
  }
  sim.RunUntilIdle();
  EXPECT_EQ(ran, 20000u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// --- Network ----------------------------------------------------------------

TEST(NetworkTest, RemoteDelayIncludesLatencyAndBandwidth) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.one_way_latency = 25 * kMicrosecond;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 1000 bytes = 1 ms
  Network net(&sim, cfg);
  SimTime delivered = -1;
  net.Send(0, 1, 1000, [&]() { delivered = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 25 * kMicrosecond + 1 * kMillisecond);
}

TEST(NetworkTest, LoopbackIsCheapAndUncounted) {
  Simulator sim;
  NetworkConfig cfg;
  Network net(&sim, cfg);
  SimTime delivered = -1;
  net.Send(2, 2, 1 << 20, [&]() { delivered = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, cfg.local_latency);
  EXPECT_EQ(net.total_bytes(), 0u);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(NetworkTest, CountsBytesAndMessages) {
  Simulator sim;
  Network net(&sim, NetworkConfig{});
  net.Send(0, 1, 100, []() {});
  net.Send(1, 0, 200, []() {});
  sim.RunUntilIdle();
  EXPECT_EQ(net.total_bytes(), 300u);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(NetworkTest, WindowBytesAccumulatePerWindow) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.stats_window = 1 * kMillisecond;
  Network net(&sim, cfg);
  net.Send(0, 1, 100, []() {});
  sim.Schedule(5 * kMillisecond, [&]() { net.Send(0, 1, 700, []() {}); });
  sim.RunUntilIdle();
  const auto& w = net.window_bytes();
  ASSERT_GE(w.size(), 6u);
  EXPECT_EQ(w[0], 100u);
  EXPECT_EQ(w[5], 700u);
}

// --- WorkerPool ----------------------------------------------------------------

TEST(WorkerPoolTest, SingleWorkerSerializesTasks) {
  Simulator sim;
  WorkerPool pool(&sim, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    pool.Submit(TaskPriority::kNew, 100, [&]() { completions.push_back(sim.Now()); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
}

TEST(WorkerPoolTest, ParallelWorkersOverlap) {
  Simulator sim;
  WorkerPool pool(&sim, 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) pool.Submit(TaskPriority::kNew, 100, [&]() { done++; });
  sim.RunUntilIdle();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.Now(), 100);  // all four ran concurrently
}

TEST(WorkerPoolTest, PriorityOrdering) {
  Simulator sim;
  WorkerPool pool(&sim, 1);
  std::vector<char> order;
  // Occupy the worker, then queue one of each class (reverse priority).
  pool.Submit(TaskPriority::kNew, 50, [&]() { order.push_back('x'); });
  pool.Submit(TaskPriority::kNew, 10, [&]() { order.push_back('n'); });
  pool.Submit(TaskPriority::kResume, 10, [&]() { order.push_back('r'); });
  pool.Submit(TaskPriority::kService, 10, [&]() { order.push_back('s'); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<char>{'x', 's', 'r', 'n'}));
}

TEST(WorkerPoolTest, BusyTimeAccumulates) {
  Simulator sim;
  WorkerPool pool(&sim, 2);
  pool.Submit(TaskPriority::kNew, 100, []() {});
  pool.Submit(TaskPriority::kNew, 250, []() {});
  sim.RunUntilIdle();
  EXPECT_EQ(pool.busy_time(), 350);
  EXPECT_EQ(pool.completed_tasks(), 2u);
}

TEST(WorkerPoolTest, LoadReflectsQueue) {
  Simulator sim;
  WorkerPool pool(&sim, 1);
  pool.Submit(TaskPriority::kNew, 100, []() {});
  pool.Submit(TaskPriority::kNew, 100, []() {});
  pool.Submit(TaskPriority::kNew, 100, []() {});
  EXPECT_DOUBLE_EQ(pool.Load(), 3.0);  // 1 busy + 2 queued
  EXPECT_EQ(pool.queued_tasks(), 2u);
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(pool.Load(), 0.0);
}

TEST(WorkerPoolTest, ZeroDurationTaskCompletes) {
  Simulator sim;
  WorkerPool pool(&sim, 1);
  bool ran = false;
  pool.Submit(TaskPriority::kNew, 0, [&]() { ran = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(WorkerPoolTest, TaskChainingFromCallback) {
  Simulator sim;
  WorkerPool pool(&sim, 1);
  SimTime second_done = -1;
  pool.Submit(TaskPriority::kNew, 10, [&]() {
    pool.Submit(TaskPriority::kResume, 20, [&]() { second_done = sim.Now(); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(second_done, 30);
}

// --- PeriodicTimer ----------------------------------------------------------

TEST(PeriodicTimerTest, TicksAtInterval) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(&sim, [&](SimTime now) { ticks.push_back(now); });
  timer.Start(10);
  sim.RunUntil(35);
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_TRUE(timer.running());
}

TEST(PeriodicTimerTest, TicksAreWeak) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(&sim, [&](SimTime) { ticks++; });
  timer.Start(10);
  // Weak-only queues do not keep RunUntilIdle alive.
  sim.RunUntilIdle();
  EXPECT_EQ(ticks, 0);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(PeriodicTimerTest, StopHaltsTheLoop) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(&sim, [&](SimTime) { ticks++; });
  timer.Start(10);
  sim.RunUntil(25);
  EXPECT_EQ(ticks, 2);
  timer.Stop();
  EXPECT_FALSE(timer.running());
  sim.RunUntil(100);
  EXPECT_EQ(ticks, 2);  // the pending tick is consumed silently
}

TEST(PeriodicTimerTest, RestartReusesPendingTickWithoutDoubling) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(&sim, [&](SimTime now) { ticks.push_back(now); });
  timer.Start(10);
  sim.RunUntil(15);
  ASSERT_EQ(ticks.size(), 1u);
  // Stop and immediately resume while the t=20 tick is still pending: the
  // chain continues at the original cadence, with no duplicate timers.
  timer.Stop();
  timer.Start(10);
  sim.RunUntil(45);
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(PeriodicTimerTest, StopAfterPendingTickConsumedThenRestart) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(&sim, [&](SimTime) { ticks++; });
  timer.Start(10);
  sim.RunUntil(12);
  timer.Stop();
  sim.RunUntil(50);  // t=20 tick fires, is consumed, loop disarms
  EXPECT_EQ(ticks, 1);
  timer.Start(10);
  sim.RunUntil(75);  // fresh chain: ticks at 60 and 70
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimerTest, CallbackMayStopItsOwnTimer) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(&sim, [&](SimTime) {
    if (++ticks == 2) timer.Stop();
  });
  timer.Start(10);
  sim.RunUntil(200);
  EXPECT_EQ(ticks, 2);
}

}  // namespace
}  // namespace lion
