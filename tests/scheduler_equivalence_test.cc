// Heap-vs-calendar scheduler equivalence: the two implementations must
// produce the exact same (time, seq) pop sequence — and therefore
// bit-identical simulations — on randomized Schedule/ScheduleAt/ScheduleWeak
// interleavings, across RunUntil boundaries, and on full protocol-level
// experiments. The calendar queue is an optimization only; any divergence
// caught here is a correctness bug, not a tuning matter.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/simulator.h"

namespace lion {
namespace {

// --- randomized interleavings ------------------------------------------------

/// Everything observable about one run: the pop sequence (event id + the
/// clock when it ran), the clock after every phase, and the final counters.
struct Trace {
  std::vector<std::pair<int, SimTime>> pops;
  std::vector<SimTime> phase_clock;
  uint64_t processed = 0;
  size_t pending = 0;

  bool operator==(const Trace& o) const {
    return pops == o.pops && phase_clock == o.phase_clock &&
           processed == o.processed && pending == o.pending;
  }
};

/// Delay profiles stress different queue shapes: dense near-horizon
/// ties, mixed horizons spanning the calendar's bucket rotation, and
/// timer-like far-future deadlines that live in the overflow list.
enum class Profile { kDense, kMixed, kFarHeavy };

SimTime DrawDelay(Profile profile, std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0: return 0;  // tie with the running event
    case 1: return static_cast<SimTime>(rng() % 16);
    case 2: return static_cast<SimTime>(rng() % 1000);
    case 3:
      return profile == Profile::kDense ? static_cast<SimTime>(rng() % 64)
                                        : static_cast<SimTime>(rng() % 100000);
    case 4:
      return profile == Profile::kFarHeavy
                 ? static_cast<SimTime>(rng() % (50 * kMillisecond))
                 : static_cast<SimTime>(rng() % 5000);
    default:
      return profile == Profile::kDense
                 ? static_cast<SimTime>(rng() % 256)
                 : static_cast<SimTime>(rng() % (2 * kMillisecond));
  }
}

/// Runs one deterministic pseudo-random schedule program. The program's
/// choices are driven by a private mt19937 whose draws happen in pop order,
/// so identical pop sequences consume identical randomness — and any order
/// divergence between schedulers snowballs into an unmistakable trace diff.
Trace RunProgram(SchedulerKind kind, uint64_t seed, Profile profile) {
  Simulator sim(seed, SimConfig{kind});
  Trace trace;
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  int next_id = 0;
  int budget = 8000;  // total events the program may still create

  // Self-propagating event body: record the pop, then maybe schedule
  // children through every entry point the simulator offers.
  struct Spawner {
    Simulator* sim;
    Trace* trace;
    std::mt19937_64* rng;
    int* next_id;
    int* budget;
    Profile profile;

    void SpawnOne() {
      int id = (*next_id)++;
      SimTime delay = DrawDelay(profile, *rng);
      auto body = [this, id]() {
        trace->pops.emplace_back(id, sim->Now());
        int children = static_cast<int>((*rng)() % 3);
        for (int c = 0; c < children && *budget > 0; ++c) {
          --*budget;
          SpawnOne();
        }
      };
      switch ((*rng)() % 4) {
        case 0: sim->ScheduleAt(sim->Now() + delay, body); break;
        case 1: sim->ScheduleWeak(delay, body); break;
        default: sim->Schedule(delay, body); break;
      }
    }
  };
  Spawner spawner{&sim, &trace, &rng, &next_id, &budget, profile};

  for (int i = 0; i < 32 && budget > 0; ++i) {
    --budget;
    spawner.SpawnOne();
  }
  // Events landing exactly on a RunUntil boundary must run in that phase.
  sim.ScheduleAt(5000, [&]() { trace.pops.emplace_back(--next_id, sim.Now()); });

  sim.RunUntil(5000);
  trace.phase_clock.push_back(sim.Now());
  for (int i = 0; i < 16 && budget > 0; ++i) {
    --budget;
    spawner.SpawnOne();
  }
  sim.RunUntil(2 * kMillisecond);
  trace.phase_clock.push_back(sim.Now());
  for (int i = 0; i < 8 && budget > 0; ++i) {
    --budget;
    spawner.SpawnOne();
  }
  sim.RunUntilIdle();
  trace.phase_clock.push_back(sim.Now());

  trace.processed = sim.processed_events();
  trace.pending = sim.pending_events();
  return trace;
}

TEST(SchedulerEquivalenceTest, RandomizedInterleavings) {
  for (Profile profile :
       {Profile::kDense, Profile::kMixed, Profile::kFarHeavy}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      Trace heap = RunProgram(SchedulerKind::kHeap, seed, profile);
      Trace calendar = RunProgram(SchedulerKind::kCalendar, seed, profile);
      ASSERT_TRUE(heap == calendar)
          << "pop sequences diverged at profile=" << static_cast<int>(profile)
          << " seed=" << seed << " (heap popped " << heap.pops.size()
          << " events, calendar " << calendar.pops.size() << ")";
      ASSERT_GT(heap.pops.size(), 100u) << "degenerate program, seed=" << seed;
    }
  }
}

TEST(SchedulerEquivalenceTest, WeakOnlyQueueTerminatesIdentically) {
  for (SchedulerKind kind :
       {SchedulerKind::kHeap, SchedulerKind::kCalendar}) {
    Simulator sim(3, SimConfig{kind});
    int ticks = 0;
    // Weak-only queues must not keep RunUntilIdle alive at all.
    sim.ScheduleWeak(10, [&]() { ticks++; });
    sim.ScheduleWeak(10 * kSecond, [&]() { ticks++; });  // overflow-far
    sim.RunUntilIdle();
    EXPECT_EQ(ticks, 0) << "scheduler " << static_cast<int>(kind);
    EXPECT_EQ(sim.Now(), 0);
    EXPECT_EQ(sim.pending_events(), 2u);
    // A strong event wakes the run back up and drags earlier weak ones in.
    sim.Schedule(50, [&]() {});
    sim.RunUntilIdle();
    EXPECT_EQ(ticks, 1);
    EXPECT_EQ(sim.Now(), 50);
  }
}

// --- protocol-level equivalence ----------------------------------------------

ExperimentConfig BaselineConfig(const std::string& protocol,
                                const std::string& workload) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.workload = workload;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.workers_per_node = 4;
  cfg.cluster.partitions_per_node = 4;
  cfg.cluster.records_per_partition = 2000;
  cfg.ycsb.cross_ratio = 0.5;
  cfg.ycsb.skew_factor = 0.8;
  cfg.tpcc.remote_ratio = 0.5;
  cfg.warmup = 100 * kMillisecond;
  cfg.duration = 300 * kMillisecond;
  return cfg;
}

std::string RunWith(ExperimentConfig cfg, SchedulerKind kind,
                    uint64_t* committed) {
  cfg.sim.scheduler = kind;
  ExperimentResult res;
  Status s = ExperimentBuilder(cfg).Run(&res);
  EXPECT_TRUE(s.ok()) << s.ToString();
  *committed = res.committed;
  return res.ToJson();
}

TEST(SchedulerEquivalenceTest, YcsbLionResultsAreByteIdentical) {
  ExperimentConfig cfg = BaselineConfig("Lion", "ycsb");
  uint64_t committed_heap = 0, committed_cal = 0;
  std::string heap = RunWith(cfg, SchedulerKind::kHeap, &committed_heap);
  std::string cal = RunWith(cfg, SchedulerKind::kCalendar, &committed_cal);
  EXPECT_EQ(committed_heap, committed_cal);
  EXPECT_GT(committed_heap, 0u);
  EXPECT_EQ(heap, cal);  // the full result document, series included
}

TEST(SchedulerEquivalenceTest, Tpcc2PcResultsAreByteIdentical) {
  ExperimentConfig cfg = BaselineConfig("2PC", "tpcc");
  uint64_t committed_heap = 0, committed_cal = 0;
  std::string heap = RunWith(cfg, SchedulerKind::kHeap, &committed_heap);
  std::string cal = RunWith(cfg, SchedulerKind::kCalendar, &committed_cal);
  EXPECT_EQ(committed_heap, committed_cal);
  EXPECT_GT(committed_heap, 0u);
  EXPECT_EQ(heap, cal);
}

}  // namespace
}  // namespace lion
