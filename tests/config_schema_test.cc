// Schema-layer tests: exact JSON round trips for every registered
// protocol/workload config, unknown-key and type errors with dotted paths,
// field validation, and CLI-style SetByPath overrides.
#include <gtest/gtest.h>

#include "harness/config_schema.h"
#include "harness/experiment_config.h"
#include "harness/registry.h"

namespace lion {
namespace {

std::string EmitText(const ExperimentConfig& cfg) {
  return EmitExperimentConfig(cfg).Dump();
}

/// parse(emit(cfg)) must reproduce cfg exactly; equality is judged on the
/// re-emitted text, which covers every declared field.
void ExpectRoundTripExact(const ExperimentConfig& cfg) {
  std::string text = EmitText(cfg);
  Json doc;
  ASSERT_TRUE(Json::Parse(text, &doc).ok()) << text;
  ExperimentConfig back;
  Status s = ParseExperimentConfig(doc, &back);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(EmitText(back), text);
}

TEST(ConfigSchemaTest, RoundTripForEveryRegisteredProtocolAndWorkload) {
  for (const std::string& protocol : ProtocolRegistry::Global().Names()) {
    for (const std::string& workload : WorkloadRegistry::Global().Names()) {
      ExperimentConfig cfg;
      cfg.protocol = protocol;
      cfg.workload = workload;
      ExpectRoundTripExact(cfg);
    }
  }
}

TEST(ConfigSchemaTest, RoundTripSurvivesNonDefaultValuesEverywhere) {
  ExperimentConfig cfg;
  cfg.protocol = "Lion(B)";
  cfg.workload = "ycsb-hotspot-position";
  cfg.cluster.num_nodes = 7;
  cfg.cluster.workers_per_node = 3;
  cfg.cluster.records_per_partition = 123456789;
  cfg.cluster.epoch_interval = 12500 * kMicrosecond;  // 12.5 ms
  cfg.cluster.materialize_secondaries = true;
  cfg.cluster.validation_cost_per_op = 733;  // ns
  cfg.cluster.net.bandwidth_bytes_per_sec = 1.5e9;
  cfg.cluster.net.one_way_latency = 37 * kMicrosecond;
  cfg.ycsb.cross_pattern = CrossPattern::kRandomNode;
  cfg.ycsb.cross_ratio = 0.35;
  cfg.ycsb.zipf_theta = 0.99;
  cfg.tpcc.payment_ratio = 0.43;
  cfg.tpcc.think_time = 11 * kMicrosecond;
  cfg.dynamic_period = 2500 * kMillisecond;
  cfg.concurrency = 77;
  cfg.warmup = 300 * kMillisecond;
  cfg.duration = 4700 * kMillisecond;
  // Larger than 2^53: survives only because number lexemes are lossless.
  cfg.seed = 18446744073709551557ull;
  cfg.lion.batch_mode = true;
  cfg.lion.max_batch_size = 2048;
  cfg.lion.planner.strategy = PartitioningStrategy::kSchism;
  cfg.lion.planner.interval = 125 * kMillisecond;
  cfg.lion.planner.frequency_decay = 0.75;
  cfg.lion.planner.clump.alpha = 2.25;
  cfg.lion.planner.plan.cost.wm = 12.5;
  cfg.lion.cost.remote_access = 6.5;
  cfg.predictor.sample_interval = 40 * kMillisecond;
  cfg.predictor.beta = 0.22;
  cfg.predictor.lstm.hidden = 32;
  cfg.predictor.lstm.learning_rate = 0.005;
  cfg.clay.monitor_interval = 750 * kMillisecond;
  cfg.clay.clump_budget = 5;
  ExpectRoundTripExact(cfg);

  // Spot-check semantic recovery (not just textual equality).
  Json doc;
  ASSERT_TRUE(Json::Parse(EmitText(cfg), &doc).ok());
  ExperimentConfig back;
  ASSERT_TRUE(ParseExperimentConfig(doc, &back).ok());
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.cluster.epoch_interval, cfg.cluster.epoch_interval);
  EXPECT_EQ(back.ycsb.cross_pattern, CrossPattern::kRandomNode);
  EXPECT_EQ(back.lion.planner.strategy, PartitioningStrategy::kSchism);
  EXPECT_EQ(back.duration, 4700 * kMillisecond);
  EXPECT_EQ(back.predictor.lstm.hidden, 32);
}

TEST(ConfigSchemaTest, PartialConfigKeepsDefaults) {
  Json doc;
  ASSERT_TRUE(
      Json::Parse("{\"protocol\":\"2PC\",\"ycsb\":{\"cross_ratio\":0.5}}",
                  &doc)
          .ok());
  ExperimentConfig cfg;
  ASSERT_TRUE(ParseExperimentConfig(doc, &cfg).ok());
  EXPECT_EQ(cfg.protocol, "2PC");
  EXPECT_DOUBLE_EQ(cfg.ycsb.cross_ratio, 0.5);
  ExperimentConfig defaults;
  EXPECT_EQ(cfg.workload, defaults.workload);
  EXPECT_EQ(cfg.duration, defaults.duration);
  EXPECT_EQ(cfg.cluster.num_nodes, defaults.cluster.num_nodes);
}

TEST(ConfigSchemaTest, UnknownKeyReportsDottedPath) {
  Json doc;
  ASSERT_TRUE(Json::Parse("{\"ycsb\":{\"cross_ratioo\":0.5}}", &doc).ok());
  ExperimentConfig cfg;
  Status s = ParseExperimentConfig(doc, &cfg);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("ycsb.cross_ratioo"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("unknown field"), std::string::npos);
}

TEST(ConfigSchemaTest, TypeMismatchReportsDottedPath) {
  Json doc;
  ASSERT_TRUE(Json::Parse("{\"cluster\":{\"num_nodes\":\"four\"}}", &doc)
                  .ok());
  ExperimentConfig cfg;
  Status s = ParseExperimentConfig(doc, &cfg);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("cluster.num_nodes"), std::string::npos)
      << s.message();
}

TEST(ConfigSchemaTest, EnumParsingAndErrors) {
  ExperimentConfig cfg;
  ASSERT_TRUE(
      SetExperimentFlag(&cfg, "ycsb.cross_pattern", "random-node").ok());
  EXPECT_EQ(cfg.ycsb.cross_pattern, CrossPattern::kRandomNode);
  Status s = SetExperimentFlag(&cfg, "ycsb.cross_pattern", "diagonal");
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("paired"), std::string::npos) << s.message();
}

TEST(ConfigSchemaTest, ValidationReportsRangeWithPath) {
  ExperimentConfig cfg;
  cfg.ycsb.cross_ratio = 1.3;
  Status s = ValidateExperimentConfig(cfg);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "ycsb.cross_ratio: 1.3 not in [0,1]");

  cfg = ExperimentConfig{};
  cfg.duration = 0;
  s = ValidateExperimentConfig(cfg);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("duration_s"), std::string::npos);

  cfg = ExperimentConfig{};
  cfg.lion.planner.interval = 0;
  s = ValidateExperimentConfig(cfg);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("lion.planner.interval_ms"), std::string::npos);

  EXPECT_TRUE(ValidateExperimentConfig(ExperimentConfig{}).ok());
}

TEST(ConfigSchemaTest, SetByPathParsesUnitsAndTypes) {
  ExperimentConfig cfg;
  ASSERT_TRUE(SetExperimentFlag(&cfg, "lion.planner.interval_ms", "5").ok());
  EXPECT_EQ(cfg.lion.planner.interval, 5 * kMillisecond);
  ASSERT_TRUE(SetExperimentFlag(&cfg, "duration_s", "0.25").ok());
  EXPECT_EQ(cfg.duration, 250 * kMillisecond);
  ASSERT_TRUE(SetExperimentFlag(&cfg, "protocol", "2PC").ok());
  EXPECT_EQ(cfg.protocol, "2PC");
  ASSERT_TRUE(
      SetExperimentFlag(&cfg, "cluster.materialize_secondaries", "true")
          .ok());
  EXPECT_TRUE(cfg.cluster.materialize_secondaries);
  ASSERT_TRUE(SetExperimentFlag(&cfg, "seed", "42").ok());
  EXPECT_EQ(cfg.seed, 42u);

  Status s = SetExperimentFlag(&cfg, "no.such.path", "1");
  ASSERT_TRUE(s.IsInvalidArgument());
  s = SetExperimentFlag(&cfg, "cluster.num_nodes", "many");
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("cluster.num_nodes"), std::string::npos);
  // A dotted path through a scalar is rejected, not silently ignored.
  s = SetExperimentFlag(&cfg, "duration_s.extra", "1");
  ASSERT_TRUE(s.IsInvalidArgument());
}

TEST(ConfigSchemaTest, ListPathsCoversNestedLeaves) {
  std::vector<std::pair<std::string, std::string>> paths;
  ExperimentConfigSchema().ListPaths("", &paths);
  ASSERT_GT(paths.size(), 60u);  // the full declared flag surface
  auto has = [&paths](const std::string& p) {
    for (const auto& e : paths) {
      if (e.first == p) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("protocol"));
  EXPECT_TRUE(has("cluster.net.stats_window_ms"));
  EXPECT_TRUE(has("lion.planner.clump.alpha"));
  EXPECT_TRUE(has("predictor.lstm.learning_rate"));
  EXPECT_TRUE(has("sim.scheduler"));
  EXPECT_FALSE(has("lion"));  // nested structs are not leaves
}

TEST(ConfigSchemaTest, SimSchedulerParsesAndRoundTrips) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.sim.scheduler, SchedulerKind::kCalendar);  // the default
  ASSERT_TRUE(SetExperimentFlag(&cfg, "sim.scheduler", "heap").ok());
  EXPECT_EQ(cfg.sim.scheduler, SchedulerKind::kHeap);
  Json emitted = EmitExperimentConfig(cfg);
  ExperimentConfig parsed;
  ASSERT_TRUE(ParseExperimentConfig(emitted, &parsed).ok());
  EXPECT_EQ(parsed.sim.scheduler, SchedulerKind::kHeap);
  Status bad = SetExperimentFlag(&cfg, "sim.scheduler", "fibheap");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("sim.scheduler"), std::string::npos);
}

TEST(ConfigFlagGroupsTest, GroupsFollowDeclarationStructure) {
  std::vector<ConfigFlagGroup> groups =
      ListFlagGroups(ExperimentConfigSchema());
  ASSERT_GE(groups.size(), 7u);
  // Root scalars come first, then one group per nested field in order.
  EXPECT_EQ(groups[0].name, "");
  bool root_has_protocol = false;
  for (const auto& f : groups[0].flags) {
    root_has_protocol |= f.first == "protocol";
  }
  EXPECT_TRUE(root_has_protocol);
  const ConfigFlagGroup* cluster = nullptr;
  const ConfigFlagGroup* sim = nullptr;
  for (const ConfigFlagGroup& g : groups) {
    if (g.name == "cluster") cluster = &g;
    if (g.name == "sim") sim = &g;
  }
  ASSERT_NE(cluster, nullptr);
  ASSERT_NE(sim, nullptr);
  EXPECT_FALSE(cluster->help.empty());
  // Group flags are fully qualified and recurse into nested structs.
  bool has_net_leaf = false;
  for (const auto& f : cluster->flags) {
    has_net_leaf |= f.first == "cluster.net.one_way_latency_us";
  }
  EXPECT_TRUE(has_net_leaf);
  ASSERT_EQ(sim->flags.size(), 1u);
  EXPECT_EQ(sim->flags[0].first, "sim.scheduler");

  // The groups flatten back to exactly ListPaths (same leaves, same order
  // within groups).
  std::vector<std::pair<std::string, std::string>> paths;
  ExperimentConfigSchema().ListPaths("", &paths);
  size_t total = 0;
  for (const ConfigFlagGroup& g : groups) total += g.flags.size();
  EXPECT_EQ(total, paths.size());
}

TEST(ConfigFlagGroupsTest, MarkdownDumpContainsEveryFlag) {
  std::string md = FlagsMarkdown(ExperimentConfigSchema(), "flag reference");
  EXPECT_NE(md.find("# flag reference"), std::string::npos);
  EXPECT_NE(md.find("## cluster"), std::string::npos);
  EXPECT_NE(md.find("| flag | description |"), std::string::npos);
  std::vector<std::pair<std::string, std::string>> paths;
  ExperimentConfigSchema().ListPaths("", &paths);
  for (const auto& p : paths) {
    EXPECT_NE(md.find("`--" + p.first + "`"), std::string::npos)
        << "missing flag " << p.first;
  }
}

}  // namespace
}  // namespace lion
