// Unit tests for PartitionStore: reads, versions, locks, blocking.
#include <gtest/gtest.h>

#include "storage/partition_store.h"

namespace lion {
namespace {

TEST(PartitionStoreTest, BulkLoadInitializesRecords) {
  PartitionStore store(3, 100, 1000);
  EXPECT_EQ(store.id(), 3);
  EXPECT_EQ(store.record_count(), 100u);
  EXPECT_EQ(store.SizeBytes(), 100u * 1000u);
  Value v = 0;
  Version ver = 0;
  ASSERT_TRUE(store.Read(42, &v, &ver).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(ver, 1u);
}

TEST(PartitionStoreTest, ReadMissingKeyIsNotFound) {
  PartitionStore store(0, 10, 100);
  Value v;
  Version ver;
  EXPECT_TRUE(store.Read(999, &v, &ver).IsNotFound());
  EXPECT_FALSE(store.Contains(999));
}

TEST(PartitionStoreTest, ApplyBumpsVersion) {
  PartitionStore store(0, 10, 100);
  store.Apply(5, 777);
  Value v;
  Version ver;
  ASSERT_TRUE(store.Read(5, &v, &ver).ok());
  EXPECT_EQ(v, 777u);
  EXPECT_EQ(ver, 2u);
  store.Apply(5, 888);
  EXPECT_EQ(store.VersionOf(5), 3u);
}

TEST(PartitionStoreTest, VersionOfMissingIsZero) {
  PartitionStore store(0, 10, 100);
  EXPECT_EQ(store.VersionOf(12345), 0u);
}

TEST(PartitionStoreTest, LockIsExclusive) {
  PartitionStore store(0, 10, 100);
  EXPECT_TRUE(store.TryLock(1, 100));
  EXPECT_FALSE(store.TryLock(1, 200));
  EXPECT_TRUE(store.IsLockedByOther(1, 200));
  EXPECT_FALSE(store.IsLockedByOther(1, 100));
}

TEST(PartitionStoreTest, LockIsReentrant) {
  PartitionStore store(0, 10, 100);
  EXPECT_TRUE(store.TryLock(1, 100));
  EXPECT_TRUE(store.TryLock(1, 100));
}

TEST(PartitionStoreTest, UnlockOnlyByHolder) {
  PartitionStore store(0, 10, 100);
  ASSERT_TRUE(store.TryLock(1, 100));
  store.Unlock(1, 200);  // not the holder: no effect
  EXPECT_FALSE(store.TryLock(1, 300));
  store.Unlock(1, 100);
  EXPECT_TRUE(store.TryLock(1, 300));
}

TEST(PartitionStoreTest, UnlockedKeyIsFree) {
  PartitionStore store(0, 10, 100);
  EXPECT_FALSE(store.IsLockedByOther(2, 55));
}

TEST(PartitionStoreTest, InsertCreatesRecord) {
  PartitionStore store(0, 10, 100);
  store.Insert(500, 123);
  EXPECT_TRUE(store.Contains(500));
  EXPECT_EQ(store.VersionOf(500), 1u);
  EXPECT_EQ(store.record_count(), 11u);
}

TEST(PartitionStoreTest, WriteBlockFlag) {
  PartitionStore store(0, 10, 100);
  EXPECT_FALSE(store.write_blocked());
  store.set_write_blocked(true);
  EXPECT_TRUE(store.write_blocked());
  store.set_write_blocked(false);
  EXPECT_FALSE(store.write_blocked());
}

}  // namespace
}  // namespace lion
