// Unit tests for PartitionStore: reads, versions, locks, blocking.
#include <gtest/gtest.h>

#include "storage/partition_store.h"

namespace lion {
namespace {

TEST(PartitionStoreTest, BulkLoadInitializesRecords) {
  PartitionStore store(3, 100, 1000);
  EXPECT_EQ(store.id(), 3);
  EXPECT_EQ(store.record_count(), 100u);
  EXPECT_EQ(store.SizeBytes(), 100u * 1000u);
  Value v = 0;
  Version ver = 0;
  ASSERT_TRUE(store.Read(42, &v, &ver).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(ver, 1u);
}

TEST(PartitionStoreTest, ReadMissingKeyIsNotFound) {
  PartitionStore store(0, 10, 100);
  Value v;
  Version ver;
  EXPECT_TRUE(store.Read(999, &v, &ver).IsNotFound());
  EXPECT_FALSE(store.Contains(999));
}

TEST(PartitionStoreTest, ApplyBumpsVersion) {
  PartitionStore store(0, 10, 100);
  store.Apply(5, 777);
  Value v;
  Version ver;
  ASSERT_TRUE(store.Read(5, &v, &ver).ok());
  EXPECT_EQ(v, 777u);
  EXPECT_EQ(ver, 2u);
  store.Apply(5, 888);
  EXPECT_EQ(store.VersionOf(5), 3u);
}

TEST(PartitionStoreTest, VersionOfMissingIsZero) {
  PartitionStore store(0, 10, 100);
  EXPECT_EQ(store.VersionOf(12345), 0u);
}

TEST(PartitionStoreTest, LockIsExclusive) {
  PartitionStore store(0, 10, 100);
  EXPECT_TRUE(store.TryLock(1, 100));
  EXPECT_FALSE(store.TryLock(1, 200));
  EXPECT_TRUE(store.IsLockedByOther(1, 200));
  EXPECT_FALSE(store.IsLockedByOther(1, 100));
}

TEST(PartitionStoreTest, LockIsReentrant) {
  PartitionStore store(0, 10, 100);
  EXPECT_TRUE(store.TryLock(1, 100));
  EXPECT_TRUE(store.TryLock(1, 100));
}

TEST(PartitionStoreTest, UnlockOnlyByHolder) {
  PartitionStore store(0, 10, 100);
  ASSERT_TRUE(store.TryLock(1, 100));
  store.Unlock(1, 200);  // not the holder: no effect
  EXPECT_FALSE(store.TryLock(1, 300));
  store.Unlock(1, 100);
  EXPECT_TRUE(store.TryLock(1, 300));
}

TEST(PartitionStoreTest, UnlockedKeyIsFree) {
  PartitionStore store(0, 10, 100);
  EXPECT_FALSE(store.IsLockedByOther(2, 55));
}

TEST(PartitionStoreTest, InsertCreatesRecord) {
  PartitionStore store(0, 10, 100);
  store.Insert(500, 123);
  EXPECT_TRUE(store.Contains(500));
  EXPECT_EQ(store.VersionOf(500), 1u);
  EXPECT_EQ(store.record_count(), 11u);
}

TEST(PartitionStoreTest, WriteBlockFlag) {
  PartitionStore store(0, 10, 100);
  EXPECT_FALSE(store.write_blocked());
  store.set_write_blocked(true);
  EXPECT_TRUE(store.write_blocked());
  store.set_write_blocked(false);
  EXPECT_FALSE(store.write_blocked());
}

TEST(PartitionStoreTest, SparseKeysBehaveLikeDenseOnes) {
  PartitionStore store(0, 10, 100);
  // TPC-C-shaped keys far outside the bulk-loaded range.
  Key sparse = (Key{5} << 40) | 123;
  EXPECT_FALSE(store.Contains(sparse));
  EXPECT_EQ(store.VersionOf(sparse), 0u);
  store.Insert(sparse, 7);
  Value v = 0;
  Version ver = 0;
  ASSERT_TRUE(store.Read(sparse, &v, &ver).ok());
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(ver, 1u);
  store.Apply(sparse, 8);
  EXPECT_EQ(store.VersionOf(sparse), 2u);
  EXPECT_EQ(store.record_count(), 11u);
}

TEST(PartitionStoreTest, SparseTableSurvivesGrowth) {
  PartitionStore store(0, 4, 100);
  // Enough sparse inserts to force several table growths; same-id keys
  // across different "tables" must not collide.
  for (Key table = 1; table <= 8; ++table) {
    for (Key id = 0; id < 200; ++id) {
      store.Insert((table << 40) | id, table * 1000 + id);
    }
  }
  for (Key table = 1; table <= 8; ++table) {
    for (Key id = 0; id < 200; ++id) {
      Value v = 0;
      ASSERT_TRUE(store.Read((table << 40) | id, &v, nullptr).ok());
      EXPECT_EQ(v, table * 1000 + id);
    }
  }
  EXPECT_EQ(store.record_count(), 4u + 8 * 200);
}

TEST(PartitionStoreTest, ReserveSparsePresizesForBulkLoad) {
  PartitionStore store(0, 100, 8);
  const uint64_t rows = 3211;  // one TPC-C warehouse's sparse row count
  store.ReserveSparse(rows);
  const size_t cap = store.sparse_capacity();
  EXPECT_GE(cap, 2 * rows);  // 50%-load invariant holds without growing
  for (Key id = 0; id < rows; ++id) {
    store.Insert((Key{3} << 40) | id, id);
  }
  EXPECT_EQ(store.sparse_capacity(), cap)
      << "reserved load must not trigger incremental growth";
  Value v = 0;
  ASSERT_TRUE(store.Read((Key{3} << 40) | 1234, &v, nullptr).ok());
  EXPECT_EQ(v, 1234u);
  // Reserving less than the current capacity is a no-op.
  store.ReserveSparse(1);
  EXPECT_EQ(store.sparse_capacity(), cap);
}

TEST(PartitionStoreTest, AllOnesKeyIsAValidKey) {
  // The open-addressing table uses ~0 as its empty-slot marker; the store
  // must still treat it as an ordinary key.
  PartitionStore store(0, 4, 100);
  Key all_ones = ~Key{0};
  EXPECT_FALSE(store.Contains(all_ones));
  EXPECT_TRUE(store.Read(all_ones, nullptr, nullptr).IsNotFound());
  EXPECT_TRUE(store.TryLock(all_ones, 9));
  EXPECT_TRUE(store.IsLockedByOther(all_ones, 1));
  store.Unlock(all_ones, 9);
  store.Insert(all_ones, 42);
  Value v = 0;
  ASSERT_TRUE(store.Read(all_ones, &v, nullptr).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(store.record_count(), 5u);
}

}  // namespace
}  // namespace lion
