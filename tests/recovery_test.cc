// Durable log-backed recovery tests: the recovery log's fsync-horizon and
// snapshot+truncate accounting, crash replay + catch-up rejoin through the
// failure injector, the stale-election hazard fix, reconfiguration guards
// against recovering targets, double-crash races, and the recovery track
// end to end through the experiment harness — including that recovery-off
// runs emit no recovery fields and stay deterministic.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "replication/cluster.h"
#include "replication/failure_injector.h"
#include "replication/integrity.h"
#include "replication/recovery_log.h"

namespace lion {
namespace {

ClusterConfig Cfg(int replicas = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 500;
  cfg.record_bytes = 100;
  cfg.init_replicas = replicas;
  cfg.remaster_base_delay = 1 * kMillisecond;
  return cfg;
}

RecoveryConfig RCfg() {
  RecoveryConfig cfg;
  cfg.enabled = true;
  cfg.catch_up_batch = 16;
  return cfg;
}

// Appends `n` committed writes to `pid` through the replication manager, so
// the primary's LSN, the pending epoch batch and the recovery log all see
// them — exactly the path every protocol commit takes.
void AppendWrites(Cluster* cluster, PartitionId pid, int n) {
  for (int i = 0; i < n; ++i) {
    cluster->replication().Append(pid, static_cast<Key>(i % 10), 1);
  }
}

// --- recovery log unit tests -------------------------------------------------

TEST(RecoveryLogTest, DirtyCrashLosesOnlyTheUnsyncedSuffix) {
  Simulator sim;
  RecoveryConfig cfg = RCfg();
  cfg.durability_lag = 10 * kMillisecond;
  RecoveryLog log(&sim, cfg, /*num_nodes=*/2, /*num_partitions=*/1);

  log.AppendCommit(0, 0, /*key=*/1, /*lsn=*/1);
  log.AppendCommit(0, 0, /*key=*/2, /*lsn=*/2);
  sim.RunUntil(20 * kMillisecond);  // both entries age past the horizon
  log.AppendCommit(0, 0, /*key=*/3, /*lsn=*/3);  // younger than the horizon

  // Clean view: everything is durable. Dirty view: entry 3 is unsynced.
  EXPECT_EQ(log.DurableLsn(0, 0, /*dirty=*/false), 3u);
  EXPECT_EQ(log.DurableLsn(0, 0, /*dirty=*/true), 2u);

  log.Crash(0, /*dirty=*/true);
  EXPECT_EQ(log.DurableLsn(0, 0, true), 2u);
  EXPECT_EQ(log.DurableEntries(0), 2u);
  EXPECT_EQ(log.LostEntries(0), 1u);
  EXPECT_EQ(log.total_lost_entries(), 1u);
  // Lost entries stay accounted per key: 2 + lost 1 reconstruct the ledger.
  EXPECT_EQ(log.WriteCount(0, 3), 1u);
}

TEST(RecoveryLogTest, ZeroDurabilityLagMakesDirtyCrashesLossless) {
  Simulator sim;
  RecoveryLog log(&sim, RCfg(), 2, 1);  // durability_lag = 0
  log.AppendCommit(0, 0, 1, 1);
  log.AppendCommit(0, 0, 2, 2);
  EXPECT_EQ(log.DurableLsn(0, 0, /*dirty=*/true), 2u);
  log.Crash(0, /*dirty=*/true);
  EXPECT_EQ(log.LostEntries(0), 0u);
  EXPECT_EQ(log.DurableEntries(0), 2u);
}

TEST(RecoveryLogTest, SnapshotTruncatePreservesAccounting) {
  Simulator sim;
  RecoveryLog log(&sim, RCfg(), 2, 1);
  log.AppendCommit(0, 0, 7, 1);
  log.AppendCommit(0, 0, 7, 2);
  log.AppendCommit(0, 0, 8, 3);

  log.SnapshotNode(0);
  EXPECT_EQ(log.snapshots_taken(), 1u);
  // Truncation folds the suffix into the snapshot; nothing is invented or
  // leaked, and the per-key reconstruction is unchanged.
  EXPECT_EQ(log.DurableEntries(0), 3u);
  EXPECT_EQ(log.WriteCount(0, 7), 2u);
  EXPECT_EQ(log.WriteCount(0, 8), 1u);
  EXPECT_EQ(log.DurableLsn(0, 0, /*dirty=*/true), 3u);

  // A dirty crash right after a snapshot loses nothing: the snapshot is the
  // fsync.
  log.Crash(0, /*dirty=*/true);
  EXPECT_EQ(log.LostEntries(0), 0u);
  auto writes = log.ReconstructWrites(0);
  EXPECT_EQ(writes[7], 2u);
  EXPECT_EQ(writes[8], 1u);
}

TEST(RecoveryLogTest, PeriodicSnapshotTimerRuns) {
  Simulator sim;
  RecoveryConfig cfg = RCfg();
  cfg.snapshot_interval = 5 * kMillisecond;
  RecoveryLog log(&sim, cfg, 2, 1);
  log.Start();
  log.AppendCommit(0, 0, 1, 1);
  sim.Schedule(20 * kMillisecond, []() {});  // keep the drain alive
  sim.RunUntil(21 * kMillisecond);
  EXPECT_GE(log.snapshots_taken(), 2u);  // 2 nodes x >= 1 pass each
  EXPECT_EQ(log.DurableEntries(0), 1u);
}

// --- crash replay + catch-up -------------------------------------------------

TEST(RecoveryTest, RecoveredNodeReplaysAndCatchesUp) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.EnableRecovery(RCfg());
  cluster.Start();
  FailureInjector chaos(&cluster);

  // 100 committed writes on partition 0 (primary node 0, secondary node 1),
  // shipped and acked through a few epochs.
  AppendWrites(&cluster, 0, 100);
  sim.RunUntil(50 * kMillisecond);
  ASSERT_EQ(cluster.router().group(0).AppliedLsnOf(1), 100u);

  // Node 1 crashes cleanly, then 60 more writes land while it is down.
  chaos.FailNode(1);
  sim.RunUntilIdle();
  AppendWrites(&cluster, 0, 60);
  sim.RunUntil(100 * kMillisecond);
  ASSERT_FALSE(cluster.router().group(0).HasReplica(1));

  // Recovery replays the durable prefix (LSN 100) and streams the missing
  // 60 entries from the live primary in catch_up_batch-sized shipments.
  chaos.RecoverNode(1);
  const ReplicaGroup& g = cluster.router().group(0);
  ASSERT_TRUE(g.HasSecondary(1));
  EXPECT_TRUE(g.IsRecovering(1));
  EXPECT_EQ(g.AppliedLsnOf(1), 100u);
  sim.RunUntilIdle();

  EXPECT_FALSE(g.IsRecovering(1));
  EXPECT_EQ(g.AppliedLsnOf(1), 160u);
  EXPECT_EQ(chaos.recoveries_replayed(), 1u);
  ASSERT_EQ(chaos.recoveries().size(), 1u);
  EXPECT_GT(chaos.recoveries()[0].finished, chaos.recoveries()[0].started);
  // Every replica node 1 held (4 with 2 replicas over 6 partitions) caught
  // up; the partition-0 record streamed exactly the missing range.
  EXPECT_EQ(chaos.catch_ups().size(), 4u);
  bool found = false;
  for (const FailureInjector::CatchUpRecord& c : chaos.catch_ups()) {
    if (c.partition == 0) {
      found = true;
      EXPECT_EQ(c.node, 1);
      EXPECT_EQ(c.entries, 60u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(chaos.recovery_violations().empty());

  IntegrityReport report = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_TRUE(report.ok()) << report.violations[0];
}

TEST(RecoveryTest, DirtyCrashReplaysShorterPrefix) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  RecoveryConfig rcfg = RCfg();
  rcfg.durability_lag = 1 * kSecond;  // nothing this young is synced
  cluster.EnableRecovery(rcfg);
  cluster.Start();
  FailureInjector chaos(&cluster);

  AppendWrites(&cluster, 0, 100);
  sim.RunUntil(50 * kMillisecond);  // acked at ~10ms, still inside the lag
  ASSERT_EQ(cluster.router().group(0).AppliedLsnOf(1), 100u);

  // Every durable mark is younger than the fsync horizon: node 1's replica
  // of partition 0 replays from LSN 0 and must re-stream the whole log.
  chaos.FailNodeDirty(1);
  sim.RunUntilIdle();
  chaos.RecoverNode(1);
  const ReplicaGroup& g = cluster.router().group(0);
  ASSERT_TRUE(g.HasSecondary(1));
  EXPECT_EQ(g.AppliedLsnOf(1), 0u);
  sim.RunUntilIdle();
  EXPECT_EQ(g.AppliedLsnOf(1), 100u);
  EXPECT_FALSE(g.IsRecovering(1));

  IntegrityReport report = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_TRUE(report.ok()) << report.violations[0];
}

TEST(RecoveryTest, CatchUpIsPricedThroughTheNetwork) {
  // The catch-up stream pays bandwidth/latency like any other transfer:
  // with more entries to stream, the rejoin takes strictly longer.
  SimTime durations[2];
  for (int i = 0; i < 2; ++i) {
    Simulator sim;
    Cluster cluster(&sim, Cfg());
    cluster.EnableRecovery(RCfg());
    cluster.Start();
    FailureInjector chaos(&cluster);
    AppendWrites(&cluster, 0, 10);
    sim.RunUntil(50 * kMillisecond);
    chaos.FailNode(1);
    sim.RunUntilIdle();
    AppendWrites(&cluster, 0, i == 0 ? 100 : 5000);
    sim.RunUntil(100 * kMillisecond);
    chaos.RecoverNode(1);
    sim.RunUntilIdle();
    ASSERT_EQ(chaos.recoveries().size(), 1u);
    durations[i] =
        chaos.recoveries()[0].finished - chaos.recoveries()[0].started;
  }
  EXPECT_GT(durations[1], durations[0]);
}

// --- election ranking --------------------------------------------------------

TEST(RecoveryTest, RecoveringReplicaNeverBeatsCaughtUpCopy) {
  // The stale-election hazard: a recovered-but-not-caught-up replica holds
  // a higher applied LSN than a live caught-up copy would after sync, but
  // its log is a stale prefix. The election must prefer the caught-up copy.
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  cluster.EnableRecovery(RCfg());
  FailureInjector chaos(&cluster);

  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->AddSecondary(2, 0);
  g->Advance(100);
  g->Ack(1, 40);                 // caught-up copy, higher lag
  g->Ack(2, 90);                 // recovering copy, lower lag
  g->SetRecovering(2, true);

  chaos.FailNode(0);
  sim.RunUntilIdle();
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_EQ(chaos.stale_elections(), 0u);
  EXPECT_TRUE(g->IsRecovering(2));  // untouched by the election
}

TEST(RecoveryTest, LastResortStaleElectionIsCounted) {
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  cluster.EnableRecovery(RCfg());
  FailureInjector chaos(&cluster);

  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->Advance(100);
  g->Ack(1, 60);
  g->SetRecovering(1, true);  // the only surviving copy is mid-recovery

  chaos.FailNode(0);
  sim.RunUntilIdle();
  // Availability beats staleness as the last resort — but never silently.
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_EQ(chaos.stale_elections(), 1u);
  EXPECT_FALSE(cluster.router().group(0).IsRecovering(1));
}

TEST(RecoveryTest, ElectionReRunsWhenCaughtUpCopyAppearsMidSync) {
  // The fire-time re-validation: the election picked the recovering replica
  // (nothing better existed), but a caught-up copy registered while the
  // log-sync delay elapsed. Promotion must re-run, not promote stale state.
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  cluster.EnableRecovery(RCfg());
  FailureInjector chaos(&cluster);

  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->Advance(100);
  g->Ack(1, 60);
  g->SetRecovering(1, true);

  chaos.FailNode(0);
  // While the election syncs (remaster_base_delay = 1ms), a caught-up copy
  // appears on node 2.
  sim.Schedule(100 * kMicrosecond, [&]() {
    g->AddSecondary(2, 100);
  });
  sim.RunUntilIdle();
  EXPECT_EQ(cluster.router().PrimaryOf(0), 2);
  EXPECT_EQ(chaos.stale_elections(), 0u);
  EXPECT_GE(chaos.elections_rerun(), 1u);
  EXPECT_TRUE(cluster.router().group(0).IsRecovering(1));
}

// --- reconfiguration guards --------------------------------------------------

TEST(RecoveryTest, RemasterToRecoveringTargetAborts) {
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  cluster.EnableRecovery(RCfg());
  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->Advance(10);
  g->SetRecovering(1, true);

  bool called = false, ok = true;
  cluster.remaster().Remaster(0, 1, [&](bool success) {
    called = true;
    ok = success;
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 0);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

TEST(RecoveryTest, MovePrimaryToRecoveringTargetAborts) {
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  cluster.EnableRecovery(RCfg());
  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->Advance(10);
  g->SetRecovering(1, true);

  bool called = false, ok = true;
  cluster.migration().MovePrimary(0, 1, [&](bool success) {
    called = true;
    ok = success;
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 0);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

// --- crash races -------------------------------------------------------------

TEST(RecoveryTest, CrashDuringCatchUpAbandonsAndRetries) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  RecoveryConfig rcfg = RCfg();
  rcfg.catch_up_batch = 8;  // many in-flight steps to invalidate
  cluster.EnableRecovery(rcfg);
  cluster.Start();
  FailureInjector chaos(&cluster);

  AppendWrites(&cluster, 0, 50);
  sim.RunUntil(50 * kMillisecond);
  chaos.FailNode(1);
  sim.RunUntilIdle();
  AppendWrites(&cluster, 0, 2000);
  sim.RunUntil(100 * kMillisecond);

  // Recover, then crash again while the catch-up stream is mid-flight. The
  // generation token kills the stale steps; the recovery record never
  // closes for the abandoned attempt.
  chaos.RecoverNode(1);
  ASSERT_TRUE(cluster.router().group(0).IsRecovering(1));
  sim.Schedule(10 * kMicrosecond, [&]() { chaos.FailNodeDirty(1); });
  sim.RunUntilIdle();
  EXPECT_TRUE(chaos.recoveries().empty());
  EXPECT_FALSE(cluster.router().group(0).HasReplica(1));

  // The second recovery completes normally.
  chaos.RecoverNode(1);
  sim.RunUntilIdle();
  EXPECT_FALSE(cluster.router().group(0).IsRecovering(1));
  EXPECT_EQ(cluster.router().group(0).AppliedLsnOf(1),
            cluster.router().group(0).primary_lsn());
  EXPECT_EQ(chaos.recoveries().size(), 1u);
  EXPECT_EQ(chaos.recoveries_replayed(), 2u);
  EXPECT_TRUE(chaos.recovery_violations().empty());

  IntegrityReport report = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_TRUE(report.ok()) << report.violations[0];
}

TEST(RecoveryTest, DoubleCrashBeforeCatchUpKeepsInvariants) {
  // Primary and the recovering node's catch-up source both die: the stream
  // parks on the unavailable partition and resumes when a primary returns.
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.EnableRecovery(RCfg());
  cluster.Start();
  FailureInjector chaos(&cluster);

  AppendWrites(&cluster, 0, 50);
  sim.RunUntil(50 * kMillisecond);
  chaos.FailNode(1);
  sim.RunUntilIdle();
  AppendWrites(&cluster, 0, 500);
  sim.RunUntil(100 * kMillisecond);

  // Node 1 starts catching up; its only source (node 0, primary of pid 0
  // after no failover was needed) dies immediately after.
  chaos.RecoverNode(1);
  chaos.FailNode(0);
  sim.RunUntilIdle();

  // The failover elects the caught-up copy or, as a last resort, the
  // recovering one; either way the partition ends available with invariants
  // intact once node 0 also returns.
  chaos.RecoverNode(0);
  sim.RunUntilIdle();
  const ReplicaGroup& g = cluster.router().group(0);
  EXPECT_FALSE(g.IsRecovering(1));
  IntegrityReport report = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_TRUE(report.ok()) << report.violations[0];
}

// --- experiment harness ------------------------------------------------------

TEST(RecoveryExperimentTest, CrashRecoverUnderLoadStaysConsistent) {
  ExperimentBuilder builder;
  builder.Protocol("2PC").Workload("ycsb");
  builder.config().cluster = Cfg();
  builder.config().cluster.workers_per_node = 4;
  builder.Warmup(100 * kMillisecond).Duration(600 * kMillisecond).Seed(7);
  builder.config().chaos.schedule = {"200ms crash 1", "350ms recover 1",
                                     "450ms crash_dirty 2", "550ms recover 2",
                                     "650ms truncate 0"};
  builder.config().recovery.enabled = true;
  builder.config().recovery.durability_lag = 5 * kMillisecond;
  builder.config().recovery.catch_up_batch = 64;

  ExperimentResult res;
  ASSERT_TRUE(builder.Run(&res).ok());
  EXPECT_TRUE(res.chaos_active);
  EXPECT_TRUE(res.recovery_active);
  EXPECT_GT(res.committed, 0u);
  EXPECT_EQ(res.integrity_violations, 0u)
      << (res.integrity_messages.empty() ? "" : res.integrity_messages[0]);
  // Both crashed nodes replayed their logs and completed their catch-ups;
  // the recovered nodes serve committed pre-crash writes (the ledger
  // reconstruction above would flag anything lost).
  EXPECT_EQ(res.recoveries_replayed, 2u);
  EXPECT_GE(res.catch_ups_completed, 1u);
  EXPECT_GT(res.log_entries, 0u);
  EXPECT_GE(res.log_snapshots, 1u);  // the forced truncate
  EXPECT_GT(res.integrity_log_writes_checked, 0u);

  std::string json = res.ToJson();
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"catch_up_events\""), std::string::npos);
  EXPECT_NE(json.find("\"stale_elections\""), std::string::npos);
}

TEST(RecoveryExperimentTest, RecoveryOffEmitsNoRecoveryFieldsAndIsDeterministic) {
  // recovery.enabled = false must leave the run byte-identical to a build
  // without the subsystem: no recovery fields in the JSON (even with chaos
  // on), and repeat runs with the same seed produce identical output.
  auto run = [](bool with_chaos) {
    ExperimentBuilder builder;
    builder.Protocol("2PC").Workload("ycsb");
    builder.config().cluster = Cfg();
    builder.config().cluster.workers_per_node = 4;
    builder.Warmup(50 * kMillisecond).Duration(300 * kMillisecond).Seed(7);
    if (with_chaos) {
      builder.config().chaos.schedule = {"100ms crash 1", "200ms recover 1"};
    }
    ExperimentResult res;
    EXPECT_TRUE(builder.Run(&res).ok());
    EXPECT_FALSE(res.recovery_active);
    return res.ToJson();
  };

  std::string quiet = run(false);
  EXPECT_EQ(quiet.find("\"recovery\""), std::string::npos);
  EXPECT_EQ(run(false), quiet);

  std::string chaotic = run(true);
  EXPECT_EQ(chaotic.find("\"recovery\""), std::string::npos);
  EXPECT_EQ(chaotic.find("stale_elections"), std::string::npos);
  EXPECT_EQ(chaotic.find("log_writes_checked"), std::string::npos);
  EXPECT_EQ(run(true), chaotic);
}

}  // namespace
}  // namespace lion
