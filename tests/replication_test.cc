// Tests for replica groups, the router table, replication (group commit),
// remastering, and migration.
#include <gtest/gtest.h>

#include "replication/cluster.h"
#include "replication/replica_group.h"
#include "replication/router_table.h"
#include "sim/simulator.h"

namespace lion {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 100;
  cfg.record_bytes = 100;
  cfg.init_replicas = 2;
  cfg.max_replicas = 3;
  return cfg;
}

// --- ReplicaGroup -------------------------------------------------------------

TEST(ReplicaGroupTest, InitialState) {
  ReplicaGroup g(7, 2);
  EXPECT_EQ(g.partition(), 7);
  EXPECT_EQ(g.primary(), 2);
  EXPECT_EQ(g.primary_lsn(), 0u);
  EXPECT_EQ(g.LiveReplicaCount(), 1);
  EXPECT_TRUE(g.HasReplica(2));
  EXPECT_FALSE(g.HasSecondary(2));
}

TEST(ReplicaGroupTest, AddAndRemoveSecondary) {
  ReplicaGroup g(0, 0);
  g.AddSecondary(1, 0);
  EXPECT_TRUE(g.HasSecondary(1));
  EXPECT_EQ(g.LiveReplicaCount(), 2);
  g.RemoveSecondary(1);
  EXPECT_FALSE(g.HasSecondary(1));
  EXPECT_EQ(g.LiveReplicaCount(), 1);
}

TEST(ReplicaGroupTest, AddSecondaryOnPrimaryIsNoop) {
  ReplicaGroup g(0, 0);
  g.AddSecondary(0, 0);
  EXPECT_EQ(g.LiveReplicaCount(), 1);
}

TEST(ReplicaGroupTest, LagTracksAdvanceAndAck) {
  ReplicaGroup g(0, 0);
  g.AddSecondary(1, 0);
  g.Advance(10);
  EXPECT_EQ(g.LagOf(1), 10u);
  g.Ack(1, 6);
  EXPECT_EQ(g.LagOf(1), 4u);
  g.Ack(1, 3);  // stale ack must not regress
  EXPECT_EQ(g.LagOf(1), 4u);
}

TEST(ReplicaGroupTest, DeleteFlagExcludesFromLive) {
  ReplicaGroup g(0, 0);
  g.AddSecondary(1, 0);
  g.AddSecondary(2, 0);
  g.FlagForDelete(1);
  EXPECT_FALSE(g.HasSecondary(1));
  EXPECT_TRUE(g.HasReplica(1));  // still physically present
  EXPECT_EQ(g.LiveReplicaCount(), 2);
}

TEST(ReplicaGroupTest, ReAddClearsDeleteFlag) {
  ReplicaGroup g(0, 0);
  g.AddSecondary(1, 0);
  g.FlagForDelete(1);
  g.AddSecondary(1, 5);
  EXPECT_TRUE(g.HasSecondary(1));
}

TEST(ReplicaGroupTest, PromoteSwapsRoles) {
  ReplicaGroup g(0, 0);
  g.AddSecondary(1, 0);
  g.Advance(5);
  g.Ack(1, 5);
  g.Promote(1);
  EXPECT_EQ(g.primary(), 1);
  EXPECT_TRUE(g.HasSecondary(0));
  EXPECT_EQ(g.LagOf(0), 0u);  // old primary is fully caught up by definition
  EXPECT_EQ(g.LiveReplicaCount(), 2);
}

// --- RouterTable --------------------------------------------------------------

TEST(RouterTableTest, RoundRobinPlacement) {
  RouterTable table(3, 6);
  table.InitRoundRobin(2);
  for (PartitionId p = 0; p < 6; ++p) {
    EXPECT_EQ(table.PrimaryOf(p), p % 3);
    EXPECT_TRUE(table.HasSecondary((p + 1) % 3, p));
    EXPECT_EQ(table.group(p).LiveReplicaCount(), 2);
  }
  EXPECT_EQ(table.TotalLiveReplicas(), 12);
}

TEST(RouterTableTest, RoundRobinCapsAtNodeCount) {
  RouterTable table(2, 4);
  table.InitRoundRobin(5);  // only 2 nodes exist
  for (PartitionId p = 0; p < 4; ++p)
    EXPECT_EQ(table.group(p).LiveReplicaCount(), 2);
}

TEST(RouterTableTest, FrequencyNormalization) {
  RouterTable table(2, 4);
  table.RecordAccess(0, 10.0);
  table.RecordAccess(1, 5.0);
  EXPECT_DOUBLE_EQ(table.NormalizedFrequency(0), 1.0);
  EXPECT_DOUBLE_EQ(table.NormalizedFrequency(1), 0.5);
  EXPECT_DOUBLE_EQ(table.NormalizedFrequency(2), 0.0);
}

TEST(RouterTableTest, DecayScalesCounts) {
  RouterTable table(2, 2);
  table.RecordAccess(0, 8.0);
  table.DecayFrequencies(0.5);
  EXPECT_DOUBLE_EQ(table.RawFrequency(0), 4.0);
}

TEST(RouterTableTest, PrimaryLoadSumsFrequencies) {
  RouterTable table(2, 4);  // primaries: 0->0, 1->1, 2->0, 3->1
  table.RecordAccess(0, 3.0);
  table.RecordAccess(2, 4.0);
  table.RecordAccess(1, 1.0);
  EXPECT_DOUBLE_EQ(table.PrimaryLoad(0), 7.0);
  EXPECT_DOUBLE_EQ(table.PrimaryLoad(1), 1.0);
  EXPECT_EQ(table.PrimariesOn(0).size(), 2u);
}

// --- ReplicationManager (epoch group commit) ----------------------------------

TEST(ReplicationTest, EpochShipsLogAndAdvancesSecondaryLsn) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();

  cluster.replication().Append(0, 1, 100);
  cluster.replication().Append(0, 2, 200);
  EXPECT_EQ(cluster.router().group(0).primary_lsn(), 2u);
  EXPECT_EQ(cluster.router().group(0).LagOf(1), 2u);  // secondary of p0 on n1

  sim.RunUntil(cfg.epoch_interval + 10 * kMillisecond);
  EXPECT_EQ(cluster.router().group(0).LagOf(1), 0u);
  EXPECT_EQ(cluster.replication().total_entries_shipped(), 2u);
}

TEST(ReplicationTest, MaterializedSecondariesMatchPrimary) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  cfg.materialize_secondaries = true;
  Cluster cluster(&sim, cfg);
  cluster.Start();

  cluster.store(0)->Apply(5, 555);
  cluster.replication().Append(0, 5, 555);
  sim.RunUntil(cfg.epoch_interval + 10 * kMillisecond);

  const auto* copy = cluster.replication().MaterializedCopy(0, 1);
  ASSERT_NE(copy, nullptr);
  ASSERT_TRUE(copy->count(5));
  EXPECT_EQ(copy->at(5), 555u);
}

TEST(ReplicationTest, OnEpochEndFiresAtBoundary) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  SimTime fired = -1;
  cluster.replication().OnEpochEnd([&]() { fired = sim.Now(); });
  sim.RunUntil(3 * cfg.epoch_interval);
  EXPECT_EQ(fired, cfg.epoch_interval);
}

TEST(ReplicationTest, DeleteFlaggedReplicaStopsReceiving) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  cluster.router().mutable_group(0)->FlagForDelete(1);
  cluster.replication().Append(0, 1, 42);
  sim.RunUntil(2 * cfg.epoch_interval);
  // The flagged secondary never acked, so its lag persists.
  EXPECT_EQ(cluster.router().group(0).primary_lsn(), 1u);
  for (const auto& s : cluster.router().group(0).secondaries()) {
    if (s.node == 1) {
      EXPECT_EQ(s.applied_lsn, 0u);
    }
  }
}

// --- RemasterManager ----------------------------------------------------------

TEST(RemasterTest, PromotesSecondaryAfterDelay) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();

  bool ok = false;
  SimTime done_at = -1;
  // Partition 0: primary n0, secondary n1.
  cluster.remaster().Remaster(0, 1, [&](bool success) {
    ok = success;
    done_at = sim.Now();
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_TRUE(cluster.router().HasSecondary(0, 0));
  EXPECT_GE(done_at, cfg.remaster_base_delay);
  EXPECT_EQ(cluster.remaster().remasters_completed(), 1u);
}

TEST(RemasterTest, RemasterToPrimaryIsInstantSuccess) {
  Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  bool ok = false;
  cluster.remaster().Remaster(0, 0, [&](bool success) { ok = success; });
  EXPECT_TRUE(ok);  // synchronous: already primary
}

TEST(RemasterTest, FailsWithoutSecondary) {
  Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  // Partition 0 replicas on n0 (primary), n1 (secondary); n2 has none.
  bool called = false, ok = true;
  cluster.remaster().Remaster(0, 2, [&](bool success) {
    called = true;
    ok = success;
  });
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(cluster.remaster().remasters_failed(), 1u);
}

TEST(RemasterTest, ConcurrentRemasterConflictFirstWins) {
  Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  ClusterConfig cfg = SmallConfig();
  // Give partition 0 a second secondary so both targets are plausible.
  cluster.router().mutable_group(0)->AddSecondary(2, 0);

  bool first_ok = false, second_ok = true;
  cluster.remaster().Remaster(0, 1, [&](bool s) { first_ok = s; });
  cluster.remaster().Remaster(0, 2, [&](bool s) { second_ok = s; });
  sim.RunUntilIdle();
  EXPECT_TRUE(first_ok);
  EXPECT_FALSE(second_ok);  // conflict: the partition was being remastered
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  (void)cfg;
}

TEST(RemasterTest, BlocksAndReleasesWaiters) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();

  std::vector<SimTime> waiter_times;
  cluster.remaster().Remaster(0, 1, [](bool) {});
  EXPECT_TRUE(cluster.remaster().IsBlocked(0));
  cluster.remaster().WaitUntilAvailable(0, [&]() { waiter_times.push_back(sim.Now()); });
  cluster.remaster().WaitUntilAvailable(1, [&]() { waiter_times.push_back(sim.Now()); });
  EXPECT_EQ(waiter_times.size(), 1u);  // partition 1 is free: runs immediately
  sim.RunUntilIdle();
  ASSERT_EQ(waiter_times.size(), 2u);
  EXPECT_GE(waiter_times[1], cfg.remaster_base_delay);
  EXPECT_FALSE(cluster.remaster().IsBlocked(0));
}

TEST(RemasterTest, LagIncreasesRemasterDuration) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  cfg.remaster_per_entry = 1000;  // 1 us per entry, visible in timing
  Cluster cluster(&sim, cfg);

  // Build up lag on partition 0's secondary (n1): append without shipping.
  for (int i = 0; i < 1000; ++i) cluster.replication().Append(0, i, i);

  SimTime done_at = -1;
  cluster.remaster().Remaster(0, 1, [&](bool) { done_at = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_GE(done_at, cfg.remaster_base_delay + 1000 * 1000);
}

// --- MigrationManager ---------------------------------------------------------

TEST(MigrationTest, AddReplicaRegistersSecondary) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();

  bool ok = false;
  cluster.migration().AddReplica(0, 2, [&](bool s) { ok = s; });
  EXPECT_FALSE(cluster.router().HasSecondary(2, 0));  // async: not yet
  sim.RunUntilIdle();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(cluster.router().HasSecondary(2, 0));
  EXPECT_EQ(cluster.migration().migrations_completed(), 1u);
  EXPECT_EQ(cluster.migration().migrated_bytes(),
            cfg.records_per_partition * cfg.record_bytes);
}

TEST(MigrationTest, AddReplicaDoesNotBlockWrites) {
  Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  cluster.migration().AddReplica(0, 2, [](bool) {});
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

TEST(MigrationTest, AddReplicaOnExistingHostSucceedsImmediately) {
  Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  bool ok = false;
  cluster.migration().AddReplica(0, 1, [&](bool s) { ok = s; });  // n1 already secondary
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster.migration().migrations_completed(), 0u);
}

TEST(MigrationTest, MovePrimaryWithoutReplicaBlocksDuringTransfer) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();

  bool ok = false;
  cluster.migration().MovePrimary(0, 2, [&](bool s) { ok = s; });
  EXPECT_TRUE(cluster.store(0)->write_blocked());  // Leap/Clay-style downtime
  sim.RunUntilIdle();
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 2);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

TEST(MigrationTest, MovePrimaryUsesRemasterWhenSecondaryExists) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();

  bool ok = false;
  cluster.migration().MovePrimary(0, 1, [&](bool s) { ok = s; });  // n1 = secondary
  sim.RunUntilIdle();
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_EQ(cluster.remaster().remasters_completed(), 1u);
  EXPECT_EQ(cluster.migration().migrations_completed(), 0u);  // no copy needed
}

TEST(MigrationTest, EvictionFlagsWorstLaggingSecondary) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  cfg.max_replicas = 2;
  Cluster cluster(&sim, cfg);

  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->AddSecondary(2, 0);
  g->Advance(10);
  g->Ack(1, 10);  // n1 caught up; n2 lags by 10
  EXPECT_EQ(g->LiveReplicaCount(), 3);

  NodeId victim = cluster.migration().EvictIfOverLimit(0, 1);
  EXPECT_EQ(victim, 2);
  EXPECT_EQ(g->LiveReplicaCount(), 2);
  EXPECT_EQ(cluster.migration().evictions(), 1u);
}

TEST(MigrationTest, EvictionRespectsKeepNode) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  cfg.max_replicas = 2;
  Cluster cluster(&sim, cfg);
  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->AddSecondary(2, 0);
  NodeId victim = cluster.migration().EvictIfOverLimit(0, 2);
  EXPECT_EQ(victim, 1);  // n2 protected by keep
}

TEST(MigrationTest, NoEvictionUnderLimit) {
  Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  EXPECT_EQ(cluster.migration().EvictIfOverLimit(0, kInvalidNode), kInvalidNode);
}

// --- Cluster assembly ----------------------------------------------------------

TEST(ClusterTest, TopologyMatchesConfig) {
  Simulator sim;
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(&sim, cfg);
  EXPECT_EQ(cluster.num_nodes(), 3);
  EXPECT_EQ(cluster.num_partitions(), 6);
  for (PartitionId p = 0; p < 6; ++p) {
    EXPECT_EQ(cluster.store(p)->id(), p);
    EXPECT_EQ(cluster.PrimaryOf(p), p % 3);
  }
}

TEST(ClusterTest, LeastLoadedNodePrefersIdle) {
  Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  cluster.pool(0)->Submit(TaskPriority::kNew, 1000, []() {});
  cluster.pool(1)->Submit(TaskPriority::kNew, 1000, []() {});
  EXPECT_EQ(cluster.LeastLoadedNode(), 2);
}

}  // namespace
}  // namespace lion
