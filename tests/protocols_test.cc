// End-to-end tests for every baseline protocol: commits happen, the
// shape-critical behaviours (migration blocking, super-node routing,
// deterministic locking, reservations, granule conflicts) are exercised.
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "protocols/aria.h"
#include "protocols/calvin.h"
#include "protocols/clay.h"
#include "protocols/hermes.h"
#include "protocols/leap.h"
#include "protocols/lotus.h"
#include "protocols/star.h"
#include "protocols/twopc.h"
#include "workload/ycsb.h"

namespace lion {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 2000;
  cfg.record_bytes = 100;
  return cfg;
}

YcsbConfig CrossWorkload(double cross) {
  YcsbConfig y;
  y.ops_per_txn = 6;
  y.cross_ratio = cross;
  return y;
}

TxnPtr MakeWrite(TxnId id, PartitionId pid, Key key) {
  auto txn = std::make_unique<Transaction>(id, 0);
  Operation op;
  op.partition = pid;
  op.key = key;
  op.type = OpType::kWrite;
  op.write_value = id;
  txn->ops().push_back(op);
  return txn;
}

TxnPtr MakeCross(TxnId id, PartitionId a, PartitionId b) {
  auto txn = std::make_unique<Transaction>(id, 0);
  for (PartitionId pid : {a, b}) {
    Operation op;
    op.partition = pid;
    op.key = 5;
    op.type = OpType::kWrite;
    op.write_value = id;
    txn->ops().push_back(op);
  }
  return txn;
}

// Runs a protocol against YCSB for a fixed horizon and returns metrics.
template <typename P, typename... Args>
void RunClosedLoop(const ClusterConfig& ccfg, const YcsbConfig& ycfg,
                   MetricsCollector* metrics, SimTime horizon, Args&&... args) {
  Simulator sim;
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  P protocol(&cluster, metrics, std::forward<Args>(args)...);
  protocol.Start();
  YcsbWorkload workload(ccfg, ycfg);
  ClosedLoopDriver driver(&sim, &protocol, &workload, metrics, 24);
  driver.Start();
  sim.RunUntil(horizon);
  driver.Stop();
}

// --- Leap -----------------------------------------------------------------------

TEST(LeapTest, LocalTxnCommitsWithoutMigration) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  cluster.Start();
  MetricsCollector metrics;
  LeapProtocol leap(&cluster, &metrics);
  bool done = false;
  leap.Submit(MakeWrite(1, 0, 3), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kSingleNode);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(leap.migrations_requested(), 0u);
}

TEST(LeapTest, CrossTxnPullsMastershipThenCommitsLocally) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LeapProtocol leap(&cluster, &metrics);
  // Partitions 0 (n0) and 1 (n1): Leap pulls one of them over.
  bool done = false;
  leap.Submit(MakeCross(1, 0, 1), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kRemastered);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(leap.migrations_requested(), 1u);
  // Both primaries now co-located on the coordinator.
  EXPECT_EQ(cluster.router().PrimaryOf(0), cluster.router().PrimaryOf(1));
  EXPECT_EQ(metrics.distributed(), 0u);  // Leap never runs 2PC
}

TxnPtr MakeAnchored(TxnId id, PartitionId a, PartitionId b, PartitionId c) {
  auto txn = std::make_unique<Transaction>(id, 0);
  for (PartitionId pid : {a, b, c}) {
    Operation op;
    op.partition = pid;
    op.key = 5;
    op.type = OpType::kWrite;
    op.write_value = id;
    txn->ops().push_back(op);
  }
  return txn;
}

TEST(LeapTest, PingPongUnderOppositeAffinity) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LeapProtocol leap(&cluster, &metrics);
  // Stream A anchors on n0 (partitions 0, 3), stream B anchors on n1
  // (partitions 1, 4); both also touch the contested partition 2, which
  // Leap keeps pulling back and forth: the ping-pong effect.
  int done = 0;
  for (int round = 0; round < 3; ++round) {
    sim.Schedule(round * 100 * kMillisecond, [&, round]() {
      leap.Submit(MakeAnchored(round * 2 + 1, 0, 3, 2), [&](TxnPtr) { done++; });
    });
    sim.Schedule(round * 100 * kMillisecond + 50 * kMillisecond, [&, round]() {
      leap.Submit(MakeAnchored(round * 2 + 2, 1, 4, 2), [&](TxnPtr) { done++; });
    });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(done, 6);
  // The contested partition migrated repeatedly between the two anchors.
  EXPECT_GE(cluster.migration().migrations_completed(), 4u);
}

TEST(LeapTest, ClosedLoopYcsb) {
  MetricsCollector metrics;
  RunClosedLoop<LeapProtocol>(SmallCluster(), CrossWorkload(0.5), &metrics,
                              1 * kSecond);
  EXPECT_GT(metrics.committed(), 100u);
  EXPECT_EQ(metrics.distributed(), 0u);
}

// --- Clay -----------------------------------------------------------------------

TEST(ClayTest, TransactionsAlwaysUse2pcPath) {
  MetricsCollector metrics;
  RunClosedLoop<ClayProtocol>(SmallCluster(), CrossWorkload(1.0), &metrics,
                              1 * kSecond);
  EXPECT_GT(metrics.committed(), 50u);
  EXPECT_GT(metrics.distributed(), 0u);  // Clay does not convert txns
}

TEST(ClayTest, RepartitionsOnLoadImbalance) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  ClayConfig clay_cfg;
  clay_cfg.monitor_interval = 100 * kMillisecond;
  clay_cfg.epsilon = 0.1;
  ClayProtocol clay(&cluster, &metrics, clay_cfg);
  clay.Start();

  YcsbConfig ycfg = CrossWorkload(0.3);
  ycfg.skew_factor = 0.9;  // hammer node 0
  YcsbWorkload workload(ccfg, ycfg);
  ClosedLoopDriver driver(&sim, &clay, &workload, &metrics, 24);
  driver.Start();
  sim.RunUntil(2 * kSecond);
  driver.Stop();
  EXPECT_GT(clay.repartitions(), 0u);
}

TEST(ClayTest, NoRepartitionWhenBalanced) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  ClayProtocol clay(&cluster, &metrics);
  clay.Start();
  YcsbWorkload workload(ccfg, CrossWorkload(0.0));  // uniform single-node
  ClosedLoopDriver driver(&sim, &clay, &workload, &metrics, 24);
  driver.Start();
  sim.RunUntil(2 * kSecond);
  driver.Stop();
  EXPECT_EQ(clay.repartitions(), 0u);
}

// --- Star -----------------------------------------------------------------------

TEST(StarTest, SuperNodeGetsFullReplicaSet) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  MetricsCollector metrics;
  StarProtocol star(&cluster, &metrics);
  star.Start();
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_TRUE(cluster.router().HasReplica(0, p)) << "partition " << p;
  }
}

TEST(StarTest, CrossTxnsRunOnSuperNode) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  StarProtocol star(&cluster, &metrics);
  star.Start();
  bool done = false;
  star.Submit(MakeCross(1, 1, 2), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->coordinator(), 0);  // the super node
    EXPECT_EQ(t->exec_class(), ExecClass::kRemastered);
  });
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_TRUE(done);
  EXPECT_EQ(star.super_node_txns(), 1u);
}

TEST(StarTest, SingleHomeTxnsStayOnHomeNodes) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  StarProtocol star(&cluster, &metrics);
  star.Start();
  bool done = false;
  star.Submit(MakeWrite(1, 1, 3), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->coordinator(), 1);
    EXPECT_EQ(t->exec_class(), ExecClass::kSingleNode);
  });
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_TRUE(done);
  EXPECT_EQ(star.super_node_txns(), 0u);
}

TEST(StarTest, ClosedLoopHighCross) {
  MetricsCollector metrics;
  RunClosedLoop<StarProtocol>(SmallCluster(), CrossWorkload(0.8), &metrics,
                              1 * kSecond);
  EXPECT_GT(metrics.committed(), 100u);
}

// --- Calvin ---------------------------------------------------------------------

TEST(CalvinTest, CommitsSingleAndMultiHome) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  CalvinProtocol calvin(&cluster, &metrics);
  calvin.Start();
  int done = 0;
  ExecClass cls1 = ExecClass::kSingleNode, cls2 = ExecClass::kSingleNode;
  calvin.Submit(MakeWrite(1, 0, 3), [&](TxnPtr t) {
    done++;
    cls1 = t->exec_class();
  });
  calvin.Submit(MakeCross(2, 0, 1), [&](TxnPtr t) {
    done++;
    cls2 = t->exec_class();
  });
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(cls1, ExecClass::kSingleNode);
  EXPECT_EQ(cls2, ExecClass::kDistributed);
  EXPECT_EQ(metrics.aborts(), 0u);  // deterministic: no aborts
}

TEST(CalvinTest, WritesApplied) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  CalvinProtocol calvin(&cluster, &metrics);
  calvin.Start();
  calvin.Submit(MakeCross(7, 0, 1), [](TxnPtr) {});
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_EQ(cluster.store(0)->VersionOf(5), 2u);
  EXPECT_EQ(cluster.store(1)->VersionOf(5), 2u);
}

TEST(CalvinTest, ClosedLoopYcsb) {
  MetricsCollector metrics;
  RunClosedLoop<CalvinProtocol>(SmallCluster(), CrossWorkload(0.5), &metrics,
                                1 * kSecond);
  EXPECT_GT(metrics.committed(), 100u);
  EXPECT_EQ(metrics.aborts(), 0u);
}

// --- Hermes ---------------------------------------------------------------------

TEST(HermesTest, MigratesToSingleHomeAndCommits) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  HermesProtocol hermes(&cluster, &metrics);
  hermes.Start();
  bool done = false;
  hermes.Submit(MakeCross(1, 0, 1), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kRemastered);
  });
  sim.RunUntil(10 * ccfg.epoch_interval);
  EXPECT_TRUE(done);
  EXPECT_GE(hermes.migrations_requested(), 1u);
  EXPECT_EQ(cluster.router().PrimaryOf(0), cluster.router().PrimaryOf(1));
}

TEST(HermesTest, BatchReorderingReusesMigrations) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  HermesProtocol hermes(&cluster, &metrics);
  hermes.Start();
  int done = 0;
  // Five txns on the same partition pair inside one batch: after the first
  // migration the rest find the pair co-located.
  for (int i = 0; i < 5; ++i) {
    hermes.Submit(MakeCross(i + 1, 0, 1), [&](TxnPtr) { done++; });
  }
  sim.RunUntil(10 * ccfg.epoch_interval);
  EXPECT_EQ(done, 5);
  // Only the first transaction's migration actually moves data; the other
  // four find the pair co-located once it completes.
  EXPECT_LE(cluster.migration().migrations_completed(), 2u);
}

TEST(HermesTest, ClosedLoopYcsb) {
  MetricsCollector metrics;
  RunClosedLoop<HermesProtocol>(SmallCluster(), CrossWorkload(0.5), &metrics,
                                1 * kSecond);
  EXPECT_GT(metrics.committed(), 100u);
}

// --- Aria -----------------------------------------------------------------------

TEST(AriaTest, NonConflictingTxnsCommitInOneBatch) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  AriaProtocol aria(&cluster, &metrics);
  aria.Start();
  int done = 0;
  aria.Submit(MakeWrite(1, 0, 3), [&](TxnPtr) { done++; });
  aria.Submit(MakeWrite(2, 1, 4), [&](TxnPtr) { done++; });
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(aria.reservation_aborts(), 0u);
}

TEST(AriaTest, BlindWriteWriteConflictCommitsViaReordering) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  AriaProtocol aria(&cluster, &metrics);
  aria.Start();
  int done = 0;
  // Same key, blind writes: Aria's reordering serializes them by txn id
  // within the batch — both commit, no aborts.
  aria.Submit(MakeWrite(1, 0, 7), [&](TxnPtr) { done++; });
  aria.Submit(MakeWrite(2, 0, 7), [&](TxnPtr) { done++; });
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(aria.reservation_aborts(), 0u);
}

TEST(AriaTest, ReadAfterWriteHazardAbortsReader) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  AriaProtocol aria(&cluster, &metrics);
  aria.Start();
  int done = 0;
  // Txn 1 writes key 7; txn 2 reads it in the same batch: the reader saw a
  // stale snapshot and must re-execute next batch.
  aria.Submit(MakeWrite(1, 0, 7), [&](TxnPtr) { done++; });
  auto reader = std::make_unique<Transaction>(2, 0);
  Operation op;
  op.partition = 0;
  op.key = 7;
  op.type = OpType::kRead;
  reader->ops().push_back(op);
  aria.Submit(std::move(reader), [&](TxnPtr) { done++; });
  sim.RunUntil(10 * ccfg.epoch_interval);
  EXPECT_EQ(done, 2);
  EXPECT_GE(aria.reservation_aborts(), 1u);
  EXPECT_GE(metrics.aborts(), 1u);
}

TEST(AriaTest, ClosedLoopYcsb) {
  MetricsCollector metrics;
  RunClosedLoop<AriaProtocol>(SmallCluster(), CrossWorkload(0.5), &metrics,
                              1 * kSecond);
  EXPECT_GT(metrics.committed(), 100u);
}

// --- Lotus ----------------------------------------------------------------------

TEST(LotusTest, GranuleConflictAbortsToNextEpoch) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LotusProtocol lotus(&cluster, &metrics);
  lotus.Start();
  int done = 0;
  // Two txns on the same granule (same key) in one batch: lock conflict.
  lotus.Submit(MakeWrite(1, 0, 3), [&](TxnPtr) { done++; });
  lotus.Submit(MakeWrite(2, 0, 3), [&](TxnPtr) { done++; });
  sim.RunUntil(10 * ccfg.epoch_interval);
  EXPECT_EQ(done, 2);
  EXPECT_GE(lotus.granule_conflicts(), 1u);
}

TEST(LotusTest, DisjointPartitionsNoConflict) {
  Simulator sim;
  ClusterConfig ccfg = SmallCluster();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LotusProtocol lotus(&cluster, &metrics);
  lotus.Start();
  int done = 0;
  lotus.Submit(MakeWrite(1, 0, 3), [&](TxnPtr) { done++; });
  lotus.Submit(MakeWrite(2, 1, 3), [&](TxnPtr) { done++; });
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(lotus.granule_conflicts(), 0u);
}

TEST(LotusTest, ClosedLoopYcsb) {
  MetricsCollector metrics;
  RunClosedLoop<LotusProtocol>(SmallCluster(), CrossWorkload(0.2), &metrics,
                               1 * kSecond);
  EXPECT_GT(metrics.committed(), 100u);
}

}  // namespace
}  // namespace lion
