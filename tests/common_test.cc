// Unit tests for src/common: Status, Rng, ZipfianGenerator, Histogram,
// MoveFn (small-buffer optimization).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <utility>

#include "common/histogram.h"
#include "common/move_fn.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace lion {
namespace {

// --- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::Aborted("validation failed");
  EXPECT_EQ(s.ToString(), "ABORTED: validation failed");
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next64() == b.Next64()) same++;
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    if (rng.Bernoulli(0.3)) hits++;
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, WeightedIndexAllZeroReturnsZero) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

// --- Zipfian ----------------------------------------------------------------

TEST(ZipfianTest, ThetaZeroIsUniform) {
  Rng rng(13);
  ZipfianGenerator zipf(10, 0.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.Next(&rng)]++;
  for (auto& [v, c] : counts) {
    EXPECT_LT(v, 10u);
    EXPECT_NEAR(c, 5000, 500);
  }
}

TEST(ZipfianTest, SkewConcentratesOnLowIndices) {
  Rng rng(13);
  ZipfianGenerator zipf(1000, 0.99);
  int low = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    if (zipf.Next(&rng) < 10) low++;
  // With theta=0.99, the top-10 of 1000 items draw a large share (> 30%).
  EXPECT_GT(low, kTrials * 3 / 10);
}

TEST(ZipfianTest, AllValuesInRange) {
  Rng rng(17);
  ZipfianGenerator zipf(50, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 50u);
}

TEST(ZipfianTest, MonotoneFrequencyByRank) {
  Rng rng(19);
  ZipfianGenerator zipf(100, 0.9);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(&rng)]++;
  // Head should dominate the tail.
  EXPECT_GT(counts[0], counts[50] * 3);
  EXPECT_GT(counts[0], counts[99]);
}

// --- Histogram ----------------------------------------------------------------

TEST(HistogramTest, EmptyReturnsZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 1234);
  EXPECT_EQ(h.Max(), 1234);
  EXPECT_NEAR(h.Percentile(0.5), 1234, 1234 * 0.07);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Record(static_cast<int64_t>(rng.Uniform(1000000)));
  int64_t p10 = h.Percentile(0.10);
  int64_t p50 = h.Percentile(0.50);
  int64_t p95 = h.Percentile(0.95);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p95);
  // Uniform distribution: p50 near 500k within bucket error.
  EXPECT_NEAR(p50, 500000, 60000);
  EXPECT_NEAR(p95, 950000, 90000);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Count(), 1u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_EQ(a.Min(), 10);
  EXPECT_EQ(a.Max(), 1000000);
  EXPECT_LE(a.Percentile(0.25), 11);
  EXPECT_GT(a.Percentile(0.75), 900000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  int64_t big = int64_t{1} << 40;
  h.Record(big);
  EXPECT_EQ(h.Max(), big);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), static_cast<double>(big),
              static_cast<double>(big) * 0.07);
}

// --- MoveFn -----------------------------------------------------------------

// Instance-counting functor used to verify that every target constructed
// inside a MoveFn (including intermediates created by relocation) is
// destroyed exactly once. Small enough for the inline buffer.
struct Counted {
  explicit Counted(int* live) : live(live) { ++*live; }
  Counted(const Counted& o) : live(o.live) { ++*live; }
  Counted(Counted&& o) noexcept : live(o.live) { ++*live; }
  ~Counted() { --*live; }
  int operator()() const { return 7; }
  int* live;
};

TEST(MoveFnTest, SmallTargetStaysInline) {
  int x = 5;
  MoveFn<int()> fn([x]() { return x + 1; });
  EXPECT_TRUE(fn.uses_inline_storage());
  EXPECT_EQ(fn(), 6);
}

TEST(MoveFnTest, FatTargetFallsBackToHeap) {
  unsigned char blob[MoveFn<int()>::kInlineBytes + 16];
  std::memset(blob, 3, sizeof(blob));
  MoveFn<int()> fn([blob]() { return static_cast<int>(blob[0]); });
  EXPECT_FALSE(fn.uses_inline_storage());
  EXPECT_EQ(fn(), 3);
}

TEST(MoveFnTest, MoveTransfersInlineTarget) {
  auto owned = std::make_unique<int>(11);
  MoveFn<int()> a([p = std::move(owned)]() { return *p; });
  ASSERT_TRUE(a.uses_inline_storage());
  MoveFn<int()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b(), 11);
}

TEST(MoveFnTest, MoveTransfersHeapTarget) {
  unsigned char blob[MoveFn<int()>::kInlineBytes + 16] = {42};
  MoveFn<int()> a([blob]() { return static_cast<int>(blob[0]); });
  ASSERT_FALSE(a.uses_inline_storage());
  MoveFn<int()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(b(), 42);
}

TEST(MoveFnTest, MoveAssignmentDestroysPreviousTarget) {
  int live_a = 0, live_b = 0;
  MoveFn<int()> fn{Counted(&live_a)};
  EXPECT_EQ(live_a, 1);
  fn = MoveFn<int()>(Counted(&live_b));
  EXPECT_EQ(live_a, 0);  // old target destroyed by the assignment
  EXPECT_EQ(live_b, 1);
  EXPECT_EQ(fn(), 7);
}

TEST(MoveFnTest, DestructionCountsBalanceForInlineTarget) {
  int live = 0;
  {
    MoveFn<int()> a{Counted(&live)};
    EXPECT_TRUE(a.uses_inline_storage());
    EXPECT_GE(live, 1);
    MoveFn<int()> b = std::move(a);
    MoveFn<int()> c;
    c = std::move(b);
    EXPECT_EQ(c(), 7);
    EXPECT_EQ(live, 1);  // exactly the one target survives the moves
  }
  EXPECT_EQ(live, 0);
}

TEST(MoveFnTest, DestructionCountsBalanceForHeapTarget) {
  int live = 0;
  struct FatCounted : Counted {
    using Counted::Counted;
    unsigned char pad[MoveFn<int()>::kInlineBytes] = {};
  };
  {
    MoveFn<int()> a{FatCounted(&live)};
    EXPECT_FALSE(a.uses_inline_storage());
    MoveFn<int()> b = std::move(a);
    EXPECT_EQ(b(), 7);
    EXPECT_EQ(live, 1);  // heap relocation transfers the pointer, no copies
  }
  EXPECT_EQ(live, 0);
}

TEST(MoveFnTest, EmptyStates) {
  MoveFn<void()> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_FALSE(empty.uses_inline_storage());
  MoveFn<void()> null_init(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_init));
}

TEST(MoveFnTest, ArgumentsAndReturnForwarded) {
  MoveFn<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
  MoveFn<std::unique_ptr<int>(std::unique_ptr<int>)> pass(
      [](std::unique_ptr<int> p) { return p; });
  auto out = pass(std::make_unique<int>(9));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 9);
}

}  // namespace
}  // namespace lion
