// Geo-replication tests: topology tables and validation, region-aware
// network delays with deterministic jitter, placement constraints, and
// end-to-end determinism of the geo_occ protocol.
#include <gtest/gtest.h>

#include "core/geo_placement.h"
#include "core/lion_protocol.h"
#include "harness/config_schema.h"
#include "harness/experiment.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace lion {
namespace {

// --- Topology ---------------------------------------------------------------

TEST(TopologyTest, FlatDefaultReproducesSingleDatacenterModel) {
  NetworkConfig cfg;
  Topology topo(cfg, 4);
  EXPECT_EQ(topo.regions(), 1);
  EXPECT_EQ(topo.region_of(0), 0);
  EXPECT_EQ(topo.region_of(3), 0);
  EXPECT_FALSE(topo.cross_region(0, 3));
  EXPECT_EQ(topo.base_latency(0, 3), cfg.one_way_latency);
  EXPECT_EQ(topo.bandwidth(1, 2), cfg.bandwidth_bytes_per_sec);
  EXPECT_EQ(topo.max_cross_region_latency(), 0);
}

TEST(TopologyTest, DefaultAssignmentSplitsNodesIntoContiguousBlocks) {
  NetworkConfig cfg;
  cfg.regions = 2;
  Topology topo(cfg, 4);
  EXPECT_EQ(topo.region_of(0), 0);
  EXPECT_EQ(topo.region_of(1), 0);
  EXPECT_EQ(topo.region_of(2), 1);
  EXPECT_EQ(topo.region_of(3), 1);
  EXPECT_TRUE(topo.cross_region(1, 2));
  // No matrix declared: intra-region pairs keep the LAN latency, distinct
  // regions the scalar WAN default.
  EXPECT_EQ(topo.base_latency(0, 1), cfg.one_way_latency);
  EXPECT_EQ(topo.base_latency(1, 2), cfg.cross_region_latency);
  EXPECT_EQ(topo.max_cross_region_latency(), cfg.cross_region_latency);
}

TEST(TopologyTest, ExplicitMatricesDriveLatencyAndBandwidth) {
  NetworkConfig cfg;
  cfg.regions = 2;
  cfg.node_regions = {0, 1, 0, 1};  // interleaved, not the block default
  cfg.region_latency_ms = {0.05, 30.0, 30.0, 0.05};
  cfg.region_bandwidth_bytes_per_sec = {1e9, 1e6, 1e6, 1e9};
  Topology topo(cfg, 4);
  EXPECT_EQ(topo.region_of(1), 1);
  EXPECT_EQ(topo.region_of(2), 0);
  EXPECT_EQ(topo.base_latency(0, 2), 50 * kMicrosecond);   // 0 -> 0
  EXPECT_EQ(topo.base_latency(0, 1), 30 * kMillisecond);   // 0 -> 1
  EXPECT_EQ(topo.bandwidth(0, 2), 1e9);
  EXPECT_EQ(topo.bandwidth(0, 1), 1e6);
  EXPECT_EQ(topo.max_cross_region_latency(), 30 * kMillisecond);
}

TEST(TopologyTest, ValidateRejectsBadGeometry) {
  NetworkConfig cfg;
  cfg.regions = 2;

  cfg.node_regions = {0, 1, 0};  // three entries for four nodes
  Status s = Topology::Validate(cfg, 4);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("cluster.net.node_regions"), std::string::npos);

  cfg.node_regions = {0, 1, 0, 2};  // region 2 out of range
  s = Topology::Validate(cfg, 4);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("node_regions[3]"), std::string::npos);
  EXPECT_NE(s.message().find("unknown region 2"), std::string::npos);

  cfg.node_regions = {0, 1, 0, 1};
  cfg.region_latency_ms = {1.0, 2.0};  // needs regions^2 = 4 entries
  s = Topology::Validate(cfg, 4);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("regions^2"), std::string::npos);
}

// --- Network over the topology ----------------------------------------------

TEST(GeoNetworkTest, CrossRegionDelayUsesRegionPairLatencyAndBandwidth) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.regions = 2;
  cfg.one_way_latency = 25 * kMicrosecond;
  cfg.cross_region_latency = 30 * kMillisecond;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 1000 bytes = 1 ms
  Network net(&sim, cfg, /*num_nodes=*/4);
  SimTime intra = -1, cross = -1;
  net.Send(0, 1, 1000, [&]() { intra = sim.Now(); });  // both region 0
  net.Send(0, 3, 1000, [&]() { cross = sim.Now(); });  // region 0 -> 1
  sim.RunUntilIdle();
  EXPECT_EQ(intra, 25 * kMicrosecond + 1 * kMillisecond);
  EXPECT_EQ(cross, 30 * kMillisecond + 1 * kMillisecond);
}

TEST(GeoNetworkTest, JitterIsBoundedAndDeterministic) {
  NetworkConfig cfg;
  cfg.regions = 2;
  cfg.cross_region_latency = 30 * kMillisecond;
  cfg.jitter_pct = 0.1;
  SimTime nominal = cfg.cross_region_latency +
                    static_cast<SimTime>(std::llround(
                        1000.0 / cfg.bandwidth_bytes_per_sec * kSecond));
  auto deliver_times = [&cfg](uint64_t seed) {
    Simulator sim(seed);
    Network net(&sim, cfg, 4);
    std::vector<SimTime> times;
    for (int i = 0; i < 16; ++i) {
      net.Send(0, 3, 1000, [&]() { times.push_back(sim.Now()); });
    }
    sim.RunUntilIdle();
    return times;
  };
  std::vector<SimTime> a = deliver_times(7);
  ASSERT_EQ(a.size(), 16u);
  bool varied = false;
  for (SimTime t : a) {
    EXPECT_GE(t, static_cast<SimTime>(0.9 * nominal));
    EXPECT_LE(t, static_cast<SimTime>(1.1 * nominal));
    if (t != a[0]) varied = true;
  }
  EXPECT_TRUE(varied);  // +-10% of 30 ms: 16 equal draws would be a bug
  EXPECT_EQ(a, deliver_times(7));   // same seed, same jitter
  EXPECT_NE(a, deliver_times(8));   // different seed, different jitter
}

// --- Config schema ----------------------------------------------------------

TEST(GeoConfigSchemaTest, RegionFieldsRoundTripExactly) {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.net.regions = 3;
  cfg.cluster.net.node_regions = {0, 0, 1, 2};
  cfg.cluster.net.region_latency_ms = {0.05, 30, 80, 30, 0.05, 50,
                                       80, 50, 0.05};
  cfg.cluster.net.cross_region_latency = 45 * kMillisecond;
  cfg.cluster.net.region_bandwidth_bytes_per_sec =
      std::vector<double>(9, 2.5e8);
  cfg.cluster.net.jitter_pct = 0.07;
  cfg.lion.geo.replica_regions = {0, 2};
  cfg.lion.geo.min_replicas_per_region = 2;
  cfg.lion.geo.wan_migration_multiplier = 4.0;
  cfg.lion.geo.hot_primary_pin_threshold = 0.6;

  std::string text = EmitExperimentConfig(cfg).Dump();
  Json doc;
  ASSERT_TRUE(Json::Parse(text, &doc).ok()) << text;
  ExperimentConfig back;
  Status s = ParseExperimentConfig(doc, &back);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(EmitExperimentConfig(back).Dump(), text);
  EXPECT_EQ(back.cluster.net.node_regions, cfg.cluster.net.node_regions);
  EXPECT_EQ(back.lion.geo.replica_regions, cfg.lion.geo.replica_regions);
}

TEST(GeoConfigSchemaTest, ValidationErrorsCarryDottedPaths) {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 4;
  cfg.cluster.net.regions = 2;
  cfg.cluster.net.node_regions = {0, 1};  // wrong length for 4 nodes
  Status s = ExperimentBuilder(cfg).Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("cluster.net.node_regions"), std::string::npos);

  cfg.cluster.net.node_regions.clear();
  cfg.lion.geo.replica_regions = {0, 5};  // region 5 does not exist
  s = ExperimentBuilder(cfg).Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("lion.geo.replica_regions"), std::string::npos);

  cfg.lion.geo.replica_regions = {0, 1};
  cfg.lion.geo.min_replicas_per_region = cfg.cluster.max_replicas + 1;
  s = ExperimentBuilder(cfg).Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("min_replicas_per_region"), std::string::npos);

  // Per-element schema checks report the offending index.
  cfg = ExperimentConfig{};
  cfg.cluster.net.node_regions = {0, -1};
  s = ValidateExperimentConfig(cfg);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("node_regions[1]"), std::string::npos);
}

// --- GeoPlacement -----------------------------------------------------------

NetworkConfig TwoRegionNet() {
  NetworkConfig net;
  net.regions = 2;  // block default over 4 nodes: {0, 0, 1, 1}
  return net;
}

TEST(GeoPlacementTest, DefaultsConstrainNothing) {
  NetworkConfig net = TwoRegionNet();
  Topology topo(net, 4);
  GeoPlacement geo(GeoPlacementConfig{}, &topo);
  RouterTable table(4, 8);
  table.InitRoundRobin(1);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_TRUE(geo.AllowsNode(n));
    EXPECT_TRUE(geo.AllowsPrimaryOn(table, 0, n));
  }
  EXPECT_EQ(geo.MigrationMultiplier(0, 3), 1.0);
  EXPECT_EQ(geo.EnsureRegionalReplicas(&table, 4), 0);
}

TEST(GeoPlacementTest, ReplicaRegionsRestrictNodes) {
  NetworkConfig net = TwoRegionNet();
  Topology topo(net, 4);
  GeoPlacementConfig cfg;
  cfg.replica_regions = {1};
  GeoPlacement geo(cfg, &topo);
  EXPECT_FALSE(geo.AllowsRegion(0));
  EXPECT_TRUE(geo.AllowsRegion(1));
  EXPECT_FALSE(geo.AllowsNode(0));
  EXPECT_FALSE(geo.AllowsNode(1));
  EXPECT_TRUE(geo.AllowsNode(2));
  EXPECT_TRUE(geo.AllowsNode(3));
}

TEST(GeoPlacementTest, HotPrimariesMayNotCrossRegions) {
  NetworkConfig net = TwoRegionNet();
  Topology topo(net, 4);
  GeoPlacementConfig cfg;
  cfg.hot_primary_pin_threshold = 0.5;
  GeoPlacement geo(cfg, &topo);
  RouterTable table(4, 8);
  table.InitRoundRobin(1);
  // Partition 0 (primary on node 0) becomes the hottest; partition 1 stays
  // cold relative to it.
  for (int i = 0; i < 100; ++i) table.RecordAccess(0);
  table.RecordAccess(1);
  ASSERT_GE(table.NormalizedFrequency(0), 0.5);
  ASSERT_LT(table.NormalizedFrequency(1), 0.5);
  // Hot: intra-region move allowed, cross-region pinned.
  EXPECT_TRUE(geo.AllowsPrimaryOn(table, 0, 1));
  EXPECT_FALSE(geo.AllowsPrimaryOn(table, 0, 2));
  // Cold: free to cross.
  EXPECT_TRUE(geo.AllowsPrimaryOn(table, 1, 3));
}

TEST(GeoPlacementTest, MigrationMultiplierPricesWanMoves) {
  NetworkConfig net = TwoRegionNet();
  Topology topo(net, 4);
  GeoPlacementConfig cfg;
  cfg.wan_migration_multiplier = 6.5;
  GeoPlacement geo(cfg, &topo);
  EXPECT_EQ(geo.MigrationMultiplier(0, 1), 1.0);   // within region 0
  EXPECT_EQ(geo.MigrationMultiplier(2, 3), 1.0);   // within region 1
  EXPECT_EQ(geo.MigrationMultiplier(1, 2), 6.5);   // across the WAN
}

TEST(GeoPlacementTest, EnsureRegionalReplicasEstablishesInvariant) {
  NetworkConfig net = TwoRegionNet();
  Topology topo(net, 4);
  GeoPlacementConfig cfg;
  cfg.min_replicas_per_region = 1;
  GeoPlacement geo(cfg, &topo);
  RouterTable table(4, 8);
  table.InitRoundRobin(1);  // primaries only: no partition covers both regions
  int added = geo.EnsureRegionalReplicas(&table, /*max_replicas=*/4);
  EXPECT_EQ(added, 8);  // one new secondary per partition, in the other region
  for (PartitionId p = 0; p < 8; ++p) {
    int per_region[2] = {0, 0};
    for (NodeId n = 0; n < 4; ++n) {
      if (table.HasReplica(n, p)) per_region[topo.region_of(n)]++;
    }
    EXPECT_GE(per_region[0], 1) << "partition " << p;
    EXPECT_GE(per_region[1], 1) << "partition " << p;
  }
  // Idempotent: the invariant already holds.
  EXPECT_EQ(geo.EnsureRegionalReplicas(&table, 4), 0);
}

TEST(GeoPlacementTest, MaxReplicasCapsProvisioning) {
  NetworkConfig net = TwoRegionNet();
  Topology topo(net, 4);
  GeoPlacementConfig cfg;
  cfg.min_replicas_per_region = 2;
  GeoPlacement geo(cfg, &topo);
  RouterTable table(4, 8);
  table.InitRoundRobin(1);
  geo.EnsureRegionalReplicas(&table, /*max_replicas=*/2);
  for (PartitionId p = 0; p < 8; ++p) {
    EXPECT_LE(table.group(p).LiveReplicaCount(), 2) << "partition " << p;
  }
}

// --- geo_occ end to end -----------------------------------------------------

ExperimentConfig GeoOccConfig() {
  ExperimentConfig cfg;
  cfg.protocol = "geo_occ";
  cfg.cluster.num_nodes = 4;
  cfg.cluster.partitions_per_node = 2;
  cfg.cluster.records_per_partition = 2000;
  cfg.cluster.net.regions = 3;
  cfg.cluster.net.jitter_pct = 0.05;
  cfg.ycsb.cross_pattern = CrossPattern::kRandomNode;
  cfg.ycsb.cross_ratio = 0.5;
  cfg.warmup = 200 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.seed = 42;
  return cfg;
}

TEST(GeoOccTest, CommitsAcrossRegionsAndRetriesConflicts) {
  ExperimentResult res;
  Status s = ExperimentBuilder(GeoOccConfig()).Run(&res);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(res.committed, 100u);
  EXPECT_GT(res.distributed, 0u);
  // Epoch-aligned visibility: nothing commits faster than the epoch close.
  EXPECT_GE(res.p50_us,
            ToSeconds(ClusterConfig{}.epoch_interval) * 1e6 * 0.5);
}

TEST(GeoOccTest, FixedSeedRunsAreByteIdentical) {
  ExperimentResult a, b;
  ASSERT_TRUE(ExperimentBuilder(GeoOccConfig()).Run(&a).ok());
  ASSERT_TRUE(ExperimentBuilder(GeoOccConfig()).Run(&b).ok());
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

}  // namespace
}  // namespace lion
