// SweepRunner: multi-threaded experiment fan-out must be deterministic —
// the merged JSON for a grid is byte-identical no matter how many threads
// execute it — and per-point failures must be reported, not fatal.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/sweep_cli.h"
#include "harness/sweep_runner.h"

namespace lion {
namespace {

// A grid point small enough that the whole sweep stays fast in Debug: two
// nodes, shrunken partitions, sub-second simulated time.
ExperimentConfig TinyConfig(const std::string& protocol, double cross,
                            uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.workload = "ycsb";
  cfg.cluster.num_nodes = 2;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.partitions_per_node = 4;
  cfg.cluster.records_per_partition = 1000;
  cfg.ycsb.cross_ratio = cross;
  cfg.ycsb.skew_factor = 0.5;
  cfg.warmup = 50 * kMillisecond;
  cfg.duration = 200 * kMillisecond;
  cfg.seed = seed;
  return cfg;
}

std::vector<SweepPoint> TinyGrid() {
  std::vector<SweepPoint> grid;
  grid.push_back({"2pc/cross=0", TinyConfig("2PC", 0.0, 1)});
  grid.push_back({"2pc/cross=50", TinyConfig("2PC", 0.5, 1)});
  grid.push_back({"2pc/seed=2", TinyConfig("2PC", 0.5, 2)});
  grid.push_back({"leap/cross=50", TinyConfig("Leap", 0.5, 1)});
  return grid;
}

std::string RunMerged(int threads) {
  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  for (const SweepPoint& p : TinyGrid()) runner.Add(p);
  return SweepRunner::MergeJson(runner.Run());
}

TEST(SweepRunnerTest, MergedJsonIdenticalAcrossThreadCounts) {
  std::string single = RunMerged(1);
  std::string pooled = RunMerged(4);
  EXPECT_EQ(single, pooled);
  // And stable across repeated runs of the same grid.
  EXPECT_EQ(single, RunMerged(1));
}

TEST(SweepRunnerTest, OutcomesKeepAddOrder) {
  SweepOptions options;
  options.threads = 4;
  SweepRunner runner(options);
  std::vector<SweepPoint> grid = TinyGrid();
  for (const SweepPoint& p : grid) runner.Add(p);
  std::vector<SweepOutcome> outcomes = runner.Run();
  ASSERT_EQ(outcomes.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(outcomes[i].name, grid[i].name);
    EXPECT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    EXPECT_GT(outcomes[i].result.committed, 0u);
  }
}

TEST(SweepRunnerTest, DifferentSeedsDiverge) {
  SweepRunner runner;
  runner.Add("seed1", TinyConfig("2PC", 0.5, 1));
  runner.Add("seed2", TinyConfig("2PC", 0.5, 2));
  std::vector<SweepOutcome> outcomes = runner.Run();
  ASSERT_EQ(outcomes.size(), 2u);
  // Different seeds must produce genuinely different runs (otherwise the
  // determinism assertion above would be vacuous).
  EXPECT_NE(outcomes[0].result.committed, outcomes[1].result.committed);
}

TEST(SweepRunnerTest, PerPointFailuresAreReportedNotFatal) {
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  runner.Add("good", TinyConfig("2PC", 0.0, 1));
  runner.Add("bad", TinyConfig("NoSuchProtocol", 0.0, 1));
  std::vector<SweepOutcome> outcomes = runner.Run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_TRUE(outcomes[1].status.IsNotFound());
  std::string json = SweepRunner::MergeJson(outcomes);
  EXPECT_NE(json.find("\"status\":\"NOT_FOUND\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);
  // The quoted protocol name inside the error message must be escaped.
  EXPECT_NE(json.find("\\\"NoSuchProtocol\\\""), std::string::npos);
}

TEST(SweepRunnerTest, EmptySweep) {
  SweepRunner runner;
  std::vector<SweepOutcome> outcomes = runner.Run();
  EXPECT_TRUE(outcomes.empty());
  EXPECT_EQ(SweepRunner::MergeJson(outcomes), "{\"sweep_size\":0,\"runs\":[]}");
}

TEST(MergeRepeatJsonTest, RepeatOneIsPlainMergeJson) {
  std::vector<SweepOutcome> outcomes(1);
  outcomes[0].name = "p";
  outcomes[0].status = Status::OK();
  outcomes[0].result.protocol = "2PC";
  EXPECT_EQ(MergeRepeatJson(outcomes, 1), SweepRunner::MergeJson(outcomes));
}

TEST(MergeRepeatJsonTest, AggregatesMedianMinMaxPerPoint) {
  // Two points x three repeats, synthetic results with known order.
  std::vector<SweepOutcome> outcomes(6);
  const double tputs[] = {100, 300, 200, 50, 70, 60};
  for (size_t i = 0; i < 6; ++i) {
    SweepOutcome& o = outcomes[i];
    std::string base = i < 3 ? "a" : "b";
    o.name = base + "/rep=" + std::to_string(i % 3);
    o.status = Status::OK();
    o.result.protocol = "2PC";
    o.result.workload = "ycsb";
    o.result.seed = 1 + (i % 3);
    o.result.throughput = tputs[i];
    o.result.committed = static_cast<uint64_t>(tputs[i]) * 10;
  }
  std::string json = MergeRepeatJson(outcomes, 3);
  Json doc;
  ASSERT_TRUE(Json::Parse(json, &doc).ok()) << json;
  auto AsInt = [](const Json* j) {
    int64_t v = 0;
    EXPECT_TRUE(j != nullptr && j->GetInt64(&v).ok());
    return v;
  };
  auto AsDouble = [](const Json* j) {
    double v = 0;
    EXPECT_TRUE(j != nullptr && j->GetDouble(&v).ok());
    return v;
  };
  EXPECT_EQ(AsInt(doc.Find("sweep_size")), 2);
  EXPECT_EQ(AsInt(doc.Find("repeat")), 3);
  const Json& runs = *doc.Find("runs");
  ASSERT_EQ(runs.items().size(), 2u);
  const Json& a = runs.items()[0];
  EXPECT_EQ(a.Find("name")->str(), "a");
  EXPECT_EQ(AsInt(a.Find("runs_ok")), 3);
  EXPECT_EQ(AsInt(a.Find("seed_base")), 1);
  EXPECT_DOUBLE_EQ(AsDouble(a.Find("median")->Find("throughput_txn_s")), 200);
  EXPECT_DOUBLE_EQ(AsDouble(a.Find("min")->Find("throughput_txn_s")), 100);
  EXPECT_DOUBLE_EQ(AsDouble(a.Find("max")->Find("throughput_txn_s")), 300);
  EXPECT_EQ(AsInt(a.Find("median")->Find("committed")), 2000);
  const Json& b = runs.items()[1];
  EXPECT_EQ(b.Find("name")->str(), "b");
  EXPECT_DOUBLE_EQ(AsDouble(b.Find("median")->Find("throughput_txn_s")), 60);
}

TEST(MergeRepeatJsonTest, AggregatedKeysStayInSyncWithResultToJson) {
  // kAggregatedMetrics re-declares ExperimentResult's scalar fields; if a
  // field is renamed (or an aggregated key drifts), this catches it. The
  // reverse direction (a *new* ToJson scalar missing from aggregation) is
  // a judgment call — new fields aren't always aggregation-worthy.
  std::vector<SweepOutcome> outcomes(2);
  for (size_t i = 0; i < 2; ++i) {
    outcomes[i].name = "p/rep=" + std::to_string(i);
    outcomes[i].status = Status::OK();
  }
  std::string json = MergeRepeatJson(outcomes, 2);
  Json doc;
  ASSERT_TRUE(Json::Parse(json, &doc).ok()) << json;
  const Json* median = doc.Find("runs")->items()[0].Find("median");
  ASSERT_NE(median, nullptr);
  std::string result_json = ExperimentResult().ToJson();
  for (const auto& m : median->members()) {
    EXPECT_NE(result_json.find("\"" + m.first + "\":"), std::string::npos)
        << "aggregated metric \"" << m.first
        << "\" is not a field of ExperimentResult::ToJson";
  }
}

TEST(MergeRepeatJsonTest, AllFailedGroupReportsFirstError) {
  std::vector<SweepOutcome> outcomes(2);
  outcomes[0].name = "p/rep=0";
  outcomes[0].status = Status::NotFound("no such protocol");
  outcomes[1].name = "p/rep=1";
  outcomes[1].status = Status::NotFound("no such protocol");
  std::string json = MergeRepeatJson(outcomes, 2);
  Json doc;
  ASSERT_TRUE(Json::Parse(json, &doc).ok()) << json;
  const Json& run = doc.Find("runs")->items()[0];
  EXPECT_EQ(run.Find("name")->str(), "p");
  EXPECT_EQ(run.Find("status")->str(), "NOT_FOUND");
  int64_t runs_ok = -1;
  EXPECT_TRUE(run.Find("runs_ok")->GetInt64(&runs_ok).ok());
  EXPECT_EQ(runs_ok, 0);
  EXPECT_EQ(run.Find("error")->str(), "no such protocol");
}

TEST(SweepRunnerTest, ProgressReachesTotal) {
  std::atomic<size_t> calls{0};
  size_t last_done = 0;
  SweepOptions options;
  options.threads = 2;
  options.on_progress = [&](size_t done, size_t total,
                            const SweepOutcome& outcome) {
    calls++;
    // Calls are serialized by the runner's mutex but may arrive out of
    // completion-count order, so track the maximum.
    if (done > last_done) last_done = done;
    EXPECT_EQ(total, 4u);
    EXPECT_FALSE(outcome.name.empty());
  };
  SweepRunner runner(options);
  for (const SweepPoint& p : TinyGrid()) runner.Add(p);
  runner.Run();
  EXPECT_EQ(calls.load(), 4u);
  EXPECT_EQ(last_done, 4u);
}

}  // namespace
}  // namespace lion
