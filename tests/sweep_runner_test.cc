// SweepRunner: multi-threaded experiment fan-out must be deterministic —
// the merged JSON for a grid is byte-identical no matter how many threads
// execute it — and per-point failures must be reported, not fatal.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "harness/sweep_runner.h"

namespace lion {
namespace {

// A grid point small enough that the whole sweep stays fast in Debug: two
// nodes, shrunken partitions, sub-second simulated time.
ExperimentConfig TinyConfig(const std::string& protocol, double cross,
                            uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.workload = "ycsb";
  cfg.cluster.num_nodes = 2;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.partitions_per_node = 4;
  cfg.cluster.records_per_partition = 1000;
  cfg.ycsb.cross_ratio = cross;
  cfg.ycsb.skew_factor = 0.5;
  cfg.warmup = 50 * kMillisecond;
  cfg.duration = 200 * kMillisecond;
  cfg.seed = seed;
  return cfg;
}

std::vector<SweepPoint> TinyGrid() {
  std::vector<SweepPoint> grid;
  grid.push_back({"2pc/cross=0", TinyConfig("2PC", 0.0, 1)});
  grid.push_back({"2pc/cross=50", TinyConfig("2PC", 0.5, 1)});
  grid.push_back({"2pc/seed=2", TinyConfig("2PC", 0.5, 2)});
  grid.push_back({"leap/cross=50", TinyConfig("Leap", 0.5, 1)});
  return grid;
}

std::string RunMerged(int threads) {
  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  for (const SweepPoint& p : TinyGrid()) runner.Add(p);
  return SweepRunner::MergeJson(runner.Run());
}

TEST(SweepRunnerTest, MergedJsonIdenticalAcrossThreadCounts) {
  std::string single = RunMerged(1);
  std::string pooled = RunMerged(4);
  EXPECT_EQ(single, pooled);
  // And stable across repeated runs of the same grid.
  EXPECT_EQ(single, RunMerged(1));
}

TEST(SweepRunnerTest, OutcomesKeepAddOrder) {
  SweepOptions options;
  options.threads = 4;
  SweepRunner runner(options);
  std::vector<SweepPoint> grid = TinyGrid();
  for (const SweepPoint& p : grid) runner.Add(p);
  std::vector<SweepOutcome> outcomes = runner.Run();
  ASSERT_EQ(outcomes.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(outcomes[i].name, grid[i].name);
    EXPECT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    EXPECT_GT(outcomes[i].result.committed, 0u);
  }
}

TEST(SweepRunnerTest, DifferentSeedsDiverge) {
  SweepRunner runner;
  runner.Add("seed1", TinyConfig("2PC", 0.5, 1));
  runner.Add("seed2", TinyConfig("2PC", 0.5, 2));
  std::vector<SweepOutcome> outcomes = runner.Run();
  ASSERT_EQ(outcomes.size(), 2u);
  // Different seeds must produce genuinely different runs (otherwise the
  // determinism assertion above would be vacuous).
  EXPECT_NE(outcomes[0].result.committed, outcomes[1].result.committed);
}

TEST(SweepRunnerTest, PerPointFailuresAreReportedNotFatal) {
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  runner.Add("good", TinyConfig("2PC", 0.0, 1));
  runner.Add("bad", TinyConfig("NoSuchProtocol", 0.0, 1));
  std::vector<SweepOutcome> outcomes = runner.Run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_TRUE(outcomes[1].status.IsNotFound());
  std::string json = SweepRunner::MergeJson(outcomes);
  EXPECT_NE(json.find("\"status\":\"NOT_FOUND\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);
  // The quoted protocol name inside the error message must be escaped.
  EXPECT_NE(json.find("\\\"NoSuchProtocol\\\""), std::string::npos);
}

TEST(SweepRunnerTest, EmptySweep) {
  SweepRunner runner;
  std::vector<SweepOutcome> outcomes = runner.Run();
  EXPECT_TRUE(outcomes.empty());
  EXPECT_EQ(SweepRunner::MergeJson(outcomes), "{\"sweep_size\":0,\"runs\":[]}");
}

TEST(SweepRunnerTest, ProgressReachesTotal) {
  std::atomic<size_t> calls{0};
  size_t last_done = 0;
  SweepOptions options;
  options.threads = 2;
  options.on_progress = [&](size_t done, size_t total,
                            const SweepOutcome& outcome) {
    calls++;
    // Calls are serialized by the runner's mutex but may arrive out of
    // completion-count order, so track the maximum.
    if (done > last_done) last_done = done;
    EXPECT_EQ(total, 4u);
    EXPECT_FALSE(outcome.name.empty());
  };
  SweepRunner runner(options);
  for (const SweepPoint& p : TinyGrid()) runner.Add(p);
  runner.Run();
  EXPECT_EQ(calls.load(), 4u);
  EXPECT_EQ(last_done, 4u);
}

}  // namespace
}  // namespace lion
