// Unit tests for the Schism-style replica-blind partitioner and its
// integration with the planner (Lion(S) ablation path).
#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/schism.h"
#include "replication/cluster.h"
#include "sim/simulator.h"

namespace lion {
namespace {

TEST(SchismTest, CoAccessedVerticesShareANode) {
  HeatGraph g;
  for (int i = 0; i < 50; ++i) {
    g.AddAccess({0, 1});
    g.AddAccess({2, 3});
  }
  RouterTable table(2, 4);
  SchismPartitioner schism(0.5);
  auto clumps = schism.Partition(g, table);
  ASSERT_EQ(clumps.size(), 2u);  // one clump per node
  // Each strongly-connected pair lands on one node.
  std::map<PartitionId, NodeId> where;
  for (const Clump& c : clumps)
    for (PartitionId p : c.pids) where[p] = c.dst;
  EXPECT_EQ(where[0], where[1]);
  EXPECT_EQ(where[2], where[3]);
  EXPECT_NE(where[0], where[2]);  // balance cap forces a split
}

TEST(SchismTest, RespectsBalanceCap) {
  HeatGraph g;
  // One heavy chain that would all fit on one node without the cap.
  for (int i = 0; i < 10; ++i) {
    g.AddAccess({0, 1});
    g.AddAccess({1, 2});
    g.AddAccess({2, 3});
    g.AddAccess({3, 4});
    g.AddAccess({4, 5});
  }
  RouterTable table(3, 6);
  SchismPartitioner schism(/*epsilon=*/0.1);
  auto clumps = schism.Partition(g, table);
  // Capacity is a partition count: 6 partitions / 3 nodes * 1.1 = 2.2.
  for (const Clump& c : clumps) {
    EXPECT_LE(c.pids.size(), 2u) << "node " << c.dst;
  }
}

TEST(SchismTest, CoversEveryVertexExactlyOnce) {
  HeatGraph g;
  for (PartitionId p = 0; p < 9; ++p) g.AddAccess({p, (p + 1) % 9});
  RouterTable table(3, 9);
  SchismPartitioner schism;
  auto clumps = schism.Partition(g, table);
  std::set<PartitionId> seen;
  for (const Clump& c : clumps) {
    for (PartitionId p : c.pids) {
      EXPECT_TRUE(seen.insert(p).second) << "duplicate partition " << p;
    }
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(SchismTest, EmptyGraphYieldsEmptyClumps) {
  HeatGraph g;
  RouterTable table(2, 4);
  SchismPartitioner schism;
  auto clumps = schism.Partition(g, table);
  ASSERT_EQ(clumps.size(), 2u);
  for (const Clump& c : clumps) EXPECT_TRUE(c.pids.empty());
}

TEST(SchismPlannerTest, EmitsBlockingMoveEntries) {
  // Lion(S): the planner realizes Schism assignments with kMovePrimary
  // (full blocking migrations), since Schism ignores secondary replicas.
  Simulator sim;
  ClusterConfig ccfg;
  ccfg.num_nodes = 3;
  ccfg.partitions_per_node = 2;
  ccfg.records_per_partition = 200;
  ccfg.record_bytes = 100;
  Cluster cluster(&sim, ccfg);
  cluster.Start();

  PlannerConfig pcfg;
  pcfg.strategy = PartitioningStrategy::kSchism;
  pcfg.min_history = 8;
  Planner planner(&cluster, pcfg);
  // Partitions 0 (n0) and 1 (n1) heavily co-accessed: Schism co-locates
  // them, which requires moving at least one primary.
  for (int i = 0; i < 100; ++i) planner.RecordTxn({0, 1}, sim.Now());
  planner.RunOnce();
  sim.RunUntilIdle();

  EXPECT_EQ(planner.plans_generated(), 1u);
  EXPECT_EQ(cluster.router().PrimaryOf(0), cluster.router().PrimaryOf(1));
  uint64_t moves = 0;
  for (NodeId n = 0; n < 3; ++n) moves += planner.adaptor(n)->moves_started();
  EXPECT_GE(moves, 1u);
}

TEST(SchismPlannerTest, RearrangementStrategyAvoidsFullMoves) {
  // Contrast: the replica-aware strategy uses remasters/replica adds for the
  // same workload, never blocking full migrations.
  Simulator sim;
  ClusterConfig ccfg;
  ccfg.num_nodes = 3;
  ccfg.partitions_per_node = 2;
  ccfg.records_per_partition = 200;
  ccfg.record_bytes = 100;
  Cluster cluster(&sim, ccfg);
  cluster.Start();

  PlannerConfig pcfg;
  pcfg.strategy = PartitioningStrategy::kReplicaRearrangement;
  pcfg.min_history = 8;
  Planner planner(&cluster, pcfg);
  for (int i = 0; i < 100; ++i) planner.RecordTxn({0, 1}, sim.Now());
  planner.RunOnce();
  sim.RunUntilIdle();

  uint64_t moves = 0;
  for (NodeId n = 0; n < 3; ++n) moves += planner.adaptor(n)->moves_started();
  EXPECT_EQ(moves, 0u);
}

}  // namespace
}  // namespace lion
