// Tests for the LSTM workload predictor: template identification, cosine
// workload classification, wv trigger (Eq. 6), and graph augmentation.
#include <gtest/gtest.h>

#include "core/heat_graph.h"
#include "core/predictor.h"

namespace lion {
namespace {

PredictorConfig FastConfig() {
  PredictorConfig cfg;
  cfg.sample_interval = 10 * kMillisecond;
  cfg.history_window = 8;
  cfg.horizon = 2;
  cfg.train_epochs = 30;
  cfg.lstm.hidden = 8;
  cfg.lstm.layers = 1;
  return cfg;
}

TEST(PredictorTest, TemplateIdentificationByPartitionSet) {
  LstmPredictor pred(FastConfig());
  pred.OnTxn({1, 2}, 0);
  pred.OnTxn({1, 2}, 0);
  pred.OnTxn({3}, 0);
  pred.OnTxn({2, 1}, 0);  // callers pass sorted sets; {1,2} matches
  EXPECT_EQ(pred.num_templates(), 3u);
}

TEST(PredictorTest, IntervalsCloseWithTime) {
  PredictorConfig cfg = FastConfig();
  LstmPredictor pred(cfg);
  pred.OnTxn({1, 2}, 0);
  EXPECT_EQ(pred.intervals_closed(), 0u);
  pred.OnTxn({1, 2}, 25 * kMillisecond);  // crosses two boundaries
  EXPECT_EQ(pred.intervals_closed(), 2u);
}

TEST(PredictorTest, ArrivalRateSeriesCountsPerInterval) {
  PredictorConfig cfg = FastConfig();
  LstmPredictor pred(cfg);
  for (int i = 0; i < 5; ++i) pred.OnTxn({1, 2}, 0);
  pred.ForceCloseInterval(10 * kMillisecond);
  for (int i = 0; i < 3; ++i) pred.OnTxn({1, 2}, 10 * kMillisecond);
  pred.ForceCloseInterval(20 * kMillisecond);

  HeatGraph g;
  pred.AugmentGraph(&g, 20 * kMillisecond);  // triggers classification
  ASSERT_EQ(pred.num_classes(), 1u);
  const auto& series = pred.ClassSeries(0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 5.0);
  EXPECT_DOUBLE_EQ(series[1], 3.0);
}

TEST(PredictorTest, CosineMergesCoMovingTemplates) {
  PredictorConfig cfg = FastConfig();
  cfg.beta = 0.15;
  LstmPredictor pred(cfg);
  // Templates A={1,2} and B={3,4} rise together; C={5,6} moves oppositely.
  SimTime t = 0;
  for (int interval = 0; interval < 8; ++interval) {
    int rising = interval + 1;
    int falling = 8 - interval;
    for (int i = 0; i < rising; ++i) pred.OnTxn({1, 2}, t);
    for (int i = 0; i < rising; ++i) pred.OnTxn({3, 4}, t);
    for (int i = 0; i < falling; ++i) pred.OnTxn({5, 6}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  // A and B merge (cosine ~1); C stays separate.
  EXPECT_EQ(pred.num_templates(), 3u);
  EXPECT_EQ(pred.num_classes(), 2u);
}

TEST(PredictorTest, WorkloadVariationLowOnSteadyWorkload) {
  PredictorConfig cfg = FastConfig();
  LstmPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 16; ++interval) {
    for (int i = 0; i < 10; ++i) pred.OnTxn({1, 2}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);  // trains the model on the flat series
  double wv = pred.WorkloadVariation(t);
  EXPECT_LT(wv, 0.35);  // flat series: forecast ~ current
}

TEST(PredictorTest, PeriodicBurstForecastInjectsPredictedEdges) {
  // The Fig. 5 scenario: workload W2 (template {7,8}) bursts periodically.
  // With history ending in the quiet phase right before a burst, the LSTM
  // forecast at horizon h lands inside the burst -> rising class -> its
  // templates are injected into the heat graph.
  PredictorConfig cfg = FastConfig();
  cfg.gamma = 0.05;
  cfg.horizon = 2;
  cfg.prediction_scale = 10.0;
  cfg.train_epochs = 120;
  cfg.lstm.hidden = 10;
  cfg.history_window = 12;
  LstmPredictor pred(cfg);
  SimTime t = 0;
  // Period-4 pattern: 1, 1, 9, 9 repeated; stop right before a burst.
  auto rate_at = [](int interval) { return interval % 4 < 2 ? 1 : 9; };
  for (int interval = 0; interval < 26; ++interval) {  // ends after "1, 1"
    for (int i = 0; i < rate_at(interval); ++i) pred.OnTxn({7, 8}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_EQ(pred.num_classes(), 1u);
  EXPECT_GT(pred.pre_replications_triggered(), 0u);
  // Predicted co-access of {7,8} entered the graph (Fig. 5c).
  EXPECT_GT(g.EdgeWeight(7, 8), 0.0);
}

TEST(PredictorTest, WpZeroDisablesPrediction) {
  PredictorConfig cfg = FastConfig();
  cfg.wp = 0.0;
  LstmPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 10; ++interval) {
    for (int i = 0; i < 5 * (interval + 1); ++i) pred.OnTxn({1, 2}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.0);
  EXPECT_EQ(pred.pre_replications_triggered(), 0u);
}

TEST(PredictorTest, SingletonTemplatesAddNoEdges) {
  PredictorConfig cfg = FastConfig();
  cfg.gamma = 0.0;  // always trigger
  LstmPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 10; ++interval) {
    for (int i = 0; i < 3 * (interval + 1); ++i) pred.OnTxn({4}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_EQ(g.num_edges(), 0u);  // single-partition template: nothing to add
}

TEST(PredictorTest, TemplateCapIsRespected) {
  PredictorConfig cfg = FastConfig();
  cfg.max_templates = 4;
  LstmPredictor pred(cfg);
  for (PartitionId p = 0; p < 20; ++p) pred.OnTxn({p, p + 100}, 0);
  EXPECT_EQ(pred.num_templates(), 4u);
}

TEST(PredictorTest, DeterministicAcrossRuns) {
  auto run = []() {
    PredictorConfig cfg = FastConfig();
    cfg.gamma = 0.0;
    LstmPredictor pred(cfg, 99);
    SimTime t = 0;
    for (int interval = 0; interval < 12; ++interval) {
      for (int i = 0; i <= interval; ++i) pred.OnTxn({1, 2}, t);
      t += cfg.sample_interval;
    }
    HeatGraph g;
    pred.AugmentGraph(&g, t);
    return g.EdgeWeight(1, 2);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace lion
