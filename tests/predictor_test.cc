// Tests for the workload predictors: template identification, cosine
// workload classification, wv trigger (Eq. 6), graph augmentation, interval
// bookkeeping edge cases (late attach, idle gaps), and lstm/ewma parity.
#include <gtest/gtest.h>

#include "core/ewma_predictor.h"
#include "core/heat_graph.h"
#include "core/predictor.h"

namespace lion {
namespace {

PredictorConfig FastConfig() {
  PredictorConfig cfg;
  cfg.sample_interval = 10 * kMillisecond;
  cfg.history_window = 8;
  cfg.horizon = 2;
  cfg.train_epochs = 30;
  cfg.lstm.hidden = 8;
  cfg.lstm.layers = 1;
  return cfg;
}

TEST(PredictorTest, TemplateIdentificationByPartitionSet) {
  LstmPredictor pred(FastConfig());
  pred.OnTxn({1, 2}, 0);
  pred.OnTxn({1, 2}, 0);
  pred.OnTxn({3}, 0);
  pred.OnTxn({2, 1}, 0);  // callers pass sorted sets; {1,2} matches
  EXPECT_EQ(pred.num_templates(), 3u);
}

TEST(PredictorTest, IntervalsCloseWithTime) {
  PredictorConfig cfg = FastConfig();
  LstmPredictor pred(cfg);
  pred.OnTxn({1, 2}, 0);
  EXPECT_EQ(pred.intervals_closed(), 0u);
  pred.OnTxn({1, 2}, 25 * kMillisecond);  // crosses two boundaries
  EXPECT_EQ(pred.intervals_closed(), 2u);
}

TEST(PredictorTest, ArrivalRateSeriesCountsPerInterval) {
  PredictorConfig cfg = FastConfig();
  LstmPredictor pred(cfg);
  for (int i = 0; i < 5; ++i) pred.OnTxn({1, 2}, 0);
  pred.ForceCloseInterval(10 * kMillisecond);
  for (int i = 0; i < 3; ++i) pred.OnTxn({1, 2}, 10 * kMillisecond);
  pred.ForceCloseInterval(20 * kMillisecond);

  HeatGraph g;
  pred.AugmentGraph(&g, 20 * kMillisecond);  // triggers classification
  ASSERT_EQ(pred.num_classes(), 1u);
  const auto& series = pred.ClassSeries(0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 5.0);
  EXPECT_DOUBLE_EQ(series[1], 3.0);
}

TEST(PredictorTest, CosineMergesCoMovingTemplates) {
  PredictorConfig cfg = FastConfig();
  cfg.beta = 0.15;
  LstmPredictor pred(cfg);
  // Templates A={1,2} and B={3,4} rise together; C={5,6} moves oppositely.
  SimTime t = 0;
  for (int interval = 0; interval < 8; ++interval) {
    int rising = interval + 1;
    int falling = 8 - interval;
    for (int i = 0; i < rising; ++i) pred.OnTxn({1, 2}, t);
    for (int i = 0; i < rising; ++i) pred.OnTxn({3, 4}, t);
    for (int i = 0; i < falling; ++i) pred.OnTxn({5, 6}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  // A and B merge (cosine ~1); C stays separate.
  EXPECT_EQ(pred.num_templates(), 3u);
  EXPECT_EQ(pred.num_classes(), 2u);
}

TEST(PredictorTest, WorkloadVariationLowOnSteadyWorkload) {
  PredictorConfig cfg = FastConfig();
  LstmPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 16; ++interval) {
    for (int i = 0; i < 10; ++i) pred.OnTxn({1, 2}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);  // trains the model on the flat series
  double wv = pred.WorkloadVariation(t);
  EXPECT_LT(wv, 0.35);  // flat series: forecast ~ current
}

TEST(PredictorTest, PeriodicBurstForecastInjectsPredictedEdges) {
  // The Fig. 5 scenario: workload W2 (template {7,8}) bursts periodically.
  // With history ending in the quiet phase right before a burst, the LSTM
  // forecast at horizon h lands inside the burst -> rising class -> its
  // templates are injected into the heat graph.
  PredictorConfig cfg = FastConfig();
  cfg.gamma = 0.05;
  cfg.horizon = 2;
  cfg.prediction_scale = 10.0;
  cfg.train_epochs = 120;
  cfg.lstm.hidden = 10;
  cfg.history_window = 12;
  LstmPredictor pred(cfg);
  SimTime t = 0;
  // Period-4 pattern: 1, 1, 9, 9 repeated; stop right before a burst.
  auto rate_at = [](int interval) { return interval % 4 < 2 ? 1 : 9; };
  for (int interval = 0; interval < 26; ++interval) {  // ends after "1, 1"
    for (int i = 0; i < rate_at(interval); ++i) pred.OnTxn({7, 8}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_EQ(pred.num_classes(), 1u);
  EXPECT_GT(pred.pre_replications_triggered(), 0u);
  // Predicted co-access of {7,8} entered the graph (Fig. 5c).
  EXPECT_GT(g.EdgeWeight(7, 8), 0.0);
}

TEST(PredictorTest, WpZeroDisablesPrediction) {
  PredictorConfig cfg = FastConfig();
  cfg.wp = 0.0;
  LstmPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 10; ++interval) {
    for (int i = 0; i < 5 * (interval + 1); ++i) pred.OnTxn({1, 2}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.0);
  EXPECT_EQ(pred.pre_replications_triggered(), 0u);
}

TEST(PredictorTest, SingletonTemplatesAddNoEdges) {
  PredictorConfig cfg = FastConfig();
  cfg.gamma = 0.0;  // always trigger
  LstmPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 10; ++interval) {
    for (int i = 0; i < 3 * (interval + 1); ++i) pred.OnTxn({4}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_EQ(g.num_edges(), 0u);  // single-partition template: nothing to add
}

TEST(PredictorTest, TemplateCapIsRespected) {
  PredictorConfig cfg = FastConfig();
  cfg.max_templates = 4;
  LstmPredictor pred(cfg);
  for (PartitionId p = 0; p < 20; ++p) pred.OnTxn({p, p + 100}, 0);
  EXPECT_EQ(pred.num_templates(), 4u);
}

TEST(PredictorTest, DeterministicAcrossRuns) {
  auto run = []() {
    PredictorConfig cfg = FastConfig();
    cfg.gamma = 0.0;
    LstmPredictor pred(cfg, 99);
    SimTime t = 0;
    for (int interval = 0; interval < 12; ++interval) {
      for (int i = 0; i <= interval; ++i) pred.OnTxn({1, 2}, t);
      t += cfg.sample_interval;
    }
    HeatGraph g;
    pred.AugmentGraph(&g, t);
    return g.EdgeWeight(1, 2);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

// --- interval bookkeeping edge cases ----------------------------------------

TEST(PredictorTest, LateAttachDoesNotInflateClosedIntervals) {
  // Regression: a predictor first fed at sim time T used to spin through
  // T / sample_interval empty closures, reporting thousands of closed
  // intervals before anything was observed. The invariant: intervals only
  // close once there is history to close, so a first observation at any T
  // starts from zero.
  PredictorConfig cfg = FastConfig();  // 10 ms sampling interval
  LstmPredictor pred(cfg);
  SimTime late = 3600 * kSecond;  // one simulated hour in
  pred.OnTxn({1, 2}, late);
  EXPECT_EQ(pred.intervals_closed(), 0u);
  // From first feed onward the count tracks elapsed boundaries exactly.
  pred.OnTxn({1, 2}, late + 25 * kMillisecond);
  EXPECT_EQ(pred.intervals_closed(), 2u);
  HeatGraph g;
  pred.AugmentGraph(&g, late + 25 * kMillisecond);
  ASSERT_EQ(pred.num_classes(), 1u);
  EXPECT_EQ(pred.ClassSeries(0).size(), 2u);
}

TEST(PredictorTest, LongIdleGapCapsSeriesAtWindow) {
  // A gap of N >> class_window intervals must cost O(window), leave the
  // window all zeros (the pre-gap counts aged out), and still account for
  // every elapsed interval.
  PredictorConfig cfg = FastConfig();
  cfg.class_window = 16;
  LstmPredictor pred(cfg);
  for (int i = 0; i < 5; ++i) pred.OnTxn({1, 2}, 0);
  const uint64_t gap = 100000;  // 100k idle intervals
  SimTime after = static_cast<SimTime>(gap) * cfg.sample_interval;
  pred.OnTxn({1, 2}, after);
  EXPECT_EQ(pred.intervals_closed(), gap);
  HeatGraph g;
  pred.AugmentGraph(&g, after);
  ASSERT_EQ(pred.num_classes(), 1u);
  const auto& series = pred.ClassSeries(0);
  ASSERT_EQ(series.size(), 16u);
  for (double v : series) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PredictorTest, ClassSeriesOutOfRangeIsEmptyNotUb) {
  LstmPredictor pred(FastConfig());
  EXPECT_TRUE(pred.ClassSeries(0).empty());
  EXPECT_TRUE(pred.ClassSeries(999).empty());
}

TEST(PredictorTest, ForceCloseBeforeFirstObservationClosesNothing) {
  // Same invariant as the late-attach fix, via the test hook: with no
  // templates there is no history to close.
  PredictorConfig cfg = FastConfig();
  LstmPredictor pred(cfg);
  pred.ForceCloseInterval(10 * kMillisecond);
  EXPECT_EQ(pred.intervals_closed(), 0u);
  pred.OnTxn({1, 2}, 10 * kMillisecond);
  pred.ForceCloseInterval(20 * kMillisecond);
  EXPECT_EQ(pred.intervals_closed(), 1u);
}

// --- EWMA baseline -----------------------------------------------------------

TEST(EwmaPredictorTest, RisingWorkloadTriggersAndInjectsEdges) {
  // A linearly rising class: Holt's trend extrapolation forecasts above the
  // current rate, so wv exceeds γ and the template's co-access edge lands
  // in the heat graph — same observable contract as the LSTM pipeline.
  PredictorConfig cfg = FastConfig();
  cfg.gamma = 0.05;
  EwmaPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 12; ++interval) {
    for (int i = 0; i < 2 * (interval + 1); ++i) pred.OnTxn({7, 8}, t);
    t += cfg.sample_interval;
  }
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_EQ(pred.num_classes(), 1u);
  EXPECT_GT(pred.pre_replications_triggered(), 0u);
  EXPECT_GT(g.EdgeWeight(7, 8), 0.0);
}

TEST(EwmaPredictorTest, DeterministicAcrossRuns) {
  auto run = []() {
    PredictorConfig cfg = FastConfig();
    cfg.gamma = 0.0;
    EwmaPredictor pred(cfg, 99);
    SimTime t = 0;
    for (int interval = 0; interval < 12; ++interval) {
      for (int i = 0; i <= interval; ++i) pred.OnTxn({1, 2}, t);
      t += cfg.sample_interval;
    }
    HeatGraph g;
    pred.AugmentGraph(&g, t);
    return g.EdgeWeight(1, 2);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(EwmaPredictorTest, TemplateCapStillClassifies) {
  PredictorConfig cfg = FastConfig();
  cfg.max_templates = 4;
  EwmaPredictor pred(cfg);
  SimTime t = 0;
  for (int interval = 0; interval < 6; ++interval) {
    for (PartitionId p = 0; p < 20; ++p) pred.OnTxn({p, p + 100}, t);
    t += cfg.sample_interval;
  }
  EXPECT_EQ(pred.num_templates(), 4u);
  HeatGraph g;
  pred.AugmentGraph(&g, t);
  EXPECT_GE(pred.num_classes(), 1u);
}

TEST(PredictorParityTest, StationaryWorkloadTriggersNeitherPredictor) {
  // On a flat arrival-rate series both forecasts sit at ~the current rate,
  // so neither mechanism should fire pre-replication (ewma's trend damps to
  // zero; the lstm converges onto the constant). "~0": a stray early-round
  // trigger while models warm up is tolerated, sustained firing is not.
  auto feed = [](TemplateClassPredictor* pred, SimTime interval) {
    SimTime t = 0;
    uint64_t triggers = 0;
    HeatGraph g;
    for (int round = 0; round < 6; ++round) {
      for (int iv = 0; iv < 8; ++iv) {
        for (int i = 0; i < 10; ++i) pred->OnTxn({1, 2}, t);
        t += interval;
      }
      pred->AugmentGraph(&g, t);  // one planning round per 8 intervals
    }
    triggers = pred->pre_replications_triggered();
    return triggers;
  };
  PredictorConfig cfg = FastConfig();
  cfg.train_epochs = 60;
  LstmPredictor lstm(cfg, 5);
  EwmaPredictor ewma(cfg, 5);
  uint64_t lstm_triggers = feed(&lstm, cfg.sample_interval);
  uint64_t ewma_triggers = feed(&ewma, cfg.sample_interval);
  EXPECT_LE(lstm_triggers, 1u);
  EXPECT_LE(ewma_triggers, 1u);
}

}  // namespace
}  // namespace lion
