// Tests for the transaction layer: Transaction, OCC, TwoPhaseEngine, and the
// 2PC protocol end to end with the closed-loop driver.
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "metrics/metrics.h"
#include "protocols/twopc.h"
#include "replication/cluster.h"
#include "sim/simulator.h"
#include "txn/occ.h"
#include "txn/transaction.h"
#include "txn/two_phase_engine.h"
#include "workload/ycsb.h"

namespace lion {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 1000;
  cfg.record_bytes = 100;
  return cfg;
}

TxnPtr MakeTxn(TxnId id, std::vector<std::tuple<PartitionId, Key, OpType, Value>> ops) {
  auto txn = std::make_unique<Transaction>(id, 0);
  for (auto& [pid, key, type, value] : ops) {
    Operation op;
    op.partition = pid;
    op.key = key;
    op.type = type;
    op.write_value = value;
    txn->ops().push_back(op);
  }
  return txn;
}

// --- Transaction --------------------------------------------------------------

TEST(TransactionTest, PartitionsAreSortedUnique) {
  auto txn = MakeTxn(1, {{3, 1, OpType::kRead, 0},
                         {1, 2, OpType::kWrite, 5},
                         {3, 9, OpType::kRead, 0}});
  EXPECT_EQ(txn->Partitions(), (std::vector<PartitionId>{1, 3}));
}

TEST(TransactionTest, OpsOnFiltersByPartition) {
  auto txn = MakeTxn(1, {{3, 1, OpType::kRead, 0},
                         {1, 2, OpType::kWrite, 5},
                         {3, 9, OpType::kRead, 0}});
  EXPECT_EQ(txn->OpsOn(3).size(), 2u);
  EXPECT_EQ(txn->OpsOn(1).size(), 1u);
  EXPECT_EQ(txn->OpsOn(7).size(), 0u);
}

TEST(TransactionTest, HasWriteOn) {
  auto txn = MakeTxn(1, {{0, 1, OpType::kRead, 0}, {1, 2, OpType::kWrite, 5}});
  EXPECT_FALSE(txn->HasWriteOn(0));
  EXPECT_TRUE(txn->HasWriteOn(1));
}

TEST(TransactionTest, ResetForRestartClearsRuntime) {
  auto txn = MakeTxn(1, {{0, 1, OpType::kRead, 0}});
  txn->ops()[0].read_value = 9;
  txn->ops()[0].read_version = 4;
  txn->ops()[0].executed = true;
  txn->ResetForRestart();
  EXPECT_EQ(txn->ops()[0].read_value, 0u);
  EXPECT_EQ(txn->ops()[0].read_version, 0u);
  EXPECT_FALSE(txn->ops()[0].executed);
  EXPECT_EQ(txn->restarts(), 1);
}

TEST(TransactionTest, BreakdownTotals) {
  PhaseBreakdown bd;
  bd.scheduling = 1;
  bd.execution = 2;
  bd.commit = 3;
  bd.replication = 4;
  bd.other = 5;
  EXPECT_EQ(bd.Total(), 15);
  PhaseBreakdown sum;
  sum.Add(bd);
  sum.Add(bd);
  EXPECT_EQ(sum.execution, 4);
}

// --- Occ ----------------------------------------------------------------------

TEST(OccTest, ReadOpsRecordsValueAndVersion) {
  PartitionStore store(0, 100, 100);
  auto txn = MakeTxn(1, {{0, 7, OpType::kRead, 0}});
  Occ::ReadOps(&store, txn.get());
  EXPECT_EQ(txn->ops()[0].read_value, 7u);
  EXPECT_EQ(txn->ops()[0].read_version, 1u);
  EXPECT_TRUE(txn->ops()[0].executed);
}

TEST(OccTest, ValidateSucceedsWhenUnchanged) {
  PartitionStore store(0, 100, 100);
  auto txn = MakeTxn(1, {{0, 7, OpType::kRead, 0}, {0, 8, OpType::kWrite, 99}});
  Occ::ReadOps(&store, txn.get());
  EXPECT_TRUE(Occ::ValidateAndLock(&store, txn.get()));
  // Write key is locked now.
  EXPECT_TRUE(store.IsLockedByOther(8, 999));
  Occ::ReleaseLocks(&store, txn.get());
  EXPECT_FALSE(store.IsLockedByOther(8, 999));
}

TEST(OccTest, ValidateFailsOnChangedReadVersion) {
  PartitionStore store(0, 100, 100);
  auto txn = MakeTxn(1, {{0, 7, OpType::kRead, 0}});
  Occ::ReadOps(&store, txn.get());
  store.Apply(7, 123);  // concurrent committed write
  EXPECT_FALSE(Occ::ValidateAndLock(&store, txn.get()));
}

TEST(OccTest, ValidateFailsOnLockedWrite) {
  PartitionStore store(0, 100, 100);
  auto txn = MakeTxn(1, {{0, 7, OpType::kWrite, 1}});
  Occ::ReadOps(&store, txn.get());
  ASSERT_TRUE(store.TryLock(7, 42));
  EXPECT_FALSE(Occ::ValidateAndLock(&store, txn.get()));
}

TEST(OccTest, ValidateFailsOnLockedRead) {
  PartitionStore store(0, 100, 100);
  auto txn = MakeTxn(1, {{0, 7, OpType::kRead, 0}});
  Occ::ReadOps(&store, txn.get());
  ASSERT_TRUE(store.TryLock(7, 42));
  EXPECT_FALSE(Occ::ValidateAndLock(&store, txn.get()));
}

TEST(OccTest, FailedValidationLeavesNoLocks) {
  PartitionStore store(0, 100, 100);
  auto txn = MakeTxn(1, {{0, 5, OpType::kWrite, 1}, {0, 7, OpType::kRead, 0}});
  Occ::ReadOps(&store, txn.get());
  store.Apply(7, 9);  // invalidate the read
  EXPECT_FALSE(Occ::ValidateAndLock(&store, txn.get()));
  EXPECT_FALSE(store.IsLockedByOther(5, 999));  // write lock rolled back
}

TEST(OccTest, ApplyAndUnlockInstallsWritesAndLog) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  PartitionStore* store = cluster.store(0);
  auto txn = MakeTxn(1, {{0, 7, OpType::kWrite, 777}});
  Occ::ReadOps(store, txn.get());
  ASSERT_TRUE(Occ::ValidateAndLock(store, txn.get()));
  Occ::ApplyAndUnlock(store, txn.get(), &cluster.replication());
  Value v;
  Version ver;
  ASSERT_TRUE(store->Read(7, &v, &ver).ok());
  EXPECT_EQ(v, 777u);
  EXPECT_EQ(ver, 2u);
  EXPECT_EQ(cluster.router().group(0).primary_lsn(), 1u);
  EXPECT_FALSE(store->IsLockedByOther(7, 999));
}

// --- TwoPhaseEngine -------------------------------------------------------------

TEST(TwoPhaseEngineTest, SingleNodeTxnCommits) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  // Partitions 0 and 3 both have primary on node 0.
  auto txn = MakeTxn(1, {{0, 1, OpType::kWrite, 11}, {3, 2, OpType::kRead, 0}});
  bool committed = false;
  engine.Run(txn.get(), 0, TwoPhaseEngine::Options{}, [&](bool ok) { committed = ok; });
  sim.RunUntilIdle();
  EXPECT_TRUE(committed);
  EXPECT_EQ(txn->exec_class(), ExecClass::kSingleNode);
  EXPECT_EQ(cluster.store(0)->VersionOf(1), 2u);
}

TEST(TwoPhaseEngineTest, DistributedTxnCommitsAcrossNodes) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  // Partition 0 on node 0, partition 1 on node 1: distributed from node 0.
  auto txn = MakeTxn(1, {{0, 1, OpType::kWrite, 11}, {1, 2, OpType::kWrite, 22}});
  bool committed = false;
  engine.Run(txn.get(), 0, TwoPhaseEngine::Options{}, [&](bool ok) { committed = ok; });
  sim.RunUntilIdle();
  EXPECT_TRUE(committed);
  EXPECT_EQ(txn->exec_class(), ExecClass::kDistributed);
  EXPECT_EQ(cluster.store(0)->VersionOf(1), 2u);
  EXPECT_EQ(cluster.store(1)->VersionOf(2), 2u);
  // Prepare replicated to secondaries; commit decisions exchanged.
  EXPECT_GT(cluster.network().total_messages(), 4u);
}

TEST(TwoPhaseEngineTest, DistributedTxnIsSlowerThanSingleNode) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  auto local = MakeTxn(1, {{0, 1, OpType::kWrite, 1}});
  auto dist = MakeTxn(2, {{0, 2, OpType::kWrite, 1}, {1, 3, OpType::kWrite, 1}});
  SimTime local_done = 0, dist_done = 0;
  engine.Run(local.get(), 0, TwoPhaseEngine::Options{},
             [&](bool) { local_done = sim.Now(); });
  sim.RunUntilIdle();
  SimTime t0 = sim.Now();
  engine.Run(dist.get(), 0, TwoPhaseEngine::Options{},
             [&](bool) { dist_done = sim.Now() - t0; });
  sim.RunUntilIdle();
  EXPECT_GT(dist_done, 2 * local_done);
}

TEST(TwoPhaseEngineTest, ConflictCausesAbort) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  // t1 reads key 5 on p0 then stalls long enough for t2 to commit a write.
  auto t1 = MakeTxn(1, {{0, 5, OpType::kRead, 0}, {1, 6, OpType::kRead, 0}});
  auto t2 = MakeTxn(2, {{0, 5, OpType::kWrite, 99}});
  bool t1_committed = true;
  bool t2_committed = false;
  engine.Run(t1.get(), 1, TwoPhaseEngine::Options{},  // remote exec on p0
             [&](bool ok) { t1_committed = ok; });
  // Give t2 a head start on node 0 so it commits between t1's read and
  // validation.
  sim.Schedule(30 * kMicrosecond, [&]() {
    engine.Run(t2.get(), 0, TwoPhaseEngine::Options{},
               [&](bool ok) { t2_committed = ok; });
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(t2_committed);
  EXPECT_FALSE(t1_committed);
  EXPECT_EQ(metrics.aborts(), 1u);
}

TEST(TwoPhaseEngineTest, GroupCommitDelaysVisibility) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);

  auto txn = MakeTxn(1, {{0, 1, OpType::kWrite, 5}});
  TwoPhaseEngine::Options opts;
  opts.group_commit_visibility = true;
  SimTime done_at = -1;
  engine.Run(txn.get(), 0, opts, [&](bool) { done_at = sim.Now(); });
  sim.RunUntil(5 * cfg.epoch_interval);
  EXPECT_EQ(done_at, cfg.epoch_interval);  // held until the epoch boundary
  EXPECT_GT(txn->breakdown().replication, 0);
}

TEST(TwoPhaseEngineTest, EmptyTxnCommitsTrivially) {
  Simulator sim;
  Cluster cluster(&sim, TestConfig());
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);
  auto txn = MakeTxn(1, {});
  bool committed = false;
  engine.Run(txn.get(), 0, TwoPhaseEngine::Options{}, [&](bool ok) { committed = ok; });
  sim.RunUntilIdle();
  EXPECT_TRUE(committed);
}

TEST(TwoPhaseEngineTest, BreakdownCoversLatency) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPhaseEngine engine(&cluster, &metrics);
  auto txn = MakeTxn(1, {{0, 2, OpType::kWrite, 1}, {1, 3, OpType::kWrite, 1}});
  bool done = false;
  engine.Run(txn.get(), 0, TwoPhaseEngine::Options{}, [&](bool) { done = true; });
  sim.RunUntilIdle();
  ASSERT_TRUE(done);
  const auto& bd = txn->breakdown();
  EXPECT_GT(bd.execution, 0);
  EXPECT_GT(bd.commit + bd.replication, 0);
}

// --- 2PC protocol + driver end to end -------------------------------------------

TEST(TwoPcProtocolTest, RouteToMostPrimaries) {
  RouterTable table(3, 6);
  table.InitRoundRobin(2);
  auto txn = MakeTxn(1, {{0, 1, OpType::kRead, 0},
                         {3, 1, OpType::kRead, 0},
                         {1, 1, OpType::kRead, 0}});
  // Partitions 0,3 -> node 0; partition 1 -> node 1.
  EXPECT_EQ(TwoPcProtocol::RouteToMostPrimaries(*txn, table), 0);
}

TEST(TwoPcProtocolTest, ClosedLoopCommitsTransactions) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPcProtocol protocol(&cluster, &metrics);

  YcsbConfig ycfg;
  ycfg.ops_per_txn = 6;
  ycfg.cross_ratio = 0.5;
  YcsbWorkload workload(cfg, ycfg);

  ClosedLoopDriver driver(&sim, &protocol, &workload, &metrics, 8);
  driver.Start();
  sim.RunUntil(1 * kSecond);
  driver.Stop();
  sim.RunUntil(2 * kSecond);

  EXPECT_GT(metrics.committed(), 100u);
  EXPECT_GT(metrics.distributed(), 0u);
  EXPECT_GT(metrics.single_node(), 0u);
  EXPECT_EQ(driver.completed(), metrics.committed());
}

TEST(TwoPcProtocolTest, RetriesEventuallyCommitUnderContention) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  cfg.records_per_partition = 8;  // tiny keyspace: heavy conflicts
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPcProtocol protocol(&cluster, &metrics);

  YcsbConfig ycfg;
  ycfg.ops_per_txn = 4;
  ycfg.cross_ratio = 1.0;
  ycfg.write_ratio = 0.8;
  YcsbWorkload workload(cfg, ycfg);

  ClosedLoopDriver driver(&sim, &protocol, &workload, &metrics, 16);
  driver.Start();
  sim.RunUntil(1 * kSecond);
  driver.Stop();
  sim.RunUntil(3 * kSecond);

  EXPECT_GT(metrics.committed(), 50u);
  EXPECT_GT(metrics.aborts(), 0u);  // contention must be visible
}

TEST(TwoPcProtocolTest, SingleNodeWorkloadAvoidsDistributed) {
  Simulator sim;
  ClusterConfig cfg = TestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPcProtocol protocol(&cluster, &metrics);

  YcsbConfig ycfg;
  ycfg.cross_ratio = 0.0;
  YcsbWorkload workload(cfg, ycfg);
  ClosedLoopDriver driver(&sim, &protocol, &workload, &metrics, 8);
  driver.Start();
  sim.RunUntil(500 * kMillisecond);
  EXPECT_GT(metrics.committed(), 0u);
  EXPECT_EQ(metrics.distributed(), 0u);
}

}  // namespace
}  // namespace lion
