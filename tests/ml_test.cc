// Tests for the from-scratch LSTM: matrix ops, gradient correctness
// (finite-difference check), and learning capability on synthetic series.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/lstm.h"
#include "ml/matrix.h"

namespace lion {
namespace {

// --- Matrix -----------------------------------------------------------------

TEST(MatrixTest, MatVecAccum) {
  Matrix m(2, 3);
  // [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
  double vals[] = {1, 2, 3, 4, 5, 6};
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) m.at(r, c) = vals[r * 3 + c];
  Vec x = {1, 1, 1};
  Vec y = {10, 10};
  m.MatVecAccum(x, &y);
  EXPECT_DOUBLE_EQ(y[0], 16);
  EXPECT_DOUBLE_EQ(y[1], 25);
}

TEST(MatrixTest, MatTVecAccum) {
  Matrix m(2, 3);
  double vals[] = {1, 2, 3, 4, 5, 6};
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) m.at(r, c) = vals[r * 3 + c];
  Vec x = {1, 2};  // M^T x = [1+8, 2+10, 3+12]
  Vec y(3, 0.0);
  m.MatTVecAccum(x, &y);
  EXPECT_DOUBLE_EQ(y[0], 9);
  EXPECT_DOUBLE_EQ(y[1], 12);
  EXPECT_DOUBLE_EQ(y[2], 15);
}

TEST(MatrixTest, OuterAccum) {
  Matrix m(2, 2);
  m.OuterAccum({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 6);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 8);
}

TEST(MatrixTest, RandomInitBounded) {
  Matrix m(10, 10);
  Rng rng(1);
  m.RandomInit(&rng, 0.5);
  for (double v : m.data()) {
    EXPECT_GE(v, -0.5);
    EXPECT_LE(v, 0.5);
  }
}

TEST(VecOpsTest, CosineSimilarity) {
  EXPECT_DOUBLE_EQ(vecops::CosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(vecops::CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(vecops::CosineSimilarity({1, 1}, {-1, -1}), -1.0);
  EXPECT_DOUBLE_EQ(vecops::CosineSimilarity({0, 0}, {1, 1}), 0.0);
  // Scale invariance: co-rising series match regardless of magnitude.
  EXPECT_NEAR(vecops::CosineSimilarity({1, 2, 3}, {10, 20, 30}), 1.0, 1e-12);
}

TEST(VecOpsTest, SuffixCosineSimilarityAlignsAtTheEnd) {
  // Equal lengths: identical to the plain cosine.
  EXPECT_DOUBLE_EQ(vecops::SuffixCosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_NEAR(vecops::SuffixCosineSimilarity({1, 2, 3}, {10, 20, 30}), 1.0,
              1e-12);
  // Mismatched lengths compare the trailing min-length windows — the shared
  // recent history. A fresh series matching the tail of a long one is a
  // perfect match, where truncating the dot product but not the norms
  // (what CosineSimilarity's internals would do) reports ~0.46.
  EXPECT_NEAR(vecops::SuffixCosineSimilarity({9, 9, 9, 1, 2, 3}, {1, 2, 3}),
              1.0, 1e-12);
  EXPECT_NEAR(vecops::SuffixCosineSimilarity({1, 2, 3}, {9, 9, 9, 1, 2, 3}),
              1.0, 1e-12);
  // Orthogonal tails stay orthogonal no matter the prefix.
  EXPECT_DOUBLE_EQ(vecops::SuffixCosineSimilarity({5, 1, 0}, {0, 1}), 0.0);
  // Degenerate inputs: empty or all-zero suffixes report 0, not NaN.
  EXPECT_DOUBLE_EQ(vecops::SuffixCosineSimilarity({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(vecops::SuffixCosineSimilarity({1, 0, 0}, {0, 0}), 0.0);
}

// --- LSTM gradient check -------------------------------------------------------

TEST(LstmTest, GradientMatchesFiniteDifference) {
  LstmConfig cfg;
  cfg.hidden = 4;
  cfg.layers = 2;
  LstmNetwork net(cfg, 3);
  std::vector<double> series = {0.1, 0.5, 0.3, 0.9, 0.2, 0.7};

  net.ForwardBackward(series);
  std::vector<double*> params = net.ParameterPointers();
  std::vector<double*> grads = net.GradientPointers();
  ASSERT_EQ(params.size(), grads.size());

  // Spot-check a spread of parameters against central differences.
  const double eps = 1e-6;
  int checked = 0;
  for (size_t i = 0; i < params.size(); i += 9) {
    double saved_grad = *grads[i];
    double orig = *params[i];
    *params[i] = orig + eps;
    double up = net.ForwardBackward(series);
    *params[i] = orig - eps;
    double down = net.ForwardBackward(series);
    *params[i] = orig;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(saved_grad, numeric, 1e-4 + 1e-3 * std::fabs(numeric))
        << "param index " << i;
    // Restore analytic gradients for the next iteration's baseline.
    net.ForwardBackward(series);
    checked++;
  }
  EXPECT_GT(checked, 20);
}

TEST(LstmTest, DeterministicForSeed) {
  LstmConfig cfg;
  cfg.hidden = 6;
  LstmNetwork a(cfg, 42), b(cfg, 42);
  std::vector<double> series = {0.2, 0.4, 0.6, 0.8};
  EXPECT_DOUBLE_EQ(a.PredictNext(series), b.PredictNext(series));
  a.TrainSequence(series);
  b.TrainSequence(series);
  EXPECT_DOUBLE_EQ(a.PredictNext(series), b.PredictNext(series));
}

TEST(LstmTest, TrainingReducesLoss) {
  LstmConfig cfg;
  cfg.hidden = 10;
  cfg.layers = 2;
  LstmNetwork net(cfg, 5);
  // sin wave sampled at 12 points/period, scaled to [0,1].
  std::vector<double> series;
  for (int i = 0; i < 48; ++i)
    series.push_back(0.5 + 0.5 * std::sin(i * 3.14159265 / 6.0));
  double initial = net.Evaluate(series);
  net.Train(series, 150);
  double trained = net.Evaluate(series);
  EXPECT_LT(trained, initial * 0.2);
  EXPECT_LT(trained, 0.02);
}

TEST(LstmTest, LearnsSineWavePrediction) {
  LstmConfig cfg;
  cfg.hidden = 12;
  cfg.layers = 2;
  LstmNetwork net(cfg, 11);
  std::vector<double> series;
  for (int i = 0; i < 60; ++i)
    series.push_back(0.5 + 0.5 * std::sin(i * 3.14159265 / 6.0));
  net.Train(series, 200);
  // Predict the next point after the training window.
  double predicted = net.PredictNext(series);
  double actual = 0.5 + 0.5 * std::sin(60 * 3.14159265 / 6.0);
  EXPECT_NEAR(predicted, actual, 0.15);
}

TEST(LstmTest, LearnsWorkloadShiftPattern) {
  // A step series mimicking an arrival-rate ramp: low, then rising.
  LstmConfig cfg;
  cfg.hidden = 10;
  LstmNetwork net(cfg, 9);
  std::vector<double> series;
  for (int rep = 0; rep < 6; ++rep) {
    for (int i = 0; i < 5; ++i) series.push_back(0.1);
    for (int i = 0; i < 5; ++i) series.push_back(0.1 + 0.18 * i);
  }
  net.Train(series, 150);
  EXPECT_LT(net.Evaluate(series), 0.03);
}

TEST(LstmTest, ForecastIteratesHorizon) {
  LstmConfig cfg;
  cfg.hidden = 6;
  LstmNetwork net(cfg, 2);
  std::vector<double> series = {0.5, 0.5, 0.5, 0.5};
  std::vector<double> fc = net.Forecast(series, 4);
  ASSERT_EQ(fc.size(), 4u);
  // Untrained output is arbitrary but must be finite and bounded.
  for (double v : fc) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::fabs(v), 100.0);
  }
}

TEST(LstmTest, EvaluateOnTinySeriesIsZero) {
  LstmNetwork net(LstmConfig{}, 1);
  EXPECT_DOUBLE_EQ(net.Evaluate({0.5}), 0.0);
  EXPECT_DOUBLE_EQ(net.TrainSequence({0.5}), 0.0);
}

TEST(LstmTest, GradClipKeepsUpdatesFinite) {
  LstmConfig cfg;
  cfg.hidden = 4;
  cfg.learning_rate = 0.5;  // aggressive
  LstmNetwork net(cfg, 13);
  std::vector<double> series = {0.0, 1.0, 0.0, 1.0, 0.0, 1.0};
  for (int i = 0; i < 50; ++i) net.TrainSequence(series);
  double out = net.PredictNext(series);
  EXPECT_TRUE(std::isfinite(out));
}

}  // namespace
}  // namespace lion
