// Tests for the Lion core: heat graph, clump generation, cost model,
// Algorithm 1 (including the paper's Example 2), router, adaptor, planner,
// and the Lion protocol in standard and batch modes.
#include <gtest/gtest.h>

#include "core/clump.h"
#include "core/cost_model.h"
#include "core/heat_graph.h"
#include "core/lion_protocol.h"
#include "core/plan_generator.h"
#include "core/planner.h"
#include "core/txn_router.h"
#include "harness/driver.h"
#include "workload/ycsb.h"

namespace lion {
namespace {

// --- HeatGraph -----------------------------------------------------------------

TEST(HeatGraphTest, AccumulatesVertexAndEdgeWeights) {
  HeatGraph g;
  g.AddAccess({1, 2});
  g.AddAccess({1, 2});
  g.AddAccess({3});
  EXPECT_DOUBLE_EQ(g.VertexWeight(1), 2.0);
  EXPECT_DOUBLE_EQ(g.VertexWeight(2), 2.0);
  EXPECT_DOUBLE_EQ(g.VertexWeight(3), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 1), 2.0);  // undirected
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 3), 0.0);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(HeatGraphTest, MultiPartitionTxnConnectsAllPairs) {
  HeatGraph g;
  g.AddAccess({1, 2, 3});
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 3), 1.0);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(HeatGraphTest, WeightedAccess) {
  HeatGraph g;
  g.AddAccess({1, 2}, 2.5);
  EXPECT_DOUBLE_EQ(g.VertexWeight(1), 2.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 2.5);
}

TEST(HeatGraphTest, VerticesByHeatOrdersHottestFirst) {
  HeatGraph g;
  g.AddAccess({1});
  g.AddAccess({2});
  g.AddAccess({2});
  g.AddAccess({3});
  g.AddAccess({3});
  g.AddAccess({3});
  EXPECT_EQ(g.VerticesByHeat(), (std::vector<PartitionId>{3, 2, 1}));
}

TEST(HeatGraphTest, HeatTiesBreakByIdDeterministically) {
  HeatGraph g;
  g.AddAccess({5});
  g.AddAccess({2});
  g.AddAccess({9});
  EXPECT_EQ(g.VerticesByHeat(), (std::vector<PartitionId>{2, 5, 9}));
}

TEST(HeatGraphTest, ClearResets) {
  HeatGraph g;
  g.AddAccess({1, 2});
  g.Clear();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 0.0);
}

// --- Workload analysis: the paper's Fig. 3 example ------------------------------
// Transactions: T1{P1,P2} T2{P3} T3{P4} T4{P1,P2} T5{P5} T6{P4} T7{P5}
// Expected clumps: C1{P1,P2} w=4, C2{P3} w=1, C3{P4} w=2, C4{P5} w=2.
// (Partitions P1..P5 are ids 0..4 here.)

HeatGraph Figure3Graph() {
  HeatGraph g;
  g.AddAccess({0, 1});  // T1
  g.AddAccess({2});     // T2
  g.AddAccess({3});     // T3
  g.AddAccess({0, 1});  // T4
  g.AddAccess({4});     // T5
  g.AddAccess({3});     // T6
  g.AddAccess({4});     // T7
  return g;
}

TEST(ClumpTest, PaperFigure3ClumpGeneration) {
  HeatGraph g = Figure3Graph();
  RouterTable table(3, 5);
  ClumpGenerator gen(ClumpOptions{/*alpha=*/1.0, /*cross_node_multiplier=*/4.0});
  std::vector<Clump> clumps = gen.Generate(g, table);

  ASSERT_EQ(clumps.size(), 4u);
  // Seeds are hottest-first: P1 (w=2, id 0) leads and absorbs P2.
  EXPECT_EQ(clumps[0].pids, (std::vector<PartitionId>{0, 1}));
  EXPECT_DOUBLE_EQ(clumps[0].weight, 4.0);
  // The three singletons cover P4, P5, P3 with weights 2, 2, 1.
  double singleton_total = 0.0;
  for (size_t i = 1; i < clumps.size(); ++i) {
    EXPECT_EQ(clumps[i].pids.size(), 1u);
    singleton_total += clumps[i].weight;
  }
  EXPECT_DOUBLE_EQ(singleton_total, 5.0);
}

TEST(ClumpTest, AlphaThresholdSplitsWeakEdges) {
  HeatGraph g;
  g.AddAccess({0, 1});  // co-accessed once only
  RouterTable table(1, 2);  // same node: no cross boost
  ClumpGenerator strict(ClumpOptions{/*alpha=*/1.5, 4.0, /*alpha_relative=*/0});
  EXPECT_EQ(strict.Generate(g, table).size(), 2u);  // weight 1 < alpha: split
  ClumpGenerator loose(ClumpOptions{/*alpha=*/0.5, 4.0, /*alpha_relative=*/0});
  EXPECT_EQ(loose.Generate(g, table).size(), 1u);
}

TEST(ClumpTest, RelativeThresholdPrunesNoiseEdges) {
  // Two strong affine pairs plus incidental weak edges between them: the
  // relative threshold keeps the pairs and drops the noise, avoiding one
  // giant clump (the TPC-C remote-order pattern).
  HeatGraph g;
  for (int i = 0; i < 100; ++i) g.AddAccess({0, 1});
  for (int i = 0; i < 100; ++i) g.AddAccess({2, 3});
  for (int i = 0; i < 3; ++i) g.AddAccess({1, 2});  // noise
  RouterTable table(4, 4);  // everything cross-node: same multiplier applies
  ClumpGenerator gen(ClumpOptions{/*alpha=*/1.0, /*cross=*/4.0,
                                  /*alpha_relative=*/0.5});
  auto clumps = gen.Generate(g, table);
  ASSERT_EQ(clumps.size(), 2u);
  EXPECT_EQ(clumps[0].pids.size(), 2u);
  EXPECT_EQ(clumps[1].pids.size(), 2u);
}

TEST(ClumpTest, ColocatedPairsStayClustered) {
  // Placement stability: once a strongly co-accessed pair is co-located,
  // the relative filter must NOT split it (that would let load fine-tuning
  // tear it apart and cause planner oscillation).
  HeatGraph g;
  for (int i = 0; i < 50; ++i) g.AddAccess({0, 1});
  RouterTable table(2, 2);
  table.mutable_group(1)->ForcePrimary(0);  // both primaries on node 0
  ClumpGenerator gen(ClumpOptions{});       // defaults incl. relative filter
  auto clumps = gen.Generate(g, table);
  ASSERT_EQ(clumps.size(), 1u);
  EXPECT_EQ(clumps[0].pids, (std::vector<PartitionId>{0, 1}));
}

TEST(ClumpTest, CrossNodeEdgesGetBoosted) {
  HeatGraph g;
  g.AddAccess({0, 1});  // raw weight 1
  // Partitions 0,1 on different nodes: effective weight 1*4 = 4 > alpha=2.
  RouterTable cross_table(2, 2);
  ClumpGenerator gen(ClumpOptions{/*alpha=*/2.0, /*cross_node_multiplier=*/4.0,
                                  /*alpha_relative=*/0});
  EXPECT_EQ(gen.Generate(g, cross_table).size(), 1u);
  // Same node: effective weight stays 1 < 2: two clumps.
  RouterTable local_table(1, 2);
  EXPECT_EQ(gen.Generate(g, local_table).size(), 2u);
}

TEST(ClumpTest, TransitiveExpansion) {
  HeatGraph g;
  for (int i = 0; i < 3; ++i) {
    g.AddAccess({0, 1});
    g.AddAccess({1, 2});
  }
  RouterTable table(1, 3);
  ClumpGenerator gen(ClumpOptions{/*alpha=*/2.0, 1.0, /*alpha_relative=*/0});
  auto clumps = gen.Generate(g, table);
  ASSERT_EQ(clumps.size(), 1u);  // 0-1-2 chain merges through P1
  EXPECT_EQ(clumps[0].pids, (std::vector<PartitionId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(clumps[0].weight, 3.0 + 6.0 + 3.0);
}

// --- CostModel -------------------------------------------------------------------

// Placement used by Example 2 (Fig. 4b), partitions P1..P5 as ids 0..4:
//   P1: primary n0, secondary n1       P2: primary n2, secondary n0
//   P3: primary n1, secondary n2       P4: primary n2
//   P5: primary n0, secondary n1
RouterTable Example2Table() {
  RouterTable table(3, 5);
  // P1 (0): default primary n0; add secondary n1.
  table.mutable_group(0)->AddSecondary(1, 0);
  // P2 (1): default primary n1 -> force to n2, drop the leftover, add n0.
  table.mutable_group(1)->ForcePrimary(2);
  table.mutable_group(1)->RemoveSecondary(1);
  table.mutable_group(1)->AddSecondary(0, 0);
  // P3 (2): default primary n2 -> force to n1, keep secondary n2 (Fig. 2).
  table.mutable_group(2)->ForcePrimary(1);
  // P4 (3): default primary n0 -> force to n2, no secondaries.
  table.mutable_group(3)->ForcePrimary(2);
  table.mutable_group(3)->RemoveSecondary(0);
  // P5 (4): default primary n1 -> force to n0; old primary n1 stays secondary.
  table.mutable_group(4)->ForcePrimary(0);
  return table;
}

TEST(CostModelTest, CntRemasterAndMigrate) {
  RouterTable table = Example2Table();
  CostModel model(CostModelConfig{});
  // P1 primary on n0: no cost there.
  EXPECT_DOUBLE_EQ(model.CntRemaster(table, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.CntMigrate(table, 0, 0), 0.0);
  // P1 secondary on n1: remaster counts 1 + log2(f+1); f=0 here.
  EXPECT_DOUBLE_EQ(model.CntRemaster(table, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.CntMigrate(table, 0, 1), 0.0);
  // P1 absent on n2: migration.
  EXPECT_DOUBLE_EQ(model.CntRemaster(table, 0, 2), 0.0);
  EXPECT_DOUBLE_EQ(model.CntMigrate(table, 0, 2), 1.0);
}

TEST(CostModelTest, RemasterCostGrowsWithPrimaryFrequency) {
  RouterTable table = Example2Table();
  CostModel model(CostModelConfig{});
  table.RecordAccess(0, 10.0);  // P1 is the hottest partition: f = 1
  double hot = model.CntRemaster(table, 0, 1);
  EXPECT_DOUBLE_EQ(hot, 2.0);  // 1 + log2(2)
}

TEST(CostModelTest, PaperExample2PlacementCosts) {
  // "the costs for C1 to N1, N2, and N3 are wr, wm+wr, and wm"
  RouterTable table = Example2Table();
  CostModelConfig cfg;
  cfg.wr = 1.0;
  cfg.wm = 10.0;
  CostModel model(cfg);
  Clump c1{{0, 1}, 4.0, kInvalidNode};
  EXPECT_DOUBLE_EQ(model.PlacementCost(table, c1, 0), cfg.wr);
  EXPECT_DOUBLE_EQ(model.PlacementCost(table, c1, 1), cfg.wm + cfg.wr);
  EXPECT_DOUBLE_EQ(model.PlacementCost(table, c1, 2), cfg.wm);
  // C2{P3}, C3{P4}, C4{P5} are free on n1, n2, n0 respectively.
  EXPECT_DOUBLE_EQ(model.PlacementCost(table, Clump{{2}, 1.0, -1}, 1), 0.0);
  EXPECT_DOUBLE_EQ(model.PlacementCost(table, Clump{{3}, 2.0, -1}, 2), 0.0);
  EXPECT_DOUBLE_EQ(model.PlacementCost(table, Clump{{4}, 2.0, -1}, 0), 0.0);
}

TEST(CostModelTest, ExecutionCostPrefersPrimaries) {
  RouterTable table = Example2Table();
  CostModel model(CostModelConfig{});
  // Txn on {P1, P2}: n0 has P1 primary + P2 secondary -> cost wr*1.
  EXPECT_DOUBLE_EQ(model.ExecutionCost(table, {0, 1}, 0), 1.0);
  // n2 has P2 primary, P1 absent -> remote_access.
  EXPECT_DOUBLE_EQ(model.ExecutionCost(table, {0, 1}, 2),
                   CostModelConfig{}.remote_access);
}

// --- PlanGenerator: the paper's Example 2 end to end -----------------------------

TEST(PlanGeneratorTest, PaperExample2DispatchAndFineTune) {
  RouterTable table = Example2Table();
  PlanGeneratorConfig cfg;
  cfg.epsilon = 0.25;
  cfg.cost.wr = 1.0;
  cfg.cost.wm = 10.0;
  PlanGenerator gen(cfg);

  std::vector<Clump> clumps = {
      {{0, 1}, 4.0, kInvalidNode},  // C1 {P1,P2}
      {{2}, 1.0, kInvalidNode},     // C2 {P3}
      {{3}, 2.0, kInvalidNode},     // C3 {P4}
      {{4}, 2.0, kInvalidNode},     // C4 {P5}
  };
  ReconfigurationPlan plan = gen.Rearrange(clumps, table);

  ASSERT_EQ(plan.assignments.size(), 4u);
  EXPECT_EQ(plan.assignments[0].dst, 0);  // C1 -> N1
  EXPECT_EQ(plan.assignments[1].dst, 1);  // C2 -> N2
  EXPECT_EQ(plan.assignments[2].dst, 2);  // C3 -> N3
  // Fine-tuning moved C4 off the overloaded N1 to idle N2 (secondary there).
  EXPECT_EQ(plan.assignments[3].dst, 1);  // C4 -> N2
  EXPECT_EQ(plan.fine_tune_moves, 1);
  // Final operation cost is 2*wr (C1's remaster of P2 + C4's remaster of P5).
  EXPECT_DOUBLE_EQ(plan.total_cost, 2.0);
}

TEST(PlanGeneratorTest, Example2PlanEntries) {
  RouterTable table = Example2Table();
  PlanGeneratorConfig cfg;
  cfg.epsilon = 0.25;
  PlanGenerator gen(cfg);
  std::vector<Clump> clumps = {
      {{0, 1}, 4.0, kInvalidNode},
      {{2}, 1.0, kInvalidNode},
      {{3}, 2.0, kInvalidNode},
      {{4}, 2.0, kInvalidNode},
  };
  ReconfigurationPlan plan = gen.Rearrange(clumps, table);
  std::vector<PlanEntry> entries = plan.ToEntries(table);
  // Expected actions: remaster P2 -> n0, remaster P5 -> n1. P1/P3/P4 stay.
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].action, PlanAction::kRemaster);
  EXPECT_EQ(entries[0].pid, 1);
  EXPECT_EQ(entries[0].node, 0);
  EXPECT_EQ(entries[1].action, PlanAction::kRemaster);
  EXPECT_EQ(entries[1].pid, 4);
  EXPECT_EQ(entries[1].node, 1);
}

TEST(PlanGeneratorTest, BalancedInputNeedsNoFineTuning) {
  RouterTable table(3, 6);
  table.InitRoundRobin(2);
  PlanGenerator gen(PlanGeneratorConfig{});
  std::vector<Clump> clumps;
  for (PartitionId p = 0; p < 6; ++p)
    clumps.push_back(Clump{{p}, 1.0, kInvalidNode});
  ReconfigurationPlan plan = gen.Rearrange(clumps, table);
  EXPECT_EQ(plan.fine_tune_moves, 0);
  EXPECT_DOUBLE_EQ(plan.total_cost, 0.0);
  // Every clump stays on its primary node.
  for (const Clump& c : plan.assignments)
    EXPECT_EQ(c.dst, table.PrimaryOf(c.pids[0]));
}

TEST(PlanGeneratorTest, MissingReplicasProduceAddEntries) {
  RouterTable table(3, 3);  // k=1: no secondaries anywhere
  PlanGenerator gen(PlanGeneratorConfig{});
  // Force co-location of all three partitions (primaries on 3 nodes).
  std::vector<Clump> clumps = {{{0, 1, 2}, 9.0, kInvalidNode}};
  ReconfigurationPlan plan = gen.Rearrange(clumps, table);
  std::vector<PlanEntry> entries = plan.ToEntries(table);
  ASSERT_EQ(entries.size(), 2u);
  for (const auto& e : entries) {
    EXPECT_EQ(e.action, PlanAction::kAddReplica);
    EXPECT_EQ(e.node, plan.assignments[0].dst);
  }
}

TEST(PlanGeneratorTest, FineTuningRespectsStepBudget) {
  RouterTable table(2, 8);
  table.InitRoundRobin(2);
  PlanGeneratorConfig cfg;
  cfg.step_budget = 1;
  cfg.epsilon = 0.01;
  PlanGenerator gen(cfg);
  // All clumps cheapest on node 0 (primaries there), grossly imbalanced.
  std::vector<Clump> clumps;
  for (PartitionId p = 0; p < 8; p += 2)
    clumps.push_back(Clump{{p}, 1.0, kInvalidNode});
  ReconfigurationPlan plan = gen.Rearrange(clumps, table);
  EXPECT_GE(plan.fine_tune_moves, 1);
}

// --- Paper Example 3: prediction merges clumps and relocates them ------------

TEST(PlanGeneratorTest, PaperExample3PredictionMergesAndRelocates) {
  // Recap of Example 3 (Sec. IV-C): the predictor anticipates that P3 and
  // P4 will be co-accessed (transaction T3), so their singleton clumps C2
  // and C3 merge into C2' and the plan places them together on N3, which
  // holds P4's primary and P3's secondary.
  RouterTable table = Example2Table();

  // Historical workload of Fig. 3 plus the predicted co-access edge
  // (the red dashed line of Fig. 5c), injected with weight w_p * rate.
  HeatGraph g = Figure3Graph();
  g.AddAccess({2, 3}, 2.0);  // predicted: P3-P4

  ClumpGenerator cgen(ClumpOptions{/*alpha=*/1.0, /*cross=*/4.0});
  std::vector<Clump> clumps = cgen.Generate(g, table);

  // P3 and P4 now share a clump of collective weight >= 3.
  const Clump* merged = nullptr;
  for (const Clump& c : clumps) {
    if (c.pids == std::vector<PartitionId>{2, 3}) merged = &c;
  }
  ASSERT_NE(merged, nullptr);
  EXPECT_GE(merged->weight, 3.0);

  PlanGeneratorConfig pcfg;
  pcfg.epsilon = 0.25;
  pcfg.cost.wr = 1.0;
  pcfg.cost.wm = 10.0;
  PlanGenerator pgen(pcfg);
  ReconfigurationPlan plan = pgen.Rearrange(clumps, table);

  // C2' lands on N3 (node 2): P4's primary plus P3's secondary live there,
  // so co-locating costs only one remastering.
  for (const Clump& c : plan.assignments) {
    if (c.pids == std::vector<PartitionId>{2, 3}) {
      EXPECT_EQ(c.dst, 2);
    }
  }
  // And the resulting plan entry remasters P3 onto node 2.
  bool found = false;
  for (const PlanEntry& e : plan.ToEntries(table)) {
    if (e.pid == 2 && e.node == 2) {
      EXPECT_EQ(e.action, PlanAction::kRemaster);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- TxnRouter -------------------------------------------------------------------

ClusterConfig LionTestConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 1000;
  cfg.record_bytes = 100;
  cfg.remaster_base_delay = 200 * kMicrosecond;
  return cfg;
}

TEST(TxnRouterTest, PrefersNodeWithAllPrimaries) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  TxnRouter router(&cluster, CostModelConfig{});
  // Partitions 0 and 3 both have primary on node 0.
  EXPECT_EQ(router.Route({0, 3}), 0);
  EXPECT_EQ(router.Route({1, 4}), 1);
}

TEST(TxnRouterTest, PrefersReplicasOverNone) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  TxnRouter router(&cluster, CostModelConfig{});
  // Txn {0, 1}: primaries on n0 and n1. Round-robin secondaries: p0 on n1,
  // p1 on n2. Node 1 holds primary(1)... wait p1 primary is n1, secondary n2.
  // Node 1 holds p1 primary + p0 secondary = 2 replicas: best.
  EXPECT_EQ(router.Route({0, 1}), 1);
}

TEST(TxnRouterTest, LoadBreaksTies) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  TxnRouter router(&cluster, CostModelConfig{});
  // Partition 0: primary n0, secondary n1. A single-partition txn reaches
  // the same replica count (1) on both... primary beats secondary via cost,
  // so n0 wins regardless of load.
  EXPECT_EQ(router.Route({0}), 0);
  // Partitions 2 (primary n2, sec n0) and 5 (primary n2, sec n0): node 2
  // has both primaries; busy node 2 still wins on replica count.
  cluster.pool(2)->Submit(TaskPriority::kNew, 1000000, []() {});
  EXPECT_EQ(router.Route({2, 5}), 2);
}

// --- Adaptor ---------------------------------------------------------------------

TEST(AdaptorTest, AppliesAddReplicaEntry) {
  Simulator sim;
  ClusterConfig cfg = LionTestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  Adaptor adaptor(&cluster, 2);
  // Partition 0 has replicas on n0, n1; n2 lacks one.
  adaptor.Apply(PlanEntry{PlanAction::kAddReplica, 0, 2});
  sim.RunUntilIdle();
  EXPECT_TRUE(cluster.router().HasSecondary(2, 0));
  EXPECT_EQ(adaptor.adds_completed(), 1u);
}

TEST(AdaptorTest, AddReplicaEnforcesMaxReplicaLimit) {
  Simulator sim;
  ClusterConfig cfg = LionTestConfig();
  cfg.max_replicas = 2;
  Cluster cluster(&sim, cfg);
  cluster.Start();
  Adaptor adaptor(&cluster, 2);
  adaptor.Apply(PlanEntry{PlanAction::kAddReplica, 0, 2});
  sim.RunUntilIdle();
  sim.RunUntil(sim.Now() + 2 * cfg.epoch_interval);
  // Limit 2: adding n2 must evict the old secondary n1.
  EXPECT_TRUE(cluster.router().HasSecondary(2, 0));
  EXPECT_EQ(cluster.router().group(0).LiveReplicaCount(), 2);
  EXPECT_EQ(cluster.migration().evictions(), 1u);
}

TEST(AdaptorTest, AppliesRemasterEntry) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  cluster.Start();
  Adaptor adaptor(&cluster, 1);
  adaptor.Apply(PlanEntry{PlanAction::kRemaster, 0, 1});  // n1 holds secondary
  sim.RunUntilIdle();
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
}

// --- Planner ---------------------------------------------------------------------

TEST(PlannerTest, CoAccessedPartitionsGetCoLocated) {
  Simulator sim;
  ClusterConfig cfg = LionTestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  PlannerConfig pcfg;
  pcfg.min_history = 10;
  Planner planner(&cluster, pcfg);

  // Partitions 2 (primary n2) and 3 (primary n0) heavily co-accessed.
  for (int i = 0; i < 200; ++i) planner.RecordTxn({2, 3}, sim.Now());
  planner.RunOnce();
  sim.RunUntilIdle();

  EXPECT_EQ(planner.plans_generated(), 1u);
  EXPECT_GT(planner.entries_dispatched(), 0u);
  // After plan application both partitions share a node (via remaster of an
  // existing secondary or a fresh replica + remaster on demand).
  NodeId n2 = cluster.router().PrimaryOf(2);
  bool colocated = cluster.router().PrimaryOf(3) == n2 ||
                   cluster.router().HasSecondary(n2, 3) ||
                   cluster.router().HasSecondary(cluster.router().PrimaryOf(3), 2);
  EXPECT_TRUE(colocated);
}

TEST(PlannerTest, NoPlanningBelowMinHistory) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  PlannerConfig pcfg;
  pcfg.min_history = 100;
  Planner planner(&cluster, pcfg);
  planner.RecordTxn({0, 1}, 0);
  planner.RunOnce();
  EXPECT_EQ(planner.plans_generated(), 0u);
}

TEST(PlannerTest, HistoryIsBounded) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  PlannerConfig pcfg;
  pcfg.history_capacity = 50;
  pcfg.min_history = 1;
  Planner planner(&cluster, pcfg);
  for (int i = 0; i < 500; ++i) planner.RecordTxn({0}, 0);
  planner.RunOnce();  // must not blow up; capacity respected internally
  EXPECT_EQ(planner.plans_generated(), 1u);
}

TEST(PlannerTest, PeriodicPlanningViaStart) {
  Simulator sim;
  ClusterConfig cfg = LionTestConfig();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  PlannerConfig pcfg;
  pcfg.interval = 100 * kMillisecond;
  pcfg.min_history = 1;
  Planner planner(&cluster, pcfg);
  planner.Start();
  for (int i = 0; i < 20; ++i) planner.RecordTxn({0, 1}, sim.Now());
  sim.RunUntil(350 * kMillisecond);
  EXPECT_GE(planner.plans_generated(), 3u);
}

// --- LionProtocol: the paper's Example 1 -------------------------------------------

// Example 1 placement: P1 primary N1(n0), P2 primary N3(n2), P3 primary
// N2(n1). Secondaries: P1 on n1 (Fig. 2 follower), P2 on n0, P3 on n2.
void SetupExample1(Cluster* cluster) {
  RouterTable& t = cluster->router();
  // 3 nodes x 2 partitions = 6; we use 0..3 as P1..P4.
  // P1 (0): default primary n0, secondary n1. Matches.
  // P2 (1): default primary n1 -> n2; secondary n0.
  t.mutable_group(1)->ForcePrimary(2);
  t.mutable_group(1)->RemoveSecondary(1);
  t.mutable_group(1)->AddSecondary(0, 0);
  // P3 (2): default primary n2 (secondary n0) -> n1; keep only secondary n2.
  t.mutable_group(2)->ForcePrimary(1);
  t.mutable_group(2)->RemoveSecondary(0);
  // P4 (3): default primary n0 (secondary n1) -> n2, no replica elsewhere.
  t.mutable_group(3)->ForcePrimary(2);
  t.mutable_group(3)->RemoveSecondary(0);
  t.mutable_group(3)->RemoveSecondary(1);
}

TxnPtr SingleWrite(TxnId id, PartitionId pid, Key key) {
  auto txn = std::make_unique<Transaction>(id, 0);
  Operation op;
  op.partition = pid;
  op.key = key;
  op.type = OpType::kWrite;
  op.write_value = 42;
  txn->ops().push_back(op);
  return txn;
}

TEST(LionProtocolTest, Example1SingleNodeWithoutRemastering) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  cluster.Start();
  SetupExample1(&cluster);
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.group_commit = false;
  LionProtocol lion(&cluster, &metrics, opts);

  // T2: W(z) with z in P3 (id 2), primary on n1: direct single-node.
  bool done = false;
  lion.Submit(SingleWrite(1, 2, 7), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kSingleNode);
    EXPECT_EQ(t->coordinator(), 1);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(lion.remaster_requests(), 0u);
  EXPECT_EQ(metrics.single_node(), 1u);
}

TEST(LionProtocolTest, Example1RemasterConversion) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  cluster.Start();
  SetupExample1(&cluster);
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.group_commit = false;
  LionProtocol lion(&cluster, &metrics, opts);

  // T1: W(x in P1), R(y in P2). Router picks n0 (P1 primary + P2 secondary);
  // P2 is remastered to n0, then T1 runs as a single-node transaction.
  auto txn = std::make_unique<Transaction>(1, 0);
  Operation w;
  w.partition = 0;
  w.key = 1;
  w.type = OpType::kWrite;
  w.write_value = 9;
  Operation r;
  r.partition = 1;
  r.key = 2;
  r.type = OpType::kRead;
  txn->ops().push_back(w);
  txn->ops().push_back(r);

  bool done = false;
  lion.Submit(std::move(txn), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kRemastered);
    EXPECT_EQ(t->coordinator(), 0);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(lion.remaster_requests(), 1u);
  EXPECT_EQ(lion.remaster_conversions(), 1u);
  EXPECT_EQ(cluster.router().PrimaryOf(1), 0);  // P2 now mastered on n0
  EXPECT_EQ(metrics.remastered(), 1u);
}

TEST(LionProtocolTest, Example1DistributedFallback) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  cluster.Start();
  SetupExample1(&cluster);
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.group_commit = false;
  LionProtocol lion(&cluster, &metrics, opts);

  // T3 writes P3 (primary n1, secondary n2) and P4 (primary n2, no other
  // replica). No node has all replicas... n2 has P4 primary + P3 secondary!
  // That is convertible. Use P4 + P1 instead: replicas {n2} and {n0, n1}:
  // disjoint, so no single node qualifies -> distributed.
  auto txn = std::make_unique<Transaction>(1, 0);
  for (PartitionId pid : {0, 3}) {
    Operation op;
    op.partition = pid;
    op.key = 3;
    op.type = OpType::kWrite;
    op.write_value = 5;
    txn->ops().push_back(op);
  }
  bool done = false;
  lion.Submit(std::move(txn), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kDistributed);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(lion.fallback_distributed(), 1u);
  EXPECT_EQ(metrics.distributed(), 1u);
}

TEST(LionProtocolTest, Example1ConvertibleViaSecondary) {
  Simulator sim;
  Cluster cluster(&sim, LionTestConfig());
  cluster.Start();
  SetupExample1(&cluster);
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.group_commit = false;
  LionProtocol lion(&cluster, &metrics, opts);

  // {P3, P4}: n2 holds P4 primary + P3 secondary: remaster P3 and convert.
  auto txn = std::make_unique<Transaction>(1, 0);
  for (PartitionId pid : {2, 3}) {
    Operation op;
    op.partition = pid;
    op.key = 4;
    op.type = OpType::kWrite;
    op.write_value = 5;
    txn->ops().push_back(op);
  }
  bool done = false;
  lion.Submit(std::move(txn), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kRemastered);
    EXPECT_EQ(t->coordinator(), 2);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.router().PrimaryOf(2), 2);
}

TEST(LionProtocolTest, GroupCommitDelaysCompletionToEpoch) {
  Simulator sim;
  ClusterConfig ccfg = LionTestConfig();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.group_commit = true;
  LionProtocol lion(&cluster, &metrics, opts);

  SimTime done_at = -1;
  lion.Submit(SingleWrite(1, 0, 5), [&](TxnPtr) { done_at = sim.Now(); });
  sim.RunUntil(3 * ccfg.epoch_interval);
  EXPECT_EQ(done_at, ccfg.epoch_interval);
}

TEST(LionProtocolTest, ClosedLoopYcsbMostlySingleNodeAfterAdaptation) {
  Simulator sim;
  ClusterConfig ccfg = LionTestConfig();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LionOptions opts;
  opts.planner.interval = 200 * kMillisecond;
  opts.planner.min_history = 32;
  LionProtocol lion(&cluster, &metrics, opts);
  lion.Start();

  YcsbConfig ycfg;
  ycfg.ops_per_txn = 6;
  ycfg.cross_ratio = 0.5;
  YcsbWorkload workload(ccfg, ycfg);
  ClosedLoopDriver driver(&sim, &lion, &workload, &metrics, 12);
  driver.Start();
  sim.RunUntil(2 * kSecond);
  metrics.StartMeasurement(sim.Now());
  sim.RunUntil(4 * kSecond);
  driver.Stop();
  sim.RunUntil(5 * kSecond);

  EXPECT_GT(metrics.committed(), 500u);
  // Lion's point: most transactions execute on a single node.
  EXPECT_GT(metrics.single_node() + metrics.remastered(),
            metrics.distributed());
}

TEST(LionProtocolTest, BatchModeFlushesAtEpoch) {
  Simulator sim;
  ClusterConfig ccfg = LionTestConfig();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.batch_mode = true;
  LionProtocol lion(&cluster, &metrics, opts);
  lion.Start();

  int committed = 0;
  for (int i = 0; i < 5; ++i) {
    lion.Submit(SingleWrite(i + 1, 0, 10 + i), [&](TxnPtr) { committed++; });
  }
  // Nothing executes before the first epoch flush.
  sim.RunUntil(ccfg.epoch_interval / 2);
  EXPECT_EQ(committed, 0);
  sim.RunUntil(4 * ccfg.epoch_interval);
  EXPECT_EQ(committed, 5);
}

TEST(LionProtocolTest, BatchModeAsyncRemasterBarrier) {
  Simulator sim;
  ClusterConfig ccfg = LionTestConfig();
  ccfg.remaster_base_delay = 3000 * kMicrosecond;
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  SetupExample1(&cluster);
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.batch_mode = true;
  LionProtocol lion(&cluster, &metrics, opts);
  lion.Start();

  // Convertible txn on {P1, P2}: async remaster of P2 onto n0 kicks off at
  // submission time, well before the epoch flush.
  auto txn = std::make_unique<Transaction>(1, 0);
  for (PartitionId pid : {0, 1}) {
    Operation op;
    op.partition = pid;
    op.key = 6;
    op.type = OpType::kWrite;
    op.write_value = 5;
    txn->ops().push_back(op);
  }
  bool done = false;
  lion.Submit(std::move(txn), [&](TxnPtr t) {
    done = true;
    EXPECT_EQ(t->exec_class(), ExecClass::kRemastered);
  });
  // Remaster (3 ms) completes before the 10 ms epoch: no barrier stall.
  sim.RunUntil(5 * ccfg.epoch_interval);
  EXPECT_TRUE(done);
  EXPECT_EQ(lion.remaster_conversions(), 1u);
}

TEST(LionProtocolTest, BatchSizeLimitTriggersEarlyFlush) {
  Simulator sim;
  ClusterConfig ccfg = LionTestConfig();
  Cluster cluster(&sim, ccfg);
  cluster.Start();
  MetricsCollector metrics;
  LionOptions opts;
  opts.enable_planner = false;
  opts.batch_mode = true;
  opts.max_batch_size = 3;
  opts.group_commit = false;
  LionProtocol lion(&cluster, &metrics, opts);
  lion.Start();

  int committed = 0;
  for (int i = 0; i < 3; ++i)
    lion.Submit(SingleWrite(i + 1, 0, 20 + i), [&](TxnPtr) { committed++; });
  // Size-3 batch flushed immediately; commits happen well before the epoch.
  sim.RunUntil(ccfg.epoch_interval / 2);
  EXPECT_EQ(committed, 3);
}

}  // namespace
}  // namespace lion
