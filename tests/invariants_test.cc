// Property-style invariant tests: placement sanity, replication
// convergence, and determinism, swept across protocols and seeds.
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "harness/experiment.h"
#include "harness/registry.h"

namespace lion {
namespace {

struct Sweep {
  const char* protocol;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const Sweep& s) {
  return os << s.protocol << "/seed" << s.seed;
}

class PlacementInvariantsTest : public ::testing::TestWithParam<Sweep> {};

// After any protocol churns placement for a while and the system quiesces:
//  - every partition has exactly one primary on a valid node,
//  - live replica counts stay within [1, max_replicas] (+1 transient slack
//    for an in-flight delayed eviction),
//  - no partition is left blocked or mid-reconfiguration.
TEST_P(PlacementInvariantsTest, PlacementStaysSane) {
  const Sweep& sweep = GetParam();
  ClusterConfig ccfg;
  ccfg.num_nodes = 4;
  ccfg.partitions_per_node = 3;
  ccfg.records_per_partition = 1000;
  ccfg.record_bytes = 100;
  ccfg.max_replicas = 3;
  ccfg.remaster_base_delay = 300 * kMicrosecond;

  ExperimentConfig cfg;
  cfg.protocol = sweep.protocol;
  cfg.seed = sweep.seed;
  cfg.cluster = ccfg;
  cfg.ycsb.cross_ratio = 0.7;
  cfg.ycsb.skew_factor = 0.5;
  cfg.lion.planner.interval = 200 * kMillisecond;
  cfg.lion.planner.min_history = 32;
  cfg.predictor.train_epochs = 2;

  Simulator sim(cfg.seed);
  Cluster cluster(&sim, cfg.cluster);
  MetricsCollector metrics;
  std::unique_ptr<Protocol> protocol;
  Status status = ProtocolRegistry::Global().Create(
      cfg.protocol, ProtocolContext{cfg, &cluster, &metrics}, &protocol);
  ASSERT_TRUE(status.ok()) << status.ToString();
  YcsbWorkload workload(cfg.cluster, cfg.ycsb);

  cluster.Start();
  protocol->Start();
  ClosedLoopDriver driver(&sim, protocol.get(), &workload, &metrics, 24);
  driver.Start();
  sim.RunUntil(1500 * kMillisecond);
  driver.Stop();
  sim.RunUntilIdle();  // quiesce: drain in-flight work

  EXPECT_GT(metrics.committed(), 100u);
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    const ReplicaGroup& g = cluster.router().group(p);
    EXPECT_GE(g.primary(), 0) << "partition " << p;
    EXPECT_LT(g.primary(), ccfg.num_nodes) << "partition " << p;
    EXPECT_GE(g.LiveReplicaCount(), 1) << "partition " << p;
    EXPECT_LE(g.LiveReplicaCount(), ccfg.max_replicas + 1) << "partition " << p;
    EXPECT_FALSE(g.HasSecondary(g.primary())) << "partition " << p;
    EXPECT_FALSE(g.reconfig_in_progress()) << "partition " << p;
    EXPECT_FALSE(cluster.store(p)->write_blocked()) << "partition " << p;
    // No duplicate secondary entries.
    std::set<NodeId> nodes;
    for (const auto& sec : g.secondaries()) {
      EXPECT_TRUE(nodes.insert(sec.node).second) << "partition " << p;
      EXPECT_NE(sec.node, g.primary()) << "partition " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PlacementInvariantsTest,
    ::testing::Values(Sweep{"2PC", 1}, Sweep{"Leap", 1}, Sweep{"Leap", 7},
                      Sweep{"Clay", 1}, Sweep{"Clay", 7}, Sweep{"Lion(R)", 1},
                      Sweep{"Lion(R)", 7}, Sweep{"Lion(RW)", 3},
                      Sweep{"Lion(RB)", 3}, Sweep{"Lion(S)", 5},
                      Sweep{"Star", 1}, Sweep{"Calvin", 1}, Sweep{"Hermes", 5},
                      Sweep{"Aria", 1}, Sweep{"Lotus", 1}));

class ReplicationConvergenceTest : public ::testing::TestWithParam<const char*> {};

// With materialized secondaries, once the system quiesces and a few epochs
// pass, every live secondary has applied the full log and its copy agrees
// with the authoritative store.
TEST_P(ReplicationConvergenceTest, SecondariesConverge) {
  ClusterConfig ccfg;
  ccfg.num_nodes = 3;
  ccfg.partitions_per_node = 2;
  ccfg.records_per_partition = 300;
  ccfg.record_bytes = 100;
  ccfg.materialize_secondaries = true;
  ccfg.remaster_base_delay = 200 * kMicrosecond;

  ExperimentConfig cfg;
  cfg.protocol = GetParam();
  cfg.cluster = ccfg;
  cfg.ycsb.cross_ratio = 0.5;
  cfg.ycsb.write_ratio = 0.4;
  cfg.lion.planner.interval = 200 * kMillisecond;
  cfg.lion.planner.min_history = 32;
  cfg.predictor.train_epochs = 2;

  Simulator sim(3);
  Cluster cluster(&sim, ccfg);
  MetricsCollector metrics;
  std::unique_ptr<Protocol> protocol;
  Status status = ProtocolRegistry::Global().Create(
      cfg.protocol, ProtocolContext{cfg, &cluster, &metrics}, &protocol);
  ASSERT_TRUE(status.ok()) << status.ToString();
  YcsbWorkload workload(ccfg, cfg.ycsb);

  cluster.Start();
  protocol->Start();
  ClosedLoopDriver driver(&sim, protocol.get(), &workload, &metrics, 16);
  driver.Start();
  sim.RunUntil(1 * kSecond);
  driver.Stop();
  sim.RunUntilIdle();
  // A few more epochs so the final log entries ship.
  sim.RunUntil(sim.Now() + 5 * ccfg.epoch_interval);

  ASSERT_GT(metrics.committed(), 100u);
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    const ReplicaGroup& g = cluster.router().group(p);
    for (const auto& sec : g.secondaries()) {
      if (sec.delete_flag) continue;
      EXPECT_EQ(g.LagOf(sec.node), 0u)
          << "partition " << p << " secondary on node " << sec.node;
      const auto* copy = cluster.replication().MaterializedCopy(p, sec.node);
      if (copy == nullptr) continue;  // never received a log entry
      for (const auto& [key, value] : *copy) {
        Value v = 0;
        Version ver = 0;
        ASSERT_TRUE(cluster.store(p)->Read(key, &v, &ver).ok());
        EXPECT_EQ(v, value) << "partition " << p << " key " << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ReplicationConvergenceTest,
                         ::testing::Values("2PC", "Lion(R)", "Clay"));

// Committed writes are never lost: run a write-only single-partition
// workload with known values; every committed transaction's writes must be
// present (version advanced past the load value).
TEST(DurabilityTest, CommittedWritesVisible) {
  ClusterConfig ccfg;
  ccfg.num_nodes = 2;
  ccfg.partitions_per_node = 1;
  ccfg.records_per_partition = 64;
  ccfg.record_bytes = 100;

  Simulator sim(9);
  Cluster cluster(&sim, ccfg);
  MetricsCollector metrics;
  ExperimentConfig cfg;
  cfg.protocol = "2PC";
  cfg.cluster = ccfg;
  std::unique_ptr<Protocol> protocol;
  ASSERT_TRUE(ProtocolRegistry::Global()
                  .Create(cfg.protocol,
                          ProtocolContext{cfg, &cluster, &metrics}, &protocol)
                  .ok());
  cluster.Start();
  protocol->Start();

  std::vector<std::pair<PartitionId, Key>> committed_writes;
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    auto txn = std::make_unique<Transaction>(i + 1, sim.Now());
    Operation op;
    op.partition = i % 2;
    op.key = static_cast<Key>(i % 64);
    op.type = OpType::kWrite;
    op.write_value = 1000 + i;
    txn->ops().push_back(op);
    PartitionId pid = op.partition;
    Key key = op.key;
    protocol->Submit(std::move(txn), [&, pid, key](TxnPtr) {
      committed_writes.push_back({pid, key});
      done++;
    });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(done, 40);
  for (auto& [pid, key] : committed_writes) {
    EXPECT_GT(cluster.store(pid)->VersionOf(key), 1u);
  }
}

}  // namespace
}  // namespace lion
