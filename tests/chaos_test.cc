// Chaos subsystem tests: fault-schedule parsing and validation, network
// partition park/heal, graceful degradation (bounded unavailability
// retries), the post-run integrity checker, and the chaos track end to end
// through the experiment harness — including that chaos-off runs emit no
// chaos fields at all.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "metrics/metrics.h"
#include "protocols/meta_protocol.h"
#include "protocols/twopc.h"
#include "replication/chaos.h"
#include "replication/cluster.h"
#include "replication/failure_injector.h"
#include "replication/integrity.h"
#include "sim/network.h"
#include "txn/transaction.h"

namespace lion {
namespace {

ClusterConfig Cfg(int replicas = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 500;
  cfg.record_bytes = 100;
  cfg.init_replicas = replicas;
  cfg.remaster_base_delay = 1 * kMillisecond;
  return cfg;
}

TxnPtr MakeTxn(TxnId id, PartitionId pid) {
  auto txn = std::make_unique<Transaction>(id, 0);
  Operation op;
  op.partition = pid;
  op.key = 1;
  op.type = OpType::kWrite;
  op.write_value = 42;
  txn->ops().push_back(op);
  return txn;
}

// --- schedule grammar --------------------------------------------------------

TEST(ChaosEventTest, ParsesEveryKind) {
  ChaosEvent ev;
  ASSERT_TRUE(ChaosEvent::Parse("400ms crash 1", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kCrash);
  EXPECT_EQ(ev.at, 400 * kMillisecond);
  EXPECT_EQ(ev.node, 1);

  ASSERT_TRUE(ChaosEvent::Parse("450ms crash_dirty 2", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kCrashDirty);
  EXPECT_EQ(ev.at, 450 * kMillisecond);
  EXPECT_EQ(ev.node, 2);

  ASSERT_TRUE(ChaosEvent::Parse("1.5s recover 0", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kRecover);
  EXPECT_EQ(ev.at, 1500 * kMillisecond);

  ASSERT_TRUE(ChaosEvent::Parse("2s truncate 1", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kTruncate);
  EXPECT_EQ(ev.node, 1);
  EXPECT_EQ(ev.Describe(), "truncate node=1");

  ASSERT_TRUE(ChaosEvent::Parse("250us partition 1,2", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kPartition);
  ASSERT_EQ(ev.island.size(), 2u);
  EXPECT_EQ(ev.island[0], 1);
  EXPECT_EQ(ev.island[1], 2);

  ASSERT_TRUE(ChaosEvent::Parse("1s heal", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kHeal);

  ASSERT_TRUE(ChaosEvent::Parse("700ms lag_storm 100ms", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kLagStorm);
  EXPECT_EQ(ev.duration, 100 * kMillisecond);

  ASSERT_TRUE(ChaosEvent::Parse("2s migrate 3 1", &ev).ok());
  EXPECT_EQ(ev.kind, ChaosEventKind::kMigrate);
  EXPECT_EQ(ev.partition, 3);
  EXPECT_EQ(ev.node, 1);
  EXPECT_FALSE(ev.Describe().empty());
}

TEST(ChaosEventTest, RejectsMalformedEntries) {
  ChaosEvent ev;
  EXPECT_FALSE(ChaosEvent::Parse("", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("crash 1", &ev).ok());        // no time
  EXPECT_FALSE(ChaosEvent::Parse("100xs crash 1", &ev).ok());  // bad unit
  EXPECT_FALSE(ChaosEvent::Parse("100ms crash", &ev).ok());    // missing arg
  EXPECT_FALSE(ChaosEvent::Parse("100ms crash 1 2", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms crash x", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms explode 1", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms crash_dirty", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms crash_dirty 1 2", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms crash_dirty x", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms truncate", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms truncate 0 1", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms heal 1", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms lag_storm 0ms", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms partition", &ev).ok());
  EXPECT_FALSE(ChaosEvent::Parse("100ms migrate 3", &ev).ok());
}

TEST(ChaosControllerTest, ValidateChecksIdRangesAndKnobs) {
  ClusterConfig cluster = Cfg();  // 3 nodes, 6 partitions
  ChaosConfig ok;
  ok.schedule = {"100ms crash 2", "200ms migrate 5 0"};
  EXPECT_TRUE(ChaosController::Validate(ok, cluster).ok());

  ChaosConfig bad_node;
  bad_node.schedule = {"100ms crash 3"};
  EXPECT_FALSE(ChaosController::Validate(bad_node, cluster).ok());

  ChaosConfig ok_recovery;
  ok_recovery.schedule = {"100ms crash_dirty 1", "200ms truncate 0"};
  EXPECT_TRUE(ChaosController::Validate(ok_recovery, cluster).ok());

  ChaosConfig bad_dirty_node;
  bad_dirty_node.schedule = {"100ms crash_dirty 3"};
  EXPECT_FALSE(ChaosController::Validate(bad_dirty_node, cluster).ok());

  ChaosConfig bad_truncate_node;
  bad_truncate_node.schedule = {"100ms truncate 7"};
  EXPECT_FALSE(ChaosController::Validate(bad_truncate_node, cluster).ok());

  ChaosConfig bad_island;
  bad_island.schedule = {"100ms partition 0,9"};
  EXPECT_FALSE(ChaosController::Validate(bad_island, cluster).ok());

  ChaosConfig bad_pid;
  bad_pid.schedule = {"100ms migrate 6 0"};
  EXPECT_FALSE(ChaosController::Validate(bad_pid, cluster).ok());

  ChaosConfig bad_grammar;
  bad_grammar.schedule = {"whenever crash 0"};
  EXPECT_FALSE(ChaosController::Validate(bad_grammar, cluster).ok());

  ChaosConfig bad_backoff;
  bad_backoff.unavailable_backoff = 0;
  EXPECT_FALSE(ChaosController::Validate(bad_backoff, cluster).ok());
}

// --- network partitions ------------------------------------------------------

TEST(ChaosNetworkTest, PartitionParksAndHealRedelivers) {
  Simulator sim;
  Network net(&sim, NetworkConfig{}, /*num_nodes=*/3);

  net.StartPartition({2});
  EXPECT_TRUE(net.Reachable(0, 1));
  EXPECT_FALSE(net.Reachable(0, 2));
  EXPECT_FALSE(net.Reachable(2, 1));
  EXPECT_TRUE(net.Reachable(2, 2));

  int delivered = 0;
  net.Send(0, 2, 100, [&]() { delivered += 1; });  // crosses the cut: parked
  net.Send(2, 1, 100, [&]() { delivered += 10; }); // crosses the cut: parked
  net.Send(0, 1, 100, [&]() { delivered += 100; }); // mainland: flows
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(net.messages_dropped(), 2u);

  // Heal retransmits every parked message in send order.
  net.HealPartition();
  EXPECT_TRUE(net.Reachable(0, 2));
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 111);
}

// --- graceful degradation ----------------------------------------------------

TEST(ChaosDegradationTest, UnavailablePartitionAbortsAfterBoundedRetries) {
  Simulator sim;
  ClusterConfig cfg = Cfg(/*replicas=*/1);  // crash = hard outage
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPcProtocol protocol(&cluster, &metrics);

  ChaosConfig ccfg;
  ccfg.max_unavailable_retries = 3;
  ccfg.unavailable_backoff = 100 * kMicrosecond;
  protocol.EnableDegradation(&ccfg);

  FailureInjector chaos(&cluster);
  chaos.FailNode(0);  // partitions 0 and 3 lose their only copy
  sim.RunUntilIdle();

  int done_calls = 0;
  protocol.Submit(MakeTxn(1, 0), [&](TxnPtr) { done_calls++; });
  EXPECT_EQ(done_calls, 0);  // still backing off, not failed synchronously
  sim.RunUntilIdle();
  EXPECT_EQ(done_calls, 1);
  EXPECT_EQ(metrics.aborted_unavailable(), 1u);
  // Deterministic linear backoff: 100 + 200 + 300 us before giving up.
  EXPECT_GE(sim.Now(), 600 * kMicrosecond);

  // A transaction on a healthy partition is untouched by the gate.
  protocol.Submit(MakeTxn(2, 1), [&](TxnPtr) { done_calls += 10; });
  sim.RunUntilIdle();
  EXPECT_EQ(done_calls, 11);
  EXPECT_EQ(metrics.aborted_unavailable(), 1u);

  // Recovery lifts the gate for the failed partition too.
  chaos.RecoverNode(0);
  sim.RunUntilIdle();
  protocol.Submit(MakeTxn(3, 0), [&](TxnPtr) { done_calls += 100; });
  sim.RunUntilIdle();
  EXPECT_EQ(done_calls, 111);
  EXPECT_EQ(metrics.aborted_unavailable(), 1u);
}

TEST(ChaosDegradationTest, RetryBudgetSurvivesOccRestarts) {
  // ResetForRestart clears the OCC restart counter but must NOT clear the
  // unavailability budget, or a txn could ping-pong forever between the two.
  Transaction txn(1, 0);
  txn.BumpUnavailableRetries();
  txn.BumpUnavailableRetries();
  txn.ResetForRestart();
  EXPECT_EQ(txn.unavailable_retries(), 2);
}

// --- integrity checker -------------------------------------------------------

TEST(ChaosIntegrityTest, CleanClusterPasses) {
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  FailureInjector chaos(&cluster);
  IntegrityReport report = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_TRUE(report.ok()) << report.violations[0];
  EXPECT_EQ(report.partitions_checked, 6u);
}

TEST(ChaosIntegrityTest, CatchesSeededViolations) {
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  FailureInjector chaos(&cluster);

  // A write-blocked partition with no failover or unavailability marker is
  // exactly the leak the reconfiguration-token machinery prevents.
  cluster.store(0)->set_write_blocked(true);
  IntegrityReport blocked = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_FALSE(blocked.ok());
  cluster.store(0)->set_write_blocked(false);

  // An applied LSN ahead of the primary's log breaks LSN monotonicity.
  ReplicaGroup* g = cluster.router().mutable_group(1);
  g->Ack(2, 50);  // primary_lsn is still 0
  IntegrityReport lsn = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_FALSE(lsn.ok());
  g->Advance(50);  // repair: the primary catches up past the bogus ack

  // A live secondary on a down node would silently vanish from replication.
  // FailNode drops them correctly, so seed one behind the injector's back.
  chaos.FailNode(2);
  sim.RunUntilIdle();
  cluster.router().mutable_group(0)->AddSecondary(2, 0);
  IntegrityReport ghost = CheckClusterIntegrity(&cluster, &chaos, nullptr);
  EXPECT_FALSE(ghost.ok());
}

TEST(ChaosIntegrityTest, LedgerDetectsMissingCommittedWrites) {
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  CommitLedger ledger(cluster.num_partitions());

  // Record two committed writes; the preloaded store is at version 1, so
  // one of them is "lost" until it is actually applied.
  auto txn = MakeTxn(1, 0);
  txn->ops()[0].key = 7;
  ledger.Record(*txn);
  ledger.Record(*txn);
  EXPECT_EQ(ledger.writes_recorded(), 2u);
  IntegrityReport report = CheckClusterIntegrity(&cluster, nullptr, &ledger);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.committed_writes_checked, 1u);

  // Apply the write for real: the ledger and store now agree.
  cluster.store(0)->Apply(7, 42);
  IntegrityReport applied = CheckClusterIntegrity(&cluster, nullptr, &ledger);
  EXPECT_TRUE(applied.ok()) << applied.violations[0];
}

// --- experiment harness ------------------------------------------------------

TEST(ChaosExperimentTest, ScheduledRunStaysConsistent) {
  ExperimentBuilder builder;
  builder.Protocol("2PC").Workload("ycsb");
  builder.config().cluster = Cfg();
  builder.config().cluster.workers_per_node = 4;
  builder.Warmup(100 * kMillisecond).Duration(600 * kMillisecond).Seed(7);
  builder.config().chaos.schedule = {"200ms crash 1", "350ms partition 2",
                                     "450ms heal", "500ms recover 1"};

  ExperimentResult res;
  ASSERT_TRUE(builder.Run(&res).ok());
  EXPECT_TRUE(res.chaos_active);
  EXPECT_GT(res.committed, 0u);
  EXPECT_EQ(res.fault_events.size(), 4u);
  EXPECT_EQ(res.integrity_violations, 0u)
      << (res.integrity_messages.empty() ? "" : res.integrity_messages[0]);
  EXPECT_EQ(res.integrity_partitions_checked, 6u);
  EXPECT_GT(res.integrity_writes_checked, 0u);
  EXPECT_EQ(res.window_availability.size(), res.window_throughput.size());

  std::string json = res.ToJson();
  EXPECT_NE(json.find("\"fault_events\""), std::string::npos);
  EXPECT_NE(json.find("\"integrity\""), std::string::npos);
}

TEST(ChaosExperimentTest, ValidateRejectsBadSchedule) {
  ExperimentBuilder builder;
  builder.Protocol("2PC").Workload("ycsb");
  builder.config().cluster = Cfg();
  builder.config().chaos.schedule = {"200ms crash 99"};
  EXPECT_FALSE(builder.Validate().ok());
}

TEST(ChaosExperimentTest, ChaosOffEmitsNoChaosFields) {
  ExperimentBuilder builder;
  builder.Protocol("2PC").Workload("ycsb");
  builder.config().cluster = Cfg();
  builder.config().cluster.workers_per_node = 4;
  builder.Warmup(50 * kMillisecond).Duration(200 * kMillisecond).Seed(7);

  ExperimentResult res;
  ASSERT_TRUE(builder.Run(&res).ok());
  EXPECT_FALSE(res.chaos_active);
  std::string json = res.ToJson();
  EXPECT_EQ(json.find("aborted_unavailable"), std::string::npos);
  EXPECT_EQ(json.find("fault_events"), std::string::npos);
  EXPECT_EQ(json.find("integrity"), std::string::npos);
  EXPECT_EQ(json.find("window_availability"), std::string::npos);
}

// A node crash landing mid-epoch — while the meta protocol is mid-decision
// and possibly mid-handoff — must never strand a partition: the run stays
// write-consistent (zero integrity violations), every started switch
// completes or is drained by Stop, and no transaction stays parked.
TEST(ChaosExperimentTest, MetaSwitchUnderCrashNeverStrandsAPartition) {
  ExperimentBuilder builder;
  builder.Protocol("meta").Workload("ycsb-hotspot-position");
  builder.config().cluster = Cfg();
  builder.config().cluster.workers_per_node = 4;
  builder.DynamicPeriod(200 * kMillisecond);
  builder.Warmup(100 * kMillisecond).Duration(600 * kMillisecond).Seed(7);
  // 205 ms sits 5 ms past an epoch boundary (10 ms epochs), so the crash
  // interleaves with in-flight switch handoffs rather than aligning with
  // the decision tick.
  builder.config().chaos.schedule = {"205ms crash 1", "500ms recover 1"};

  std::unique_ptr<Experiment> exp;
  ASSERT_TRUE(builder.Build(&exp).ok());
  ExperimentResult res = exp->Run();

  EXPECT_TRUE(res.chaos_active);
  EXPECT_TRUE(res.meta_active);
  EXPECT_GT(res.committed, 0u);
  EXPECT_GE(res.protocol_switches.size(), 1u);
  EXPECT_EQ(res.integrity_violations, 0u)
      << (res.integrity_messages.empty() ? "" : res.integrity_messages[0]);
  EXPECT_GT(res.integrity_writes_checked, 0u);

  auto* meta = dynamic_cast<MetaProtocol*>(exp->protocol());
  ASSERT_NE(meta, nullptr);
  EXPECT_FALSE(meta->SwitchInProgress());
  EXPECT_EQ(meta->parked(), 0u);
}

}  // namespace
}  // namespace lion
