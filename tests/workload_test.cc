// Tests for the workload generators: YCSB distribution properties, TPC-C
// structure, and the dynamic hotspot scenarios.
#include <gtest/gtest.h>

#include <set>

#include "replication/cluster.h"
#include "workload/dynamic.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace lion {
namespace {

ClusterConfig Cfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.partitions_per_node = 3;
  cfg.records_per_partition = 1000;
  return cfg;
}

// --- YCSB -----------------------------------------------------------------------

TEST(YcsbTest, OpsCountAndKeyRange) {
  YcsbConfig y;
  y.ops_per_txn = 10;
  YcsbWorkload w(Cfg(), y);
  Rng rng(1);
  auto txn = w.Next(1, 0, &rng);
  EXPECT_EQ(txn->ops().size(), 10u);
  for (const auto& op : txn->ops()) {
    EXPECT_LT(op.key, 1000u);
    EXPECT_GE(op.partition, 0);
    EXPECT_LT(op.partition, 12);
  }
}

TEST(YcsbTest, ZeroCrossRatioIsSinglePartition) {
  YcsbConfig y;
  y.cross_ratio = 0.0;
  YcsbWorkload w(Cfg(), y);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto txn = w.Next(i, 0, &rng);
    EXPECT_EQ(txn->Partitions().size(), 1u);
  }
}

TEST(YcsbTest, FullCrossRatioIsTwoPartitionsOnTwoNodes) {
  YcsbConfig y;
  y.cross_ratio = 1.0;
  YcsbWorkload w(Cfg(), y);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    auto txn = w.Next(i, 0, &rng);
    auto parts = txn->Partitions();
    ASSERT_EQ(parts.size(), 2u);
    // The pair spans two (initial-placement) nodes.
    EXPECT_NE(parts[0] % 4, parts[1] % 4);
  }
}

TEST(YcsbTest, PairedPatternIsStable) {
  YcsbConfig y;
  y.cross_ratio = 1.0;
  y.cross_pattern = CrossPattern::kPaired;
  YcsbWorkload w(Cfg(), y);
  Rng rng(4);
  // Each partition always co-accesses the same partner.
  std::set<std::pair<PartitionId, PartitionId>> pairs;
  for (int i = 0; i < 500; ++i) {
    auto parts = w.Next(i, 0, &rng)->Partitions();
    pairs.insert({parts[0], parts[1]});
  }
  // Disjoint pairing: at most total_partitions/2 distinct pairs.
  EXPECT_LE(pairs.size(), 6u);
}

TEST(YcsbTest, SkewConcentratesOnHotNode) {
  YcsbConfig y;
  y.skew_factor = 0.8;
  y.hot_node = 1;
  YcsbWorkload w(Cfg(), y);
  Rng rng(5);
  int hot = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    auto parts = w.Next(i, 0, &rng)->Partitions();
    if (parts[0] % 4 == 1) hot++;
  }
  // 80% hot + ~5% of the uniform remainder.
  EXPECT_GT(hot, kTrials * 7 / 10);
}

TEST(YcsbTest, PartitionOffsetRotatesSpace) {
  YcsbConfig base;
  base.cross_ratio = 0.0;
  YcsbConfig shifted = base;
  shifted.partition_offset = 6;
  YcsbWorkload w0(Cfg(), base), w1(Cfg(), shifted);
  Rng r0(7), r1(7);  // same seed: same home pre-offset
  for (int i = 0; i < 100; ++i) {
    auto p0 = w0.Next(i, 0, &r0)->Partitions()[0];
    auto p1 = w1.Next(i, 0, &r1)->Partitions()[0];
    EXPECT_EQ((p0 + 6) % 12, p1);
  }
}

TEST(YcsbTest, WriteRatioRespected) {
  YcsbConfig y;
  y.write_ratio = 0.3;
  y.ops_per_txn = 10;
  YcsbWorkload w(Cfg(), y);
  Rng rng(8);
  int writes = 0, total = 0;
  for (int i = 0; i < 500; ++i) {
    auto txn = w.Next(i, 0, &rng);
    for (const auto& op : txn->ops()) {
      total++;
      if (op.type == OpType::kWrite) writes++;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.3, 0.04);
}

TEST(YcsbTest, NoDuplicateKeysWithinPartition) {
  YcsbConfig y;
  y.ops_per_txn = 8;
  y.zipf_theta = 0.99;  // heavy collisions without dedup
  YcsbWorkload w(Cfg(), y);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    auto txn = w.Next(i, 0, &rng);
    std::set<std::pair<PartitionId, Key>> seen;
    for (const auto& op : txn->ops()) {
      EXPECT_TRUE(seen.insert({op.partition, op.key}).second);
    }
  }
}

// --- TPC-C ----------------------------------------------------------------------

TEST(TpccTest, LoadPopulatesRelations) {
  Simulator sim;
  ClusterConfig ccfg = Cfg();
  Cluster cluster(&sim, ccfg);
  TpccConfig t;
  TpccWorkload w(ccfg, t);
  w.Load(&cluster);
  PartitionStore* store = cluster.store(0);
  EXPECT_TRUE(store->Contains(TpccWorkload::MakeKey(TpccWorkload::kWarehouse, 0)));
  EXPECT_TRUE(store->Contains(TpccWorkload::MakeKey(TpccWorkload::kDistrict, 9)));
  EXPECT_TRUE(store->Contains(TpccWorkload::MakeKey(TpccWorkload::kCustomer, 0)));
  EXPECT_TRUE(store->Contains(TpccWorkload::MakeKey(TpccWorkload::kItem, 999)));
  EXPECT_TRUE(store->Contains(TpccWorkload::MakeKey(TpccWorkload::kStock, 500)));
}

TEST(TpccTest, NewOrderStructure) {
  TpccConfig t;
  t.remote_ratio = 0.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(1);
  auto txn = w.Next(1, 0, &rng);
  // Home-only NewOrder touches exactly one warehouse partition.
  EXPECT_EQ(txn->Partitions().size(), 1u);
  // 5 fixed ops + 3 per line, lines in [5, 15].
  size_t n = txn->ops().size();
  EXPECT_GE(n, 5u + 3u * 5u);
  EXPECT_LE(n, 5u + 3u * 15u);
  // District next_o_id is written (the contention point).
  bool district_write = false;
  for (const auto& op : txn->ops()) {
    if (op.key == TpccWorkload::MakeKey(TpccWorkload::kDistrict, op.key & 0xF) &&
        op.type == OpType::kWrite) {
      district_write = true;
    }
  }
  // Weaker check: some write targets the district table.
  for (const auto& op : txn->ops()) {
    if ((op.key >> 40) == TpccWorkload::kDistrict && op.type == OpType::kWrite)
      district_write = true;
  }
  EXPECT_TRUE(district_write);
  EXPECT_GT(txn->extra_compute(), 0);
}

TEST(TpccTest, RemoteRatioCreatesCrossWarehouseTxns) {
  TpccConfig t;
  t.remote_ratio = 1.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(2);
  int cross = 0;
  for (int i = 0; i < 300; ++i) {
    auto txn = w.Next(i, 0, &rng);
    if (txn->Partitions().size() > 1) cross++;
  }
  EXPECT_GT(cross, 290);
}

TEST(TpccTest, PaymentMix) {
  TpccConfig t;
  t.payment_ratio = 1.0;
  t.remote_payment_ratio = 0.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(3);
  auto txn = w.Next(1, 0, &rng);
  EXPECT_EQ(txn->ops().size(), 4u);  // W, D, C, H
  EXPECT_EQ(txn->Partitions().size(), 1u);
  int writes = 0;
  for (const auto& op : txn->ops())
    if (op.type == OpType::kWrite) writes++;
  EXPECT_EQ(writes, 4);
}

TEST(TpccTest, SkewTargetsHotNodeWarehouses) {
  TpccConfig t;
  t.skew_factor = 1.0;
  t.hot_node = 2;
  t.remote_ratio = 0.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    auto parts = w.Next(i, 0, &rng)->Partitions();
    EXPECT_EQ(parts[0] % 4, 2);
  }
}

TEST(TpccTest, FullMixGeneratesAllTypes) {
  TpccConfig t;
  t.payment_ratio = 0.43;
  t.delivery_ratio = 0.04;
  t.order_status_ratio = 0.04;
  t.stock_level_ratio = 0.04;
  TpccWorkload w(Cfg(), t);
  Rng rng(11);
  int read_only = 0, writers = 0;
  for (int i = 0; i < 500; ++i) {
    auto txn = w.Next(i, 0, &rng);
    bool has_write = false;
    for (const auto& op : txn->ops())
      if (op.type == OpType::kWrite) has_write = true;
    (has_write ? writers : read_only)++;
  }
  // OrderStatus + StockLevel are read-only (~8% of the mix).
  EXPECT_GT(read_only, 10);
  EXPECT_GT(writers, 400);
}

TEST(TpccTest, DeliveryCoversAllDistricts) {
  TpccConfig t;
  t.delivery_ratio = 1.0;
  t.payment_ratio = 0.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(12);
  auto txn = w.Next(1, 0, &rng);
  // One warehouse, 10 districts x 3 ops each.
  EXPECT_EQ(txn->Partitions().size(), 1u);
  EXPECT_EQ(txn->ops().size(), 30u);
  int customer_writes = 0;
  for (const auto& op : txn->ops()) {
    if ((op.key >> 40) == TpccWorkload::kCustomer &&
        op.type == OpType::kWrite) {
      customer_writes++;
    }
  }
  EXPECT_EQ(customer_writes, 10);
}

TEST(TpccTest, StockLevelIsReadOnly) {
  TpccConfig t;
  t.stock_level_ratio = 1.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(13);
  auto txn = w.Next(1, 0, &rng);
  for (const auto& op : txn->ops()) EXPECT_EQ(op.type, OpType::kRead);
  // District read + 12 distinct stock reads.
  EXPECT_EQ(txn->ops().size(), 13u);
  EXPECT_EQ(txn->Partitions().size(), 1u);
}

TEST(TpccTest, OrderStatusIsReadOnly) {
  TpccConfig t;
  t.order_status_ratio = 1.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(14);
  auto txn = w.Next(1, 0, &rng);
  for (const auto& op : txn->ops()) EXPECT_EQ(op.type, OpType::kRead);
  EXPECT_EQ(txn->ops().size(), 7u);  // customer + order + 5 lines
}

TEST(TpccTest, NewOrderInsertsAreMarked) {
  TpccConfig t;
  t.remote_ratio = 0.0;
  TpccWorkload w(Cfg(), t);
  Rng rng(15);
  auto txn = w.Next(1, 0, &rng);
  for (const auto& op : txn->ops()) {
    uint64_t table = op.key >> 40;
    bool should_insert = table == TpccWorkload::kOrder ||
                         table == TpccWorkload::kNewOrder ||
                         table == TpccWorkload::kOrderLine;
    EXPECT_EQ(op.is_insert, should_insert) << "table " << table;
  }
}

// --- Dynamic --------------------------------------------------------------------

TEST(DynamicTest, PhaseSelectionByTime) {
  ClusterConfig ccfg = Cfg();
  auto phases = DynamicYcsbWorkload::HotspotPosition(ccfg, 1 * kSecond);
  DynamicYcsbWorkload w(ccfg, phases);
  EXPECT_EQ(w.num_phases(), 4u);
  EXPECT_EQ(w.PhaseAt(0), 0u);
  EXPECT_EQ(w.PhaseAt(1500 * kMillisecond), 1u);
  EXPECT_EQ(w.PhaseAt(2500 * kMillisecond), 2u);
  EXPECT_EQ(w.PhaseAt(3500 * kMillisecond), 3u);
  // Cycles back around.
  EXPECT_EQ(w.PhaseAt(4500 * kMillisecond), 0u);
}

TEST(DynamicTest, HotspotIntervalShiftsOffsets) {
  ClusterConfig ccfg = Cfg();
  auto phases = DynamicYcsbWorkload::HotspotInterval(ccfg, 1 * kSecond);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].ycsb.partition_offset, 0);
  EXPECT_EQ(phases[1].ycsb.partition_offset, 4);
  EXPECT_EQ(phases[2].ycsb.partition_offset, 8);
  for (const auto& p : phases) EXPECT_DOUBLE_EQ(p.ycsb.cross_ratio, 1.0);
}

TEST(DynamicTest, PositionScenarioMatchesPaperPhases) {
  ClusterConfig ccfg = Cfg();
  auto phases = DynamicYcsbWorkload::HotspotPosition(ccfg, 1 * kSecond);
  ASSERT_EQ(phases.size(), 4u);
  EXPECT_DOUBLE_EQ(phases[0].ycsb.skew_factor, 0.0);   // A uniform
  EXPECT_DOUBLE_EQ(phases[0].ycsb.cross_ratio, 0.5);
  EXPECT_DOUBLE_EQ(phases[1].ycsb.skew_factor, 0.8);   // B skew 50%
  EXPECT_DOUBLE_EQ(phases[2].ycsb.cross_ratio, 1.0);   // C skew 100%
  EXPECT_NE(phases[3].ycsb.partition_offset, 0);       // D shifted
}

TEST(DynamicTest, GeneratesFromActivePhase) {
  ClusterConfig ccfg = Cfg();
  auto phases = DynamicYcsbWorkload::HotspotPosition(ccfg, 1 * kSecond);
  DynamicYcsbWorkload w(ccfg, phases);
  Rng rng(5);
  // Phase C (skew 100% cross): transactions have 2 partitions.
  auto txn = w.Next(1, 2500 * kMillisecond, &rng);
  EXPECT_EQ(txn->Partitions().size(), 2u);
}

}  // namespace
}  // namespace lion
