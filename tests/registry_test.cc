// Tests for the self-registering protocol/workload factories: name
// resolution, execution-mode traits, Status-based error handling, and
// zero-harness-edit extension with a dummy protocol.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/predictor_interface.h"
#include "harness/experiment.h"
#include "harness/registry.h"
#include "protocols/protocol.h"
#include "workload/workload.h"

namespace lion {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 2;
  cfg.cluster.partitions_per_node = 2;
  cfg.cluster.records_per_partition = 500;
  cfg.warmup = 100 * kMillisecond;
  cfg.duration = 300 * kMillisecond;
  return cfg;
}

// The classification IsBatchProtocol used to hard-code, now a per-entry
// registry trait.
const char* kBatchNames[] = {"Star",     "Calvin",  "Hermes", "Aria",
                             "Lotus",    "Lion(RB)", "Lion(B)"};
const char* kStandardNames[] = {"2PC",      "Leap",    "Clay",
                                "Lion",     "Lion(S)", "Lion(R)",
                                "Lion(SW)", "Lion(RW)"};

TEST(ProtocolRegistryTest, AllProtocolNamesResolve) {
  ExperimentConfig cfg = SmallConfig();
  Simulator sim;
  Cluster cluster(&sim, cfg.cluster);
  MetricsCollector metrics;
  ProtocolContext ctx{cfg, &cluster, &metrics};
  for (const char* name : kBatchNames) {
    std::unique_ptr<Protocol> protocol;
    Status s = ProtocolRegistry::Global().Create(name, ctx, &protocol);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(protocol, nullptr) << name;
  }
  for (const char* name : kStandardNames) {
    std::unique_ptr<Protocol> protocol;
    Status s = ProtocolRegistry::Global().Create(name, ctx, &protocol);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(protocol, nullptr) << name;
  }
}

TEST(ProtocolRegistryTest, ExecutionModeTraitsMatchOldClassification) {
  for (const char* name : kBatchNames) {
    EXPECT_TRUE(ProtocolRegistry::Global().IsBatch(name)) << name;
    ExecutionMode mode;
    ASSERT_TRUE(ProtocolRegistry::Global().Mode(name, &mode).ok()) << name;
    EXPECT_EQ(mode, ExecutionMode::kBatch) << name;
  }
  for (const char* name : kStandardNames) {
    EXPECT_FALSE(ProtocolRegistry::Global().IsBatch(name)) << name;
    ExecutionMode mode;
    ASSERT_TRUE(ProtocolRegistry::Global().Mode(name, &mode).ok()) << name;
    EXPECT_EQ(mode, ExecutionMode::kStandard) << name;
  }
}

TEST(ProtocolRegistryTest, NamesEnumeratesEverythingSorted) {
  std::vector<std::string> names = ProtocolRegistry::Global().Names();
  EXPECT_GE(names.size(), 15u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name : kBatchNames) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
  for (const char* name : kStandardNames) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(ProtocolRegistryTest, NamesByModePartitionsTheRegistry) {
  std::vector<std::string> standard =
      ProtocolRegistry::Global().NamesByMode(ExecutionMode::kStandard);
  std::vector<std::string> batch =
      ProtocolRegistry::Global().NamesByMode(ExecutionMode::kBatch);
  EXPECT_TRUE(std::is_sorted(standard.begin(), standard.end()));
  EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
  // The two modes partition Names(): together they cover everything, and
  // no name appears in both.
  EXPECT_EQ(standard.size() + batch.size(),
            ProtocolRegistry::Global().Names().size());
  for (const std::string& name : standard) {
    EXPECT_FALSE(ProtocolRegistry::Global().IsBatch(name)) << name;
    EXPECT_EQ(std::find(batch.begin(), batch.end(), name), batch.end());
  }
  for (const std::string& name : batch) {
    EXPECT_TRUE(ProtocolRegistry::Global().IsBatch(name)) << name;
  }
}

TEST(ProtocolRegistryTest, UnknownNameReturnsNotFoundWithKnownNames) {
  ExperimentConfig cfg = SmallConfig();
  ProtocolContext ctx{cfg, nullptr, nullptr};
  std::unique_ptr<Protocol> protocol;
  Status s = ProtocolRegistry::Global().Create("Spanner", ctx, &protocol);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_EQ(protocol, nullptr);
  // The message lists known names so a typo is self-diagnosing.
  EXPECT_NE(s.message().find("2PC"), std::string::npos) << s.message();

  ExecutionMode mode;
  EXPECT_TRUE(ProtocolRegistry::Global().Mode("Spanner", &mode).IsNotFound());
  EXPECT_FALSE(ProtocolRegistry::Global().IsBatch("Spanner"));
  EXPECT_FALSE(ProtocolRegistry::Global().Contains("Spanner"));
}

TEST(ProtocolRegistryTest, DuplicateRegistrationRejected) {
  Status s = ProtocolRegistry::Global().Register(
      "2PC", ExecutionMode::kStandard,
      [](const ProtocolContext&) -> std::unique_ptr<Protocol> {
        return nullptr;
      });
  EXPECT_TRUE(s.IsAlreadyExists()) << s.ToString();
}

TEST(WorkloadRegistryTest, AllWorkloadNamesResolve) {
  ExperimentConfig cfg = SmallConfig();
  Simulator sim;
  Cluster cluster(&sim, cfg.cluster);
  for (const char* name : {"ycsb", "tpcc", "ycsb-hotspot-interval",
                           "ycsb-hotspot-position"}) {
    WorkloadContext ctx{cfg, &cluster};
    std::unique_ptr<WorkloadGenerator> workload;
    Status s = WorkloadRegistry::Global().Create(name, ctx, &workload);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(workload, nullptr) << name;
  }
}

TEST(WorkloadRegistryTest, UnknownNameReturnsNotFound) {
  ExperimentConfig cfg = SmallConfig();
  WorkloadContext ctx{cfg, nullptr};
  std::unique_ptr<WorkloadGenerator> workload;
  Status s = WorkloadRegistry::Global().Create("smallbank", ctx, &workload);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_EQ(workload, nullptr);
}

// --- Predictor registry ------------------------------------------------------

TEST(PredictorRegistryTest, BuiltinKindsResolve) {
  PredictorConfig cfg;
  for (const char* name : {"lstm", "ewma"}) {
    std::unique_ptr<PredictorInterface> predictor;
    Status s = PredictorRegistry::Global().Create(
        name, PredictorContext{cfg, 42}, &predictor);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(predictor, nullptr) << name;
    // The instance implements the pipeline interface end to end.
    predictor->OnTxn({1, 2}, 0);
    EXPECT_GE(predictor->WorkloadVariation(0), 0.0);
  }
  std::vector<std::string> names = PredictorRegistry::Global().Names();
  EXPECT_TRUE(std::find(names.begin(), names.end(), "lstm") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "ewma") != names.end());
}

TEST(PredictorRegistryTest, UnknownKindReturnsNotFoundWithKnownNames) {
  PredictorConfig cfg;
  std::unique_ptr<PredictorInterface> predictor;
  Status s = PredictorRegistry::Global().Create(
      "prophet", PredictorContext{cfg, 1}, &predictor);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_NE(s.message().find("lstm"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("ewma"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("off"), std::string::npos) << s.ToString();
}

TEST(PredictorRegistryTest, OffIsReservedNotRegistrable) {
  Status s = PredictorRegistry::Global().Register(
      kPredictorOff,
      [](const PredictorContext&) -> std::unique_ptr<PredictorInterface> {
        return nullptr;
      });
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(PredictorRegistryTest, DuplicateRegistrationRejected) {
  Status s = PredictorRegistry::Global().Register(
      "lstm",
      [](const PredictorContext&) -> std::unique_ptr<PredictorInterface> {
        return nullptr;
      });
  EXPECT_TRUE(s.IsAlreadyExists()) << s.ToString();
}

TEST(PredictorRegistryTest, BuilderValidatesPredictorKind) {
  ExperimentConfig cfg = SmallConfig();
  cfg.predictor.kind = "prophet";
  ExperimentResult res;
  Status s = ExperimentBuilder(cfg).Run(&res);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_NE(s.message().find("prophet"), std::string::npos) << s.ToString();
}

TEST(PredictorRegistryTest, KindSelectsThePredictorOneFlagAb) {
  // The prediction-mechanism A/B the registry exists for: the same
  // experiment under lstm / ewma / off differs in exactly one field.
  for (const char* kind : {"lstm", "ewma", "off"}) {
    ExperimentConfig cfg = SmallConfig();
    cfg.protocol = "Lion";
    cfg.predictor.kind = kind;
    ExperimentResult res;
    Status s = ExperimentBuilder(cfg).Run(&res);
    ASSERT_TRUE(s.ok()) << kind << ": " << s.ToString();
    EXPECT_GT(res.committed, 0u) << kind;
  }
}

// --- Zero-harness-edit extension -------------------------------------------------

// A protocol defined entirely inside this test file: commits every
// transaction after a fixed simulated delay without touching the cluster.
// Registering it requires no change to any harness file — exactly the
// extension path a new protocol or ablation variant takes. Completion must
// go through the simulator: a synchronous done() would recurse with the
// closed-loop driver (each completion immediately submits the next txn).
class NoopProtocol : public Protocol {
 public:
  NoopProtocol(Cluster* cluster, MetricsCollector* metrics)
      : Protocol(cluster, metrics) {}
  std::string name() const override { return "Noop"; }
  void SubmitTxn(TxnPtr txn, TxnDoneFn done) override {
    txn->set_exec_class(ExecClass::kSingleNode);
    cluster_->sim()->Schedule(
        10 * kMicrosecond,
        [this, txn = std::move(txn), done = std::move(done)]() mutable {
          metrics_->OnCommit(*txn, cluster_->sim()->Now());
          done(std::move(txn));
        });
  }
};

TEST(RegistryExtensionTest, DummyProtocolRunsThroughTheFullHarness) {
  Status s = ProtocolRegistry::Global().Register(
      "Noop", ExecutionMode::kStandard,
      [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
        return std::make_unique<NoopProtocol>(ctx.cluster, ctx.metrics);
      });
  ASSERT_TRUE(s.ok()) << s.ToString();

  ExperimentConfig cfg = SmallConfig();
  cfg.protocol = "Noop";
  ExperimentResult res;
  Status run = ExperimentBuilder(cfg).Run(&res);
  ASSERT_TRUE(run.ok()) << run.ToString();
  EXPECT_GT(res.committed, 0u);
  EXPECT_EQ(res.protocol, "Noop");

  ASSERT_TRUE(ProtocolRegistry::Global().Unregister("Noop").ok());
  EXPECT_FALSE(ProtocolRegistry::Global().Contains("Noop"));
}

TEST(RegistryExtensionTest, DummyWorkloadRunsThroughTheFullHarness) {
  // Single-op single-partition workload defined inline.
  class OneOpWorkload : public WorkloadGenerator {
   public:
    std::string name() const override { return "one-op"; }
    TxnPtr Next(TxnId id, SimTime now, Rng* rng) override {
      auto txn = std::make_unique<Transaction>(id, now);
      Operation op;
      op.partition = static_cast<PartitionId>(rng->Uniform(4));
      op.key = rng->Uniform(100);
      op.type = OpType::kRead;
      txn->ops().push_back(op);
      return txn;
    }
  };
  Status s = WorkloadRegistry::Global().Register(
      "one-op",
      [](const WorkloadContext&) -> std::unique_ptr<WorkloadGenerator> {
        return std::make_unique<OneOpWorkload>();
      });
  ASSERT_TRUE(s.ok()) << s.ToString();

  ExperimentConfig cfg = SmallConfig();
  cfg.protocol = "2PC";
  cfg.workload = "one-op";
  ExperimentResult res;
  Status run = ExperimentBuilder(cfg).Run(&res);
  ASSERT_TRUE(run.ok()) << run.ToString();
  EXPECT_GT(res.committed, 0u);

  ASSERT_TRUE(WorkloadRegistry::Global().Unregister("one-op").ok());
}

}  // namespace
}  // namespace lion
