// Tests for the experiment harness: factory coverage, end-to-end runs for
// every protocol name, and cross-protocol comparative sanity checks that
// mirror the paper's headline claims at miniature scale.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace lion {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 3;
  cfg.cluster.partitions_per_node = 2;
  cfg.cluster.records_per_partition = 2000;
  cfg.cluster.record_bytes = 100;
  cfg.cluster.remaster_base_delay = 500 * kMicrosecond;
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.ycsb.ops_per_txn = 6;
  cfg.ycsb.cross_ratio = 0.5;
  cfg.lion.planner.interval = 250 * kMillisecond;
  cfg.lion.planner.min_history = 32;
  cfg.predictor.sample_interval = 100 * kMillisecond;
  cfg.predictor.train_epochs = 3;  // keep unit tests fast
  return cfg;
}

TEST(HarnessTest, IsBatchProtocolClassification) {
  for (const char* p : {"Star", "Calvin", "Hermes", "Aria", "Lotus",
                        "Lion(RB)", "Lion(B)"}) {
    EXPECT_TRUE(IsBatchProtocol(p)) << p;
  }
  for (const char* p : {"2PC", "Leap", "Clay", "Lion", "Lion(S)", "Lion(R)",
                        "Lion(SW)", "Lion(RW)"}) {
    EXPECT_FALSE(IsBatchProtocol(p)) << p;
  }
}

class AllProtocolsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllProtocolsTest, CommitsTransactionsOnYcsb) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = GetParam();
  ExperimentResult res = RunExperiment(cfg);
  EXPECT_GT(res.committed, 100u) << cfg.protocol;
  EXPECT_GT(res.throughput, 0.0);
  EXPECT_GT(res.p50_us, 0.0);
  EXPECT_LE(res.p50_us, res.p95_us);
  EXPECT_FALSE(res.window_throughput.empty());
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocolsTest,
                         ::testing::Values("2PC", "Leap", "Clay", "Star",
                                           "Calvin", "Hermes", "Aria", "Lotus",
                                           "Lion", "Lion(S)", "Lion(R)",
                                           "Lion(SW)", "Lion(RW)", "Lion(RB)",
                                           "Lion(B)"));

class TpccProtocolsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TpccProtocolsTest, CommitsTransactionsOnTpcc) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = GetParam();
  cfg.workload = "tpcc";
  cfg.tpcc.remote_ratio = 0.3;
  ExperimentResult res = RunExperiment(cfg);
  EXPECT_GT(res.committed, 50u) << cfg.protocol;
}

INSTANTIATE_TEST_SUITE_P(TpccProtocols, TpccProtocolsTest,
                         ::testing::Values("2PC", "Lion", "Clay", "Calvin",
                                           "Lion(B)"));

TEST(HarnessTest, DynamicWorkloadsRun) {
  for (const char* wl : {"ycsb-hotspot-interval", "ycsb-hotspot-position"}) {
    ExperimentConfig cfg = BaseConfig();
    cfg.protocol = "Lion";
    cfg.workload = wl;
    cfg.dynamic_period = 500 * kMillisecond;
    ExperimentResult res = RunExperiment(cfg);
    EXPECT_GT(res.committed, 100u) << wl;
  }
}

TEST(HarnessTest, UnknownProtocolReturnsNull) {
  ExperimentConfig cfg = BaseConfig();
  Simulator sim;
  Cluster cluster(&sim, cfg.cluster);
  MetricsCollector metrics;
  cfg.protocol = "NoSuchProtocol";
  std::unique_ptr<PredictorInterface> pred;
  EXPECT_EQ(MakeProtocol(cfg, &cluster, &metrics, &pred), nullptr);
}

TEST(HarnessTest, DeterministicGivenSeed) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  ExperimentResult a = RunExperiment(cfg);
  ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(HarnessTest, SeedChangesRun) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  ExperimentResult a = RunExperiment(cfg);
  cfg.seed = 999;
  ExperimentResult b = RunExperiment(cfg);
  EXPECT_NE(a.committed, b.committed);
}

// --- Comparative sanity: miniature versions of the paper's claims ---------------

TEST(ComparativeTest, LionBeats2pcOnCrossPartitionWorkload) {
  ExperimentConfig cfg = BaseConfig();
  cfg.ycsb.cross_ratio = 1.0;
  cfg.duration = 2 * kSecond;

  cfg.protocol = "2PC";
  double tput_2pc = RunExperiment(cfg).throughput;
  cfg.protocol = "Lion(R)";
  double tput_lion = RunExperiment(cfg).throughput;
  EXPECT_GT(tput_lion, tput_2pc * 1.2);
}

TEST(ComparativeTest, LionConvertsMostTxnsToSingleNode) {
  ExperimentConfig cfg = BaseConfig();
  cfg.ycsb.cross_ratio = 1.0;
  cfg.protocol = "Lion(R)";
  cfg.duration = 2 * kSecond;
  ExperimentResult res = RunExperiment(cfg);
  EXPECT_GT(res.single_node + res.remastered, res.distributed);
}

TEST(ComparativeTest, CrossRatioHurts2pcMoreThanLion) {
  ExperimentConfig cfg = BaseConfig();
  cfg.duration = 1 * kSecond;

  cfg.protocol = "2PC";
  cfg.ycsb.cross_ratio = 0.0;
  double tput_2pc_0 = RunExperiment(cfg).throughput;
  cfg.ycsb.cross_ratio = 1.0;
  double tput_2pc_100 = RunExperiment(cfg).throughput;

  cfg.protocol = "Lion(R)";
  cfg.ycsb.cross_ratio = 0.0;
  double tput_lion_0 = RunExperiment(cfg).throughput;
  cfg.ycsb.cross_ratio = 1.0;
  double tput_lion_100 = RunExperiment(cfg).throughput;

  double drop_2pc = tput_2pc_100 / tput_2pc_0;
  double drop_lion = tput_lion_100 / tput_lion_0;
  EXPECT_LT(drop_2pc, drop_lion);
}

TEST(ComparativeTest, NetworkBytesTrackedPerTxn) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  cfg.ycsb.cross_ratio = 1.0;
  ExperimentResult res = RunExperiment(cfg);
  EXPECT_GT(res.bytes_per_txn, 100.0);  // prepare/commit rounds cost bytes
  cfg.ycsb.cross_ratio = 0.0;
  ExperimentResult local = RunExperiment(cfg);
  EXPECT_LT(local.bytes_per_txn, res.bytes_per_txn);
}

}  // namespace
}  // namespace lion
