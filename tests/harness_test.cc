// Tests for the experiment harness: registry-driven assembly, end-to-end
// runs for every registered protocol name, and cross-protocol comparative
// sanity checks that mirror the paper's headline claims at miniature scale.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace lion {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 3;
  cfg.cluster.partitions_per_node = 2;
  cfg.cluster.records_per_partition = 2000;
  cfg.cluster.record_bytes = 100;
  cfg.cluster.remaster_base_delay = 500 * kMicrosecond;
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.ycsb.ops_per_txn = 6;
  cfg.ycsb.cross_ratio = 0.5;
  cfg.lion.planner.interval = 250 * kMillisecond;
  cfg.lion.planner.min_history = 32;
  cfg.predictor.sample_interval = 100 * kMillisecond;
  cfg.predictor.train_epochs = 3;  // keep unit tests fast
  return cfg;
}

ExperimentResult RunConfig(const ExperimentConfig& cfg) {
  ExperimentResult res;
  Status status = ExperimentBuilder(cfg).Run(&res);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return res;
}

class AllProtocolsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllProtocolsTest, CommitsTransactionsOnYcsb) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = GetParam();
  ExperimentResult res = RunConfig(cfg);
  EXPECT_GT(res.committed, 100u) << cfg.protocol;
  EXPECT_GT(res.throughput, 0.0);
  EXPECT_GT(res.p50_us, 0.0);
  EXPECT_LE(res.p50_us, res.p95_us);
  EXPECT_FALSE(res.window_throughput.empty());
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocolsTest,
                         ::testing::Values("2PC", "Leap", "Clay", "Star",
                                           "Calvin", "Hermes", "Aria", "Lotus",
                                           "geo_occ", "Lion", "Lion(S)",
                                           "Lion(R)", "Lion(SW)", "Lion(RW)",
                                           "Lion(RB)", "Lion(B)"));

class TpccProtocolsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TpccProtocolsTest, CommitsTransactionsOnTpcc) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = GetParam();
  cfg.workload = "tpcc";
  cfg.tpcc.remote_ratio = 0.3;
  ExperimentResult res = RunConfig(cfg);
  EXPECT_GT(res.committed, 50u) << cfg.protocol;
}

INSTANTIATE_TEST_SUITE_P(TpccProtocols, TpccProtocolsTest,
                         ::testing::Values("2PC", "Lion", "Clay", "Calvin",
                                           "Lion(B)"));

TEST(HarnessTest, DynamicWorkloadsRun) {
  for (const char* wl : {"ycsb-hotspot-interval", "ycsb-hotspot-position"}) {
    ExperimentConfig cfg = BaseConfig();
    cfg.protocol = "Lion";
    cfg.workload = wl;
    cfg.dynamic_period = 500 * kMillisecond;
    ExperimentResult res = RunConfig(cfg);
    EXPECT_GT(res.committed, 100u) << wl;
  }
}

TEST(HarnessTest, UnknownProtocolIsBuildError) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "NoSuchProtocol";
  ExperimentResult res;
  Status status = ExperimentBuilder(cfg).Run(&res);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
  // The error lists the known names so a typo is self-diagnosing.
  EXPECT_NE(status.message().find("Lion"), std::string::npos);
}

TEST(HarnessTest, UnknownWorkloadIsBuildError) {
  ExperimentConfig cfg = BaseConfig();
  cfg.workload = "NoSuchWorkload";
  std::unique_ptr<Experiment> ex;
  Status status = ExperimentBuilder(cfg).Build(&ex);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
}

TEST(HarnessTest, InvalidTimingIsBuildError) {
  ExperimentConfig cfg = BaseConfig();
  cfg.duration = 0;
  std::unique_ptr<Experiment> ex;
  EXPECT_TRUE(ExperimentBuilder(cfg).Build(&ex).IsInvalidArgument());
  cfg = BaseConfig();
  cfg.concurrency = -1;
  EXPECT_TRUE(ExperimentBuilder(cfg).Build(&ex).IsInvalidArgument());
  cfg = BaseConfig();
  cfg.cluster.num_nodes = 0;
  EXPECT_TRUE(ExperimentBuilder(cfg).Build(&ex).IsInvalidArgument());
}

TEST(HarnessTest, BuilderExposesOwnedComponents) {
  ExperimentConfig cfg = BaseConfig();
  std::unique_ptr<Experiment> ex;
  ASSERT_TRUE(ExperimentBuilder(cfg).Build(&ex).ok());
  ASSERT_NE(ex->protocol(), nullptr);
  ASSERT_NE(ex->workload(), nullptr);
  ASSERT_NE(ex->cluster(), nullptr);
  EXPECT_EQ(ex->protocol()->name(), "Lion");
  EXPECT_EQ(ex->workload()->name(), "ycsb");
  // Standard protocol: closed-loop window defaults to nodes x workers.
  EXPECT_EQ(ex->concurrency(),
            cfg.cluster.num_nodes * cfg.cluster.workers_per_node);
}

TEST(HarnessTest, BatchProtocolGetsWideDefaultWindow) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "Calvin";
  std::unique_ptr<Experiment> ex;
  ASSERT_TRUE(ExperimentBuilder(cfg).Build(&ex).ok());
  EXPECT_EQ(ex->concurrency(), 4000);
}

TEST(HarnessTest, StopFlushesBufferedBatchTransactions) {
  for (const char* protocol : {"Calvin", "Aria", "Lotus", "Lion(B)"}) {
    ExperimentConfig cfg = BaseConfig();
    cfg.protocol = protocol;
    std::unique_ptr<Experiment> ex;
    ASSERT_TRUE(ExperimentBuilder(cfg).Build(&ex).ok());
    ex->cluster()->Start();
    ex->protocol()->Start();
    // Submit mid-epoch, then Stop before any boundary: the buffered
    // transactions must still execute and complete — including ones that
    // abort after the stop-time flush and get retried.
    int done = 0;
    for (TxnId id = 1; id <= 5; ++id) {
      TxnPtr txn = ex->workload()->Next(id, ex->sim()->Now(),
                                        &ex->sim()->rng());
      ex->protocol()->Submit(std::move(txn), [&done](TxnPtr) { done++; });
    }
    ex->protocol()->Stop();
    ex->sim()->RunUntilIdle();
    EXPECT_EQ(done, 5) << protocol;
  }
}

TEST(HarnessTest, DeterministicGivenSeed) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  ExperimentResult a = RunConfig(cfg);
  ExperimentResult b = RunConfig(cfg);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(HarnessTest, SeedChangesRun) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  ExperimentResult a = RunConfig(cfg);
  cfg.seed = 999;
  ExperimentResult b = RunConfig(cfg);
  EXPECT_NE(a.committed, b.committed);
}

TEST(HarnessTest, WindowCallbacksFireLive) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  std::vector<WindowStats> seen;
  ExperimentResult res;
  Status status = ExperimentBuilder(cfg)
                      .OnWindow([&seen](const WindowStats& w) {
                        seen.push_back(w);
                      })
                      .Run(&res);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // 1.5 s at 100 ms windows: every closed window reported, in order.
  ASSERT_GE(seen.size(), 10u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].index, i);
    EXPECT_EQ(seen[i].end_time,
              static_cast<SimTime>(i + 1) * res.window);
  }
  // The live per-window series matches the post-run result series.
  for (size_t i = 0; i < seen.size() && i < res.window_throughput.size();
       ++i) {
    EXPECT_DOUBLE_EQ(seen[i].throughput, res.window_throughput[i]) << i;
  }
}

TEST(HarnessTest, ResultJsonContainsHeadlineFields) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  ExperimentResult res = RunConfig(cfg);
  std::string json = res.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"protocol\":\"2PC\"", "\"workload\":\"ycsb\"",
        "\"throughput_txn_s\":", "\"committed\":", "\"p50_us\":",
        "\"breakdown_us\":", "\"window_throughput\":[",
        "\"window_bytes_per_txn\":["}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// --- Comparative sanity: miniature versions of the paper's claims ---------------

TEST(ComparativeTest, LionBeats2pcOnCrossPartitionWorkload) {
  ExperimentConfig cfg = BaseConfig();
  cfg.ycsb.cross_ratio = 1.0;
  cfg.duration = 2 * kSecond;

  cfg.protocol = "2PC";
  double tput_2pc = RunConfig(cfg).throughput;
  cfg.protocol = "Lion(R)";
  double tput_lion = RunConfig(cfg).throughput;
  EXPECT_GT(tput_lion, tput_2pc * 1.2);
}

TEST(ComparativeTest, LionConvertsMostTxnsToSingleNode) {
  ExperimentConfig cfg = BaseConfig();
  cfg.ycsb.cross_ratio = 1.0;
  cfg.protocol = "Lion(R)";
  cfg.duration = 2 * kSecond;
  ExperimentResult res = RunConfig(cfg);
  EXPECT_GT(res.single_node + res.remastered, res.distributed);
}

TEST(ComparativeTest, CrossRatioHurts2pcMoreThanLion) {
  ExperimentConfig cfg = BaseConfig();
  cfg.duration = 1 * kSecond;

  cfg.protocol = "2PC";
  cfg.ycsb.cross_ratio = 0.0;
  double tput_2pc_0 = RunConfig(cfg).throughput;
  cfg.ycsb.cross_ratio = 1.0;
  double tput_2pc_100 = RunConfig(cfg).throughput;

  cfg.protocol = "Lion(R)";
  cfg.ycsb.cross_ratio = 0.0;
  double tput_lion_0 = RunConfig(cfg).throughput;
  cfg.ycsb.cross_ratio = 1.0;
  double tput_lion_100 = RunConfig(cfg).throughput;

  double drop_2pc = tput_2pc_100 / tput_2pc_0;
  double drop_lion = tput_lion_100 / tput_lion_0;
  EXPECT_LT(drop_2pc, drop_lion);
}

TEST(ComparativeTest, NetworkBytesTrackedPerTxn) {
  ExperimentConfig cfg = BaseConfig();
  cfg.protocol = "2PC";
  cfg.ycsb.cross_ratio = 1.0;
  ExperimentResult res = RunConfig(cfg);
  EXPECT_GT(res.bytes_per_txn, 100.0);  // prepare/commit rounds cost bytes
  cfg.ycsb.cross_ratio = 0.0;
  ExperimentResult local = RunConfig(cfg);
  EXPECT_LT(local.bytes_per_txn, res.bytes_per_txn);
}

}  // namespace
}  // namespace lion
