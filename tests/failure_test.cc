// Failure injection tests: secondary election on node failure, availability
// of the surviving replicas, and protocol behaviour across a failover.
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "metrics/metrics.h"
#include "core/geo_placement.h"
#include "core/lion_protocol.h"
#include "protocols/twopc.h"
#include "replication/cluster.h"
#include "replication/failure_injector.h"
#include "workload/ycsb.h"

namespace lion {
namespace {

ClusterConfig Cfg(int replicas = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.partitions_per_node = 2;
  cfg.records_per_partition = 500;
  cfg.record_bytes = 100;
  cfg.init_replicas = replicas;
  cfg.remaster_base_delay = 1 * kMillisecond;
  return cfg;
}

TEST(FailureTest, FailoverElectsSecondary) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  FailureInjector chaos(&cluster);

  // Node 0 masters partitions 0 and 3 (round-robin); their secondaries sit
  // on node 1.
  chaos.FailNode(0);
  EXPECT_TRUE(chaos.IsDown(0));
  // Elections are in flight: partitions blocked.
  EXPECT_TRUE(cluster.store(0)->write_blocked());
  sim.RunUntilIdle();

  EXPECT_EQ(chaos.failovers_completed(), 2u);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_EQ(cluster.router().PrimaryOf(3), 1);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
  // The dead node no longer appears in any replica group.
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_FALSE(cluster.router().HasReplica(0, p)) << "partition " << p;
  }
}

TEST(FailureTest, ElectionPrefersMostCaughtUpSecondary) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  FailureInjector chaos(&cluster);

  // Give partition 0 two secondaries with different lag.
  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->AddSecondary(2, 0);
  g->Advance(100);
  g->Ack(1, 40);
  g->Ack(2, 90);  // node 2 is the most caught up

  chaos.FailNode(0);
  sim.RunUntilIdle();
  EXPECT_EQ(cluster.router().PrimaryOf(0), 2);
}

TEST(FailureTest, LagExtendsElectionTime) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  cfg.remaster_per_entry = 1000;  // 1 us per entry
  Cluster cluster(&sim, cfg);
  FailureInjector chaos(&cluster);
  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->Advance(2000);  // secondary lags by 2000 entries

  chaos.FailNode(0);
  sim.RunUntilIdle();
  EXPECT_GE(sim.Now(), cfg.remaster_base_delay + 2000 * 1000);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
}

TEST(FailureTest, SingleReplicaPartitionBecomesUnavailable) {
  Simulator sim;
  ClusterConfig cfg = Cfg(/*replicas=*/1);  // no secondaries anywhere
  Cluster cluster(&sim, cfg);
  FailureInjector chaos(&cluster);

  chaos.FailNode(0);
  sim.RunUntilIdle();
  EXPECT_EQ(chaos.failovers_completed(), 0u);
  EXPECT_EQ(chaos.partitions_unavailable(), 2u);  // partitions 0 and 3
  EXPECT_TRUE(cluster.store(0)->write_blocked());

  // Recovery restores availability.
  chaos.RecoverNode(0);
  EXPECT_EQ(chaos.partitions_unavailable(), 0u);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

TEST(FailureTest, TransactionsContinueAfterFailover) {
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  TwoPcProtocol protocol(&cluster, &metrics);
  FailureInjector chaos(&cluster);

  YcsbConfig ycfg;
  ycfg.ops_per_txn = 4;
  ycfg.cross_ratio = 0.3;
  YcsbWorkload workload(cfg, ycfg);
  ClosedLoopDriver driver(&sim, &protocol, &workload, &metrics, 12);
  driver.Start();

  sim.Schedule(500 * kMillisecond, [&]() { chaos.FailNode(0); });
  sim.RunUntil(500 * kMillisecond);
  uint64_t before = metrics.committed();
  sim.RunUntil(1500 * kMillisecond);
  driver.Stop();
  sim.RunUntil(2 * kSecond);

  // Commits kept flowing after the failure (served by the two survivors).
  EXPECT_GT(metrics.committed(), before + 100);
  EXPECT_EQ(chaos.failovers_completed(), 2u);
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_NE(cluster.router().PrimaryOf(p), 0) << "partition " << p;
  }
}

TEST(FailureTest, LionAdaptsAroundFailedNode) {
  // Full-stack: Lion with its planner running when a node dies. Failover
  // elects secondaries, the planner replans around the survivor set, and
  // transactions keep committing.
  Simulator sim;
  ClusterConfig cfg = Cfg();
  Cluster cluster(&sim, cfg);
  cluster.Start();
  MetricsCollector metrics;
  LionOptions opts;
  opts.planner.interval = 200 * kMillisecond;
  opts.planner.min_history = 32;
  LionProtocol lion(&cluster, &metrics, opts);
  lion.Start();
  FailureInjector chaos(&cluster);

  YcsbConfig ycfg;
  ycfg.ops_per_txn = 4;
  ycfg.cross_ratio = 0.5;
  YcsbWorkload workload(cfg, ycfg);
  ClosedLoopDriver driver(&sim, &lion, &workload, &metrics, 12);
  driver.Start();

  sim.Schedule(600 * kMillisecond, [&]() { chaos.FailNode(2); });
  sim.RunUntil(600 * kMillisecond);
  uint64_t before = metrics.committed();
  sim.RunUntil(2 * kSecond);
  driver.Stop();
  sim.RunUntil(2500 * kMillisecond);

  EXPECT_GT(metrics.committed(), before + 100);
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_NE(cluster.router().PrimaryOf(p), 2) << "partition " << p;
    EXPECT_FALSE(cluster.store(p)->write_blocked()) << "partition " << p;
  }
  EXPECT_GT(lion.planner()->plans_generated(), 0u);
}

TEST(FailureTest, DoubleFailureIsIdempotent) {
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  FailureInjector chaos(&cluster);
  chaos.FailNode(0);
  chaos.FailNode(0);  // no-op
  sim.RunUntilIdle();
  EXPECT_EQ(chaos.failovers_completed(), 2u);
}

TEST(FailureTest, ElectionRerunsWhenCandidateDiesMidElection) {
  // The election race: node 0 dies, the election picks node 1, and node 1
  // dies before the promotion fires. The fire-time liveness re-validation
  // must re-run the election and elect node 2 instead of promoting a corpse.
  Simulator sim;
  ClusterConfig cfg = Cfg(/*replicas=*/3);  // partition 0: primary 0, secs 1,2
  Cluster cluster(&sim, cfg);
  FailureInjector chaos(&cluster);

  chaos.FailNode(0);  // promotion scheduled at +1ms (remaster_base_delay)
  sim.Schedule(500 * kMicrosecond, [&]() { chaos.FailNode(1); });
  sim.RunUntilIdle();

  EXPECT_GE(chaos.elections_rerun(), 1u);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 2);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
  EXPECT_EQ(chaos.partitions_unavailable(), 0u);
}

TEST(FailureTest, MigrationTargetDiesMidFlight) {
  // MovePrimary to node 2 is in flight when node 2 crashes: the migration
  // must abort cleanly (done(false)), release the write block, and leave
  // the original primary in place — no leaked waiters, no double block.
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  FailureInjector chaos(&cluster);

  bool done_called = false, done_ok = true;
  cluster.migration().MovePrimary(0, 2, [&](bool ok) {
    done_called = true;
    done_ok = ok;
  });
  EXPECT_TRUE(cluster.store(0)->write_blocked());
  sim.Schedule(200 * kMicrosecond, [&]() { chaos.FailNode(2); });
  sim.RunUntilIdle();

  EXPECT_TRUE(done_called);
  EXPECT_FALSE(done_ok);
  EXPECT_EQ(cluster.router().PrimaryOf(0), 0);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
  EXPECT_FALSE(cluster.router().group(0).reconfig_in_progress());
}

TEST(FailureTest, PrimaryDiesMidMigrationFailoverTakesOver) {
  // The source primary dies while its partition is mid-migration. The
  // failover bumps the reconfiguration generation, so the stale migration
  // completion must back off and the failover owns the write block.
  Simulator sim;
  Cluster cluster(&sim, Cfg());
  FailureInjector chaos(&cluster);

  bool done_called = false, done_ok = true;
  cluster.migration().MovePrimary(0, 2, [&](bool ok) {
    done_called = true;
    done_ok = ok;
  });
  sim.Schedule(200 * kMicrosecond, [&]() { chaos.FailNode(0); });
  sim.RunUntilIdle();

  EXPECT_TRUE(done_called);
  EXPECT_FALSE(done_ok);
  // The failover elected the surviving secondary (node 1), not the
  // migration target whose copy never registered.
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
  EXPECT_GE(chaos.failovers_completed(), 1u);
}

TEST(FailureTest, RecoveryOrderIsIndependent) {
  // Two nodes fail in order 0, 1 and recover in order 1, 0; availability
  // must return per-node, not only once the first-failed node is back.
  Simulator sim;
  ClusterConfig cfg = Cfg(/*replicas=*/1);  // no secondaries: crash = outage
  Cluster cluster(&sim, cfg);
  FailureInjector chaos(&cluster);

  chaos.FailNode(0);  // partitions 0, 3 unavailable
  chaos.FailNode(1);  // partitions 1, 4 unavailable
  sim.RunUntilIdle();
  EXPECT_EQ(chaos.partitions_unavailable(), 4u);

  chaos.RecoverNode(1);
  sim.RunUntilIdle();
  EXPECT_EQ(chaos.partitions_unavailable(), 2u);
  EXPECT_FALSE(cluster.store(1)->write_blocked());
  EXPECT_FALSE(cluster.store(4)->write_blocked());
  EXPECT_TRUE(cluster.store(0)->write_blocked());

  chaos.RecoverNode(0);
  sim.RunUntilIdle();
  EXPECT_EQ(chaos.partitions_unavailable(), 0u);
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_FALSE(cluster.store(p)->write_blocked()) << "partition " << p;
  }
}

// --- failover x geo placement ------------------------------------------------

ClusterConfig GeoCfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.partitions_per_node = 1;
  cfg.records_per_partition = 500;
  cfg.record_bytes = 100;
  cfg.init_replicas = 2;
  cfg.remaster_base_delay = 1 * kMillisecond;
  cfg.net.regions = 2;  // nodes 0,1 -> region 0; nodes 2,3 -> region 1
  return cfg;
}

int LiveReplicasInRegion(const Cluster& cluster, PartitionId pid, int region) {
  int count = 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.topology().region_of(n) != region) continue;
    if (!cluster.router().IsNodeUp(n)) continue;
    if (cluster.router().HasReplica(n, pid)) count++;
  }
  return count;
}

TEST(FailureGeoTest, MinReplicasPerRegionSurvivesCrashAndRecovery) {
  Simulator sim;
  ClusterConfig cfg = GeoCfg();
  Cluster cluster(&sim, cfg);

  GeoPlacementConfig gcfg;
  gcfg.min_replicas_per_region = 1;
  GeoPlacement geo(gcfg, &cluster.topology());
  geo.EnsureRegionalReplicas(&cluster.router(), cfg.max_replicas);

  FailureInjector chaos(&cluster);
  chaos.SetGeoPlacement(&geo);

  chaos.FailNode(2);
  sim.RunUntilIdle();
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_NE(cluster.router().PrimaryOf(p), 2) << "partition " << p;
    EXPECT_GE(LiveReplicasInRegion(cluster, p, 0), 1) << "partition " << p;
    EXPECT_GE(LiveReplicasInRegion(cluster, p, 1), 1) << "partition " << p;
  }

  // Recovery re-runs the provisioning pass; the invariant must hold on the
  // full node set too (and the pass must be idempotent).
  chaos.RecoverNode(2);
  sim.RunUntilIdle();
  for (PartitionId p = 0; p < cluster.num_partitions(); ++p) {
    EXPECT_GE(LiveReplicasInRegion(cluster, p, 0), 1) << "partition " << p;
    EXPECT_GE(LiveReplicasInRegion(cluster, p, 1), 1) << "partition " << p;
    EXPECT_LE(cluster.router().group(p).LiveReplicaCount(), cfg.max_replicas);
  }
}

TEST(FailureGeoTest, HotPinnedPartitionFailsOverWithinRegion) {
  // Partition 0 is write-hot and pinned to region 0. Its secondary on node 2
  // (region 1) is MORE caught up than the one on node 1 (region 0), but the
  // election must still prefer the in-region candidate.
  Simulator sim;
  ClusterConfig cfg = GeoCfg();
  Cluster cluster(&sim, cfg);

  GeoPlacementConfig gcfg;
  gcfg.hot_primary_pin_threshold = 0.5;
  GeoPlacement geo(gcfg, &cluster.topology());
  FailureInjector chaos(&cluster);
  chaos.SetGeoPlacement(&geo);

  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->AddSecondary(2, 0);
  g->Advance(100);
  g->Ack(1, 10);
  g->Ack(2, 90);                       // cross-region copy is ahead
  cluster.router().RecordAccess(0);    // hottest partition -> frequency 1.0

  chaos.FailNode(0);
  sim.RunUntilIdle();
  EXPECT_EQ(cluster.router().PrimaryOf(0), 1);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

TEST(FailureGeoTest, AvailabilityBeatsPinWhenRegionIsLost) {
  // Both region-0 replicas of the hot partition die; the only survivor is
  // the cross-region secondary. The pin must yield: electing a disallowed
  // candidate beats marking the partition unavailable.
  Simulator sim;
  ClusterConfig cfg = GeoCfg();
  Cluster cluster(&sim, cfg);

  GeoPlacementConfig gcfg;
  gcfg.hot_primary_pin_threshold = 0.5;
  GeoPlacement geo(gcfg, &cluster.topology());
  FailureInjector chaos(&cluster);
  chaos.SetGeoPlacement(&geo);

  ReplicaGroup* g = cluster.router().mutable_group(0);
  g->AddSecondary(2, 0);
  cluster.router().RecordAccess(0);

  chaos.FailNode(1);  // drops the in-region secondary
  sim.RunUntilIdle();
  chaos.FailNode(0);  // primary dies; only node 2 (region 1) remains
  sim.RunUntilIdle();

  EXPECT_EQ(cluster.router().PrimaryOf(0), 2);
  EXPECT_EQ(chaos.partitions_unavailable(), 0u);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

TEST(FailureTest, CascadingFailureWithThreeReplicas) {
  Simulator sim;
  ClusterConfig cfg = Cfg(/*replicas=*/3);
  Cluster cluster(&sim, cfg);
  FailureInjector chaos(&cluster);

  chaos.FailNode(0);
  sim.RunUntilIdle();
  NodeId new_primary = cluster.router().PrimaryOf(0);
  EXPECT_NE(new_primary, 0);
  chaos.FailNode(new_primary);
  sim.RunUntilIdle();
  // The third copy takes over.
  NodeId final_primary = cluster.router().PrimaryOf(0);
  EXPECT_NE(final_primary, 0);
  EXPECT_NE(final_primary, new_primary);
  EXPECT_FALSE(cluster.store(0)->write_blocked());
}

}  // namespace
}  // namespace lion
