// Figure 6 + Table II: ablation study. Throughput of the Lion variants vs
// the cross-partition ratio on uniform YCSB (Sec. VI-B).
//
//   2PC       : no adaptation                    (baseline)
//   Lion(S)   : Schism partitioning              (replica-blind)
//   Lion(R)   : replica rearrangement only
//   Lion(SW)  : Schism + workload prediction
//   Lion(RW)  : rearrangement + prediction
//   Lion(RB)  : rearrangement + batch execution
//   Lion      : rearrangement + prediction + batch (full system)
//
// The variant list is intentionally hard-coded: this IS the ablation
// figure, so it names the Table II variants explicitly rather than
// enumerating the registry.
#include "bench_common.h"

namespace lion {
namespace {

struct Variant {
  const char* label;    // paper name
  const char* factory;  // protocol factory name
};
const Variant kVariants[] = {
    {"2PC", "2PC"},           {"Lion(S)", "Lion(S)"}, {"Lion(R)", "Lion(R)"},
    {"Lion(SW)", "Lion(SW)"}, {"Lion(RW)", "Lion(RW)"}, {"Lion(RB)", "Lion(RB)"},
    {"Lion", "Lion(B)"},
};
const int kRatios[] = {0, 20, 50, 80, 100};

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const Variant& v : kVariants) {
    for (int ratio : kRatios) {
      ExperimentConfig cfg = bench::EvalConfig(v.factory);
      cfg.workload = "ycsb";
      cfg.ycsb.cross_ratio = ratio / 100.0;
      cfg.ycsb.skew_factor = 0.0;  // uniform workload (Sec. VI-B)
      // Lightweight protocol-level remastering for the ablation; the
      // explicit 3000 us delay is the Fig. 7 setting.
      cfg.cluster.remaster_base_delay = 500 * kMicrosecond;
      // Batch variants need a client window above the worker-capacity
      // ceiling (4000 outstanding x 10 ms epochs caps visible throughput
      // at 400k/s).
      if (ProtocolRegistry::Global().IsBatch(v.factory)) {
        cfg.concurrency = 16000;
      }
      specs.push_back(bench::PointSpec{
          std::string("Fig6/") + v.label + "/cross=" + std::to_string(ratio),
          cfg, nullptr});
    }
  }
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(
      argc, argv,
      "Fig6 / Table II ablation (partitioning/prediction/batch per DESIGN.md)",
      lion::BuildSweep());
}
