// Figure 6 + Table II: ablation study. Throughput of the Lion variants vs
// the cross-partition ratio on uniform YCSB (Sec. VI-B).
//
//   2PC       : no adaptation                    (baseline)
//   Lion(S)   : Schism partitioning              (replica-blind)
//   Lion(R)   : replica rearrangement only
//   Lion(SW)  : Schism + workload prediction
//   Lion(RW)  : rearrangement + prediction
//   Lion(RB)  : rearrangement + batch execution
//   Lion      : rearrangement + prediction + batch (full system)
#include "bench_common.h"

namespace lion {
namespace {

struct Variant {
  const char* label;    // paper name
  const char* factory;  // protocol factory name
};
const Variant kVariants[] = {
    {"2PC", "2PC"},           {"Lion(S)", "Lion(S)"}, {"Lion(R)", "Lion(R)"},
    {"Lion(SW)", "Lion(SW)"}, {"Lion(RW)", "Lion(RW)"}, {"Lion(RB)", "Lion(RB)"},
    {"Lion", "Lion(B)"},
};
const int kRatios[] = {0, 20, 50, 80, 100};

void Fig6(::benchmark::State& state) {
  ExperimentConfig cfg = bench::EvalConfig(kVariants[state.range(0)].factory);
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = kRatios[state.range(1)] / 100.0;
  cfg.ycsb.skew_factor = 0.0;  // uniform workload (Sec. VI-B)
  // Lightweight protocol-level remastering for the ablation; the explicit
  // 3000 us delay is the Fig. 7 setting.
  cfg.cluster.remaster_base_delay = 500 * kMicrosecond;
  // Batch variants need a client window above the worker-capacity ceiling
  // (4000 outstanding x 10 ms epochs caps visible throughput at 400k/s).
  if (ProtocolRegistry::Global().IsBatch(kVariants[state.range(0)].factory)) {
    cfg.concurrency = 16000;
  }
  bench::RunAndReport(cfg, state);
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  std::printf("Table II variants: see benchmark names below "
              "(partitioning/prediction/batch per DESIGN.md).\n");
  for (int v = 0; v < 7; ++v) {
    for (int r = 0; r < 5; ++r) {
      std::string name = std::string("Fig6/") + lion::kVariants[v].label +
                         "/cross=" + std::to_string(lion::kRatios[r]);
      ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig6)
          ->Args({v, r})
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
