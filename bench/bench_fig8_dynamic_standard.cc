// Figure 8: dynamic workloads with changing hotspots, standard protocols.
// (a) varying hotspot interval; (b) varying hotspot position (A/B/C/D).
// Periods are time-scaled (60 s -> 2.5 s); throughput is printed per window.
#include "bench_common.h"

namespace lion {
namespace {

const char* kProtocols[] = {"2PC", "Leap", "Clay", "Lion"};

void RunScenario(::benchmark::State& state, const char* workload) {
  ExperimentConfig cfg = bench::EvalConfig(kProtocols[state.range(0)]);
  cfg.workload = workload;
  cfg.dynamic_period = bench::FastMode() ? 1 * kSecond : 2500 * kMillisecond;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  // Two full cycles so the predictor sees the pattern repeat.
  int phases = (std::string(workload) == "ycsb-hotspot-interval") ? 3 : 4;
  cfg.warmup = 0;
  cfg.duration = 2 * phases * cfg.dynamic_period;
  ExperimentResult res = bench::RunAndReport(cfg, state);
  std::string tag = std::string("Fig8/") + workload + "/" +
                    kProtocols[state.range(0)] + ":";
  bench::PrintSeries(tag, res);
}

void Fig8aInterval(::benchmark::State& state) {
  RunScenario(state, "ycsb-hotspot-interval");
}
void Fig8bPosition(::benchmark::State& state) {
  RunScenario(state, "ycsb-hotspot-position");
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int p = 0; p < 4; ++p) {
    std::string name = std::string("Fig8a/interval/") + lion::kProtocols[p];
    ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig8aInterval)
        ->Args({p})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
    name = std::string("Fig8b/position/") + lion::kProtocols[p];
    ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig8bPosition)
        ->Args({p})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
