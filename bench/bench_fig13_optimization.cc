// Figure 13: optimization analysis.
// (a) Impact of pre-replication: Lion with vs without the workload
//     predictor on a cycling dynamic workload (throughput over time).
// (b) Impact of batch optimization: non-batch vs batch Lion as the
//     remastering duration sweeps over {500..3500} us.
#include "bench_common.h"

namespace lion {
namespace {

void Fig13aPredictor(::benchmark::State& state) {
  bool with_predictor = state.range(0) == 1;
  ExperimentConfig cfg =
      bench::EvalConfig(with_predictor ? "Lion(RW)" : "Lion(R)");
  cfg.workload = "ycsb-hotspot-interval";
  cfg.dynamic_period = bench::FastMode() ? 1 * kSecond : 2 * kSecond;
  cfg.warmup = 0;
  cfg.duration = 6 * cfg.dynamic_period;  // two full cycles: pattern repeats
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.predictor.gamma = 0.05;
  ExperimentResult res = bench::RunAndReport(cfg, state);
  bench::PrintSeries(with_predictor ? "Fig13a/WithPredictor:"
                                    : "Fig13a/Baseline:",
                     res);
}

const int kRemasterUs[] = {500, 1500, 2000, 3000, 3500};

void Fig13bRemasterSweep(::benchmark::State& state) {
  bool batch = state.range(0) == 1;
  ExperimentConfig cfg = bench::EvalConfig(batch ? "Lion(RB)" : "Lion(R)");
  // A fast-rotating hotspot keeps remastering on the critical path: every
  // rotation triggers a wave of conversions whose cost scales with the
  // remastering duration in standard mode, while batch mode overlaps the
  // wave with batch collection (Sec. IV-D).
  cfg.workload = "ycsb-hotspot-interval";
  cfg.dynamic_period = 250 * kMillisecond;
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 3 * kSecond;
  cfg.lion.planner.interval = 125 * kMillisecond;
  cfg.cluster.remaster_base_delay = kRemasterUs[state.range(1)] * kMicrosecond;
  if (batch) cfg.concurrency = 8000;  // avoid the client-window ceiling
  bench::RunAndReport(cfg, state);
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int w = 0; w < 2; ++w) {
    std::string name = std::string("Fig13a/") +
                       (w == 1 ? "WithPredictor" : "Baseline");
    ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig13aPredictor)
        ->Args({w})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  for (int b = 0; b < 2; ++b) {
    for (int d = 0; d < 5; ++d) {
      std::string name = std::string("Fig13b/") +
                         (b == 1 ? "Batch" : "NonBatch") + "/remaster_us=" +
                         std::to_string(lion::kRemasterUs[d]);
      ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig13bRemasterSweep)
          ->Args({b, d})
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
