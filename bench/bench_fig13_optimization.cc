// Figure 13: optimization analysis.
// (a) Impact of pre-replication: Lion with vs without the workload
//     predictor on a cycling dynamic workload (throughput over time).
// (b) Impact of batch optimization: non-batch vs batch Lion as the
//     remastering duration sweeps over {500..3500} us.
//
// Variant pairs are hard-coded: like Fig. 6 this is an ablation (specific
// Lion variants against each other), not a cross-protocol comparison.
#include "bench_common.h"

namespace lion {
namespace {

bench::PointSpec PredictorSpec(bool with_predictor) {
  ExperimentConfig cfg =
      bench::EvalConfig(with_predictor ? "Lion(RW)" : "Lion(R)");
  cfg.workload = "ycsb-hotspot-interval";
  cfg.dynamic_period = bench::FastMode() ? 1 * kSecond : 2 * kSecond;
  cfg.warmup = 0;
  cfg.duration = 6 * cfg.dynamic_period;  // two full cycles: pattern repeats
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.predictor.gamma = 0.05;
  std::string name =
      std::string("Fig13a/") + (with_predictor ? "WithPredictor" : "Baseline");
  std::string tag = name + ":";
  return bench::PointSpec{name, cfg, [tag](const SweepOutcome& o) {
                            bench::PrintSeries(tag, o.result);
                          }};
}

const int kRemasterUs[] = {500, 1500, 2000, 3000, 3500};

bench::PointSpec RemasterSpec(bool batch, int remaster_us) {
  ExperimentConfig cfg = bench::EvalConfig(batch ? "Lion(RB)" : "Lion(R)");
  // A fast-rotating hotspot keeps remastering on the critical path: every
  // rotation triggers a wave of conversions whose cost scales with the
  // remastering duration in standard mode, while batch mode overlaps the
  // wave with batch collection (Sec. IV-D).
  cfg.workload = "ycsb-hotspot-interval";
  cfg.dynamic_period = 250 * kMillisecond;
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 3 * kSecond;
  cfg.lion.planner.interval = 125 * kMillisecond;
  cfg.cluster.remaster_base_delay = remaster_us * kMicrosecond;
  if (batch) cfg.concurrency = 8000;  // avoid the client-window ceiling
  return bench::PointSpec{std::string("Fig13b/") +
                              (batch ? "Batch" : "NonBatch") +
                              "/remaster_us=" + std::to_string(remaster_us),
                          cfg, nullptr};
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  specs.push_back(PredictorSpec(false));
  specs.push_back(PredictorSpec(true));
  for (int batch = 0; batch < 2; ++batch) {
    for (int us : kRemasterUs) {
      specs.push_back(RemasterSpec(batch == 1, us));
    }
  }
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv, "Fig13 optimization analysis",
                                lion::BuildSweep());
}
