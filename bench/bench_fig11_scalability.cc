// Figure 11: scalability from 4 to 10 executor nodes under 100%
// cross-partition uniform YCSB. (a) standard approaches; (b) batch-based.
#include "bench_common.h"

namespace lion {
namespace {

struct Entry {
  const char* label;
  const char* factory;
  bool batch;
};
const Entry kProtocols[] = {
    {"2PC", "2PC", false},       {"Leap", "Leap", false},
    {"Clay", "Clay", false},     {"Lion", "Lion", false},
    {"Calvin", "Calvin", true},  {"Star", "Star", true},
    {"Aria", "Aria", true},      {"Lotus", "Lotus", true},
    {"Hermes", "Hermes", true},  {"Lion(B)", "Lion(B)", true},
};
const int kNodes[] = {4, 6, 8, 10};

void Fig11(::benchmark::State& state) {
  const Entry& e = kProtocols[state.range(0)];
  ExperimentConfig cfg = bench::EvalConfig(e.factory, kNodes[state.range(1)]);
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 1.0;
  cfg.ycsb.skew_factor = 0.0;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  // Batch protocols need a client window above the worker-capacity ceiling
  // at 10 nodes (the default 4000 outstanding caps visibility at 400k/s).
  if (e.batch) cfg.concurrency = 16000;
  bench::RunAndReport(cfg, state);
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int p = 0; p < 10; ++p) {
    for (int n = 0; n < 4; ++n) {
      const char* fig = lion::kProtocols[p].batch ? "Fig11b" : "Fig11a";
      std::string name = std::string(fig) + "/" + lion::kProtocols[p].label +
                         "/nodes=" + std::to_string(lion::kNodes[n]);
      ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig11)
          ->Args({p, n})
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
