// Figure 11: scalability from 4 to 10 executor nodes under 100%
// cross-partition uniform YCSB. (a) standard approaches; (b) batch-based.
//
// Both protocol lists are enumerated from ProtocolRegistry by execution
// mode (standard -> Fig11a, batch -> Fig11b).
#include "bench_common.h"

namespace lion {
namespace {

const int kNodes[] = {4, 6, 8, 10};

void AddEntries(std::vector<bench::PointSpec>* specs, const char* fig,
                const std::vector<bench::ProtocolEntry>& protocols,
                bool batch) {
  for (const bench::ProtocolEntry& p : protocols) {
    for (int nodes : kNodes) {
      ExperimentConfig cfg = bench::EvalConfig(p.factory, nodes);
      cfg.workload = "ycsb";
      cfg.ycsb.cross_ratio = 1.0;
      cfg.ycsb.skew_factor = 0.0;
      cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
      // Batch protocols need a client window above the worker-capacity
      // ceiling at 10 nodes (the default 4000 outstanding caps visibility
      // at 400k/s).
      if (batch) cfg.concurrency = 16000;
      specs->push_back(bench::PointSpec{
          std::string(fig) + "/" + p.label + "/nodes=" + std::to_string(nodes),
          cfg, nullptr});
    }
  }
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  AddEntries(&specs, "Fig11a", bench::StandardProtocols(), /*batch=*/false);
  AddEntries(&specs, "Fig11b", bench::BatchProtocols(), /*batch=*/true);
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv, "Fig11 scalability, 4-10 nodes",
                                lion::BuildSweep());
}
