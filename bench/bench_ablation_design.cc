// Design-choice ablations beyond the paper's figures (DESIGN.md §7):
//   (a) cost-model migration/remaster weight ratio w_m / w_r — how strongly
//       the plan generator avoids full copies;
//   (b) planner interval — adaptation freshness vs. churn;
//   (c) replica budget (max_replicas) — placement freedom vs. sync cost.
// All on skewed YCSB at 80% cross-partition ratio with standard Lion.
#include "bench_common.h"

namespace lion {
namespace {

ExperimentConfig Base() {
  ExperimentConfig cfg = bench::EvalConfig("Lion(R)");
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.8;
  cfg.ycsb.skew_factor = 0.8;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  return cfg;
}

const double kWmOverWr[] = {1.0, 2.0, 5.0, 10.0, 50.0};

void CostWeightRatio(::benchmark::State& state) {
  ExperimentConfig cfg = Base();
  cfg.lion.cost.wr = 1.0;
  cfg.lion.cost.wm = kWmOverWr[state.range(0)];
  cfg.lion.planner.plan.cost = cfg.lion.cost;
  bench::RunAndReport(cfg, state);
}

const int kPlannerMs[] = {100, 250, 500, 1000, 2000};

void PlannerInterval(::benchmark::State& state) {
  ExperimentConfig cfg = Base();
  cfg.lion.planner.interval = kPlannerMs[state.range(0)] * kMillisecond;
  bench::RunAndReport(cfg, state);
}

const int kMaxReplicas[] = {2, 3, 4};

void ReplicaBudget(::benchmark::State& state) {
  ExperimentConfig cfg = Base();
  cfg.cluster.max_replicas = kMaxReplicas[state.range(0)];
  bench::RunAndReport(cfg, state);
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int i = 0; i < 5; ++i) {
    std::string name =
        "Ablation/wm_over_wr=" + std::to_string((int)lion::kWmOverWr[i]);
    ::benchmark::RegisterBenchmark(name.c_str(), lion::CostWeightRatio)
        ->Args({i})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  for (int i = 0; i < 5; ++i) {
    std::string name =
        "Ablation/planner_ms=" + std::to_string(lion::kPlannerMs[i]);
    ::benchmark::RegisterBenchmark(name.c_str(), lion::PlannerInterval)
        ->Args({i})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  for (int i = 0; i < 3; ++i) {
    std::string name =
        "Ablation/max_replicas=" + std::to_string(lion::kMaxReplicas[i]);
    ::benchmark::RegisterBenchmark(name.c_str(), lion::ReplicaBudget)
        ->Args({i})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
