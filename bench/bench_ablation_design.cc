// Design-choice ablations beyond the paper's figures (DESIGN.md §7):
//   (a) cost-model migration/remaster weight ratio w_m / w_r — how strongly
//       the plan generator avoids full copies;
//   (b) planner interval — adaptation freshness vs. churn;
//   (c) replica budget (max_replicas) — placement freedom vs. sync cost.
// All on skewed YCSB at 80% cross-partition ratio with standard Lion.
#include "bench_common.h"

namespace lion {
namespace {

ExperimentConfig Base() {
  ExperimentConfig cfg = bench::EvalConfig("Lion(R)");
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.8;
  cfg.ycsb.skew_factor = 0.8;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  return cfg;
}

const double kWmOverWr[] = {1.0, 2.0, 5.0, 10.0, 50.0};
const int kPlannerMs[] = {100, 250, 500, 1000, 2000};
const int kMaxReplicas[] = {2, 3, 4};

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (double wm : kWmOverWr) {
    ExperimentConfig cfg = Base();
    cfg.lion.cost.wr = 1.0;
    cfg.lion.cost.wm = wm;
    cfg.lion.planner.plan.cost = cfg.lion.cost;
    specs.push_back(bench::PointSpec{
        "Ablation/wm_over_wr=" + std::to_string(static_cast<int>(wm)), cfg,
        nullptr});
  }
  for (int ms : kPlannerMs) {
    ExperimentConfig cfg = Base();
    cfg.lion.planner.interval = ms * kMillisecond;
    specs.push_back(bench::PointSpec{
        "Ablation/planner_ms=" + std::to_string(ms), cfg, nullptr});
  }
  for (int replicas : kMaxReplicas) {
    ExperimentConfig cfg = Base();
    cfg.cluster.max_replicas = replicas;
    specs.push_back(bench::PointSpec{
        "Ablation/max_replicas=" + std::to_string(replicas), cfg, nullptr});
  }
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv, "Design-choice ablations",
                                lion::BuildSweep());
}
