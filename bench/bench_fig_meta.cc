// FigMeta: runtime meta-protocol study (adaptive extension beyond the
// paper's figures). The meta protocol routes each partition to one of its
// child protocols (2PC baseline, Star single-master batching) and flips
// assignments at epoch boundaries using Lion's workload forecasts. All
// three run the drifting-skew YCSB variant (hotspot position moves every
// period), where no static choice is right for the whole run: 2PC wins
// the uniform phase, Star wins the skewed phases.
//
// Each point reports the per-window throughput series; the meta point
// additionally prints its protocol-switch timeline. The merged JSON
// carries a "meta_summary" block with the meta-vs-static ratios the
// acceptance criteria quote (meta >= best static within noise, strictly
// above the worst static).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace lion {
namespace {

const char* kProtocols[] = {"meta", "2PC", "Star"};

// One drift period per measured half: with 1s warmup + 2s duration the
// hotspot relocates three times, so every protocol sees every phase.
ExperimentConfig MetaConfigFor(const char* protocol) {
  ExperimentConfig cfg = bench::EvalConfig(protocol);
  cfg.workload = "ycsb-hotspot-position";
  cfg.dynamic_period = bench::FastMode() ? 500 * kMillisecond : 1 * kSecond;
  return cfg;
}

void PrintTimeline(const SweepOutcome& o) {
  bench::PrintSeries(o.name, o.result);
  if (!o.result.meta_active) return;
  std::printf("%s switches=%zu assignment", o.name.c_str(),
              o.result.protocol_switches.size());
  for (size_t i = 0; i < o.result.meta_children.size(); ++i) {
    std::printf(" %s=%llu", o.result.meta_children[i].c_str(),
                static_cast<unsigned long long>(o.result.meta_assignment[i]));
  }
  std::printf("\n%s flips", o.name.c_str());
  for (const ExperimentResult::ProtocolSwitchEvent& ev :
       o.result.protocol_switches) {
    std::printf(" [%.0fms p%d %s->%s]", ev.t_ms, ev.partition,
                ev.from.c_str(), ev.to.c_str());
  }
  std::printf("\n");
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const char* proto : kProtocols) {
    specs.push_back(bench::PointSpec{std::string("FigMeta/") + proto,
                                     MetaConfigFor(proto), PrintTimeline});
  }
  return specs;
}

// Derived acceptance metrics: meta throughput against the best and worst
// static child, plus the switch count, so the CI assertion and any plot
// script read one block instead of re-deriving ratios.
std::string SummaryJson(const std::vector<SweepOutcome>& outcomes) {
  double meta = 0.0, best = 0.0, worst = 0.0;
  uint64_t switches = 0;
  for (const SweepOutcome& o : outcomes) {
    if (!o.status.ok()) continue;
    if (o.result.meta_active) {
      meta = o.result.throughput;
      switches = o.result.protocol_switches.size();
    } else {
      if (best == 0.0 || o.result.throughput > best) best = o.result.throughput;
      if (worst == 0.0 || o.result.throughput < worst)
        worst = o.result.throughput;
    }
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"meta_summary\":{\"meta_txn_s\":%.1f,\"best_static_txn_s\":"
                "%.1f,\"worst_static_txn_s\":%.1f,\"meta_vs_best\":%.4f,"
                "\"meta_vs_worst\":%.4f,\"switches\":%llu}",
                meta, best, worst, best > 0.0 ? meta / best : 0.0,
                worst > 0.0 ? meta / worst : 0.0,
                static_cast<unsigned long long>(switches));
  return buf;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(
      argc, argv, "FigMeta adaptive meta-protocol: meta vs 2PC vs Star",
      lion::BuildSweep(), lion::SummaryJson);
}
