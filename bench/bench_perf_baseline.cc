// Tracked performance baseline for the simulator hot path and the sweep
// harness. Emits BENCH_sim_hotpath.json (repo root by convention) so each
// PR's numbers land on a trajectory instead of vanishing into a terminal.
//
// Five sections:
//   1. event_churn        — pure Simulator::Schedule/PopAndRun throughput
//                           with protocol-sized closures (no protocol
//                           logic), the hot path in isolation (default
//                           scheduler);
//   2. scheduler_churn    — heap vs calendar A/B across queue-depth x
//                           timer-skew cells, with a pop-clock digest check
//                           asserting both orders are identical;
//   3. experiments        — full single-threaded runs (YCSB+Lion, TPCC+2PC),
//                           simulator events/sec including real event
//                           bodies;
//   4. predictor_ablation — Lion on the dynamic hotspot workload with
//                           predictor.kind = lstm / ewma / off: what
//                           forecast quality buys vs. what forecasting
//                           costs (wall clock);
//   5. sweep              — an 8-config grid through SweepRunner at 1..N
//                           threads, wall-clock scaling plus a determinism
//                           check (merged JSON at threads=1 must equal
//                           threads=N).
//
// Flags: --out=PATH (default BENCH_sim_hotpath.json), --events=N,
//        --threads=N (max pool for the sweep section), --fast (reduced
//        matrix for CI smoke), --no-sweep, --no-sched, --no-pred,
//        --label=STR (tag in the JSON).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "harness/sweep_runner.h"

namespace lion {
namespace {

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- 1. Event churn: the scheduler loop in isolation -------------------------

struct ChurnResult {
  uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

// One self-rescheduling chain step. The closure captures two pointers and
// two words of payload (~32 bytes), the size class of real protocol
// callbacks (a `this`, a TxnPtr, a completion token).
void ChainStep(Simulator* sim, uint64_t* remaining, uint64_t salt,
               uint64_t* sink) {
  if (*remaining == 0) return;
  --*remaining;
  *sink += salt;
  sim->Schedule(100, [sim, remaining, salt, sink]() {
    ChainStep(sim, remaining, salt ^ 0x9e3779b97f4a7c15ull, sink);
  });
}

ChurnResult EventChurn(uint64_t total_events) {
  Simulator sim(42);
  uint64_t remaining = total_events;
  uint64_t sink = 0;
  constexpr int kChains = 64;  // realistic queue depth for the heap ops
  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kChains; ++c) {
    ChainStep(&sim, &remaining, static_cast<uint64_t>(c) + 1, &sink);
  }
  sim.RunUntilIdle();
  ChurnResult res;
  res.wall_s = WallSeconds(t0);
  res.events = sim.processed_events();
  res.events_per_sec = static_cast<double>(res.events) / res.wall_s;
  if (sink == 0xdeadbeef) std::printf("(unlikely)\n");  // keep `sink` live
  return res;
}

// --- 2. Scheduler A/B: queue depth x timer skew ------------------------------

// Delay shapes the cells sweep. "uniform" keeps every deadline near the
// horizon (the calendar's best case); "bimodal" sends 1/8 of reschedules
// ~500 bucket-rotations out (stressing the overflow list); "timer" mixes
// dense work with ms-scale periodic deadlines, the epoch-driven shape from
// STAR-style batch designs that motivated the calendar queue.
enum class SkewDist { kUniform, kBimodal, kTimer };

const char* SkewName(SkewDist d) {
  switch (d) {
    case SkewDist::kUniform: return "uniform";
    case SkewDist::kBimodal: return "bimodal";
    case SkewDist::kTimer: return "timer";
  }
  return "?";
}

struct SchedCell {
  std::string dist;
  int depth = 0;
  double heap_eps = 0.0;
  double calendar_eps = 0.0;
  double speedup = 0.0;
  bool digest_match = false;
};

struct SchedRun {
  double events_per_sec = 0.0;
  uint64_t digest = 0;
};

// One cell: `depth` self-rescheduling chains, `total` events, delays drawn
// from the cell's distribution by a per-chain deterministic RNG. The digest
// folds every pop's clock in execution order, so a single out-of-order pop
// anywhere diverges the heap and calendar digests.
SchedRun SchedulerChurnRun(SchedulerKind kind, SkewDist dist, int depth,
                           uint64_t total) {
  Simulator sim(1234, SimConfig{kind});
  uint64_t remaining = total;
  uint64_t digest = 0;

  struct Chain {
    Simulator* sim;
    uint64_t* remaining;
    uint64_t* digest;
    uint64_t state;
    SkewDist dist;
    int index;

    SimTime NextDelay() {
      // xorshift64*: cheap, deterministic, identical across schedulers.
      state ^= state >> 12;
      state ^= state << 25;
      state ^= state >> 27;
      uint64_t r = state * 0x2545f4914f6cdd1dull;
      switch (dist) {
        case SkewDist::kUniform:
          return static_cast<SimTime>(50 + r % 100);
        case SkewDist::kBimodal:
          return (r % 8 == 0) ? 100 * kMicrosecond
                              : static_cast<SimTime>(r % 200);
        case SkewDist::kTimer:
          // One chain in 16 is a fixed-period millisecond timer; the rest
          // are dense near-horizon work.
          if (index % 16 == 0) return 1 * kMillisecond;
          return static_cast<SimTime>(r % 200);
      }
      return 100;
    }

    void Step() {
      if (*remaining == 0) return;
      --*remaining;
      // Fold the chain identity in as well as the clock: same-tick pops
      // from different chains would otherwise contribute identical terms,
      // hiding FIFO tie-order inversions from the digest.
      *digest = *digest * 31 + static_cast<uint64_t>(sim->Now()) * 1315423911u +
                static_cast<uint64_t>(index);
      sim->Schedule(NextDelay(), [this]() { Step(); });
    }
  };

  std::vector<Chain> chains;
  chains.reserve(static_cast<size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    chains.push_back(Chain{&sim, &remaining, &digest,
                           0x9e3779b97f4a7c15ull + static_cast<uint64_t>(i),
                           dist, i});
  }
  auto t0 = std::chrono::steady_clock::now();
  for (Chain& c : chains) c.Step();
  sim.RunUntilIdle();
  SchedRun res;
  res.events_per_sec =
      static_cast<double>(sim.processed_events()) / WallSeconds(t0);
  res.digest = digest;
  return res;
}

std::vector<SchedCell> RunSchedulerChurn(bool fast) {
  const uint64_t total = fast ? 250'000 : 1'000'000;
  std::vector<SchedCell> cells;
  for (SkewDist dist :
       {SkewDist::kUniform, SkewDist::kBimodal, SkewDist::kTimer}) {
    for (int depth : {64, 1024, 8192}) {
      SchedRun heap =
          SchedulerChurnRun(SchedulerKind::kHeap, dist, depth, total);
      SchedRun cal =
          SchedulerChurnRun(SchedulerKind::kCalendar, dist, depth, total);
      SchedCell cell;
      cell.dist = SkewName(dist);
      cell.depth = depth;
      cell.heap_eps = heap.events_per_sec;
      cell.calendar_eps = cal.events_per_sec;
      cell.speedup = cal.events_per_sec / heap.events_per_sec;
      cell.digest_match = heap.digest == cal.digest;
      std::printf(
          "scheduler_churn: dist=%-7s depth=%-5d heap=%6.2f M ev/s  "
          "calendar=%6.2f M ev/s  (%.2fx)%s\n",
          cell.dist.c_str(), depth, cell.heap_eps / 1e6,
          cell.calendar_eps / 1e6, cell.speedup,
          cell.digest_match ? "" : "  DIGEST MISMATCH");
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

// --- 3. Full experiments: events/sec with real event bodies ------------------

struct MacroResult {
  std::string name;
  uint64_t events = 0;
  uint64_t committed = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double throughput = 0.0;
};

ExperimentConfig YcsbLion(bool fast) {
  ExperimentConfig cfg = bench::EvalConfig("Lion");
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.5;
  cfg.ycsb.skew_factor = 0.8;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.warmup = fast ? 200 * kMillisecond : 500 * kMillisecond;
  cfg.duration = fast ? 500 * kMillisecond : 2 * kSecond;
  return cfg;
}

ExperimentConfig Tpcc2Pc(bool fast) {
  ExperimentConfig cfg = bench::EvalConfig("2PC");
  cfg.workload = "tpcc";
  cfg.cluster.partitions_per_node = 4;
  cfg.tpcc.remote_ratio = 0.5;
  cfg.tpcc.skew_factor = 0.8;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.warmup = fast ? 200 * kMillisecond : 500 * kMillisecond;
  cfg.duration = fast ? 500 * kMillisecond : 2 * kSecond;
  return cfg;
}

// Chaos + durable recovery hot path: 2PC under a dirty crash, log replay +
// catch-up rejoin, and a second crash, with the recovery log recording every
// commit. Events/sec tracks the log-append and catch-up overhead on top of
// the chaos machinery; committed tracks how much work survives the schedule.
ExperimentConfig ChaosRecovery(bool fast) {
  ExperimentConfig cfg = bench::EvalConfig("2PC");
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.2;
  cfg.warmup = fast ? 200 * kMillisecond : 500 * kMillisecond;
  cfg.duration = fast ? 500 * kMillisecond : 2 * kSecond;
  const SimTime w = cfg.warmup;
  const SimTime d = cfg.duration;
  auto ms = [](SimTime t) { return std::to_string(t / kMillisecond) + "ms"; };
  cfg.chaos.schedule = {
      ms(w + d / 4) + " crash_dirty 1",
      ms(w + d / 2) + " recover 1",
      ms(w + d * 3 / 4) + " crash 2",
  };
  cfg.recovery.enabled = true;
  cfg.recovery.durability_lag = 1 * kMillisecond;
  cfg.recovery.snapshot_interval = 500 * kMillisecond;
  return cfg;
}

// The meta protocol on the drifting hotspot: the adaptive-routing hot path
// (per-txn majority vote, per-epoch decision rounds, switch handoffs) on
// the workload it exists for. Events/sec tracks the routing overhead,
// txn/s the adaptation win.
ExperimentConfig MetaDrift(bool fast) {
  ExperimentConfig cfg = bench::EvalConfig("meta");
  cfg.workload = "ycsb-hotspot-position";
  cfg.dynamic_period = 1 * kSecond;
  cfg.warmup = fast ? 200 * kMillisecond : 500 * kMillisecond;
  cfg.duration = fast ? 500 * kMillisecond : 2 * kSecond;
  return cfg;
}

MacroResult RunMacro(const std::string& name, const ExperimentConfig& cfg) {
  MacroResult res;
  res.name = name;
  std::unique_ptr<Experiment> ex;
  Status s = ExperimentBuilder(cfg).Build(&ex);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), s.ToString().c_str());
    return res;
  }
  auto t0 = std::chrono::steady_clock::now();
  ExperimentResult r = ex->Run();
  res.wall_s = WallSeconds(t0);
  res.events = ex->sim()->processed_events();
  res.committed = r.committed;
  res.throughput = r.throughput;
  res.events_per_sec = static_cast<double>(res.events) / res.wall_s;
  return res;
}

// --- 4. Predictor ablation: lstm vs ewma vs off on a dynamic workload --------

struct PredAblationResult {
  std::string kind;
  uint64_t committed = 0;
  uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double throughput = 0.0;
};

// Lion on the position-cycling hotspot (the Fig. 8b shape): hotspots move
// every period, which is exactly the regime where pre-replication from a
// good forecast pays. Same seed and workload across the three kinds, so
// throughput isolates forecast quality and wall clock isolates model cost.
ExperimentConfig PredictorAblationConfig(bool fast, const char* kind) {
  ExperimentConfig cfg = bench::EvalConfig("Lion");
  cfg.workload = "ycsb-hotspot-position";
  // The period is the same in both modes so CI's fast runs measure the
  // same workload shape as the checked-in full baseline; fast mode only
  // sees fewer cycles of it.
  cfg.dynamic_period = 1 * kSecond;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.predictor.gamma = 0.05;  // eager pre-replication
  cfg.predictor.kind = kind;
  cfg.warmup = 0;
  // Full: two cycles of the 4-phase pattern so the predictor sees it
  // repeat; fast: one cycle.
  cfg.duration = (fast ? 4 : 8) * cfg.dynamic_period;
  return cfg;
}

std::vector<PredAblationResult> RunPredictorAblation(bool fast) {
  std::vector<PredAblationResult> results;
  for (const char* kind : {"lstm", "ewma", "off"}) {
    MacroResult m = RunMacro(std::string("pred_") + kind,
                             PredictorAblationConfig(fast, kind));
    PredAblationResult r;
    r.kind = kind;
    r.committed = m.committed;
    r.events = m.events;
    r.wall_s = m.wall_s;
    r.events_per_sec = m.events_per_sec;
    r.throughput = m.throughput;
    std::printf(
        "predictor_ablation: kind=%-4s %llu committed, %.3fs wall -> "
        "%.1f ktxn/s\n",
        r.kind.c_str(), static_cast<unsigned long long>(r.committed), r.wall_s,
        r.throughput / 1000.0);
    results.push_back(std::move(r));
  }
  return results;
}

// --- 5. Sweep scaling --------------------------------------------------------

struct SweepScaling {
  size_t configs = 0;
  std::vector<int> threads;
  std::vector<double> wall_s;
  bool deterministic = false;
};

std::vector<SweepPoint> SweepGrid(bool fast) {
  // 2 protocols x 4 cross ratios = 8 configs, the ISSUE's minimum grid.
  std::vector<SweepPoint> points;
  const char* protocols[] = {"2PC", "Lion"};
  const double ratios[] = {0.0, 0.2, 0.5, 0.8};
  for (const char* p : protocols) {
    for (double r : ratios) {
      ExperimentConfig cfg = bench::EvalConfig(p);
      cfg.workload = "ycsb";
      cfg.ycsb.cross_ratio = r;
      cfg.ycsb.skew_factor = 0.8;
      cfg.warmup = fast ? 100 * kMillisecond : 300 * kMillisecond;
      cfg.duration = fast ? 300 * kMillisecond : 1 * kSecond;
      char name[64];
      std::snprintf(name, sizeof(name), "%s/cross=%d", p,
                    static_cast<int>(r * 100));
      points.push_back(SweepPoint{name, cfg});
    }
  }
  return points;
}

SweepScaling RunSweepScaling(bool fast, int max_threads) {
  SweepScaling out;
  std::vector<SweepPoint> grid = SweepGrid(fast);
  out.configs = grid.size();

  std::string json_t1;
  for (int threads : {1, 2, 4, max_threads}) {
    if (threads > max_threads) continue;
    if (std::find(out.threads.begin(), out.threads.end(), threads) !=
        out.threads.end()) {
      continue;  // max_threads may coincide with 1, 2 or 4
    }
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner(opts);
    for (const SweepPoint& p : grid) runner.Add(p);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<SweepOutcome> outcomes = runner.Run();
    double wall = WallSeconds(t0);
    out.threads.push_back(threads);
    out.wall_s.push_back(wall);
    std::string merged = SweepRunner::MergeJson(outcomes);
    if (threads == 1) {
      json_t1 = merged;
      out.deterministic = true;
    } else {
      out.deterministic = out.deterministic && (merged == json_t1);
    }
    std::printf("sweep: %zu configs, threads=%d, wall=%.2fs\n", grid.size(),
                threads, wall);
  }
  return out;
}

// --- JSON emission -----------------------------------------------------------

void AppendKv(std::string* out, const char* key, double v, bool* first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += buf;
}

void AppendKv(std::string* out, const char* key, uint64_t v, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += std::to_string(v);
}

void AppendKv(std::string* out, const char* key, const std::string& v,
              bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":\"";
  AppendJsonEscaped(out, v);  // --label is arbitrary user text
  *out += "\"";
}

void AppendKv(std::string* out, const char* key, bool v, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += v ? "true" : "false";
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  using namespace lion;

  std::string out_path = "BENCH_sim_hotpath.json";
  std::string label = "current";
  uint64_t churn_events = 4'000'000;
  bool fast = bench::FastMode();
  bool run_sweep = true;
  bool run_sched = true;
  bool run_pred = true;
  int max_threads = static_cast<int>(std::thread::hardware_concurrency());
  if (max_threads < 1) max_threads = 1;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--out=", 6) == 0) {
      out_path = a + 6;
    } else if (std::strncmp(a, "--events=", 9) == 0) {
      churn_events = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      // Clamp: 0 (or garbage) would skip every calibrated thread count in
      // the sweep loop and falsely report a determinism mismatch.
      max_threads = std::max(1, std::atoi(a + 10));
    } else if (std::strncmp(a, "--label=", 8) == 0) {
      label = a + 8;
    } else if (std::strcmp(a, "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(a, "--no-sweep") == 0) {
      run_sweep = false;
    } else if (std::strcmp(a, "--no-sched") == 0) {
      run_sched = false;
    } else if (std::strcmp(a, "--no-pred") == 0) {
      run_pred = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 1;
    }
  }
  if (fast) churn_events = std::min<uint64_t>(churn_events, 1'000'000);

  std::printf("== sim hot path baseline (%s mode) ==\n", fast ? "fast" : "full");

  ChurnResult churn = EventChurn(churn_events);
  std::printf("event_churn: %llu events in %.3fs -> %.2f M events/s\n",
              static_cast<unsigned long long>(churn.events), churn.wall_s,
              churn.events_per_sec / 1e6);

  std::vector<SchedCell> sched_cells;
  if (run_sched) sched_cells = RunSchedulerChurn(fast);

  std::vector<MacroResult> macros;
  macros.push_back(RunMacro("ycsb_lion", YcsbLion(fast)));
  macros.push_back(RunMacro("tpcc_2pc", Tpcc2Pc(fast)));
  macros.push_back(RunMacro("meta_drift", MetaDrift(fast)));
  macros.push_back(RunMacro("chaos_recovery", ChaosRecovery(fast)));
  for (const MacroResult& m : macros) {
    std::printf("%s: %llu events, %llu committed, %.3fs wall -> %.2f M events/s"
                " (%.1f ktxn/s)\n",
                m.name.c_str(), static_cast<unsigned long long>(m.events),
                static_cast<unsigned long long>(m.committed), m.wall_s,
                m.events_per_sec / 1e6, m.throughput / 1000.0);
  }

  std::vector<PredAblationResult> pred_ablation;
  if (run_pred) pred_ablation = RunPredictorAblation(fast);

  SweepScaling sweep;
  if (run_sweep) {
    sweep = RunSweepScaling(fast, max_threads);
    if (!sweep.wall_s.empty()) {
      double base = sweep.wall_s.front();
      std::printf("sweep determinism: %s; speedup at max threads: %.2fx\n",
                  sweep.deterministic ? "OK" : "MISMATCH",
                  base / sweep.wall_s.back());
    }
  }

  // Emit the JSON document.
  std::string json = "{";
  bool first = true;
  AppendKv(&json, "bench", std::string("sim_hotpath"), &first);
  AppendKv(&json, "label", label, &first);
  AppendKv(&json, "mode", std::string(fast ? "fast" : "full"), &first);
  AppendKv(&json, "hardware_threads",
           static_cast<uint64_t>(std::thread::hardware_concurrency()), &first);
  json += ",\"event_churn\":{";
  bool f2 = true;
  AppendKv(&json, "events", churn.events, &f2);
  AppendKv(&json, "wall_s", churn.wall_s, &f2);
  AppendKv(&json, "events_per_sec", churn.events_per_sec, &f2);
  json += "}";
  if (!sched_cells.empty()) {
    json += ",\"scheduler_churn\":[";
    for (size_t i = 0; i < sched_cells.size(); ++i) {
      const SchedCell& c = sched_cells[i];
      if (i > 0) json += ",";
      json += "{";
      bool fc = true;
      AppendKv(&json, "dist", c.dist, &fc);
      AppendKv(&json, "depth", static_cast<uint64_t>(c.depth), &fc);
      AppendKv(&json, "heap_eps", c.heap_eps, &fc);
      AppendKv(&json, "calendar_eps", c.calendar_eps, &fc);
      AppendKv(&json, "speedup", c.speedup, &fc);
      AppendKv(&json, "digest_match", c.digest_match, &fc);
      json += "}";
    }
    json += "]";
  }
  json += ",\"experiments\":[";
  for (size_t i = 0; i < macros.size(); ++i) {
    const MacroResult& m = macros[i];
    if (i > 0) json += ",";
    json += "{";
    bool f3 = true;
    AppendKv(&json, "name", m.name, &f3);
    AppendKv(&json, "events", m.events, &f3);
    AppendKv(&json, "committed", m.committed, &f3);
    AppendKv(&json, "wall_s", m.wall_s, &f3);
    AppendKv(&json, "events_per_sec", m.events_per_sec, &f3);
    AppendKv(&json, "throughput_txn_s", m.throughput, &f3);
    json += "}";
  }
  json += "]";
  if (!pred_ablation.empty()) {
    json += ",\"predictor_ablation\":[";
    for (size_t i = 0; i < pred_ablation.size(); ++i) {
      const PredAblationResult& r = pred_ablation[i];
      if (i > 0) json += ",";
      json += "{";
      bool fp = true;
      AppendKv(&json, "kind", r.kind, &fp);
      AppendKv(&json, "committed", r.committed, &fp);
      AppendKv(&json, "events", r.events, &fp);
      AppendKv(&json, "wall_s", r.wall_s, &fp);
      AppendKv(&json, "events_per_sec", r.events_per_sec, &fp);
      AppendKv(&json, "throughput_txn_s", r.throughput, &fp);
      json += "}";
    }
    json += "]";
  }
  if (run_sweep && !sweep.wall_s.empty()) {
    json += ",\"sweep\":{";
    bool f4 = true;
    AppendKv(&json, "configs", static_cast<uint64_t>(sweep.configs), &f4);
    AppendKv(&json, "deterministic", sweep.deterministic, &f4);
    json += ",\"runs\":[";
    for (size_t i = 0; i < sweep.threads.size(); ++i) {
      if (i > 0) json += ",";
      json += "{";
      bool f5 = true;
      AppendKv(&json, "threads", static_cast<uint64_t>(sweep.threads[i]), &f5);
      AppendKv(&json, "wall_s", sweep.wall_s[i], &f5);
      AppendKv(&json, "speedup_vs_1t", sweep.wall_s.front() / sweep.wall_s[i],
               &f5);
      json += "}";
    }
    json += "]}";
  }
  json += "}\n";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Throughput is advisory (machines jitter); digest equality is not — a
  // heap/calendar divergence is a determinism bug and fails the run.
  for (const SchedCell& c : sched_cells) {
    if (!c.digest_match) {
      std::fprintf(stderr,
                   "scheduler digest mismatch at dist=%s depth=%d — heap and "
                   "calendar popped different orders\n",
                   c.dist.c_str(), c.depth);
      return 1;
    }
  }
  return 0;
}
