// Figure 12: analysis of the migration/pre-replication process. Lion runs a
// dynamic workload whose hotspot shifts mid-run; we report (a) throughput
// over time and (b) network bytes per transaction over time. Pre-replication
// (background replica adds) elevates bytes/txn modestly before the shift;
// remastering requests spike it at the shift point.
#include "bench_common.h"

namespace lion {
namespace {

void PrintMigrationReport(const SweepOutcome& o) {
  const ExperimentResult& res = o.result;
  std::printf("Fig12a/throughput: t(s)");
  for (size_t i = 0; i < res.window_throughput.size(); ++i)
    std::printf(" %.1f", ToSeconds(res.window * (i + 1)));
  std::printf("\nFig12a/throughput: ktxn/s");
  for (double v : res.window_throughput) std::printf(" %.1f", v / 1000.0);
  std::printf("\nFig12b/netcost: bytes/txn");
  for (double v : res.window_bytes_per_txn) std::printf(" %.0f", v);
  std::printf("\nFig12 totals: remasters=%llu migrations=%llu migrated_MB=%.1f\n",
              static_cast<unsigned long long>(res.remasters),
              static_cast<unsigned long long>(res.migrations),
              res.migrated_bytes / (1024.0 * 1024.0));
}

std::vector<bench::PointSpec> BuildSweep() {
  ExperimentConfig cfg = bench::EvalConfig("Lion");
  cfg.workload = "ycsb-hotspot-interval";
  cfg.dynamic_period = bench::FastMode() ? 1500 * kMillisecond : 3 * kSecond;
  cfg.warmup = 0;
  cfg.duration = 3 * cfg.dynamic_period;  // one shift mid-run
  cfg.predictor.gamma = 0.05;             // eager pre-replication
  return {bench::PointSpec{"Fig12/Lion/migration-analysis", cfg,
                           PrintMigrationReport}};
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv,
                                "Fig12 migration / pre-replication analysis",
                                lion::BuildSweep());
}
