// Figure 9: batch-execution protocols under skewed YCSB (a) and TPC-C (b)
// with the cross-partition ratio swept over {0, 20, 50, 80, 100}%.
//
// Protocols are enumerated from ProtocolRegistry (batch mode); the full
// system registers as "Lion(B)" and reports under the paper's "Lion" label.
#include "bench_common.h"

namespace lion {
namespace {

const int kRatios[] = {0, 20, 50, 80, 100};

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const bench::ProtocolEntry& p : bench::BatchProtocols()) {
    for (int ratio : kRatios) {
      ExperimentConfig ycsb = bench::EvalConfig(p.factory);
      ycsb.cluster.remaster_base_delay = 3000 * kMicrosecond;
      ycsb.workload = "ycsb";
      ycsb.ycsb.cross_ratio = ratio / 100.0;
      ycsb.ycsb.skew_factor = 0.8;
      specs.push_back(bench::PointSpec{
          std::string("Fig9a/") + p.label + "/cross=" + std::to_string(ratio),
          ycsb, nullptr});

      ExperimentConfig tpcc = bench::EvalConfig(p.factory);
      tpcc.cluster.remaster_base_delay = 3000 * kMicrosecond;
      tpcc.cluster.partitions_per_node = 4;
      tpcc.workload = "tpcc";
      tpcc.tpcc.remote_ratio = ratio / 100.0;
      tpcc.tpcc.skew_factor = 0.8;
      specs.push_back(bench::PointSpec{
          std::string("Fig9b/") + p.label + "/cross=" + std::to_string(ratio),
          tpcc, nullptr});
    }
  }
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv,
                                "Fig9 cross-partition ratio, batch execution",
                                lion::BuildSweep());
}
