// Figure 9: batch-execution protocols under skewed YCSB (a) and TPC-C (b)
// with the cross-partition ratio swept over {0, 20, 50, 80, 100}%.
#include "bench_common.h"

namespace lion {
namespace {

struct Entry {
  const char* label;
  const char* factory;
};
const Entry kProtocols[] = {
    {"Calvin", "Calvin"}, {"Star", "Star"},     {"Aria", "Aria"},
    {"Lotus", "Lotus"},   {"Hermes", "Hermes"}, {"Lion", "Lion(B)"},
};
const int kRatios[] = {0, 20, 50, 80, 100};

void Fig9aYcsb(::benchmark::State& state) {
  ExperimentConfig cfg = bench::EvalConfig(kProtocols[state.range(0)].factory);
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = kRatios[state.range(1)] / 100.0;
  cfg.ycsb.skew_factor = 0.8;
  bench::RunAndReport(cfg, state);
}

void Fig9bTpcc(::benchmark::State& state) {
  ExperimentConfig cfg = bench::EvalConfig(kProtocols[state.range(0)].factory);
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.cluster.partitions_per_node = 4;
  cfg.workload = "tpcc";
  cfg.tpcc.remote_ratio = kRatios[state.range(1)] / 100.0;
  cfg.tpcc.skew_factor = 0.8;
  bench::RunAndReport(cfg, state);
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int p = 0; p < 6; ++p) {
    for (int r = 0; r < 5; ++r) {
      std::string name = std::string("Fig9a/") + lion::kProtocols[p].label +
                         "/cross=" + std::to_string(lion::kRatios[r]);
      ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig9aYcsb)
          ->Args({p, r})
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
      name = std::string("Fig9b/") + lion::kProtocols[p].label + "/cross=" +
             std::to_string(lion::kRatios[r]);
      ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig9bTpcc)
          ->Args({p, r})
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
