// Figure 14: latency analysis of the batch/deterministic approaches.
// (a) 10th/50th/95th percentile latency; (b) normalized runtime breakdown
// (scheduling / execution / commit / replication / other).
#include "bench_common.h"

namespace lion {
namespace {

struct Entry {
  const char* label;
  const char* factory;
};
const Entry kProtocols[] = {
    {"Calvin", "Calvin"}, {"Aria", "Aria"},     {"Lotus", "Lotus"},
    {"Hermes", "Hermes"}, {"Lion", "Lion(B)"},
};

void Fig14(::benchmark::State& state) {
  ExperimentConfig cfg = bench::EvalConfig(kProtocols[state.range(0)].factory);
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.5;
  cfg.ycsb.skew_factor = 0.8;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  // Latency study: short epochs and a moderate client window so queueing
  // does not drown per-transaction processing latency.
  cfg.cluster.epoch_interval = 1 * kMillisecond;
  cfg.concurrency = 512;
  ExperimentResult res = bench::RunAndReport(cfg, state);

  state.counters["p10_us"] = res.p10_us;

  // Normalized runtime breakdown (Fig. 14b).
  const PhaseBreakdown& bd = res.breakdown;
  double total = static_cast<double>(bd.Total());
  // "Other" absorbs the remainder of measured latency not attributed to a
  // phase (batch waits, retries).
  double lat_total = res.p50_us * 1000.0 * static_cast<double>(res.committed);
  double other = std::max(0.0, lat_total - total) + static_cast<double>(bd.other);
  double denom = total + std::max(0.0, lat_total - total);
  if (denom <= 0.0) denom = 1.0;
  std::printf(
      "Fig14b/%s breakdown: scheduling=%.2f execution=%.2f commit=%.2f "
      "replication=%.2f other=%.2f\n",
      kProtocols[state.range(0)].label, bd.scheduling / denom,
      bd.execution / denom, bd.commit / denom, bd.replication / denom,
      other / denom);
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int p = 0; p < 5; ++p) {
    std::string name = std::string("Fig14/") + lion::kProtocols[p].label;
    ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig14)
        ->Args({p})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
