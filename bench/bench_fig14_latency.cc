// Figure 14: latency analysis of the batch/deterministic approaches.
// (a) 10th/50th/95th percentile latency; (b) normalized runtime breakdown
// (scheduling / execution / commit / replication / other).
//
// Protocols are enumerated from ProtocolRegistry (batch mode). This is a
// deliberate superset of the paper's lineup: ICDE Fig. 14 plots
// Calvin/Aria/Lotus/Hermes/Lion only, so registry enumeration adds a Star
// series (and any future batch protocol) with no paper counterpart —
// filter with --filter when comparing against the paper.
#include <algorithm>

#include "bench_common.h"

namespace lion {
namespace {

void PrintLatencyReport(const std::string& label, const SweepOutcome& o) {
  const ExperimentResult& res = o.result;
  std::printf("Fig14a/%s: p10_us=%.0f p50_us=%.0f p95_us=%.0f\n",
              label.c_str(), res.p10_us, res.p50_us, res.p95_us);

  // Normalized runtime breakdown (Fig. 14b).
  const PhaseBreakdown& bd = res.breakdown;
  double total = static_cast<double>(bd.Total());
  // "Other" absorbs the remainder of measured latency not attributed to a
  // phase (batch waits, retries).
  double lat_total = res.p50_us * 1000.0 * static_cast<double>(res.committed);
  double other = std::max(0.0, lat_total - total) + static_cast<double>(bd.other);
  double denom = total + std::max(0.0, lat_total - total);
  if (denom <= 0.0) denom = 1.0;
  std::printf(
      "Fig14b/%s breakdown: scheduling=%.2f execution=%.2f commit=%.2f "
      "replication=%.2f other=%.2f\n",
      label.c_str(), bd.scheduling / denom, bd.execution / denom,
      bd.commit / denom, bd.replication / denom, other / denom);
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const bench::ProtocolEntry& p : bench::BatchProtocols()) {
    ExperimentConfig cfg = bench::EvalConfig(p.factory);
    cfg.workload = "ycsb";
    cfg.ycsb.cross_ratio = 0.5;
    cfg.ycsb.skew_factor = 0.8;
    cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
    // Latency study: short epochs and a moderate client window so queueing
    // does not drown per-transaction processing latency.
    cfg.cluster.epoch_interval = 1 * kMillisecond;
    cfg.concurrency = 512;
    std::string label = p.label;
    specs.push_back(bench::PointSpec{std::string("Fig14/") + label, cfg,
                                     [label](const SweepOutcome& o) {
                                       PrintLatencyReport(label, o);
                                     }});
  }
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv,
                                "Fig14 latency analysis, batch execution",
                                lion::BuildSweep());
}
