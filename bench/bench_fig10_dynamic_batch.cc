// Figure 10: dynamic workloads with changing hotspots, batch protocols.
// (a) varying hotspot interval; (b) varying hotspot position (A/B/C/D).
//
// Protocols are enumerated from ProtocolRegistry (batch mode).
#include "bench_common.h"

namespace lion {
namespace {

bench::PointSpec MakeSpec(const bench::ProtocolEntry& p, const char* fig,
                          const std::string& workload) {
  ExperimentConfig cfg = bench::EvalConfig(p.factory);
  cfg.workload = workload;
  cfg.dynamic_period = bench::FastMode() ? 1 * kSecond : 2500 * kMillisecond;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  int phases = (workload == "ycsb-hotspot-interval") ? 3 : 4;
  cfg.warmup = 0;
  cfg.duration = 2 * phases * cfg.dynamic_period;
  std::string name = std::string(fig) + "/" + p.label;
  std::string tag = std::string("Fig10/") + workload + "/" + p.label + ":";
  return bench::PointSpec{name, cfg, [tag](const SweepOutcome& o) {
                            bench::PrintSeries(tag, o.result);
                          }};
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const bench::ProtocolEntry& p : bench::BatchProtocols()) {
    specs.push_back(MakeSpec(p, "Fig10a/interval", "ycsb-hotspot-interval"));
    specs.push_back(MakeSpec(p, "Fig10b/position", "ycsb-hotspot-position"));
  }
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv,
                                "Fig10 dynamic hotspots, batch execution",
                                lion::BuildSweep());
}
