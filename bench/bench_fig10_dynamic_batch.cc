// Figure 10: dynamic workloads with changing hotspots, batch protocols.
// (a) varying hotspot interval; (b) varying hotspot position (A/B/C/D).
#include "bench_common.h"

namespace lion {
namespace {

struct Entry {
  const char* label;
  const char* factory;
};
const Entry kProtocols[] = {
    {"Calvin", "Calvin"}, {"Star", "Star"},     {"Aria", "Aria"},
    {"Lotus", "Lotus"},   {"Hermes", "Hermes"}, {"Lion", "Lion(B)"},
};

void RunScenario(::benchmark::State& state, const char* workload) {
  ExperimentConfig cfg = bench::EvalConfig(kProtocols[state.range(0)].factory);
  cfg.workload = workload;
  cfg.dynamic_period = bench::FastMode() ? 1 * kSecond : 2500 * kMillisecond;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  int phases = (std::string(workload) == "ycsb-hotspot-interval") ? 3 : 4;
  cfg.warmup = 0;
  cfg.duration = 2 * phases * cfg.dynamic_period;
  ExperimentResult res = bench::RunAndReport(cfg, state);
  std::string tag = std::string("Fig10/") + workload + "/" +
                    kProtocols[state.range(0)].label + ":";
  bench::PrintSeries(tag, res);
}

void Fig10aInterval(::benchmark::State& state) {
  RunScenario(state, "ycsb-hotspot-interval");
}
void Fig10bPosition(::benchmark::State& state) {
  RunScenario(state, "ycsb-hotspot-position");
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int p = 0; p < 6; ++p) {
    std::string name = std::string("Fig10a/interval/") + lion::kProtocols[p].label;
    ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig10aInterval)
        ->Args({p})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
    name = std::string("Fig10b/position/") + lion::kProtocols[p].label;
    ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig10bPosition)
        ->Args({p})
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
