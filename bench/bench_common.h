// Shared helpers for the per-figure benchmark binaries.
//
// Each binary registers one google-benchmark entry per (protocol, parameter)
// sweep point; the entry runs a full simulated experiment and reports the
// paper's metric as counters. Time-series figures additionally print their
// series as "FigureX: ..." rows.
//
// Environment: LION_BENCH_FAST=1 halves warmup/duration for smoke runs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.h"

namespace lion {
namespace bench {

inline bool FastMode() {
  const char* v = std::getenv("LION_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// The evaluation cluster defaults (Sec. VI-A, scaled per DESIGN.md).
inline ClusterConfig EvalCluster(int nodes = 4) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.workers_per_node = 8;
  cfg.partitions_per_node = 12;
  cfg.records_per_partition = 10000;
  cfg.record_bytes = 1000;
  cfg.init_replicas = 2;
  cfg.max_replicas = 4;
  return cfg;
}

/// Baseline experiment config shared by the sweeps.
inline ExperimentConfig EvalConfig(const std::string& protocol, int nodes = 4) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.cluster = EvalCluster(nodes);
  cfg.warmup = FastMode() ? 500 * kMillisecond : 1 * kSecond;
  cfg.duration = FastMode() ? 1 * kSecond : 2 * kSecond;
  cfg.lion.planner.interval = 250 * kMillisecond;
  cfg.lion.planner.min_history = 64;
  cfg.predictor.sample_interval = 100 * kMillisecond;
  cfg.predictor.train_epochs = 5;
  return cfg;
}

/// Runs the experiment through the builder and exports the headline
/// counters. Configuration problems (unknown protocol name etc.) surface as
/// a skipped benchmark, not a crash.
inline ExperimentResult RunAndReport(const ExperimentConfig& cfg,
                                     ::benchmark::State& state) {
  ExperimentResult res;
  for (auto _ : state) {
    Status status = ExperimentBuilder(cfg).Run(&res);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return res;
    }
  }
  state.counters["ktxn_s"] = res.throughput / 1000.0;
  state.counters["p50_us"] = res.p50_us;
  state.counters["p95_us"] = res.p95_us;
  state.counters["dist_pct"] =
      res.committed > 0
          ? 100.0 * static_cast<double>(res.distributed) / res.committed
          : 0.0;
  return res;
}

/// Prints one paper-style series (time on the x-axis).
inline void PrintSeries(const std::string& tag, const ExperimentResult& res) {
  std::printf("%s t(s)", tag.c_str());
  for (size_t i = 0; i < res.window_throughput.size(); ++i) {
    std::printf(" %.1f", ToSeconds(res.window * (i + 1)));
  }
  std::printf("\n%s ktxn/s", tag.c_str());
  for (double v : res.window_throughput) std::printf(" %.1f", v / 1000.0);
  std::printf("\n");
}

}  // namespace bench
}  // namespace lion
