// Shared entry point for the per-figure benchmark binaries.
//
// Each binary declares its sweep as a vector of labeled grid points
// (PointSpec) and delegates to bench::SweepMain, which runs the grid
// through SweepRunner (multi-threaded, deterministic merge), prints one
// summary line per point in declaration order, then runs each point's
// optional `on_done` hook (time-series printing) in the same order.
//
// Flags accepted by every figure binary:
//   --filter=SUBSTR   run only points whose name contains SUBSTR
//   --threads=N       sweep pool size (default: hardware_concurrency)
//   --repeat=N        run each point N times with derived seeds and report
//                     per-metric medians (+ min/max); on_done hooks observe
//                     each point's first (base-seed) run and the merged
//                     JSON aggregates each point into median/min/max blocks
//                     (see MergeRepeatJson in harness/sweep_cli.h)
//   --sweep=FILE      replace the compiled-in grid with a JSON sweep spec
//                     (see harness/sweep_spec.h and examples/configs/)
//   --json=PATH       also write the merged sweep JSON document to PATH
//   --list            print point names and exit
//
// While running, a [k/n done, ~Ns left] progress line updates on stderr
// when it is a TTY (suppressed under --json and in redirected logs).
//
// Environment: LION_BENCH_FAST=1 halves warmup/duration for smoke runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "harness/registry.h"
#include "harness/sweep_cli.h"
#include "harness/sweep_runner.h"
#include "harness/sweep_spec.h"

namespace lion {
namespace bench {

inline bool FastMode() {
  const char* v = std::getenv("LION_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// The evaluation cluster defaults (Sec. VI-A, scaled per DESIGN.md).
inline ClusterConfig EvalCluster(int nodes = 4) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.workers_per_node = 8;
  cfg.partitions_per_node = 12;
  cfg.records_per_partition = 10000;
  cfg.record_bytes = 1000;
  cfg.init_replicas = 2;
  cfg.max_replicas = 4;
  return cfg;
}

/// Baseline experiment config shared by the sweeps.
inline ExperimentConfig EvalConfig(const std::string& protocol, int nodes = 4) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.cluster = EvalCluster(nodes);
  cfg.warmup = FastMode() ? 500 * kMillisecond : 1 * kSecond;
  cfg.duration = FastMode() ? 1 * kSecond : 2 * kSecond;
  cfg.lion.planner.interval = 250 * kMillisecond;
  cfg.lion.planner.min_history = 64;
  cfg.predictor.sample_interval = 100 * kMillisecond;
  cfg.predictor.train_epochs = 5;
  return cfg;
}

/// A protocol as it appears in a figure: the paper's label plus the factory
/// name it resolves to in ProtocolRegistry (usually identical).
struct ProtocolEntry {
  std::string label;
  std::string factory;
};

/// The paper's protocol lineup for one execution mode, enumerated from the
/// registry rather than hard-coded: every registered protocol of that mode
/// joins the figure automatically. Parenthesized names ("Lion(R)",
/// "Lion(SW)", ...) are the Fig. 6 / Table II ablation variants and are
/// excluded here — except "Lion(B)", the full batch system, which reports
/// under the paper's plain "Lion" label in the batch figures. "meta" is
/// also excluded: it is a composite router over other registered
/// protocols, not a lineup member (it has its own figure, FigMeta).
inline std::vector<ProtocolEntry> ProtocolsByMode(ExecutionMode mode) {
  std::vector<ProtocolEntry> entries;
  for (const std::string& name :
       ProtocolRegistry::Global().NamesByMode(mode)) {
    if (name.find('(') != std::string::npos) continue;
    if (name == "meta") continue;
    entries.push_back(ProtocolEntry{name, name});
  }
  if (mode == ExecutionMode::kBatch &&
      ProtocolRegistry::Global().Contains("Lion(B)")) {
    entries.push_back(ProtocolEntry{"Lion", "Lion(B)"});
  }
  return entries;
}

inline std::vector<ProtocolEntry> StandardProtocols() {
  return ProtocolsByMode(ExecutionMode::kStandard);
}

inline std::vector<ProtocolEntry> BatchProtocols() {
  return ProtocolsByMode(ExecutionMode::kBatch);
}

/// One labeled grid point plus an optional ordered post-run hook (series
/// printing and other per-point reporting run after the whole sweep, in
/// declaration order, so multi-threaded output stays deterministic).
struct PointSpec {
  std::string name;
  ExperimentConfig config;
  std::function<void(const SweepOutcome&)> on_done;
};

/// Prints one paper-style series (time on the x-axis).
inline void PrintSeries(const std::string& tag, const ExperimentResult& res) {
  std::printf("%s t(s)", tag.c_str());
  for (size_t i = 0; i < res.window_throughput.size(); ++i) {
    std::printf(" %.1f", ToSeconds(res.window * (i + 1)));
  }
  std::printf("\n%s ktxn/s", tag.c_str());
  for (double v : res.window_throughput) std::printf(" %.1f", v / 1000.0);
  std::printf("\n");
}

/// Shared main(): flag parsing, filtered SweepRunner execution, ordered
/// reporting with optional --repeat medians, optional merged-JSON emission.
/// `extra_json`, when set, receives every point's outcome and returns
/// additional top-level members (without braces, e.g. `"reference":{...}`)
/// spliced into the merged JSON document — figure binaries use it for
/// analytic reference curves and derived per-point metrics that accompany
/// the measured runs. Returns the process exit code (1 if any point failed
/// to build/run).
using ExtraJsonFn =
    std::function<std::string(const std::vector<SweepOutcome>&)>;

inline int SweepMain(int argc, char** argv, const char* title,
                     std::vector<PointSpec> specs,
                     ExtraJsonFn extra_json = nullptr) {
  std::string filter;
  std::string json_path;
  std::string sweep_path;
  int threads = 0;  // 0 = hardware_concurrency
  int repeat = 1;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--filter=", 9) == 0) {
      filter = a + 9;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      threads = std::atoi(a + 10);
    } else if (std::strncmp(a, "--repeat=", 9) == 0) {
      repeat = std::atoi(a + 9);
      if (repeat < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 1;
      }
    } else if (std::strncmp(a, "--sweep=", 8) == 0) {
      sweep_path = a + 8;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      json_path = a + 7;
    } else if (std::strcmp(a, "--list") == 0) {
      list_only = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\n"
                   "usage: %s [--filter=SUBSTR] [--threads=N] [--repeat=N] "
                   "[--sweep=FILE] [--json=PATH] [--list]\n",
                   a, argv[0]);
      return 1;
    }
  }

  if (!sweep_path.empty()) {
    // A JSON grid replaces the compiled-in points (and their on_done
    // hooks): the same runner front end, config declared in the file.
    std::vector<SweepPoint> points;
    Status s = LoadSweepFile(sweep_path, &points);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    specs.clear();
    for (SweepPoint& p : points) {
      specs.push_back(PointSpec{std::move(p.name), std::move(p.config),
                                nullptr});
    }
  }

  if (!filter.empty()) {
    std::vector<PointSpec> kept;
    for (PointSpec& s : specs) {
      if (s.name.find(filter) != std::string::npos) {
        kept.push_back(std::move(s));
      }
    }
    specs = std::move(kept);
  }

  if (list_only) {
    for (const PointSpec& s : specs) std::printf("%s\n", s.name.c_str());
    return 0;
  }
  if (specs.empty()) {
    std::fprintf(stderr, "no sweep points match --filter=%s\n",
                 filter.c_str());
    return 1;
  }

  std::printf("%s — %zu points%s%s\n", title, specs.size(),
              repeat > 1 ? " (median of repeats)" : "",
              FastMode() ? " (fast mode)" : "");

  std::vector<SweepPoint> points;
  points.reserve(specs.size());
  for (const PointSpec& s : specs) {
    points.push_back(SweepPoint{s.name, s.config});
  }
  points = ExpandRepeat(std::move(points), repeat);

  SweepOptions options;
  options.threads = threads;
  options.on_progress =
      MakeSweepProgress(StderrIsTty() && json_path.empty(), points.size());
  SweepRunner runner(options);
  for (SweepPoint& p : points) runner.Add(std::move(p));
  std::vector<SweepOutcome> outcomes = runner.Run();

  bool all_ok = PrintSweepSummaries(stdout, outcomes, repeat);
  for (size_t i = 0; i < specs.size(); ++i) {
    // Each point's first run carries the base seed, so under --repeat the
    // hook observes exactly what a --repeat=1 run would have produced.
    size_t first_run = i * static_cast<size_t>(repeat);
    if (specs[i].on_done && outcomes[first_run].status.ok()) {
      specs[i].on_done(outcomes[first_run]);
    }
  }

  if (!json_path.empty()) {
    std::string json = MergeRepeatJson(outcomes, repeat);
    if (extra_json) {
      std::string extra = extra_json(outcomes);
      // The merged document is a single object; splice the extra members
      // just inside its closing brace.
      if (!extra.empty() && !json.empty() && json.back() == '}') {
        json.insert(json.size() - 1, "," + extra);
      }
    }
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace bench
}  // namespace lion
