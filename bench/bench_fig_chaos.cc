// FigChaos: chaos timeline study (robustness extension beyond the paper's
// figures). Lion vs 2PC vs Star run the same YCSB mix while a scripted
// fault schedule plays out mid-measurement: a node crash with failover, a
// network partition that is later healed, a replication lag storm, and the
// crashed node's recovery. Each point reports the per-window throughput and
// availability series plus the fired fault events, so the merged JSON can
// be plotted as a timeline figure (throughput/availability on the y-axis,
// fault events as vertical markers).
//
// The merged JSON additionally carries the "fault_schedule" block — the
// exact schedule entries every point ran — so a plot script needs no
// knowledge of this file.
//
// A second panel (FigChaosRecovery) studies durable log-backed recovery:
// a dirty crash whose unsynced suffix is lost, a log replay + catch-up
// rejoin, then a second crash that only the recovered node's replicas can
// absorb. Points sweep recovery.durability_lag_us against a rejoin-empty
// baseline (recovery off); the "recovery_panel" JSON block reports each
// point's recovery time and its availability after the second crash —
// replay keeps the cluster serving, rejoining empty does not.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace lion {
namespace {

const char* kProtocols[] = {"Lion", "2PC", "Star"};

std::string Ms(SimTime t) {
  return std::to_string(t / kMillisecond) + "ms";
}

// The schedule is phrased relative to warmup/duration so LION_BENCH_FAST
// (halved times) keeps every event inside the measured interval: crash at
// 25% of the measurement, recovery at 60%, a partition cutting off node 3
// at 70% healed at 80%, and a lag storm over the final stretch.
std::vector<std::string> ChaosSchedule(const ExperimentConfig& cfg) {
  const SimTime w = cfg.warmup;
  const SimTime d = cfg.duration;
  return {
      Ms(w + d / 4) + " crash 1",
      Ms(w + d * 6 / 10) + " recover 1",
      Ms(w + d * 7 / 10) + " partition 3",
      Ms(w + d * 8 / 10) + " heal",
      Ms(w + d * 85 / 100) + " lag_storm " + Ms(d / 10),
  };
}

ExperimentConfig ChaosConfigFor(const char* protocol) {
  ExperimentConfig cfg = bench::EvalConfig(protocol);
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.2;
  cfg.chaos.schedule = ChaosSchedule(cfg);
  return cfg;
}

void PrintTimeline(const SweepOutcome& o) {
  bench::PrintSeries(o.name, o.result);
  std::printf("%s availability", o.name.c_str());
  for (double v : o.result.window_availability) std::printf(" %.4f", v);
  std::printf("\n%s events", o.name.c_str());
  for (const ExperimentResult::FaultEvent& ev : o.result.fault_events) {
    std::printf(" [%.0fms %s]", ev.t_ms, ev.description.c_str());
  }
  std::printf("\n%s integrity violations=%llu failovers=%llu "
              "aborted_unavailable=%llu\n",
              o.name.c_str(),
              static_cast<unsigned long long>(o.result.integrity_violations),
              static_cast<unsigned long long>(o.result.failovers),
              static_cast<unsigned long long>(o.result.aborted_unavailable));
}

// --- recovery panel ----------------------------------------------------------

// Durability lags swept by the recovery panel; -1 is the rejoin-empty
// baseline (recovery disabled).
const SimTime kDurabilityLags[] = {-1, 0, 1 * kMillisecond, 20 * kMillisecond};

std::string RecoveryPointName(SimTime lag) {
  if (lag < 0) return "FigChaosRecovery/rejoin_empty";
  return "FigChaosRecovery/lag_" + std::to_string(lag / kMicrosecond) + "us";
}

// Dirty crash at 25%, replay + catch-up rejoin at 50%, then a second crash
// at 75% that removes the last pre-crash copy of the failed-over
// partitions: only the recovered node's replayed replicas can absorb it.
std::vector<std::string> RecoverySchedule(const ExperimentConfig& cfg) {
  const SimTime w = cfg.warmup;
  const SimTime d = cfg.duration;
  return {
      Ms(w + d / 4) + " crash_dirty 1",
      Ms(w + d / 2) + " recover 1",
      Ms(w + d * 3 / 4) + " crash 2",
  };
}

ExperimentConfig RecoveryConfigFor(SimTime lag) {
  ExperimentConfig cfg = bench::EvalConfig("2PC");
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.2;
  cfg.chaos.schedule = RecoverySchedule(cfg);
  if (lag >= 0) {
    cfg.recovery.enabled = true;
    cfg.recovery.durability_lag = lag;
    cfg.recovery.snapshot_interval = 500 * kMillisecond;
  }
  return cfg;
}

void PrintRecoveryPoint(const SweepOutcome& o) {
  std::printf("%s availability", o.name.c_str());
  for (double v : o.result.window_availability) std::printf(" %.4f", v);
  std::printf("\n%s recoveries", o.name.c_str());
  for (const ExperimentResult::RecoveryEvent& ev : o.result.recovery_events) {
    std::printf(" [node %d: %.1fms over %d partitions]", ev.node,
                ev.duration_ms, ev.partitions);
  }
  std::printf("\n%s integrity violations=%llu stale_elections=%llu "
              "log_lost=%llu\n",
              o.name.c_str(),
              static_cast<unsigned long long>(o.result.integrity_violations),
              static_cast<unsigned long long>(o.result.stale_elections),
              static_cast<unsigned long long>(o.result.log_entries_lost));
}

// Mean availability over the windows after the second crash — the stretch
// where only the recovered node's replayed replicas can keep the failed-over
// partitions serving.
double PostCrashAvailability(const ExperimentResult& res) {
  const ExperimentConfig base = RecoveryConfigFor(-1);
  SimTime second_crash = base.warmup + base.duration * 3 / 4;
  size_t from = res.window > 0
                    ? static_cast<size_t>(second_crash / res.window) + 1
                    : 0;
  double sum = 0.0;
  size_t n = 0;
  for (size_t i = from; i < res.window_availability.size(); ++i) {
    sum += res.window_availability[i];
    n++;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const char* proto : kProtocols) {
    specs.push_back(bench::PointSpec{std::string("FigChaos/") + proto,
                                     ChaosConfigFor(proto), PrintTimeline});
  }
  for (SimTime lag : kDurabilityLags) {
    specs.push_back(bench::PointSpec{RecoveryPointName(lag),
                                     RecoveryConfigFor(lag),
                                     PrintRecoveryPoint});
  }
  return specs;
}

std::string ScheduleJson(const std::vector<SweepOutcome>& outcomes) {
  std::string out = "\"fault_schedule\":[";
  bool first = true;
  for (const std::string& entry : ChaosSchedule(ChaosConfigFor("Lion"))) {
    out += (first ? "\"" : ",\"") + entry + "\"";
    first = false;
  }
  out += "],\"recovery_panel\":[";
  first = true;
  for (const SweepOutcome& o : outcomes) {
    if (o.name.find("FigChaosRecovery/") != 0 || !o.status.ok()) continue;
    SimTime lag = -1;
    for (SimTime l : kDurabilityLags) {
      if (RecoveryPointName(l) == o.name) lag = l;
    }
    double recovery_ms = 0.0;
    for (const ExperimentResult::RecoveryEvent& ev : o.result.recovery_events) {
      recovery_ms += ev.duration_ms;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"durability_lag_us\":%lld,"
                  "\"recovery_ms\":%.3f,\"post_crash_availability\":%.4f,"
                  "\"log_entries_lost\":%llu}",
                  first ? "" : ",", o.name.c_str(),
                  static_cast<long long>(lag < 0 ? -1 : lag / kMicrosecond),
                  recovery_ms, PostCrashAvailability(o.result),
                  static_cast<unsigned long long>(o.result.log_entries_lost));
    out += buf;
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(
      argc, argv, "FigChaos fault timeline: Lion vs 2PC vs Star",
      lion::BuildSweep(), lion::ScheduleJson);
}
