// FigChaos: chaos timeline study (robustness extension beyond the paper's
// figures). Lion vs 2PC vs Star run the same YCSB mix while a scripted
// fault schedule plays out mid-measurement: a node crash with failover, a
// network partition that is later healed, a replication lag storm, and the
// crashed node's recovery. Each point reports the per-window throughput and
// availability series plus the fired fault events, so the merged JSON can
// be plotted as a timeline figure (throughput/availability on the y-axis,
// fault events as vertical markers).
//
// The merged JSON additionally carries the "fault_schedule" block — the
// exact schedule entries every point ran — so a plot script needs no
// knowledge of this file.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace lion {
namespace {

const char* kProtocols[] = {"Lion", "2PC", "Star"};

std::string Ms(SimTime t) {
  return std::to_string(t / kMillisecond) + "ms";
}

// The schedule is phrased relative to warmup/duration so LION_BENCH_FAST
// (halved times) keeps every event inside the measured interval: crash at
// 25% of the measurement, recovery at 60%, a partition cutting off node 3
// at 70% healed at 80%, and a lag storm over the final stretch.
std::vector<std::string> ChaosSchedule(const ExperimentConfig& cfg) {
  const SimTime w = cfg.warmup;
  const SimTime d = cfg.duration;
  return {
      Ms(w + d / 4) + " crash 1",
      Ms(w + d * 6 / 10) + " recover 1",
      Ms(w + d * 7 / 10) + " partition 3",
      Ms(w + d * 8 / 10) + " heal",
      Ms(w + d * 85 / 100) + " lag_storm " + Ms(d / 10),
  };
}

ExperimentConfig ChaosConfigFor(const char* protocol) {
  ExperimentConfig cfg = bench::EvalConfig(protocol);
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = 0.2;
  cfg.chaos.schedule = ChaosSchedule(cfg);
  return cfg;
}

void PrintTimeline(const SweepOutcome& o) {
  bench::PrintSeries(o.name, o.result);
  std::printf("%s availability", o.name.c_str());
  for (double v : o.result.window_availability) std::printf(" %.4f", v);
  std::printf("\n%s events", o.name.c_str());
  for (const ExperimentResult::FaultEvent& ev : o.result.fault_events) {
    std::printf(" [%.0fms %s]", ev.t_ms, ev.description.c_str());
  }
  std::printf("\n%s integrity violations=%llu failovers=%llu "
              "aborted_unavailable=%llu\n",
              o.name.c_str(),
              static_cast<unsigned long long>(o.result.integrity_violations),
              static_cast<unsigned long long>(o.result.failovers),
              static_cast<unsigned long long>(o.result.aborted_unavailable));
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const char* proto : kProtocols) {
    specs.push_back(bench::PointSpec{std::string("FigChaos/") + proto,
                                     ChaosConfigFor(proto), PrintTimeline});
  }
  return specs;
}

std::string ScheduleJson(const std::vector<SweepOutcome>&) {
  std::string out = "\"fault_schedule\":[";
  bool first = true;
  for (const std::string& entry : ChaosSchedule(ChaosConfigFor("Lion"))) {
    out += (first ? "\"" : ",\"") + entry + "\"";
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(
      argc, argv, "FigChaos fault timeline: Lion vs 2PC vs Star",
      lion::BuildSweep(), lion::ScheduleJson);
}
