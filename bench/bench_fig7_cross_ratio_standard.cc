// Figure 7: standard-execution protocols under skewed YCSB (a) and TPC-C (b)
// with the cross-partition ratio swept over {0, 20, 50, 80, 100}%.
// Setup per Sec. VI-C1: skew_factor 0.8, remastering delay 3000 us.
#include "bench_common.h"

namespace lion {
namespace {

const char* kProtocols[] = {"2PC", "Leap", "Clay", "Lion"};
const int kRatios[] = {0, 20, 50, 80, 100};

void Fig7aYcsb(::benchmark::State& state) {
  ExperimentConfig cfg =
      bench::EvalConfig(kProtocols[state.range(0)]);
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.workload = "ycsb";
  cfg.ycsb.cross_ratio = kRatios[state.range(1)] / 100.0;
  cfg.ycsb.skew_factor = 0.8;
  bench::RunAndReport(cfg, state);
}

void Fig7bTpcc(::benchmark::State& state) {
  ExperimentConfig cfg =
      bench::EvalConfig(kProtocols[state.range(0)]);
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.cluster.partitions_per_node = 4;  // warehouses per node (scaled)
  cfg.workload = "tpcc";
  cfg.tpcc.remote_ratio = kRatios[state.range(1)] / 100.0;
  cfg.tpcc.skew_factor = 0.8;
  bench::RunAndReport(cfg, state);
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  for (int p = 0; p < 4; ++p) {
    for (int r = 0; r < 5; ++r) {
      std::string name = std::string("Fig7a/") + lion::kProtocols[p] + "/cross=" +
                         std::to_string(lion::kRatios[r]);
      ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig7aYcsb)
          ->Args({p, r})
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
      name = std::string("Fig7b/") + lion::kProtocols[p] + "/cross=" +
             std::to_string(lion::kRatios[r]);
      ::benchmark::RegisterBenchmark(name.c_str(), lion::Fig7bTpcc)
          ->Args({p, r})
          ->Iterations(1)
          ->Unit(::benchmark::kMillisecond);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
