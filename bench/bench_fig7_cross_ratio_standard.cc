// Figure 7: standard-execution protocols under skewed YCSB (a) and TPC-C (b)
// with the cross-partition ratio swept over {0, 20, 50, 80, 100}%.
// Setup per Sec. VI-C1: skew_factor 0.8, remastering delay 3000 us.
//
// The protocol list comes from ProtocolRegistry (standard mode), so a newly
// registered standard protocol joins the figure without edits here.
#include "bench_common.h"

namespace lion {
namespace {

const int kRatios[] = {0, 20, 50, 80, 100};

// The two sub-figures expand as consecutive protocol x ratio blocks — the
// same cartesian order a SweepSpec JSON grid produces, so the checked-in
// examples/configs/fig7_cross_ratio.json replicates this binary's merged
// JSON exactly (CI spot-asserts the 2PC/cross=0 points; run both sides
// with --threads=1 --json for the full 40-point comparison). Registry
// changes that alter the standard-protocol lineup must be mirrored in the
// grid's protocol axis.
std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const bench::ProtocolEntry& p : bench::StandardProtocols()) {
    for (int ratio : kRatios) {
      ExperimentConfig ycsb = bench::EvalConfig(p.factory);
      ycsb.cluster.remaster_base_delay = 3000 * kMicrosecond;
      ycsb.workload = "ycsb";
      ycsb.ycsb.cross_ratio = ratio / 100.0;
      ycsb.ycsb.skew_factor = 0.8;
      specs.push_back(bench::PointSpec{
          std::string("Fig7a/") + p.label + "/cross=" + std::to_string(ratio),
          ycsb, nullptr});
    }
  }
  for (const bench::ProtocolEntry& p : bench::StandardProtocols()) {
    for (int ratio : kRatios) {
      ExperimentConfig tpcc = bench::EvalConfig(p.factory);
      tpcc.cluster.remaster_base_delay = 3000 * kMicrosecond;
      tpcc.cluster.partitions_per_node = 4;  // warehouses per node (scaled)
      tpcc.workload = "tpcc";
      tpcc.tpcc.remote_ratio = ratio / 100.0;
      tpcc.tpcc.skew_factor = 0.8;
      specs.push_back(bench::PointSpec{
          std::string("Fig7b/") + p.label + "/cross=" + std::to_string(ratio),
          tpcc, nullptr});
    }
  }
  return specs;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(
      argc, argv, "Fig7 cross-partition ratio, standard execution",
      lion::BuildSweep());
}
