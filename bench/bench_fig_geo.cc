// FigGeo: geo-replication study (extension beyond the paper's figures).
// Throughput and latency of geo_occ vs 2PC vs Lion under skewed YCSB with
// the region count swept over {1, 2, 3} and the cross-partition ratio over
// {0, 20, 50, 100}%. One region is the paper's single-datacenter setup; 2-3
// regions split the same 4 nodes across 30 ms WAN links with 5% jitter.
//
// The merged JSON additionally carries a "reference" block with the
// Didona et al. lower bound on conflicting-transaction commit latency: no
// protocol can acknowledge a transaction that conflicts across regions in
// less than one WAN round trip, i.e. 2x the largest one-way inter-region
// latency of the topology (0 for a single region).
#include <cstdio>

#include "bench_common.h"
#include "sim/topology.h"

namespace lion {
namespace {

const int kRegions[] = {1, 2, 3};
const int kRatios[] = {0, 20, 50, 100};
const char* kProtocols[] = {"geo_occ", "2PC", "Lion"};

ExperimentConfig GeoConfig(const char* protocol, int regions, int ratio) {
  ExperimentConfig cfg = bench::EvalConfig(protocol);
  cfg.workload = "ycsb";
  // The default paired co-access pattern pins partners to adjacent nodes,
  // which block region assignment keeps inside one region — random-node
  // pairing makes the cross knob actually produce cross-REGION traffic.
  cfg.ycsb.cross_pattern = CrossPattern::kRandomNode;
  cfg.ycsb.cross_ratio = ratio / 100.0;
  cfg.ycsb.skew_factor = 0.8;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  cfg.cluster.net.regions = regions;
  cfg.cluster.net.jitter_pct = 0.05;
  return cfg;
}

std::vector<bench::PointSpec> BuildSweep() {
  std::vector<bench::PointSpec> specs;
  for (const char* proto : kProtocols) {
    for (int regions : kRegions) {
      for (int ratio : kRatios) {
        specs.push_back(bench::PointSpec{
            std::string("FigGeo/") + proto +
                "/regions=" + std::to_string(regions) +
                "/cross=" + std::to_string(ratio),
            GeoConfig(proto, regions, ratio), nullptr});
      }
    }
  }
  return specs;
}

double BoundUs(int regions) {
  ExperimentConfig cfg = GeoConfig(kProtocols[0], regions, 0);
  Topology topo(cfg.cluster.net, cfg.cluster.num_nodes);
  return 2.0 * static_cast<double>(topo.max_cross_region_latency()) / 1000.0;
}

int RegionsOfPoint(const std::string& name) {
  size_t pos = name.find("regions=");
  if (pos == std::string::npos) return -1;
  return std::atoi(name.c_str() + pos + 8);
}

// `"reference":{"didona_lower_bound_us":{"regions=1":0,...},
// "distance_from_bound_us":{"<point>":...,...}}` — the bound is computed
// from the same topology the sweep points run on, so a changed latency
// matrix moves the bound together with the measurements. The distance block
// reports each measured point's p99 commit latency minus the bound for its
// region count: the bound constrains only cross-region conflicting commits,
// which live in the tail, so p99 is the percentile it actually binds. A
// positive distance is how far the protocol's tail sits above the
// theoretical floor; a negative one means the protocol kept even its tail
// free of cross-region conflicts (Lion's remastering does exactly this).
std::string ReferenceJson(const std::vector<SweepOutcome>& outcomes) {
  std::string out = "\"reference\":{\"didona_lower_bound_us\":{";
  bool first = true;
  for (int regions : kRegions) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"regions=%d\":%.6g",
                  first ? "" : ",", regions, BoundUs(regions));
    out += buf;
    first = false;
  }
  out += "},\"distance_from_bound_us\":{";
  first = true;
  for (const SweepOutcome& o : outcomes) {
    int regions = RegionsOfPoint(o.name);
    if (!o.status.ok() || regions < 0) continue;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6g", first ? "" : ",",
                  o.name.c_str(), o.result.p99_us - BoundUs(regions));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace
}  // namespace lion

int main(int argc, char** argv) {
  return lion::bench::SweepMain(argc, argv,
                                "FigGeo geo-replication: regions x cross ratio",
                                lion::BuildSweep(), lion::ReferenceJson);
}
