// End-to-end experiment runner: cluster + protocol + workload + metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/lion_protocol.h"
#include "core/predictor.h"
#include "metrics/metrics.h"
#include "protocols/clay.h"
#include "protocols/protocol.h"
#include "replication/cluster.h"
#include "workload/dynamic.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace lion {

/// Declarative description of one experiment run. Protocol names:
///   standard: "2PC", "Leap", "Clay", "Lion", and the ablation variants
///             "Lion(S)", "Lion(R)", "Lion(SW)", "Lion(RW)"
///   batch:    "Star", "Calvin", "Hermes", "Aria", "Lotus",
///             "Lion(RB)", "Lion(B)"  (Lion(B) = full batch Lion)
/// Workloads: "ycsb", "tpcc", "ycsb-hotspot-interval", "ycsb-hotspot-position".
struct ExperimentConfig {
  std::string protocol = "Lion";
  std::string workload = "ycsb";
  ClusterConfig cluster;
  YcsbConfig ycsb;
  TpccConfig tpcc;
  /// Period length for the dynamic scenarios (paper: 60 s, scaled here).
  SimTime dynamic_period = 5 * kSecond;

  /// Closed-loop concurrency; 0 = derive from the protocol type
  /// (nodes x workers for standard, a large open window for batch).
  int concurrency = 0;
  SimTime warmup = 1 * kSecond;
  SimTime duration = 3 * kSecond;
  uint64_t seed = 1;

  LionOptions lion;          // tuned per variant by the factory
  PredictorConfig predictor;
  ClayConfig clay;
};

/// Everything measured in one run.
struct ExperimentResult {
  std::string protocol;
  double throughput = 0.0;  // committed txns / measured second
  uint64_t committed = 0;
  uint64_t aborts = 0;
  uint64_t single_node = 0;
  uint64_t remastered = 0;
  uint64_t distributed = 0;
  double p10_us = 0.0, p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  PhaseBreakdown breakdown;
  /// Throughput per stats window over the whole run (incl. warmup).
  std::vector<double> window_throughput;
  /// Network bytes per committed txn, per stats window.
  std::vector<double> window_bytes_per_txn;
  double bytes_per_txn = 0.0;
  uint64_t remasters = 0;
  uint64_t migrations = 0;
  uint64_t migrated_bytes = 0;
  SimTime window = 0;
};

/// True if `protocol` buffers transactions into epochs.
bool IsBatchProtocol(const std::string& protocol);

/// Builds a protocol instance by name. `predictor_out`, when non-null,
/// receives ownership of the predictor created for Lion(.W) variants.
std::unique_ptr<Protocol> MakeProtocol(
    const ExperimentConfig& cfg, Cluster* cluster, MetricsCollector* metrics,
    std::unique_ptr<PredictorInterface>* predictor_out);

/// Runs the experiment to completion and gathers all metrics.
ExperimentResult RunExperiment(const ExperimentConfig& cfg);

}  // namespace lion
