// End-to-end experiment harness: an Experiment owns the full component
// lifecycle (simulator, cluster, metrics, protocol, workload); an
// ExperimentBuilder validates a declarative config against the registries
// and assembles the Experiment. Protocols and workloads are resolved by
// name through ProtocolRegistry / WorkloadRegistry — adding one is a
// one-file operation with no harness edits.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/driver.h"
#include "harness/experiment_config.h"
#include "harness/registry.h"
#include "metrics/metrics.h"
#include "protocols/protocol.h"
#include "replication/cluster.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace lion {

class ChaosController;
class CommitLedger;

/// Everything measured in one run.
struct ExperimentResult {
  std::string protocol;
  std::string workload;
  uint64_t seed = 1;
  double throughput = 0.0;  // committed txns / measured second
  uint64_t committed = 0;
  uint64_t aborts = 0;
  uint64_t single_node = 0;
  uint64_t remastered = 0;
  uint64_t distributed = 0;
  double p10_us = 0.0, p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  PhaseBreakdown breakdown;
  /// Throughput per stats window over the whole run (incl. warmup).
  std::vector<double> window_throughput;
  /// Network bytes per committed txn, per stats window.
  std::vector<double> window_bytes_per_txn;
  double bytes_per_txn = 0.0;
  uint64_t remasters = 0;
  uint64_t migrations = 0;
  uint64_t migrated_bytes = 0;
  SimTime window = 0;

  // --- chaos track (populated — and emitted — only when a fault schedule
  // ran; chaos-off runs produce byte-identical JSON to a build without the
  // subsystem) ---------------------------------------------------------------
  bool chaos_active = false;
  /// Transactions given up on after the bounded unavailability retries.
  uint64_t aborted_unavailable = 0;
  uint64_t failovers = 0;
  uint64_t elections_rerun = 0;
  uint64_t messages_dropped = 0;
  /// Commit fraction per stats window (1.0 in quiet windows) — the
  /// availability series of the chaos timeline figure.
  std::vector<double> window_availability;
  struct FaultEvent {
    double t_ms = 0.0;
    std::string description;
  };
  /// Every fired schedule event, stamped with its simulated time.
  std::vector<FaultEvent> fault_events;
  uint64_t integrity_violations = 0;
  uint64_t integrity_partitions_checked = 0;
  uint64_t integrity_writes_checked = 0;
  /// First few violation messages (diagnostics; empty on a clean run).
  std::vector<std::string> integrity_messages;

  // --- recovery track (populated — and emitted — only when
  // recovery.enabled; recovery-off runs produce byte-identical JSON to a
  // build without the subsystem) ---------------------------------------------
  bool recovery_active = false;
  /// Committed writes appended to the durable replication log.
  uint64_t log_entries = 0;
  /// Entries discarded by dirty crashes (never reached stable storage).
  uint64_t log_entries_lost = 0;
  uint64_t log_snapshots = 0;
  /// Node recoveries that replayed a durable log (vs rejoining empty).
  uint64_t recoveries_replayed = 0;
  uint64_t catch_ups_completed = 0;
  /// Log entries streamed by catch-up shipments.
  uint64_t catch_up_entries = 0;
  /// Last-resort elections of a stale (behind-durable or still-recovering)
  /// copy; also emitted inside the integrity block.
  uint64_t stale_elections = 0;
  /// Ledger writes re-verified against the log's reconstruction.
  uint64_t integrity_log_writes_checked = 0;
  struct CatchUpEvent {
    double t_ms = 0.0;  // completion time
    int node = 0;
    int partition = 0;
    double duration_ms = 0.0;
    uint64_t entries = 0;
  };
  std::vector<CatchUpEvent> catch_up_events;
  struct RecoveryEvent {
    double t_ms = 0.0;  // completion time (last catch-up settled)
    int node = 0;
    double duration_ms = 0.0;
    int partitions = 0;
  };
  std::vector<RecoveryEvent> recovery_events;

  // --- meta-protocol track (populated — and emitted — only when the run's
  // protocol was "meta"; other runs produce byte-identical JSON to a build
  // without the subsystem) ----------------------------------------------------
  bool meta_active = false;
  /// Child protocol names, assignment-index order (baseline first).
  std::vector<std::string> meta_children;
  /// Partitions per child under the final assignment, same order.
  std::vector<uint64_t> meta_assignment;
  struct ProtocolSwitchEvent {
    double t_ms = 0.0;
    int partition = 0;
    std::string from;
    std::string to;
  };
  /// Every completed per-partition flip, stamped with its simulated time
  /// (warmup and post-run drain included).
  std::vector<ProtocolSwitchEvent> protocol_switches;

  /// Structured emission: one self-contained JSON object with every field
  /// above (series included), for dashboards and sweep post-processing.
  std::string ToJson() const;
};

/// Snapshot of one closed stats window, delivered to OnWindow callbacks
/// while the experiment runs.
struct WindowStats {
  size_t index = 0;
  SimTime end_time = 0;
  double throughput = 0.0;      // txn/s committed in this window
  double bytes_per_txn = 0.0;   // network bytes per commit in this window
};

using WindowCallback = std::function<void(const WindowStats&)>;

/// One fully assembled run. Owns every component — simulator, cluster,
/// metrics, protocol (which in turn owns its predictor) and workload — and
/// drives the protocol lifecycle (Start/Stop) around the measured interval.
/// Obtain instances from ExperimentBuilder::Build; Run() executes the
/// warmup + measurement schedule and gathers the result. Components stay
/// accessible afterwards for inspection (tests, invariant checks).
class Experiment {
 public:
  ~Experiment();
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs warmup + measurement to completion. Single-shot: the second call
  /// returns the first run's result unchanged.
  ExperimentResult Run();

  const ExperimentConfig& config() const { return config_; }
  Simulator* sim() { return sim_.get(); }
  Cluster* cluster() { return cluster_.get(); }
  MetricsCollector* metrics() { return metrics_.get(); }
  Protocol* protocol() { return protocol_.get(); }
  WorkloadGenerator* workload() { return workload_.get(); }
  /// Non-null only when the config carries a chaos schedule.
  ChaosController* chaos() { return chaos_.get(); }
  int concurrency() const { return concurrency_; }

 private:
  friend class ExperimentBuilder;
  Experiment() = default;

  void ScheduleWindowTick(size_t index);
  const std::vector<uint64_t>& network_window_bytes() const;
  ExperimentResult Collect();

  ExperimentConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<MetricsCollector> metrics_;
  std::unique_ptr<Protocol> protocol_;
  std::unique_ptr<WorkloadGenerator> workload_;
  // Chaos machinery, created only for configs with a fault schedule.
  std::unique_ptr<ChaosController> chaos_;
  std::unique_ptr<CommitLedger> ledger_;
  // Owned (not Run-local): in-flight completion closures reference the
  // driver, and the simulator they sit in outlives Run().
  std::unique_ptr<ClosedLoopDriver> driver_;
  std::vector<WindowCallback> window_callbacks_;
  int concurrency_ = 0;
  bool ran_ = false;
  ExperimentResult result_;
};

/// Fluent assembly of an Experiment:
///
///   ExperimentResult res;
///   Status status = ExperimentBuilder()
///                       .Protocol("Lion")
///                       .Workload("ycsb")
///                       .Duration(2 * kSecond)
///                       .Run(&res);
///
/// (Build(&experiment) instead of Run(&res) to own the assembled
/// Experiment and drive it manually.) Build validates the whole config
/// (names against the registries, sane timing/topology) and reports
/// problems as Status instead of crashing.
class ExperimentBuilder {
 public:
  ExperimentBuilder() = default;
  /// Seeds every knob from an existing config (sweep loops mutate a base).
  explicit ExperimentBuilder(ExperimentConfig config)
      : config_(std::move(config)) {}

  ExperimentBuilder& Protocol(std::string name) {
    config_.protocol = std::move(name);
    return *this;
  }
  ExperimentBuilder& Workload(std::string name) {
    config_.workload = std::move(name);
    return *this;
  }
  ExperimentBuilder& Cluster(const ClusterConfig& cluster) {
    config_.cluster = cluster;
    return *this;
  }
  ExperimentBuilder& Ycsb(const YcsbConfig& ycsb) {
    config_.ycsb = ycsb;
    return *this;
  }
  ExperimentBuilder& Tpcc(const TpccConfig& tpcc) {
    config_.tpcc = tpcc;
    return *this;
  }
  ExperimentBuilder& Lion(const LionOptions& lion) {
    config_.lion = lion;
    return *this;
  }
  ExperimentBuilder& Predictor(const PredictorConfig& predictor) {
    config_.predictor = predictor;
    return *this;
  }
  ExperimentBuilder& Clay(const ClayConfig& clay) {
    config_.clay = clay;
    return *this;
  }
  ExperimentBuilder& DynamicPeriod(SimTime period) {
    config_.dynamic_period = period;
    return *this;
  }
  ExperimentBuilder& Warmup(SimTime warmup) {
    config_.warmup = warmup;
    return *this;
  }
  ExperimentBuilder& Duration(SimTime duration) {
    config_.duration = duration;
    return *this;
  }
  ExperimentBuilder& Seed(uint64_t seed) {
    config_.seed = seed;
    return *this;
  }
  ExperimentBuilder& Concurrency(int concurrency) {
    config_.concurrency = concurrency;
    return *this;
  }
  /// Registers a per-window metrics callback, invoked live at every closed
  /// stats window during Run(). May be called multiple times.
  ExperimentBuilder& OnWindow(WindowCallback callback) {
    window_callbacks_.push_back(std::move(callback));
    return *this;
  }

  /// Escape hatch for knobs without a dedicated setter.
  ExperimentConfig& config() { return config_; }
  const ExperimentConfig& config() const { return config_; }

  /// Validates the config; OK iff Build would succeed.
  Status Validate() const;

  /// Validates and assembles the full experiment.
  Status Build(std::unique_ptr<Experiment>* out) const;

  /// Build + Run in one step.
  Status Run(ExperimentResult* out) const;

 private:
  ExperimentConfig config_;
  std::vector<WindowCallback> window_callbacks_;
};

}  // namespace lion
