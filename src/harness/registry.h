// Self-registering factories for protocols and workloads.
//
// Each protocol/workload .cc file places a file-scope registrar stanza:
//
//   namespace {
//   const ProtocolRegistrar kRegisterTwoPc(
//       "2PC", ExecutionMode::kStandard,
//       [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
//         return std::make_unique<TwoPcProtocol>(ctx.cluster, ctx.metrics);
//       });
//   }  // namespace
//
// so adding a protocol or workload is a one-file operation: no harness
// edits, no string switch to extend. Lookup failures surface as Status
// (kNotFound), never as crashes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/experiment_config.h"

namespace lion {

class Cluster;
class MetricsCollector;
class PredictorInterface;
class Protocol;
class WorkloadGenerator;

/// Whether a protocol buffers transactions into epochs (batch) or executes
/// each as it arrives (standard). Drives the default closed-loop window.
enum class ExecutionMode { kStandard, kBatch };

/// Everything a protocol factory may need: the full experiment config (each
/// factory reads its own slice) plus the cluster substrate and metrics sink
/// the instance will run against.
struct ProtocolContext {
  const ExperimentConfig& config;
  Cluster* cluster = nullptr;
  MetricsCollector* metrics = nullptr;
};

using ProtocolFactory =
    std::function<std::unique_ptr<Protocol>(const ProtocolContext&)>;

class ProtocolRegistry {
 public:
  /// The process-wide registry all registrar stanzas feed.
  static ProtocolRegistry& Global();

  /// Registers `name`; kAlreadyExists if the name is taken.
  Status Register(const std::string& name, ExecutionMode mode,
                  ProtocolFactory factory);

  /// Removes `name` (test support); kNotFound if absent.
  Status Unregister(const std::string& name);

  /// Instantiates `name` against `ctx`. kNotFound lists the known names.
  Status Create(const std::string& name, const ProtocolContext& ctx,
                std::unique_ptr<Protocol>* out) const;

  /// OK iff `name` is registered; otherwise the canonical kNotFound
  /// listing the known names (the same status Create would return).
  Status CheckExists(const std::string& name) const;

  /// Execution mode of `name`; kNotFound if unregistered.
  Status Mode(const std::string& name, ExecutionMode* out) const;

  /// Convenience trait query: true iff `name` is registered as batch.
  bool IsBatch(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// Registered names whose execution mode is `mode`, sorted. Lets sweeps
  /// enumerate "every standard protocol" / "every batch protocol" from the
  /// registry instead of hard-coding name lists.
  std::vector<std::string> NamesByMode(ExecutionMode mode) const;

  /// Comma-joined Names(), for error messages and listings.
  std::string JoinedNames() const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    ExecutionMode mode;
    ProtocolFactory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Context handed to workload factories. `cluster` is live so workloads
/// that preload storage (TPC-C) can do so inside their factory.
struct WorkloadContext {
  const ExperimentConfig& config;
  Cluster* cluster = nullptr;
};

using WorkloadFactory =
    std::function<std::unique_ptr<WorkloadGenerator>(const WorkloadContext&)>;

class WorkloadRegistry {
 public:
  static WorkloadRegistry& Global();

  Status Register(const std::string& name, WorkloadFactory factory);
  Status Unregister(const std::string& name);
  Status Create(const std::string& name, const WorkloadContext& ctx,
                std::unique_ptr<WorkloadGenerator>* out) const;
  Status CheckExists(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;
  std::string JoinedNames() const;
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, WorkloadFactory> entries_;
};

/// The `predictor.kind` value that disables workload prediction without
/// unregistering anything: protocol factories skip predictor construction
/// entirely. Not a registry name — the registries only hold real
/// implementations.
inline constexpr const char* kPredictorOff = "off";

/// Context handed to predictor factories: the predictor's own config slice
/// plus the already-derived seed (the protocol factory offsets the
/// experiment seed so predictor RNG streams never alias workload streams).
struct PredictorContext {
  const PredictorConfig& config;
  uint64_t seed = 0;
};

using PredictorFactory =
    std::function<std::unique_ptr<PredictorInterface>(const PredictorContext&)>;

class PredictorRegistry {
 public:
  static PredictorRegistry& Global();

  Status Register(const std::string& name, PredictorFactory factory);
  Status Unregister(const std::string& name);
  Status Create(const std::string& name, const PredictorContext& ctx,
                std::unique_ptr<PredictorInterface>* out) const;
  /// OK iff `name` is registered; the kNotFound message lists the known
  /// names and mentions the "off" sentinel (callers check that separately).
  Status CheckExists(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;
  std::string JoinedNames() const;
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, PredictorFactory> entries_;
};

/// File-scope registration helpers. Construction registers into the global
/// registry; a duplicate name aborts at startup (a duplicate registrar is
/// a programming error, caught before any experiment runs).
struct ProtocolRegistrar {
  ProtocolRegistrar(const std::string& name, ExecutionMode mode,
                    ProtocolFactory factory);
};

struct WorkloadRegistrar {
  WorkloadRegistrar(const std::string& name, WorkloadFactory factory);
};

struct PredictorRegistrar {
  PredictorRegistrar(const std::string& name, PredictorFactory factory);
};

}  // namespace lion
