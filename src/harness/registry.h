// Self-registering factories for protocols, workloads, and predictors.
//
// Each protocol/workload/predictor .cc file places a file-scope registrar
// stanza:
//
//   namespace {
//   const ProtocolRegistrar kRegisterTwoPc(
//       "2PC", ExecutionMode::kStandard,
//       [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
//         return std::make_unique<TwoPcProtocol>(ctx.cluster, ctx.metrics);
//       });
//   }  // namespace
//
// so adding a protocol or workload is a one-file operation: no harness
// edits, no string switch to extend. Lookup failures surface as Status
// (kNotFound), never as crashes.
//
// All three registries share one RegistryBase template: the map, the
// Register/Unregister/Create/CheckExists plumbing, and the exact error
// message shapes live in one place, parameterized by the registry's kind
// noun ("protocol"/"workload"/"predictor") and an optional per-entry
// payload (the protocol registry stores each entry's ExecutionMode there).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "harness/experiment_config.h"

namespace lion {

class Cluster;
class MetricsCollector;
class PredictorInterface;
class Protocol;
class WorkloadGenerator;

/// Whether a protocol buffers transactions into epochs (batch) or executes
/// each as it arrives (standard). Drives the default closed-loop window.
enum class ExecutionMode { kStandard, kBatch };

/// Joins names with ", " for error messages and listings.
std::string JoinRegistryNames(const std::vector<std::string>& names);

/// Payload type for registries whose entries carry nothing beyond the
/// factory.
struct NoPayload {};

/// Common machinery behind the three registries. `Product` is the abstract
/// type the factories build, `Context` the argument they receive, and
/// `Payload` any per-entry metadata a concrete registry wants alongside the
/// factory. Error messages are parameterized by `kind` (a singular noun)
/// and an optional suffix appended inside the kNotFound listing's closing
/// parenthesis — the predictor registry uses it to mention its "off"
/// sentinel.
template <typename Product, typename Context, typename Payload = NoPayload>
class RegistryBase {
 public:
  using Factory = std::function<std::unique_ptr<Product>(const Context&)>;

  /// Registers `name`; kAlreadyExists if the name is taken.
  Status Register(const std::string& name, Payload payload, Factory factory) {
    if (name.empty()) return Status::InvalidArgument("empty " + kind_ + " name");
    if (factory == nullptr)
      return Status::InvalidArgument("null factory for " + kind_ + " " + name);
    auto [it, inserted] =
        entries_.emplace(name, Entry{std::move(payload), std::move(factory)});
    if (!inserted)
      return Status::AlreadyExists(kind_ + " already registered: " + name);
    return Status::OK();
  }

  /// Removes `name` (test support); kNotFound if absent.
  Status Unregister(const std::string& name) {
    if (entries_.erase(name) == 0)
      return Status::NotFound(kind_ + " not registered: " + name);
    return Status::OK();
  }

  /// OK iff `name` is registered; otherwise the canonical kNotFound
  /// listing the known names (the same status Create would return).
  Status CheckExists(const std::string& name) const {
    if (entries_.count(name) > 0) return Status::OK();
    return Status::NotFound("unknown " + kind_ + " \"" + name +
                            "\" (known: " + JoinedNames() + not_found_hint_ +
                            ")");
  }

  /// Instantiates `name` against `ctx`. kNotFound lists the known names.
  Status Create(const std::string& name, const Context& ctx,
                std::unique_ptr<Product>* out) const {
    Status exists = CheckExists(name);
    if (!exists.ok()) return exists;
    auto it = entries_.find(name);
    std::unique_ptr<Product> product = it->second.factory(ctx);
    if (product == nullptr)
      return Status::Internal("factory for " + kind_ + " " + name +
                              " returned null");
    *out = std::move(product);
    return Status::OK();
  }

  bool Contains(const std::string& name) const {
    return entries_.count(name) > 0;
  }

  /// All registered names, sorted.
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) names.push_back(name);
    return names;  // std::map iterates sorted
  }

  /// Comma-joined Names(), for error messages and listings.
  std::string JoinedNames() const { return JoinRegistryNames(Names()); }

  size_t size() const { return entries_.size(); }

 protected:
  struct Entry {
    Payload payload;
    Factory factory;
  };

  RegistryBase(std::string kind, std::string not_found_hint)
      : kind_(std::move(kind)), not_found_hint_(std::move(not_found_hint)) {}

  std::map<std::string, Entry> entries_;

 private:
  std::string kind_;
  // Appended before the closing ")" of the kNotFound known-names listing.
  std::string not_found_hint_;
};

/// Everything a protocol factory may need: the full experiment config (each
/// factory reads its own slice) plus the cluster substrate and metrics sink
/// the instance will run against.
struct ProtocolContext {
  const ExperimentConfig& config;
  Cluster* cluster = nullptr;
  MetricsCollector* metrics = nullptr;
};

using ProtocolFactory =
    std::function<std::unique_ptr<Protocol>(const ProtocolContext&)>;

class ProtocolRegistry
    : public RegistryBase<Protocol, ProtocolContext, ExecutionMode> {
 public:
  /// The process-wide registry all registrar stanzas feed.
  static ProtocolRegistry& Global();

  using RegistryBase::Register;  // (name, mode, factory)

  /// Execution mode of `name`; kNotFound if unregistered.
  Status Mode(const std::string& name, ExecutionMode* out) const;

  /// Convenience trait query: true iff `name` is registered as batch.
  bool IsBatch(const std::string& name) const;

  /// Registered names whose execution mode is `mode`, sorted. Lets sweeps
  /// enumerate "every standard protocol" / "every batch protocol" from the
  /// registry instead of hard-coding name lists.
  std::vector<std::string> NamesByMode(ExecutionMode mode) const;

 private:
  ProtocolRegistry() : RegistryBase("protocol", "") {}
};

/// Context handed to workload factories. `cluster` is live so workloads
/// that preload storage (TPC-C) can do so inside their factory.
struct WorkloadContext {
  const ExperimentConfig& config;
  Cluster* cluster = nullptr;
};

using WorkloadFactory =
    std::function<std::unique_ptr<WorkloadGenerator>(const WorkloadContext&)>;

class WorkloadRegistry : public RegistryBase<WorkloadGenerator, WorkloadContext> {
 public:
  static WorkloadRegistry& Global();

  Status Register(const std::string& name, WorkloadFactory factory) {
    return RegistryBase::Register(name, NoPayload{}, std::move(factory));
  }

 private:
  WorkloadRegistry() : RegistryBase("workload", "") {}
};

/// The `predictor.kind` value that disables workload prediction without
/// unregistering anything: protocol factories skip predictor construction
/// entirely. Not a registry name — the registries only hold real
/// implementations.
inline constexpr const char* kPredictorOff = "off";

/// Context handed to predictor factories: the predictor's own config slice
/// plus the already-derived seed (the protocol factory offsets the
/// experiment seed so predictor RNG streams never alias workload streams).
struct PredictorContext {
  const PredictorConfig& config;
  uint64_t seed = 0;
};

using PredictorFactory =
    std::function<std::unique_ptr<PredictorInterface>(const PredictorContext&)>;

class PredictorRegistry
    : public RegistryBase<PredictorInterface, PredictorContext> {
 public:
  static PredictorRegistry& Global();

  /// Registers `name`; rejects the reserved "off" sentinel.
  Status Register(const std::string& name, PredictorFactory factory) {
    if (name == kPredictorOff)
      return Status::InvalidArgument(
          "\"off\" is reserved (disables prediction), not a predictor name");
    return RegistryBase::Register(name, NoPayload{}, std::move(factory));
  }

 private:
  PredictorRegistry()
      : RegistryBase("predictor", "; \"off\" disables prediction") {}
};

/// File-scope registration helpers. Construction registers into the global
/// registry; a duplicate name aborts at startup (a duplicate registrar is
/// a programming error, caught before any experiment runs).
struct ProtocolRegistrar {
  ProtocolRegistrar(const std::string& name, ExecutionMode mode,
                    ProtocolFactory factory);
};

struct WorkloadRegistrar {
  WorkloadRegistrar(const std::string& name, WorkloadFactory factory);
};

struct PredictorRegistrar {
  PredictorRegistrar(const std::string& name, PredictorFactory factory);
};

}  // namespace lion
