#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/geo_placement.h"
#include "harness/config_schema.h"
#include "harness/driver.h"
#include "protocols/meta_protocol.h"
#include "replication/chaos.h"
#include "replication/integrity.h"
#include "sim/topology.h"

namespace lion {

namespace {

void AppendJsonField(std::string* out, const char* key, double value,
                     bool* first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += buf;
}

void AppendJsonField(std::string* out, const char* key, uint64_t value,
                     bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
}

void AppendJsonField(std::string* out, const char* key,
                     const std::string& value, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":\"";
  *out += value;  // names are registry identifiers: no escaping needed
  *out += "\"";
}

void AppendJsonSeries(std::string* out, const char* key,
                      const std::vector<double>& values, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
    if (i > 0) *out += ",";
    *out += buf;
  }
  *out += "]";
}

}  // namespace

std::string ExperimentResult::ToJson() const {
  std::string json = "{";
  bool first = true;
  AppendJsonField(&json, "protocol", protocol, &first);
  AppendJsonField(&json, "workload", workload, &first);
  AppendJsonField(&json, "seed", seed, &first);
  AppendJsonField(&json, "throughput_txn_s", throughput, &first);
  AppendJsonField(&json, "committed", committed, &first);
  AppendJsonField(&json, "aborts", aborts, &first);
  AppendJsonField(&json, "single_node", single_node, &first);
  AppendJsonField(&json, "remastered", remastered, &first);
  AppendJsonField(&json, "distributed", distributed, &first);
  AppendJsonField(&json, "p10_us", p10_us, &first);
  AppendJsonField(&json, "p50_us", p50_us, &first);
  AppendJsonField(&json, "p95_us", p95_us, &first);
  AppendJsonField(&json, "p99_us", p99_us, &first);
  AppendJsonField(&json, "bytes_per_txn", bytes_per_txn, &first);
  AppendJsonField(&json, "remasters", remasters, &first);
  AppendJsonField(&json, "migrations", migrations, &first);
  AppendJsonField(&json, "migrated_bytes", migrated_bytes, &first);
  AppendJsonField(&json, "window_ns", static_cast<uint64_t>(window), &first);
  json += ",\"breakdown_us\":{";
  bool bfirst = true;
  AppendJsonField(&json, "scheduling", breakdown.scheduling / 1000.0, &bfirst);
  AppendJsonField(&json, "execution", breakdown.execution / 1000.0, &bfirst);
  AppendJsonField(&json, "commit", breakdown.commit / 1000.0, &bfirst);
  AppendJsonField(&json, "replication", breakdown.replication / 1000.0,
                  &bfirst);
  AppendJsonField(&json, "other", breakdown.other / 1000.0, &bfirst);
  json += "}";
  first = false;
  AppendJsonSeries(&json, "window_throughput", window_throughput, &first);
  AppendJsonSeries(&json, "window_bytes_per_txn", window_bytes_per_txn,
                   &first);
  if (chaos_active) {
    // Chaos-only fields live behind this gate so that chaos-off runs emit
    // byte-identical JSON to a build without the subsystem.
    AppendJsonField(&json, "aborted_unavailable", aborted_unavailable, &first);
    AppendJsonField(&json, "failovers", failovers, &first);
    AppendJsonField(&json, "elections_rerun", elections_rerun, &first);
    AppendJsonField(&json, "messages_dropped", messages_dropped, &first);
    AppendJsonSeries(&json, "window_availability", window_availability,
                     &first);
    json += ",\"fault_events\":[";
    for (size_t i = 0; i < fault_events.size(); ++i) {
      if (i > 0) json += ",";
      json += "{";
      bool ffirst = true;
      AppendJsonField(&json, "t_ms", fault_events[i].t_ms, &ffirst);
      AppendJsonField(&json, "event", fault_events[i].description, &ffirst);
      json += "}";
    }
    json += "],\"integrity\":{";
    bool ifirst = true;
    AppendJsonField(&json, "violations", integrity_violations, &ifirst);
    AppendJsonField(&json, "partitions_checked", integrity_partitions_checked,
                    &ifirst);
    AppendJsonField(&json, "writes_checked", integrity_writes_checked,
                    &ifirst);
    if (recovery_active) {
      // Recovery-only integrity fields stay behind the recovery gate so
      // chaos-on / recovery-off runs keep their pre-recovery JSON shape.
      AppendJsonField(&json, "stale_elections", stale_elections, &ifirst);
      AppendJsonField(&json, "log_writes_checked",
                      integrity_log_writes_checked, &ifirst);
    }
    json += ",\"messages\":[";
    for (size_t i = 0; i < integrity_messages.size(); ++i) {
      if (i > 0) json += ",";
      json += "\"";
      json += integrity_messages[i];  // checker messages: no quotes/escapes
      json += "\"";
    }
    json += "]}";
  }
  if (recovery_active) {
    // Recovery-only fields live behind this gate so that recovery-off runs
    // emit byte-identical JSON to a build without the subsystem.
    json += ",\"recovery\":{";
    bool rfirst = true;
    AppendJsonField(&json, "log_entries", log_entries, &rfirst);
    AppendJsonField(&json, "log_entries_lost", log_entries_lost, &rfirst);
    AppendJsonField(&json, "log_snapshots", log_snapshots, &rfirst);
    AppendJsonField(&json, "recoveries_replayed", recoveries_replayed,
                    &rfirst);
    AppendJsonField(&json, "catch_ups", catch_ups_completed, &rfirst);
    AppendJsonField(&json, "catch_up_entries", catch_up_entries, &rfirst);
    AppendJsonField(&json, "stale_elections", stale_elections, &rfirst);
    json += ",\"catch_up_events\":[";
    for (size_t i = 0; i < catch_up_events.size(); ++i) {
      if (i > 0) json += ",";
      json += "{";
      bool cfirst = true;
      AppendJsonField(&json, "t_ms", catch_up_events[i].t_ms, &cfirst);
      AppendJsonField(&json, "node",
                      static_cast<uint64_t>(catch_up_events[i].node), &cfirst);
      AppendJsonField(&json, "partition",
                      static_cast<uint64_t>(catch_up_events[i].partition),
                      &cfirst);
      AppendJsonField(&json, "duration_ms", catch_up_events[i].duration_ms,
                      &cfirst);
      AppendJsonField(&json, "entries", catch_up_events[i].entries, &cfirst);
      json += "}";
    }
    json += "],\"recovery_events\":[";
    for (size_t i = 0; i < recovery_events.size(); ++i) {
      if (i > 0) json += ",";
      json += "{";
      bool rfirst2 = true;
      AppendJsonField(&json, "t_ms", recovery_events[i].t_ms, &rfirst2);
      AppendJsonField(&json, "node",
                      static_cast<uint64_t>(recovery_events[i].node),
                      &rfirst2);
      AppendJsonField(&json, "duration_ms", recovery_events[i].duration_ms,
                      &rfirst2);
      AppendJsonField(&json, "partitions",
                      static_cast<uint64_t>(recovery_events[i].partitions),
                      &rfirst2);
      json += "}";
    }
    json += "]}";
  }
  if (meta_active) {
    // Meta-only fields live behind this gate so non-meta runs emit
    // byte-identical JSON to a build without the subsystem.
    json += ",\"meta\":{\"children\":[";
    for (size_t i = 0; i < meta_children.size(); ++i) {
      if (i > 0) json += ",";
      json += "\"" + meta_children[i] + "\"";
    }
    json += "],\"final_assignment\":[";
    for (size_t i = 0; i < meta_assignment.size(); ++i) {
      if (i > 0) json += ",";
      json += std::to_string(meta_assignment[i]);
    }
    json += "],\"switches\":" + std::to_string(protocol_switches.size());
    json += "},\"protocol_switches\":[";
    for (size_t i = 0; i < protocol_switches.size(); ++i) {
      if (i > 0) json += ",";
      json += "{";
      bool sfirst = true;
      AppendJsonField(&json, "t_ms", protocol_switches[i].t_ms, &sfirst);
      AppendJsonField(&json, "partition",
                      static_cast<uint64_t>(protocol_switches[i].partition),
                      &sfirst);
      AppendJsonField(&json, "from", protocol_switches[i].from, &sfirst);
      AppendJsonField(&json, "to", protocol_switches[i].to, &sfirst);
      json += "}";
    }
    json += "]";
  }
  json += "}";
  return json;
}

Status ExperimentBuilder::Validate() const {
  // Name existence resolves against the registries (kNotFound lists the
  // known names); every value constraint — positive durations and timer
  // intervals, sane topology, [0,1] ratios — is declared field-by-field in
  // the config schema and enforced here with dotted-path error messages.
  Status protocol_exists =
      ProtocolRegistry::Global().CheckExists(config_.protocol);
  if (!protocol_exists.ok()) return protocol_exists;
  Status workload_exists =
      WorkloadRegistry::Global().CheckExists(config_.workload);
  if (!workload_exists.ok()) return workload_exists;
  // The predictor kind resolves through its registry at protocol-factory
  // time (protocols that never construct one ignore it), so an unknown
  // kind must be rejected here, before any factory runs.
  if (config_.predictor.kind != kPredictorOff) {
    Status predictor_exists =
        PredictorRegistry::Global().CheckExists(config_.predictor.kind);
    if (!predictor_exists.ok()) return predictor_exists;
  }
  Status schema_valid = ValidateExperimentConfig(config_);
  if (!schema_valid.ok()) return schema_valid;
  // Region geometry is cross-field (matrix sizes depend on regions, node
  // assignments on num_nodes), beyond per-field schema checks.
  Status topo_valid = Topology::Validate(config_.cluster.net,
                                         config_.cluster.num_nodes);
  if (!topo_valid.ok()) return topo_valid;
  Status geo_valid = GeoPlacement::Validate(config_.lion, config_.cluster);
  if (!geo_valid.ok()) return geo_valid;
  // Chaos schedules reference concrete node/partition ids — cross-field
  // like the topology checks above.
  Status chaos_valid = ChaosController::Validate(config_.chaos, config_.cluster);
  if (!chaos_valid.ok()) return chaos_valid;
  // The meta protocol's children resolve through the registry at factory
  // time; reject unknown names (and self-nesting) here so the failure
  // carries the offending field instead of a generic factory error.
  if (config_.protocol == "meta") {
    const std::pair<const char*, const std::string*> children[] = {
        {"meta.baseline", &config_.meta.baseline},
        {"meta.single_master", &config_.meta.single_master},
        {"meta.wan", &config_.meta.wan},
    };
    for (const auto& [field, name] : children) {
      if (name->empty()) continue;  // meta.wan is optional
      if (*name == "meta") {
        return Status::InvalidArgument(std::string(field) +
                                       ": meta cannot nest itself");
      }
      Status child_exists = ProtocolRegistry::Global().CheckExists(*name);
      if (!child_exists.ok()) {
        return Status::InvalidArgument(std::string(field) + ": " +
                                       child_exists.message());
      }
    }
  }
  return Status::OK();
}

Status ExperimentBuilder::Build(std::unique_ptr<Experiment>* out) const {
  Status valid = Validate();
  if (!valid.ok()) return valid;

  auto ex = std::unique_ptr<Experiment>(new Experiment());
  ex->config_ = config_;
  ex->window_callbacks_ = window_callbacks_;
  ex->sim_ = std::make_unique<Simulator>(config_.seed, config_.sim);
  ex->cluster_ = std::make_unique<lion::Cluster>(ex->sim_.get(),
                                                 config_.cluster);
  if (RecoveryActive(config_.recovery)) {
    // Before any component can append a write, so the log's accounting
    // covers the whole run.
    ex->cluster_->EnableRecovery(config_.recovery);
  }
  ex->metrics_ =
      std::make_unique<MetricsCollector>(config_.cluster.net.stats_window);

  ProtocolContext pctx{config_, ex->cluster_.get(), ex->metrics_.get()};
  Status s = ProtocolRegistry::Global().Create(config_.protocol, pctx,
                                               &ex->protocol_);
  if (!s.ok()) return s;

  WorkloadContext wctx{config_, ex->cluster_.get()};
  s = WorkloadRegistry::Global().Create(config_.workload, wctx,
                                        &ex->workload_);
  if (!s.ok()) return s;

  if (ChaosActive(config_.chaos)) {
    ex->chaos_ = std::make_unique<ChaosController>(ex->cluster_.get(),
                                                   config_.chaos);
    if (config_.chaos.track_commits) {
      ex->ledger_ = std::make_unique<CommitLedger>(
          config_.cluster.total_partitions());
    }
  }

  ex->concurrency_ = config_.concurrency;
  if (ex->concurrency_ == 0) {
    ex->concurrency_ =
        ProtocolRegistry::Global().IsBatch(config_.protocol)
            ? 4000
            : config_.cluster.num_nodes * config_.cluster.workers_per_node;
  }

  *out = std::move(ex);
  return Status::OK();
}

Status ExperimentBuilder::Run(ExperimentResult* out) const {
  std::unique_ptr<Experiment> ex;
  Status s = Build(&ex);
  if (!s.ok()) return s;
  *out = ex->Run();
  return Status::OK();
}

Experiment::~Experiment() = default;

void Experiment::ScheduleWindowTick(size_t index) {
  SimTime window = metrics_->window();
  SimTime boundary = static_cast<SimTime>(index + 1) * window;
  // Weak: the window reporter is background machinery and must not keep
  // RunUntilIdle-style quiescence from terminating.
  sim_->ScheduleWeak(boundary - sim_->Now(), [this, index]() {
    WindowStats stats;
    stats.index = index;
    stats.end_time = sim_->Now();
    stats.throughput = index < metrics_->window_commits().size()
                           ? metrics_->WindowThroughput(index)
                           : 0.0;
    const auto& bytes = network_window_bytes();
    const auto& commits = metrics_->window_commits();
    if (index < bytes.size() && index < commits.size() &&
        commits[index] > 0) {
      stats.bytes_per_txn = static_cast<double>(bytes[index]) /
                            static_cast<double>(commits[index]);
    }
    for (WindowCallback& cb : window_callbacks_) cb(stats);
    // Only re-arm if the next boundary still falls inside the run —
    // otherwise a stale tick would outlive Run() and fire a spurious
    // callback if the caller advances the simulator afterwards.
    if (sim_->Now() + metrics_->window() <=
        config_.warmup + config_.duration) {
      ScheduleWindowTick(index + 1);
    }
  });
}

const std::vector<uint64_t>& Experiment::network_window_bytes() const {
  return cluster_->network().window_bytes();
}

ExperimentResult Experiment::Run() {
  if (ran_) return result_;
  ran_ = true;

  cluster_->Start();
  protocol_->Start();
  if (chaos_) {
    // Arm after protocol Start so scripted faults hit the protocol's
    // initial placement (geo replicas included), exactly like a live hit.
    protocol_->EnableDegradation(&config_.chaos);
    chaos_->injector().SetGeoPlacement(protocol_->geo_placement());
    if (ledger_) {
      CommitLedger* ledger = ledger_.get();
      metrics_->SetCommitListener(
          [ledger](const Transaction& txn) { ledger->Record(txn); });
    }
    chaos_->Arm();
  }
  driver_ = std::make_unique<ClosedLoopDriver>(
      sim_.get(), protocol_.get(), workload_.get(), metrics_.get(),
      concurrency_);
  driver_->Start();
  // Same guard as the re-arm below: only schedule ticks whose boundary
  // falls inside the run, so none outlive Run().
  if (!window_callbacks_.empty() &&
      metrics_->window() <= config_.warmup + config_.duration) {
    ScheduleWindowTick(0);
  }

  sim_->RunUntil(config_.warmup);
  metrics_->StartMeasurement(sim_->Now());
  sim_->RunUntil(config_.warmup + config_.duration);
  driver_->Stop();
  protocol_->Stop();

  // Snapshot the measured interval first: the chaos drain below may retire
  // further (post-measurement) work that must not shift the reported
  // numbers.
  result_ = Collect();

  if (chaos_) {
    // Quiesce so in-flight failovers, retransmissions and deferred retries
    // settle before the invariants are checked.
    sim_->RunUntilIdle();
    result_.chaos_active = true;
    result_.aborted_unavailable = metrics_->aborted_unavailable();
    result_.failovers = chaos_->injector().failovers_completed();
    result_.elections_rerun = chaos_->injector().elections_rerun();
    result_.messages_dropped = cluster_->network().messages_dropped();
    for (size_t i = 0; i < result_.window_throughput.size(); ++i) {
      result_.window_availability.push_back(metrics_->WindowAvailability(i));
    }
    for (const ChaosController::Fired& f : chaos_->fired()) {
      result_.fault_events.push_back(ExperimentResult::FaultEvent{
          static_cast<double>(f.at) / 1e6, f.description});
    }
    if (config_.chaos.check_integrity) {
      IntegrityReport report = CheckClusterIntegrity(
          cluster_.get(), &chaos_->injector(), ledger_.get());
      result_.integrity_violations = report.violations.size();
      result_.integrity_partitions_checked = report.partitions_checked;
      result_.integrity_writes_checked = report.committed_writes_checked;
      result_.integrity_log_writes_checked = report.log_writes_checked;
      for (size_t i = 0; i < report.violations.size() && i < 5; ++i) {
        result_.integrity_messages.push_back(report.violations[i]);
      }
    }
  }
  if (cluster_->recovery_log() != nullptr) {
    // After the chaos drain (when one ran) so catch-ups completing during
    // the quiesce land in the records too.
    const RecoveryLog* log = cluster_->recovery_log();
    result_.recovery_active = true;
    result_.log_entries = log->entries_appended();
    result_.log_entries_lost = log->total_lost_entries();
    result_.log_snapshots = log->snapshots_taken();
    result_.catch_up_entries = cluster_->replication().catch_up_entries_shipped();
    if (chaos_) {
      const FailureInjector& injector = chaos_->injector();
      result_.stale_elections = injector.stale_elections();
      result_.recoveries_replayed = injector.recoveries_replayed();
      result_.catch_ups_completed = injector.catch_ups().size();
      for (const FailureInjector::CatchUpRecord& c : injector.catch_ups()) {
        result_.catch_up_events.push_back(ExperimentResult::CatchUpEvent{
            static_cast<double>(c.finished) / 1e6, static_cast<int>(c.node),
            static_cast<int>(c.partition),
            static_cast<double>(c.finished - c.started) / 1e6, c.entries});
      }
      for (const FailureInjector::RecoveryRecord& r : injector.recoveries()) {
        result_.recovery_events.push_back(ExperimentResult::RecoveryEvent{
            static_cast<double>(r.finished) / 1e6, static_cast<int>(r.node),
            static_cast<double>(r.finished - r.started) / 1e6, r.partitions});
      }
    }
  }
  if (auto* meta = dynamic_cast<MetaProtocol*>(protocol_.get())) {
    // After the chaos drain (when one ran) so flips completing during the
    // quiesce land in the timeline too.
    result_.meta_active = true;
    for (size_t i = 0; i < meta->num_children(); ++i) {
      result_.meta_children.push_back(meta->child_name(i));
    }
    result_.meta_assignment = meta->AssignmentCounts();
    for (const MetricsCollector::ProtocolSwitch& s :
         metrics_->protocol_switches()) {
      result_.protocol_switches.push_back(ExperimentResult::ProtocolSwitchEvent{
          static_cast<double>(s.at) / 1e6, static_cast<int>(s.partition),
          s.from, s.to});
    }
  }
  return result_;
}

ExperimentResult Experiment::Collect() {
  ExperimentResult res;
  res.protocol = config_.protocol;
  res.workload = config_.workload;
  res.seed = config_.seed;
  res.throughput = metrics_->Throughput(sim_->Now());
  res.committed = metrics_->committed();
  res.aborts = metrics_->aborts();
  res.single_node = metrics_->single_node();
  res.remastered = metrics_->remastered();
  res.distributed = metrics_->distributed();
  res.p10_us = metrics_->latency().Percentile(0.10) / 1000.0;
  res.p50_us = metrics_->latency().Percentile(0.50) / 1000.0;
  res.p95_us = metrics_->latency().Percentile(0.95) / 1000.0;
  res.p99_us = metrics_->latency().Percentile(0.99) / 1000.0;
  res.breakdown = metrics_->breakdown_sum();
  res.window = metrics_->window();

  const auto& commits = metrics_->window_commits();
  const auto& bytes = cluster_->network().window_bytes();
  for (size_t i = 0; i < commits.size(); ++i) {
    res.window_throughput.push_back(metrics_->WindowThroughput(i));
    double b = i < bytes.size() ? static_cast<double>(bytes[i]) : 0.0;
    res.window_bytes_per_txn.push_back(
        commits[i] > 0 ? b / static_cast<double>(commits[i]) : 0.0);
  }
  if (metrics_->committed() > 0) {
    res.bytes_per_txn =
        static_cast<double>(cluster_->network().total_bytes()) /
        static_cast<double>(metrics_->committed() +
                            std::max<uint64_t>(1, metrics_->aborts()));
  }
  res.remasters = cluster_->remaster().remasters_completed();
  res.migrations = cluster_->migration().migrations_completed();
  res.migrated_bytes = cluster_->migration().migrated_bytes();
  return res;
}

}  // namespace lion
