#include "harness/experiment.h"

#include <algorithm>

#include "harness/driver.h"
#include "protocols/aria.h"
#include "protocols/calvin.h"
#include "protocols/hermes.h"
#include "protocols/leap.h"
#include "protocols/lotus.h"
#include "protocols/star.h"
#include "protocols/twopc.h"

namespace lion {

bool IsBatchProtocol(const std::string& p) {
  return p == "Star" || p == "Calvin" || p == "Hermes" || p == "Aria" ||
         p == "Lotus" || p == "Lion(RB)" || p == "Lion(B)";
}

std::unique_ptr<Protocol> MakeProtocol(
    const ExperimentConfig& cfg, Cluster* cluster, MetricsCollector* metrics,
    std::unique_ptr<PredictorInterface>* predictor_out) {
  const std::string& name = cfg.protocol;
  if (name == "2PC") return std::make_unique<TwoPcProtocol>(cluster, metrics);
  if (name == "Leap") return std::make_unique<LeapProtocol>(cluster, metrics);
  if (name == "Clay")
    return std::make_unique<ClayProtocol>(cluster, metrics, cfg.clay);
  if (name == "Star") return std::make_unique<StarProtocol>(cluster, metrics);
  if (name == "Calvin")
    return std::make_unique<CalvinProtocol>(cluster, metrics);
  if (name == "Hermes")
    return std::make_unique<HermesProtocol>(cluster, metrics);
  if (name == "Aria") return std::make_unique<AriaProtocol>(cluster, metrics);
  if (name == "Lotus") return std::make_unique<LotusProtocol>(cluster, metrics);

  // Lion family (Table II variants).
  LionOptions opts = cfg.lion;
  bool want_predictor = false;
  opts.group_commit = false;  // batch variants override below
  if (name == "Lion(S)") {
    opts.planner.strategy = PartitioningStrategy::kSchism;
    opts.batch_mode = false;
  } else if (name == "Lion(SW)") {
    opts.planner.strategy = PartitioningStrategy::kSchism;
    opts.batch_mode = false;
    want_predictor = true;
  } else if (name == "Lion(R)") {
    opts.planner.strategy = PartitioningStrategy::kReplicaRearrangement;
    opts.batch_mode = false;
  } else if (name == "Lion(RW)") {
    opts.planner.strategy = PartitioningStrategy::kReplicaRearrangement;
    opts.batch_mode = false;
    want_predictor = true;
  } else if (name == "Lion(RB)") {
    opts.planner.strategy = PartitioningStrategy::kReplicaRearrangement;
    opts.batch_mode = true;
    opts.group_commit = true;
  } else if (name == "Lion(B)") {
    opts.planner.strategy = PartitioningStrategy::kReplicaRearrangement;
    opts.batch_mode = true;
    opts.group_commit = true;
    want_predictor = true;
  } else if (name == "Lion") {
    // Standard-execution Lion with prediction (the non-batch figures).
    opts.planner.strategy = PartitioningStrategy::kReplicaRearrangement;
    opts.batch_mode = false;
    want_predictor = true;
  } else {
    return nullptr;
  }

  PredictorInterface* predictor = nullptr;
  if (want_predictor && predictor_out != nullptr) {
    auto p = std::make_unique<LstmPredictor>(cfg.predictor, cfg.seed + 101);
    predictor = p.get();
    *predictor_out = std::move(p);
  }
  return std::make_unique<LionProtocol>(cluster, metrics, opts, predictor);
}

namespace {

std::unique_ptr<WorkloadGenerator> MakeWorkload(const ExperimentConfig& cfg,
                                                Cluster* cluster) {
  if (cfg.workload == "ycsb") {
    return std::make_unique<YcsbWorkload>(cfg.cluster, cfg.ycsb);
  }
  if (cfg.workload == "tpcc") {
    auto w = std::make_unique<TpccWorkload>(cfg.cluster, cfg.tpcc);
    w->Load(cluster);
    return w;
  }
  if (cfg.workload == "ycsb-hotspot-interval") {
    return std::make_unique<DynamicYcsbWorkload>(
        cfg.cluster,
        DynamicYcsbWorkload::HotspotInterval(cfg.cluster, cfg.dynamic_period));
  }
  if (cfg.workload == "ycsb-hotspot-position") {
    return std::make_unique<DynamicYcsbWorkload>(
        cfg.cluster,
        DynamicYcsbWorkload::HotspotPosition(cfg.cluster, cfg.dynamic_period));
  }
  return nullptr;
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& cfg) {
  Simulator sim(cfg.seed);
  Cluster cluster(&sim, cfg.cluster);
  MetricsCollector metrics(cfg.cluster.net.stats_window);
  std::unique_ptr<PredictorInterface> predictor;
  std::unique_ptr<Protocol> protocol =
      MakeProtocol(cfg, &cluster, &metrics, &predictor);
  std::unique_ptr<WorkloadGenerator> workload = MakeWorkload(cfg, &cluster);

  int concurrency = cfg.concurrency;
  if (concurrency == 0) {
    concurrency = IsBatchProtocol(cfg.protocol)
                      ? 4000
                      : cfg.cluster.num_nodes * cfg.cluster.workers_per_node;
  }

  cluster.Start();
  protocol->Start();
  ClosedLoopDriver driver(&sim, protocol.get(), workload.get(), &metrics,
                          concurrency);
  driver.Start();

  sim.RunUntil(cfg.warmup);
  metrics.StartMeasurement(sim.Now());
  sim.RunUntil(cfg.warmup + cfg.duration);
  SimTime measured_end = sim.Now();
  double throughput = metrics.Throughput(measured_end);
  driver.Stop();

  ExperimentResult res;
  res.protocol = cfg.protocol;
  res.throughput = throughput;
  res.committed = metrics.committed();
  res.aborts = metrics.aborts();
  res.single_node = metrics.single_node();
  res.remastered = metrics.remastered();
  res.distributed = metrics.distributed();
  res.p10_us = metrics.latency().Percentile(0.10) / 1000.0;
  res.p50_us = metrics.latency().Percentile(0.50) / 1000.0;
  res.p95_us = metrics.latency().Percentile(0.95) / 1000.0;
  res.p99_us = metrics.latency().Percentile(0.99) / 1000.0;
  res.breakdown = metrics.breakdown_sum();
  res.window = metrics.window();

  const auto& commits = metrics.window_commits();
  const auto& bytes = cluster.network().window_bytes();
  for (size_t i = 0; i < commits.size(); ++i) {
    res.window_throughput.push_back(metrics.WindowThroughput(i));
    double b = i < bytes.size() ? static_cast<double>(bytes[i]) : 0.0;
    res.window_bytes_per_txn.push_back(
        commits[i] > 0 ? b / static_cast<double>(commits[i]) : 0.0);
  }
  if (metrics.committed() > 0) {
    res.bytes_per_txn = static_cast<double>(cluster.network().total_bytes()) /
                        static_cast<double>(metrics.committed() +
                                            std::max<uint64_t>(1, metrics.aborts()));
  }
  res.remasters = cluster.remaster().remasters_completed();
  res.migrations = cluster.migration().migrations_completed();
  res.migrated_bytes = cluster.migration().migrated_bytes();
  return res;
}

}  // namespace lion
