#include "harness/sweep_spec.h"

#include <utility>

#include "harness/config_schema.h"

namespace lion {

namespace {

/// "<leaf>=<value>": the default point-name fragment for one axis value.
std::string DefaultLabel(const std::string& path, const Json& v) {
  size_t dot = path.rfind('.');
  std::string leaf = dot == std::string::npos ? path : path.substr(dot + 1);
  // Strings drop their quotes in labels ("protocol=Lion", not
  // "protocol=\"Lion\""); other scalars use their JSON form.
  return leaf + "=" + (v.is_string() ? v.str() : v.Dump());
}

Status ParseAxis(const Json& v, size_t index, SweepAxis* out) {
  std::string where = "axes[" + std::to_string(index) + "]";
  if (!v.is_object())
    return Status::InvalidArgument(where + ": expected object, got " +
                                   JsonTypeName(v.type()));
  for (const Json::Member& m : v.members()) {
    if (m.first == "path") {
      if (!m.second.is_string())
        return Status::InvalidArgument(where + ".path: expected string");
      out->path = m.second.str();
    } else if (m.first == "values") {
      if (!m.second.is_array())
        return Status::InvalidArgument(where + ".values: expected array");
      out->values = m.second.items();
    } else if (m.first == "labels") {
      if (!m.second.is_array())
        return Status::InvalidArgument(where + ".labels: expected array");
      for (const Json& l : m.second.items()) {
        if (!l.is_string())
          return Status::InvalidArgument(where +
                                         ".labels: expected strings");
        out->labels.push_back(l.str());
      }
    } else {
      return Status::InvalidArgument(where + "." + m.first +
                                     ": unknown axis key (path, values, "
                                     "labels)");
    }
  }
  if (out->path.empty())
    return Status::InvalidArgument(where + ": \"path\" is required");
  if (out->values.empty())
    return Status::InvalidArgument(where + ": \"values\" must be non-empty");
  if (!out->labels.empty() && out->labels.size() != out->values.size())
    return Status::InvalidArgument(
        where + ": " + std::to_string(out->labels.size()) + " labels for " +
        std::to_string(out->values.size()) + " values");
  if (out->labels.empty()) {
    for (const Json& value : out->values)
      out->labels.push_back(DefaultLabel(out->path, value));
  }
  return Status::OK();
}

}  // namespace

Status SweepSpec::FromJson(const Json& v, SweepSpec* out) {
  *out = SweepSpec{};
  if (!v.is_object())
    return Status::InvalidArgument(std::string("sweep spec: expected object, "
                                               "got ") +
                                   JsonTypeName(v.type()));
  for (const Json::Member& m : v.members()) {
    if (m.first == "name") {
      if (!m.second.is_string())
        return Status::InvalidArgument("name: expected string");
      out->name = m.second.str();
    } else if (m.first == "base") {
      Status s = ExperimentConfigSchema().ParseAt(m.second, &out->base,
                                                  "base");
      if (!s.ok()) return s;
    } else if (m.first == "axes") {
      if (!m.second.is_array())
        return Status::InvalidArgument("axes: expected array");
      for (size_t i = 0; i < m.second.items().size(); ++i) {
        SweepAxis axis;
        Status s = ParseAxis(m.second.items()[i], i, &axis);
        if (!s.ok()) return s;
        out->axes.push_back(std::move(axis));
      }
    } else {
      return Status::InvalidArgument(m.first +
                                     ": unknown sweep spec key (name, base, "
                                     "axes)");
    }
  }
  if (out->name.empty())
    return Status::InvalidArgument("sweep spec: \"name\" is required");
  return Status::OK();
}

size_t SweepSpec::num_points() const {
  size_t n = 1;
  for (const SweepAxis& axis : axes) n *= axis.values.size();
  return n;
}

Status SweepSpec::Expand(std::vector<SweepPoint>* out) const {
  // Odometer over the axes, first axis outermost — the declaration order of
  // a nested C++ sweep loop.
  std::vector<size_t> index(axes.size(), 0);
  const size_t total = num_points();
  for (size_t point = 0; point < total; ++point) {
    SweepPoint sp;
    sp.name = name;
    sp.config = base;
    for (size_t a = 0; a < axes.size(); ++a) {
      const SweepAxis& axis = axes[a];
      const Json& value = axis.values[index[a]];
      Status s = ExperimentConfigSchema().SetJsonByPath(&sp.config, axis.path,
                                                        value);
      if (!s.ok())
        return Status::InvalidArgument("axes[" + std::to_string(a) + "] (" +
                                       axis.path + "): " + s.message());
      sp.name += "/" + axis.labels[index[a]];
    }
    out->push_back(std::move(sp));
    for (size_t a = axes.size(); a-- > 0;) {
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return Status::OK();
}

Status ExpandSweepDocument(const Json& doc, std::vector<SweepPoint>* out) {
  std::vector<const Json*> specs;
  if (doc.is_array()) {
    for (const Json& v : doc.items()) specs.push_back(&v);
  } else {
    specs.push_back(&doc);
  }
  if (specs.empty())
    return Status::InvalidArgument("sweep document: empty spec array");
  for (const Json* v : specs) {
    SweepSpec spec;
    Status s = SweepSpec::FromJson(*v, &spec);
    if (!s.ok()) return s;
    s = spec.Expand(out);
    if (!s.ok())
      return Status::InvalidArgument("sweep \"" + spec.name +
                                     "\": " + s.message());
  }
  return Status::OK();
}

Status LoadSweepFile(const std::string& path, std::vector<SweepPoint>* out) {
  Json doc;
  Status s = Json::ParseFile(path, &doc);
  if (!s.ok()) return s;
  return ExpandSweepDocument(doc, out);
}

}  // namespace lion
