// Multi-threaded experiment sweep: fan a config grid out across OS threads.
//
// Each Experiment owns its entire component stack (simulator, cluster,
// metrics, protocol, workload — see harness/experiment.h), so independent
// runs share no mutable state and can execute concurrently. The registries
// are populated during static initialization and only read afterwards,
// which keeps ExperimentBuilder::Run thread-safe.
//
// Determinism: every run carries its own seed inside its config, and
// outcomes are stored at their Add() index, so the merged result — and the
// merged JSON — is byte-identical no matter how many threads execute the
// sweep or how they interleave.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "harness/experiment.h"
#include "harness/experiment_config.h"

namespace lion {

/// One labeled grid point. Labels name the point in reports and in the
/// merged JSON ("Fig7a/2PC/cross=20"); uniqueness is the caller's business.
struct SweepPoint {
  std::string name;
  ExperimentConfig config;
};

/// What happened to one grid point. `result` is meaningful iff `status` is
/// OK; a failed Build/Run (unknown protocol name, invalid config) is
/// reported here instead of aborting the rest of the sweep.
struct SweepOutcome {
  std::string name;
  Status status;
  ExperimentResult result;
};

struct SweepOptions {
  using ProgressFn =
      std::function<void(size_t done, size_t total, const SweepOutcome&)>;

  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  /// The pool never exceeds the number of points.
  int threads = 0;
  /// Optional progress hook, called after each run completes. Serialized by
  /// an internal mutex but invoked from worker threads, in completion (not
  /// Add) order — do not touch sweep state from it.
  ProgressFn on_progress;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = SweepOptions{});

  void Add(std::string name, ExperimentConfig config);
  void Add(SweepPoint point);

  size_t size() const { return points_.size(); }

  /// Executes every added point across the pool and returns outcomes in
  /// Add() order. May be called once per set of added points; points stay
  /// added, so a second Run() re-executes the same grid.
  std::vector<SweepOutcome> Run();

  /// Merges outcomes into one sweep-level JSON document:
  ///   {"sweep_size":N,"runs":[{"name":...,"status":"OK","result":{...}},
  ///                           {"name":...,"status":"NOT_FOUND","error":"..."}]}
  static std::string MergeJson(const std::vector<SweepOutcome>& outcomes);

 private:
  SweepOptions options_;
  std::vector<SweepPoint> points_;
};

}  // namespace lion
