// Closed-loop transaction driver (the paper's distributor node).
#pragma once

#include <cstdint>

#include "metrics/metrics.h"
#include "protocols/protocol.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace lion {

/// Keeps a fixed number of transactions outstanding against a protocol:
/// each completion immediately generates and submits the next transaction.
/// This matches the closed-loop client model of the paper's testbed (worker
/// threads executing transactions back to back).
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Simulator* sim, Protocol* protocol,
                   WorkloadGenerator* workload, MetricsCollector* metrics,
                   int concurrency);

  /// Issues the initial `concurrency` transactions.
  void Start();

  /// Stops issuing new transactions (in-flight ones finish naturally).
  void Stop() { stopped_ = true; }

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }

 private:
  void IssueOne();

  Simulator* sim_;
  Protocol* protocol_;
  WorkloadGenerator* workload_;
  MetricsCollector* metrics_;
  int concurrency_;
  bool stopped_;
  uint64_t issued_;
  uint64_t completed_;
};

}  // namespace lion
