#include "harness/registry.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/predictor_interface.h"
#include "protocols/protocol.h"
#include "workload/workload.h"

namespace lion {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

}  // namespace

ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = new ProtocolRegistry();
  return *registry;
}

Status ProtocolRegistry::Register(const std::string& name, ExecutionMode mode,
                                  ProtocolFactory factory) {
  if (name.empty()) return Status::InvalidArgument("empty protocol name");
  if (factory == nullptr)
    return Status::InvalidArgument("null factory for protocol " + name);
  auto [it, inserted] =
      entries_.emplace(name, Entry{mode, std::move(factory)});
  if (!inserted)
    return Status::AlreadyExists("protocol already registered: " + name);
  return Status::OK();
}

Status ProtocolRegistry::Unregister(const std::string& name) {
  if (entries_.erase(name) == 0)
    return Status::NotFound("protocol not registered: " + name);
  return Status::OK();
}

Status ProtocolRegistry::CheckExists(const std::string& name) const {
  if (entries_.count(name) > 0) return Status::OK();
  return Status::NotFound("unknown protocol \"" + name +
                          "\" (known: " + JoinedNames() + ")");
}

Status ProtocolRegistry::Create(const std::string& name,
                                const ProtocolContext& ctx,
                                std::unique_ptr<Protocol>* out) const {
  Status exists = CheckExists(name);
  if (!exists.ok()) return exists;
  auto it = entries_.find(name);
  std::unique_ptr<Protocol> protocol = it->second.factory(ctx);
  if (protocol == nullptr)
    return Status::Internal("factory for protocol " + name + " returned null");
  *out = std::move(protocol);
  return Status::OK();
}

Status ProtocolRegistry::Mode(const std::string& name,
                              ExecutionMode* out) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    return Status::NotFound("unknown protocol: " + name);
  *out = it->second.mode;
  return Status::OK();
}

bool ProtocolRegistry::IsBatch(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.mode == ExecutionMode::kBatch;
}

bool ProtocolRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> ProtocolRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::vector<std::string> ProtocolRegistry::NamesByMode(
    ExecutionMode mode) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.mode == mode) names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

std::string ProtocolRegistry::JoinedNames() const {
  return JoinNames(Names());
}

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = new WorkloadRegistry();
  return *registry;
}

Status WorkloadRegistry::Register(const std::string& name,
                                  WorkloadFactory factory) {
  if (name.empty()) return Status::InvalidArgument("empty workload name");
  if (factory == nullptr)
    return Status::InvalidArgument("null factory for workload " + name);
  auto [it, inserted] = entries_.emplace(name, std::move(factory));
  if (!inserted)
    return Status::AlreadyExists("workload already registered: " + name);
  return Status::OK();
}

Status WorkloadRegistry::Unregister(const std::string& name) {
  if (entries_.erase(name) == 0)
    return Status::NotFound("workload not registered: " + name);
  return Status::OK();
}

Status WorkloadRegistry::CheckExists(const std::string& name) const {
  if (entries_.count(name) > 0) return Status::OK();
  return Status::NotFound("unknown workload \"" + name +
                          "\" (known: " + JoinedNames() + ")");
}

Status WorkloadRegistry::Create(const std::string& name,
                                const WorkloadContext& ctx,
                                std::unique_ptr<WorkloadGenerator>* out) const {
  Status exists = CheckExists(name);
  if (!exists.ok()) return exists;
  auto it = entries_.find(name);
  std::unique_ptr<WorkloadGenerator> workload = it->second(ctx);
  if (workload == nullptr)
    return Status::Internal("factory for workload " + name + " returned null");
  *out = std::move(workload);
  return Status::OK();
}

bool WorkloadRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> WorkloadRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, factory] : entries_) names.push_back(name);
  return names;
}

std::string WorkloadRegistry::JoinedNames() const {
  return JoinNames(Names());
}

PredictorRegistry& PredictorRegistry::Global() {
  static PredictorRegistry* registry = new PredictorRegistry();
  return *registry;
}

Status PredictorRegistry::Register(const std::string& name,
                                   PredictorFactory factory) {
  if (name.empty()) return Status::InvalidArgument("empty predictor name");
  if (name == kPredictorOff)
    return Status::InvalidArgument(
        "\"off\" is reserved (disables prediction), not a predictor name");
  if (factory == nullptr)
    return Status::InvalidArgument("null factory for predictor " + name);
  auto [it, inserted] = entries_.emplace(name, std::move(factory));
  if (!inserted)
    return Status::AlreadyExists("predictor already registered: " + name);
  return Status::OK();
}

Status PredictorRegistry::Unregister(const std::string& name) {
  if (entries_.erase(name) == 0)
    return Status::NotFound("predictor not registered: " + name);
  return Status::OK();
}

Status PredictorRegistry::CheckExists(const std::string& name) const {
  if (entries_.count(name) > 0) return Status::OK();
  return Status::NotFound("unknown predictor \"" + name +
                          "\" (known: " + JoinedNames() +
                          "; \"off\" disables prediction)");
}

Status PredictorRegistry::Create(
    const std::string& name, const PredictorContext& ctx,
    std::unique_ptr<PredictorInterface>* out) const {
  Status exists = CheckExists(name);
  if (!exists.ok()) return exists;
  auto it = entries_.find(name);
  std::unique_ptr<PredictorInterface> predictor = it->second(ctx);
  if (predictor == nullptr)
    return Status::Internal("factory for predictor " + name +
                            " returned null");
  *out = std::move(predictor);
  return Status::OK();
}

bool PredictorRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> PredictorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, factory] : entries_) names.push_back(name);
  return names;
}

std::string PredictorRegistry::JoinedNames() const {
  return JoinNames(Names());
}

ProtocolRegistrar::ProtocolRegistrar(const std::string& name,
                                     ExecutionMode mode,
                                     ProtocolFactory factory) {
  Status s = ProtocolRegistry::Global().Register(name, mode, std::move(factory));
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::abort();
  }
}

WorkloadRegistrar::WorkloadRegistrar(const std::string& name,
                                     WorkloadFactory factory) {
  Status s = WorkloadRegistry::Global().Register(name, std::move(factory));
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::abort();
  }
}

PredictorRegistrar::PredictorRegistrar(const std::string& name,
                                       PredictorFactory factory) {
  Status s = PredictorRegistry::Global().Register(name, std::move(factory));
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace lion
