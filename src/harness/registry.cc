#include "harness/registry.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/predictor_interface.h"
#include "protocols/protocol.h"
#include "workload/workload.h"

namespace lion {

namespace {

// Registrar stanzas run before main(); a failed registration is a
// programming error (duplicate or malformed name) and aborts immediately.
void DieOnRegisterError(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace

std::string JoinRegistryNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = new ProtocolRegistry();
  return *registry;
}

Status ProtocolRegistry::Mode(const std::string& name,
                              ExecutionMode* out) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    return Status::NotFound("unknown protocol: " + name);
  *out = it->second.payload;
  return Status::OK();
}

bool ProtocolRegistry::IsBatch(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.payload == ExecutionMode::kBatch;
}

std::vector<std::string> ProtocolRegistry::NamesByMode(
    ExecutionMode mode) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.payload == mode) names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = new WorkloadRegistry();
  return *registry;
}

PredictorRegistry& PredictorRegistry::Global() {
  static PredictorRegistry* registry = new PredictorRegistry();
  return *registry;
}

ProtocolRegistrar::ProtocolRegistrar(const std::string& name,
                                     ExecutionMode mode,
                                     ProtocolFactory factory) {
  DieOnRegisterError(
      ProtocolRegistry::Global().Register(name, mode, std::move(factory)));
}

WorkloadRegistrar::WorkloadRegistrar(const std::string& name,
                                     WorkloadFactory factory) {
  DieOnRegisterError(
      WorkloadRegistry::Global().Register(name, std::move(factory)));
}

PredictorRegistrar::PredictorRegistrar(const std::string& name,
                                       PredictorFactory factory) {
  DieOnRegisterError(
      PredictorRegistry::Global().Register(name, std::move(factory)));
}

}  // namespace lion
