#include "harness/sweep_cli.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

namespace lion {

namespace {

/// Per-metric median across one point's repeated runs; index N/2 of the
/// sorted values (the upper median for even N — with min/max reported
/// alongside, the convention barely matters).
double MedianOf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

double DistPct(const ExperimentResult& r) {
  if (r.committed == 0) return 0.0;
  return 100.0 * static_cast<double>(r.distributed) /
         static_cast<double>(r.committed);
}

/// The scalar result metrics that aggregate across repeat runs, declared
/// once: JSON key, extractor, and whether the value emits as an integer.
struct MetricSpec {
  const char* key;
  double (*get)(const ExperimentResult&);
  bool integral;
};

const MetricSpec kAggregatedMetrics[] = {
    {"throughput_txn_s", [](const ExperimentResult& r) { return r.throughput; },
     false},
    {"committed",
     [](const ExperimentResult& r) { return static_cast<double>(r.committed); },
     true},
    {"aborts",
     [](const ExperimentResult& r) { return static_cast<double>(r.aborts); },
     true},
    {"single_node",
     [](const ExperimentResult& r) {
       return static_cast<double>(r.single_node);
     },
     true},
    {"remastered",
     [](const ExperimentResult& r) {
       return static_cast<double>(r.remastered);
     },
     true},
    {"distributed",
     [](const ExperimentResult& r) {
       return static_cast<double>(r.distributed);
     },
     true},
    {"p10_us", [](const ExperimentResult& r) { return r.p10_us; }, false},
    {"p50_us", [](const ExperimentResult& r) { return r.p50_us; }, false},
    {"p95_us", [](const ExperimentResult& r) { return r.p95_us; }, false},
    {"p99_us", [](const ExperimentResult& r) { return r.p99_us; }, false},
    {"bytes_per_txn",
     [](const ExperimentResult& r) { return r.bytes_per_txn; }, false},
    {"remasters",
     [](const ExperimentResult& r) { return static_cast<double>(r.remasters); },
     true},
    {"migrations",
     [](const ExperimentResult& r) {
       return static_cast<double>(r.migrations);
     },
     true},
    {"migrated_bytes",
     [](const ExperimentResult& r) {
       return static_cast<double>(r.migrated_bytes);
     },
     true},
};

void AppendMetricValue(std::string* out, double v, bool integral) {
  if (integral) {
    *out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

/// One {"metric":value,...} block over the group's successful results,
/// reduced by `pick` (median / min / max over the sorted per-metric values).
void AppendMetricBlock(std::string* out, const char* label,
                       const std::vector<const ExperimentResult*>& results,
                       size_t (*pick)(size_t n)) {
  *out += "\"";
  *out += label;
  *out += "\":{";
  bool first = true;
  std::vector<double> values;
  for (const MetricSpec& m : kAggregatedMetrics) {
    values.clear();
    for (const ExperimentResult* r : results) values.push_back(m.get(*r));
    std::sort(values.begin(), values.end());
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    *out += m.key;
    *out += "\":";
    AppendMetricValue(out, values[pick(values.size())], m.integral);
  }
  *out += "}";
}

}  // namespace

bool StderrIsTty() { return isatty(fileno(stderr)) != 0; }

std::vector<SweepPoint> ExpandRepeat(std::vector<SweepPoint> points,
                                     int repeat) {
  if (repeat <= 1) return points;
  std::vector<SweepPoint> expanded;
  expanded.reserve(points.size() * static_cast<size_t>(repeat));
  for (SweepPoint& p : points) {
    for (int k = 0; k < repeat; ++k) {
      SweepPoint run;
      run.name = p.name + "/rep=" + std::to_string(k);
      run.config = p.config;
      run.config.seed = p.config.seed + static_cast<uint64_t>(k);
      expanded.push_back(std::move(run));
    }
  }
  return expanded;
}

SweepOptions::ProgressFn MakeSweepProgress(bool enabled, size_t total) {
  if (!enabled || total == 0) return nullptr;
  // The hook is copied into the runner, so the start time and the shared
  // state live behind a shared_ptr.
  auto start = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  return [start, total](size_t done, size_t runner_total,
                        const SweepOutcome& outcome) {
    (void)runner_total;
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      *start)
            .count();
    double eta = done > 0
                     ? elapsed / static_cast<double>(done) *
                           static_cast<double>(total - done)
                     : 0.0;
    // \r + trailing spaces keep one live status line; runs are long (a
    // simulated experiment each), so the redraw rate is harmless.
    std::fprintf(stderr, "\r[%zu/%zu done, ~%.0fs left] %s\x1b[K", done,
                 total, eta, outcome.name.c_str());
    if (done == total) std::fputc('\n', stderr);
  };
}

std::string MergeRepeatJson(const std::vector<SweepOutcome>& outcomes,
                            int repeat) {
  if (repeat <= 1) return SweepRunner::MergeJson(outcomes);
  const size_t n = static_cast<size_t>(repeat);
  std::string json = "{\"sweep_size\":";
  json += std::to_string((outcomes.size() + n - 1) / n);
  json += ",\"repeat\":";
  json += std::to_string(repeat);
  json += ",\"runs\":[";
  bool first_group = true;
  for (size_t base = 0; base < outcomes.size(); base += n) {
    size_t group_end = std::min(outcomes.size(), base + n);
    std::vector<const ExperimentResult*> ok;
    const SweepOutcome* first_failure = nullptr;
    size_t first_ok_rep = 0;  // rep index of ok.front() within the group
    for (size_t i = base; i < group_end; ++i) {
      if (outcomes[i].status.ok()) {
        if (ok.empty()) first_ok_rep = i - base;
        ok.push_back(&outcomes[i].result);
      } else if (first_failure == nullptr) {
        first_failure = &outcomes[i];
      }
    }
    // Strip the "/rep=k" suffix back off for the group's record name.
    std::string name = outcomes[base].name;
    size_t cut = name.rfind("/rep=");
    if (cut != std::string::npos) name = name.substr(0, cut);

    if (!first_group) json += ",";
    first_group = false;
    json += "{\"name\":\"";
    AppendJsonEscaped(&json, name);
    json += "\",\"status\":\"";
    json += ok.empty() ? StatusCodeName(first_failure->status.code()) : "OK";
    json += "\",\"runs_ok\":";
    json += std::to_string(ok.size());
    if (ok.empty()) {
      json += ",\"error\":\"";
      AppendJsonEscaped(&json, first_failure->status.message());
      json += "\"}";
      continue;
    }
    json += ",\"protocol\":\"";
    AppendJsonEscaped(&json, ok.front()->protocol);
    json += "\",\"workload\":\"";
    AppendJsonEscaped(&json, ok.front()->workload);
    // Repeat k derives its seed as base + k, so the base seed names the
    // whole family — recovered from the first *successful* run's seed and
    // its rep offset, in case earlier reps failed.
    json += "\",\"seed_base\":";
    json += std::to_string(ok.front()->seed -
                           static_cast<uint64_t>(first_ok_rep));
    json += ",";
    AppendMetricBlock(&json, "median", ok, [](size_t c) { return c / 2; });
    json += ",";
    AppendMetricBlock(&json, "min", ok, [](size_t) { return size_t{0}; });
    json += ",";
    AppendMetricBlock(&json, "max", ok, [](size_t c) { return c - 1; });
    json += "}";
  }
  json += "]}";
  return json;
}

bool PrintSweepSummaries(std::FILE* out,
                         const std::vector<SweepOutcome>& outcomes,
                         int repeat) {
  if (repeat < 1) repeat = 1;
  bool all_ok = true;
  const size_t n = static_cast<size_t>(repeat);
  for (size_t base = 0; base < outcomes.size(); base += n) {
    size_t group_end = std::min(outcomes.size(), base + n);
    std::vector<double> throughput, p50, p95, dist;
    double min_tput = 0.0, max_tput = 0.0;
    for (size_t i = base; i < group_end; ++i) {
      const SweepOutcome& o = outcomes[i];
      if (!o.status.ok()) {
        all_ok = false;
        std::fprintf(out, "%s: %s\n", o.name.c_str(),
                     o.status.ToString().c_str());
        continue;
      }
      throughput.push_back(o.result.throughput);
      p50.push_back(o.result.p50_us);
      p95.push_back(o.result.p95_us);
      dist.push_back(DistPct(o.result));
    }
    if (throughput.empty()) continue;
    min_tput = *std::min_element(throughput.begin(), throughput.end());
    max_tput = *std::max_element(throughput.begin(), throughput.end());
    // Strip the "/rep=k" suffix back off for the group's display name.
    std::string name = outcomes[base].name;
    if (repeat > 1) {
      size_t cut = name.rfind("/rep=");
      if (cut != std::string::npos) name = name.substr(0, cut);
    }
    if (repeat == 1) {
      std::fprintf(out, "%s: ktxn/s=%.1f p50_us=%.0f p95_us=%.0f "
                        "dist_pct=%.1f\n",
                   name.c_str(), throughput[0] / 1000.0, p50[0], p95[0],
                   dist[0]);
    } else {
      std::fprintf(out,
                   "%s: ktxn/s=%.1f [%.1f..%.1f] p50_us=%.0f p95_us=%.0f "
                   "dist_pct=%.1f (median of %zu)\n",
                   name.c_str(), MedianOf(throughput) / 1000.0,
                   min_tput / 1000.0, max_tput / 1000.0, MedianOf(p50),
                   MedianOf(p95), MedianOf(dist), throughput.size());
    }
  }
  return all_ok;
}

}  // namespace lion
