// Field-descriptor schema for the experiment configuration structs.
//
// Every config struct (ExperimentConfig and each nested struct) declares its
// fields exactly once in config_schema.cc — name, member reference, unit
// (for SimTime fields), help text, and an optional validation predicate —
// and everything else is derived from that single declaration:
//
//   * ParseJson / EmitJson — lossless JSON round trip (parse of an emitted
//     config reproduces the struct exactly; missing keys keep defaults,
//     unknown keys are errors);
//   * Validate — Status-returning validation with dotted field-path error
//     messages ("ycsb.cross_ratio: 1.3 not in [0,1]");
//   * SetByPath — "--lion.planner.interval_ms=5"-style CLI overrides;
//   * ListPaths — the full flag surface for --flags listings;
//   * SweepSpec (harness/sweep_spec.h) — JSON axis grids resolve their
//     dotted paths through the same descriptors.
//
// Time fields carry their unit in the name suffix (_s/_ms/_us/_ns); the
// JSON value is a number in that unit and converts to SimTime nanoseconds
// on parse (nearest integer), so emitted values round-trip exactly.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/types.h"

namespace lion {

struct ExperimentConfig;
struct ClusterConfig;
struct NetworkConfig;
struct YcsbConfig;
struct TpccConfig;
struct LionOptions;
struct GeoPlacementConfig;
struct PlannerConfig;
struct ClumpOptions;
struct PlanGeneratorConfig;
struct CostModelConfig;
struct PredictorConfig;
struct LstmConfig;
struct ClayConfig;
struct SimConfig;
struct ChaosConfig;
struct MetaConfig;

/// Joins a dotted path prefix with a field name ("" + "ycsb" -> "ycsb",
/// "ycsb" + "cross_ratio" -> "ycsb.cross_ratio").
std::string JoinFieldPath(const std::string& prefix, const std::string& name);

/// One declared field, type-erased over the owning struct (instances are
/// addressed as void* so nested schemas compose). Built via
/// ConfigSchemaBuilder<T>; not constructed by hand.
struct ConfigFieldSpec {
  std::string name;
  std::string help;
  /// Non-null for nested struct fields; scalar closures are null then.
  const class ConfigSchema* nested = nullptr;
  std::function<void*(void*)> member;              // nested member address
  std::function<const void*(const void*)> cmember;
  std::function<Status(void*, const Json&, const std::string& path)> parse;
  std::function<Json(const void*)> emit;
  std::function<Status(const void*, const std::string& path)> check;
};

/// The declared schema of one config struct. Instances live as
/// function-local statics (see the *Schema() accessors below) and are
/// referenced by nested fields and callers alike.
class ConfigSchema {
 public:
  explicit ConfigSchema(std::string struct_name)
      : struct_name_(std::move(struct_name)) {}

  const std::string& struct_name() const { return struct_name_; }
  const std::vector<ConfigFieldSpec>& fields() const { return fields_; }

  /// Overlays `v` (a JSON object) onto `*obj`: present keys are parsed into
  /// their fields (recursively for nested structs), absent keys keep the
  /// current (default) values, unknown keys and type mismatches are
  /// kInvalidArgument with the offending dotted path.
  Status ParseJson(const Json& v, void* obj) const {
    return ParseAt(v, obj, "");
  }

  /// Emits every declared field (nested structs recursively) in declaration
  /// order. ParseJson(EmitJson(obj)) reproduces `obj` exactly.
  Json EmitJson(const void* obj) const;

  /// Runs every field's validation predicate; the first failure is returned
  /// as kInvalidArgument with a "path: message" payload.
  Status Validate(const void* obj) const { return ValidateAt(obj, ""); }

  /// Resolves `dotted` ("lion.planner.interval_ms") and parses `value` into
  /// the addressed scalar. The value is interpreted as JSON when it parses
  /// as a scalar ("5", "0.3", "true"), and as a bare string otherwise
  /// ("Lion", "random-node").
  Status SetByPath(void* obj, const std::string& dotted,
                   const std::string& value) const;

  /// Same resolution, but the value is already a JSON scalar (sweep axes).
  Status SetJsonByPath(void* obj, const std::string& dotted,
                       const Json& v) const;

  /// Appends every scalar leaf as (dotted path, help), depth-first in
  /// declaration order — the full derived flag surface.
  void ListPaths(const std::string& prefix,
                 std::vector<std::pair<std::string, std::string>>* out) const;

  // Recursion entry points (public so nested fields and SweepSpec can carry
  // an explicit path prefix).
  Status ParseAt(const Json& v, void* obj, const std::string& path) const;
  Status ValidateAt(const void* obj, const std::string& path) const;

 private:
  template <typename T>
  friend class ConfigSchemaBuilder;

  const ConfigFieldSpec* FindField(const std::string& name) const;
  Status SetJsonAtPath(void* obj, const std::string& dotted, const Json& v,
                       const std::string& prefix) const;

  std::string struct_name_;
  std::vector<ConfigFieldSpec> fields_;
};

/// Validation predicate over the parsed C++ value: empty string = valid,
/// anything else is the message fragment after "path: ".
template <typename V>
using FieldCheck = std::function<std::string(const V&)>;

namespace check {

std::string FormatNumber(double v);

template <typename V>
FieldCheck<V> InRange(V lo, V hi) {
  return [lo, hi](const V& v) -> std::string {
    if (v < lo || v > hi) {
      return FormatNumber(static_cast<double>(v)) + " not in [" +
             FormatNumber(static_cast<double>(lo)) + "," +
             FormatNumber(static_cast<double>(hi)) + "]";
    }
    return "";
  };
}

template <typename V>
FieldCheck<V> Positive() {
  return [](const V& v) -> std::string {
    if (!(v > V{})) {
      return FormatNumber(static_cast<double>(v)) + " must be positive";
    }
    return "";
  };
}

template <typename V>
FieldCheck<V> NonNegative() {
  return [](const V& v) -> std::string {
    if (v < V{}) {
      return FormatNumber(static_cast<double>(v)) + " must be >= 0";
    }
    return "";
  };
}

template <typename V>
FieldCheck<V> AtLeast(V lo) {
  return [lo](const V& v) -> std::string {
    if (v < lo) {
      return FormatNumber(static_cast<double>(v)) + " must be >= " +
             FormatNumber(static_cast<double>(lo));
    }
    return "";
  };
}

inline FieldCheck<double> UnitInterval() { return InRange<double>(0.0, 1.0); }

inline FieldCheck<std::string> NotEmpty() {
  return [](const std::string& v) -> std::string {
    return v.empty() ? "must not be empty" : "";
  };
}

}  // namespace check

/// Typed fluent declaration of one struct's schema; see config_schema.cc
/// for the full set of instantiations. Usage:
///
///   ConfigSchemaBuilder<YcsbConfig> b("YcsbConfig");
///   b.Field("cross_ratio", &YcsbConfig::cross_ratio,
///           "fraction of two-partition transactions",
///           check::UnitInterval());
///   ...
///   return std::move(b).Build();
template <typename T>
class ConfigSchemaBuilder {
 public:
  explicit ConfigSchemaBuilder(std::string struct_name)
      : schema_(std::move(struct_name)) {}

  ConfigSchemaBuilder& Field(const char* name, bool T::*m, const char* help) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      bool b;
      Status s = v.GetBool(&b);
      if (!s.ok()) return Status::InvalidArgument(path + ": " + s.message());
      static_cast<T*>(obj)->*m = b;
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      return Json::Bool(static_cast<const T*>(obj)->*m);
    };
    Push(std::move(spec));
    return *this;
  }

  ConfigSchemaBuilder& Field(const char* name, int T::*m, const char* help,
                             FieldCheck<int> check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      int64_t i;
      Status s = v.GetInt64(&i);
      if (!s.ok()) return Status::InvalidArgument(path + ": " + s.message());
      if (i < INT32_MIN || i > INT32_MAX)
        return Status::InvalidArgument(path + ": " + std::to_string(i) +
                                       " out of int range");
      static_cast<T*>(obj)->*m = static_cast<int>(i);
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      return Json::Int(static_cast<const T*>(obj)->*m);
    };
    AttachCheck(&spec, m, std::move(check));
    Push(std::move(spec));
    return *this;
  }

  ConfigSchemaBuilder& Field(const char* name, uint64_t T::*m,
                             const char* help,
                             FieldCheck<uint64_t> check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      uint64_t u;
      Status s = v.GetUint64(&u);
      if (!s.ok()) return Status::InvalidArgument(path + ": " + s.message());
      static_cast<T*>(obj)->*m = u;
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      return Json::Uint(static_cast<const T*>(obj)->*m);
    };
    AttachCheck(&spec, m, std::move(check));
    Push(std::move(spec));
    return *this;
  }

  ConfigSchemaBuilder& Field(const char* name, double T::*m, const char* help,
                             FieldCheck<double> check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      double d;
      Status s = v.GetDouble(&d);
      if (!s.ok()) return Status::InvalidArgument(path + ": " + s.message());
      static_cast<T*>(obj)->*m = d;
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      return Json::Double(static_cast<const T*>(obj)->*m);
    };
    AttachCheck(&spec, m, std::move(check));
    Push(std::move(spec));
    return *this;
  }

  ConfigSchemaBuilder& Field(const char* name, std::string T::*m,
                             const char* help,
                             FieldCheck<std::string> check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      if (!v.is_string())
        return Status::InvalidArgument(path + ": expected string, got " +
                                       JsonTypeName(v.type()));
      static_cast<T*>(obj)->*m = v.str();
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      return Json::Str(static_cast<const T*>(obj)->*m);
    };
    AttachCheck(&spec, m, std::move(check));
    Push(std::move(spec));
    return *this;
  }

  /// Numeric array field (JSON array of ints). The whole vector is replaced
  /// on parse; `element_check` runs per element with an indexed path
  /// ("network.node_regions[2]: ...").
  ConfigSchemaBuilder& Field(const char* name, std::vector<int> T::*m,
                             const char* help,
                             FieldCheck<int> element_check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      if (!v.is_array())
        return Status::InvalidArgument(path + ": expected array, got " +
                                       JsonTypeName(v.type()));
      std::vector<int> vec;
      vec.reserve(v.items().size());
      for (size_t i = 0; i < v.items().size(); ++i) {
        int64_t e;
        Status s = v.items()[i].GetInt64(&e);
        std::string at = path + "[" + std::to_string(i) + "]";
        if (!s.ok()) return Status::InvalidArgument(at + ": " + s.message());
        if (e < INT32_MIN || e > INT32_MAX)
          return Status::InvalidArgument(at + ": " + std::to_string(e) +
                                         " out of int range");
        vec.push_back(static_cast<int>(e));
      }
      static_cast<T*>(obj)->*m = std::move(vec);
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      Json arr = Json::Array();
      for (int e : static_cast<const T*>(obj)->*m) arr.Add(Json::Int(e));
      return arr;
    };
    AttachElementCheck(&spec, m, std::move(element_check));
    Push(std::move(spec));
    return *this;
  }

  /// Numeric array field (JSON array of doubles); see the int overload.
  ConfigSchemaBuilder& Field(const char* name, std::vector<double> T::*m,
                             const char* help,
                             FieldCheck<double> element_check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      if (!v.is_array())
        return Status::InvalidArgument(path + ": expected array, got " +
                                       JsonTypeName(v.type()));
      std::vector<double> vec;
      vec.reserve(v.items().size());
      for (size_t i = 0; i < v.items().size(); ++i) {
        double e;
        Status s = v.items()[i].GetDouble(&e);
        if (!s.ok())
          return Status::InvalidArgument(path + "[" + std::to_string(i) +
                                         "]: " + s.message());
        vec.push_back(e);
      }
      static_cast<T*>(obj)->*m = std::move(vec);
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      Json arr = Json::Array();
      for (double e : static_cast<const T*>(obj)->*m)
        arr.Add(Json::Double(e));
      return arr;
    };
    AttachElementCheck(&spec, m, std::move(element_check));
    Push(std::move(spec));
    return *this;
  }

  /// String array field (JSON array of strings); the chaos schedule's
  /// event lines parse through this. See the int overload for semantics.
  ConfigSchemaBuilder& Field(const char* name, std::vector<std::string> T::*m,
                             const char* help,
                             FieldCheck<std::string> element_check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m](void* obj, const Json& v, const std::string& path) {
      if (!v.is_array())
        return Status::InvalidArgument(path + ": expected array, got " +
                                       JsonTypeName(v.type()));
      std::vector<std::string> vec;
      vec.reserve(v.items().size());
      for (size_t i = 0; i < v.items().size(); ++i) {
        const Json& e = v.items()[i];
        if (!e.is_string())
          return Status::InvalidArgument(path + "[" + std::to_string(i) +
                                         "]: expected string, got " +
                                         JsonTypeName(e.type()));
        vec.push_back(e.str());
      }
      static_cast<T*>(obj)->*m = std::move(vec);
      return Status::OK();
    };
    spec.emit = [m](const void* obj) {
      Json arr = Json::Array();
      for (const std::string& e : static_cast<const T*>(obj)->*m)
        arr.Add(Json::Str(e));
      return arr;
    };
    AttachElementCheck(&spec, m, std::move(element_check));
    Push(std::move(spec));
    return *this;
  }

  /// SimTime field: the JSON value is a number in `unit` (kSecond,
  /// kMillisecond, ...; the name should carry the matching _s/_ms/_us/_ns
  /// suffix) converted to nanoseconds at the nearest integer.
  ConfigSchemaBuilder& Time(const char* name, SimTime T::*m, SimTime unit,
                            const char* help,
                            FieldCheck<SimTime> check = nullptr) {
    ConfigFieldSpec spec = Base(name, help);
    spec.parse = [m, unit](void* obj, const Json& v, const std::string& path) {
      double d;
      Status s = v.GetDouble(&d);
      if (!s.ok()) return Status::InvalidArgument(path + ": " + s.message());
      static_cast<T*>(obj)->*m =
          static_cast<SimTime>(std::llround(d * static_cast<double>(unit)));
      return Status::OK();
    };
    spec.emit = [m, unit](const void* obj) {
      return Json::Double(static_cast<double>(static_cast<const T*>(obj)->*m) /
                          static_cast<double>(unit));
    };
    AttachCheck(&spec, m, std::move(check));
    Push(std::move(spec));
    return *this;
  }

  /// Enum field serialized as one of the declared names.
  template <typename E>
  ConfigSchemaBuilder& Enum(const char* name, E T::*m,
                            std::vector<std::pair<std::string, E>> values,
                            const char* help) {
    ConfigFieldSpec spec = Base(name, help);
    auto joined = std::make_shared<std::string>();
    for (const auto& nv : values) {
      if (!joined->empty()) *joined += ", ";
      *joined += nv.first;
    }
    auto table = std::make_shared<std::vector<std::pair<std::string, E>>>(
        std::move(values));
    spec.parse = [m, table, joined](void* obj, const Json& v,
                                    const std::string& path) {
      if (!v.is_string())
        return Status::InvalidArgument(path + ": expected string, got " +
                                       JsonTypeName(v.type()));
      for (const auto& nv : *table) {
        if (nv.first == v.str()) {
          static_cast<T*>(obj)->*m = nv.second;
          return Status::OK();
        }
      }
      return Status::InvalidArgument(path + ": unknown value \"" + v.str() +
                                     "\" (one of: " + *joined + ")");
    };
    spec.emit = [m, table](const void* obj) {
      E e = static_cast<const T*>(obj)->*m;
      for (const auto& nv : *table) {
        if (nv.second == e) return Json::Str(nv.first);
      }
      return Json::Str("<unregistered enum value>");
    };
    Push(std::move(spec));
    return *this;
  }

  /// Nested struct field: parse/emit/validate recurse into `schema`, and
  /// dotted paths descend through it. `schema` must outlive this schema —
  /// the function-local statics below always do.
  template <typename U>
  ConfigSchemaBuilder& Nested(const char* name, U T::*m,
                              const ConfigSchema& schema, const char* help) {
    ConfigFieldSpec spec = Base(name, help);
    spec.nested = &schema;
    spec.member = [m](void* obj) -> void* {
      return &(static_cast<T*>(obj)->*m);
    };
    spec.cmember = [m](const void* obj) -> const void* {
      return &(static_cast<const T*>(obj)->*m);
    };
    Push(std::move(spec));
    return *this;
  }

  ConfigSchema Build() && { return std::move(schema_); }

 private:
  ConfigFieldSpec Base(const char* name, const char* help) {
    ConfigFieldSpec spec;
    spec.name = name;
    spec.help = help;
    return spec;
  }

  template <typename V>
  void AttachElementCheck(ConfigFieldSpec* spec, std::vector<V> T::*m,
                          FieldCheck<V> check) {
    if (!check) return;
    spec->check = [m, check](const void* obj, const std::string& path) {
      const std::vector<V>& vec = static_cast<const T*>(obj)->*m;
      for (size_t i = 0; i < vec.size(); ++i) {
        std::string err = check(vec[i]);
        if (!err.empty()) {
          return Status::InvalidArgument(path + "[" + std::to_string(i) +
                                         "]: " + err);
        }
      }
      return Status::OK();
    };
  }

  template <typename V>
  void AttachCheck(ConfigFieldSpec* spec, V T::*m, FieldCheck<V> check) {
    if (!check) return;
    spec->check = [m, check](const void* obj, const std::string& path) {
      std::string err = check(static_cast<const T*>(obj)->*m);
      if (!err.empty()) return Status::InvalidArgument(path + ": " + err);
      return Status::OK();
    };
  }

  void Push(ConfigFieldSpec spec) {
    schema_.fields_.push_back(std::move(spec));
  }

  ConfigSchema schema_;
};

// --- declared schemas (one per config struct, fields declared once) ---------
const ConfigSchema& NetworkConfigSchema();
const ConfigSchema& ClusterConfigSchema();
const ConfigSchema& YcsbConfigSchema();
const ConfigSchema& TpccConfigSchema();
const ConfigSchema& LstmConfigSchema();
const ConfigSchema& PredictorConfigSchema();
const ConfigSchema& ClumpOptionsSchema();
const ConfigSchema& CostModelConfigSchema();
const ConfigSchema& PlanGeneratorConfigSchema();
const ConfigSchema& PlannerConfigSchema();
const ConfigSchema& GeoPlacementConfigSchema();
const ConfigSchema& LionOptionsSchema();
const ConfigSchema& ClayConfigSchema();
const ConfigSchema& SimConfigSchema();
const ConfigSchema& ChaosConfigSchema();
const ConfigSchema& RecoveryConfigSchema();
const ConfigSchema& MetaConfigSchema();
const ConfigSchema& ExperimentConfigSchema();

// --- derived flag surface ----------------------------------------------------

/// One top-level section of the flag surface: the root group ("" — the
/// schema's own scalar fields) or one nested struct field, with every scalar
/// leaf under it flattened to (dotted path, help).
struct ConfigFlagGroup {
  std::string name;  // "" for the root group, else the nested field's name
  std::string help;  // the nested field's declared help ("" for the root)
  std::vector<std::pair<std::string, std::string>> flags;
};

/// Splits ListPaths output into per-struct groups, declaration order
/// preserved: root scalars first, then one group per nested field.
std::vector<ConfigFlagGroup> ListFlagGroups(const ConfigSchema& schema);

/// Renders the full flag surface as a markdown document (one section and
/// table per group) for docs and `--flags=md`.
std::string FlagsMarkdown(const ConfigSchema& schema, const std::string& title);

// --- typed conveniences over ExperimentConfigSchema() -----------------------
Status ParseExperimentConfig(const Json& v, ExperimentConfig* out);
Json EmitExperimentConfig(const ExperimentConfig& cfg);
/// Schema validation only; registry existence of protocol/workload names is
/// ExperimentBuilder::Validate's concern.
Status ValidateExperimentConfig(const ExperimentConfig& cfg);
Status SetExperimentFlag(ExperimentConfig* cfg, const std::string& dotted,
                         const std::string& value);

}  // namespace lion
