#include "harness/driver.h"

namespace lion {

ClosedLoopDriver::ClosedLoopDriver(Simulator* sim, Protocol* protocol,
                                   WorkloadGenerator* workload,
                                   MetricsCollector* metrics, int concurrency)
    : sim_(sim),
      protocol_(protocol),
      workload_(workload),
      metrics_(metrics),
      concurrency_(concurrency),
      stopped_(false),
      issued_(0),
      completed_(0) {}

void ClosedLoopDriver::Start() {
  for (int i = 0; i < concurrency_; ++i) IssueOne();
}

void ClosedLoopDriver::IssueOne() {
  if (stopped_) return;
  TxnPtr txn = workload_->Next(++issued_, sim_->Now(), &sim_->rng());
  protocol_->Submit(std::move(txn), [this](TxnPtr finished) {
    (void)finished;  // metrics were recorded by the protocol at commit time
    completed_++;
    IssueOne();
  });
}

}  // namespace lion
