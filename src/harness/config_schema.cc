#include "harness/config_schema.h"

#include <cstdio>

#include "harness/experiment_config.h"
#include "replication/chaos_config.h"

namespace lion {

std::string JoinFieldPath(const std::string& prefix, const std::string& name) {
  return prefix.empty() ? name : prefix + "." + name;
}

namespace check {

std::string FormatNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace check

// --- ConfigSchema core ------------------------------------------------------

const ConfigFieldSpec* ConfigSchema::FindField(const std::string& name) const {
  for (const ConfigFieldSpec& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status ConfigSchema::ParseAt(const Json& v, void* obj,
                             const std::string& path) const {
  if (!v.is_object()) {
    std::string where = path.empty() ? struct_name_ : path;
    return Status::InvalidArgument(where + ": expected object, got " +
                                   JsonTypeName(v.type()));
  }
  for (const Json::Member& m : v.members()) {
    const ConfigFieldSpec* field = FindField(m.first);
    std::string field_path = JoinFieldPath(path, m.first);
    if (field == nullptr) {
      return Status::InvalidArgument(field_path + ": unknown field in " +
                                     struct_name_);
    }
    if (field->nested != nullptr) {
      Status s = field->nested->ParseAt(m.second, field->member(obj),
                                        field_path);
      if (!s.ok()) return s;
    } else {
      Status s = field->parse(obj, m.second, field_path);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Json ConfigSchema::EmitJson(const void* obj) const {
  Json out = Json::Object();
  for (const ConfigFieldSpec& f : fields_) {
    if (f.nested != nullptr) {
      out.Set(f.name, f.nested->EmitJson(f.cmember(obj)));
    } else {
      out.Set(f.name, f.emit(obj));
    }
  }
  return out;
}

Status ConfigSchema::ValidateAt(const void* obj,
                                const std::string& path) const {
  for (const ConfigFieldSpec& f : fields_) {
    std::string field_path = JoinFieldPath(path, f.name);
    if (f.nested != nullptr) {
      Status s = f.nested->ValidateAt(f.cmember(obj), field_path);
      if (!s.ok()) return s;
    } else if (f.check) {
      Status s = f.check(obj, field_path);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status ConfigSchema::SetJsonAtPath(void* obj, const std::string& dotted,
                                   const Json& v,
                                   const std::string& prefix) const {
  size_t dot = dotted.find('.');
  std::string head = dotted.substr(0, dot);
  std::string head_path = JoinFieldPath(prefix, head);
  const ConfigFieldSpec* field = FindField(head);
  if (field == nullptr) {
    return Status::InvalidArgument(head_path + ": unknown field in " +
                                   struct_name_);
  }
  if (dot == std::string::npos) {
    if (field->nested != nullptr) {
      // A whole nested struct may be assigned from a JSON object value.
      return field->nested->ParseAt(v, field->member(obj), head_path);
    }
    return field->parse(obj, v, head_path);
  }
  if (field->nested == nullptr) {
    return Status::InvalidArgument(head_path +
                                   " is a scalar, not a struct (in " +
                                   struct_name_ + ")");
  }
  return field->nested->SetJsonAtPath(field->member(obj),
                                      dotted.substr(dot + 1), v, head_path);
}

Status ConfigSchema::SetJsonByPath(void* obj, const std::string& dotted,
                                   const Json& v) const {
  return SetJsonAtPath(obj, dotted, v, "");
}

Status ConfigSchema::SetByPath(void* obj, const std::string& dotted,
                               const std::string& value) const {
  // A value that parses as a JSON scalar or array is used as such ("5",
  // "0.25", "true", "[0,1,1]"); everything else — protocol names, enum
  // values — is a string.
  Json parsed;
  bool is_json_value =
      Json::Parse(value, &parsed).ok() &&
      (parsed.is_number() || parsed.is_bool() || parsed.is_null() ||
       parsed.is_string() || parsed.is_array());
  if (!is_json_value) parsed = Json::Str(value);
  Status s = SetJsonByPath(obj, dotted, parsed);
  if (!s.ok() && parsed.is_number()) {
    // "--workload=2pc"-style values lex as garbage numbers for string
    // fields; retry verbatim before reporting the original error.
    Status retry = SetJsonByPath(obj, dotted, Json::Str(value));
    if (retry.ok()) return retry;
  }
  return s;
}

void ConfigSchema::ListPaths(
    const std::string& prefix,
    std::vector<std::pair<std::string, std::string>>* out) const {
  for (const ConfigFieldSpec& f : fields_) {
    std::string path = JoinFieldPath(prefix, f.name);
    if (f.nested != nullptr) {
      f.nested->ListPaths(path, out);
    } else {
      out->emplace_back(std::move(path), f.help);
    }
  }
}

// --- schema declarations (the single source of truth per struct) ------------

const ConfigSchema& NetworkConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<NetworkConfig> b("NetworkConfig");
    b.Time("one_way_latency_us", &NetworkConfig::one_way_latency, kMicrosecond,
           "one-way propagation + stack latency per remote message",
           check::NonNegative<SimTime>());
    b.Field("bandwidth_bytes_per_sec", &NetworkConfig::bandwidth_bytes_per_sec,
            "link bandwidth in bytes per second",
            check::Positive<double>());
    b.Time("local_latency_us", &NetworkConfig::local_latency, kMicrosecond,
           "loopback (same node) message latency",
           check::NonNegative<SimTime>());
    b.Time("stats_window_ms", &NetworkConfig::stats_window, kMillisecond,
           "width of the bytes/messages accounting windows",
           check::Positive<SimTime>());
    b.Field("regions", &NetworkConfig::regions,
            "geographic regions (1 = flat single-datacenter model)",
            check::AtLeast<int>(1));
    b.Field("node_regions", &NetworkConfig::node_regions,
            "region of each node; empty assigns contiguous equal blocks",
            check::NonNegative<int>());
    b.Field("region_latency_ms", &NetworkConfig::region_latency_ms,
            "row-major regions^2 one-way latency matrix in ms; empty derives "
            "from one_way_latency_us and cross_region_latency_ms",
            check::NonNegative<double>());
    b.Time("cross_region_latency_ms", &NetworkConfig::cross_region_latency,
           kMillisecond,
           "default one-way latency between distinct regions when no matrix "
           "is declared",
           check::NonNegative<SimTime>());
    b.Field("region_bandwidth_bytes_per_sec",
            &NetworkConfig::region_bandwidth_bytes_per_sec,
            "row-major regions^2 bandwidth matrix (bytes/sec); empty uses "
            "bandwidth_bytes_per_sec everywhere",
            check::Positive<double>());
    b.Field("jitter_pct", &NetworkConfig::jitter_pct,
            "symmetric multiplicative delivery jitter drawn from a dedicated "
            "seeded stream (0 disables)",
            check::UnitInterval());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& ClusterConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<ClusterConfig> b("ClusterConfig");
    b.Field("num_nodes", &ClusterConfig::num_nodes, "executor nodes",
            check::AtLeast<int>(1));
    b.Field("workers_per_node", &ClusterConfig::workers_per_node,
            "worker threads per node", check::AtLeast<int>(1));
    b.Field("partitions_per_node", &ClusterConfig::partitions_per_node,
            "initial partitions per node", check::AtLeast<int>(1));
    b.Field("records_per_partition", &ClusterConfig::records_per_partition,
            "bulk-loaded records per partition");
    b.Field("record_bytes", &ClusterConfig::record_bytes,
            "logical record size for byte accounting",
            check::AtLeast<uint64_t>(1));
    b.Field("init_replicas", &ClusterConfig::init_replicas,
            "initial replicas per partition", check::AtLeast<int>(1));
    b.Field("max_replicas", &ClusterConfig::max_replicas,
            "replica cap per partition before eviction",
            check::AtLeast<int>(1));
    // Zero-period timers self-reschedule at the same timestamp forever, so
    // every periodic interval below must be strictly positive or a run
    // would hang instead of returning.
    b.Time("epoch_interval_ms", &ClusterConfig::epoch_interval, kMillisecond,
           "epoch-based group commit interval", check::Positive<SimTime>());
    b.Field("materialize_secondaries", &ClusterConfig::materialize_secondaries,
            "physically apply shipped log entries to per-replica copies");
    b.Time("txn_setup_cost_us", &ClusterConfig::txn_setup_cost, kMicrosecond,
           "fixed coordinator cost to start/finish a transaction",
           check::NonNegative<SimTime>());
    b.Time("op_local_cost_us", &ClusterConfig::op_local_cost, kMicrosecond,
           "executing one op on a local primary",
           check::NonNegative<SimTime>());
    b.Time("op_service_cost_us", &ClusterConfig::op_service_cost, kMicrosecond,
           "serving one remote op at the serving node",
           check::NonNegative<SimTime>());
    b.Time("log_write_cost_us", &ClusterConfig::log_write_cost, kMicrosecond,
           "writing a prepare/commit log record",
           check::NonNegative<SimTime>());
    b.Time("validation_cost_per_op_ns", &ClusterConfig::validation_cost_per_op,
           1, "OCC validation per accessed record",
           check::NonNegative<SimTime>());
    b.Time("message_handling_cost_us", &ClusterConfig::message_handling_cost,
           kMicrosecond, "handling any control message at the receiver",
           check::NonNegative<SimTime>());
    b.Time("remaster_base_delay_us", &ClusterConfig::remaster_base_delay,
           kMicrosecond, "base remastering duration (paper: 3000 us)",
           check::NonNegative<SimTime>());
    b.Time("remaster_per_entry_ns", &ClusterConfig::remaster_per_entry, 1,
           "additional remastering time per lagging log entry",
           check::NonNegative<SimTime>());
    b.Time("migration_base_delay_ms", &ClusterConfig::migration_base_delay,
           kMillisecond, "fixed overhead for starting a partition copy",
           check::NonNegative<SimTime>());
    b.Nested("net", &ClusterConfig::net, NetworkConfigSchema(),
             "network latency/bandwidth model");
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& YcsbConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<YcsbConfig> b("YcsbConfig");
    b.Field("ops_per_txn", &YcsbConfig::ops_per_txn,
            "operations per transaction", check::AtLeast<int>(1));
    b.Enum("cross_pattern", &YcsbConfig::cross_pattern,
           {{"paired", CrossPattern::kPaired},
            {"random-node", CrossPattern::kRandomNode}},
           "how cross-partition transactions choose their second partition");
    b.Field("cross_ratio", &YcsbConfig::cross_ratio,
            "fraction of transactions spanning two nodes",
            check::UnitInterval());
    b.Field("skew_factor", &YcsbConfig::skew_factor,
            "fraction of transactions homed on the hot node",
            check::UnitInterval());
    b.Field("zipf_theta", &YcsbConfig::zipf_theta,
            "Zipfian theta over keys within a partition (0 = uniform)",
            check::NonNegative<double>());
    b.Field("write_ratio", &YcsbConfig::write_ratio,
            "per-operation probability of being a write",
            check::UnitInterval());
    b.Field("hot_node", &YcsbConfig::hot_node,
            "node whose initial partitions form the hotspot",
            check::NonNegative<int>());
    b.Field("partition_offset", &YcsbConfig::partition_offset,
            "rotation of the partition space (dynamic scenarios)",
            check::NonNegative<int>());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& TpccConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<TpccConfig> b("TpccConfig");
    b.Field("districts_per_warehouse", &TpccConfig::districts_per_warehouse,
            "districts per warehouse", check::AtLeast<int>(1));
    b.Field("customers_per_district", &TpccConfig::customers_per_district,
            "customers per district (scaled from 3000)",
            check::AtLeast<int>(1));
    b.Field("items", &TpccConfig::items, "item count (scaled from 100000)",
            check::AtLeast<int>(1));
    b.Field("min_order_lines", &TpccConfig::min_order_lines,
            "minimum order lines per NewOrder", check::AtLeast<int>(1));
    b.Field("max_order_lines", &TpccConfig::max_order_lines,
            "maximum order lines per NewOrder", check::AtLeast<int>(1));
    b.Field("remote_ratio", &TpccConfig::remote_ratio,
            "fraction of NewOrders buying from a remote warehouse",
            check::UnitInterval());
    b.Field("payment_ratio", &TpccConfig::payment_ratio,
            "fraction of Payment transactions in the mix",
            check::UnitInterval());
    b.Field("remote_payment_ratio", &TpccConfig::remote_payment_ratio,
            "probability a Payment customer is remote",
            check::UnitInterval());
    b.Field("delivery_ratio", &TpccConfig::delivery_ratio,
            "fraction of Delivery transactions", check::UnitInterval());
    b.Field("order_status_ratio", &TpccConfig::order_status_ratio,
            "fraction of OrderStatus transactions", check::UnitInterval());
    b.Field("stock_level_ratio", &TpccConfig::stock_level_ratio,
            "fraction of StockLevel transactions", check::UnitInterval());
    b.Field("skew_factor", &TpccConfig::skew_factor,
            "fraction of transactions targeting the hot node",
            check::UnitInterval());
    b.Field("hot_node", &TpccConfig::hot_node,
            "node whose warehouses form the hotspot",
            check::NonNegative<int>());
    b.Time("think_time_us", &TpccConfig::think_time, kMicrosecond,
           "coordinator-side business logic time per transaction",
           check::NonNegative<SimTime>());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& LstmConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<LstmConfig> b("LstmConfig");
    b.Field("input_dim", &LstmConfig::input_dim, "input dimension",
            check::AtLeast<int>(1));
    b.Field("hidden", &LstmConfig::hidden, "hidden units per layer",
            check::AtLeast<int>(1));
    b.Field("layers", &LstmConfig::layers, "stacked LSTM layers",
            check::AtLeast<int>(1));
    b.Field("output_dim", &LstmConfig::output_dim, "output dimension",
            check::AtLeast<int>(1));
    b.Field("learning_rate", &LstmConfig::learning_rate,
            "Adam learning rate", check::Positive<double>());
    b.Field("adam_beta1", &LstmConfig::adam_beta1, "Adam beta1",
            check::UnitInterval());
    b.Field("adam_beta2", &LstmConfig::adam_beta2, "Adam beta2",
            check::UnitInterval());
    b.Field("adam_eps", &LstmConfig::adam_eps, "Adam epsilon",
            check::Positive<double>());
    b.Field("grad_clip", &LstmConfig::grad_clip, "gradient clip norm",
            check::Positive<double>());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& PredictorConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<PredictorConfig> b("PredictorConfig");
    b.Field("kind", &PredictorConfig::kind,
            "predictor implementation (PredictorRegistry name, e.g. lstm or "
            "ewma; \"off\" disables prediction)",
            check::NotEmpty());
    b.Time("sample_interval_ms", &PredictorConfig::sample_interval,
           kMillisecond, "arrival-rate sampling interval (Eq. 5)",
           check::Positive<SimTime>());
    b.Field("max_templates", &PredictorConfig::max_templates,
            "cap on tracked templates (hottest retained)",
            check::AtLeast<uint64_t>(1));
    b.Field("beta", &PredictorConfig::beta,
            "cosine-distance threshold for workload-class merging",
            check::UnitInterval());
    b.Field("class_window", &PredictorConfig::class_window,
            "arrival-rate window length per class",
            check::AtLeast<uint64_t>(1));
    b.Field("history_window", &PredictorConfig::history_window,
            "LSTM input length in sampling intervals",
            check::AtLeast<int>(1));
    b.Field("horizon", &PredictorConfig::horizon,
            "forecast horizon h in sampling intervals (Eq. 6)",
            check::AtLeast<int>(1));
    b.Field("gamma", &PredictorConfig::gamma,
            "workload-variation threshold triggering pre-replication",
            check::NonNegative<double>());
    b.Field("wp", &PredictorConfig::wp,
            "weight of predicted workloads in the heat graph",
            check::NonNegative<double>());
    b.Field("prediction_scale", &PredictorConfig::prediction_scale,
            "scale from forecast arrival rate to graph weight",
            check::NonNegative<double>());
    b.Field("sample_size", &PredictorConfig::sample_size,
            "templates drawn per rising workload class");
    b.Field("train_epochs", &PredictorConfig::train_epochs,
            "training epochs per planning round",
            check::NonNegative<int>());
    b.Field("retrain_mse", &PredictorConfig::retrain_mse,
            "MSE above which a class model retrains",
            check::NonNegative<double>());
    b.Field("ewma_alpha", &PredictorConfig::ewma_alpha,
            "level smoothing factor of the ewma (Holt) predictor",
            check::UnitInterval());
    b.Field("ewma_trend", &PredictorConfig::ewma_trend,
            "trend smoothing factor of the ewma (Holt) predictor",
            check::UnitInterval());
    b.Field("seasonal_period", &PredictorConfig::seasonal_period,
            "season length m (sampling intervals) of the seasonal-naive "
            "predictor", check::AtLeast<int>(1));
    b.Nested("lstm", &PredictorConfig::lstm, LstmConfigSchema(),
             "per-class LSTM architecture and optimizer");
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& ClumpOptionsSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<ClumpOptions> b("ClumpOptions");
    b.Field("alpha", &ClumpOptions::alpha,
            "edge-weight threshold for joining a clump",
            check::NonNegative<double>());
    b.Field("cross_node_multiplier", &ClumpOptions::cross_node_multiplier,
            "weight multiplier for cross-node co-access edges",
            check::NonNegative<double>());
    b.Field("alpha_relative", &ClumpOptions::alpha_relative,
            "relative noise filter vs. mean raw edge weight (0 = off)",
            check::NonNegative<double>());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& CostModelConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<CostModelConfig> b("CostModelConfig");
    b.Field("wr", &CostModelConfig::wr,
            "cost weight of remastering an existing secondary",
            check::NonNegative<double>());
    b.Field("wm", &CostModelConfig::wm,
            "cost weight of migrating a missing replica",
            check::NonNegative<double>());
    b.Field("remote_access", &CostModelConfig::remote_access,
            "routing-side weight of accessing a replica-less partition",
            check::NonNegative<double>());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& PlanGeneratorConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<PlanGeneratorConfig> b("PlanGeneratorConfig");
    b.Field("epsilon", &PlanGeneratorConfig::epsilon,
            "permissible load imbalance for fine-tuning",
            check::NonNegative<double>());
    b.Field("step_budget", &PlanGeneratorConfig::step_budget,
            "fine-tuning moves between FindOINodes re-derivations",
            check::NonNegative<int>());
    b.Nested("cost", &PlanGeneratorConfig::cost, CostModelConfigSchema(),
             "Eq. 3/4 placement cost weights");
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& PlannerConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<PlannerConfig> b("PlannerConfig");
    b.Enum("strategy", &PlannerConfig::strategy,
           {{"replica-rearrangement",
             PartitioningStrategy::kReplicaRearrangement},
            {"schism", PartitioningStrategy::kSchism}},
           "partitioning strategy driving plan generation");
    b.Time("interval_ms", &PlannerConfig::interval, kMillisecond,
           "how often the planner analyzes and re-plans",
           check::Positive<SimTime>());
    b.Field("history_capacity", &PlannerConfig::history_capacity,
            "recent transactions kept by the analyzer (B)",
            check::AtLeast<uint64_t>(1));
    b.Field("min_history", &PlannerConfig::min_history,
            "minimum history before a planning round does anything");
    b.Field("frequency_decay", &PlannerConfig::frequency_decay,
            "per-round exponential decay of access frequencies",
            check::UnitInterval());
    b.Nested("clump", &PlannerConfig::clump, ClumpOptionsSchema(),
             "clump generation thresholds");
    b.Nested("plan", &PlannerConfig::plan, PlanGeneratorConfigSchema(),
             "Algorithm 1 rearrangement parameters");
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& GeoPlacementConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<GeoPlacementConfig> b("GeoPlacementConfig");
    b.Field("replica_regions", &GeoPlacementConfig::replica_regions,
            "regions allowed to host replicas; empty allows all",
            check::NonNegative<int>());
    b.Field("min_replicas_per_region",
            &GeoPlacementConfig::min_replicas_per_region,
            "minimum live replicas per partition in each allowed region, "
            "provisioned at protocol start (0 = off)",
            check::NonNegative<int>());
    b.Field("wan_migration_multiplier",
            &GeoPlacementConfig::wan_migration_multiplier,
            "placement-cost multiplier for cross-region replica migration",
            check::Positive<double>());
    b.Field("hot_primary_pin_threshold",
            &GeoPlacementConfig::hot_primary_pin_threshold,
            "normalized access frequency above which a partition's primary "
            "may not move across regions (0 = off)",
            check::UnitInterval());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& LionOptionsSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<LionOptions> b("LionOptions");
    b.Field("enable_planner", &LionOptions::enable_planner,
            "adaptive replica rearrangement via the planner");
    b.Field("batch_mode", &LionOptions::batch_mode,
            "batch execution with asynchronous remastering");
    b.Field("group_commit", &LionOptions::group_commit,
            "hold commit acknowledgements to the epoch boundary");
    b.Field("max_batch_size", &LionOptions::max_batch_size,
            "flush a batch early at this many transactions",
            check::AtLeast<uint64_t>(1));
    b.Nested("planner", &LionOptions::planner, PlannerConfigSchema(),
             "planning loop configuration");
    b.Nested("cost", &LionOptions::cost, CostModelConfigSchema(),
             "router/remaster cost model weights");
    b.Nested("geo", &LionOptions::geo, GeoPlacementConfigSchema(),
             "region-aware placement constraints");
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& ClayConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<ClayConfig> b("ClayConfig");
    b.Time("monitor_interval_ms", &ClayConfig::monitor_interval, kMillisecond,
           "how often Clay checks node load", check::Positive<SimTime>());
    b.Field("epsilon", &ClayConfig::epsilon,
            "load imbalance tolerance before repartitioning",
            check::NonNegative<double>());
    b.Field("clump_budget", &ClayConfig::clump_budget,
            "partitions moved per repartitioning round",
            check::AtLeast<int>(1));
    b.Field("history_capacity", &ClayConfig::history_capacity,
            "co-access history window", check::AtLeast<uint64_t>(1));
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& SimConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<SimConfig> b("SimConfig");
    b.Enum("scheduler", &SimConfig::scheduler,
           {{"calendar", SchedulerKind::kCalendar},
            {"heap", SchedulerKind::kHeap}},
           "event-queue implementation (identical results, different speed): "
           "bucketed calendar queue or reference 4-ary heap");
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& ChaosConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<ChaosConfig> b("ChaosConfig");
    b.Field("schedule", &ChaosConfig::schedule,
            "scripted fault events, one per line: \"<time> <kind> [args]\" "
            "with time unit-suffixed (ns/us/ms/s) and kind one of crash N, "
            "crash_dirty N (discards the unsynced recovery-log suffix), "
            "recover N, truncate N (forces a recovery-log snapshot), "
            "partition N1,N2,..., heal, lag_storm DURATION, "
            "migrate PID NODE; empty disables chaos entirely",
            [](const std::string& line) -> std::string {
              ChaosEvent ev;
              Status s = ChaosEvent::Parse(line, &ev);
              return s.ok() ? "" : s.message();
            });
    b.Field("max_unavailable_retries", &ChaosConfig::max_unavailable_retries,
            "deferrals before a transaction touching an unavailable "
            "partition is counted as aborted_unavailable",
            check::AtLeast<int>(0));
    b.Time("unavailable_backoff_us", &ChaosConfig::unavailable_backoff,
           kMicrosecond,
           "base of the deterministic linear backoff between "
           "unavailability deferrals", check::Positive<SimTime>());
    b.Field("check_integrity", &ChaosConfig::check_integrity,
            "run the post-run cluster integrity checker");
    b.Field("track_commits", &ChaosConfig::track_commits,
            "record committed writes in a ledger so the integrity checker "
            "can verify their effects are present");
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& RecoveryConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<RecoveryConfig> b("RecoveryConfig");
    b.Field("enabled", &RecoveryConfig::enabled,
            "attach the per-node durable replication log; crashed nodes then "
            "recover by replaying their durable prefix and catching up from "
            "live primaries instead of rejoining empty");
    b.Time("durability_lag_us", &RecoveryConfig::durability_lag, kMicrosecond,
           "fsync horizon: a dirty crash (crash_dirty schedule events) loses "
           "log entries younger than this; 0 means every entry is durable "
           "the instant it commits", check::NonNegative<SimTime>());
    b.Time("snapshot_interval_ms", &RecoveryConfig::snapshot_interval,
           kMillisecond,
           "period of the snapshot+truncate pass bounding replay work and "
           "log memory; 0 disables periodic snapshots",
           check::NonNegative<SimTime>());
    b.Field("catch_up_batch", &RecoveryConfig::catch_up_batch,
            "log entries per catch-up shipment from a live primary to a "
            "recovering replica", check::AtLeast<int>(1));
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& MetaConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<MetaConfig> b("MetaConfig");
    b.Field("baseline", &MetaConfig::baseline,
            "child protocol every partition starts on (ProtocolRegistry "
            "name; not \"meta\")", check::NotEmpty());
    b.Field("single_master", &MetaConfig::single_master,
            "child a write-hot, cross-heavy partition flips to "
            "(single-master batching)", check::NotEmpty());
    b.Field("wan", &MetaConfig::wan,
            "optional WAN candidate for cross-heavy partitions in "
            "multi-region topologies; empty disables the lane");
    b.Field("hot_threshold", &MetaConfig::hot_threshold,
            "normalized forecast load at or above which a partition is "
            "write-hot", check::UnitInterval());
    b.Field("cross_threshold", &MetaConfig::cross_threshold,
            "smoothed cross-partition ratio at or above which a partition "
            "is cross-heavy", check::UnitInterval());
    b.Field("hysteresis_epochs", &MetaConfig::hysteresis_epochs,
            "consecutive epochs the flip rule must prefer the same target "
            "before a switch starts", check::AtLeast<int>(1));
    b.Field("cooldown_epochs", &MetaConfig::cooldown_epochs,
            "minimum epochs between flips of the same partition",
            check::NonNegative<int>());
    b.Field("cost_gate", &MetaConfig::cost_gate,
            "flip fires only when smoothed cross load reaches cost_gate x "
            "the cost-model flip price (WAN-multiplied across regions); 0 "
            "disables", check::NonNegative<double>());
    b.Field("smoothing", &MetaConfig::smoothing,
            "EWMA factor for the observed per-partition load and "
            "cross-ratio windows", check::UnitInterval());
    return std::move(b).Build();
  }();
  return schema;
}

const ConfigSchema& ExperimentConfigSchema() {
  static const ConfigSchema schema = [] {
    ConfigSchemaBuilder<ExperimentConfig> b("ExperimentConfig");
    b.Field("protocol", &ExperimentConfig::protocol,
            "protocol name resolved through ProtocolRegistry",
            check::NotEmpty());
    b.Field("workload", &ExperimentConfig::workload,
            "workload name resolved through WorkloadRegistry",
            check::NotEmpty());
    b.Nested("cluster", &ExperimentConfig::cluster, ClusterConfigSchema(),
             "simulated cluster topology and cost model");
    b.Nested("ycsb", &ExperimentConfig::ycsb, YcsbConfigSchema(),
             "YCSB workload parameters");
    b.Nested("tpcc", &ExperimentConfig::tpcc, TpccConfigSchema(),
             "TPC-C workload parameters");
    b.Time("dynamic_period_s", &ExperimentConfig::dynamic_period, kSecond,
           "period length of the dynamic scenarios",
           check::Positive<SimTime>());
    b.Field("concurrency", &ExperimentConfig::concurrency,
            "closed-loop concurrency (0 = derive from execution mode)",
            check::NonNegative<int>());
    b.Time("warmup_s", &ExperimentConfig::warmup, kSecond,
           "warmup seconds before measurement",
           check::NonNegative<SimTime>());
    b.Time("duration_s", &ExperimentConfig::duration, kSecond,
           "measured seconds", check::Positive<SimTime>());
    b.Field("seed", &ExperimentConfig::seed, "RNG seed");
    b.Nested("lion", &ExperimentConfig::lion, LionOptionsSchema(),
             "Lion protocol options");
    b.Nested("predictor", &ExperimentConfig::predictor,
             PredictorConfigSchema(),
             "workload predictor (kind selects the implementation)");
    b.Nested("clay", &ExperimentConfig::clay, ClayConfigSchema(),
             "Clay baseline options");
    b.Nested("sim", &ExperimentConfig::sim, SimConfigSchema(),
             "simulator internals (scheduler choice; never affects results)");
    b.Nested("chaos", &ExperimentConfig::chaos, ChaosConfigSchema(),
             "scripted fault schedule, graceful degradation and post-run "
             "integrity checking (inactive while the schedule is empty)");
    b.Nested("recovery", &ExperimentConfig::recovery, RecoveryConfigSchema(),
             "durable log-backed recovery: crash replay + catch-up rejoin "
             "(inactive while enabled is false)");
    b.Nested("meta", &ExperimentConfig::meta, MetaConfigSchema(),
             "runtime meta-protocol candidates, flip thresholds, hysteresis "
             "and cost gate (active when protocol = \"meta\")");
    return std::move(b).Build();
  }();
  return schema;
}

// --- derived flag surface ----------------------------------------------------

std::vector<ConfigFlagGroup> ListFlagGroups(const ConfigSchema& schema) {
  std::vector<ConfigFlagGroup> groups;
  ConfigFlagGroup root;  // the schema's own scalars, in declaration order
  for (const ConfigFieldSpec& f : schema.fields()) {
    if (f.nested == nullptr) {
      root.flags.emplace_back(f.name, f.help);
      continue;
    }
    ConfigFlagGroup group;
    group.name = f.name;
    group.help = f.help;
    f.nested->ListPaths(f.name, &group.flags);
    groups.push_back(std::move(group));
  }
  if (!root.flags.empty()) groups.insert(groups.begin(), std::move(root));
  return groups;
}

std::string FlagsMarkdown(const ConfigSchema& schema,
                          const std::string& title) {
  std::string md = "# " + title + "\n\n";
  md += "Every field below is settable as `--<flag>=<value>` on the command "
        "line, as a dotted\npath in a JSON sweep axis, or as a (nested) key "
        "in a `--config` file. Derived from\nthe declared schema of `";
  md += schema.struct_name();
  md += "` — this listing never goes stale by hand.\n";
  for (const ConfigFlagGroup& g : ListFlagGroups(schema)) {
    md += "\n## ";
    md += g.name.empty() ? "top-level" : g.name;
    if (!g.help.empty()) {
      md += " — ";
      md += g.help;
    }
    md += "\n\n| flag | description |\n| --- | --- |\n";
    for (const auto& f : g.flags) {
      md += "| `--" + f.first + "` | " + f.second + " |\n";
    }
  }
  return md;
}

// --- typed conveniences -----------------------------------------------------

Status ParseExperimentConfig(const Json& v, ExperimentConfig* out) {
  return ExperimentConfigSchema().ParseJson(v, out);
}

Json EmitExperimentConfig(const ExperimentConfig& cfg) {
  return ExperimentConfigSchema().EmitJson(&cfg);
}

Status ValidateExperimentConfig(const ExperimentConfig& cfg) {
  return ExperimentConfigSchema().Validate(&cfg);
}

Status SetExperimentFlag(ExperimentConfig* cfg, const std::string& dotted,
                         const std::string& value) {
  return ExperimentConfigSchema().SetByPath(cfg, dotted, value);
}

}  // namespace lion
