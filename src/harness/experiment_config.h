// Declarative description of one experiment run, shared by the registries
// (factories read the slice they care about) and the experiment harness.
#pragma once

#include <cstdint>
#include <string>

#include "core/lion_protocol.h"
#include "core/predictor.h"
#include "protocols/clay.h"
#include "protocols/meta_config.h"
#include "replication/chaos_config.h"
#include "replication/cluster_config.h"
#include "replication/recovery_config.h"
#include "sim/sim_config.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace lion {

/// Protocol and workload names resolve through ProtocolRegistry and
/// WorkloadRegistry (see harness/registry.h); `--list` in the CLI or
/// Registry::Names() enumerates what is linked in.
struct ExperimentConfig {
  std::string protocol = "Lion";
  std::string workload = "ycsb";
  ClusterConfig cluster;
  YcsbConfig ycsb;
  TpccConfig tpcc;
  /// Period length for the dynamic scenarios (paper: 60 s, scaled here).
  SimTime dynamic_period = 5 * kSecond;

  /// Closed-loop concurrency; 0 = derive from the protocol's execution mode
  /// (nodes x workers for standard, a large open window for batch).
  int concurrency = 0;
  SimTime warmup = 1 * kSecond;
  SimTime duration = 3 * kSecond;
  uint64_t seed = 1;

  LionOptions lion;          // tuned per variant by the registered factories
  PredictorConfig predictor;
  ClayConfig clay;
  /// Simulator internals (event-scheduler choice); results are identical
  /// under every setting, so this is a performance A/B knob, sweepable like
  /// any other field.
  SimConfig sim;
  /// Scripted fault schedule + degradation knobs; inactive (and without
  /// any effect on results) while the schedule is empty.
  ChaosConfig chaos;
  /// Durable log-backed recovery: per-node replication log, crash replay +
  /// catch-up rejoin. Inactive (and without any effect on results) while
  /// recovery.enabled is false.
  RecoveryConfig recovery;
  /// Runtime meta-protocol (protocol = "meta"): child candidates, flip
  /// thresholds, hysteresis and cost gating. Ignored by every other
  /// protocol.
  MetaConfig meta;
};

}  // namespace lion
