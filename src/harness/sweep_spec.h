// JSON sweep grids: a declarative axis-list specification that expands into
// the SweepPoint vectors SweepRunner consumes, so figure-style grids run
// from checked-in files instead of recompiled C++.
//
// File format — one spec object, or an array of them expanded in order:
//
//   {
//     "name": "Fig7a",
//     "base": { "workload": "ycsb", "duration_s": 2,
//               "ycsb": { "skew_factor": 0.8 } },
//     "axes": [
//       { "path": "protocol", "values": ["2PC", "Lion"] },
//       { "path": "ycsb.cross_ratio",
//         "values": [0, 0.2, 0.5],
//         "labels": ["cross=0", "cross=20", "cross=50"] }
//     ]
//   }
//
// "base" overlays the ExperimentConfig defaults through the config schema
// (harness/config_schema.h); each axis "path" is a dotted schema path. The
// expansion is the cartesian product in declared order with the FIRST axis
// outermost, and each point is named "<name>/<label1>/<label2>/...". When
// "labels" is omitted, a value's label is "<leaf>=<value>" ("cross_ratio=0.2");
// explicit labels let checked-in grids reproduce the compiled binaries'
// point names exactly ("cross=20").
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "harness/experiment_config.h"
#include "harness/sweep_runner.h"

namespace lion {

/// One swept dimension: a dotted config path plus the values it takes.
struct SweepAxis {
  std::string path;
  std::vector<Json> values;
  /// Point-name fragments, same length as `values`.
  std::vector<std::string> labels;
};

/// One declarative grid over a base config.
struct SweepSpec {
  std::string name;
  ExperimentConfig base;
  std::vector<SweepAxis> axes;

  /// Parses one spec object ("name" required; "base"/"axes" optional).
  /// Unknown spec keys, unknown config keys in "base", length-mismatched
  /// "labels", and empty "values" are kInvalidArgument.
  static Status FromJson(const Json& v, SweepSpec* out);

  /// Product of the axis sizes (1 when there are no axes).
  size_t num_points() const;

  /// Appends the expanded grid to `*out`. Axis values resolve through the
  /// config schema, so a bad path or mistyped value reports its dotted
  /// location; configs are not otherwise validated here (SweepRunner
  /// surfaces per-point Build errors without aborting the sweep).
  Status Expand(std::vector<SweepPoint>* out) const;
};

/// Expands a whole sweep document (one spec object or an array of them).
Status ExpandSweepDocument(const Json& doc, std::vector<SweepPoint>* out);

/// Json::ParseFile + ExpandSweepDocument.
Status LoadSweepFile(const std::string& path, std::vector<SweepPoint>* out);

}  // namespace lion
