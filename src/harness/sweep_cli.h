// Shared front-end pieces for sweep-running binaries (bench::SweepMain and
// lion_bench_cli --sweep): repeat expansion with derived seeds, a TTY
// progress/ETA line, and per-point summary reporting with medians.
#pragma once

#include <cstdio>
#include <vector>

#include "harness/sweep_runner.h"

namespace lion {

/// True when stderr is an interactive terminal — progress/ETA lines are
/// suppressed otherwise (CI logs, redirects).
bool StderrIsTty();

/// Replicates every point `repeat` times in place (point i's runs stay
/// consecutive): run k is named "<name>/rep=k" and carries the derived seed
/// `base_seed + k`, so repeats sample independent executions while staying
/// fully deterministic. `repeat <= 1` returns the points unchanged.
std::vector<SweepPoint> ExpandRepeat(std::vector<SweepPoint> points,
                                     int repeat);

/// Returns an on_progress hook that rewrites one stderr status line:
///   [12/40 done, ~84s left] Fig7a/Lion/cross=50
/// ETA extrapolates mean wall time per completed run over the remainder.
/// Pass enabled=false (not a TTY, --json mode) for a no-op hook.
SweepOptions::ProgressFn MakeSweepProgress(bool enabled, size_t total);

/// Merged sweep JSON with repeat runs aggregated per point. With
/// `repeat <= 1` this is exactly SweepRunner::MergeJson. Otherwise each
/// declared point becomes one record carrying per-metric "median"/"min"/
/// "max" blocks over its successful runs (element-wise across the scalar
/// result fields; series are omitted — they live in individual-run mode):
///   {"sweep_size":N,"repeat":R,"runs":[
///     {"name":"Fig7a/Lion/cross=50","status":"OK","runs_ok":5,
///      "protocol":"Lion","workload":"ycsb","seed_base":1,
///      "median":{"throughput_txn_s":...,...},"min":{...},"max":{...}}]}
/// A point whose runs all failed reports the first failure's status/error.
/// Aggregation is order-deterministic, so the threads=1 vs threads=N
/// byte-identity guarantee of MergeJson carries over.
std::string MergeRepeatJson(const std::vector<SweepOutcome>& outcomes,
                            int repeat);

/// Prints one summary line per declared point, in declaration order. With
/// repeat > 1 the line reports the per-metric median across that point's
/// runs plus the throughput min/max spread:
///   name: ktxn/s=102.4 [98.1..104.0] p50_us=870 p95_us=2410 dist_pct=4.2
///     (median of 5)
/// Failed runs print their status instead. Returns true when every run
/// succeeded.
bool PrintSweepSummaries(std::FILE* out,
                         const std::vector<SweepOutcome>& outcomes,
                         int repeat);

}  // namespace lion
