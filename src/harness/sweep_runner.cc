#include "harness/sweep_runner.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

namespace lion {

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

void SweepRunner::Add(std::string name, ExperimentConfig config) {
  points_.push_back(SweepPoint{std::move(name), std::move(config)});
}

void SweepRunner::Add(SweepPoint point) { points_.push_back(std::move(point)); }

std::vector<SweepOutcome> SweepRunner::Run() {
  const size_t total = points_.size();
  std::vector<SweepOutcome> outcomes(total);
  if (total == 0) return outcomes;

  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  if (static_cast<size_t>(threads) > total) threads = static_cast<int>(total);

  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex progress_mutex;

  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      SweepOutcome& out = outcomes[i];
      out.name = points_[i].name;
      out.status = ExperimentBuilder(points_[i].config).Run(&out.result);
      size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.on_progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options_.on_progress(finished, total, out);
      }
    }
  };

  if (threads == 1) {
    // In-thread execution keeps single-threaded sweeps trivially debuggable
    // (no pool in the backtrace) and spawn-free.
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return outcomes;
}

std::string SweepRunner::MergeJson(const std::vector<SweepOutcome>& outcomes) {
  std::string json = "{\"sweep_size\":";
  json += std::to_string(outcomes.size());
  json += ",\"runs\":[";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const SweepOutcome& o = outcomes[i];
    if (i > 0) json += ",";
    json += "{\"name\":\"";
    AppendJsonEscaped(&json, o.name);
    json += "\",\"status\":\"";
    json += StatusCodeName(o.status.code());
    json += "\"";
    if (o.status.ok()) {
      json += ",\"result\":";
      json += o.result.ToJson();
    } else {
      json += ",\"error\":\"";
      AppendJsonEscaped(&json, o.status.message());
      json += "\"";
    }
    json += "}";
  }
  json += "]}";
  return json;
}

}  // namespace lion
