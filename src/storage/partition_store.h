// Authoritative per-partition record storage with versions and write locks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lion {

/// One stored record. `version` is bumped on every committed write and is the
/// basis for OCC validation; `lock_holder` implements short write locks for
/// the commit protocols and long granule locks for deterministic protocols.
struct Record {
  Value value = 0;
  Version version = 0;
  TxnId lock_holder = 0;  // 0 = unlocked
};

/// Authoritative key-value store for a single partition.
///
/// There is exactly one PartitionStore per partition regardless of replica
/// count: replicas are placement metadata plus LSN lag (see ReplicaGroup).
/// Optionally, secondary copies are materialized by the ReplicationManager
/// for consistency testing.
///
/// Storage is hybrid, tuned for the two key shapes the workloads produce.
/// The bulk-loaded range [0, record_count) — all of YCSB — lives in a dense
/// array, so the per-operation Read/VersionOf/lock path is one bounds check
/// and an index. Keys outside that range (TPC-C's (table<<40)|id space and
/// runtime inserts) live in a small open-addressing side table instead of a
/// node-based std::unordered_map: the store never erases, so lookups are a
/// multiplicative hash plus a short linear probe over contiguous slots.
/// Profiling put the old unordered_map lookup at >50% of whole-experiment
/// runtime, so this path is worth the specialization.
class PartitionStore {
 public:
  /// Creates the store and bulk-loads `record_count` records with keys
  /// [0, record_count) and value = key (workloads override as needed).
  /// `record_bytes` is only used for byte accounting (migration/replication).
  PartitionStore(PartitionId id, uint64_t record_count, uint64_t record_bytes);

  PartitionId id() const { return id_; }
  uint64_t record_count() const { return dense_.size() + sparse_.size(); }
  uint64_t record_bytes() const { return record_bytes_; }

  /// Total logical size used for migration cost accounting.
  uint64_t SizeBytes() const { return record_count() * record_bytes_; }

  /// Reads a record (value + version). NotFound if absent.
  Status Read(Key key, Value* value, Version* version) const {
    const Record* rec = FindRecord(key);
    if (rec == nullptr) return Status::NotFound("key");
    if (value != nullptr) *value = rec->value;
    if (version != nullptr) *version = rec->version;
    return Status::OK();
  }

  /// Writes a committed value, bumping the version. Inserts if absent.
  void Apply(Key key, Value value) {
    Record& rec = GetOrInsert(key);
    rec.value = value;
    rec.version++;
  }

  /// Returns the current version of `key`, or 0 if absent.
  Version VersionOf(Key key) const {
    const Record* rec = FindRecord(key);
    return rec == nullptr ? 0 : rec->version;
  }

  /// Tries to acquire the record's write lock for `txn`. Succeeds if free or
  /// already held by `txn` (re-entrant).
  bool TryLock(Key key, TxnId txn) {
    Record& rec = GetOrInsert(key);
    if (rec.lock_holder == 0 || rec.lock_holder == txn) {
      rec.lock_holder = txn;
      return true;
    }
    return false;
  }

  /// Releases the record's lock if held by `txn`.
  void Unlock(Key key, TxnId txn) {
    Record* rec = FindRecord(key);
    if (rec != nullptr && rec->lock_holder == txn) rec->lock_holder = 0;
  }

  /// True if `key` is locked by a transaction other than `txn`.
  bool IsLockedByOther(Key key, TxnId txn) const {
    const Record* rec = FindRecord(key);
    return rec != nullptr && rec->lock_holder != 0 && rec->lock_holder != txn;
  }

  /// Inserts a brand-new record (used by workload loaders / insert ops).
  void Insert(Key key, Value value) { GetOrInsert(key) = Record{value, 1, 0}; }

  /// Pre-sizes the sparse side table for `additional` upcoming inserts of
  /// non-dense keys, so bulk loaders (TPC-C Load) pay one rehash up front
  /// instead of log2(n) incremental growths per store.
  void ReserveSparse(uint64_t additional) {
    sparse_.Reserve(sparse_.size() + additional);
  }

  /// Sparse-table slot count (test/diagnostic hook; growth happens at 50%
  /// load, so capacity >= 2x the keys it holds).
  size_t sparse_capacity() const { return sparse_.capacity(); }

  bool Contains(Key key) const { return FindRecord(key) != nullptr; }

  /// Write-block flag used during remastering/migration: protocols consult
  /// this before issuing writes to the partition.
  bool write_blocked() const { return write_blocked_; }
  void set_write_blocked(bool blocked) { write_blocked_ = blocked; }

 private:
  /// Open-addressing side table for keys outside the dense range. No erase
  /// support (the store never deletes records), which keeps linear probing
  /// correct without tombstones. The all-ones key doubles as the empty-slot
  /// marker, so that one key is stored out of band (reserved_/has_reserved_)
  /// rather than in a slot — every 64-bit key behaves correctly.
  class SparseRecords {
   public:
    SparseRecords() : slots_(kMinCapacity), shift_(64 - kMinCapacityLog2) {}

    const Record* Find(Key key) const {
      if (key == kEmptyKey) return has_reserved_ ? &reserved_ : nullptr;
      size_t i = IndexFor(key);
      for (;;) {
        const Slot& s = slots_[i];
        if (s.key == key) return &s.rec;
        if (s.key == kEmptyKey) return nullptr;
        i = (i + 1) & (slots_.size() - 1);
      }
    }

    Record* Find(Key key) {
      return const_cast<Record*>(
          static_cast<const SparseRecords*>(this)->Find(key));
    }

    Record& GetOrInsert(Key key);

    /// Grows (never shrinks) to hold `count` keys without further rehashes.
    void Reserve(size_t count);

    size_t size() const { return size_ + (has_reserved_ ? 1 : 0); }
    size_t capacity() const { return slots_.size(); }

   private:
    friend class PartitionStore;
    /// Empty-slot marker; the key with this value lives in reserved_.
    static constexpr Key kEmptyKey = ~static_cast<Key>(0);
    static constexpr size_t kMinCapacityLog2 = 6;
    static constexpr size_t kMinCapacity = size_t{1} << kMinCapacityLog2;
    struct Slot {
      Key key = kEmptyKey;
      Record rec;
    };

    size_t IndexFor(Key key) const {
      // Fibonacci hashing: table ids live in the high bits of TPC-C keys,
      // so masking raw keys would collide every same-id pair.
      return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
    }
    void Grow();
    void Rehash(size_t new_capacity);  // power of two > slots_.size()

    std::vector<Slot> slots_;  // size is always a power of two
    int shift_;
    size_t size_ = 0;
    Record reserved_;  // the record for kEmptyKey itself, if ever inserted
    bool has_reserved_ = false;
  };

  const Record* FindRecord(Key key) const {
    if (key < dense_.size()) return &dense_[key];
    return sparse_.Find(key);
  }
  Record* FindRecord(Key key) {
    if (key < dense_.size()) return &dense_[key];
    return sparse_.Find(key);
  }
  Record& GetOrInsert(Key key) {
    if (key < dense_.size()) return dense_[key];
    return sparse_.GetOrInsert(key);
  }

  PartitionId id_;
  uint64_t record_bytes_;
  bool write_blocked_;
  std::vector<Record> dense_;  // keys [0, dense_.size()), bulk-loaded
  SparseRecords sparse_;       // everything else (TPC-C tables, inserts)
};

}  // namespace lion
