// Authoritative per-partition record storage with versions and write locks.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lion {

/// One stored record. `version` is bumped on every committed write and is the
/// basis for OCC validation; `lock_holder` implements short write locks for
/// the commit protocols and long granule locks for deterministic protocols.
struct Record {
  Value value = 0;
  Version version = 0;
  TxnId lock_holder = 0;  // 0 = unlocked
};

/// Authoritative key-value store for a single partition.
///
/// There is exactly one PartitionStore per partition regardless of replica
/// count: replicas are placement metadata plus LSN lag (see ReplicaGroup).
/// Optionally, secondary copies are materialized by the ReplicationManager
/// for consistency testing.
class PartitionStore {
 public:
  /// Creates the store and bulk-loads `record_count` records with keys
  /// [0, record_count) and value = key (workloads override as needed).
  /// `record_bytes` is only used for byte accounting (migration/replication).
  PartitionStore(PartitionId id, uint64_t record_count, uint64_t record_bytes);

  PartitionId id() const { return id_; }
  uint64_t record_count() const { return records_.size(); }
  uint64_t record_bytes() const { return record_bytes_; }

  /// Total logical size used for migration cost accounting.
  uint64_t SizeBytes() const { return records_.size() * record_bytes_; }

  /// Reads a record (value + version). NotFound if absent.
  Status Read(Key key, Value* value, Version* version) const;

  /// Writes a committed value, bumping the version. Inserts if absent.
  void Apply(Key key, Value value);

  /// Returns the current version of `key`, or 0 if absent.
  Version VersionOf(Key key) const;

  /// Tries to acquire the record's write lock for `txn`. Succeeds if free or
  /// already held by `txn` (re-entrant).
  bool TryLock(Key key, TxnId txn);

  /// Releases the record's lock if held by `txn`.
  void Unlock(Key key, TxnId txn);

  /// True if `key` is locked by a transaction other than `txn`.
  bool IsLockedByOther(Key key, TxnId txn) const;

  /// Inserts a brand-new record (used by workload loaders / insert ops).
  void Insert(Key key, Value value);

  bool Contains(Key key) const { return records_.count(key) > 0; }

  /// Write-block flag used during remastering/migration: protocols consult
  /// this before issuing writes to the partition.
  bool write_blocked() const { return write_blocked_; }
  void set_write_blocked(bool blocked) { write_blocked_ = blocked; }

 private:
  PartitionId id_;
  uint64_t record_bytes_;
  bool write_blocked_;
  std::unordered_map<Key, Record> records_;
};

}  // namespace lion
