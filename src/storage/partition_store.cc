#include "storage/partition_store.h"

namespace lion {

PartitionStore::PartitionStore(PartitionId id, uint64_t record_count,
                               uint64_t record_bytes)
    : id_(id), record_bytes_(record_bytes), write_blocked_(false) {
  records_.reserve(record_count);
  for (uint64_t k = 0; k < record_count; ++k) {
    records_.emplace(static_cast<Key>(k), Record{static_cast<Value>(k), 1, 0});
  }
}

Status PartitionStore::Read(Key key, Value* value, Version* version) const {
  auto it = records_.find(key);
  if (it == records_.end()) return Status::NotFound("key");
  if (value != nullptr) *value = it->second.value;
  if (version != nullptr) *version = it->second.version;
  return Status::OK();
}

void PartitionStore::Apply(Key key, Value value) {
  Record& rec = records_[key];
  rec.value = value;
  rec.version++;
}

Version PartitionStore::VersionOf(Key key) const {
  auto it = records_.find(key);
  return it == records_.end() ? 0 : it->second.version;
}

bool PartitionStore::TryLock(Key key, TxnId txn) {
  Record& rec = records_[key];
  if (rec.lock_holder == 0 || rec.lock_holder == txn) {
    rec.lock_holder = txn;
    return true;
  }
  return false;
}

void PartitionStore::Unlock(Key key, TxnId txn) {
  auto it = records_.find(key);
  if (it != records_.end() && it->second.lock_holder == txn) {
    it->second.lock_holder = 0;
  }
}

bool PartitionStore::IsLockedByOther(Key key, TxnId txn) const {
  auto it = records_.find(key);
  return it != records_.end() && it->second.lock_holder != 0 &&
         it->second.lock_holder != txn;
}

void PartitionStore::Insert(Key key, Value value) {
  records_[key] = Record{value, 1, 0};
}

}  // namespace lion
