#include "storage/partition_store.h"

namespace lion {

PartitionStore::PartitionStore(PartitionId id, uint64_t record_count,
                               uint64_t record_bytes)
    : id_(id), record_bytes_(record_bytes), write_blocked_(false) {
  dense_.resize(record_count);
  for (uint64_t k = 0; k < record_count; ++k) {
    dense_[k] = Record{static_cast<Value>(k), 1, 0};
  }
}

Record& PartitionStore::SparseRecords::GetOrInsert(Key key) {
  if (key == kEmptyKey) {
    if (!has_reserved_) {
      has_reserved_ = true;
      reserved_ = Record{};
    }
    return reserved_;
  }
  // Grow at 50% load so probe chains stay short.
  if ((size_ + 1) * 2 > slots_.size()) Grow();
  size_t i = IndexFor(key);
  for (;;) {
    Slot& s = slots_[i];
    if (s.key == key) return s.rec;
    if (s.key == kEmptyKey) {
      s.key = key;
      s.rec = Record{};
      size_++;
      return s.rec;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

void PartitionStore::SparseRecords::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  shift_--;
  for (const Slot& s : old) {
    if (s.key == kEmptyKey) continue;
    size_t i = IndexFor(s.key);
    while (slots_[i].key != kEmptyKey) i = (i + 1) & (slots_.size() - 1);
    slots_[i] = s;
  }
}

}  // namespace lion
