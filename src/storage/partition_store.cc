#include "storage/partition_store.h"

namespace lion {

PartitionStore::PartitionStore(PartitionId id, uint64_t record_count,
                               uint64_t record_bytes)
    : id_(id), record_bytes_(record_bytes), write_blocked_(false) {
  dense_.resize(record_count);
  for (uint64_t k = 0; k < record_count; ++k) {
    dense_[k] = Record{static_cast<Value>(k), 1, 0};
  }
}

Record& PartitionStore::SparseRecords::GetOrInsert(Key key) {
  if (key == kEmptyKey) {
    if (!has_reserved_) {
      has_reserved_ = true;
      reserved_ = Record{};
    }
    return reserved_;
  }
  // Grow at 50% load so probe chains stay short.
  if ((size_ + 1) * 2 > slots_.size()) Grow();
  size_t i = IndexFor(key);
  for (;;) {
    Slot& s = slots_[i];
    if (s.key == key) return s.rec;
    if (s.key == kEmptyKey) {
      s.key = key;
      s.rec = Record{};
      size_++;
      return s.rec;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

void PartitionStore::SparseRecords::Grow() { Rehash(slots_.size() * 2); }

void PartitionStore::SparseRecords::Reserve(size_t count) {
  // Match GetOrInsert's growth trigger ((size+1)*2 > capacity): holding
  // `count` keys without a further rehash needs capacity >= 2*count.
  size_t target = slots_.size();
  while (count * 2 > target) target *= 2;
  if (target != slots_.size()) Rehash(target);
}

void PartitionStore::SparseRecords::Rehash(size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  shift_ = 64;
  for (size_t c = new_capacity; c > 1; c >>= 1) shift_--;
  for (const Slot& s : old) {
    if (s.key == kEmptyKey) continue;
    size_t i = IndexFor(s.key);
    while (slots_[i].key != kEmptyKey) i = (i + 1) & (slots_.size() - 1);
    slots_[i] = s;
  }
}

}  // namespace lion
