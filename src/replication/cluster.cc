#include "replication/cluster.h"

namespace lion {

Cluster::Cluster(Simulator* sim, const ClusterConfig& config)
    : sim_(sim),
      config_(config),
      network_(sim, config.net, config.num_nodes),
      router_(config.num_nodes, config.total_partitions()) {
  router_.InitRoundRobin(config_.init_replicas);

  pools_.reserve(config_.num_nodes);
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    pools_.push_back(std::make_unique<WorkerPool>(sim_, config_.workers_per_node));
  }

  std::vector<PartitionStore*> raw_stores;
  stores_.reserve(config_.total_partitions());
  for (PartitionId p = 0; p < config_.total_partitions(); ++p) {
    stores_.push_back(std::make_unique<PartitionStore>(
        p, config_.records_per_partition, config_.record_bytes));
    raw_stores.push_back(stores_.back().get());
  }

  replication_ = std::make_unique<ReplicationManager>(sim_, &network_, &router_,
                                                      raw_stores, config_);
  remaster_ = std::make_unique<RemasterManager>(sim_, &network_, &router_,
                                                raw_stores, config_);
  migration_ = std::make_unique<MigrationManager>(
      sim_, &network_, &router_, raw_stores, remaster_.get(), config_);
}

void Cluster::Start() {
  replication_->Start();
  if (recovery_log_) recovery_log_->Start();
}

void Cluster::EnableRecovery(const RecoveryConfig& config) {
  if (recovery_log_) return;
  recovery_log_ = std::make_unique<RecoveryLog>(sim_, config, num_nodes(),
                                                num_partitions());
  replication_->SetRecoveryLog(recovery_log_.get());
}

NodeId Cluster::LeastLoadedNode() const {
  NodeId best = 0;
  double best_load = pools_[0]->Load();
  for (NodeId n = 1; n < config_.num_nodes; ++n) {
    double load = pools_[n]->Load();
    if (load < best_load) {
      best_load = load;
      best = n;
    }
  }
  return best;
}

}  // namespace lion
