// Chaos controller: arms a parsed ChaosConfig schedule on the simulator.
//
// Each event acts on the cluster through the same primitives tests use by
// hand — FailureInjector for crashes/recoveries, Network for partitions,
// ReplicationManager for lag storms, MigrationManager for scripted
// migrations — so a schedule composes deterministic failure scenarios
// (crash-mid-migration, partition-then-crash, storm-then-failover) out of
// already-tested pieces. Fired events are logged with their simulated
// times for the fault_events series in the experiment result.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "replication/chaos_config.h"
#include "replication/cluster.h"
#include "replication/failure_injector.h"

namespace lion {

class ChaosController {
 public:
  /// `cluster` must outlive the controller. The schedule must already
  /// satisfy Validate (ExperimentBuilder guarantees this; direct users
  /// should call Validate themselves).
  ChaosController(Cluster* cluster, const ChaosConfig& config);

  /// Cross-field validation of chaos.* against a concrete cluster: every
  /// entry parses and every node/partition id is in range.
  static Status Validate(const ChaosConfig& config, const ClusterConfig& cluster,
                         const std::string& path = "chaos");

  /// Schedules every event at its absolute simulated time (relative to the
  /// current time, normally 0). Call once, after Cluster::Start().
  void Arm();

  FailureInjector& injector() { return injector_; }
  const FailureInjector& injector() const { return injector_; }

  const std::vector<ChaosEvent>& schedule() const { return events_; }

  /// One fired event, stamped with its actual fire time.
  struct Fired {
    SimTime at = 0;
    std::string description;
  };
  const std::vector<Fired>& fired() const { return fired_; }

 private:
  void Fire(const ChaosEvent& ev);

  Cluster* cluster_;
  ChaosConfig config_;
  std::vector<ChaosEvent> events_;
  FailureInjector injector_;
  std::vector<Fired> fired_;
  bool armed_ = false;
};

}  // namespace lion
