#include "replication/remaster_manager.h"

#include <utility>
#include <memory>

namespace lion {

RemasterManager::RemasterManager(Simulator* sim, Network* network,
                                 RouterTable* table,
                                 std::vector<PartitionStore*> stores,
                                 const ClusterConfig& config)
    : sim_(sim),
      network_(network),
      table_(table),
      stores_(std::move(stores)),
      config_(config),
      remasters_completed_(0),
      remasters_failed_(0),
      total_remaster_time_(0) {}

bool RemasterManager::IsBlocked(PartitionId pid) const {
  return table_->group(pid).reconfig_in_progress();
}

void RemasterManager::WaitUntilAvailable(PartitionId pid,
                                         std::function<void()> fn) {
  if (!IsBlocked(pid)) {
    fn();
    return;
  }
  waiters_[pid].push_back(std::move(fn));
}

void RemasterManager::Remaster(PartitionId pid, NodeId target,
                               std::function<void(bool)> done) {
  ReplicaGroup* group = table_->mutable_group(pid);
  if (group->primary() == target) {
    done(true);
    return;
  }
  if (group->reconfig_in_progress() || !group->HasSecondary(target) ||
      !table_->IsNodeUp(target) || group->IsRecovering(target)) {
    // A recovering target is rejected outright: its replica is still behind
    // the durable log it replayed and must not take mastership until the
    // catch-up stream completes.
    remasters_failed_++;
    done(false);
    return;
  }

  // Block the partition: only one primary may serve at any time (split-brain
  // avoidance, Sec. III). New operations queue via WaitUntilAvailable. The
  // generation token lets a failover preempt this remaster: its completion
  // then backs off instead of unblocking a partition it no longer owns.
  const uint64_t token = group->BeginReconfig();
  stores_[pid]->set_write_blocked(true);

  Lsn lag = group->LagOf(target);
  SimTime sync_time = config_.remaster_base_delay +
                      static_cast<SimTime>(lag) * config_.remaster_per_entry;
  NodeId old_primary = group->primary();

  SimTime started = sim_->Now();
  auto done_shared = std::make_shared<std::function<void(bool)>>(std::move(done));
  // Control message to the candidate, then log sync + election time.
  network_->Send(old_primary, target, MessageSizes::kRemasterCtl,
                 [this, pid, target, sync_time, started, token, done_shared]() {
                   sim_->Schedule(sync_time, [this, pid, target, started, token,
                                              done_shared]() {
                     ReplicaGroup* g = table_->mutable_group(pid);
                     if (token != g->reconfig_generation()) {
                       // A failover preempted this remaster; it owns the
                       // partition's block now.
                       remasters_failed_++;
                       (*done_shared)(false);
                       return;
                     }
                     if (!table_->IsNodeUp(target) ||
                         !g->HasSecondary(target) ||
                         g->IsRecovering(target)) {
                       // The candidate died during the sync — or crashed and
                       // came back mid-recovery: abort cleanly and unblock
                       // (the old primary still serves).
                       remasters_failed_++;
                       g->EndReconfig(token);
                       stores_[pid]->set_write_blocked(false);
                       ReleaseWaiters(pid);
                       (*done_shared)(false);
                       return;
                     }
                     g->Ack(target, g->primary_lsn());
                     g->Promote(target);
                     total_remaster_time_ += sim_->Now() - started;
                     remasters_completed_++;
                     Finish(pid);
                     (*done_shared)(true);
                   });
                 });
}

void RemasterManager::Finish(PartitionId pid) {
  ReplicaGroup* group = table_->mutable_group(pid);
  group->set_reconfig_in_progress(false);
  stores_[pid]->set_write_blocked(false);
  ReleaseWaiters(pid);
}

void RemasterManager::ReleaseWaiters(PartitionId pid) {
  if (IsBlocked(pid)) return;
  auto it = waiters_.find(pid);
  if (it == waiters_.end()) return;
  std::deque<std::function<void()>> pending;
  pending.swap(it->second);
  waiters_.erase(it);
  for (auto& fn : pending) fn();
}

}  // namespace lion
