#include "replication/migration_manager.h"

#include <limits>
#include <memory>
#include <utility>

namespace lion {

MigrationManager::MigrationManager(Simulator* sim, Network* network,
                                   RouterTable* table,
                                   std::vector<PartitionStore*> stores,
                                   RemasterManager* remaster,
                                   const ClusterConfig& config)
    : sim_(sim),
      network_(network),
      table_(table),
      stores_(std::move(stores)),
      remaster_(remaster),
      config_(config),
      migrations_completed_(0),
      migrated_bytes_(0),
      evictions_(0) {}

void MigrationManager::AddReplica(PartitionId pid, NodeId target,
                                  std::function<void(bool)> done) {
  if (!table_->IsNodeUp(target)) {
    done(false);
    return;
  }
  ReplicaGroup* group = table_->mutable_group(pid);
  if (group->HasReplica(target)) {
    // Already hosted; just clear any delete flag so the replica stays.
    group->AddSecondary(target, 0);
    done(true);
    return;
  }
  NodeId src = group->primary();
  uint64_t bytes = stores_[pid]->SizeBytes();
  Lsn snapshot_lsn = group->primary_lsn();
  migrated_bytes_ += bytes;

  auto done_shared = std::make_shared<std::function<void(bool)>>(std::move(done));
  // Background copy: snapshot stream + fixed setup. Writes proceed at the
  // primary meanwhile; the new secondary starts at the snapshot LSN and
  // catches up through normal log shipping.
  sim_->Schedule(config_.migration_base_delay, [this, pid, src, target, bytes,
                                                snapshot_lsn, done_shared]() {
    network_->Send(src, target, bytes, [this, pid, target, snapshot_lsn,
                                        done_shared]() {
      if (!table_->IsNodeUp(target)) {
        // The target crashed while the copy streamed: registering its
        // replica would leave a live secondary on a down node.
        (*done_shared)(false);
        return;
      }
      table_->mutable_group(pid)->AddSecondary(target, snapshot_lsn);
      migrations_completed_++;
      (*done_shared)(true);
    });
  });
}

NodeId MigrationManager::EvictIfOverLimit(PartitionId pid, NodeId keep) {
  ReplicaGroup* group = table_->mutable_group(pid);
  if (group->LiveReplicaCount() <= config_.max_replicas) return kInvalidNode;
  // Remove the secondary with the lowest access utility. All secondaries of
  // one partition share the partition's frequency, so the least-recently
  // caught-up (largest lag) replica is the cheapest to drop.
  NodeId victim = kInvalidNode;
  Lsn worst_lag = 0;
  bool first = true;
  for (const ReplicaInfo& sec : group->secondaries()) {
    if (sec.delete_flag || sec.node == keep) continue;
    Lsn lag = group->primary_lsn() - sec.applied_lsn;
    if (first || lag > worst_lag) {
      worst_lag = lag;
      victim = sec.node;
      first = false;
    }
  }
  if (victim != kInvalidNode) {
    group->FlagForDelete(victim);
    evictions_++;
    // Physical removal happens shortly after; flagged replicas already stop
    // receiving log entries.
    sim_->Schedule(config_.epoch_interval, [this, pid, victim]() {
      ReplicaGroup* g = table_->mutable_group(pid);
      // The victim may have been re-added (cleared flag) meanwhile.
      for (const ReplicaInfo& sec : g->secondaries()) {
        if (sec.node == victim && sec.delete_flag) {
          g->RemoveSecondary(victim);
          break;
        }
      }
    });
  }
  return victim;
}

void MigrationManager::MoveMastershipLight(PartitionId pid, NodeId target,
                                           uint64_t accessed_bytes,
                                           std::function<void(bool)> done) {
  ReplicaGroup* group = table_->mutable_group(pid);
  if (group->primary() == target) {
    done(true);
    return;
  }
  if (group->reconfig_in_progress() || group->IsRecovering(target)) {
    // Recovering targets must not take mastership before catch-up completes.
    done(false);
    return;
  }
  const uint64_t token = group->BeginReconfig();
  stores_[pid]->set_write_blocked(true);
  NodeId src = group->primary();
  migrated_bytes_ += accessed_bytes;

  auto done_shared = std::make_shared<std::function<void(bool)>>(std::move(done));
  sim_->Schedule(config_.migration_base_delay, [this, pid, src, target,
                                                accessed_bytes, token,
                                                done_shared]() {
    network_->Send(src, target, accessed_bytes, [this, pid, target, token,
                                                 done_shared]() {
      ReplicaGroup* g = table_->mutable_group(pid);
      if (token != g->reconfig_generation()) {
        // A failover preempted this transfer and owns the block.
        (*done_shared)(false);
        return;
      }
      if (!table_->IsNodeUp(target) || g->IsRecovering(target)) {
        // Target died mid-transfer (or came back still recovering): abort
        // and unblock at the old primary.
        g->EndReconfig(token);
        stores_[pid]->set_write_blocked(false);
        remaster_->ReleaseWaiters(pid);
        (*done_shared)(false);
        return;
      }
      g->AddSecondary(target, g->primary_lsn());
      g->Promote(target);
      g->EndReconfig(token);
      stores_[pid]->set_write_blocked(false);
      migrations_completed_++;
      EvictIfOverLimit(pid, target);
      remaster_->ReleaseWaiters(pid);
      (*done_shared)(true);
    });
  });
}

void MigrationManager::MovePrimary(PartitionId pid, NodeId target,
                                   std::function<void(bool)> done) {
  if (!table_->IsNodeUp(target)) {
    done(false);
    return;
  }
  ReplicaGroup* group = table_->mutable_group(pid);
  if (group->primary() == target) {
    done(true);
    return;
  }
  if (group->IsRecovering(target)) {
    // The target holds a replayed-but-not-caught-up replica; promoting it
    // would serve stale state. The caller retries after catch-up settles.
    done(false);
    return;
  }
  if (group->HasSecondary(target)) {
    remaster_->Remaster(pid, target, std::move(done));
    return;
  }
  if (group->reconfig_in_progress()) {
    done(false);
    return;
  }
  // Full blocking copy: the "migration" whose downtime the paper attributes
  // to Leap/Clay. Writes block for the whole transfer.
  const uint64_t token = group->BeginReconfig();
  stores_[pid]->set_write_blocked(true);
  NodeId src = group->primary();
  uint64_t bytes = stores_[pid]->SizeBytes();
  migrated_bytes_ += bytes;

  auto done_shared = std::make_shared<std::function<void(bool)>>(std::move(done));
  sim_->Schedule(config_.migration_base_delay, [this, pid, src, target, bytes,
                                                token, done_shared]() {
    network_->Send(src, target, bytes, [this, pid, target, token,
                                        done_shared]() {
      ReplicaGroup* g = table_->mutable_group(pid);
      if (token != g->reconfig_generation()) {
        // A failover preempted this migration and owns the block.
        (*done_shared)(false);
        return;
      }
      if (!table_->IsNodeUp(target) || g->IsRecovering(target)) {
        // Target died mid-copy (or came back still recovering): abort and
        // unblock at the old primary.
        g->EndReconfig(token);
        stores_[pid]->set_write_blocked(false);
        remaster_->ReleaseWaiters(pid);
        (*done_shared)(false);
        return;
      }
      g->AddSecondary(target, g->primary_lsn());
      g->Promote(target);
      g->EndReconfig(token);
      stores_[pid]->set_write_blocked(false);
      migrations_completed_++;
      EvictIfOverLimit(pid, target);
      // Release operations queued behind the block.
      remaster_->ReleaseWaiters(pid);
      (*done_shared)(true);
    });
  });
}

}  // namespace lion
