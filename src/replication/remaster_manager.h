// Replica remastering: promoting a caught-up secondary to primary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "replication/cluster_config.h"
#include "replication/router_table.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/partition_store.h"

namespace lion {

/// Implements the remastering procedure of Sec. III:
///   1. pick a secondary as candidate; block new operations on the partition,
///   2. synchronize lagging log entries to the candidate,
///   3. elect the candidate as new primary and unblock.
///
/// Concurrent remaster attempts on the same partition conflict: the first
/// wins and later ones fail immediately (their transactions fall back to
/// distributed execution, Sec. III).
class RemasterManager {
 public:
  RemasterManager(Simulator* sim, Network* network, RouterTable* table,
                  std::vector<PartitionStore*> stores,
                  const ClusterConfig& config);

  /// Remasters `pid` onto `target`. `done(true)` once `target` is primary;
  /// `done(false)` if the partition is being reconfigured, or `target`
  /// holds no live secondary replica.
  ///
  /// The total duration is remaster_base_delay + lag * remaster_per_entry,
  /// plus the control-message round trip.
  void Remaster(PartitionId pid, NodeId target, std::function<void(bool)> done);

  /// True while `pid` is blocked by an in-flight remaster (operations must
  /// wait; see WaitUntilAvailable).
  bool IsBlocked(PartitionId pid) const;

  /// Runs `fn` as soon as `pid` is not blocked (immediately if free).
  void WaitUntilAvailable(PartitionId pid, std::function<void()> fn);

  /// Releases all waiters of `pid` if the partition is no longer blocked.
  /// Called by other reconfiguration paths (e.g. blocking migration) that
  /// share the partition block with remastering.
  void ReleaseWaiters(PartitionId pid);

  uint64_t remasters_completed() const { return remasters_completed_; }
  uint64_t remasters_failed() const { return remasters_failed_; }
  SimTime total_remaster_time() const { return total_remaster_time_; }

 private:
  void Finish(PartitionId pid);

  Simulator* sim_;
  Network* network_;
  RouterTable* table_;
  std::vector<PartitionStore*> stores_;
  ClusterConfig config_;

  uint64_t remasters_completed_;
  uint64_t remasters_failed_;
  SimTime total_remaster_time_;
  std::unordered_map<PartitionId, std::deque<std::function<void()>>> waiters_;
};

}  // namespace lion
