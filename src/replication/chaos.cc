#include "replication/chaos.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace lion {

namespace {

// Splits on single spaces, skipping repeated whitespace.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

// "500ms" / "1.5s" / "250us" / "40ns" -> SimTime nanoseconds.
Status ParseDuration(const std::string& text, SimTime* out) {
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    i++;
  }
  if (i == 0) {
    return Status::InvalidArgument("expected a duration, got \"" + text + "\"");
  }
  std::string num = text.substr(0, i);
  std::string unit = text.substr(i);
  double scale = 0.0;
  if (unit == "s") scale = static_cast<double>(kSecond);
  else if (unit == "ms") scale = static_cast<double>(kMillisecond);
  else if (unit == "us") scale = static_cast<double>(kMicrosecond);
  else if (unit == "ns") scale = 1.0;
  else {
    return Status::InvalidArgument("unknown time unit \"" + unit +
                                   "\" in \"" + text +
                                   "\" (one of: s, ms, us, ns)");
  }
  char* end = nullptr;
  double v = std::strtod(num.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0.0) {
    return Status::InvalidArgument("bad duration value \"" + text + "\"");
  }
  *out = static_cast<SimTime>(v * scale);
  return Status::OK();
}

Status ParseInt(const std::string& text, const char* what, int* out) {
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty() || v < 0) {
    return Status::InvalidArgument(std::string("expected a non-negative ") +
                                   what + ", got \"" + text + "\"");
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

// "2,3" -> {2, 3}.
Status ParseNodeList(const std::string& text, std::vector<NodeId>* out) {
  out->clear();
  std::string cur;
  std::istringstream in(text);
  while (std::getline(in, cur, ',')) {
    int n = 0;
    Status s = ParseInt(cur, "node id", &n);
    if (!s.ok()) return s;
    out->push_back(n);
  }
  if (out->empty()) {
    return Status::InvalidArgument("expected a node list, got \"" + text + "\"");
  }
  return Status::OK();
}

std::string TimeLabel(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%gms",
                static_cast<double>(t) / static_cast<double>(kMillisecond));
  return buf;
}

}  // namespace

Status ChaosEvent::Parse(const std::string& text, ChaosEvent* out) {
  std::vector<std::string> tokens = Tokenize(text);
  if (tokens.size() < 2) {
    return Status::InvalidArgument("\"" + text +
                                   "\": expected \"<time> <kind> [args]\"");
  }
  ChaosEvent ev;
  Status s = ParseDuration(tokens[0], &ev.at);
  if (!s.ok()) return s;

  const std::string& kind = tokens[1];
  auto want_args = [&](size_t n) {
    return tokens.size() == 2 + n
               ? Status::OK()
               : Status::InvalidArgument("\"" + text + "\": " + kind +
                                         " takes " + std::to_string(n) +
                                         " argument(s)");
  };
  if (kind == "crash" || kind == "crash_dirty" || kind == "recover" ||
      kind == "truncate") {
    ev.kind = kind == "crash"         ? ChaosEventKind::kCrash
              : kind == "crash_dirty" ? ChaosEventKind::kCrashDirty
              : kind == "recover"     ? ChaosEventKind::kRecover
                                      : ChaosEventKind::kTruncate;
    s = want_args(1);
    if (!s.ok()) return s;
    int n = 0;
    s = ParseInt(tokens[2], "node id", &n);
    if (!s.ok()) return s;
    ev.node = n;
  } else if (kind == "partition") {
    ev.kind = ChaosEventKind::kPartition;
    s = want_args(1);
    if (!s.ok()) return s;
    s = ParseNodeList(tokens[2], &ev.island);
    if (!s.ok()) return s;
  } else if (kind == "heal") {
    ev.kind = ChaosEventKind::kHeal;
    s = want_args(0);
    if (!s.ok()) return s;
  } else if (kind == "lag_storm") {
    ev.kind = ChaosEventKind::kLagStorm;
    s = want_args(1);
    if (!s.ok()) return s;
    s = ParseDuration(tokens[2], &ev.duration);
    if (!s.ok()) return s;
    if (ev.duration <= 0) {
      return Status::InvalidArgument("\"" + text +
                                     "\": lag_storm duration must be > 0");
    }
  } else if (kind == "migrate") {
    ev.kind = ChaosEventKind::kMigrate;
    s = want_args(2);
    if (!s.ok()) return s;
    int pid = 0, n = 0;
    s = ParseInt(tokens[2], "partition id", &pid);
    if (!s.ok()) return s;
    s = ParseInt(tokens[3], "node id", &n);
    if (!s.ok()) return s;
    ev.partition = pid;
    ev.node = n;
  } else {
    return Status::InvalidArgument(
        "\"" + text + "\": unknown event kind \"" + kind +
        "\" (one of: crash, crash_dirty, recover, truncate, partition, heal, "
        "lag_storm, migrate)");
  }
  *out = ev;
  return Status::OK();
}

std::string ChaosEvent::Describe() const {
  switch (kind) {
    case ChaosEventKind::kCrash:
      return "crash node=" + std::to_string(node);
    case ChaosEventKind::kCrashDirty:
      return "crash_dirty node=" + std::to_string(node);
    case ChaosEventKind::kRecover:
      return "recover node=" + std::to_string(node);
    case ChaosEventKind::kTruncate:
      return "truncate node=" + std::to_string(node);
    case ChaosEventKind::kPartition: {
      std::string nodes;
      for (size_t i = 0; i < island.size(); ++i) {
        if (i > 0) nodes += ",";
        nodes += std::to_string(island[i]);
      }
      return "partition island=" + nodes;
    }
    case ChaosEventKind::kHeal:
      return "heal";
    case ChaosEventKind::kLagStorm:
      return "lag_storm duration=" + TimeLabel(duration);
    case ChaosEventKind::kMigrate:
      return "migrate partition=" + std::to_string(partition) +
             " to node=" + std::to_string(node);
  }
  return "?";
}

ChaosController::ChaosController(Cluster* cluster, const ChaosConfig& config)
    : cluster_(cluster), config_(config), injector_(cluster) {
  for (const std::string& entry : config_.schedule) {
    ChaosEvent ev;
    Status s = ChaosEvent::Parse(entry, &ev);
    // Validate rejects unparseable schedules before a controller exists;
    // a direct user who skipped it just loses the bad entry.
    if (s.ok()) events_.push_back(std::move(ev));
  }
}

Status ChaosController::Validate(const ChaosConfig& config,
                                 const ClusterConfig& cluster,
                                 const std::string& path) {
  int num_nodes = cluster.num_nodes;
  int num_partitions = cluster.total_partitions();
  for (size_t i = 0; i < config.schedule.size(); ++i) {
    std::string at = path + ".schedule[" + std::to_string(i) + "]";
    ChaosEvent ev;
    Status s = ChaosEvent::Parse(config.schedule[i], &ev);
    if (!s.ok()) return Status::InvalidArgument(at + ": " + s.message());
    std::vector<NodeId> nodes = ev.island;
    if (ev.node != kInvalidNode) nodes.push_back(ev.node);
    for (NodeId n : nodes) {
      if (n < 0 || n >= num_nodes) {
        return Status::InvalidArgument(
            at + ": node " + std::to_string(n) + " out of range (num_nodes = " +
            std::to_string(num_nodes) + ")");
      }
    }
    if (ev.kind == ChaosEventKind::kMigrate &&
        (ev.partition < 0 || ev.partition >= num_partitions)) {
      return Status::InvalidArgument(
          at + ": partition " + std::to_string(ev.partition) +
          " out of range (total partitions = " + std::to_string(num_partitions) +
          ")");
    }
  }
  if (config.max_unavailable_retries < 0) {
    return Status::InvalidArgument(path +
                                   ".max_unavailable_retries: must be >= 0");
  }
  if (config.unavailable_backoff <= 0) {
    return Status::InvalidArgument(path +
                                   ".unavailable_backoff_us: must be > 0");
  }
  return Status::OK();
}

void ChaosController::Arm() {
  if (armed_) return;
  armed_ = true;
  SimTime now = cluster_->sim()->Now();
  for (const ChaosEvent& ev : events_) {
    SimTime delay = ev.at > now ? ev.at - now : 0;
    // Strong events: a schedule always plays out fully, including under
    // RunUntilIdle drains — that is what makes heals deterministic.
    cluster_->sim()->Schedule(delay, [this, &ev]() { Fire(ev); });
  }
}

void ChaosController::Fire(const ChaosEvent& ev) {
  switch (ev.kind) {
    case ChaosEventKind::kCrash:
      injector_.FailNode(ev.node);
      break;
    case ChaosEventKind::kCrashDirty:
      injector_.FailNodeDirty(ev.node);
      break;
    case ChaosEventKind::kRecover:
      injector_.RecoverNode(ev.node);
      break;
    case ChaosEventKind::kTruncate:
      if (cluster_->recovery_log() != nullptr) {
        cluster_->recovery_log()->SnapshotNode(ev.node);
      }
      break;
    case ChaosEventKind::kPartition:
      cluster_->network().StartPartition(ev.island);
      break;
    case ChaosEventKind::kHeal:
      cluster_->network().HealPartition();
      break;
    case ChaosEventKind::kLagStorm: {
      cluster_->replication().PauseShipping();
      cluster_->sim()->Schedule(ev.duration, [this]() {
        cluster_->replication().ResumeShipping();
        fired_.push_back(Fired{cluster_->sim()->Now(), "lag_storm end"});
      });
      break;
    }
    case ChaosEventKind::kMigrate:
      cluster_->migration().MovePrimary(ev.partition, ev.node, [](bool) {});
      break;
  }
  fired_.push_back(Fired{cluster_->sim()->Now(), ev.Describe()});
}

}  // namespace lion
