#include "replication/integrity.h"

#include <algorithm>

#include "replication/cluster.h"
#include "replication/failure_injector.h"

namespace lion {

namespace {

std::string PidLabel(PartitionId pid) {
  return "partition " + std::to_string(pid);
}

}  // namespace

IntegrityReport CheckClusterIntegrity(Cluster* cluster,
                                      const FailureInjector* injector,
                                      const CommitLedger* ledger) {
  IntegrityReport report;
  const RouterTable& table = cluster->router();
  const RecoveryLog* log = cluster->recovery_log();

  auto is_down = [&](NodeId n) {
    return injector != nullptr && injector->IsDown(n);
  };
  std::vector<bool> unavailable(static_cast<size_t>(cluster->num_partitions()),
                                false);
  if (injector != nullptr) {
    for (PartitionId pid : injector->unavailable()) {
      unavailable[static_cast<size_t>(pid)] = true;
    }
  }

  for (PartitionId pid = 0; pid < cluster->num_partitions(); ++pid) {
    report.partitions_checked++;
    const ReplicaGroup& group = table.group(pid);
    const PartitionStore* store = cluster->store(pid);
    bool marked_unavailable = unavailable[static_cast<size_t>(pid)];

    // Exactly one live primary: a valid primary node that is not doubled as
    // a secondary, and no node appearing twice in the secondary list.
    NodeId primary = group.primary();
    if (primary < 0 || primary >= cluster->num_nodes()) {
      report.violations.push_back(PidLabel(pid) + ": invalid primary node " +
                                  std::to_string(primary));
      continue;
    }
    std::vector<NodeId> seen;
    for (const ReplicaInfo& sec : group.secondaries()) {
      if (sec.node == primary) {
        report.violations.push_back(PidLabel(pid) + ": primary node " +
                                    std::to_string(primary) +
                                    " doubles as a secondary");
      }
      if (std::find(seen.begin(), seen.end(), sec.node) != seen.end()) {
        report.violations.push_back(PidLabel(pid) + ": node " +
                                    std::to_string(sec.node) +
                                    " holds two secondary replicas");
      }
      seen.push_back(sec.node);
      // Crashed nodes must be dropped from their groups (a flagged-for-
      // delete replica is already logically removed).
      if (!sec.delete_flag && is_down(sec.node)) {
        report.violations.push_back(PidLabel(pid) + ": live secondary on down node " +
                                    std::to_string(sec.node));
      }
      // LSN bookkeeping: no secondary may run ahead of its primary.
      if (sec.applied_lsn > group.primary_lsn()) {
        report.violations.push_back(
            PidLabel(pid) + ": secondary on node " + std::to_string(sec.node) +
            " applied_lsn " + std::to_string(sec.applied_lsn) +
            " ahead of primary_lsn " + std::to_string(group.primary_lsn()));
      }
      // Replay invariant: after the drain no replica may be stuck in
      // recovering state unless its node crashed again or its catch-up is
      // legitimately parked on an unavailable partition.
      if (log != nullptr && sec.recovering && !sec.delete_flag &&
          !is_down(sec.node) && !marked_unavailable) {
        report.violations.push_back(
            PidLabel(pid) + ": replica on node " + std::to_string(sec.node) +
            " still recovering after quiesce (applied_lsn " +
            std::to_string(sec.applied_lsn) + " of " +
            std::to_string(group.primary_lsn()) + ")");
      }
    }

    // A down primary after quiesce means a failover never completed; that
    // is only legal for partitions with no surviving copy, which must be
    // tracked as unavailable and stay write-blocked.
    if (is_down(primary) && !marked_unavailable) {
      report.violations.push_back(PidLabel(pid) + ": primary on down node " +
                                  std::to_string(primary) +
                                  " without an unavailable marker");
    }

    // No write-blocked partition outlives its failover: after the drain the
    // only legitimately blocked partitions are the unavailable ones.
    if (store->write_blocked() && !marked_unavailable) {
      report.violations.push_back(PidLabel(pid) +
                                  ": write-blocked after quiesce");
    }
    if (group.reconfig_in_progress() && !marked_unavailable) {
      report.violations.push_back(PidLabel(pid) +
                                  ": reconfiguration still in progress");
    }
    if (marked_unavailable && !store->write_blocked()) {
      report.violations.push_back(PidLabel(pid) +
                                  ": marked unavailable but not write-blocked");
    }

    // Committed effects present: each committed write bumped the record's
    // version exactly once (extra bumps from aborted-then-retried attempts
    // only push the version higher, so >= is the invariant).
    if (ledger != nullptr) {
      for (const auto& kv : ledger->writes(pid)) {
        report.committed_writes_checked++;
        if (!store->Contains(kv.first)) {
          report.violations.push_back(
              PidLabel(pid) + ": committed write to key " +
              std::to_string(kv.first) + " lost (record absent)");
        } else if (store->VersionOf(kv.first) < kv.second) {
          report.violations.push_back(
              PidLabel(pid) + ": key " + std::to_string(kv.first) +
              " version " + std::to_string(store->VersionOf(kv.first)) +
              " below committed write count " + std::to_string(kv.second));
        }
      }
    }

    // Recovery-log accounting. Entries are appended 1:1 with primary-LSN
    // advances, so per partition the durable prefix (snapshots + live
    // suffix) plus everything lost to dirty crashes must add up exactly to
    // the group's LSN — snapshot+truncate and crash truncation may move
    // entries between buckets but never invent or leak them.
    if (log != nullptr) {
      uint64_t accounted = log->DurableEntries(pid) + log->LostEntries(pid);
      if (accounted != group.primary_lsn()) {
        report.violations.push_back(
            PidLabel(pid) + ": recovery log accounts for " +
            std::to_string(accounted) + " entries (durable " +
            std::to_string(log->DurableEntries(pid)) + " + lost " +
            std::to_string(log->LostEntries(pid)) + ") but primary_lsn is " +
            std::to_string(group.primary_lsn()));
      }
      // Snapshot + suffix (+ lost, tracked separately) must reconstruct the
      // ledger's committed effects: the log never under-counts a committed
      // write (retried aborts may over-count, so >= is the invariant).
      if (ledger != nullptr) {
        std::unordered_map<Key, uint64_t> reconstructed =
            log->ReconstructWrites(pid);
        for (const auto& kv : ledger->writes(pid)) {
          report.log_writes_checked++;
          auto it = reconstructed.find(kv.first);
          uint64_t have = it == reconstructed.end() ? 0 : it->second;
          if (have < kv.second) {
            report.violations.push_back(
                PidLabel(pid) + ": recovery log reconstructs " +
                std::to_string(have) + " writes to key " +
                std::to_string(kv.first) + ", ledger committed " +
                std::to_string(kv.second));
          }
        }
      }
    }
  }

  // Breaches the recovery state machine itself detected while running (e.g.
  // a catch-up overrunning its shipped range).
  if (injector != nullptr) {
    for (const std::string& v : injector->recovery_violations()) {
      report.violations.push_back(v);
    }
  }
  return report;
}

}  // namespace lion
