// Replica placement metadata for one partition.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace lion {

/// One secondary replica's state.
struct ReplicaInfo {
  NodeId node = kInvalidNode;
  /// Highest log sequence number applied at this replica. The gap to the
  /// primary's LSN is the "lag" that remastering must synchronize.
  Lsn applied_lsn = 0;
  /// Set when the replica has been chosen for removal (max-replica limit);
  /// replication stops shipping to flagged replicas (Sec. IV-B2).
  bool delete_flag = false;
  /// Set while a crash-recovered replica is replaying/catching up from its
  /// durable log position: epoch shipping skips it (the dedicated catch-up
  /// stream owns its applied LSN) and elections rank it below any caught-up
  /// copy. Cleared when catch-up reaches the primary's LSN.
  bool recovering = false;
};

/// Placement and log state of all replicas of one partition.
///
/// Exactly one primary serves writes; secondaries receive the log
/// asynchronously. This is metadata only — record data lives in the
/// authoritative PartitionStore.
class ReplicaGroup {
 public:
  ReplicaGroup() = default;
  ReplicaGroup(PartitionId pid, NodeId primary) : pid_(pid), primary_(primary) {}

  PartitionId partition() const { return pid_; }
  NodeId primary() const { return primary_; }
  Lsn primary_lsn() const { return primary_lsn_; }

  const std::vector<ReplicaInfo>& secondaries() const { return secondaries_; }

  /// True if `node` holds any replica (primary or secondary).
  bool HasReplica(NodeId node) const {
    return node == primary_ || FindSecondary(node) != nullptr;
  }

  /// True if `node` holds a live (non-delete-flagged) secondary replica.
  bool HasSecondary(NodeId node) const {
    const ReplicaInfo* info = FindSecondary(node);
    return info != nullptr && !info->delete_flag;
  }

  /// Number of live replicas (primary + unflagged secondaries).
  int LiveReplicaCount() const {
    int n = 1;
    for (const auto& s : secondaries_)
      if (!s.delete_flag) n++;
    return n;
  }

  /// Applied LSN of the secondary on `node`; 0 if absent.
  Lsn AppliedLsnOf(NodeId node) const {
    const ReplicaInfo* info = FindSecondary(node);
    return info == nullptr ? 0 : info->applied_lsn;
  }

  /// True if `node` holds a secondary still replaying/catching up.
  bool IsRecovering(NodeId node) const {
    const ReplicaInfo* info = FindSecondary(node);
    return info != nullptr && info->recovering;
  }

  /// Marks/unmarks the secondary on `node` as recovering.
  void SetRecovering(NodeId node, bool v) {
    if (ReplicaInfo* info = MutableSecondary(node)) info->recovering = v;
  }

  /// Log lag of the secondary on `node`; 0 if it is the primary or absent.
  Lsn LagOf(NodeId node) const {
    const ReplicaInfo* info = FindSecondary(node);
    if (info == nullptr) return 0;
    return primary_lsn_ - info->applied_lsn;
  }

  /// Appends `entries` writes to the primary's log.
  void Advance(Lsn entries) { primary_lsn_ += entries; }

  /// Marks the secondary on `node` as caught up to `lsn`.
  void Ack(NodeId node, Lsn lsn) {
    ReplicaInfo* info = MutableSecondary(node);
    if (info != nullptr && info->applied_lsn < lsn) info->applied_lsn = lsn;
  }

  /// Registers a new secondary on `node`, caught up to `lsn`.
  /// No-op if the node already holds a replica (clears any delete flag).
  void AddSecondary(NodeId node, Lsn lsn) {
    if (node == primary_) return;
    if (ReplicaInfo* info = MutableSecondary(node)) {
      info->delete_flag = false;
      if (info->applied_lsn < lsn) info->applied_lsn = lsn;
      return;
    }
    secondaries_.push_back(ReplicaInfo{node, lsn, false});
  }

  /// Removes the secondary hosted on `node` (if any).
  void RemoveSecondary(NodeId node) {
    secondaries_.erase(
        std::remove_if(secondaries_.begin(), secondaries_.end(),
                       [node](const ReplicaInfo& r) { return r.node == node; }),
        secondaries_.end());
  }

  /// Flags the secondary on `node` for deletion (replication stops).
  void FlagForDelete(NodeId node) {
    if (ReplicaInfo* info = MutableSecondary(node)) info->delete_flag = true;
  }

  /// Promotes the (caught-up) secondary on `node` to primary; the old
  /// primary becomes a fully-caught-up secondary. Caller guarantees `node`
  /// holds a secondary.
  void Promote(NodeId node) {
    NodeId old_primary = primary_;
    RemoveSecondary(node);
    primary_ = node;
    AddSecondary(old_primary, primary_lsn_);
  }

  /// Used at bootstrap / by full-copy migration to change the primary when
  /// `node` may not have held a replica before.
  void ForcePrimary(NodeId node) {
    if (node == primary_) return;
    NodeId old_primary = primary_;
    RemoveSecondary(node);
    primary_ = node;
    AddSecondary(old_primary, primary_lsn_);
  }

  bool reconfig_in_progress() const { return reconfig_in_progress_; }
  void set_reconfig_in_progress(bool v) { reconfig_in_progress_ = v; }

  /// Starts a reconfiguration (remaster, migration, failover) and returns a
  /// generation token. A scheduled completion must present its token to
  /// EndReconfig; a failover that preempts an in-flight reconfiguration
  /// calls BeginReconfig again, which bumps the generation and thereby
  /// invalidates the superseded completion — it observes EndReconfig()
  /// returning false and must leave the group's block alone.
  uint64_t BeginReconfig() {
    reconfig_in_progress_ = true;
    return ++reconfig_generation_;
  }

  /// Ends the reconfiguration identified by `token`. Returns false (and
  /// changes nothing) if a newer reconfiguration has taken over.
  bool EndReconfig(uint64_t token) {
    if (token != reconfig_generation_ || !reconfig_in_progress_) return false;
    reconfig_in_progress_ = false;
    return true;
  }

  uint64_t reconfig_generation() const { return reconfig_generation_; }

 private:
  const ReplicaInfo* FindSecondary(NodeId node) const {
    for (const auto& s : secondaries_)
      if (s.node == node) return &s;
    return nullptr;
  }
  ReplicaInfo* MutableSecondary(NodeId node) {
    for (auto& s : secondaries_)
      if (s.node == node) return &s;
    return nullptr;
  }

  PartitionId pid_ = kInvalidPartition;
  NodeId primary_ = kInvalidNode;
  Lsn primary_lsn_ = 0;
  bool reconfig_in_progress_ = false;
  uint64_t reconfig_generation_ = 0;
  std::vector<ReplicaInfo> secondaries_;
};

}  // namespace lion
