// Scripted fault schedules (chaos.*) and graceful-degradation knobs.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lion {

/// Configuration of the chaos subsystem (chaos.* schema fields). An empty
/// schedule disables chaos entirely: nothing is armed, no extra result
/// fields are emitted, and fixed-seed runs stay byte-identical to a build
/// without the subsystem.
struct ChaosConfig {
  /// Timed fault events, one per entry, each "<time> <kind> [args]":
  ///
  ///   "500ms crash 1"          fail node 1 (failover elections start); with
  ///                            recovery.enabled the crash is clean — the
  ///                            node's durable log fully survives
  ///   "520ms crash_dirty 1"    fail node 1 discarding the unsynced log
  ///                            suffix (entries younger than
  ///                            recovery.durability_lag_us); same as crash
  ///                            without a recovery log
  ///   "900ms recover 1"        bring node 1 back (replay + catch-up with
  ///                            recovery.enabled, empty otherwise)
  ///   "950ms truncate 1"       force a snapshot+truncate of node 1's
  ///                            recovery log (no-op without one)
  ///   "1s partition 2,3"       isolate nodes 2,3 from the rest; messages
  ///                            across the cut are parked until heal
  ///   "1.4s heal"              reconnect and retransmit parked messages
  ///   "1.2s lag_storm 200ms"   pause log shipping for 200ms (lag builds)
  ///   "700ms migrate 3 2"      force MovePrimary of partition 3 to node 2
  ///                            (schedules deterministic crash-mid-migration
  ///                            scenarios together with a timed crash)
  ///
  /// Times accept ns/us/ms/s suffixes. Events fire in schedule order at
  /// their absolute simulated times (t=0 is experiment start).
  std::vector<std::string> schedule;

  /// Bounded retries for a transaction touching an unavailable partition
  /// (primary down or unreachable across an active network partition)
  /// before it completes as aborted_unavailable instead of blocking.
  int max_unavailable_retries = 8;
  /// Base backoff between unavailable retries; attempt k waits k * base
  /// (deterministic — no RNG draw, so chaos cannot perturb seeds).
  SimTime unavailable_backoff = 1 * kMillisecond;
  /// Run the post-run integrity checker after a run with faults.
  bool check_integrity = true;
  /// Record committed write-sets so the integrity checker can verify every
  /// committed transaction's effects are present on the surviving replicas.
  bool track_commits = true;
};

inline bool ChaosActive(const ChaosConfig& cfg) {
  return !cfg.schedule.empty();
}

/// One parsed schedule entry.
enum class ChaosEventKind {
  kCrash,
  kCrashDirty,
  kRecover,
  kPartition,
  kHeal,
  kLagStorm,
  kMigrate,
  kTruncate,
};

struct ChaosEvent {
  SimTime at = 0;
  ChaosEventKind kind = ChaosEventKind::kHeal;
  NodeId node = kInvalidNode;  // crash / crash_dirty / recover / truncate / migrate
  PartitionId partition = kInvalidPartition;   // migrate
  std::vector<NodeId> island;                  // partition
  SimTime duration = 0;                        // lag_storm

  /// Parses one schedule entry ("500ms crash 1"). Grammar errors are
  /// kInvalidArgument with the offending token; id-range checks against a
  /// concrete cluster happen in ChaosController::Validate.
  static Status Parse(const std::string& text, ChaosEvent* out);

  /// Human-readable form for logs and the fault_events result series.
  std::string Describe() const;
};

}  // namespace lion
