// Asynchronous log shipping with epoch-based group commit (Sec. V).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "replication/cluster_config.h"
#include "replication/router_table.h"
#include "sim/network.h"
#include "sim/periodic_timer.h"
#include "sim/simulator.h"
#include "storage/partition_store.h"

namespace lion {

class RecoveryLog;

/// Ships committed writes from each primary to its secondaries once per
/// epoch (10 ms default), mirroring the paper's epoch-based group commit:
/// commits inside an epoch become visible when the epoch ends and the
/// buffered log entries are dispatched asynchronously to all replicas.
class ReplicationManager {
 public:
  ReplicationManager(Simulator* sim, Network* network, RouterTable* table,
                     std::vector<PartitionStore*> stores,
                     const ClusterConfig& config);

  /// Starts the periodic epoch ticker.
  void Start();

  /// Appends one committed write to the partition's replication log.
  /// The write was already applied to the authoritative store by commit.
  void Append(PartitionId pid, Key key, Value value);

  /// Runs `fn` at the end of the current epoch (group-commit visibility).
  void OnEpochEnd(std::function<void()> fn);

  /// Time of the next epoch boundary.
  SimTime NextEpochEnd() const;

  /// Current epoch number.
  uint64_t epoch() const { return epoch_; }

  /// Forces an immediate epoch close (used by batch protocols when the
  /// batch-size limit is hit before the timer).
  void CloseEpochNow();

  // --- durable recovery log (recovery.*) -----------------------------------
  /// Attaches the per-node durable log (null detaches): committed appends
  /// and shipping acks are then recorded durably so crashed nodes can
  /// replay. `log` must outlive this manager.
  void SetRecoveryLog(RecoveryLog* log) { recovery_log_ = log; }

  /// Ships the log range (from, upto] of `pid` from its current primary to
  /// the recovering replica on `dst`, priced through the topology
  /// bandwidth/latency tables like epoch shipping. On delivery the replica
  /// is acked to `upto` (and the position recorded durably), then
  /// `on_delivered` runs. One catch-up batch per call; the failure injector
  /// chains batches and re-validates its generation token between them.
  void ShipRange(PartitionId pid, NodeId dst, Lsn from, Lsn upto,
                 std::function<void()> on_delivered);

  uint64_t catch_up_entries_shipped() const {
    return catch_up_entries_shipped_;
  }

  // --- replica-lag storms (chaos schedules) --------------------------------
  /// Pauses log shipping: epochs keep closing (group-commit visibility is
  /// unaffected) but pending entries stay buffered and secondaries stop
  /// acking, so replica lag builds — and with it, failover election time.
  /// Nests; shipping resumes at the matching ResumeShipping.
  void PauseShipping() { shipping_paused_++; }
  void ResumeShipping() {
    if (shipping_paused_ > 0) shipping_paused_--;
  }
  bool shipping_paused() const { return shipping_paused_ > 0; }

  /// Per-replica materialized copies for consistency tests. Only populated
  /// when config.materialize_secondaries is set. Indexed [pid][node].
  const std::unordered_map<Key, Value>* MaterializedCopy(PartitionId pid,
                                                         NodeId node) const;

  uint64_t total_entries_shipped() const { return total_entries_shipped_; }

 private:
  struct LogEntry {
    Key key;
    Value value;
  };

  void ShipPartition(PartitionId pid);
  /// Advances the replica's applied LSN and records it durably when a
  /// recovery log is attached.
  void Ack(PartitionId pid, NodeId dst, Lsn lsn);

  Simulator* sim_;
  Network* network_;
  RouterTable* table_;
  std::vector<PartitionStore*> stores_;
  ClusterConfig config_;

  uint64_t epoch_;
  SimTime epoch_started_at_;
  PeriodicTimer epoch_timer_;
  uint64_t total_entries_shipped_;
  RecoveryLog* recovery_log_ = nullptr;
  uint64_t catch_up_entries_shipped_ = 0;
  int shipping_paused_ = 0;
  std::vector<std::vector<LogEntry>> pending_;          // per partition
  std::vector<std::function<void()>> epoch_waiters_;
  // [pid][node] -> materialized secondary copy.
  std::unordered_map<uint64_t, std::unordered_map<Key, Value>> copies_;
};

}  // namespace lion
