#include "replication/failure_injector.h"

#include <algorithm>

#include "core/geo_placement.h"

namespace lion {

FailureInjector::FailureInjector(Cluster* cluster)
    : cluster_(cluster), down_(cluster->num_nodes(), false) {}

void FailureInjector::FailNode(NodeId node) {
  if (down_[node]) return;
  down_[node] = true;
  cluster_->router().SetNodeUp(node, false);

  for (PartitionId pid = 0; pid < cluster_->num_partitions(); ++pid) {
    ReplicaGroup* group = cluster_->router().mutable_group(pid);
    if (group->primary() == node) {
      Failover(pid, node);
    } else if (group->HasReplica(node)) {
      // A secondary died: just drop it from the group (log shipping to it
      // stops; the planner may re-provision elsewhere).
      group->RemoveSecondary(node);
    }
  }
  ReprovisionGeo();
}

void FailureInjector::Failover(PartitionId pid, NodeId dead) {
  ReplicaGroup* group = cluster_->router().mutable_group(pid);

  // Elect the most caught-up live secondary. With geo constraints attached,
  // candidates in allowed regions win over disallowed ones regardless of
  // lag (a hot-pinned partition stays in its region while any allowed copy
  // survives); availability still beats placement, so with no allowed
  // candidate the election falls back to any live secondary.
  NodeId candidate = kInvalidNode;
  Lsn best_lsn = 0;
  bool candidate_allowed = false;
  const bool geo = geo_ != nullptr && geo_->active();
  for (const ReplicaInfo& sec : group->secondaries()) {
    if (sec.delete_flag || down_[sec.node]) continue;
    bool allowed =
        !geo || geo_->AllowsPrimaryOn(cluster_->router(), pid, sec.node);
    if (candidate == kInvalidNode || (allowed && !candidate_allowed) ||
        (allowed == candidate_allowed && sec.applied_lsn > best_lsn)) {
      candidate = sec.node;
      best_lsn = sec.applied_lsn;
      candidate_allowed = allowed;
    }
  }
  if (candidate == kInvalidNode) {
    MarkUnavailable(pid);
    return;
  }

  // Election: block the partition, sync the lag, promote, drop the dead
  // replica. Reuses the remastering cost model (Sec. III: the failover path
  // and planned remastering share the log-sync + election mechanism).
  // BeginReconfig bumps the group's reconfiguration generation, so a
  // migration or remaster completion already in flight for this partition
  // finds its token stale and backs off instead of fighting the failover
  // for the write block.
  const ClusterConfig& cfg = cluster_->config();
  const uint64_t token = group->BeginReconfig();
  cluster_->store(pid)->set_write_blocked(true);
  Lsn lag = group->primary_lsn() - best_lsn;
  SimTime delay = cfg.remaster_base_delay +
                  static_cast<SimTime>(lag) * cfg.remaster_per_entry;
  cluster_->sim()->Schedule(delay, [this, pid, candidate, dead, token]() {
    ReplicaGroup* g = cluster_->router().mutable_group(pid);
    // A newer reconfiguration (e.g. the candidate's own node failing, which
    // re-ran this election) owns the partition now; this completion is
    // stale.
    if (token != g->reconfig_generation()) return;
    // Re-validate the winner at promotion time: the candidate may have died
    // (or its replica been dropped) while the election was syncing the log.
    // Promoting a dead node would violate the single-live-primary
    // invariant, so re-run the election against the current membership.
    if (down_[candidate] || !g->HasSecondary(candidate)) {
      elections_rerun_++;
      Failover(pid, dead);
      return;
    }
    g->Ack(candidate, g->primary_lsn());
    g->Promote(candidate);
    g->RemoveSecondary(dead);  // the old primary's copy died with the node
    g->EndReconfig(token);
    cluster_->store(pid)->set_write_blocked(false);
    failovers_completed_++;
    cluster_->remaster().ReleaseWaiters(pid);
    ReprovisionGeo();
  });
}

void FailureInjector::MarkUnavailable(PartitionId pid) {
  ReplicaGroup* group = cluster_->router().mutable_group(pid);
  // No live copy: the partition is unavailable until recovery. Taking a
  // fresh reconfiguration generation invalidates any in-flight migration /
  // remaster completion so it cannot unblock the partition underneath us.
  group->BeginReconfig();
  cluster_->store(pid)->set_write_blocked(true);
  if (std::find(unavailable_.begin(), unavailable_.end(), pid) ==
      unavailable_.end()) {
    unavailable_.push_back(pid);
  }
}

void FailureInjector::RecoverNode(NodeId node) {
  if (!down_[node]) return;
  down_[node] = false;
  cluster_->router().SetNodeUp(node, true);
  // Unavailable partitions whose only copy was on the recovered node become
  // writable again (the copy survived the restart in this model).
  std::vector<PartitionId> still_unavailable;
  for (PartitionId pid : unavailable_) {
    ReplicaGroup* group = cluster_->router().mutable_group(pid);
    if (group->primary() == node) {
      group->set_reconfig_in_progress(false);
      cluster_->store(pid)->set_write_blocked(false);
      cluster_->remaster().ReleaseWaiters(pid);
    } else {
      still_unavailable.push_back(pid);
    }
  }
  unavailable_ = std::move(still_unavailable);
  ReprovisionGeo();
}

void FailureInjector::ReprovisionGeo() {
  if (geo_ == nullptr || !geo_->active()) return;
  geo_->EnsureRegionalReplicas(&cluster_->router(),
                               cluster_->config().max_replicas);
}

}  // namespace lion
