#include "replication/failure_injector.h"

#include <algorithm>

#include "core/geo_placement.h"

namespace lion {

FailureInjector::FailureInjector(Cluster* cluster)
    : cluster_(cluster),
      down_(cluster->num_nodes(), false),
      crash_generation_(cluster->num_nodes(), 0),
      crash_image_(cluster->num_nodes()),
      catch_ups_in_flight_(cluster->num_nodes(), 0),
      recovery_started_(cluster->num_nodes(), -1),
      recovery_partitions_(cluster->num_nodes(), 0) {}

void FailureInjector::FailNode(NodeId node) { FailNodeImpl(node, false); }

void FailureInjector::FailNodeDirty(NodeId node) { FailNodeImpl(node, true); }

void FailureInjector::FailNodeImpl(NodeId node, bool dirty) {
  if (down_[node]) return;

  RecoveryLog* log = cluster_->recovery_log();
  crash_generation_[node]++;  // invalidates catch-up steps TO this node
  if (log != nullptr) {
    // Capture the replay image before the groups drop this node's replicas:
    // the durable position of every partition it hosts, after the crash's
    // fsync-horizon truncation.
    log->Crash(node, dirty);
    crash_image_[node].clear();
    for (PartitionId pid = 0; pid < cluster_->num_partitions(); ++pid) {
      if (cluster_->router().group(pid).HasReplica(node)) {
        crash_image_[node][pid] = log->DurableLsn(node, pid, dirty);
      }
    }
    // A second crash mid-recovery abandons the previous recovery attempt;
    // its in-flight steps die against the bumped generation.
    catch_ups_in_flight_[node] = 0;
    recovery_started_[node] = -1;
    recovery_partitions_[node] = 0;
  }

  down_[node] = true;
  cluster_->router().SetNodeUp(node, false);

  for (PartitionId pid = 0; pid < cluster_->num_partitions(); ++pid) {
    ReplicaGroup* group = cluster_->router().mutable_group(pid);
    if (group->primary() == node) {
      Failover(pid, node);
    } else if (group->HasReplica(node)) {
      // A secondary died: just drop it from the group (log shipping to it
      // stops; the planner may re-provision elsewhere).
      group->RemoveSecondary(node);
    }
  }
  ReprovisionGeo();
}

void FailureInjector::Failover(PartitionId pid, NodeId dead) {
  ReplicaGroup* group = cluster_->router().mutable_group(pid);

  // Elect the most caught-up live secondary. A replica still replaying/
  // catching up after a crash never beats a caught-up copy — promoting a
  // stale log while a complete one exists would lose acknowledged writes —
  // and is electable only as a last resort (counted as a stale election at
  // promotion). Within a staleness tier, geo-allowed candidates win over
  // disallowed ones regardless of lag (a hot-pinned partition stays in its
  // region while any allowed copy survives); availability still beats
  // placement, so with no allowed candidate the election falls back to any
  // live secondary.
  NodeId candidate = kInvalidNode;
  Lsn best_lsn = 0;
  bool candidate_allowed = false;
  bool candidate_recovering = false;
  const bool geo = geo_ != nullptr && geo_->active();
  for (const ReplicaInfo& sec : group->secondaries()) {
    if (sec.delete_flag || down_[sec.node]) continue;
    bool allowed =
        !geo || geo_->AllowsPrimaryOn(cluster_->router(), pid, sec.node);
    bool better;
    if (candidate == kInvalidNode) {
      better = true;
    } else if (sec.recovering != candidate_recovering) {
      better = !sec.recovering;
    } else if (allowed != candidate_allowed) {
      better = allowed;
    } else {
      better = sec.applied_lsn > best_lsn;
    }
    if (better) {
      candidate = sec.node;
      best_lsn = sec.applied_lsn;
      candidate_allowed = allowed;
      candidate_recovering = sec.recovering;
    }
  }
  if (candidate == kInvalidNode) {
    MarkUnavailable(pid);
    return;
  }

  // Election: block the partition, sync the lag, promote, drop the dead
  // replica. Reuses the remastering cost model (Sec. III: the failover path
  // and planned remastering share the log-sync + election mechanism).
  // BeginReconfig bumps the group's reconfiguration generation, so a
  // migration or remaster completion already in flight for this partition
  // finds its token stale and backs off instead of fighting the failover
  // for the write block.
  const ClusterConfig& cfg = cluster_->config();
  const uint64_t token = group->BeginReconfig();
  cluster_->store(pid)->set_write_blocked(true);
  Lsn lag = group->primary_lsn() - best_lsn;
  SimTime delay = cfg.remaster_base_delay +
                  static_cast<SimTime>(lag) * cfg.remaster_per_entry;
  cluster_->sim()->Schedule(delay, [this, pid, candidate, dead, token]() {
    ReplicaGroup* g = cluster_->router().mutable_group(pid);
    // A newer reconfiguration (e.g. the candidate's own node failing, which
    // re-ran this election) owns the partition now; this completion is
    // stale.
    if (token != g->reconfig_generation()) return;
    // Re-validate the winner at promotion time: the candidate may have died
    // (or its replica been dropped) while the election was syncing the log.
    // Promoting a dead node would violate the single-live-primary
    // invariant, so re-run the election against the current membership.
    if (down_[candidate] || !g->HasSecondary(candidate)) {
      elections_rerun_++;
      Failover(pid, dead);
      return;
    }
    if (g->IsRecovering(candidate)) {
      // The winner is still catching up. If a caught-up copy appeared while
      // the election was syncing, re-run — a stale promotion must never win
      // over a complete log. Otherwise this is the last resort: promote the
      // stale copy and surface it instead of passing silently.
      bool caught_up_exists = false;
      for (const ReplicaInfo& sec : g->secondaries()) {
        if (sec.delete_flag || down_[sec.node] || sec.recovering) continue;
        caught_up_exists = true;
        break;
      }
      if (caught_up_exists) {
        elections_rerun_++;
        Failover(pid, dead);
        return;
      }
      stale_elections_++;
      g->SetRecovering(candidate, false);
    }
    g->Ack(candidate, g->primary_lsn());
    if (RecoveryLog* log = cluster_->recovery_log()) {
      log->NoteApplied(candidate, pid, g->primary_lsn());
    }
    g->Promote(candidate);
    g->RemoveSecondary(dead);  // the old primary's copy died with the node
    g->EndReconfig(token);
    cluster_->store(pid)->set_write_blocked(false);
    failovers_completed_++;
    cluster_->remaster().ReleaseWaiters(pid);
    ResumeParkedCatchUps(pid);
    ReprovisionGeo();
  });
}

void FailureInjector::MarkUnavailable(PartitionId pid) {
  ReplicaGroup* group = cluster_->router().mutable_group(pid);
  // No live copy: the partition is unavailable until recovery. Taking a
  // fresh reconfiguration generation invalidates any in-flight migration /
  // remaster completion so it cannot unblock the partition underneath us.
  group->BeginReconfig();
  cluster_->store(pid)->set_write_blocked(true);
  if (std::find(unavailable_.begin(), unavailable_.end(), pid) ==
      unavailable_.end()) {
    unavailable_.push_back(pid);
  }
}

void FailureInjector::RecoverNode(NodeId node) {
  if (!down_[node]) return;
  down_[node] = false;
  cluster_->router().SetNodeUp(node, true);
  RecoveryLog* log = cluster_->recovery_log();
  const uint64_t generation = crash_generation_[node];

  // Unavailable partitions whose only copy was on the recovered node resume
  // on that copy — there is nothing better to elect. With a recovery log
  // this is a last-resort election of a possibly stale durable prefix: when
  // the prefix is short of the group's LSN, count it instead of resuming
  // silently. (Without a log the copy is assumed to survive the restart
  // intact, as before.)
  std::vector<PartitionId> still_unavailable;
  for (PartitionId pid : unavailable_) {
    ReplicaGroup* group = cluster_->router().mutable_group(pid);
    if (group->primary() == node) {
      if (log != nullptr) {
        auto it = crash_image_[node].find(pid);
        Lsn durable = it != crash_image_[node].end() ? it->second : 0;
        if (durable < group->primary_lsn()) stale_elections_++;
      }
      group->set_reconfig_in_progress(false);
      cluster_->store(pid)->set_write_blocked(false);
      cluster_->remaster().ReleaseWaiters(pid);
      ResumeParkedCatchUps(pid);
    } else {
      still_unavailable.push_back(pid);
    }
  }
  unavailable_ = std::move(still_unavailable);

  // Replay: re-register every replica from the crash image at its durable
  // LSN, in recovering state, and start streaming the missing suffix from
  // the live primary.
  int replayed = 0;
  if (log != nullptr) {
    for (const auto& [pid, durable] : crash_image_[node]) {
      ReplicaGroup* group = cluster_->router().mutable_group(pid);
      // Partitions this node still nominally masters were either resumed
      // above (unavailable) or belong to an in-flight failover that will
      // drop this node's copy when it completes — the replica is forfeit.
      if (group->primary() == node) continue;
      if (group->HasReplica(node)) continue;  // already re-provisioned
      Lsn base = std::min<Lsn>(durable, group->primary_lsn());
      group->AddSecondary(node, base);
      group->SetRecovering(node, true);
      active_catch_up_[CatchUpKey(node, pid)] =
          InFlightCatchUp{base, base, cluster_->sim()->Now()};
      replayed++;
    }
    crash_image_[node].clear();
  }
  if (replayed > 0) {
    recoveries_replayed_++;
    recovery_started_[node] = cluster_->sim()->Now();
    recovery_partitions_[node] = replayed;
    catch_ups_in_flight_[node] = replayed;
    // Kick off the streams only after every replica is registered: a step
    // may complete synchronously (zero lag) and run geo re-provisioning,
    // which must see the full replayed state.
    for (PartitionId pid = 0; pid < cluster_->num_partitions(); ++pid) {
      if (active_catch_up_.count(CatchUpKey(node, pid)) > 0) {
        CatchUpStep(node, pid, generation);
      }
    }
  } else {
    // Nothing to replay (or no log): provision against the rejoined node
    // immediately, as before.
    ReprovisionGeo();
  }
}

void FailureInjector::CatchUpStep(NodeId node, PartitionId pid,
                                  uint64_t generation) {
  const uint64_t key = CatchUpKey(node, pid);
  // A newer crash of this node abandoned the recovery this step belongs to
  // (its bookkeeping was reset at FailNode); just drop the stale state.
  if (generation != crash_generation_[node] || down_[node]) {
    active_catch_up_.erase(key);
    return;
  }
  ReplicaGroup* group = cluster_->router().mutable_group(pid);
  if (!group->HasSecondary(node) || !group->IsRecovering(node)) {
    // Evicted, or promoted by a last-resort election: the catch-up stream
    // no longer owns this replica.
    active_catch_up_.erase(key);
    CatchUpSettled(node);
    return;
  }
  Lsn applied = group->AppliedLsnOf(node);
  if (applied >= group->primary_lsn()) {
    FinishCatchUp(node, pid);
    return;
  }
  NodeId primary = group->primary();
  if (down_[primary]) {
    // No live primary to stream from: park until the failover completes or
    // the primary's node recovers.
    parked_catch_up_[pid].push_back({node, generation});
    return;
  }
  int batch = cluster_->recovery_log()->config().catch_up_batch;
  Lsn upto = std::min<Lsn>(applied + static_cast<Lsn>(batch),
                           group->primary_lsn());
  active_catch_up_[key].shipped_to = upto;
  cluster_->replication().ShipRange(pid, node, applied, upto,
                                    [this, node, pid, generation]() {
                                      CatchUpStep(node, pid, generation);
                                    });
}

void FailureInjector::FinishCatchUp(NodeId node, PartitionId pid) {
  const uint64_t key = CatchUpKey(node, pid);
  ReplicaGroup* group = cluster_->router().mutable_group(pid);
  const InFlightCatchUp& st = active_catch_up_[key];
  Lsn applied = group->AppliedLsnOf(node);
  // Replay invariant: while recovering, the replica's applied LSN may only
  // advance through the shipped range (epoch shipping skips it).
  if (applied > st.shipped_to) {
    recovery_violations_.push_back(
        "partition " + std::to_string(pid) + ": recovering replica on node " +
        std::to_string(node) + " applied_lsn " + std::to_string(applied) +
        " overran shipped range end " + std::to_string(st.shipped_to));
  }
  catch_ups_.push_back(CatchUpRecord{node, pid, st.started,
                                     cluster_->sim()->Now(),
                                     st.shipped_to - st.replay_base});
  group->SetRecovering(node, false);
  active_catch_up_.erase(key);
  CatchUpSettled(node);
}

void FailureInjector::CatchUpSettled(NodeId node) {
  if (catch_ups_in_flight_[node] <= 0) return;
  if (--catch_ups_in_flight_[node] == 0) {
    recoveries_.push_back(RecoveryRecord{node, recovery_started_[node],
                                         cluster_->sim()->Now(),
                                         recovery_partitions_[node]});
    recovery_started_[node] = -1;
    recovery_partitions_[node] = 0;
    // Recovery-aware re-provisioning: run placement against the *actual*
    // recovered state — the replayed replicas are registered and caught up,
    // so geo only tops up what is genuinely missing instead of rebuilding
    // the node from scratch.
    ReprovisionGeo();
  }
}

void FailureInjector::ResumeParkedCatchUps(PartitionId pid) {
  auto it = parked_catch_up_.find(pid);
  if (it == parked_catch_up_.end()) return;
  std::vector<std::pair<NodeId, uint64_t>> parked = std::move(it->second);
  parked_catch_up_.erase(it);
  for (const auto& [node, generation] : parked) {
    CatchUpStep(node, pid, generation);
  }
}

void FailureInjector::ReprovisionGeo() {
  if (geo_ == nullptr || !geo_->active()) return;
  geo_->EnsureRegionalReplicas(&cluster_->router(),
                               cluster_->config().max_replicas);
}

}  // namespace lion
