#include "replication/failure_injector.h"

#include <algorithm>

namespace lion {

FailureInjector::FailureInjector(Cluster* cluster)
    : cluster_(cluster), down_(cluster->num_nodes(), false) {}

void FailureInjector::FailNode(NodeId node) {
  if (down_[node]) return;
  down_[node] = true;
  cluster_->router().SetNodeUp(node, false);

  for (PartitionId pid = 0; pid < cluster_->num_partitions(); ++pid) {
    ReplicaGroup* group = cluster_->router().mutable_group(pid);
    if (group->primary() == node) {
      Failover(pid, node);
    } else if (group->HasReplica(node)) {
      // A secondary died: just drop it from the group (log shipping to it
      // stops; the planner may re-provision elsewhere).
      group->RemoveSecondary(node);
    }
  }
}

void FailureInjector::Failover(PartitionId pid, NodeId dead) {
  ReplicaGroup* group = cluster_->router().mutable_group(pid);

  // Elect the most caught-up live secondary.
  NodeId candidate = kInvalidNode;
  Lsn best_lsn = 0;
  for (const ReplicaInfo& sec : group->secondaries()) {
    if (sec.delete_flag || down_[sec.node]) continue;
    if (candidate == kInvalidNode || sec.applied_lsn > best_lsn) {
      candidate = sec.node;
      best_lsn = sec.applied_lsn;
    }
  }
  if (candidate == kInvalidNode) {
    // No live copy: the partition is unavailable until recovery.
    unavailable_.push_back(pid);
    group->set_reconfig_in_progress(true);
    cluster_->store(pid)->set_write_blocked(true);
    return;
  }

  // Election: block the partition, sync the lag, promote, drop the dead
  // replica. Reuses the remastering cost model (Sec. III: the failover path
  // and planned remastering share the log-sync + election mechanism).
  const ClusterConfig& cfg = cluster_->config();
  group->set_reconfig_in_progress(true);
  cluster_->store(pid)->set_write_blocked(true);
  Lsn lag = group->primary_lsn() - best_lsn;
  SimTime delay = cfg.remaster_base_delay +
                  static_cast<SimTime>(lag) * cfg.remaster_per_entry;
  cluster_->sim()->Schedule(delay, [this, pid, candidate, dead]() {
    ReplicaGroup* g = cluster_->router().mutable_group(pid);
    g->Ack(candidate, g->primary_lsn());
    g->Promote(candidate);
    g->RemoveSecondary(dead);  // the old primary's copy died with the node
    g->set_reconfig_in_progress(false);
    cluster_->store(pid)->set_write_blocked(false);
    failovers_completed_++;
    cluster_->remaster().ReleaseWaiters(pid);
  });
}

void FailureInjector::RecoverNode(NodeId node) {
  if (!down_[node]) return;
  down_[node] = false;
  cluster_->router().SetNodeUp(node, true);
  // Unavailable partitions whose only copy was on the recovered node become
  // writable again (the copy survived the restart in this model).
  std::vector<PartitionId> still_unavailable;
  for (PartitionId pid : unavailable_) {
    ReplicaGroup* group = cluster_->router().mutable_group(pid);
    if (group->primary() == node) {
      group->set_reconfig_in_progress(false);
      cluster_->store(pid)->set_write_blocked(false);
      cluster_->remaster().ReleaseWaiters(pid);
    } else {
      still_unavailable.push_back(pid);
    }
  }
  unavailable_ = std::move(still_unavailable);
}

}  // namespace lion
