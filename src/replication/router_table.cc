#include "replication/router_table.h"

#include <algorithm>
#include <cassert>

namespace lion {

RouterTable::RouterTable(int num_nodes, int num_partitions)
    : num_nodes_(num_nodes), node_up_(num_nodes, true), max_freq_(0.0) {
  assert(num_nodes > 0 && num_partitions > 0);
  groups_.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    groups_.emplace_back(p, p % num_nodes);
  }
  freq_.assign(num_partitions, 0.0);
}

void RouterTable::InitRoundRobin(int replicas) {
  assert(replicas >= 1);
  for (auto& g : groups_) {
    PartitionId p = g.partition();
    for (int r = 1; r < replicas && r < num_nodes_; ++r) {
      g.AddSecondary((p + r) % num_nodes_, 0);
    }
  }
}

void RouterTable::RecordAccess(PartitionId pid, double weight) {
  freq_[pid] += weight;
  max_freq_ = std::max(max_freq_, freq_[pid]);
}

double RouterTable::NormalizedFrequency(PartitionId pid) const {
  if (max_freq_ <= 0.0) return 0.0;
  return freq_[pid] / max_freq_;
}

void RouterTable::DecayFrequencies(double keep_fraction) {
  max_freq_ = 0.0;
  for (double& f : freq_) {
    f *= keep_fraction;
    max_freq_ = std::max(max_freq_, f);
  }
}

double RouterTable::PrimaryLoad(NodeId node) const {
  double load = 0.0;
  for (const auto& g : groups_) {
    if (g.primary() == node) load += freq_[g.partition()];
  }
  return load;
}

std::vector<PartitionId> RouterTable::PrimariesOn(NodeId node) const {
  std::vector<PartitionId> out;
  for (const auto& g : groups_) {
    if (g.primary() == node) out.push_back(g.partition());
  }
  return out;
}

int RouterTable::TotalLiveReplicas() const {
  int total = 0;
  for (const auto& g : groups_) total += g.LiveReplicaCount();
  return total;
}

}  // namespace lion
