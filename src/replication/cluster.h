// Assembly of the simulated share-nothing cluster.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "replication/cluster_config.h"
#include "replication/migration_manager.h"
#include "replication/recovery_log.h"
#include "replication/remaster_manager.h"
#include "replication/replication_manager.h"
#include "replication/router_table.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/worker_pool.h"
#include "storage/partition_store.h"

namespace lion {

/// Owns every simulated component of one cluster: node worker pools, the
/// partition stores, placement metadata, and the replication/remaster/
/// migration machinery. Protocols and the Lion planner operate on top of
/// this substrate.
class Cluster {
 public:
  Cluster(Simulator* sim, const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }
  Simulator* sim() { return sim_; }

  int num_nodes() const { return config_.num_nodes; }
  int num_partitions() const { return config_.total_partitions(); }

  WorkerPool* pool(NodeId node) { return pools_[node].get(); }
  PartitionStore* store(PartitionId pid) { return stores_[pid].get(); }

  RouterTable& router() { return router_; }
  const RouterTable& router() const { return router_; }
  Network& network() { return network_; }
  const Topology& topology() const { return network_.topology(); }
  ReplicationManager& replication() { return *replication_; }
  RemasterManager& remaster() { return *remaster_; }
  MigrationManager& migration() { return *migration_; }

  /// Attaches the durable recovery log (recovery.enabled). Call before any
  /// writes are appended so the log's accounting covers the whole run;
  /// idempotent. Crashed nodes then recover by replay + catch-up instead of
  /// rejoining empty.
  void EnableRecovery(const RecoveryConfig& config);
  /// Null unless EnableRecovery was called.
  RecoveryLog* recovery_log() { return recovery_log_.get(); }
  const RecoveryLog* recovery_log() const { return recovery_log_.get(); }

  /// Starts background machinery (epoch ticker).
  void Start();

  /// Node hosting the primary replica of `pid`.
  NodeId PrimaryOf(PartitionId pid) const { return router_.PrimaryOf(pid); }

  /// The least-loaded node by instantaneous worker load (queue + busy).
  NodeId LeastLoadedNode() const;

 private:
  Simulator* sim_;
  ClusterConfig config_;
  Network network_;
  RouterTable router_;
  std::vector<std::unique_ptr<WorkerPool>> pools_;
  std::vector<std::unique_ptr<PartitionStore>> stores_;
  std::unique_ptr<ReplicationManager> replication_;
  std::unique_ptr<RemasterManager> remaster_;
  std::unique_ptr<MigrationManager> migration_;
  std::unique_ptr<RecoveryLog> recovery_log_;
};

}  // namespace lion
