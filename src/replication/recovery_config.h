// Durable log-backed recovery knobs (recovery.* schema fields).
#pragma once

#include "common/types.h"

namespace lion {

/// Configuration of the durable recovery log. Disabled by default: no log
/// is attached, crashed nodes rejoin empty exactly as before the subsystem
/// existed, and fixed-seed runs stay byte-identical to a build without it.
struct RecoveryConfig {
  /// Master switch: attach a per-node durable replication log, replay it on
  /// RecoverNode, and stream the missing suffix from live primaries before
  /// the node becomes electable again.
  bool enabled = false;

  /// Fsync horizon: on a dirty crash ("crash_dirty" schedule events), log
  /// entries younger than this lag are lost — they never reached stable
  /// storage. A clean "crash" keeps the whole log (the flush won the race).
  /// 0 means even dirty crashes lose nothing.
  SimTime durability_lag = 0;

  /// Interval of the periodic snapshot+truncate pass folding each node's
  /// durable log prefix into a snapshot (bounding replay work). 0 disables
  /// periodic snapshots; "truncate N" schedule events still force one.
  SimTime snapshot_interval = 0;

  /// Log entries per catch-up shipment message. Each batch is priced
  /// through the network's bandwidth/latency tables, so WAN catch-up pays
  /// the real transfer cost per batch.
  int catch_up_batch = 256;
};

inline bool RecoveryActive(const RecoveryConfig& cfg) { return cfg.enabled; }

}  // namespace lion
