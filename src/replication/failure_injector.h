// Node failure injection and failover via secondary election.
//
// The replicas Lion piggybacks on exist for high availability (Sec. I-II):
// when a node fails, every partition it mastered elects its most caught-up
// live secondary as the new primary — the same log-sync + leader-election
// path as planned remastering. This module injects such failures so tests
// and experiments can observe availability and failover cost.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "replication/cluster.h"

namespace lion {

class FailureInjector {
 public:
  explicit FailureInjector(Cluster* cluster);

  /// Fails `node` at the current simulated time. Every partition whose
  /// primary lived there starts a failover election: the most caught-up
  /// live secondary is promoted after syncing its log lag plus the election
  /// delay; operations on the partition block meanwhile. Replicas hosted on
  /// the failed node are dropped from their groups. Partitions left with no
  /// live secondary become unavailable until RecoverNode.
  void FailNode(NodeId node);

  /// Brings `node` back empty: it rejoins with no replicas (the planner or
  /// adaptors will re-provision it over time). Partitions that were
  /// unavailable elect the recovered node's (stale) replica only if no
  /// other copy exists — here they simply become available for new
  /// placements.
  void RecoverNode(NodeId node);

  bool IsDown(NodeId node) const { return down_[node]; }

  uint64_t failovers_completed() const { return failovers_completed_; }
  uint64_t partitions_unavailable() const { return unavailable_.size(); }
  const std::vector<PartitionId>& unavailable() const { return unavailable_; }

 private:
  void Failover(PartitionId pid, NodeId dead);

  Cluster* cluster_;
  std::vector<bool> down_;
  std::vector<PartitionId> unavailable_;
  uint64_t failovers_completed_ = 0;
};

}  // namespace lion
