// Node failure injection, failover via secondary election, and durable
// log-backed recovery.
//
// The replicas Lion piggybacks on exist for high availability (Sec. I-II):
// when a node fails, every partition it mastered elects its most caught-up
// live secondary as the new primary — the same log-sync + leader-election
// path as planned remastering. This module injects such failures so tests
// and experiments can observe availability and failover cost. With a
// RecoveryLog attached (recovery.enabled), it also owns the recovery state
// machine: crash capture of each partition's durable LSN, replay on
// RecoverNode, and the recovering -> caught_up catch-up stream from live
// primaries.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "replication/cluster.h"

namespace lion {

class GeoPlacement;

class FailureInjector {
 public:
  explicit FailureInjector(Cluster* cluster);

  /// Attaches geo placement constraints (null detaches): elections then
  /// prefer candidates whose node satisfies AllowsPrimaryOn — hot-pinned
  /// partitions fail over within their region whenever an allowed copy
  /// survives — and crash/recovery re-establishes min_replicas_per_region
  /// on the live node set. `geo` must outlive this injector.
  void SetGeoPlacement(const GeoPlacement* geo) { geo_ = geo; }

  /// Fails `node` at the current simulated time. Every partition whose
  /// primary lived there starts a failover election: the most caught-up
  /// live secondary is promoted after syncing its log lag plus the election
  /// delay; operations on the partition block meanwhile. Replicas hosted on
  /// the failed node are dropped from their groups. Partitions left with no
  /// live secondary become unavailable until RecoverNode. A partition
  /// already mid-reconfiguration (migration or remaster in flight) is taken
  /// over cleanly: the stale completion is invalidated through the group's
  /// reconfiguration generation and the failover owns the write block, so
  /// nothing double-blocks and no waiter is leaked.
  ///
  /// With a recovery log attached this is a *clean* crash: the node's whole
  /// log survives (the flush won the race) and its durable position per
  /// partition is captured for replay at RecoverNode.
  void FailNode(NodeId node);

  /// Like FailNode, but the crash discards the unsynced log suffix: entries
  /// younger than recovery.durability_lag_us never reached stable storage
  /// and are lost ("crash_dirty" schedule events). Identical to FailNode
  /// when no recovery log is attached.
  void FailNodeDirty(NodeId node);

  /// Brings `node` back. Without a recovery log it rejoins with no replicas
  /// (the planner or adaptors re-provision it over time). With one, the
  /// node replays its surviving log prefix: each replica it held at crash
  /// is re-registered at its durable LSN in `recovering` state — epoch
  /// shipping skips it and elections rank it below any caught-up copy —
  /// then a catch-up stream ships the missing entries from the live
  /// primary, batch by batch through the topology's bandwidth/latency
  /// tables. Once the applied LSN reaches the primary's the replica flips
  /// to caught_up (electable again); when the node's last catch-up settles,
  /// geo re-provisioning runs against the actual recovered state. Crash
  /// generation tokens invalidate in-flight catch-up steps if the node
  /// fails again mid-recovery. Partitions that were unavailable resume on
  /// the recovered node's own copy as a last resort; when that copy's
  /// durable prefix is short of the group's LSN this is a stale election,
  /// counted in stale_elections() instead of passing silently.
  void RecoverNode(NodeId node);

  bool IsDown(NodeId node) const { return down_[node]; }

  uint64_t failovers_completed() const { return failovers_completed_; }
  /// Elections whose candidate was found dead at promotion-fire time and
  /// had to re-run (the fire-time liveness re-validation).
  uint64_t elections_rerun() const { return elections_rerun_; }
  uint64_t partitions_unavailable() const { return unavailable_.size(); }
  const std::vector<PartitionId>& unavailable() const { return unavailable_; }

  // --- recovery state machine (recovery.enabled) ---------------------------
  /// Last-resort elections that promoted/resumed a stale copy (one whose
  /// durable position was behind the group's LSN, or one still recovering)
  /// because no caught-up copy survived.
  uint64_t stale_elections() const { return stale_elections_; }
  /// Node recoveries that replayed a durable log (vs rejoining empty).
  uint64_t recoveries_replayed() const { return recoveries_replayed_; }

  /// One completed catch-up of a recovered replica.
  struct CatchUpRecord {
    NodeId node = kInvalidNode;
    PartitionId partition = kInvalidPartition;
    SimTime started = 0;
    SimTime finished = 0;
    /// replay base -> shipped head, the range streamed from the primary.
    uint64_t entries = 0;
  };
  const std::vector<CatchUpRecord>& catch_ups() const { return catch_ups_; }

  /// One node recovery from RecoverNode to its last catch-up settling.
  struct RecoveryRecord {
    NodeId node = kInvalidNode;
    SimTime started = 0;
    SimTime finished = 0;
    int partitions = 0;
  };
  const std::vector<RecoveryRecord>& recoveries() const { return recoveries_; }

  /// Replay-invariant breaches detected while the state machine ran (e.g. a
  /// catch-up whose applied LSN overran the shipped range, or a stale
  /// replica elected while a caught-up copy existed). Folded into the
  /// integrity report.
  const std::vector<std::string>& recovery_violations() const {
    return recovery_violations_;
  }

 private:
  void FailNodeImpl(NodeId node, bool dirty);
  void Failover(PartitionId pid, NodeId dead);
  void MarkUnavailable(PartitionId pid);
  /// Re-establishes min_replicas_per_region on the live node set after a
  /// membership change (no-op without geo constraints).
  void ReprovisionGeo();

  // Catch-up stream: one step ships one batch and re-validates the crash
  // generation, liveness and replica state before the next.
  void CatchUpStep(NodeId node, PartitionId pid, uint64_t generation);
  void FinishCatchUp(NodeId node, PartitionId pid);
  /// Marks one of `node`'s in-flight catch-ups settled (completed or
  /// superseded); the last one closes the node's recovery record and
  /// re-runs geo provisioning against the recovered state.
  void CatchUpSettled(NodeId node);
  /// Resumes catch-ups parked on `pid` (its primary was down); called when
  /// a failover completes or the primary's node recovers.
  void ResumeParkedCatchUps(PartitionId pid);

  static uint64_t CatchUpKey(NodeId node, PartitionId pid) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32) |
           static_cast<uint32_t>(pid);
  }

  Cluster* cluster_;
  const GeoPlacement* geo_ = nullptr;
  std::vector<bool> down_;
  std::vector<PartitionId> unavailable_;
  uint64_t failovers_completed_ = 0;
  uint64_t elections_rerun_ = 0;

  // --- recovery bookkeeping (only touched when a RecoveryLog is attached) --
  struct InFlightCatchUp {
    Lsn replay_base = 0;
    Lsn shipped_to = 0;
    SimTime started = 0;
  };
  /// Bumped on every crash of the node; in-flight catch-up steps carry the
  /// generation they started under and abort when it has moved on.
  std::vector<uint64_t> crash_generation_;
  /// Durable LSN per partition the node held a replica of, captured at
  /// crash time (the replay image). Valid while the node is down.
  std::vector<std::unordered_map<PartitionId, Lsn>> crash_image_;
  std::unordered_map<uint64_t, InFlightCatchUp> active_catch_up_;
  /// Catch-ups waiting for `pid`'s primary to come back: (node, generation).
  std::unordered_map<PartitionId, std::vector<std::pair<NodeId, uint64_t>>>
      parked_catch_up_;
  std::vector<int> catch_ups_in_flight_;  // per node
  std::vector<SimTime> recovery_started_;  // per node; -1 when not recovering
  std::vector<int> recovery_partitions_;   // per node, replicas replayed
  uint64_t stale_elections_ = 0;
  uint64_t recoveries_replayed_ = 0;
  std::vector<CatchUpRecord> catch_ups_;
  std::vector<RecoveryRecord> recoveries_;
  std::vector<std::string> recovery_violations_;
};

}  // namespace lion
