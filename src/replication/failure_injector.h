// Node failure injection and failover via secondary election.
//
// The replicas Lion piggybacks on exist for high availability (Sec. I-II):
// when a node fails, every partition it mastered elects its most caught-up
// live secondary as the new primary — the same log-sync + leader-election
// path as planned remastering. This module injects such failures so tests
// and experiments can observe availability and failover cost.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "replication/cluster.h"

namespace lion {

class GeoPlacement;

class FailureInjector {
 public:
  explicit FailureInjector(Cluster* cluster);

  /// Attaches geo placement constraints (null detaches): elections then
  /// prefer candidates whose node satisfies AllowsPrimaryOn — hot-pinned
  /// partitions fail over within their region whenever an allowed copy
  /// survives — and crash/recovery re-establishes min_replicas_per_region
  /// on the live node set. `geo` must outlive this injector.
  void SetGeoPlacement(const GeoPlacement* geo) { geo_ = geo; }

  /// Fails `node` at the current simulated time. Every partition whose
  /// primary lived there starts a failover election: the most caught-up
  /// live secondary is promoted after syncing its log lag plus the election
  /// delay; operations on the partition block meanwhile. Replicas hosted on
  /// the failed node are dropped from their groups. Partitions left with no
  /// live secondary become unavailable until RecoverNode. A partition
  /// already mid-reconfiguration (migration or remaster in flight) is taken
  /// over cleanly: the stale completion is invalidated through the group's
  /// reconfiguration generation and the failover owns the write block, so
  /// nothing double-blocks and no waiter is leaked.
  void FailNode(NodeId node);

  /// Brings `node` back empty: it rejoins with no replicas (the planner or
  /// adaptors will re-provision it over time). Partitions that were
  /// unavailable elect the recovered node's (stale) replica only if no
  /// other copy exists — here they simply become available for new
  /// placements.
  void RecoverNode(NodeId node);

  bool IsDown(NodeId node) const { return down_[node]; }

  uint64_t failovers_completed() const { return failovers_completed_; }
  /// Elections whose candidate was found dead at promotion-fire time and
  /// had to re-run (the fire-time liveness re-validation).
  uint64_t elections_rerun() const { return elections_rerun_; }
  uint64_t partitions_unavailable() const { return unavailable_.size(); }
  const std::vector<PartitionId>& unavailable() const { return unavailable_; }

 private:
  void Failover(PartitionId pid, NodeId dead);
  void MarkUnavailable(PartitionId pid);
  /// Re-establishes min_replicas_per_region on the live node set after a
  /// membership change (no-op without geo constraints).
  void ReprovisionGeo();

  Cluster* cluster_;
  const GeoPlacement* geo_ = nullptr;
  std::vector<bool> down_;
  std::vector<PartitionId> unavailable_;
  uint64_t failovers_completed_ = 0;
  uint64_t elections_rerun_ = 0;
};

}  // namespace lion
