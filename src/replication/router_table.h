// Global replica placement map plus access-frequency tracking.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "replication/replica_group.h"

namespace lion {

/// The "global router table" of Sec. V: maps every partition to the node
/// hosting its primary replica and the nodes hosting secondaries.
///
/// One authoritative instance is shared by all simulated nodes; placement
/// changes propagate through plan-application and remaster control messages,
/// whose network delays are modeled where the changes are made.
///
/// The table also tracks per-partition access frequency (the paper's f(v, n)
/// for the replica currently serving, i.e. the primary), used by the cost
/// model's remastering-disruption term and by replica eviction.
class RouterTable {
 public:
  RouterTable(int num_nodes, int num_partitions);

  int num_nodes() const { return num_nodes_; }
  int num_partitions() const { return static_cast<int>(groups_.size()); }

  /// Installs the default round-robin placement: partition p's primary on
  /// node p % n, with `replicas - 1` secondaries on the following nodes.
  void InitRoundRobin(int replicas);

  const ReplicaGroup& group(PartitionId pid) const { return groups_[pid]; }
  ReplicaGroup* mutable_group(PartitionId pid) { return &groups_[pid]; }

  NodeId PrimaryOf(PartitionId pid) const { return groups_[pid].primary(); }
  bool HasReplica(NodeId node, PartitionId pid) const {
    return groups_[pid].HasReplica(node);
  }
  bool HasSecondary(NodeId node, PartitionId pid) const {
    return groups_[pid].HasSecondary(node);
  }

  /// Bumps the access counter of `pid` (called once per touching txn).
  void RecordAccess(PartitionId pid, double weight = 1.0);

  /// Normalized access frequency f(v, primary) in [0, 1]: the partition's
  /// recent access count divided by the hottest partition's count.
  double NormalizedFrequency(PartitionId pid) const;

  /// Raw (decayed) access count of `pid`.
  double RawFrequency(PartitionId pid) const { return freq_[pid]; }

  /// Exponentially decays all access counters (called once per plan period
  /// so the frequencies track the recent workload).
  void DecayFrequencies(double keep_fraction);

  /// Sum of frequency-weighted primary load currently mapped to `node`.
  double PrimaryLoad(NodeId node) const;

  /// Partitions whose primary is on `node`.
  std::vector<PartitionId> PrimariesOn(NodeId node) const;

  /// Total live replica count across all partitions (invariant checks).
  int TotalLiveReplicas() const;

  /// Node liveness (maintained by the failure injector). Placement
  /// machinery — plan generation, routing, replica provisioning,
  /// remastering — never targets a down node.
  bool IsNodeUp(NodeId node) const { return node_up_[node]; }
  void SetNodeUp(NodeId node, bool up) { node_up_[node] = up; }

 private:
  int num_nodes_;
  std::vector<bool> node_up_;
  std::vector<ReplicaGroup> groups_;
  std::vector<double> freq_;
  double max_freq_;
};

}  // namespace lion
