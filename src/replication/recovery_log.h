// Per-node durable replication log backing crash recovery.
//
// Every committed write appended through ReplicationManager lands here on
// the primary's node, and every replica applied-position advance (epoch
// shipping ack, catch-up shipment, failover log sync) is recorded as a
// durable mark. On a crash the injector asks for each partition's durable
// LSN — everything for a clean crash, only marks older than the fsync
// horizon (recovery.durability_lag_us) for a dirty one — and the surviving
// prefix is what RecoverNode replays before catch-up streams the rest from
// live primaries. Periodic snapshot+truncate (recovery.snapshot_interval_ms)
// folds the durable prefix into per-partition snapshots so replay work and
// log memory stay bounded.
//
// The log doubles as the integrity checker's accounting source: per
// partition, snapshot entries + live suffix + entries lost to dirty crashes
// must add up to the group's primary LSN, and the per-key write counts must
// reconstruct the commit ledger's effects.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "replication/recovery_config.h"
#include "sim/periodic_timer.h"
#include "sim/simulator.h"

namespace lion {

class RecoveryLog {
 public:
  RecoveryLog(Simulator* sim, const RecoveryConfig& config, int num_nodes,
              int num_partitions);

  const RecoveryConfig& config() const { return config_; }

  /// Arms the periodic snapshot+truncate pass (weak events — the pass never
  /// keeps a drain alive). No-op when snapshot_interval is 0.
  void Start();

  /// Durable append on the primary's node for one committed write. Called
  /// by ReplicationManager::Append, so entries are 1:1 with primary-LSN
  /// advances.
  void AppendCommit(NodeId node, PartitionId pid, Key key, Lsn lsn);

  /// Durable applied-position mark for the replica of `pid` on `node`
  /// (epoch shipping ack, catch-up shipment delivery, failover log sync).
  void NoteApplied(NodeId node, PartitionId pid, Lsn lsn);

  /// Highest LSN of `pid` on `node` surviving a crash now: the full log for
  /// a clean crash, only marks at or older than now - durability_lag (plus
  /// the snapshot floor) for a dirty one.
  Lsn DurableLsn(NodeId node, PartitionId pid, bool dirty) const;

  /// Applies crash truncation to `node`'s log. A dirty crash drops marks
  /// and committed entries younger than the fsync horizon (entries move to
  /// the partition's lost accounting); a clean crash keeps everything.
  void Crash(NodeId node, bool dirty);

  /// Snapshot+truncate one node: folds its durable marks into per-partition
  /// snapshot LSNs and its committed entries into the partition snapshots.
  /// Also forced by "truncate N" chaos schedule events.
  void SnapshotNode(NodeId node);
  void SnapshotAll();

  // --- integrity / reporting ------------------------------------------------
  uint64_t entries_appended() const { return entries_appended_; }
  uint64_t snapshots_taken() const { return snapshots_taken_; }
  uint64_t total_lost_entries() const;
  /// Snapshot entries + live suffix entries of `pid` across all nodes.
  uint64_t DurableEntries(PartitionId pid) const;
  /// Entries of `pid` dropped by dirty crashes.
  uint64_t LostEntries(PartitionId pid) const;
  /// Committed writes to (pid, key) the log can account for: snapshot +
  /// suffix + lost (lost entries are tracked separately so the checker can
  /// tell "dropped by a dirty crash" from "never logged").
  uint64_t WriteCount(PartitionId pid, Key key) const;
  /// Full reconstructable per-key write-count map for `pid` (snapshot +
  /// suffix + lost), built in one pass for the integrity checker.
  std::unordered_map<Key, uint64_t> ReconstructWrites(PartitionId pid) const;

 private:
  /// One durable applied-position mark (coalesced per timestamp).
  struct Mark {
    Lsn lsn = 0;
    SimTime at = 0;
  };
  /// One committed write in a partition's durable history, tagged with the
  /// node whose log file carries it.
  struct Entry {
    NodeId node = kInvalidNode;
    Key key = 0;
    Lsn lsn = 0;
    SimTime at = 0;
  };
  struct NodePartition {
    Lsn snapshot_lsn = 0;
    std::vector<Mark> marks;  // ascending in time, LSNs nondecreasing
  };
  struct PartitionHistory {
    uint64_t snapshot_entries = 0;
    std::unordered_map<Key, uint64_t> snapshot_writes;
    std::vector<Entry> suffix;
    uint64_t lost_entries = 0;
    std::unordered_map<Key, uint64_t> lost_writes;
  };

  void PushMark(NodeId node, PartitionId pid, Lsn lsn);

  Simulator* sim_;
  RecoveryConfig config_;
  PeriodicTimer snapshot_timer_;
  std::vector<std::vector<NodePartition>> nodes_;  // [node][pid]
  std::vector<PartitionHistory> history_;          // [pid]
  uint64_t entries_appended_ = 0;
  uint64_t snapshots_taken_ = 0;
};

}  // namespace lion
