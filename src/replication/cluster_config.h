// All tunable parameters of the simulated cluster and its cost model.
#pragma once

#include "common/types.h"
#include "sim/network.h"

namespace lion {

/// Configuration for one simulated cluster (Sec. VI-A defaults, scaled).
struct ClusterConfig {
  // --- topology -------------------------------------------------------------
  int num_nodes = 4;
  int workers_per_node = 8;
  int partitions_per_node = 12;
  uint64_t records_per_partition = 10'000;
  /// Logical record size used for all byte accounting (YCSB: 1 KB rows).
  uint64_t record_bytes = 1000;

  // --- replication ----------------------------------------------------------
  /// Initial replicas per partition (paper: 2).
  int init_replicas = 2;
  /// Maximum replicas per partition before eviction kicks in (paper: 4).
  int max_replicas = 4;
  /// Epoch-based group commit interval (paper: 10 ms).
  SimTime epoch_interval = 10 * kMillisecond;
  /// Physically apply shipped log entries to per-replica copies; used by
  /// consistency tests (costs memory, benches leave it off).
  bool materialize_secondaries = false;

  // --- CPU cost model (per-node worker time) --------------------------------
  /// Fixed cost of starting/finishing a transaction on its coordinator.
  SimTime txn_setup_cost = 5 * kMicrosecond;
  /// Executing one read/write on a local primary.
  SimTime op_local_cost = 2 * kMicrosecond;
  /// Serving one remote read/write request (charged at the serving node).
  SimTime op_service_cost = 2 * kMicrosecond;
  /// Writing a prepare/commit log record.
  SimTime log_write_cost = 3 * kMicrosecond;
  /// OCC validation per accessed record.
  SimTime validation_cost_per_op = 500;  // ns
  /// Handling any control message (charged at the receiving node).
  SimTime message_handling_cost = 1 * kMicrosecond;

  // --- remastering / migration ----------------------------------------------
  /// Base remastering duration (paper default 3000 us, swept in Fig. 13b).
  SimTime remaster_base_delay = 3000 * kMicrosecond;
  /// Additional remastering time per lagging log entry.
  SimTime remaster_per_entry = 100;  // ns
  /// Fixed overhead for starting a partition copy (snapshot setup).
  SimTime migration_base_delay = 1 * kMillisecond;

  // --- network ---------------------------------------------------------------
  NetworkConfig net;

  int total_partitions() const { return num_nodes * partitions_per_node; }
};

}  // namespace lion
