// Partition copy (AddReplica) and blocking primary movement (MovePrimary).
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "replication/cluster_config.h"
#include "replication/remaster_manager.h"
#include "replication/router_table.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/partition_store.h"

namespace lion {

/// Data movement between nodes.
///
/// AddReplica models Lion's background replica provisioning (adaptor's
/// AddRepReqHandler): a full partition copy streamed to the target without
/// blocking the primary. MovePrimary models Leap/Clay-style migration: the
/// partition is write-blocked while its bytes transfer, then mastership
/// switches — the behaviour whose disruption Lion is designed to avoid.
class MigrationManager {
 public:
  MigrationManager(Simulator* sim, Network* network, RouterTable* table,
                   std::vector<PartitionStore*> stores,
                   RemasterManager* remaster, const ClusterConfig& config);

  /// Asynchronously copies `pid` to `target` and registers it as a
  /// secondary. Non-blocking for foreground transactions. `done(false)` if
  /// the target already holds a replica or a reconfiguration is in flight.
  void AddReplica(PartitionId pid, NodeId target, std::function<void(bool)> done);

  /// Flags the lowest-frequency removable secondary for deletion when the
  /// live replica count exceeds `max_replicas`; returns the flagged node or
  /// kInvalidNode. Never flags the primary or `keep`.
  NodeId EvictIfOverLimit(PartitionId pid, NodeId keep);

  /// Moves the primary of `pid` to `target`, blocking writes during the
  /// transfer (Leap/Clay semantics). If `target` already has a live
  /// secondary this degenerates to a remaster. `done(false)` on conflict.
  void MovePrimary(PartitionId pid, NodeId target, std::function<void(bool)> done);

  /// Record-granule mastership transfer (Leap/Hermes style): moves only the
  /// working set (`accessed_bytes`), blocking the partition for the
  /// transfer's duration, and leaves `target` as the new primary. Unlike
  /// MovePrimary this never copies the whole partition, but it blocks
  /// foreground operations every time it runs. `done(false)` on conflict.
  void MoveMastershipLight(PartitionId pid, NodeId target,
                           uint64_t accessed_bytes,
                           std::function<void(bool)> done);

  uint64_t migrations_completed() const { return migrations_completed_; }
  uint64_t migrated_bytes() const { return migrated_bytes_; }
  uint64_t evictions() const { return evictions_; }

 private:
  Simulator* sim_;
  Network* network_;
  RouterTable* table_;
  std::vector<PartitionStore*> stores_;
  RemasterManager* remaster_;
  ClusterConfig config_;

  uint64_t migrations_completed_;
  uint64_t migrated_bytes_;
  uint64_t evictions_;
};

}  // namespace lion
