// Post-run integrity invariants for runs with injected faults.
//
// After a chaos schedule has played out and the simulator has drained, the
// checker walks the surviving replica set and asserts the bookkeeping that
// every fault path must preserve: exactly one live primary per replica
// group, no write-blocked partition that has outlived its failover, LSN
// monotonicity, and — when a CommitLedger recorded the run — that every
// committed transaction's effects are present in the authoritative stores
// (the stress-then-verify idiom).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "txn/transaction.h"

namespace lion {

class Cluster;
class FailureInjector;

/// Records committed write effects: how many committed writes each
/// (partition, key) pair received. Wired into MetricsCollector's commit
/// listener by the experiment harness when chaos.track_commits is set.
class CommitLedger {
 public:
  explicit CommitLedger(int num_partitions)
      : writes_(static_cast<size_t>(num_partitions)) {}

  /// Counts every write op of a committed transaction.
  void Record(const Transaction& txn) {
    for (const Operation& op : txn.ops()) {
      if (op.type != OpType::kWrite) continue;
      writes_[static_cast<size_t>(op.partition)][op.key]++;
      writes_recorded_++;
    }
  }

  uint64_t writes_recorded() const { return writes_recorded_; }

  const std::unordered_map<Key, uint64_t>& writes(PartitionId pid) const {
    return writes_[static_cast<size_t>(pid)];
  }

 private:
  std::vector<std::unordered_map<Key, uint64_t>> writes_;
  uint64_t writes_recorded_ = 0;
};

struct IntegrityReport {
  std::vector<std::string> violations;
  uint64_t partitions_checked = 0;
  uint64_t committed_writes_checked = 0;
  /// Ledger writes re-verified against the recovery log's reconstruction
  /// (snapshot + suffix + lost); 0 when no recovery log is attached.
  uint64_t log_writes_checked = 0;
  bool ok() const { return violations.empty(); }
};

/// Walks every replica group and store. `injector` (may be null) supplies
/// node liveness and the unavailable-partition list; `ledger` (may be null)
/// supplies the committed write-sets to verify against the stores. Call
/// after the simulator has drained (RunUntilIdle), so in-flight failovers
/// and reconfigurations have settled.
IntegrityReport CheckClusterIntegrity(Cluster* cluster,
                                      const FailureInjector* injector,
                                      const CommitLedger* ledger);

}  // namespace lion
