#include "replication/replication_manager.h"

#include <utility>
#include <memory>

#include "replication/recovery_log.h"

namespace lion {

namespace {
uint64_t CopyKey(PartitionId pid, NodeId node) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(pid)) << 32) |
         static_cast<uint32_t>(node);
}
}  // namespace

ReplicationManager::ReplicationManager(Simulator* sim, Network* network,
                                       RouterTable* table,
                                       std::vector<PartitionStore*> stores,
                                       const ClusterConfig& config)
    : sim_(sim),
      network_(network),
      table_(table),
      stores_(std::move(stores)),
      config_(config),
      epoch_(0),
      epoch_started_at_(0),
      epoch_timer_(sim, [this](SimTime) { CloseEpochNow(); }),
      total_entries_shipped_(0) {
  pending_.resize(stores_.size());
}

void ReplicationManager::Start() {
  if (epoch_timer_.running()) return;
  epoch_started_at_ = sim_->Now();
  epoch_timer_.Start(config_.epoch_interval);
}

void ReplicationManager::Append(PartitionId pid, Key key, Value value) {
  pending_[pid].push_back(LogEntry{key, value});
  ReplicaGroup* group = table_->mutable_group(pid);
  group->Advance(1);
  if (recovery_log_ != nullptr) {
    recovery_log_->AppendCommit(group->primary(), pid, key,
                                group->primary_lsn());
  }
}

void ReplicationManager::OnEpochEnd(std::function<void()> fn) {
  epoch_waiters_.push_back(std::move(fn));
  // Keep the simulation alive until the boundary that releases this waiter:
  // the ticker itself is a weak event and would not, by itself, be run by
  // RunUntilIdle.
  sim_->Schedule(NextEpochEnd() - sim_->Now(), []() {});
}

SimTime ReplicationManager::NextEpochEnd() const {
  return epoch_started_at_ + config_.epoch_interval;
}

void ReplicationManager::CloseEpochNow() {
  // Ship all pending logs and release waiters, then restart the epoch timer
  // from now.
  epoch_++;
  epoch_started_at_ = sim_->Now();
  if (shipping_paused_ == 0) {
    for (size_t pid = 0; pid < pending_.size(); ++pid) {
      if (!pending_[pid].empty()) ShipPartition(static_cast<PartitionId>(pid));
    }
  }
  std::vector<std::function<void()>> waiters;
  waiters.swap(epoch_waiters_);
  for (auto& fn : waiters) fn();
}

void ReplicationManager::ShipPartition(PartitionId pid) {
  ReplicaGroup* group = table_->mutable_group(pid);
  std::vector<LogEntry> entries;
  entries.swap(pending_[pid]);
  total_entries_shipped_ += entries.size();
  Lsn target_lsn = group->primary_lsn();
  NodeId primary = group->primary();

  for (const ReplicaInfo& sec : group->secondaries()) {
    if (sec.delete_flag) continue;  // flagged replicas stop receiving logs
    // Recovering replicas are owned by the catch-up stream: acking them to
    // the epoch head here would fake their durable position.
    if (sec.recovering) continue;
    NodeId dst = sec.node;
    uint64_t bytes =
        MessageSizes::kHeader + entries.size() * MessageSizes::kLogEntry;
    if (config_.materialize_secondaries) {
      auto payload = std::make_shared<std::vector<LogEntry>>(entries);
      network_->Send(primary, dst, bytes, [this, pid, dst, target_lsn, payload]() {
        auto& copy = copies_[CopyKey(pid, dst)];
        for (const LogEntry& e : *payload) copy[e.key] = e.value;
        Ack(pid, dst, target_lsn);
      });
    } else {
      network_->Send(primary, dst, bytes, [this, pid, dst, target_lsn]() {
        Ack(pid, dst, target_lsn);
      });
    }
  }
}

void ReplicationManager::Ack(PartitionId pid, NodeId dst, Lsn lsn) {
  ReplicaGroup* group = table_->mutable_group(pid);
  group->Ack(dst, lsn);
  // Only a delivery that actually landed on a live secondary is a durable
  // mark; a batch arriving after the replica was dropped must not inflate
  // the node's durable position for a later crash image.
  if (recovery_log_ != nullptr && group->HasSecondary(dst)) {
    recovery_log_->NoteApplied(dst, pid, lsn);
  }
}

void ReplicationManager::ShipRange(PartitionId pid, NodeId dst, Lsn from,
                                   Lsn upto, std::function<void()> on_delivered) {
  ReplicaGroup* group = table_->mutable_group(pid);
  NodeId primary = group->primary();
  uint64_t bytes = MessageSizes::kHeader +
                   static_cast<uint64_t>(upto - from) * MessageSizes::kLogEntry;
  catch_up_entries_shipped_ += upto - from;
  network_->Send(primary, dst, bytes,
                 [this, pid, dst, upto, done = std::move(on_delivered)]() {
                   // The replica may have been dropped or promoted while the
                   // batch was in flight; Ack then no-ops and the injector's
                   // next step re-validates.
                   Ack(pid, dst, upto);
                   done();
                 });
}

const std::unordered_map<Key, Value>* ReplicationManager::MaterializedCopy(
    PartitionId pid, NodeId node) const {
  auto it = copies_.find(CopyKey(pid, node));
  return it == copies_.end() ? nullptr : &it->second;
}

}  // namespace lion
