#include "replication/recovery_log.h"

#include <algorithm>

namespace lion {

RecoveryLog::RecoveryLog(Simulator* sim, const RecoveryConfig& config,
                         int num_nodes, int num_partitions)
    : sim_(sim),
      config_(config),
      snapshot_timer_(sim, [this](SimTime) { SnapshotAll(); }),
      nodes_(static_cast<size_t>(num_nodes)),
      history_(static_cast<size_t>(num_partitions)) {
  for (auto& parts : nodes_) {
    parts.resize(static_cast<size_t>(num_partitions));
  }
}

void RecoveryLog::Start() {
  if (config_.snapshot_interval > 0) {
    snapshot_timer_.Start(config_.snapshot_interval);
  }
}

void RecoveryLog::PushMark(NodeId node, PartitionId pid, Lsn lsn) {
  NodePartition& np = nodes_[static_cast<size_t>(node)][static_cast<size_t>(pid)];
  SimTime now = sim_->Now();
  if (!np.marks.empty() && np.marks.back().at == now) {
    np.marks.back().lsn = std::max(np.marks.back().lsn, lsn);
    return;
  }
  np.marks.push_back(Mark{lsn, now});
}

void RecoveryLog::AppendCommit(NodeId node, PartitionId pid, Key key, Lsn lsn) {
  history_[static_cast<size_t>(pid)].suffix.push_back(
      Entry{node, key, lsn, sim_->Now()});
  entries_appended_++;
  PushMark(node, pid, lsn);
}

void RecoveryLog::NoteApplied(NodeId node, PartitionId pid, Lsn lsn) {
  PushMark(node, pid, lsn);
}

Lsn RecoveryLog::DurableLsn(NodeId node, PartitionId pid, bool dirty) const {
  const NodePartition& np =
      nodes_[static_cast<size_t>(node)][static_cast<size_t>(pid)];
  SimTime horizon = dirty ? sim_->Now() - config_.durability_lag : sim_->Now();
  Lsn durable = np.snapshot_lsn;
  for (const Mark& m : np.marks) {
    if (m.at > horizon) break;  // marks are time-ordered
    durable = std::max(durable, m.lsn);
  }
  return durable;
}

void RecoveryLog::Crash(NodeId node, bool dirty) {
  if (!dirty) return;  // the flush won the race: the whole log survives
  SimTime horizon = sim_->Now() - config_.durability_lag;
  for (NodePartition& np : nodes_[static_cast<size_t>(node)]) {
    np.marks.erase(std::remove_if(np.marks.begin(), np.marks.end(),
                                  [horizon](const Mark& m) {
                                    return m.at > horizon;
                                  }),
                   np.marks.end());
  }
  for (PartitionHistory& h : history_) {
    auto lost_begin = std::stable_partition(
        h.suffix.begin(), h.suffix.end(), [node, horizon](const Entry& e) {
          return e.node != node || e.at <= horizon;
        });
    for (auto it = lost_begin; it != h.suffix.end(); ++it) {
      h.lost_entries++;
      h.lost_writes[it->key]++;
    }
    h.suffix.erase(lost_begin, h.suffix.end());
  }
}

void RecoveryLog::SnapshotNode(NodeId node) {
  for (NodePartition& np : nodes_[static_cast<size_t>(node)]) {
    if (!np.marks.empty()) {
      np.snapshot_lsn = std::max(np.snapshot_lsn, np.marks.back().lsn);
      np.marks.clear();
    }
  }
  for (PartitionHistory& h : history_) {
    auto keep_end = std::stable_partition(
        h.suffix.begin(), h.suffix.end(),
        [node](const Entry& e) { return e.node != node; });
    for (auto it = keep_end; it != h.suffix.end(); ++it) {
      h.snapshot_entries++;
      h.snapshot_writes[it->key]++;
    }
    h.suffix.erase(keep_end, h.suffix.end());
  }
  snapshots_taken_++;
}

void RecoveryLog::SnapshotAll() {
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    SnapshotNode(n);
  }
}

uint64_t RecoveryLog::total_lost_entries() const {
  uint64_t total = 0;
  for (const PartitionHistory& h : history_) total += h.lost_entries;
  return total;
}

uint64_t RecoveryLog::DurableEntries(PartitionId pid) const {
  const PartitionHistory& h = history_[static_cast<size_t>(pid)];
  return h.snapshot_entries + h.suffix.size();
}

uint64_t RecoveryLog::LostEntries(PartitionId pid) const {
  return history_[static_cast<size_t>(pid)].lost_entries;
}

uint64_t RecoveryLog::WriteCount(PartitionId pid, Key key) const {
  const PartitionHistory& h = history_[static_cast<size_t>(pid)];
  uint64_t count = 0;
  if (auto it = h.snapshot_writes.find(key); it != h.snapshot_writes.end()) {
    count += it->second;
  }
  if (auto it = h.lost_writes.find(key); it != h.lost_writes.end()) {
    count += it->second;
  }
  for (const Entry& e : h.suffix) {
    if (e.key == key) count++;
  }
  return count;
}

std::unordered_map<Key, uint64_t> RecoveryLog::ReconstructWrites(
    PartitionId pid) const {
  const PartitionHistory& h = history_[static_cast<size_t>(pid)];
  std::unordered_map<Key, uint64_t> counts = h.snapshot_writes;
  for (const auto& kv : h.lost_writes) counts[kv.first] += kv.second;
  for (const Entry& e : h.suffix) counts[e.key]++;
  return counts;
}

}  // namespace lion
