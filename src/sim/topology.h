// Region-aware WAN topology: node -> region assignment plus per-region-pair
// latency and bandwidth tables derived from NetworkConfig.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace lion {

struct NetworkConfig;

/// Immutable routing tables built once from a NetworkConfig: which region
/// each node lives in, and the one-way base latency / bandwidth between
/// every region pair. The flat default (regions = 1, no matrix) reproduces
/// the classic single-datacenter model exactly: every remote pair sees
/// `one_way_latency` and the global bandwidth, bit for bit.
///
/// Geometry is declared in the config schema (cluster.net.regions,
/// cluster.net.region_latency_ms, ...), so sweep grids can vary geography
/// like any other axis. Cross-field consistency (matrix dimensions, region
/// indices in range) cannot be checked per schema field — Validate() covers
/// it and is called from ExperimentBuilder::Validate.
class Topology {
 public:
  /// Builds the tables. `net` must have passed Validate() for the same
  /// `num_nodes` (ExperimentBuilder guarantees this; tests call it
  /// directly).
  Topology(const NetworkConfig& net, int num_nodes);

  /// Cross-field validation: node_regions length/range and latency /
  /// bandwidth matrix dimensions against `regions`. `path` prefixes error
  /// messages with the config location ("cluster.net" in experiment
  /// configs).
  static Status Validate(const NetworkConfig& net, int num_nodes,
                         const std::string& path = "cluster.net");

  int regions() const { return regions_; }

  /// Number of nodes the topology was built for.
  int num_nodes() const { return static_cast<int>(node_region_.size()); }

  /// Region of `node`. Nodes beyond the cluster size (never produced by a
  /// validated config) fall back to region 0.
  int region_of(NodeId node) const {
    return node >= 0 && static_cast<size_t>(node) < node_region_.size()
               ? node_region_[static_cast<size_t>(node)]
               : 0;
  }

  bool cross_region(NodeId a, NodeId b) const {
    return region_of(a) != region_of(b);
  }

  /// One-way base latency between two distinct nodes (loopback cost is the
  /// network's local_latency; callers handle from == to before asking).
  SimTime base_latency(NodeId from, NodeId to) const {
    return latency_[Index(region_of(from), region_of(to))];
  }

  /// Link bandwidth (bytes/sec) between the regions of two distinct nodes.
  double bandwidth(NodeId from, NodeId to) const {
    return bandwidth_[Index(region_of(from), region_of(to))];
  }

  /// Largest one-way latency between two distinct regions; 0 with a single
  /// region. Feeds the Didona et al. lower-bound reference curve (one WAN
  /// round trip = 2x this).
  SimTime max_cross_region_latency() const;

 private:
  size_t Index(int from_region, int to_region) const {
    return static_cast<size_t>(from_region) * static_cast<size_t>(regions_) +
           static_cast<size_t>(to_region);
  }

  int regions_;
  std::vector<int> node_region_;   // node -> region
  std::vector<SimTime> latency_;   // regions x regions, row-major, one-way
  std::vector<double> bandwidth_;  // regions x regions, row-major, bytes/sec
};

}  // namespace lion
