// Network timing and byte-accounting model for the simulated cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "common/move_fn.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace lion {

/// Tunable network characteristics. Defaults approximate the paper's
/// testbed: ~937 Mbit/s links with ~100 us small-message round trips.
struct NetworkConfig {
  /// One-way propagation + kernel/stack latency for any remote message.
  SimTime one_way_latency = 25 * kMicrosecond;
  /// Link bandwidth in bytes per second (937 Mbit/s ~ 117 MB/s).
  double bandwidth_bytes_per_sec = 117.0 * 1024 * 1024;
  /// Cost of a loopback (same node) message.
  SimTime local_latency = 1 * kMicrosecond;
  /// Width of the bytes/messages accounting windows (Fig. 12b series).
  SimTime stats_window = 100 * kMillisecond;
};

/// Delivers messages between simulated nodes with latency + serialization
/// delay and tracks bytes/messages, both in total and per time window.
class Network {
 public:
  Network(Simulator* sim, NetworkConfig config);

  /// Sends `bytes` from `from` to `to`; `on_delivery` runs at arrival time.
  /// Loopback messages cost `local_latency` and are not counted as network
  /// traffic (matching how the paper reports network cost per transaction).
  /// The callback is a move-only MoveFn: a small caller lambda goes straight
  /// into the delivery event's inline storage with no std::function
  /// conversion (and no allocation) on this per-message path.
  void Send(NodeId from, NodeId to, uint64_t bytes,
            Simulator::EventFn on_delivery);

  /// Computes the delivery delay without sending (used by cost models).
  SimTime TransferDelay(NodeId from, NodeId to, uint64_t bytes) const;

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }

  /// Bytes sent within each completed stats window since construction.
  const std::vector<uint64_t>& window_bytes() const { return window_bytes_; }

  SimTime stats_window() const { return config_.stats_window; }

 private:
  void RollWindows();

  Simulator* sim_;
  NetworkConfig config_;
  uint64_t total_bytes_;
  uint64_t total_messages_;
  std::vector<uint64_t> window_bytes_;
};

/// Standard message-size model shared by all protocols so byte accounting is
/// apples-to-apples (header + per-operation payload).
struct MessageSizes {
  static constexpr uint64_t kHeader = 64;
  static constexpr uint64_t kOpRequest = 48;    // key + metadata
  static constexpr uint64_t kOpResponse = 16;   // value + status
  static constexpr uint64_t kPrepare = 96;      // vote + log record header
  static constexpr uint64_t kCommitDecision = 32;
  static constexpr uint64_t kLogEntry = 64;     // replicated write record
  static constexpr uint64_t kRemasterCtl = 128; // remaster control message
  static constexpr uint64_t kPlanEntry = 24;    // plan action descriptor
};

}  // namespace lion
