// Network timing and byte-accounting model for the simulated cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "common/move_fn.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace lion {

/// Tunable network characteristics. Defaults approximate the paper's
/// testbed: ~937 Mbit/s links with ~100 us small-message round trips in a
/// single region. The region fields widen the model to a WAN: nodes are
/// assigned to regions and each region pair gets its own one-way latency
/// and bandwidth (see sim/topology.h). The defaults keep one region, which
/// reproduces the flat model exactly.
struct NetworkConfig {
  /// One-way propagation + kernel/stack latency for any intra-region remote
  /// message.
  SimTime one_way_latency = 25 * kMicrosecond;
  /// Intra-region link bandwidth in bytes per second (937 Mbit/s ~ 117 MB/s).
  double bandwidth_bytes_per_sec = 117.0 * 1024 * 1024;
  /// Cost of a loopback (same node) message.
  SimTime local_latency = 1 * kMicrosecond;
  /// Width of the bytes/messages accounting windows (Fig. 12b series).
  SimTime stats_window = 100 * kMillisecond;

  // --- geo-replication topology (sim/topology.h) ---------------------------
  /// Number of geographic regions (1 = the classic flat model).
  int regions = 1;
  /// Region of each node; empty assigns contiguous equal blocks.
  std::vector<int> node_regions;
  /// Flattened row-major regions x regions one-way latency matrix in
  /// milliseconds; empty derives it from one_way_latency (diagonal) and
  /// cross_region_latency (off-diagonal).
  std::vector<double> region_latency_ms;
  /// Default one-way latency between distinct regions when no matrix is
  /// declared (~continental WAN hop).
  SimTime cross_region_latency = 30 * kMillisecond;
  /// Flattened row-major regions x regions bandwidth matrix (bytes/sec);
  /// empty uses bandwidth_bytes_per_sec for every pair.
  std::vector<double> region_bandwidth_bytes_per_sec;
  /// Symmetric multiplicative delivery jitter: each sent message's delay is
  /// scaled by a deterministic seeded draw from [1 - jitter_pct,
  /// 1 + jitter_pct). 0 disables jitter (and draws nothing).
  double jitter_pct = 0.0;
};

/// Delivers messages between simulated nodes with latency + serialization
/// delay and tracks bytes/messages, both in total and per time window.
class Network {
 public:
  /// `num_nodes` sizes the topology's node -> region table; the default
  /// suits single-region unit tests where every node maps to region 0.
  Network(Simulator* sim, NetworkConfig config, int num_nodes = 1);

  /// Sends `bytes` from `from` to `to`; `on_delivery` runs at arrival time.
  /// Loopback messages cost `local_latency` and are not counted as network
  /// traffic (matching how the paper reports network cost per transaction).
  /// The callback is a move-only MoveFn: a small caller lambda goes straight
  /// into the delivery event's inline storage with no std::function
  /// conversion (and no allocation) on this per-message path.
  ///
  /// With jitter_pct > 0 the delivery delay (never TransferDelay, which
  /// cost models need deterministic) is scaled by a draw from the dedicated
  /// jitter stream — never from the experiment RNG, so enabling jitter
  /// cannot perturb workload/protocol random sequences (same discipline as
  /// the simulator's calendar-geometry stream).
  void Send(NodeId from, NodeId to, uint64_t bytes,
            Simulator::EventFn on_delivery);

  /// Computes the jitter-free delivery delay without sending: region-pair
  /// base latency plus serialization at the region-pair bandwidth (used by
  /// cost models).
  SimTime TransferDelay(NodeId from, NodeId to, uint64_t bytes) const;

  const Topology& topology() const { return topology_; }

  // --- network partitions (chaos schedules) --------------------------------
  /// Cuts the network between `island` and every other node: messages
  /// crossing the cut are dropped from the link and parked (counted in
  /// messages_dropped) instead of delivered. Intra-island and mainland
  /// traffic is unaffected. A second call replaces the island.
  void StartPartition(const std::vector<NodeId>& island);

  /// Heals the partition deterministically: parked messages are
  /// retransmitted in their original send order, with delays computed from
  /// the heal time.
  void HealPartition();

  /// False while a partition is active and `a`/`b` sit on opposite sides.
  bool Reachable(NodeId a, NodeId b) const {
    if (!partition_active_ || a == b) return true;
    return Side(a) == Side(b);
  }

  bool partition_active() const { return partition_active_; }

  /// Messages dropped at an active partition cut (each is retransmitted at
  /// heal time, so this counts disruptions, not permanent losses).
  uint64_t messages_dropped() const { return messages_dropped_; }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }

  /// Bytes sent within each completed stats window since construction.
  const std::vector<uint64_t>& window_bytes() const { return window_bytes_; }

  SimTime stats_window() const { return config_.stats_window; }

 private:
  void RollWindows();

  bool Side(NodeId n) const {
    return n >= 0 && static_cast<size_t>(n) < island_.size() &&
           island_[static_cast<size_t>(n)];
  }

  struct ParkedMessage {
    NodeId from;
    NodeId to;
    uint64_t bytes;
    Simulator::EventFn on_delivery;
  };

  Simulator* sim_;
  NetworkConfig config_;
  Topology topology_;
  // Dedicated jitter stream, derived from the experiment seed with a fixed
  // stream constant so it never aliases the experiment RNG sequence.
  Rng jitter_rng_;
  uint64_t total_bytes_;
  uint64_t total_messages_;
  std::vector<uint64_t> window_bytes_;
  bool partition_active_ = false;
  std::vector<bool> island_;  // node -> side of the cut
  std::vector<ParkedMessage> parked_;
  uint64_t messages_dropped_ = 0;
};

/// Standard message-size model shared by all protocols so byte accounting is
/// apples-to-apples (header + per-operation payload).
struct MessageSizes {
  static constexpr uint64_t kHeader = 64;
  static constexpr uint64_t kOpRequest = 48;    // key + metadata
  static constexpr uint64_t kOpResponse = 16;   // value + status
  static constexpr uint64_t kPrepare = 96;      // vote + log record header
  static constexpr uint64_t kCommitDecision = 32;
  static constexpr uint64_t kLogEntry = 64;     // replicated write record
  static constexpr uint64_t kRemasterCtl = 128; // remaster control message
  static constexpr uint64_t kPlanEntry = 24;    // plan action descriptor
};

}  // namespace lion
