#include "sim/topology.h"

#include <cmath>

#include "sim/network.h"

namespace lion {

namespace {

// Default node -> region assignment: contiguous blocks, node n in region
// n * regions / num_nodes (regions divide the node range as evenly as
// possible, first block largest by at most one).
int DefaultRegion(int node, int regions, int num_nodes) {
  return static_cast<int>(static_cast<int64_t>(node) * regions / num_nodes);
}

}  // namespace

Topology::Topology(const NetworkConfig& net, int num_nodes)
    : regions_(net.regions < 1 ? 1 : net.regions) {
  node_region_.resize(static_cast<size_t>(num_nodes < 1 ? 1 : num_nodes));
  for (size_t n = 0; n < node_region_.size(); ++n) {
    node_region_[n] =
        n < net.node_regions.size()
            ? net.node_regions[n]
            : DefaultRegion(static_cast<int>(n), regions_,
                            static_cast<int>(node_region_.size()));
  }

  size_t cells = static_cast<size_t>(regions_) * static_cast<size_t>(regions_);
  latency_.resize(cells);
  bandwidth_.resize(cells);
  for (int a = 0; a < regions_; ++a) {
    for (int b = 0; b < regions_; ++b) {
      size_t i = Index(a, b);
      if (!net.region_latency_ms.empty()) {
        latency_[i] = static_cast<SimTime>(std::llround(
            net.region_latency_ms[i] * static_cast<double>(kMillisecond)));
      } else {
        // No matrix declared: intra-region pairs keep the classic LAN
        // latency, cross-region pairs the scalar WAN latency.
        latency_[i] = a == b ? net.one_way_latency : net.cross_region_latency;
      }
      bandwidth_[i] = !net.region_bandwidth_bytes_per_sec.empty()
                          ? net.region_bandwidth_bytes_per_sec[i]
                          : net.bandwidth_bytes_per_sec;
    }
  }
}

SimTime Topology::max_cross_region_latency() const {
  SimTime max = 0;
  for (int a = 0; a < regions_; ++a) {
    for (int b = 0; b < regions_; ++b) {
      if (a != b && latency_[Index(a, b)] > max) max = latency_[Index(a, b)];
    }
  }
  return max;
}

Status Topology::Validate(const NetworkConfig& net, int num_nodes,
                          const std::string& path) {
  int regions = net.regions;
  if (regions < 1) {
    return Status::InvalidArgument(path + ".regions: " +
                                   std::to_string(regions) + " must be >= 1");
  }
  if (!net.node_regions.empty()) {
    if (static_cast<int>(net.node_regions.size()) != num_nodes) {
      return Status::InvalidArgument(
          path + ".node_regions: expected one entry per node (" +
          std::to_string(num_nodes) + "), got " +
          std::to_string(net.node_regions.size()));
    }
    for (size_t n = 0; n < net.node_regions.size(); ++n) {
      int r = net.node_regions[n];
      if (r < 0 || r >= regions) {
        return Status::InvalidArgument(
            path + ".node_regions[" + std::to_string(n) + "]: unknown region " +
            std::to_string(r) + " (regions = " + std::to_string(regions) + ")");
      }
    }
  }
  size_t cells = static_cast<size_t>(regions) * static_cast<size_t>(regions);
  if (!net.region_latency_ms.empty() && net.region_latency_ms.size() != cells) {
    return Status::InvalidArgument(
        path + ".region_latency_ms: expected " + std::to_string(cells) +
        " entries (regions^2 = " + std::to_string(regions) + "^2), got " +
        std::to_string(net.region_latency_ms.size()));
  }
  if (!net.region_bandwidth_bytes_per_sec.empty() &&
      net.region_bandwidth_bytes_per_sec.size() != cells) {
    return Status::InvalidArgument(
        path + ".region_bandwidth_bytes_per_sec: expected " +
        std::to_string(cells) + " entries (regions^2 = " +
        std::to_string(regions) + "^2), got " +
        std::to_string(net.region_bandwidth_bytes_per_sec.size()));
  }
  return Status::OK();
}

}  // namespace lion
