#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lion {

Simulator::Simulator(uint64_t seed)
    : now_(0), next_seq_(0), processed_(0), strong_pending_(0), rng_(seed) {}

void Simulator::Push(SimTime at, bool weak, EventFn fn) {
  if (at < now_) at = now_;
  if (!weak) strong_pending_++;
  queue_.push_back(Event{at, next_seq_++, weak, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

void Simulator::Schedule(SimTime delay, EventFn fn) {
  if (delay < 0) delay = 0;
  Push(now_ + delay, /*weak=*/false, std::move(fn));
}

void Simulator::ScheduleAt(SimTime at, EventFn fn) {
  Push(at, /*weak=*/false, std::move(fn));
}

void Simulator::ScheduleWeak(SimTime delay, EventFn fn) {
  if (delay < 0) delay = 0;
  Push(now_ + delay, /*weak=*/true, std::move(fn));
}

void Simulator::PopAndRun() {
  std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  assert(ev.at >= now_);
  now_ = ev.at;
  processed_++;
  if (!ev.weak) strong_pending_--;
  ev.fn();
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.front().at <= until) {
    PopAndRun();
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunUntilIdle() {
  while (strong_pending_ > 0 && !queue_.empty()) {
    PopAndRun();
  }
}

}  // namespace lion
