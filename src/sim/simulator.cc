#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lion {

namespace {
// Past the typical steady-state depth (closed-loop drivers keep a few
// hundred to a few thousand events pending), so the hot path never
// reallocates — and never move-relocates every queued closure — mid-run.
constexpr size_t kInitialCapacity = 4096;
}  // namespace

Simulator::Simulator(uint64_t seed)
    : now_(0), next_seq_(0), processed_(0), strong_pending_(0), rng_(seed) {
  queue_.reserve(kInitialCapacity);
  slots_.Reserve(kInitialCapacity);
}

void Simulator::SiftUp(size_t i) {
  HeapEntry e = queue_[i];
  while (i > 0) {
    size_t parent = (i - 1) >> 2;
    if (!Earlier(e, queue_[parent])) break;
    queue_[i] = queue_[parent];
    i = parent;
  }
  queue_[i] = e;
}

void Simulator::SiftDown() {
  size_t n = queue_.size();
  HeapEntry e = queue_[0];
  size_t i = 0;
  for (;;) {
    size_t first = (i << 2) + 1;
    if (first >= n) break;
    size_t best = first;
    size_t end = first + 4 < n ? first + 4 : n;
    for (size_t c = first + 1; c < end; ++c) {
      if (Earlier(queue_[c], queue_[best])) best = c;
    }
    if (!Earlier(queue_[best], e)) break;
    queue_[i] = queue_[best];
    i = best;
  }
  queue_[i] = e;
}

void Simulator::Push(SimTime at, bool weak, EventFn fn) {
  if (at < now_) at = now_;
  if (!weak) strong_pending_++;
  queue_.push_back(HeapEntry{at, next_seq_++, slots_.Park(std::move(fn)), weak});
  SiftUp(queue_.size() - 1);
}

void Simulator::Schedule(SimTime delay, EventFn fn) {
  if (delay < 0) delay = 0;
  Push(now_ + delay, /*weak=*/false, std::move(fn));
}

void Simulator::ScheduleAt(SimTime at, EventFn fn) {
  Push(at, /*weak=*/false, std::move(fn));
}

void Simulator::ScheduleWeak(SimTime delay, EventFn fn) {
  if (delay < 0) delay = 0;
  Push(now_ + delay, /*weak=*/true, std::move(fn));
}

void Simulator::PopAndRun() {
  HeapEntry ev = queue_[0];
  queue_[0] = queue_.back();
  queue_.pop_back();
  if (!queue_.empty()) SiftDown();
  assert(ev.at >= now_);
  now_ = ev.at;
  processed_++;
  if (!ev.weak) strong_pending_--;
  // Take (move out + free) before running: the body may schedule new
  // events, which can recycle this slot.
  EventFn fn = slots_.Take(ev.slot);
  fn();
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.front().at <= until) {
    PopAndRun();
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunUntilIdle() {
  while (strong_pending_ > 0 && !queue_.empty()) {
    PopAndRun();
  }
}

}  // namespace lion
