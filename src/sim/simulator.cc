#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace lion {

namespace {
// Past the typical steady-state depth (closed-loop drivers keep a few
// hundred to a few thousand events pending), so the hot path never
// reallocates — and never move-relocates every queued closure — mid-run.
constexpr size_t kInitialCapacity = 4096;

// Calendar geometry bounds. The bucket count tracks occupancy between
// rebuilds (kMinBuckets caps the fixed walk cost of sparse queues, the max
// caps memory); the shift caps bucket width at 2^40 ns (~18 simulated
// minutes), far past any experiment horizon.
constexpr size_t kMinBuckets = 32;
constexpr size_t kMaxBuckets = size_t{1} << 18;
constexpr uint32_t kMaxBucketShift = 40;
// ~1 us buckets until the first resample.
constexpr uint32_t kInitBucketShift = 10;

// Geometry also resamples on a pop cadence (every max(kResampleMinOps,
// 8 x pending) pops), not just on occupancy drift: a queue that holds a
// steady *count* of events can still have its delay distribution shift out
// from under a frozen bucket width — too wide concentrates everything in
// one bucket (memmove-heavy ordered inserts), too narrow spills everything
// to overflow. The cadence bounds either mispairing to a few thousand ops.
constexpr size_t kResampleMinOps = 8192;

// Consumed-prefix compaction threshold for buckets and the overflow list:
// erase the dead prefix once it is both sizable and at least half the
// vector, so memory stays bounded at O(live) with amortized O(1) moves.
constexpr size_t kCompactMinHead = 64;

// Out-of-order inserts into a sorted bucket splice into place while the
// bucket holds at most this many live entries (a short memmove); bigger
// buckets fall back to append + lazy re-sort on the next pop. Shallow
// steady states (a closed-loop driver keeps tens of events pending, often
// all in one bucket) would otherwise flap the sorted flag and re-sort the
// whole bucket on every few pops.
constexpr size_t kOrderedInsertMax = 48;

// Rebuild-time geometry sampling cap: above this many pending entries the
// width statistic is computed over a reservoir sample of deadlines instead
// of all of them, so a rebuild costs O(n + cap log cap) rather than
// O(n log n) — for 100k+-event queues that turns the occasional rebuild
// from a latency spike into noise. 4096 deadlines pin the median gap far
// more tightly than the 2x width heuristic needs.
constexpr size_t kGeometrySampleMax = 4096;

// Overflow inserts splice into sorted position when that position is within
// this many entries of the back (the overwhelmingly common case: far
// deadlines grow with the clock); a deeper insert falls back to append +
// lazy re-sort. Bounds the per-insert memmove without giving up the
// sorted-overflow fast path that epoch-batch workloads lean on.
constexpr size_t kOverflowSpliceMax = 256;

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Simulator::Simulator(uint64_t seed, SimConfig config)
    : config_(config),
      seed_(seed),
      now_(0),
      next_seq_(0),
      processed_(0),
      strong_pending_(0),
      pending_(0),
      rng_(seed) {
  slots_.Reserve(kInitialCapacity);
  if (config_.scheduler == SchedulerKind::kHeap) {
    queue_.reserve(kInitialCapacity);
  } else {
    buckets_.resize(kMinBuckets * 2);
    bucket_mask_ = buckets_.size() - 1;
    bucket_shift_ = kInitBucketShift;
  }
}

// --- reference scheduler: 4-ary heap -----------------------------------------

void Simulator::SiftUp(size_t i) {
  Entry e = queue_[i];
  while (i > 0) {
    size_t parent = (i - 1) >> 2;
    if (!Earlier(e, queue_[parent])) break;
    queue_[i] = queue_[parent];
    i = parent;
  }
  queue_[i] = e;
}

void Simulator::SiftDown() {
  size_t n = queue_.size();
  Entry e = queue_[0];
  size_t i = 0;
  for (;;) {
    size_t first = (i << 2) + 1;
    if (first >= n) break;
    size_t best = first;
    size_t end = first + 4 < n ? first + 4 : n;
    for (size_t c = first + 1; c < end; ++c) {
      if (Earlier(queue_[c], queue_[best])) best = c;
    }
    if (!Earlier(queue_[best], e)) break;
    queue_[i] = queue_[best];
    i = best;
  }
  queue_[i] = e;
}

bool Simulator::HeapPopIfAtMost(SimTime limit, Entry* out) {
  if (queue_.empty() || queue_.front().at > limit) return false;
  *out = queue_.front();
  queue_.front() = queue_.back();
  queue_.pop_back();
  if (!queue_.empty()) SiftDown();
  pending_--;
  return true;
}

// --- calendar queue ----------------------------------------------------------

void Simulator::CalPlace(const Entry& e) {
  uint64_t eb = static_cast<uint64_t>(e.at) >> bucket_shift_;
  uint64_t nb = static_cast<uint64_t>(now_) >> bucket_shift_;
  if (eb - nb >= buckets_.size()) {
    // Beyond one rotation of the ring: park in the far-future overflow
    // list, kept sorted like a bucket. Far deadlines grow with the clock
    // (timer re-arms, txn completions at now + delay), so new entries land
    // at or near the back — an append or a short splice. Only an insert
    // whose position is far from the back (rare: a short deadline arriving
    // while a long backlog is parked) marks the list dirty for a lazy
    // re-sort at the next overflow pop.
    if (overflow_head_ == overflow_.size() || !overflow_sorted_ ||
        !Earlier(e, overflow_.back())) {
      overflow_.push_back(e);
      return;
    }
    auto pos = std::upper_bound(overflow_.begin() + overflow_head_,
                                overflow_.end(), e, Earlier);
    if (overflow_.end() - pos <=
        static_cast<std::ptrdiff_t>(kOverflowSpliceMax)) {
      overflow_.insert(pos, e);
      return;
    }
    overflow_sorted_ = false;
    overflow_.push_back(e);
    return;
  }
  Bucket& b = buckets_[eb & bucket_mask_];
  cal_size_++;
  if (b.head == b.ev.size() || !b.sorted || !Earlier(e, b.ev.back())) {
    b.ev.push_back(e);  // empty, already dirty, or in-order append
    return;
  }
  if (b.ev.size() - b.head <= kOrderedInsertMax) {
    b.ev.insert(
        std::upper_bound(b.ev.begin() + b.head, b.ev.end(), e, Earlier), e);
    return;
  }
  b.sorted = false;
  b.ev.push_back(e);
}

bool Simulator::CalPopIfAtMost(SimTime limit, Entry* out) {
  const size_t overflow_live = overflow_.size() - overflow_head_;
  if (cal_size_ == 0 && overflow_live == 0) return false;

  Bucket* found = nullptr;
  if (cal_size_ > 0) {
    const uint32_t shift = bucket_shift_;
    const uint64_t start = static_cast<uint64_t>(now_) >> shift;
    const size_t nbuckets = buckets_.size();
    for (uint64_t step = 0; step < nbuckets; ++step) {
      Bucket& b = buckets_[(start + step) & bucket_mask_];
      if (b.head == b.ev.size()) continue;
      if (!b.sorted) {
        std::sort(b.ev.begin() + b.head, b.ev.end(), Earlier);
        b.sorted = true;
      }
      // The bucket's live minimum wins iff it belongs to the current lap
      // of the ring; a head from a later lap means this slot is empty for
      // now and the walk continues.
      if ((static_cast<uint64_t>(b.ev[b.head].at) >> shift) <= start + step) {
        found = &b;
        break;
      }
    }
    // Admission re-checks `at` against the advancing clock on every insert
    // and rebuild, so every bucketed entry sits within one rotation of
    // now_ and the walk above always finds the bucketed minimum. The scan
    // below is defensive only.
    assert(found != nullptr);
    if (found == nullptr) {
      for (Bucket& b : buckets_) {
        if (b.head == b.ev.size()) continue;
        if (!b.sorted) {
          std::sort(b.ev.begin() + b.head, b.ev.end(), Earlier);
          b.sorted = true;
        }
        if (found == nullptr ||
            Earlier(b.ev[b.head], found->ev[found->head])) {
          found = &b;
        }
      }
    }
  }

  const Entry* best = found != nullptr ? &found->ev[found->head] : nullptr;
  bool from_overflow = false;
  if (overflow_live > 0) {
    // Overflow can undercut the bucketed minimum: an entry parked beyond
    // the horizon long ago may be nearer than anything admitted since.
    if (!overflow_sorted_) {
      std::sort(overflow_.begin() + overflow_head_, overflow_.end(), Earlier);
      overflow_sorted_ = true;
    }
    if (best == nullptr || Earlier(overflow_[overflow_head_], *best)) {
      best = &overflow_[overflow_head_];
      from_overflow = true;
    }
  }

  if (best->at > limit) return false;
  *out = *best;
  pending_--;
  if (from_overflow) {
    overflow_head_++;
    if (overflow_head_ == overflow_.size()) {
      overflow_.clear();
      overflow_head_ = 0;
      overflow_sorted_ = true;
    } else if (overflow_head_ >= kCompactMinHead &&
               overflow_head_ * 2 >= overflow_.size()) {
      overflow_.erase(overflow_.begin(), overflow_.begin() + overflow_head_);
      overflow_head_ = 0;
    }
  } else {
    Bucket& b = *found;
    b.head++;
    if (b.head == b.ev.size()) {
      b.ev.clear();
      b.head = 0;
      b.sorted = true;
    } else if (b.head >= kCompactMinHead && b.head * 2 >= b.ev.size()) {
      b.ev.erase(b.ev.begin(), b.ev.begin() + b.head);
      b.head = 0;
    }
    cal_size_--;
  }
  const size_t live = cal_size_ + (overflow_.size() - overflow_head_);
  if (live > 0 &&
      ((live < buckets_.size() / 8 && buckets_.size() > kMinBuckets) ||
       ++ops_since_rebuild_ >= std::max(kResampleMinOps, live * 8))) {
    CalRebuild();
  }
  return true;
}

uint32_t Simulator::SampleBucketShift() {
  // Width is ~2x the median gap between consecutive *distinct* pending
  // deadlines, so a couple of distinct instants share a bucket and walks
  // advance ~1 bucket per pop. Distinct values make the statistic immune
  // to the two shapes that poison count-based sampling: tie masses (an
  // epoch burst contributes one value, not thousands of zero gaps) and a
  // handful of far-future timers (two big gaps cannot move the median).
  // Whatever falls beyond the resulting rotation lands in the sorted
  // overflow list, which near-back splicing keeps cheap. The sort is
  // bounded by kGeometrySampleMax (deeper queues are reservoir-sampled),
  // and rebuilds fire on occupancy doubling or every ~8x-pending pops, so
  // this costs a few comparisons per event with no deep-queue spikes.
  const size_t n = scratch_.size();
  if (n < 2) return bucket_shift_;
  scratch_times_.clear();
  if (n <= kGeometrySampleMax) {
    scratch_times_.reserve(n);
    for (const Entry& e : scratch_) scratch_times_.push_back(e.at);
  } else {
    // Deep queue: reservoir-sample the deadlines (Vitter's Algorithm R) so
    // the sort below is bounded. Gaps between consecutive *sampled* order
    // statistics average n/K true gaps each, so the median gap computed
    // from the sample is rescaled by K/n below before it sets the width.
    scratch_times_.reserve(kGeometrySampleMax);
    for (size_t i = 0; i < kGeometrySampleMax; ++i) {
      scratch_times_.push_back(scratch_[i].at);
    }
    for (size_t i = kGeometrySampleMax; i < n; ++i) {
      size_t j = static_cast<size_t>(geometry_rng_.Uniform(i + 1));
      if (j < kGeometrySampleMax) scratch_times_[j] = scratch_[i].at;
    }
  }
  std::sort(scratch_times_.begin(), scratch_times_.end());
  scratch_gaps_.clear();
  for (size_t i = 1; i < scratch_times_.size(); ++i) {
    SimTime d = scratch_times_[i] - scratch_times_[i - 1];
    if (d > 0) scratch_gaps_.push_back(d);
  }
  if (scratch_gaps_.empty()) return 0;  // every pending deadline ties
  auto mid = scratch_gaps_.begin() +
             static_cast<std::ptrdiff_t>(scratch_gaps_.size() / 2);
  std::nth_element(scratch_gaps_.begin(), mid, scratch_gaps_.end());
  // When the deadlines were sampled, a sampled gap spans ~n/sample true
  // gaps; rescale so the width still targets a couple of *distinct
  // pending instants* per bucket, not a couple of sampled ones (which
  // would make buckets ~n/sample times too wide in the deep-queue regime
  // the sampling protects).
  double scale = static_cast<double>(scratch_times_.size()) /
                 static_cast<double>(n);
  double width = 2.0 * static_cast<double>(*mid) * scale;
  uint32_t shift = 0;
  while (shift < kMaxBucketShift &&
         static_cast<double>(uint64_t{1} << (shift + 1)) <= width) {
    shift++;
  }
  return shift;
}

void Simulator::CalRebuild() {
  // Drain everything (buckets and overflow), re-derive geometry from the
  // survivors, and re-admit. Triggered when occupancy drifts past the
  // doubling/eighth thresholds, so the O(n) cost amortizes against the
  // inserts/pops that caused the drift.
  scratch_.clear();
  for (Bucket& b : buckets_) {
    for (size_t i = b.head; i < b.ev.size(); ++i) scratch_.push_back(b.ev[i]);
    b.ev.clear();
    b.head = 0;
    b.sorted = true;
  }
  scratch_.insert(scratch_.end(), overflow_.begin() + overflow_head_,
                  overflow_.end());
  overflow_.clear();
  overflow_head_ = 0;
  overflow_sorted_ = true;
  cal_size_ = 0;
  ops_since_rebuild_ = 0;

  size_t target =
      NextPow2(std::min(std::max(scratch_.size(), kMinBuckets), kMaxBuckets));
  if (target != buckets_.size()) {
    buckets_.resize(target);
    bucket_mask_ = target - 1;
  }
  bucket_shift_ = SampleBucketShift();
  for (const Entry& e : scratch_) CalPlace(e);
}

// --- shared driver -----------------------------------------------------------

void Simulator::Push(SimTime at, bool weak, EventFn fn) {
  if (at < now_) at = now_;
  Entry e{at, next_seq_++, slots_.Park(std::move(fn)), weak};
  if (!weak) strong_pending_++;
  pending_++;
  assert(slots_.in_use() == pending_);
  if (config_.scheduler == SchedulerKind::kHeap) {
    queue_.push_back(e);
    SiftUp(queue_.size() - 1);
    return;
  }
  CalPlace(e);
  if (cal_size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    CalRebuild();
  }
}

bool Simulator::PopIfAtMost(SimTime limit, Entry* out) {
  if (config_.scheduler == SchedulerKind::kHeap) {
    return HeapPopIfAtMost(limit, out);
  }
  return CalPopIfAtMost(limit, out);
}

void Simulator::RunEntry(const Entry& e) {
  assert(e.at >= now_);
  now_ = e.at;
  processed_++;
  if (!e.weak) strong_pending_--;
  // Take (move out + free) before running: the body may schedule new
  // events, which can recycle this slot.
  EventFn fn = slots_.Take(e.slot);
  fn();
}

void Simulator::Schedule(SimTime delay, EventFn fn) {
  if (delay < 0) delay = 0;
  Push(now_ + delay, /*weak=*/false, std::move(fn));
}

void Simulator::ScheduleAt(SimTime at, EventFn fn) {
  Push(at, /*weak=*/false, std::move(fn));
}

void Simulator::ScheduleWeak(SimTime delay, EventFn fn) {
  if (delay < 0) delay = 0;
  Push(now_ + delay, /*weak=*/true, std::move(fn));
}

void Simulator::RunUntil(SimTime until) {
  Entry e;
  while (PopIfAtMost(until, &e)) RunEntry(e);
  if (now_ < until) now_ = until;
}

void Simulator::RunUntilIdle() {
  Entry e;
  while (strong_pending_ > 0 &&
         PopIfAtMost(std::numeric_limits<SimTime>::max(), &e)) {
    RunEntry(e);
  }
}

}  // namespace lion
