// Resumable periodic weak-event loop shared by the simulator's background
// machinery (Protocol epoch timer, Planner tick, Clay monitor,
// ReplicationManager epochs), which all used to hand-roll the same
// stop/resume idiom.
#pragma once

#include <functional>

#include "common/types.h"
#include "sim/simulator.h"

namespace lion {

/// Drives a callback every `interval` ns via weak events (the loop never
/// keeps RunUntilIdle alive). Semantics shared by all users:
///
///  - Start(interval) arms the loop; the first tick fires `interval` from
///    now. Idempotent: if a tick is already pending (including one left
///    over from before a Stop()), it is reused rather than doubled, so
///    Stop();Start() pairs never accumulate timers.
///  - Stop() halts the loop: the pending tick (weak, already scheduled)
///    fires but is consumed silently without running the callback or
///    re-arming. Idempotent.
///  - The callback may call Stop() on its owner; the loop then winds down
///    after the current tick.
///
/// The owner must outlive the simulator run or drain its events: a pending
/// tick holds a pointer to this timer.
class PeriodicTimer {
 public:
  using TickFn = std::function<void(SimTime now)>;

  /// `sim` may be null only if Start is never called (supports members of
  /// objects constructed against a null substrate in tests).
  PeriodicTimer(Simulator* sim, TickFn on_tick)
      : sim_(sim), on_tick_(std::move(on_tick)) {}

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void Start(SimTime interval) {
    interval_ = interval;
    stopped_ = false;
    if (armed_) return;  // the pending tick resumes the chain
    armed_ = true;
    ScheduleTick();
  }

  void Stop() { stopped_ = true; }

  /// True while the loop is live (started and not stopped).
  bool running() const { return armed_ && !stopped_; }

 private:
  void ScheduleTick() {
    sim_->ScheduleWeak(interval_, [this]() {
      if (stopped_) {
        armed_ = false;
        return;
      }
      on_tick_(sim_->Now());
      // Re-check: the callback may have stopped its owner (and us) — do not
      // re-arm through a tick that would be consumed anyway.
      if (stopped_) {
        armed_ = false;
        return;
      }
      ScheduleTick();
    });
  }

  Simulator* sim_;
  TickFn on_tick_;
  SimTime interval_ = 0;
  bool armed_ = false;
  bool stopped_ = true;
};

}  // namespace lion
