// Simulator tuning knobs, split from the simulator itself so config structs
// (harness/experiment_config.h) can carry them without pulling in the event
// queue machinery.
#pragma once

namespace lion {

/// Which event-queue implementation orders the simulation.
///
/// Both schedulers dispatch events in the exact (time, insertion sequence)
/// total order, so a run is bit-for-bit identical under either — the knob
/// trades data structures, not semantics. `kHeap` is the reference 4-ary
/// implicit heap (O(log n) per operation); `kCalendar` is the bucketed
/// calendar queue (O(1) amortized schedule→dispatch, the default).
enum class SchedulerKind {
  kHeap,
  kCalendar,
};

struct SimConfig {
  SchedulerKind scheduler = SchedulerKind::kCalendar;
};

}  // namespace lion
