// Multi-server CPU model for one simulated node.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/types.h"
#include "sim/simulator.h"

namespace lion {

/// Task admission classes, highest priority first.
///
/// kService models the coco/Star worker loop serving incoming remote-op and
/// control messages ahead of local work; kResume continues an in-flight
/// transaction whose awaited response arrived; kNew admits a fresh
/// transaction. Prioritizing service/resume over new admission is what keeps
/// the simulated system work-conserving without deadlocking on full pools.
enum class TaskPriority : int { kService = 0, kResume = 1, kNew = 2 };

/// A pool of `k` workers on one node. Submitted tasks occupy a worker for a
/// service duration, then run their completion callback. Excess tasks queue
/// per priority class in FIFO order.
class WorkerPool {
 public:
  WorkerPool(Simulator* sim, int workers);

  /// Enqueues a task needing `duration` ns of worker time; `on_done` runs
  /// when the task's service completes.
  void Submit(TaskPriority priority, SimTime duration, std::function<void()> on_done);

  int workers() const { return workers_; }
  int busy_workers() const { return busy_; }
  size_t queued_tasks() const;

  /// Total worker-busy nanoseconds (for utilization reporting).
  SimTime busy_time() const { return busy_time_; }

  /// Tasks completed since construction.
  uint64_t completed_tasks() const { return completed_; }

  /// Approximate instantaneous load: busy workers + queued tasks.
  double Load() const;

 private:
  struct Task {
    SimTime duration;
    std::function<void()> on_done;
  };

  void TryDispatch();
  void RunTask(Task task);

  Simulator* sim_;
  int workers_;
  int busy_;
  SimTime busy_time_;
  uint64_t completed_;
  std::deque<Task> queues_[3];
};

}  // namespace lion
