// Multi-server CPU model for one simulated node.
#pragma once

#include <cstdint>
#include <deque>

#include "common/move_fn.h"
#include "common/slot_pool.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace lion {

/// Task admission classes, highest priority first.
///
/// kService models the coco/Star worker loop serving incoming remote-op and
/// control messages ahead of local work; kResume continues an in-flight
/// transaction whose awaited response arrived; kNew admits a fresh
/// transaction. Prioritizing service/resume over new admission is what keeps
/// the simulated system work-conserving without deadlocking on full pools.
enum class TaskPriority : int { kService = 0, kResume = 1, kNew = 2 };

/// A pool of `k` workers on one node. Submitted tasks occupy a worker for a
/// service duration, then run their completion callback. Excess tasks queue
/// per priority class in FIFO order.
class WorkerPool {
 public:
  WorkerPool(Simulator* sim, int workers);

  /// Enqueues a task needing `duration` ns of worker time; `on_done` runs
  /// when the task's service completes. Move-only: the callback is parked
  /// in a recycled slot while the task is in flight, so the completion
  /// event's closure is two words and submission never allocates.
  void Submit(TaskPriority priority, SimTime duration,
              MoveFn<void()> on_done);

  int workers() const { return workers_; }
  int busy_workers() const { return busy_; }
  size_t queued_tasks() const;

  /// Total worker-busy nanoseconds (for utilization reporting).
  SimTime busy_time() const { return busy_time_; }

  /// Tasks completed since construction.
  uint64_t completed_tasks() const { return completed_; }

  /// Approximate instantaneous load: busy workers + queued tasks.
  double Load() const;

 private:
  struct Task {
    SimTime duration = 0;
    MoveFn<void()> on_done;
  };

  void TryDispatch();
  void RunTask(Task task);

  Simulator* sim_;
  int workers_;
  int busy_;
  SimTime busy_time_;
  uint64_t completed_;
  std::deque<Task> queues_[3];
  // Callbacks of dispatched (in-flight) tasks; completion events reference
  // their slot instead of owning the callback, which keeps the per-task
  // completion closure inline in the event heap.
  SlotPool<MoveFn<void()>> inflight_;
};

}  // namespace lion
