#include "sim/worker_pool.h"

#include <cassert>
#include <memory>
#include <utility>

namespace lion {

WorkerPool::WorkerPool(Simulator* sim, int workers)
    : sim_(sim), workers_(workers), busy_(0), busy_time_(0), completed_(0) {
  assert(workers > 0);
}

size_t WorkerPool::queued_tasks() const {
  return queues_[0].size() + queues_[1].size() + queues_[2].size();
}

double WorkerPool::Load() const {
  return static_cast<double>(busy_) + static_cast<double>(queued_tasks());
}

void WorkerPool::Submit(TaskPriority priority, SimTime duration,
                        MoveFn<void()> on_done) {
  if (duration < 0) duration = 0;
  queues_[static_cast<int>(priority)].push_back(Task{duration, std::move(on_done)});
  TryDispatch();
}

void WorkerPool::TryDispatch() {
  while (busy_ < workers_) {
    Task task;
    bool found = false;
    for (auto& queue : queues_) {
      if (!queue.empty()) {
        task = std::move(queue.front());
        queue.pop_front();
        found = true;
        break;
      }
    }
    if (!found) return;
    RunTask(std::move(task));
  }
}

void WorkerPool::RunTask(Task task) {
  busy_++;
  busy_time_ += task.duration;
  // Park the callback in a recycled slot: a MoveFn captured inside another
  // event closure could never fit the event's inline buffer (it carries its
  // own), but a slot index is one word.
  uint32_t slot = inflight_.Park(std::move(task.on_done));
  sim_->Schedule(task.duration, [this, slot]() {
    busy_--;
    completed_++;
    // Take before running: the callback may submit follow-up tasks, which
    // can recycle this slot.
    MoveFn<void()> done = inflight_.Take(slot);
    if (done) done();
    TryDispatch();
  });
}

}  // namespace lion
