#include "sim/network.h"

#include <cmath>
#include <utility>

namespace lion {

Network::Network(Simulator* sim, NetworkConfig config)
    : sim_(sim), config_(config), total_bytes_(0), total_messages_(0) {}

SimTime Network::TransferDelay(NodeId from, NodeId to, uint64_t bytes) const {
  if (from == to) return config_.local_latency;
  double serialization =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec * kSecond;
  return config_.one_way_latency + static_cast<SimTime>(std::llround(serialization));
}

void Network::RollWindows() {
  size_t idx = static_cast<size_t>(sim_->Now() / config_.stats_window);
  if (window_bytes_.size() <= idx) window_bytes_.resize(idx + 1, 0);
}

void Network::Send(NodeId from, NodeId to, uint64_t bytes,
                   Simulator::EventFn on_delivery) {
  SimTime delay = TransferDelay(from, to, bytes);
  if (from != to) {
    total_bytes_ += bytes;
    total_messages_ += 1;
    RollWindows();
    window_bytes_[static_cast<size_t>(sim_->Now() / config_.stats_window)] += bytes;
  }
  sim_->Schedule(delay, std::move(on_delivery));
}

}  // namespace lion
