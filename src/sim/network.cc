#include "sim/network.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace lion {

namespace {
// Stream constant separating the jitter RNG from the experiment RNG seeded
// with the same value (golden-ratio increment, as in splitmix64).
constexpr uint64_t kJitterStreamSalt = 0x9e3779b97f4a7c15ULL;
}  // namespace

Network::Network(Simulator* sim, NetworkConfig config, int num_nodes)
    : sim_(sim),
      config_(std::move(config)),
      topology_(config_, num_nodes),
      jitter_rng_(sim->seed() ^ kJitterStreamSalt),
      total_bytes_(0),
      total_messages_(0) {}

SimTime Network::TransferDelay(NodeId from, NodeId to, uint64_t bytes) const {
  if (from == to) return config_.local_latency;
  double serialization =
      static_cast<double>(bytes) / topology_.bandwidth(from, to) * kSecond;
  return topology_.base_latency(from, to) +
         static_cast<SimTime>(std::llround(serialization));
}

void Network::RollWindows() {
  size_t idx = static_cast<size_t>(sim_->Now() / config_.stats_window);
  if (window_bytes_.size() <= idx) window_bytes_.resize(idx + 1, 0);
}

void Network::StartPartition(const std::vector<NodeId>& island) {
  partition_active_ = true;
  island_.assign(static_cast<size_t>(topology_.num_nodes()), false);
  for (NodeId n : island) {
    if (n >= 0 && static_cast<size_t>(n) < island_.size()) {
      island_[static_cast<size_t>(n)] = true;
    }
  }
}

void Network::HealPartition() {
  if (!partition_active_) return;
  partition_active_ = false;
  // Retransmit in send order from the heal time: serialization and jitter
  // re-apply, so delivery stays deterministic under a fixed seed.
  std::vector<ParkedMessage> parked;
  parked.swap(parked_);
  for (ParkedMessage& m : parked) {
    Send(m.from, m.to, m.bytes, std::move(m.on_delivery));
  }
}

void Network::Send(NodeId from, NodeId to, uint64_t bytes,
                   Simulator::EventFn on_delivery) {
  if (partition_active_ && from != to && Side(from) != Side(to)) {
    messages_dropped_++;
    parked_.push_back(ParkedMessage{from, to, bytes, std::move(on_delivery)});
    return;
  }
  SimTime delay = TransferDelay(from, to, bytes);
  if (from != to) {
    if (config_.jitter_pct > 0.0) {
#ifndef NDEBUG
      // Jitter must come from the dedicated stream: a draw from the
      // experiment RNG here would shift every downstream workload/protocol
      // sequence the moment jitter is enabled.
      const uint64_t experiment_stream_before = sim_->rng().StateFingerprint();
#endif
      double u = 2.0 * jitter_rng_.NextDouble() - 1.0;  // [-1, 1)
      delay += static_cast<SimTime>(
          std::llround(u * config_.jitter_pct * static_cast<double>(delay)));
#ifndef NDEBUG
      assert(sim_->rng().StateFingerprint() == experiment_stream_before &&
             "network jitter drew from the experiment RNG stream");
#endif
    }
    total_bytes_ += bytes;
    total_messages_ += 1;
    RollWindows();
    window_bytes_[static_cast<size_t>(sim_->Now() / config_.stats_window)] += bytes;
  }
  sim_->Schedule(delay, std::move(on_delivery));
}

}  // namespace lion
