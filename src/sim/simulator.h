// Discrete-event simulation core: a clock and an ordered event queue.
#pragma once

#include <cstdint>
#include <vector>

#include "common/move_fn.h"
#include "common/rng.h"
#include "common/slot_pool.h"
#include "common/types.h"

namespace lion {

/// Single-threaded discrete-event simulator.
///
/// Events are closures ordered by (time, insertion sequence); ties resolve in
/// FIFO order, which keeps runs deterministic. All components in one
/// experiment share the simulator's clock and RNG.
///
/// Events come in two strengths: regular ("strong") events represent real
/// pending work, while *weak* events (periodic tickers: epoch group commit,
/// planners, sequencers) do not keep the simulation alive — RunUntilIdle
/// stops once only weak events remain.
class Simulator {
 public:
  /// Events are move-only callables, so closures may own their transaction
  /// (or any other unique_ptr state) outright — no copyable-closure shims.
  using EventFn = MoveFn<void()>;

  explicit Simulator(uint64_t seed = 1);

  /// Current simulated time (ns since experiment start).
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now (clamped to >= 0).
  void Schedule(SimTime delay, EventFn fn);

  /// Schedules `fn` at the absolute time `at` (clamped to >= Now()).
  void ScheduleAt(SimTime at, EventFn fn);

  /// Schedules a weak event: periodic background machinery that should not
  /// prevent RunUntilIdle from terminating.
  void ScheduleWeak(SimTime delay, EventFn fn);

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed; the clock always
  /// advances to `until`.
  void RunUntil(SimTime until);

  /// Runs until no strong events remain.
  void RunUntilIdle();

  /// Number of events executed so far.
  uint64_t processed_events() const { return processed_; }

  /// Number of events currently pending (strong + weak).
  size_t pending_events() const { return queue_.size(); }

  /// The experiment-wide deterministic RNG.
  Rng& rng() { return rng_; }

 private:
  // The ordered heap holds only trivially-copyable entries; the closure
  // itself is parked once in `slots_` and never moved by the heap. Sifting
  // therefore copies 24-byte PODs instead of relocating type-erased
  // callables — together with MoveFn's small-buffer storage this makes the
  // schedule→run cycle allocation-free and keeps per-sift work at a few
  // trivial copies.
  struct HeapEntry {
    SimTime at;
    uint64_t seq;
    uint32_t slot;
    bool weak;
  };
  // (at, seq) is a total order (seq is unique), so the pop sequence — and
  // with it the whole simulation — is deterministic regardless of how the
  // heap arranges entries internally.
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void Push(SimTime at, bool weak, EventFn fn);
  void PopAndRun();
  // Hand-rolled 4-ary implicit heap: half the levels of a binary heap and
  // the four children of a node sit in adjacent memory, so a sift touches
  // fewer cache lines than std::push_heap/pop_heap on the same vector.
  void SiftUp(size_t i);
  void SiftDown();

  SimTime now_;
  uint64_t next_seq_;
  uint64_t processed_;
  uint64_t strong_pending_;
  std::vector<HeapEntry> queue_;
  // Pending closures, parked by index so the heap never moves them.
  SlotPool<EventFn> slots_;
  Rng rng_;
};

}  // namespace lion
