// Discrete-event simulation core: a clock and an ordered event queue.
#pragma once

#include <cstdint>
#include <vector>

#include "common/move_fn.h"
#include "common/rng.h"
#include "common/slot_pool.h"
#include "common/types.h"
#include "sim/sim_config.h"

namespace lion {

/// Single-threaded discrete-event simulator.
///
/// Events are closures ordered by (time, insertion sequence); ties resolve in
/// FIFO order, which keeps runs deterministic. All components in one
/// experiment share the simulator's clock and RNG.
///
/// Events come in two strengths: regular ("strong") events represent real
/// pending work, while *weak* events (periodic tickers: epoch group commit,
/// planners, sequencers) do not keep the simulation alive — RunUntilIdle
/// stops once only weak events remain.
///
/// Two interchangeable schedulers order the queue (SimConfig::scheduler):
/// the default calendar queue buckets events by `at >> bucket_shift` into a
/// power-of-two ring and dispatches in O(1) amortized, while the reference
/// 4-ary heap pays an O(log n) sift per operation. Both emit the identical
/// (time, seq) pop sequence, so the choice never changes simulation results
/// — only how fast they are produced (see tests/scheduler_equivalence_test).
class Simulator {
 public:
  /// Events are move-only callables, so closures may own their transaction
  /// (or any other unique_ptr state) outright — no copyable-closure shims.
  using EventFn = MoveFn<void()>;

  explicit Simulator(uint64_t seed = 1, SimConfig config = SimConfig{});

  /// Current simulated time (ns since experiment start).
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now (clamped to >= 0).
  void Schedule(SimTime delay, EventFn fn);

  /// Schedules `fn` at the absolute time `at` (clamped to >= Now()).
  void ScheduleAt(SimTime at, EventFn fn);

  /// Schedules a weak event: periodic background machinery that should not
  /// prevent RunUntilIdle from terminating.
  void ScheduleWeak(SimTime delay, EventFn fn);

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed; the clock always
  /// advances to `until`.
  void RunUntil(SimTime until);

  /// Runs until no strong events remain.
  void RunUntilIdle();

  /// Number of events executed so far.
  uint64_t processed_events() const { return processed_; }

  /// Number of events currently pending (strong + weak).
  size_t pending_events() const { return pending_; }

  /// The scheduler this instance was constructed with.
  SchedulerKind scheduler() const { return config_.scheduler; }

  /// The experiment-wide deterministic RNG.
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

  /// The seed this simulator (and its RNG) was constructed with. Components
  /// that keep private streams (network jitter) derive theirs from it so a
  /// whole experiment remains a function of one seed.
  uint64_t seed() const { return seed_; }

 private:
  // Both schedulers order only trivially-copyable entries; the closure
  // itself is parked once in `slots_` and never moved by the queue.
  // Reordering therefore copies 24-byte PODs instead of relocating
  // type-erased callables — together with MoveFn's small-buffer storage this
  // makes the schedule→run cycle allocation-free in steady state.
  struct Entry {
    SimTime at;
    uint64_t seq;
    uint32_t slot;
    bool weak;
  };
  // (at, seq) is a total order (seq is unique), so the pop sequence — and
  // with it the whole simulation — is deterministic regardless of how the
  // scheduler arranges entries internally.
  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// One calendar bucket: an append-only vector with a consumed prefix
  /// ([0, head)) and lazy ordering — `sorted` says [head, end) is ascending
  /// by (at, seq). Timer chains and closed-loop drivers append in nearly
  /// monotone order, so the common case never sorts at all; out-of-order
  /// inserts just clear the flag and the next pop from this bucket pays one
  /// std::sort over its handful of live entries.
  struct Bucket {
    std::vector<Entry> ev;
    uint32_t head = 0;
    bool sorted = true;
  };

  void Push(SimTime at, bool weak, EventFn fn);
  /// Removes the earliest pending entry if its time is <= `limit`.
  bool PopIfAtMost(SimTime limit, Entry* out);
  /// Advances the clock to `e.at` and runs the parked closure.
  void RunEntry(const Entry& e);

  // --- reference scheduler: hand-rolled 4-ary implicit heap --------------
  // Half the levels of a binary heap, and the four children of a node sit
  // in adjacent memory, so a sift touches few cache lines.
  bool HeapPopIfAtMost(SimTime limit, Entry* out);
  void SiftUp(size_t i);
  void SiftDown();

  // --- calendar queue ----------------------------------------------------
  // Buckets index by absolute bucket number `at >> bucket_shift_` into a
  // power-of-two ring; events beyond one full rotation of the ring park in
  // `overflow_` (itself a lazily sorted vector). Geometry (bucket count and
  // width) re-adapts on occupancy-triggered rebuilds.
  void CalPlace(const Entry& e);
  bool CalPopIfAtMost(SimTime limit, Entry* out);
  void CalRebuild();
  uint32_t SampleBucketShift();

  SimConfig config_;
  uint64_t seed_;
  SimTime now_;
  uint64_t next_seq_;
  uint64_t processed_;
  uint64_t strong_pending_;
  size_t pending_;

  // Heap storage (kHeap only).
  std::vector<Entry> queue_;

  // Calendar storage (kCalendar only).
  std::vector<Bucket> buckets_;
  uint64_t bucket_mask_ = 0;
  uint32_t bucket_shift_ = 0;
  size_t cal_size_ = 0;  // live entries in buckets_ (overflow_ excluded)
  size_t ops_since_rebuild_ = 0;  // pop cadence for geometry resampling
  std::vector<Entry> overflow_;
  uint32_t overflow_head_ = 0;
  bool overflow_sorted_ = true;
  // Rebuild staging, kept as members so geometry changes recycle capacity.
  std::vector<Entry> scratch_;
  std::vector<SimTime> scratch_times_;
  std::vector<SimTime> scratch_gaps_;

  // Pending closures, parked by index so the schedulers never move them.
  SlotPool<EventFn> slots_;
  Rng rng_;
  // Geometry sampling RNG, separate from rng_: experiments draw from rng_,
  // so scheduler-internal draws must never perturb that stream (results
  // must be identical under both schedulers). Geometry only shapes bucket
  // widths — the pop order is (at, seq) regardless — but the draws are kept
  // deterministic anyway so rebuild behavior reproduces run to run.
  Rng geometry_rng_;
};

}  // namespace lion
