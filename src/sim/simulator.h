// Discrete-event simulation core: a clock and an ordered event queue.
#pragma once

#include <cstdint>
#include <vector>

#include "common/move_fn.h"
#include "common/rng.h"
#include "common/types.h"

namespace lion {

/// Single-threaded discrete-event simulator.
///
/// Events are closures ordered by (time, insertion sequence); ties resolve in
/// FIFO order, which keeps runs deterministic. All components in one
/// experiment share the simulator's clock and RNG.
///
/// Events come in two strengths: regular ("strong") events represent real
/// pending work, while *weak* events (periodic tickers: epoch group commit,
/// planners, sequencers) do not keep the simulation alive — RunUntilIdle
/// stops once only weak events remain.
class Simulator {
 public:
  /// Events are move-only callables, so closures may own their transaction
  /// (or any other unique_ptr state) outright — no copyable-closure shims.
  using EventFn = MoveFn<void()>;

  explicit Simulator(uint64_t seed = 1);

  /// Current simulated time (ns since experiment start).
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now (clamped to >= 0).
  void Schedule(SimTime delay, EventFn fn);

  /// Schedules `fn` at the absolute time `at` (clamped to >= Now()).
  void ScheduleAt(SimTime at, EventFn fn);

  /// Schedules a weak event: periodic background machinery that should not
  /// prevent RunUntilIdle from terminating.
  void ScheduleWeak(SimTime delay, EventFn fn);

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed; the clock always
  /// advances to `until`.
  void RunUntil(SimTime until);

  /// Runs until no strong events remain.
  void RunUntilIdle();

  /// Number of events executed so far.
  uint64_t processed_events() const { return processed_; }

  /// Number of events currently pending (strong + weak).
  size_t pending_events() const { return queue_.size(); }

  /// The experiment-wide deterministic RNG.
  Rng& rng() { return rng_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    bool weak;
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void Push(SimTime at, bool weak, EventFn fn);
  void PopAndRun();

  SimTime now_;
  uint64_t next_seq_;
  uint64_t processed_;
  uint64_t strong_pending_;
  // Explicit binary heap (push_heap/pop_heap) rather than priority_queue:
  // the popped event must be *moved* out before running, which
  // priority_queue's const top() cannot express for move-only handlers.
  std::vector<Event> queue_;
  Rng rng_;
};

}  // namespace lion
