#include "metrics/metrics.h"

namespace lion {

MetricsCollector::MetricsCollector(SimTime window)
    : window_(window),
      measure_start_(0),
      measuring_(true),
      committed_(0),
      warmup_committed_(0),
      aborts_(0),
      single_node_(0),
      remastered_(0),
      distributed_(0) {}

void MetricsCollector::StartMeasurement(SimTime now) {
  measuring_ = true;
  measure_start_ = now;
  warmup_committed_ += committed_;
  committed_ = 0;
  aborts_ = 0;
  single_node_ = 0;
  remastered_ = 0;
  distributed_ = 0;
  aborted_unavailable_ = 0;
  latency_.Reset();
  breakdown_sum_ = PhaseBreakdown{};
}

void MetricsCollector::OnAbortUnavailable(SimTime now) {
  size_t w = static_cast<size_t>(now / window_);
  if (window_unavailable_.size() <= w) window_unavailable_.resize(w + 1, 0);
  window_unavailable_[w]++;
  if (measuring_) aborted_unavailable_++;
}

void MetricsCollector::OnCommit(const Transaction& txn, SimTime now) {
  if (commit_listener_) commit_listener_(txn);
  size_t w = static_cast<size_t>(now / window_);
  if (window_commits_.size() <= w) window_commits_.resize(w + 1, 0);
  window_commits_[w]++;

  if (!measuring_) {
    warmup_committed_++;
    return;
  }
  committed_++;
  switch (txn.exec_class()) {
    case ExecClass::kSingleNode:
      single_node_++;
      break;
    case ExecClass::kRemastered:
      remastered_++;
      break;
    case ExecClass::kDistributed:
      distributed_++;
      break;
  }
  latency_.Record(now - txn.created_at());
  breakdown_sum_.Add(txn.breakdown());
}

double MetricsCollector::Throughput(SimTime now) const {
  SimTime elapsed = now - measure_start_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(committed_) / ToSeconds(elapsed);
}

double MetricsCollector::WindowThroughput(size_t i) const {
  if (i >= window_commits_.size()) return 0.0;
  return static_cast<double>(window_commits_[i]) / ToSeconds(window_);
}

double MetricsCollector::WindowAvailability(size_t i) const {
  uint64_t commits = i < window_commits_.size() ? window_commits_[i] : 0;
  uint64_t unavailable =
      i < window_unavailable_.size() ? window_unavailable_[i] : 0;
  if (commits + unavailable == 0) return 1.0;
  return static_cast<double>(commits) /
         static_cast<double>(commits + unavailable);
}

}  // namespace lion
