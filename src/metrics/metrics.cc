#include "metrics/metrics.h"

namespace lion {

MetricsCollector::MetricsCollector(SimTime window)
    : window_(window),
      measure_start_(0),
      measuring_(true),
      committed_(0),
      warmup_committed_(0),
      aborts_(0),
      single_node_(0),
      remastered_(0),
      distributed_(0) {}

void MetricsCollector::StartMeasurement(SimTime now) {
  measuring_ = true;
  measure_start_ = now;
  warmup_committed_ += committed_;
  committed_ = 0;
  aborts_ = 0;
  single_node_ = 0;
  remastered_ = 0;
  distributed_ = 0;
  latency_.Reset();
  breakdown_sum_ = PhaseBreakdown{};
}

void MetricsCollector::OnCommit(const Transaction& txn, SimTime now) {
  size_t w = static_cast<size_t>(now / window_);
  if (window_commits_.size() <= w) window_commits_.resize(w + 1, 0);
  window_commits_[w]++;

  if (!measuring_) {
    warmup_committed_++;
    return;
  }
  committed_++;
  switch (txn.exec_class()) {
    case ExecClass::kSingleNode:
      single_node_++;
      break;
    case ExecClass::kRemastered:
      remastered_++;
      break;
    case ExecClass::kDistributed:
      distributed_++;
      break;
  }
  latency_.Record(now - txn.created_at());
  breakdown_sum_.Add(txn.breakdown());
}

double MetricsCollector::Throughput(SimTime now) const {
  SimTime elapsed = now - measure_start_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(committed_) / ToSeconds(elapsed);
}

double MetricsCollector::WindowThroughput(size_t i) const {
  if (i >= window_commits_.size()) return 0.0;
  return static_cast<double>(window_commits_[i]) / ToSeconds(window_);
}

}  // namespace lion
