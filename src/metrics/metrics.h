// Experiment-wide measurement: throughput series, latency, breakdowns.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace lion {

/// Collects everything the paper's evaluation reports: committed/aborted
/// counts by execution class, a commit-latency histogram, the phase
/// breakdown (Fig. 14b), and a bucketed throughput time series (Figs. 8,
/// 10, 12a, 13a).
class MetricsCollector {
 public:
  explicit MetricsCollector(SimTime window = 100 * kMillisecond);

  /// Records a committed transaction at simulated time `now`.
  void OnCommit(const Transaction& txn, SimTime now);

  /// Records one abort-and-restart event.
  void OnAbort() { aborts_++; }

  /// Records a transaction given up on because a touched partition stayed
  /// unavailable past the degradation retry budget (chaos schedules).
  void OnAbortUnavailable(SimTime now);

  /// One completed meta-protocol flip: `partition` moved from child `from`
  /// to child `to` at simulated time `at`.
  struct ProtocolSwitch {
    SimTime at = 0;
    PartitionId partition = 0;
    std::string from;
    std::string to;
  };

  /// Records a completed per-partition protocol flip (meta protocol).
  /// Warmup included: the timeline is a series, like window_commits.
  void OnProtocolSwitch(SimTime at, PartitionId partition, std::string from,
                        std::string to) {
    protocol_switches_.push_back(
        ProtocolSwitch{at, partition, std::move(from), std::move(to)});
  }

  /// Every recorded flip, in completion order.
  const std::vector<ProtocolSwitch>& protocol_switches() const {
    return protocol_switches_;
  }

  /// Installs a hook invoked on every commit, warmup included (the chaos
  /// harness feeds the commit ledger through this so post-run integrity
  /// covers the whole run). At most one listener; null clears it.
  void SetCommitListener(std::function<void(const Transaction&)> fn) {
    commit_listener_ = std::move(fn);
  }

  /// Resets the aggregate counters and marks the measurement start, so that
  /// warmup-period commits are excluded. The time-series windows are not
  /// reset. Measurement is active from construction; calling this is only
  /// needed when a warmup period should be discarded.
  void StartMeasurement(SimTime now);

  // --- aggregate accessors ---------------------------------------------------
  uint64_t committed() const { return committed_; }
  uint64_t aborts() const { return aborts_; }
  uint64_t single_node() const { return single_node_; }
  uint64_t remastered() const { return remastered_; }
  uint64_t distributed() const { return distributed_; }
  uint64_t aborted_unavailable() const { return aborted_unavailable_; }

  /// Committed txns per second over the measured interval ending at `now`.
  double Throughput(SimTime now) const;

  const Histogram& latency() const { return latency_; }
  const PhaseBreakdown& breakdown_sum() const { return breakdown_sum_; }

  /// Commits per window since t=0 (including warmup), for time-series plots.
  const std::vector<uint64_t>& window_commits() const { return window_commits_; }
  SimTime window() const { return window_; }

  /// Throughput (txn/s) of window `i`.
  double WindowThroughput(size_t i) const;

  /// Fraction of window `i`'s submitted outcomes that committed:
  /// commits / (commits + unavailable aborts), 1.0 for quiet windows. The
  /// availability series of the chaos timeline figure.
  double WindowAvailability(size_t i) const;

 private:
  SimTime window_;
  SimTime measure_start_;
  bool measuring_;
  uint64_t committed_;
  uint64_t warmup_committed_;
  uint64_t aborts_;
  uint64_t single_node_;
  uint64_t remastered_;
  uint64_t distributed_;
  uint64_t aborted_unavailable_ = 0;
  Histogram latency_;
  PhaseBreakdown breakdown_sum_;
  std::vector<uint64_t> window_commits_;
  std::vector<uint64_t> window_unavailable_;
  std::vector<ProtocolSwitch> protocol_switches_;
  std::function<void(const Transaction&)> commit_listener_;
};

}  // namespace lion
