#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

namespace lion {

void Matrix::RandomInit(Rng* rng, double scale) {
  for (double& v : data_) v = (rng->NextDouble() * 2.0 - 1.0) * scale;
}

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::MatVecAccum(const Vec& x, Vec* y) const {
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    (*y)[r] += acc;
  }
}

void Matrix::MatTVecAccum(const Vec& x, Vec* y) const {
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) (*y)[c] += row[c] * xr;
  }
}

void Matrix::OuterAccum(const Vec& a, const Vec& b) {
  for (size_t r = 0; r < rows_; ++r) {
    double ar = a[r];
    double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

namespace vecops {

void Zero(Vec* v) { std::fill(v->begin(), v->end(), 0.0); }

void Add(const Vec& a, Vec* out) {
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] += a[i];
}

void Hadamard(const Vec& a, const Vec& b, Vec* out) {
  out->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] = a[i] * b[i];
}

void HadamardAccum(const Vec& a, const Vec& b, Vec* out) {
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] += a[i] * b[i];
}

double Dot(const Vec& a, const Vec& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

double CosineSimilarity(const Vec& a, const Vec& b) {
  double na = Norm(a), nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double SuffixCosineSimilarity(const Vec& a, const Vec& b) {
  size_t m = a.size() < b.size() ? a.size() : b.size();
  if (m == 0) return 0.0;
  const double* pa = a.data() + (a.size() - m);
  const double* pb = b.data() + (b.size() - m);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < m; ++i) {
    dot += pa[i] * pb[i];
    na += pa[i] * pa[i];
    nb += pb[i] * pb[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace vecops
}  // namespace lion
