// Minimal dense linear algebra for the LSTM (no external dependencies).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace lion {

using Vec = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

  /// Fills with uniform values in [-scale, scale] (Xavier-style init).
  void RandomInit(Rng* rng, double scale);

  void Zero();

  /// y += M x  (y: rows, x: cols)
  void MatVecAccum(const Vec& x, Vec* y) const;

  /// y += M^T x  (y: cols, x: rows) — used for backprop.
  void MatTVecAccum(const Vec& x, Vec* y) const;

  /// M += a b^T (outer product accumulation; a: rows, b: cols).
  void OuterAccum(const Vec& a, const Vec& b);

 private:
  size_t rows_, cols_;
  Vec data_;
};

/// Elementwise helpers used by the LSTM cell.
namespace vecops {

void Zero(Vec* v);
void Add(const Vec& a, Vec* out);                  // out += a
void Hadamard(const Vec& a, const Vec& b, Vec* out);  // out = a*b (resize)
void HadamardAccum(const Vec& a, const Vec& b, Vec* out);  // out += a*b
double Dot(const Vec& a, const Vec& b);
double Norm(const Vec& a);

/// Cosine similarity in [-1, 1]; 0 if either vector is all-zero.
/// `a` and `b` must have equal length — mismatched lengths would silently
/// truncate the dot product but not the norms, skewing the result.
double CosineSimilarity(const Vec& a, const Vec& b);

/// Cosine similarity over the trailing min(|a|, |b|) entries of each
/// vector. Time series align at their ends (the shared recent history), so
/// this is the right comparison for series tracked over different spans —
/// a fresh workload template vs. an established class. 0 if either suffix
/// is empty or all-zero.
double SuffixCosineSimilarity(const Vec& a, const Vec& b);

}  // namespace vecops
}  // namespace lion
