// From-scratch LSTM network with BPTT/Adam training (Sec. IV-C).
//
// The paper uses "a lightweight LSTM encoder with 2 layers and 20 hidden
// units" trained on CPU over arrival-rate series. This is exactly that: a
// stacked scalar-in/scalar-out LSTM, trained by truncated BPTT with Adam.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/matrix.h"

namespace lion {

struct LstmConfig {
  int input_dim = 1;
  int hidden = 20;
  int layers = 2;
  int output_dim = 1;
  double learning_rate = 0.02;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_eps = 1e-8;
  double grad_clip = 5.0;
};

/// One LSTM layer's parameters and Adam state.
struct LstmLayer {
  // Gate weights over the input (W) and the recurrent state (U), plus bias.
  // Gate order: input, forget, output, candidate.
  Matrix W[4], U[4];
  Vec b[4];
  // Gradients and Adam moments, same shapes.
  Matrix dW[4], dU[4];
  Vec db[4];
  Matrix mW[4], vW[4], mU[4], vU[4];
  Vec mb[4], vb[4];
};

/// Stacked LSTM + linear head predicting the next value of a (normalized)
/// scalar time series. Deterministic given the seed.
class LstmNetwork {
 public:
  LstmNetwork(const LstmConfig& config, uint64_t seed);

  /// Predicts the next value after `series` (normalized inputs expected).
  double PredictNext(const std::vector<double>& series) const;

  /// Iterated multi-step forecast: feeds predictions back as inputs.
  std::vector<double> Forecast(const std::vector<double>& series, int horizon) const;

  /// One BPTT pass over `series` predicting each next element; applies an
  /// Adam update and returns the mean squared error before the update.
  double TrainSequence(const std::vector<double>& series);

  /// Trains for `epochs` passes; returns the final epoch's MSE.
  double Train(const std::vector<double>& series, int epochs);

  /// MSE of one-step-ahead predictions over `series` (no update).
  double Evaluate(const std::vector<double>& series) const;

  const LstmConfig& config() const { return config_; }

  /// Test hook: flattens all parameters (for gradient checking).
  std::vector<double*> ParameterPointers();
  /// Test hook: gradient values after a backward pass, aligned with
  /// ParameterPointers().
  std::vector<double*> GradientPointers();
  /// Test hook: runs forward+backward over `series`, leaving gradients in
  /// place without applying an update. Returns the loss (sum of squared
  /// errors / steps).
  double ForwardBackward(const std::vector<double>& series);

 private:
  struct StepCache;

  /// Forward pass through all layers for one step. Returns the output.
  double StepForward(double x, std::vector<Vec>* h, std::vector<Vec>* c,
                     StepCache* cache) const;
  void ZeroGradients();
  void AdamUpdate();
  void ClipGradients();

  LstmConfig config_;
  std::vector<LstmLayer> layers_;
  Matrix Wy_;  // output head
  Vec by_;
  Matrix dWy_, mWy_, vWy_;
  Vec dby_, mby_, vby_;
  int adam_t_ = 0;
};

}  // namespace lion
