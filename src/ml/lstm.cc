#include "ml/lstm.h"

#include <algorithm>
#include <cmath>

namespace lion {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void ApplySigmoid(Vec* v) {
  for (double& x : *v) x = Sigmoid(x);
}
void ApplyTanh(Vec* v) {
  for (double& x : *v) x = std::tanh(x);
}

}  // namespace

/// Per-step forward activations cached for BPTT.
struct LstmNetwork::StepCache {
  // Per layer: input x, previous h/c, gates, new c, tanh(c).
  std::vector<Vec> x, h_prev, c_prev, gate_i, gate_f, gate_o, gate_g, c, tanh_c, h;
};

LstmNetwork::LstmNetwork(const LstmConfig& config, uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  int h = config_.hidden;
  layers_.resize(config_.layers);
  for (int l = 0; l < config_.layers; ++l) {
    int in_dim = (l == 0) ? config_.input_dim : h;
    double scale = 1.0 / std::sqrt(static_cast<double>(in_dim + h));
    LstmLayer& layer = layers_[l];
    for (int g = 0; g < 4; ++g) {
      layer.W[g] = Matrix(h, in_dim);
      layer.U[g] = Matrix(h, h);
      layer.W[g].RandomInit(&rng, scale);
      layer.U[g].RandomInit(&rng, scale);
      layer.b[g].assign(h, 0.0);
      layer.dW[g] = Matrix(h, in_dim);
      layer.dU[g] = Matrix(h, h);
      layer.db[g].assign(h, 0.0);
      layer.mW[g] = Matrix(h, in_dim);
      layer.vW[g] = Matrix(h, in_dim);
      layer.mU[g] = Matrix(h, h);
      layer.vU[g] = Matrix(h, h);
      layer.mb[g].assign(h, 0.0);
      layer.vb[g].assign(h, 0.0);
    }
    // Forget-gate bias starts positive: standard trick for gradient flow.
    std::fill(layer.b[1].begin(), layer.b[1].end(), 1.0);
  }
  Wy_ = Matrix(config_.output_dim, h);
  Wy_.RandomInit(&rng, 1.0 / std::sqrt(static_cast<double>(h)));
  by_.assign(config_.output_dim, 0.0);
  dWy_ = Matrix(config_.output_dim, h);
  mWy_ = Matrix(config_.output_dim, h);
  vWy_ = Matrix(config_.output_dim, h);
  dby_.assign(config_.output_dim, 0.0);
  mby_.assign(config_.output_dim, 0.0);
  vby_.assign(config_.output_dim, 0.0);
}

double LstmNetwork::StepForward(double x, std::vector<Vec>* h,
                                std::vector<Vec>* c, StepCache* cache) const {
  int hid = config_.hidden;
  Vec input(1, x);
  for (int l = 0; l < config_.layers; ++l) {
    const LstmLayer& layer = layers_[l];
    Vec gates[4];
    for (int g = 0; g < 4; ++g) {
      gates[g] = layer.b[g];
      layer.W[g].MatVecAccum(input, &gates[g]);
      layer.U[g].MatVecAccum((*h)[l], &gates[g]);
    }
    ApplySigmoid(&gates[0]);
    ApplySigmoid(&gates[1]);
    ApplySigmoid(&gates[2]);
    ApplyTanh(&gates[3]);

    Vec new_c(hid);
    for (int k = 0; k < hid; ++k) {
      new_c[k] = gates[1][k] * (*c)[l][k] + gates[0][k] * gates[3][k];
    }
    Vec tanh_c = new_c;
    ApplyTanh(&tanh_c);
    Vec new_h(hid);
    for (int k = 0; k < hid; ++k) new_h[k] = gates[2][k] * tanh_c[k];

    if (cache != nullptr) {
      cache->x.push_back(input);
      cache->h_prev.push_back((*h)[l]);
      cache->c_prev.push_back((*c)[l]);
      cache->gate_i.push_back(gates[0]);
      cache->gate_f.push_back(gates[1]);
      cache->gate_o.push_back(gates[2]);
      cache->gate_g.push_back(gates[3]);
      cache->c.push_back(new_c);
      cache->tanh_c.push_back(tanh_c);
      cache->h.push_back(new_h);
    }
    (*h)[l] = new_h;
    (*c)[l] = new_c;
    input = (*h)[l];
  }
  double y = by_[0];
  Vec out(config_.output_dim, 0.0);
  Wy_.MatVecAccum(input, &out);
  y += out[0];
  return y;
}

double LstmNetwork::PredictNext(const std::vector<double>& series) const {
  std::vector<Vec> h(config_.layers, Vec(config_.hidden, 0.0));
  std::vector<Vec> c(config_.layers, Vec(config_.hidden, 0.0));
  double y = 0.0;
  for (double x : series) y = StepForward(x, &h, &c, nullptr);
  return y;
}

std::vector<double> LstmNetwork::Forecast(const std::vector<double>& series,
                                          int horizon) const {
  std::vector<Vec> h(config_.layers, Vec(config_.hidden, 0.0));
  std::vector<Vec> c(config_.layers, Vec(config_.hidden, 0.0));
  double y = 0.0;
  for (double x : series) y = StepForward(x, &h, &c, nullptr);
  std::vector<double> out;
  out.reserve(horizon);
  for (int i = 0; i < horizon; ++i) {
    out.push_back(y);
    if (i + 1 < horizon) y = StepForward(y, &h, &c, nullptr);
  }
  return out;
}

double LstmNetwork::Evaluate(const std::vector<double>& series) const {
  if (series.size() < 2) return 0.0;
  std::vector<Vec> h(config_.layers, Vec(config_.hidden, 0.0));
  std::vector<Vec> c(config_.layers, Vec(config_.hidden, 0.0));
  double se = 0.0;
  for (size_t t = 0; t + 1 < series.size(); ++t) {
    double y = StepForward(series[t], &h, &c, nullptr);
    double err = y - series[t + 1];
    se += err * err;
  }
  return se / static_cast<double>(series.size() - 1);
}

void LstmNetwork::ZeroGradients() {
  for (auto& layer : layers_) {
    for (int g = 0; g < 4; ++g) {
      layer.dW[g].Zero();
      layer.dU[g].Zero();
      vecops::Zero(&layer.db[g]);
    }
  }
  dWy_.Zero();
  vecops::Zero(&dby_);
}

double LstmNetwork::ForwardBackward(const std::vector<double>& series) {
  if (series.size() < 2) return 0.0;
  ZeroGradients();
  const int steps = static_cast<int>(series.size()) - 1;
  const int hid = config_.hidden;
  const int L = config_.layers;

  // Forward, caching activations and the per-step output-layer input.
  std::vector<StepCache> caches(steps);
  std::vector<Vec> h(L, Vec(hid, 0.0)), c(L, Vec(hid, 0.0));
  std::vector<double> outputs(steps);
  for (int t = 0; t < steps; ++t) {
    outputs[t] = StepForward(series[t], &h, &c, &caches[t]);
  }

  double se = 0.0;
  // Backward through time.
  std::vector<Vec> dh(L, Vec(hid, 0.0)), dc(L, Vec(hid, 0.0));
  for (int t = steps - 1; t >= 0; --t) {
    double err = outputs[t] - series[t + 1];
    se += err * err;
    double dy = 2.0 * err / static_cast<double>(steps);

    // Output head gradient; contributes to top layer's dh.
    const Vec& top_h = caches[t].h[L - 1];
    for (int k = 0; k < hid; ++k) dWy_.at(0, k) += dy * top_h[k];
    dby_[0] += dy;
    Vec dtop(hid, 0.0);
    Wy_.MatTVecAccum(Vec(1, dy), &dtop);
    vecops::Add(dtop, &dh[L - 1]);

    // Backprop through the stacked layers at this step.
    for (int l = L - 1; l >= 0; --l) {
      LstmLayer& layer = layers_[l];
      const Vec& gi = caches[t].gate_i[l];
      const Vec& gf = caches[t].gate_f[l];
      const Vec& go = caches[t].gate_o[l];
      const Vec& gg = caches[t].gate_g[l];
      const Vec& tc = caches[t].tanh_c[l];
      const Vec& cp = caches[t].c_prev[l];

      Vec dzi(hid), dzf(hid), dzo(hid), dzg(hid), dcl(hid);
      for (int k = 0; k < hid; ++k) {
        double dhk = dh[l][k];
        double dck = dhk * go[k] * (1.0 - tc[k] * tc[k]) + dc[l][k];
        dcl[k] = dck;
        dzo[k] = dhk * tc[k] * go[k] * (1.0 - go[k]);
        dzi[k] = dck * gg[k] * gi[k] * (1.0 - gi[k]);
        dzf[k] = dck * cp[k] * gf[k] * (1.0 - gf[k]);
        dzg[k] = dck * gi[k] * (1.0 - gg[k] * gg[k]);
      }

      const Vec& x = caches[t].x[l];
      const Vec& hp = caches[t].h_prev[l];
      Vec dx(x.size(), 0.0);
      Vec dhp(hid, 0.0);
      const Vec* dz[4] = {&dzi, &dzf, &dzo, &dzg};
      for (int g = 0; g < 4; ++g) {
        layer.dW[g].OuterAccum(*dz[g], x);
        layer.dU[g].OuterAccum(*dz[g], hp);
        vecops::Add(*dz[g], &layer.db[g]);
        layer.W[g].MatTVecAccum(*dz[g], &dx);
        layer.U[g].MatTVecAccum(*dz[g], &dhp);
      }

      // Carry recurrent gradients to step t-1 of this layer...
      dh[l] = dhp;
      for (int k = 0; k < hid; ++k) dc[l][k] = dcl[k] * gf[k];
      // ...and the input gradient down to layer l-1's h at step t.
      if (l > 0) vecops::Add(dx, &dh[l - 1]);
    }
  }
  return se / static_cast<double>(steps);
}

void LstmNetwork::ClipGradients() {
  double clip = config_.grad_clip;
  auto clip_vec = [clip](Vec* v) {
    for (double& x : *v) x = std::clamp(x, -clip, clip);
  };
  for (auto& layer : layers_) {
    for (int g = 0; g < 4; ++g) {
      clip_vec(&layer.dW[g].data());
      clip_vec(&layer.dU[g].data());
      clip_vec(&layer.db[g]);
    }
  }
  clip_vec(&dWy_.data());
  clip_vec(&dby_);
}

void LstmNetwork::AdamUpdate() {
  adam_t_++;
  double b1 = config_.adam_beta1, b2 = config_.adam_beta2;
  double bias1 = 1.0 - std::pow(b1, adam_t_);
  double bias2 = 1.0 - std::pow(b2, adam_t_);
  double lr = config_.learning_rate;
  double eps = config_.adam_eps;

  auto update = [&](Vec* param, Vec* grad, Vec* m, Vec* v) {
    for (size_t i = 0; i < param->size(); ++i) {
      (*m)[i] = b1 * (*m)[i] + (1 - b1) * (*grad)[i];
      (*v)[i] = b2 * (*v)[i] + (1 - b2) * (*grad)[i] * (*grad)[i];
      double mh = (*m)[i] / bias1;
      double vh = (*v)[i] / bias2;
      (*param)[i] -= lr * mh / (std::sqrt(vh) + eps);
    }
  };

  for (auto& layer : layers_) {
    for (int g = 0; g < 4; ++g) {
      update(&layer.W[g].data(), &layer.dW[g].data(), &layer.mW[g].data(),
             &layer.vW[g].data());
      update(&layer.U[g].data(), &layer.dU[g].data(), &layer.mU[g].data(),
             &layer.vU[g].data());
      update(&layer.b[g], &layer.db[g], &layer.mb[g], &layer.vb[g]);
    }
  }
  update(&Wy_.data(), &dWy_.data(), &mWy_.data(), &vWy_.data());
  update(&by_, &dby_, &mby_, &vby_);
}

double LstmNetwork::TrainSequence(const std::vector<double>& series) {
  double mse = ForwardBackward(series);
  ClipGradients();
  AdamUpdate();
  return mse;
}

double LstmNetwork::Train(const std::vector<double>& series, int epochs) {
  double mse = 0.0;
  for (int e = 0; e < epochs; ++e) mse = TrainSequence(series);
  return mse;
}

std::vector<double*> LstmNetwork::ParameterPointers() {
  std::vector<double*> out;
  for (auto& layer : layers_) {
    for (int g = 0; g < 4; ++g) {
      for (double& v : layer.W[g].data()) out.push_back(&v);
      for (double& v : layer.U[g].data()) out.push_back(&v);
      for (double& v : layer.b[g]) out.push_back(&v);
    }
  }
  for (double& v : Wy_.data()) out.push_back(&v);
  for (double& v : by_) out.push_back(&v);
  return out;
}

std::vector<double*> LstmNetwork::GradientPointers() {
  std::vector<double*> out;
  for (auto& layer : layers_) {
    for (int g = 0; g < 4; ++g) {
      for (double& v : layer.dW[g].data()) out.push_back(&v);
      for (double& v : layer.dU[g].data()) out.push_back(&v);
      for (double& v : layer.db[g]) out.push_back(&v);
    }
  }
  for (double& v : dWy_.data()) out.push_back(&v);
  for (double& v : dby_) out.push_back(&v);
  return out;
}

}  // namespace lion
