// OCC (silo-style) validation helpers over a partition's records.
#pragma once

#include "common/types.h"
#include "replication/replication_manager.h"
#include "storage/partition_store.h"
#include "txn/transaction.h"

namespace lion {

/// Stateless helpers implementing optimistic concurrency control per
/// partition. Protocols call these from participant prepare/commit handlers:
///
///   execution : ReadOps records versions into the txn's operations;
///   prepare   : ValidateAndLock re-checks read versions and write-locks the
///               write set (all-or-nothing);
///   commit    : ApplyAndUnlock installs writes, bumps versions, appends the
///               replication log, releases locks;
///   abort     : ReleaseLocks undoes a successful validation.
class Occ {
 public:
  /// Performs the partition-local reads of `txn`, recording value+version.
  static void ReadOps(PartitionStore* store, Transaction* txn);

  /// Validates reads and locks writes for ops of `txn` on this partition.
  /// Returns false (leaving no locks held) on any conflict: a read version
  /// changed, or any accessed record is locked by another transaction.
  static bool ValidateAndLock(PartitionStore* store, Transaction* txn);

  /// Installs the write set, appends each write to the replication log, and
  /// releases locks. Must follow a successful ValidateAndLock.
  static void ApplyAndUnlock(PartitionStore* store, Transaction* txn,
                             ReplicationManager* replication);

  /// Releases any locks `txn` holds on this partition (abort path).
  static void ReleaseLocks(PartitionStore* store, Transaction* txn);
};

}  // namespace lion
