// Transaction representation shared by every protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace lion {

enum class OpType : uint8_t { kRead, kWrite };

/// One read or write in a transaction's logical plan, plus its runtime
/// execution state (value/version observed for OCC).
struct Operation {
  PartitionId partition = kInvalidPartition;
  Key key = 0;
  OpType type = OpType::kRead;
  /// Write of a brand-new unique key (e.g. TPC-C ORDER/ORDER-LINE rows).
  /// Inserts cannot conflict with other transactions' accesses, so granule
  /// lockers skip them.
  bool is_insert = false;
  Value write_value = 0;

  // Runtime state, reset on restart.
  Value read_value = 0;
  Version read_version = 0;
  bool executed = false;
};

/// How the transaction ultimately executed — the paper's three cases
/// (Sec. III): directly on one node, on one node after remastering, or as a
/// regular distributed transaction.
enum class ExecClass : uint8_t { kSingleNode, kRemastered, kDistributed };

/// Wall-time attribution buckets matching Fig. 14b.
struct PhaseBreakdown {
  SimTime scheduling = 0;   // queueing before first execution
  SimTime execution = 0;    // read/write processing
  SimTime commit = 0;       // prepare + commit coordination
  SimTime replication = 0;  // secondary sync + group-commit visibility wait
  SimTime other = 0;

  SimTime Total() const {
    return scheduling + execution + commit + replication + other;
  }
  void Add(const PhaseBreakdown& o) {
    scheduling += o.scheduling;
    execution += o.execution;
    commit += o.commit;
    replication += o.replication;
    other += o.other;
  }
};

/// A transaction: the workload generator fills in `ops` (the paper's
/// TxnParts metadata is the distinct partition list derived from them) and
/// protocols drive it to commit, possibly restarting it on OCC aborts.
class Transaction {
 public:
  Transaction(TxnId id, SimTime created_at) : id_(id), created_at_(created_at) {}

  TxnId id() const { return id_; }
  SimTime created_at() const { return created_at_; }

  std::vector<Operation>& ops() { return ops_; }
  const std::vector<Operation>& ops() const { return ops_; }

  /// Distinct partitions touched, ascending (the TxnParts of TxnMeta).
  std::vector<PartitionId> Partitions() const {
    std::vector<PartitionId> parts;
    parts.reserve(ops_.size());
    for (const auto& op : ops_) parts.push_back(op.partition);
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    return parts;
  }

  /// Operations targeting `pid`, in plan order.
  std::vector<Operation*> OpsOn(PartitionId pid) {
    std::vector<Operation*> out;
    for (auto& op : ops_)
      if (op.partition == pid) out.push_back(&op);
    return out;
  }

  bool HasWriteOn(PartitionId pid) const {
    for (const auto& op : ops_)
      if (op.partition == pid && op.type == OpType::kWrite) return true;
    return false;
  }

  /// Additional coordinator-side compute (TPC-C business logic).
  SimTime extra_compute() const { return extra_compute_; }
  void set_extra_compute(SimTime t) { extra_compute_ = t; }

  /// Clears runtime state so the transaction can re-execute after an abort.
  void ResetForRestart() {
    for (auto& op : ops_) {
      op.read_value = 0;
      op.read_version = 0;
      op.executed = false;
    }
    restarts_++;
  }

  int restarts() const { return restarts_; }

  /// Times this transaction was deferred because a touched partition was
  /// unavailable (down primary or partitioned away). Unlike `restarts`,
  /// this survives ResetForRestart so the degradation path's retry budget
  /// cannot be reset by an interleaved OCC abort.
  int unavailable_retries() const { return unavailable_retries_; }
  void BumpUnavailableRetries() { unavailable_retries_++; }

  NodeId coordinator() const { return coordinator_; }
  void set_coordinator(NodeId n) { coordinator_ = n; }

  ExecClass exec_class() const { return exec_class_; }
  void set_exec_class(ExecClass c) { exec_class_ = c; }

  PhaseBreakdown& breakdown() { return breakdown_; }
  const PhaseBreakdown& breakdown() const { return breakdown_; }

 private:
  TxnId id_;
  SimTime created_at_;
  SimTime extra_compute_ = 0;
  std::vector<Operation> ops_;
  int restarts_ = 0;
  int unavailable_retries_ = 0;
  NodeId coordinator_ = kInvalidNode;
  ExecClass exec_class_ = ExecClass::kSingleNode;
  PhaseBreakdown breakdown_;
};

using TxnPtr = std::unique_ptr<Transaction>;

}  // namespace lion
