#include "txn/occ.h"

namespace lion {

void Occ::ReadOps(PartitionStore* store, Transaction* txn) {
  PartitionId pid = store->id();
  for (auto& op : txn->ops()) {
    if (op.partition != pid) continue;
    Value value = 0;
    Version version = 0;
    if (store->Read(op.key, &value, &version).ok()) {
      op.read_value = value;
      op.read_version = version;
    } else {
      op.read_value = 0;
      op.read_version = 0;
    }
    op.executed = true;
  }
}

bool Occ::ValidateAndLock(PartitionStore* store, Transaction* txn) {
  PartitionId pid = store->id();
  // Lock the write set first (deterministic order: plan order).
  for (auto& op : txn->ops()) {
    if (op.partition != pid || op.type != OpType::kWrite) continue;
    if (!store->TryLock(op.key, txn->id())) {
      ReleaseLocks(store, txn);
      return false;
    }
  }
  // Validate the read set: versions unchanged and not locked by others.
  for (auto& op : txn->ops()) {
    if (op.partition != pid || op.type != OpType::kRead) continue;
    if (store->IsLockedByOther(op.key, txn->id()) ||
        store->VersionOf(op.key) != op.read_version) {
      ReleaseLocks(store, txn);
      return false;
    }
  }
  return true;
}

void Occ::ApplyAndUnlock(PartitionStore* store, Transaction* txn,
                         ReplicationManager* replication) {
  PartitionId pid = store->id();
  for (auto& op : txn->ops()) {
    if (op.partition != pid || op.type != OpType::kWrite) continue;
    store->Apply(op.key, op.write_value);
    if (replication != nullptr) replication->Append(pid, op.key, op.write_value);
    store->Unlock(op.key, txn->id());
  }
}

void Occ::ReleaseLocks(PartitionStore* store, Transaction* txn) {
  PartitionId pid = store->id();
  for (auto& op : txn->ops()) {
    if (op.partition != pid || op.type != OpType::kWrite) continue;
    store->Unlock(op.key, txn->id());
  }
}

}  // namespace lion
