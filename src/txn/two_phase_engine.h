// Shared transaction execution engine: execution / prepare / commit phases
// with OCC validation, following the standard protocol of Sec. II-A.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "metrics/metrics.h"
#include "replication/cluster.h"
#include "txn/transaction.h"

namespace lion {

/// Drives one transaction from a coordinator node through the execution,
/// prepare, and commit phases of Fig. 1. Used directly by the 2PC baseline
/// and reused by Leap, Clay, and Lion for their distributed fallback path.
///
/// Single-node transactions (all primaries on the coordinator) take the
/// one-shot path: execute, validate, apply — skipping the prepare round
/// trips entirely (Sec. III step 1).
class TwoPhaseEngine {
 public:
  struct Options {
    /// Replicate prepare records to secondaries synchronously and wait for
    /// their acknowledgements before voting (Fig. 1's prepare logging).
    bool sync_prepare_replication = true;
    /// Delay commit acknowledgement to the epoch boundary (group commit
    /// visibility, used by Lion and Lotus).
    bool group_commit_visibility = false;
  };

  TwoPhaseEngine(Cluster* cluster, MetricsCollector* metrics);

  /// Executes `txn` from `coordinator`. `done(true)` on commit, with locks
  /// released and writes applied+logged; `done(false)` on an OCC abort with
  /// all locks released (the caller decides whether to retry).
  ///
  /// The admission cost (txn_setup + extra_compute) is charged on the
  /// coordinator at kNew priority; breakdown timing fields of the txn are
  /// updated in place.
  void Run(Transaction* txn, NodeId coordinator, const Options& opts,
           std::function<void(bool)> done);

 private:
  struct Ctx;

  void StartExecution(const std::shared_ptr<Ctx>& ctx);
  void ExecutePartition(const std::shared_ptr<Ctx>& ctx, PartitionId pid);
  void OnExecutionDone(const std::shared_ptr<Ctx>& ctx);
  void RunSingleNodeCommit(const std::shared_ptr<Ctx>& ctx);
  void StartPrepare(const std::shared_ptr<Ctx>& ctx);
  void PreparePartition(const std::shared_ptr<Ctx>& ctx, PartitionId pid);
  void OnVote(const std::shared_ptr<Ctx>& ctx, bool yes);
  void StartCommit(const std::shared_ptr<Ctx>& ctx);
  void AbortPrepared(const std::shared_ptr<Ctx>& ctx);
  void Finalize(const std::shared_ptr<Ctx>& ctx, bool committed);

  Cluster* cluster_;
  MetricsCollector* metrics_;
};

}  // namespace lion
