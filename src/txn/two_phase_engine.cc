#include "txn/two_phase_engine.h"

#include <algorithm>
#include <cassert>

#include "sim/network.h"
#include "txn/occ.h"

namespace lion {

struct TwoPhaseEngine::Ctx {
  Transaction* txn = nullptr;
  NodeId coord = kInvalidNode;
  Options opts;
  std::function<void(bool)> done;

  std::vector<PartitionId> parts;
  std::vector<int> ops_per_part;
  std::vector<int> writes_per_part;
  bool single_node = false;

  int pending = 0;
  bool vote_failed = false;
  std::vector<PartitionId> prepared;  // partitions currently holding locks

  SimTime submit_at = 0;
  SimTime exec_start = 0;
  SimTime exec_end = 0;
  SimTime commit_end = 0;
  SimTime repl_wait = 0;  // prepare-phase secondary-ack wait (summed)

  int OpsOn(PartitionId pid) const {
    for (size_t i = 0; i < parts.size(); ++i)
      if (parts[i] == pid) return ops_per_part[i];
    return 0;
  }
  int WritesOn(PartitionId pid) const {
    for (size_t i = 0; i < parts.size(); ++i)
      if (parts[i] == pid) return writes_per_part[i];
    return 0;
  }
};

TwoPhaseEngine::TwoPhaseEngine(Cluster* cluster, MetricsCollector* metrics)
    : cluster_(cluster), metrics_(metrics) {}

void TwoPhaseEngine::Run(Transaction* txn, NodeId coordinator,
                         const Options& opts, std::function<void(bool)> done) {
  if (txn->ops().empty()) {
    cluster_->sim()->Schedule(0, [done]() { done(true); });
    return;
  }
  auto ctx = std::make_shared<Ctx>();
  ctx->txn = txn;
  ctx->coord = coordinator;
  ctx->opts = opts;
  ctx->done = std::move(done);
  ctx->parts = txn->Partitions();
  ctx->ops_per_part.assign(ctx->parts.size(), 0);
  ctx->writes_per_part.assign(ctx->parts.size(), 0);
  for (const auto& op : txn->ops()) {
    for (size_t i = 0; i < ctx->parts.size(); ++i) {
      if (ctx->parts[i] == op.partition) {
        ctx->ops_per_part[i]++;
        if (op.type == OpType::kWrite) ctx->writes_per_part[i]++;
        break;
      }
    }
  }
  txn->set_coordinator(coordinator);

  const ClusterConfig& cfg = cluster_->config();
  ctx->single_node = true;
  for (PartitionId p : ctx->parts) {
    if (cluster_->router().PrimaryOf(p) != coordinator) {
      ctx->single_node = false;
      break;
    }
  }
  ctx->submit_at = cluster_->sim()->Now();

  SimTime setup = cfg.txn_setup_cost + txn->extra_compute();
  cluster_->pool(coordinator)
      ->Submit(TaskPriority::kNew, setup, [this, ctx, setup]() {
        SimTime now = cluster_->sim()->Now();
        ctx->txn->breakdown().scheduling += now - setup - ctx->submit_at;
        ctx->exec_start = now;
        StartExecution(ctx);
      });
}

void TwoPhaseEngine::StartExecution(const std::shared_ptr<Ctx>& ctx) {
  ctx->pending = static_cast<int>(ctx->parts.size());
  for (PartitionId pid : ctx->parts) ExecutePartition(ctx, pid);
}

void TwoPhaseEngine::ExecutePartition(const std::shared_ptr<Ctx>& ctx,
                                      PartitionId pid) {
  const ClusterConfig& cfg = cluster_->config();
  NodeId primary = cluster_->router().PrimaryOf(pid);
  int n_ops = ctx->OpsOn(pid);

  auto run_local = [this, ctx, pid, n_ops, cfg]() {
    // Reads execute as their own task so that concurrent commits on other
    // workers can interleave (OCC conflicts stay observable).
    cluster_->pool(cluster_->router().PrimaryOf(pid))
        ->Submit(TaskPriority::kResume, n_ops * cfg.op_local_cost,
                 [this, ctx, pid]() {
                   Occ::ReadOps(cluster_->store(pid), ctx->txn);
                   OnExecutionDone(ctx);
                 });
  };

  if (primary == ctx->coord) {
    cluster_->remaster().WaitUntilAvailable(pid, run_local);
    return;
  }

  // Remote partition: one round trip carrying this partition's op batch.
  uint64_t req_bytes = MessageSizes::kHeader + n_ops * MessageSizes::kOpRequest;
  uint64_t resp_bytes = MessageSizes::kHeader + n_ops * MessageSizes::kOpResponse;
  cluster_->network().Send(
      ctx->coord, primary, req_bytes, [this, ctx, pid, n_ops, resp_bytes, cfg]() {
        cluster_->remaster().WaitUntilAvailable(pid, [this, ctx, pid, n_ops,
                                                      resp_bytes, cfg]() {
          NodeId serving = cluster_->router().PrimaryOf(pid);
          cluster_->pool(serving)->Submit(
              TaskPriority::kService, n_ops * cfg.op_service_cost,
              [this, ctx, pid, serving, resp_bytes]() {
                Occ::ReadOps(cluster_->store(pid), ctx->txn);
                cluster_->network().Send(serving, ctx->coord, resp_bytes,
                                         [this, ctx]() { OnExecutionDone(ctx); });
              });
        });
      });
}

void TwoPhaseEngine::OnExecutionDone(const std::shared_ptr<Ctx>& ctx) {
  if (--ctx->pending > 0) return;
  ctx->exec_end = cluster_->sim()->Now();
  ctx->txn->breakdown().execution += ctx->exec_end - ctx->exec_start;
  if (ctx->single_node) {
    RunSingleNodeCommit(ctx);
  } else {
    ctx->txn->set_exec_class(ExecClass::kDistributed);
    StartPrepare(ctx);
  }
}

void TwoPhaseEngine::RunSingleNodeCommit(const std::shared_ptr<Ctx>& ctx) {
  // Validate + apply in one local task; prepare round trips are skipped.
  const ClusterConfig& cfg = cluster_->config();
  int total_ops = static_cast<int>(ctx->txn->ops().size());
  int total_writes = 0;
  for (int w : ctx->writes_per_part) total_writes += w;
  SimTime cost = total_ops * cfg.validation_cost_per_op + cfg.log_write_cost +
                 total_writes * cfg.op_local_cost;

  cluster_->pool(ctx->coord)->Submit(
      TaskPriority::kResume, cost, [this, ctx]() {
        bool ok = true;
        for (PartitionId pid : ctx->parts) {
          if (!Occ::ValidateAndLock(cluster_->store(pid), ctx->txn)) {
            ok = false;
            break;
          }
          ctx->prepared.push_back(pid);
        }
        if (!ok) {
          for (PartitionId pid : ctx->prepared)
            Occ::ReleaseLocks(cluster_->store(pid), ctx->txn);
          ctx->prepared.clear();
          Finalize(ctx, false);
          return;
        }
        for (PartitionId pid : ctx->parts) {
          Occ::ApplyAndUnlock(cluster_->store(pid), ctx->txn,
                              &cluster_->replication());
        }
        ctx->prepared.clear();
        ctx->commit_end = cluster_->sim()->Now();
        ctx->txn->breakdown().commit += ctx->commit_end - ctx->exec_end;
        Finalize(ctx, true);
      });
}

void TwoPhaseEngine::StartPrepare(const std::shared_ptr<Ctx>& ctx) {
  ctx->pending = static_cast<int>(ctx->parts.size());
  ctx->vote_failed = false;
  for (PartitionId pid : ctx->parts) PreparePartition(ctx, pid);
}

void TwoPhaseEngine::PreparePartition(const std::shared_ptr<Ctx>& ctx,
                                      PartitionId pid) {
  const ClusterConfig& cfg = cluster_->config();
  NodeId participant = cluster_->router().PrimaryOf(pid);
  int n_ops = ctx->OpsOn(pid);
  int n_writes = ctx->WritesOn(pid);
  SimTime handler_cost =
      n_ops * cfg.validation_cost_per_op + cfg.log_write_cost;

  auto vote = [this, ctx, participant](bool yes) {
    cluster_->network().Send(participant, ctx->coord, MessageSizes::kCommitDecision,
                             [this, ctx, yes]() { OnVote(ctx, yes); });
  };

  cluster_->network().Send(
      ctx->coord, participant, MessageSizes::kPrepare,
      [this, ctx, pid, participant, handler_cost, n_writes, vote, cfg]() {
        cluster_->pool(participant)->Submit(
            TaskPriority::kService, handler_cost,
            [this, ctx, pid, participant, n_writes, vote, cfg]() {
              // The primary may have moved since routing; force a retry so
              // the transaction re-executes against current placement.
              if (cluster_->router().PrimaryOf(pid) != participant) {
                vote(false);
                return;
              }
              if (!Occ::ValidateAndLock(cluster_->store(pid), ctx->txn)) {
                vote(false);
                return;
              }
              ctx->prepared.push_back(pid);
              const ReplicaGroup& group = cluster_->router().group(pid);
              std::vector<NodeId> secs;
              for (const auto& s : group.secondaries())
                if (!s.delete_flag) secs.push_back(s.node);
              if (!ctx->opts.sync_prepare_replication || secs.empty()) {
                vote(true);
                return;
              }
              // Synchronously replicate the prepare record to secondaries.
              auto remaining = std::make_shared<int>(static_cast<int>(secs.size()));
              SimTime repl_start = cluster_->sim()->Now();
              uint64_t bytes = MessageSizes::kPrepare +
                               static_cast<uint64_t>(n_writes) * MessageSizes::kLogEntry;
              for (NodeId sec : secs) {
                cluster_->network().Send(
                    participant, sec, bytes,
                    [this, ctx, participant, sec, remaining, repl_start, vote,
                     cfg]() {
                      cluster_->pool(sec)->Submit(
                          TaskPriority::kService, cfg.message_handling_cost,
                          [this, ctx, participant, sec, remaining, repl_start,
                           vote]() {
                            cluster_->network().Send(
                                sec, participant, MessageSizes::kCommitDecision,
                                [this, ctx, remaining, repl_start, vote]() {
                                  if (--(*remaining) == 0) {
                                    ctx->repl_wait +=
                                        cluster_->sim()->Now() - repl_start;
                                    vote(true);
                                  }
                                });
                          });
                    });
              }
            });
      });
}

void TwoPhaseEngine::OnVote(const std::shared_ptr<Ctx>& ctx, bool yes) {
  if (!yes) ctx->vote_failed = true;
  if (--ctx->pending > 0) return;
  if (ctx->vote_failed) {
    AbortPrepared(ctx);
  } else {
    StartCommit(ctx);
  }
}

void TwoPhaseEngine::StartCommit(const std::shared_ptr<Ctx>& ctx) {
  const ClusterConfig& cfg = cluster_->config();
  ctx->pending = static_cast<int>(ctx->parts.size());
  for (PartitionId pid : ctx->parts) {
    NodeId participant = cluster_->router().PrimaryOf(pid);
    int n_writes = ctx->WritesOn(pid);
    SimTime apply_cost = cfg.log_write_cost + n_writes * cfg.op_local_cost;
    cluster_->network().Send(
        ctx->coord, participant, MessageSizes::kCommitDecision,
        [this, ctx, pid, participant, apply_cost]() {
          cluster_->pool(participant)->Submit(
              TaskPriority::kService, apply_cost, [this, ctx, pid, participant]() {
                Occ::ApplyAndUnlock(cluster_->store(pid), ctx->txn,
                                    &cluster_->replication());
                cluster_->network().Send(participant, ctx->coord,
                                         MessageSizes::kCommitDecision,
                                         [this, ctx]() {
                                           if (--ctx->pending == 0) {
                                             ctx->commit_end =
                                                 cluster_->sim()->Now();
                                             auto& bd = ctx->txn->breakdown();
                                             SimTime commit_span =
                                                 ctx->commit_end - ctx->exec_end;
                                             SimTime repl =
                                                 std::min(ctx->repl_wait,
                                                          commit_span);
                                             bd.replication += repl;
                                             bd.commit += commit_span - repl;
                                             Finalize(ctx, true);
                                           }
                                         });
              });
        });
  }
  ctx->prepared.clear();
}

void TwoPhaseEngine::AbortPrepared(const std::shared_ptr<Ctx>& ctx) {
  // Release locks on every partition that voted yes, then report the abort.
  if (ctx->prepared.empty()) {
    Finalize(ctx, false);
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(ctx->prepared.size()));
  std::vector<PartitionId> prepared = ctx->prepared;
  ctx->prepared.clear();
  for (PartitionId pid : prepared) {
    NodeId participant = cluster_->router().PrimaryOf(pid);
    cluster_->network().Send(
        ctx->coord, participant, MessageSizes::kCommitDecision,
        [this, ctx, pid, remaining]() {
          Occ::ReleaseLocks(cluster_->store(pid), ctx->txn);
          if (--(*remaining) == 0) Finalize(ctx, false);
        });
  }
}

void TwoPhaseEngine::Finalize(const std::shared_ptr<Ctx>& ctx, bool committed) {
  if (!committed) {
    if (metrics_ != nullptr) metrics_->OnAbort();
    ctx->done(false);
    return;
  }
  if (ctx->opts.group_commit_visibility) {
    SimTime wait_start = cluster_->sim()->Now();
    cluster_->replication().OnEpochEnd([ctx, wait_start, this]() {
      ctx->txn->breakdown().replication += cluster_->sim()->Now() - wait_start;
      ctx->done(true);
    });
    return;
  }
  ctx->done(true);
}

}  // namespace lion
