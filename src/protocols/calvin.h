// Calvin baseline: deterministic execution with per-node lock managers.
#pragma once

#include <memory>
#include <vector>

#include "protocols/batch_protocol.h"
#include "sim/worker_pool.h"

namespace lion {

struct CalvinConfig {
  /// Lock-manager processing time per lock request (one per op).
  SimTime lock_cost_per_op = 2 * kMicrosecond;
  /// Sequencer processing time per transaction (ordering/dispatch).
  SimTime sequencer_cost_per_txn = 1 * kMicrosecond;
};

/// Calvin orders each batch through a sequencer, then a single-threaded
/// lock manager per node grants locks in that fixed order. Participants
/// exchange remote reads in one round and apply writes locally — no 2PC.
/// Both the sequencer and the serial lock managers bound throughput, which
/// is why deterministic approaches plateau as nodes are added (Fig. 11b).
class CalvinProtocol : public BatchProtocol {
 public:
  CalvinProtocol(Cluster* cluster, MetricsCollector* metrics,
                 CalvinConfig config = CalvinConfig{});

  std::string name() const override { return "Calvin"; }

 protected:
  void ExecuteBatch(std::vector<Item> batch) override;

 private:
  void RunDeterministic(Item item);

  CalvinConfig config_;
  /// Single-threaded lock manager per node, plus one global sequencer.
  std::vector<std::unique_ptr<WorkerPool>> lock_managers_;
  std::unique_ptr<WorkerPool> sequencer_;
};

}  // namespace lion
