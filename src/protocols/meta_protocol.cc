#include "protocols/meta_protocol.h"

#include <algorithm>
#include <utility>

#include "harness/registry.h"

namespace lion {

MetaProtocol::MetaProtocol(Cluster* cluster, MetricsCollector* metrics,
                           MetaConfig config, const CostModelConfig& cost,
                           const GeoPlacementConfig& geo,
                           std::vector<std::string> child_names,
                           std::vector<std::unique_ptr<Protocol>> children,
                           std::unique_ptr<PredictorInterface> predictor,
                           int horizon)
    : Protocol(cluster, metrics),
      config_(std::move(config)),
      horizon_(horizon),
      geo_(geo, &cluster->topology()),
      cost_(cost),
      child_names_(std::move(child_names)),
      children_(std::move(children)),
      predictor_(std::move(predictor)),
      parts_(static_cast<size_t>(cluster->num_partitions())) {
  cost_.SetGeoPlacement(&geo_);
}

MetaProtocol::~MetaProtocol() = default;

void MetaProtocol::Start() {
  for (auto& child : children_) child->Start();
  StartEpochTimer();
}

void MetaProtocol::Stop() {
  Protocol::Stop();
  for (auto& child : children_) child->Stop();
}

void MetaProtocol::EnableDegradation(const ChaosConfig* config) {
  Protocol::EnableDegradation(config);
  for (auto& child : children_) child->EnableDegradation(config);
}

std::vector<uint64_t> MetaProtocol::AssignmentCounts() const {
  std::vector<uint64_t> counts(children_.size(), 0);
  for (const PartitionState& ps : parts_) counts[ps.assigned]++;
  return counts;
}

bool MetaProtocol::SwitchInProgress() const {
  for (const PartitionState& ps : parts_) {
    if (ps.switching_to >= 0) return true;
  }
  return false;
}

int MetaProtocol::RouteChild(const std::vector<PartitionId>& parts) const {
  if (parts.empty()) return 0;
  // Majority vote of the touched partitions' assignments; ties resolve to
  // the lowest child index, so a half-migrated transaction leans baseline.
  int best = 0;
  int best_votes = 0;
  for (size_t c = 0; c < children_.size(); ++c) {
    int votes = 0;
    for (PartitionId p : parts) {
      if (parts_[p].assigned == static_cast<int>(c)) votes++;
    }
    if (votes > best_votes) {
      best = static_cast<int>(c);
      best_votes = votes;
    }
  }
  return best;
}

void MetaProtocol::SubmitTxn(TxnPtr txn, TxnDoneFn done) {
  const SimTime now = cluster_->sim()->Now();
  std::vector<PartitionId> parts = txn->Partitions();
  for (PartitionId p : parts) {
    if (parts_[p].switching_to >= 0) {
      // A touched partition is mid-handoff: park until the flip completes.
      // The partition's in-flight count is strictly positive while it is
      // switching (a drained partition flips immediately), so the drain
      // that unblocks this queue is always in motion. Stats are recorded
      // at routing time below, so a parked transaction counts once.
      parked_.push_back(ParkedTxn{
          std::make_shared<TxnPtr>(std::move(txn)), std::move(done)});
      return;
    }
  }
  if (predictor_ != nullptr) predictor_->OnTxn(parts, now);
  bool cross = parts.size() > 1;
  for (PartitionId p : parts) {
    PartitionState& ps = parts_[p];
    ps.window_total++;
    if (cross) ps.window_cross++;
    ps.inflight++;
  }
  int child = RouteChild(parts);
  TxnDoneFn wrapped = [this, parts = std::move(parts),
                       done = std::move(done)](TxnPtr finished) mutable {
    for (PartitionId p : parts) {
      PartitionState& ps = parts_[p];
      ps.inflight--;
      if (ps.switching_to >= 0 && ps.inflight == 0) {
        CompleteSwitch(p, cluster_->sim()->Now());
      }
    }
    done(std::move(finished));
  };
  // The child's public Submit, not its SubmitTxn: child-level degradation
  // re-checks availability against current routing state.
  children_[child]->Submit(std::move(txn), std::move(wrapped));
}

int MetaProtocol::DesiredChild(const PartitionState& ps,
                               double norm_load) const {
  bool hot = norm_load >= config_.hot_threshold;
  bool cross = ps.cross_ewma >= config_.cross_threshold;
  if (hot && cross) return 1;  // single-master batching
  if (children_.size() > 2 && cross && cluster_->topology().regions() > 1) {
    return 2;  // WAN candidate
  }
  return 0;
}

double MetaProtocol::FlipCost(PartitionId pid, int target) const {
  if (target == 0) return 0.0;  // falling back to the baseline moves nothing
  // The single-master child concentrates the partition's cross work on the
  // super node (StarConfig default: node 0); the WAN candidate keeps work
  // at the primary. Price the flip like the provisioner prices the replica
  // move it stands for: wm, WAN-multiplied when the hop crosses regions.
  NodeId from = cluster_->PrimaryOf(pid);
  NodeId dest = target == 1 ? NodeId{0} : from;
  double mult = geo_.active() ? geo_.MigrationMultiplier(from, dest) : 1.0;
  return cost_.config().wm * mult;
}

void MetaProtocol::OnEpoch(SimTime now) {
  epoch_index_++;
  const double a = config_.smoothing;
  for (PartitionState& ps : parts_) {
    ps.load_ewma = a * static_cast<double>(ps.window_total) +
                   (1.0 - a) * ps.load_ewma;
    if (ps.window_total > 0) {
      double ratio = static_cast<double>(ps.window_cross) /
                     static_cast<double>(ps.window_total);
      ps.cross_ewma = a * ratio + (1.0 - a) * ps.cross_ewma;
    }
    ps.window_total = 0;
    ps.window_cross = 0;
  }

  // Forecast load per partition; quiet or predictor-less epochs fall back
  // to the observed EWMA, so the decision rule always has a signal.
  forecast_.clear();
  if (predictor_ != nullptr) {
    predictor_->ForecastPartitions(now, horizon_, &forecast_);
  }
  double max_load = 0.0;
  for (size_t p = 0; p < parts_.size(); ++p) {
    double load = p < forecast_.size() && forecast_[p] > 0.0
                      ? forecast_[p]
                      : parts_[p].load_ewma;
    max_load = std::max(max_load, load);
  }
  if (max_load <= 0.0) return;  // nothing observed or predicted yet

  for (size_t p = 0; p < parts_.size(); ++p) {
    PartitionState& ps = parts_[p];
    if (ps.switching_to >= 0) continue;  // handoff still draining
    double load = p < forecast_.size() && forecast_[p] > 0.0 ? forecast_[p]
                                                             : ps.load_ewma;
    int desired = DesiredChild(ps, load / max_load);
    if (desired == ps.assigned) {
      ps.desired_streak = 0;
      ps.last_desired = desired;
      continue;
    }
    // Hysteresis: the rule must keep preferring the same target.
    ps.desired_streak = desired == ps.last_desired ? ps.desired_streak + 1 : 1;
    ps.last_desired = desired;
    if (ps.desired_streak < config_.hysteresis_epochs) continue;
    if (epoch_index_ - ps.last_flip_epoch < config_.cooldown_epochs) continue;
    // Cost gate: smoothed cross-partition load must pay for the move.
    double benefit = ps.load_ewma * ps.cross_ewma;
    if (desired != 0 &&
        benefit < config_.cost_gate * FlipCost(static_cast<PartitionId>(p),
                                               desired)) {
      continue;
    }
    StartSwitch(static_cast<PartitionId>(p), desired, now);
  }
}

void MetaProtocol::StartSwitch(PartitionId pid, int target, SimTime now) {
  PartitionState& ps = parts_[pid];
  ps.switching_to = target;
  ps.desired_streak = 0;
  // Flush the outgoing child's buffered work so the partition's in-flight
  // transactions are all actually executing (batch children hold submitted
  // work until their next epoch flush).
  children_[ps.assigned]->OnEpoch(now);
  if (ps.inflight == 0) CompleteSwitch(pid, now);
}

void MetaProtocol::CompleteSwitch(PartitionId pid, SimTime now) {
  PartitionState& ps = parts_[pid];
  int from = ps.assigned;
  int to = ps.switching_to;
  ps.assigned = to;
  ps.switching_to = -1;
  ps.last_flip_epoch = epoch_index_;
  switches_++;
  metrics_->OnProtocolSwitch(now, pid, child_names_[from], child_names_[to]);

  if (!parked_.empty()) {
    // Re-enter unblocked transactions through the public Submit gate so
    // chaos availability is re-checked; still-blocked ones re-park (the
    // swap keeps this loop from revisiting them).
    std::deque<ParkedTxn> pending;
    pending.swap(parked_);
    for (ParkedTxn& item : pending) {
      Submit(std::move(*item.txn), std::move(item.done));
    }
  }
  if (stopped()) {
    // After Stop, a batch child buffers re-submitted work without arming
    // another flush (its epoch timer is down) — nudge it one epoch later so
    // nothing strands between children.
    int target = to;
    cluster_->sim()->Schedule(
        cluster_->config().epoch_interval, [this, target]() {
          children_[target]->OnEpoch(cluster_->sim()->Now());
        });
  }
}

namespace {

std::unique_ptr<Protocol> MakeMeta(const ProtocolContext& ctx) {
  const MetaConfig& mc = ctx.config.meta;
  std::vector<std::string> names{mc.baseline, mc.single_master};
  if (!mc.wan.empty()) names.push_back(mc.wan);
  std::vector<std::unique_ptr<Protocol>> children;
  for (const std::string& name : names) {
    if (name == "meta") return nullptr;  // no self-nesting
    std::unique_ptr<Protocol> child;
    Status s = ProtocolRegistry::Global().Create(name, ctx, &child);
    if (!s.ok()) return nullptr;
    children.push_back(std::move(child));
  }
  std::unique_ptr<PredictorInterface> predictor;
  if (ctx.config.predictor.kind != kPredictorOff) {
    // Seed offset keeps the meta predictor's RNG stream disjoint from the
    // workload's and from any child protocol's own predictor (+101).
    PredictorContext pctx{ctx.config.predictor, ctx.config.seed + 211};
    Status s = PredictorRegistry::Global().Create(ctx.config.predictor.kind,
                                                  pctx, &predictor);
    if (!s.ok()) return nullptr;
  }
  return std::make_unique<MetaProtocol>(
      ctx.cluster, ctx.metrics, mc, ctx.config.lion.cost, ctx.config.lion.geo,
      std::move(names), std::move(children), std::move(predictor),
      ctx.config.predictor.horizon);
}

const ProtocolRegistrar kRegisterMeta("meta", ExecutionMode::kBatch,
                                      MakeMeta);

}  // namespace

}  // namespace lion
