// Clay baseline: load-triggered online repartitioning (Sec. II-B1).
#pragma once

#include <deque>
#include <vector>

#include "protocols/protocol.h"
#include "txn/two_phase_engine.h"

namespace lion {

struct ClayConfig {
  /// How often Clay checks node load.
  SimTime monitor_interval = 500 * kMillisecond;
  /// Load imbalance tolerance: repartitioning triggers when the hottest
  /// node's worker-busy share exceeds (1 + epsilon) * average.
  double epsilon = 0.20;
  /// Partitions moved per repartitioning round (the migrating "clump").
  int clump_budget = 3;
  /// Co-access history window used to extend the clump.
  size_t history_capacity = 8000;
};

/// Clay monitors per-node load and, upon detecting imbalance, migrates a
/// clump of hot partitions (plus their strongest co-accessed partners) from
/// the overloaded node to the least-loaded one. Per the paper's evaluation
/// setup, movement uses asynchronous replication + remastering like Lion.
/// Transactions themselves always run through standard OCC+2PC: Clay only
/// repartitions for load balance, so it cannot eliminate all distributed
/// transactions (Sec. VI-C1).
class ClayProtocol : public Protocol {
 public:
  ClayProtocol(Cluster* cluster, MetricsCollector* metrics,
               ClayConfig config = ClayConfig{});

  std::string name() const override { return "Clay"; }
  void Start() override;
  void Stop() override;
  void SubmitTxn(TxnPtr txn, TxnDoneFn done) override;

  uint64_t repartitions() const { return repartitions_; }

 private:
  void Monitor();

  TwoPhaseEngine engine_;
  ClayConfig config_;
  std::vector<SimTime> prev_busy_;
  std::deque<std::vector<PartitionId>> history_;
  uint64_t repartitions_ = 0;
  PeriodicTimer monitor_timer_;
};

}  // namespace lion
