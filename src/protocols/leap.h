// Leap baseline: aggressive transaction-level data migration (Sec. II-B1).
#pragma once

#include "protocols/protocol.h"
#include "txn/two_phase_engine.h"

namespace lion {

/// Leap always migrates remote data to the local node before executing each
/// operation ("pull" at transaction granularity), then commits locally and
/// skips the prepare phase. Mastership moves are record-granule (only the
/// working set transfers), but every move blocks the partition, so the
/// "ping-pong" problem and load collapse under skew emerge naturally.
class LeapProtocol : public Protocol {
 public:
  LeapProtocol(Cluster* cluster, MetricsCollector* metrics);

  std::string name() const override { return "Leap"; }
  void SubmitTxn(TxnPtr txn, TxnDoneFn done) override;

  uint64_t migrations_requested() const { return migrations_requested_; }

 private:
  void MigrateNext(Transaction* txn, NodeId coord,
                   std::shared_ptr<std::vector<PartitionId>> missing,
                   size_t index, std::function<void(bool)> then);

  TwoPhaseEngine engine_;
  uint64_t migrations_requested_ = 0;
};

}  // namespace lion
