#include "protocols/lotus.h"

#include "protocols/batch_util.h"

#include "harness/registry.h"

namespace lion {

LotusProtocol::LotusProtocol(Cluster* cluster, MetricsCollector* metrics)
    : BatchProtocol(cluster, metrics),
      granule_writer_(cluster->num_partitions() * kGranulesPerPartition, 0),
      granule_readers_(cluster->num_partitions() * kGranulesPerPartition, 0),
      records_per_partition_(cluster->config().records_per_partition) {}

int LotusProtocol::GranuleOf(PartitionId pid, Key key) const {
  uint64_t chunk;
  if (key < records_per_partition_) {
    // Flat key space (YCSB): contiguous key-range chunks.
    chunk = (key * kGranulesPerPartition) / (records_per_partition_ + 1);
  } else {
    // Structured key space (table tags in high bits, TPC-C): hash the full
    // key so different tables do not alias onto the same granules.
    chunk = (key * 0x9E3779B97F4A7C15ULL) >> 54;  // top 10 bits
  }
  chunk %= kGranulesPerPartition;
  return pid * kGranulesPerPartition + static_cast<int>(chunk);
}

void LotusProtocol::ExecuteBatch(std::vector<Item> batch) {
  // Granule locks persist to the end of the epoch: schedule one release.
  if (!release_scheduled_) {
    release_scheduled_ = true;
    cluster_->replication().OnEpochEnd([this]() {
      std::fill(granule_writer_.begin(), granule_writer_.end(), 0);
      std::fill(granule_readers_.begin(), granule_readers_.end(), 0);
      release_scheduled_ = false;
    });
  }

  for (auto& item : batch) {
    Transaction* txn = item.txn->get();

    // Acquire every touched granule or abort to the next epoch (locks are
    // only released at epoch boundaries, so blocking would deadlock).
    bool conflict = false;
    for (const auto& op : txn->ops()) {
      if (op.is_insert) continue;  // unique-key appends conflict with nobody
      int g = GranuleOf(op.partition, op.key);
      TxnId writer = granule_writer_[g];
      if (writer != 0 && writer != txn->id()) {
        conflict = true;  // any access collides with a foreign writer
        break;
      }
      if (op.type == OpType::kWrite && granule_readers_[g] > 0) {
        conflict = true;  // writes exclude concurrent readers
        break;
      }
    }
    if (conflict) {
      granule_conflicts_++;
      Requeue(std::move(item));
      continue;
    }
    for (const auto& op : txn->ops()) {
      if (op.is_insert) continue;
      int g = GranuleOf(op.partition, op.key);
      if (op.type == OpType::kWrite) {
        granule_writer_[g] = txn->id();
      } else {
        granule_readers_[g]++;
      }
    }

    NodeId coord = batch_util::HomeNode(cluster_, *txn);
    txn->set_coordinator(coord);
    txn->set_exec_class(batch_util::IsSingleHome(cluster_, *txn)
                            ? ExecClass::kSingleNode
                            : ExecClass::kDistributed);
    auto item_shared = std::make_shared<Item>(std::move(item));
    SimTime start = cluster_->sim()->Now();
    // Execution under granule locks; writes apply directly (no validation
    // needed) and commit+replication proceed asynchronously at epoch end.
    batch_util::ReadPhase(cluster_, txn, coord, [this, txn, coord, item_shared,
                                                 start]() {
      txn->breakdown().execution += cluster_->sim()->Now() - start;
      SimTime apply_start = cluster_->sim()->Now();
      batch_util::ApplyWrites(cluster_, txn, coord,
                              [this, txn, item_shared, apply_start]() {
                                txn->breakdown().commit +=
                                    cluster_->sim()->Now() - apply_start;
                                CommitAtEpochEnd(item_shared.get());
                              });
    });
  }
}


// Self-registration: resolving "Lotus" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterLotusProtocol(
    "Lotus", ExecutionMode::kBatch,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<LotusProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
