// Baseline: classic OCC + two-phase commit (Sec. VI-A2a).
#pragma once

#include "protocols/protocol.h"
#include "txn/two_phase_engine.h"

namespace lion {

/// The standard distributed protocol of Fig. 1: transactions route to the
/// node holding the most of their primary partitions and always undergo the
/// execute / prepare / commit phases, with no placement adaptation.
class TwoPcProtocol : public Protocol {
 public:
  TwoPcProtocol(Cluster* cluster, MetricsCollector* metrics);

  std::string name() const override { return "2PC"; }
  void SubmitTxn(TxnPtr txn, TxnDoneFn done) override;

  /// Picks the node hosting the most primary partitions of `txn`
  /// (ties: lowest id). Shared with other primary-affinity protocols.
  static NodeId RouteToMostPrimaries(const Transaction& txn,
                                     const RouterTable& table);

 private:
  TwoPhaseEngine engine_;
};

}  // namespace lion
