// Star baseline: asymmetric full replication with phase switching.
#pragma once

#include "protocols/batch_protocol.h"

namespace lion {

struct StarConfig {
  /// The node hosting the full replica set ("super node").
  NodeId super_node = 0;
  /// Cost of one partition-phase <-> single-master-phase switch per epoch.
  SimTime phase_switch_delay = 300 * kMicrosecond;
};

/// Star keeps one node with replicas of every partition. Batches are split
/// into a partition phase (single-home transactions run on their home
/// nodes) and a single-master phase (every cross-partition transaction runs
/// on the super node as a single-node transaction, no 2PC). The super node
/// saturates as the cross-partition ratio grows — the bottleneck the paper
/// attributes to full-replication designs.
class StarProtocol : public BatchProtocol {
 public:
  StarProtocol(Cluster* cluster, MetricsCollector* metrics,
               StarConfig config = StarConfig{});

  std::string name() const override { return "Star"; }
  void Start() override;

  uint64_t super_node_txns() const { return super_node_txns_; }

 protected:
  void ExecuteBatch(std::vector<Item> batch) override;

 private:
  /// Runs one cross-partition transaction entirely on the super node.
  void RunOnSuperNode(Item item);

  StarConfig config_;
  uint64_t super_node_txns_ = 0;
};

}  // namespace lion
