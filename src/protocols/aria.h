// Aria baseline: deterministic OCC via per-batch write reservations.
#pragma once

#include <unordered_map>

#include "protocols/batch_protocol.h"

namespace lion {

/// Aria executes every transaction of a batch optimistically against the
/// batch-start snapshot, then reserves its writes. With Aria's reordering,
/// write-write conflicts commit in transaction-id order; readers of keys a
/// smaller transaction write-reserved (read-after-write hazards) abort and
/// re-execute in the next batch. No prior knowledge of read/write sets is
/// required, but the abort rate grows with contention (Sec. VI-D1).
class AriaProtocol : public BatchProtocol {
 public:
  AriaProtocol(Cluster* cluster, MetricsCollector* metrics);

  std::string name() const override { return "Aria"; }

  uint64_t reservation_aborts() const { return reservation_aborts_; }

 protected:
  void ExecuteBatch(std::vector<Item> batch) override;

 private:
  struct BatchState;

  void ReservePhase(const std::shared_ptr<BatchState>& state, size_t index);
  void CommitPhase(const std::shared_ptr<BatchState>& state);

  uint64_t reservation_aborts_ = 0;
};

}  // namespace lion
