#include "protocols/aria.h"

#include "protocols/batch_util.h"

#include "harness/registry.h"

namespace lion {

namespace {
// Mixes (partition, key) into a reservation-table slot. Both inputs get a
// multiplicative hash: workload key spaces embed table tags in high bits
// (TPC-C), so plain shifts/XORs alias across partitions.
uint64_t ResKey(PartitionId pid, Key key) {
  uint64_t h = key * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<uint64_t>(static_cast<uint32_t>(pid)) * 0xC2B2AE3D27D4EB4FULL;
  return h;
}
}  // namespace

struct AriaProtocol::BatchState {
  std::vector<Item> items;
  std::vector<NodeId> coords;
  // key -> lowest reserving txn id (write reservations).
  std::unordered_map<uint64_t, TxnId> write_res;
  int pending = 0;  // items still in execute+reserve
};

AriaProtocol::AriaProtocol(Cluster* cluster, MetricsCollector* metrics)
    : BatchProtocol(cluster, metrics) {}

void AriaProtocol::ExecuteBatch(std::vector<Item> batch) {
  auto state = std::make_shared<BatchState>();
  state->items = std::move(batch);
  state->pending = static_cast<int>(state->items.size());
  state->coords.resize(state->items.size());

  for (size_t i = 0; i < state->items.size(); ++i) {
    Transaction* txn = state->items[i].txn->get();
    NodeId coord = batch_util::HomeNode(cluster_, *txn);
    state->coords[i] = coord;
    txn->set_coordinator(coord);
    txn->set_exec_class(batch_util::IsSingleHome(cluster_, *txn)
                            ? ExecClass::kSingleNode
                            : ExecClass::kDistributed);
    SimTime start = cluster_->sim()->Now();
    // Execution phase: snapshot reads, fully parallel, no coordination.
    batch_util::ReadPhase(cluster_, txn, coord, [this, state, i, txn, start]() {
      txn->breakdown().execution += cluster_->sim()->Now() - start;
      ReservePhase(state, i);
    });
  }
  if (state->items.empty()) return;
}

void AriaProtocol::ReservePhase(const std::shared_ptr<BatchState>& state,
                                size_t index) {
  // Reservation: one message per remote participant carrying the write set;
  // the reservation table keeps the smallest txn id per key.
  Transaction* txn = state->items[index].txn->get();
  NodeId coord = state->coords[index];
  const ClusterConfig& cfg = cluster_->config();

  auto parts = txn->Partitions();
  auto pending = std::make_shared<int>(static_cast<int>(parts.size()));
  auto one_done = [this, state]() {
    if (--state->pending == 0) CommitPhase(state);
  };
  auto one_part = [this, state, txn, pending, one_done](PartitionId pid) {
    for (const auto& op : txn->ops()) {
      if (op.partition != pid || op.type != OpType::kWrite) continue;
      if (op.is_insert) continue;  // unique keys need no reservation
      uint64_t k = ResKey(pid, op.key);
      auto it = state->write_res.find(k);
      if (it == state->write_res.end() || txn->id() < it->second) {
        state->write_res[k] = txn->id();
      }
    }
    if (--(*pending) == 0) one_done();
  };

  for (PartitionId pid : parts) {
    NodeId primary = cluster_->router().PrimaryOf(pid);
    int writes = 0;
    for (const auto& op : txn->ops())
      if (op.partition == pid && op.type == OpType::kWrite) writes++;
    if (primary == coord) {
      cluster_->pool(coord)->Submit(TaskPriority::kResume,
                                    writes * cfg.validation_cost_per_op,
                                    [one_part, pid]() { one_part(pid); });
    } else {
      uint64_t bytes = MessageSizes::kHeader +
                       static_cast<uint64_t>(writes) * MessageSizes::kOpRequest;
      cluster_->network().Send(
          coord, primary, bytes, [this, primary, writes, one_part, pid, cfg]() {
            cluster_->pool(primary)->Submit(
                TaskPriority::kService, writes * cfg.validation_cost_per_op,
                [one_part, pid]() { one_part(pid); });
          });
    }
  }
}

void AriaProtocol::CommitPhase(const std::shared_ptr<BatchState>& state) {
  // Deterministic commit check with Aria's reordering: write-write
  // conflicts commit in transaction-id order (blind writes serialize), so
  // only read-after-write hazards abort — a transaction that read a key a
  // smaller transaction write-reserved re-executes next batch. (The paper
  // notes this reordering costs Aria ~20% extra latency, Fig. 14.)
  for (size_t i = 0; i < state->items.size(); ++i) {
    Item& item = state->items[i];
    Transaction* txn = item.txn->get();
    bool abort = false;
    for (const auto& op : txn->ops()) {
      uint64_t k = ResKey(op.partition, op.key);
      auto it = state->write_res.find(k);
      if (it == state->write_res.end()) continue;
      if (op.type == OpType::kRead && it->second < txn->id()) abort = true;
      if (abort) break;
    }
    if (abort) {
      reservation_aborts_++;
      Requeue(std::move(item));
      continue;
    }
    auto item_shared = std::make_shared<Item>(std::move(item));
    SimTime apply_start = cluster_->sim()->Now();
    batch_util::ApplyWrites(cluster_, txn, state->coords[i],
                            [this, txn, item_shared, apply_start]() {
                              txn->breakdown().commit +=
                                  cluster_->sim()->Now() - apply_start;
                              CommitAtEpochEnd(item_shared.get());
                            });
  }
}


// Self-registration: resolving "Aria" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterAriaProtocol(
    "Aria", ExecutionMode::kBatch,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<AriaProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
