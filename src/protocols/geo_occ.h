// Epoch-based OCC for geo-replicated deployments.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "protocols/batch_protocol.h"

namespace lion {

/// GeoOcc executes every transaction of an epoch optimistically (lock-free
/// snapshot reads, versions recorded) and defers all coordination to the
/// epoch boundary: one validate-and-lock round to each touched partition's
/// primary, then apply+replicate on unanimous yes or release-and-retry on
/// any conflict. Amortizing validation over the epoch means a transaction
/// pays the WAN round-trip once per epoch rather than once per lock, which
/// is the standard recipe for hiding cross-region latency (cf. the
/// Didona et al. lower bound plotted by bench_fig_geo).
class GeoOccProtocol : public BatchProtocol {
 public:
  GeoOccProtocol(Cluster* cluster, MetricsCollector* metrics);

  std::string name() const override { return "geo_occ"; }

  uint64_t validation_aborts() const { return validation_aborts_; }

 protected:
  void ExecuteBatch(std::vector<Item> batch) override;

 private:
  struct TxnState;

  void ValidatePhase(const std::shared_ptr<TxnState>& st);
  void FinishValidation(const std::shared_ptr<TxnState>& st);
  void ApplyPhase(const std::shared_ptr<TxnState>& st);
  void AbortPhase(const std::shared_ptr<TxnState>& st);

  uint64_t validation_aborts_ = 0;
};

}  // namespace lion
