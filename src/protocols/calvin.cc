#include "protocols/calvin.h"

#include "protocols/batch_util.h"

#include "harness/registry.h"

namespace lion {

CalvinProtocol::CalvinProtocol(Cluster* cluster, MetricsCollector* metrics,
                               CalvinConfig config)
    : BatchProtocol(cluster, metrics), config_(config) {
  for (NodeId n = 0; n < cluster->num_nodes(); ++n) {
    lock_managers_.push_back(std::make_unique<WorkerPool>(cluster->sim(), 1));
  }
  sequencer_ = std::make_unique<WorkerPool>(cluster->sim(), 1);
}

void CalvinProtocol::ExecuteBatch(std::vector<Item> batch) {
  // The sequencer fixes the order and dispatches; its serial processing is
  // part of the deterministic pipeline's cost.
  for (auto& item : batch) {
    auto item_shared = std::make_shared<Item>(std::move(item));
    sequencer_->Submit(TaskPriority::kService, config_.sequencer_cost_per_txn,
                       [this, item_shared]() {
                         RunDeterministic(std::move(*item_shared));
                       });
  }
}

void CalvinProtocol::RunDeterministic(Item item) {
  Transaction* txn = item.txn->get();
  auto parts = txn->Partitions();
  // Participant nodes (by current primary placement).
  std::vector<NodeId> participants;
  for (PartitionId pid : parts) {
    NodeId n = cluster_->router().PrimaryOf(pid);
    bool seen = false;
    for (NodeId p : participants) seen |= (p == n);
    if (!seen) participants.push_back(n);
  }
  bool multi_home = participants.size() > 1;
  txn->set_exec_class(multi_home ? ExecClass::kDistributed
                                 : ExecClass::kSingleNode);
  txn->set_coordinator(participants.empty() ? 0 : participants[0]);

  auto item_shared = std::make_shared<Item>(std::move(item));
  auto locks_pending = std::make_shared<int>(static_cast<int>(participants.size()));
  SimTime submitted = cluster_->sim()->Now();

  auto after_locks = [this, txn, participants, item_shared, multi_home,
                      submitted]() {
    txn->breakdown().scheduling += cluster_->sim()->Now() - submitted;
    // Execution: each participant reads its local ops; multi-home txns then
    // broadcast read results to each other (one communication round).
    const ClusterConfig& cfg = cluster_->config();
    auto exec_pending = std::make_shared<int>(static_cast<int>(participants.size()));
    SimTime exec_start = cluster_->sim()->Now();
    for (NodeId np : participants) {
      int local_ops = 0;
      for (const auto& op : txn->ops())
        if (cluster_->router().PrimaryOf(op.partition) == np) local_ops++;
      cluster_->pool(np)->Submit(
          TaskPriority::kResume,
          cfg.txn_setup_cost + local_ops * cfg.op_local_cost,
          [this, txn, np, participants, multi_home, exec_pending, item_shared,
           exec_start]() {
            for (PartitionId pid : txn->Partitions()) {
              if (cluster_->router().PrimaryOf(pid) == np)
                Occ::ReadOps(cluster_->store(pid), txn);
            }
            auto finish_exec = [this, txn, np, exec_pending, item_shared,
                                exec_start]() {
              if (--(*exec_pending) > 0) return;
              txn->breakdown().execution += cluster_->sim()->Now() - exec_start;
              // Apply writes at each participant, then epoch-commit.
              SimTime apply_start = cluster_->sim()->Now();
              batch_util::ApplyWrites(
                  cluster_, txn, np, [this, txn, item_shared, apply_start]() {
                    txn->breakdown().commit +=
                        cluster_->sim()->Now() - apply_start;
                    CommitAtEpochEnd(item_shared.get());
                  });
            };
            if (!multi_home) {
              finish_exec();
              return;
            }
            // Broadcast local reads to the other participants.
            auto acks = std::make_shared<int>(
                static_cast<int>(participants.size()) - 1);
            uint64_t bytes = MessageSizes::kHeader +
                             static_cast<uint64_t>(txn->ops().size()) *
                                 MessageSizes::kOpResponse;
            for (NodeId other : participants) {
              if (other == np) continue;
              cluster_->network().Send(np, other, bytes,
                                       [acks, finish_exec]() {
                                         if (--(*acks) == 0) finish_exec();
                                       });
            }
          });
    }
  };
  auto after_locks_shared =
      std::make_shared<std::function<void()>>(std::move(after_locks));

  // Lock acquisition through each participant's single-threaded manager, in
  // deterministic order (the batch arrives pre-ordered by the sequencer).
  for (NodeId np : participants) {
    int local_ops = 0;
    for (const auto& op : txn->ops())
      if (cluster_->router().PrimaryOf(op.partition) == np) local_ops++;
    lock_managers_[np]->Submit(TaskPriority::kService,
                               local_ops * config_.lock_cost_per_op,
                               [locks_pending, after_locks_shared]() {
                                 if (--(*locks_pending) == 0)
                                   (*after_locks_shared)();
                               });
  }
  if (participants.empty()) (*after_locks_shared)();
}


// Self-registration: resolving "Calvin" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterCalvinProtocol(
    "Calvin", ExecutionMode::kBatch,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<CalvinProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
