// Common interface for all transaction processing protocols.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "metrics/metrics.h"
#include "replication/cluster.h"
#include "txn/transaction.h"

namespace lion {

/// Completion callback: ownership of the transaction returns to the caller.
using TxnDoneFn = std::function<void(TxnPtr)>;

/// A transaction processing protocol (2PC, Leap, Clay, Star, Calvin, Aria,
/// Hermes, Lotus, Lion). The driver submits transactions; the protocol
/// routes, executes, retries on aborts, and finally hands each committed
/// transaction back through the callback.
class Protocol {
 public:
  Protocol(Cluster* cluster, MetricsCollector* metrics)
      : cluster_(cluster), metrics_(metrics) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual std::string name() const = 0;

  /// Installs periodic machinery (planners, sequencers, epoch switchers).
  /// Called once before any Submit.
  virtual void Start() {}

  /// Takes ownership of `txn`, drives it to commit (retrying internally on
  /// aborts), then returns ownership via `done`.
  virtual void Submit(TxnPtr txn, TxnDoneFn done) = 0;

  Cluster* cluster() { return cluster_; }
  MetricsCollector* metrics() { return metrics_; }

 protected:
  /// Re-submits an aborted transaction after a small randomized backoff.
  void RetryAfterBackoff(TxnPtr txn, TxnDoneFn done) {
    txn->ResetForRestart();
    SimTime backoff =
        static_cast<SimTime>(cluster_->sim()->rng().Uniform(100)) * kMicrosecond;
    auto self = this;
    // shared_ptr shim: std::function closures must be copyable.
    auto txn_shared = std::make_shared<TxnPtr>(std::move(txn));
    cluster_->sim()->Schedule(backoff, [self, txn_shared, done]() {
      self->Submit(std::move(*txn_shared), done);
    });
  }

  Cluster* cluster_;
  MetricsCollector* metrics_;
};

}  // namespace lion
