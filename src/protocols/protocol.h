// Common interface for all transaction processing protocols.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "metrics/metrics.h"
#include "replication/cluster.h"
#include "sim/periodic_timer.h"
#include "txn/transaction.h"

namespace lion {

/// Completion callback: ownership of the transaction returns to the caller.
using TxnDoneFn = std::function<void(TxnPtr)>;

/// A transaction processing protocol (2PC, Leap, Clay, Star, Calvin, Aria,
/// Hermes, Lotus, Lion). The driver submits transactions; the protocol
/// routes, executes, retries on aborts, and finally hands each committed
/// transaction back through the callback.
class Protocol {
 public:
  Protocol(Cluster* cluster, MetricsCollector* metrics)
      : cluster_(cluster),
        metrics_(metrics),
        epoch_timer_(cluster != nullptr ? cluster->sim() : nullptr,
                     [this](SimTime now) { OnEpoch(now); }) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual std::string name() const = 0;

  // --- lifecycle (owned and driven by the Experiment harness) ----------------

  /// Installs periodic machinery (planners, sequencers, epoch switchers).
  /// Called once before any Submit.
  virtual void Start() {}

  /// Tears down periodic machinery: the epoch timer stops rescheduling and
  /// no new background work is started; in-flight transactions still
  /// complete. Called once after the last Submit; idempotent. Overrides
  /// must call the base implementation.
  virtual void Stop() {
    stopped_ = true;
    epoch_timer_.Stop();
  }

  /// Epoch-boundary hook, invoked every cluster `epoch_interval` once
  /// StartEpochTimer() has been called (batch protocols flush here; others
  /// may use it for stats or GC).
  virtual void OnEpoch(SimTime now) { (void)now; }

  bool stopped() const { return stopped_; }

  /// Takes ownership of `txn`, drives it to commit (retrying internally on
  /// aborts), then returns ownership via `done`.
  virtual void Submit(TxnPtr txn, TxnDoneFn done) = 0;

  Cluster* cluster() { return cluster_; }
  MetricsCollector* metrics() { return metrics_; }

 protected:
  /// Re-submits an aborted transaction after a small randomized backoff.
  /// The scheduler accepts move-only callables, so the closure owns the
  /// transaction directly.
  void RetryAfterBackoff(TxnPtr txn, TxnDoneFn done) {
    txn->ResetForRestart();
    SimTime backoff =
        static_cast<SimTime>(cluster_->sim()->rng().Uniform(100)) * kMicrosecond;
    cluster_->sim()->Schedule(
        backoff, [this, txn = std::move(txn), done = std::move(done)]() mutable {
          Submit(std::move(txn), std::move(done));
        });
  }

  /// Installs the periodic weak event that drives OnEpoch at the cluster's
  /// epoch interval until Stop(). Idempotent, and clears the stopped flag
  /// so a Start() after Stop() re-arms the timer; call from Start().
  void StartEpochTimer() {
    stopped_ = false;
    epoch_timer_.Start(cluster_->config().epoch_interval);
  }

  Cluster* cluster_;
  MetricsCollector* metrics_;
  /// Set by Stop(); periodic loops in subclasses must check it (and clear
  /// it again on restart, as StartEpochTimer does).
  bool stopped_ = false;

 private:
  PeriodicTimer epoch_timer_;
};

}  // namespace lion
