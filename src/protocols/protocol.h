// Common interface for all transaction processing protocols.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "metrics/metrics.h"
#include "replication/chaos_config.h"
#include "replication/cluster.h"
#include "sim/periodic_timer.h"
#include "txn/transaction.h"

namespace lion {

class GeoPlacement;

/// Completion callback: ownership of the transaction returns to the caller.
using TxnDoneFn = std::function<void(TxnPtr)>;

/// A transaction processing protocol (2PC, Leap, Clay, Star, Calvin, Aria,
/// Hermes, Lotus, Lion). The driver submits transactions; the protocol
/// routes, executes, retries on aborts, and finally hands each committed
/// transaction back through the callback.
class Protocol {
 public:
  Protocol(Cluster* cluster, MetricsCollector* metrics)
      : cluster_(cluster),
        metrics_(metrics),
        epoch_timer_(cluster != nullptr ? cluster->sim() : nullptr,
                     [this](SimTime now) { OnEpoch(now); }) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual std::string name() const = 0;

  // --- lifecycle (owned and driven by the Experiment harness) ----------------

  /// Installs periodic machinery (planners, sequencers, epoch switchers).
  /// Called once before any Submit.
  virtual void Start() {}

  /// Tears down periodic machinery: the epoch timer stops rescheduling and
  /// no new background work is started; in-flight transactions still
  /// complete. Called once after the last Submit; idempotent. Overrides
  /// must call the base implementation.
  virtual void Stop() {
    stopped_ = true;
    epoch_timer_.Stop();
  }

  /// Epoch-boundary hook, invoked every cluster `epoch_interval` once
  /// StartEpochTimer() has been called (batch protocols flush here; others
  /// may use it for stats or GC).
  virtual void OnEpoch(SimTime now) { (void)now; }

  bool stopped() const { return stopped_; }

  /// Takes ownership of `txn`, drives it to commit (retrying internally on
  /// aborts), then returns ownership via `done`.
  ///
  /// Non-virtual on purpose: this is the graceful-degradation gate. With
  /// chaos degradation enabled (EnableDegradation), a transaction touching
  /// an unavailable partition — down primary, or primaries split by an
  /// active network partition — is deferred with a bounded deterministic
  /// linear backoff instead of blocking forever behind the partition's
  /// write block. After `chaos.max_unavailable_retries` deferrals it is
  /// counted via MetricsCollector::OnAbortUnavailable and handed back
  /// through `done` (freeing the closed-loop slot). Retries re-enter here,
  /// so each one re-checks availability against the healed/failed-over
  /// routing state. Without chaos this forwards straight to SubmitTxn.
  void Submit(TxnPtr txn, TxnDoneFn done) {
    if (chaos_ != nullptr && FirstUnavailablePartition(*txn) != kInvalidPartition) {
      if (txn->unavailable_retries() >= chaos_->max_unavailable_retries) {
        metrics_->OnAbortUnavailable(cluster_->sim()->Now());
        done(std::move(txn));
        return;
      }
      txn->BumpUnavailableRetries();
      // Deterministic linear backoff: no RNG draw, so arming a chaos
      // schedule cannot perturb the experiment RNG stream.
      SimTime backoff = chaos_->unavailable_backoff *
                        static_cast<SimTime>(txn->unavailable_retries());
      cluster_->sim()->Schedule(
          backoff,
          [this, txn = std::move(txn), done = std::move(done)]() mutable {
            Submit(std::move(txn), std::move(done));
          });
      return;
    }
    SubmitTxn(std::move(txn), std::move(done));
  }

  /// Arms graceful degradation (null disarms). `config` must outlive this
  /// protocol; the Experiment harness passes its own ChaosConfig when a
  /// chaos schedule is active. Virtual so composite protocols (meta) can
  /// forward the gate to the children they own; overrides must call the
  /// base implementation.
  virtual void EnableDegradation(const ChaosConfig* config) { chaos_ = config; }

  /// The protocol's geo placement constraints, if it has any (Lion's
  /// planner does); the chaos harness forwards them to the failure
  /// injector so elections and re-provisioning respect them.
  virtual const GeoPlacement* geo_placement() const { return nullptr; }

  Cluster* cluster() { return cluster_; }
  MetricsCollector* metrics() { return metrics_; }

 protected:
  /// Protocol-specific submission path; Submit (the public gate) forwards
  /// here once the transaction's partitions are available.
  virtual void SubmitTxn(TxnPtr txn, TxnDoneFn done) = 0;

  /// First touched partition that cannot currently serve the transaction:
  /// its primary is down, or it is separated from the other touched
  /// primaries by an active network partition (mutual reachability is
  /// checked against the first primary as anchor — with one cut there are
  /// exactly two sides, so pairwise anchoring is exact).
  /// kInvalidPartition when all are available.
  PartitionId FirstUnavailablePartition(const Transaction& txn) const {
    const RouterTable& table = cluster_->router();
    NodeId anchor = kInvalidNode;
    for (const Operation& op : txn.ops()) {
      PartitionId pid = op.partition;
      NodeId primary = table.PrimaryOf(pid);
      if (primary == kInvalidNode || !table.IsNodeUp(primary)) return pid;
      if (anchor == kInvalidNode) {
        anchor = primary;
      } else if (!cluster_->network().Reachable(anchor, primary)) {
        return pid;
      }
    }
    return kInvalidPartition;
  }

  /// Re-submits an aborted transaction after a small randomized backoff.
  /// The scheduler accepts move-only callables, so the closure owns the
  /// transaction directly.
  void RetryAfterBackoff(TxnPtr txn, TxnDoneFn done) {
    txn->ResetForRestart();
    SimTime backoff =
        static_cast<SimTime>(cluster_->sim()->rng().Uniform(100)) * kMicrosecond;
    cluster_->sim()->Schedule(
        backoff, [this, txn = std::move(txn), done = std::move(done)]() mutable {
          Submit(std::move(txn), std::move(done));
        });
  }

  /// Installs the periodic weak event that drives OnEpoch at the cluster's
  /// epoch interval until Stop(). Idempotent, and clears the stopped flag
  /// so a Start() after Stop() re-arms the timer; call from Start().
  void StartEpochTimer() {
    stopped_ = false;
    epoch_timer_.Start(cluster_->config().epoch_interval);
  }

  Cluster* cluster_;
  MetricsCollector* metrics_;
  /// Set by Stop(); periodic loops in subclasses must check it (and clear
  /// it again on restart, as StartEpochTimer does).
  bool stopped_ = false;

 private:
  PeriodicTimer epoch_timer_;
  /// Non-null while chaos degradation is armed (owned by the Experiment).
  const ChaosConfig* chaos_ = nullptr;
};

}  // namespace lion
