#include "protocols/leap.h"

#include "protocols/twopc.h"

#include "harness/registry.h"

namespace lion {

LeapProtocol::LeapProtocol(Cluster* cluster, MetricsCollector* metrics)
    : Protocol(cluster, metrics), engine_(cluster, metrics) {}

void LeapProtocol::MigrateNext(Transaction* txn, NodeId coord,
                               std::shared_ptr<std::vector<PartitionId>> missing,
                               size_t index, std::function<void(bool)> then) {
  if (index >= missing->size()) {
    then(true);
    return;
  }
  PartitionId pid = (*missing)[index];
  // Transfer only the working set: the records this transaction touches.
  uint64_t bytes = static_cast<uint64_t>(txn->OpsOn(pid).size()) *
                   cluster_->config().record_bytes;
  migrations_requested_++;
  cluster_->migration().MoveMastershipLight(
      pid, coord, bytes, [this, txn, coord, missing, index, then](bool ok) {
        if (!ok) {
          // Another migration is in flight on this partition: wait for it,
          // then retry the pull (Leap keeps pulling until local).
          PartitionId pid = (*missing)[index];
          cluster_->remaster().WaitUntilAvailable(
              pid, [this, txn, coord, missing, index, then]() {
                MigrateNext(txn, coord, missing, index, then);
              });
          return;
        }
        MigrateNext(txn, coord, missing, index + 1, then);
      });
}

void LeapProtocol::SubmitTxn(TxnPtr txn, TxnDoneFn done) {
  NodeId coord = TwoPcProtocol::RouteToMostPrimaries(*txn, cluster_->router());
  for (PartitionId pid : txn->Partitions()) cluster_->router().RecordAccess(pid);

  auto missing = std::make_shared<std::vector<PartitionId>>();
  for (PartitionId pid : txn->Partitions()) {
    if (cluster_->router().PrimaryOf(pid) != coord) missing->push_back(pid);
  }

  Transaction* raw = txn.get();
  auto txn_shared = std::make_shared<TxnPtr>(std::move(txn));
  auto finish = [this, txn_shared, done](bool committed) {
    if (committed) {
      metrics_->OnCommit(**txn_shared, cluster_->sim()->Now());
      done(std::move(*txn_shared));
    } else {
      RetryAfterBackoff(std::move(*txn_shared), done);
    }
  };

  if (!missing->empty()) raw->set_exec_class(ExecClass::kRemastered);
  // Pull every remote partition's mastership to the coordinator, one by one
  // (each op waits for its migration), then execute as single-node.
  MigrateNext(raw, coord, missing, 0, [this, raw, coord, finish](bool) {
    TwoPhaseEngine::Options opts;  // local commit, no prepare round needed
    engine_.Run(raw, coord, opts, finish);
  });
}


// Self-registration: resolving "Leap" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterLeapProtocol(
    "Leap", ExecutionMode::kStandard,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<LeapProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
