// Runtime meta-protocol: per-partition adaptive protocol switching driven
// by the workload predictor's forecasts.
//
// Lion's thesis is that forecasted per-class load should drive runtime
// adaptation; STAR shows phase-switching between single-master batching and
// distributed execution wins when the workload mix shifts. The meta
// protocol combines both: it owns child protocols built through
// ProtocolRegistry (a 2PC-style baseline, a STAR-style single-master batch
// mode, and optionally a WAN candidate such as geo_occ), routes every
// transaction by the current per-partition assignment, and at every epoch
// boundary consults the predictor's per-partition forecasts plus the
// observed cross-partition ratios to decide flips:
//
//   * predicted write-hot AND cross-heavy      -> single-master batching
//   * cross-heavy in a multi-region topology   -> the WAN candidate
//   * everything else                          -> the baseline
//
// Each flip is gated by a hysteresis window (the rule must prefer the same
// target for `meta.hysteresis_epochs` consecutive epochs, and a partition
// may not flip again within `meta.cooldown_epochs`) and by the migration
// cost model: the partition's smoothed cross-partition load must reach
// `meta.cost_gate` x the placement cost of the flip, with cross-region
// flips priced through the geo placement's wan_migration_multiplier.
//
// Switching is a safe epoch-boundary handoff: the outgoing child's buffered
// work for the partition is flushed, new arrivals touching the partition
// park in a FIFO queue, and the flip completes only when the partition's
// in-flight count drains to zero — at which point parked transactions
// re-enter through the public Submit gate (re-checking chaos availability)
// and the flip is recorded in the `protocol_switches` metrics series.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/geo_placement.h"
#include "core/predictor_interface.h"
#include "protocols/meta_config.h"
#include "protocols/protocol.h"

namespace lion {

class MetaProtocol : public Protocol {
 public:
  /// `child_names[i]` labels `children[i]`; index 0 is the baseline, 1 the
  /// single-master candidate, 2 (when present) the WAN candidate.
  /// `predictor` may be null (decisions then use observed EWMAs only);
  /// `horizon` is the forecast lead in predictor sampling intervals.
  MetaProtocol(Cluster* cluster, MetricsCollector* metrics, MetaConfig config,
               const CostModelConfig& cost, const GeoPlacementConfig& geo,
               std::vector<std::string> child_names,
               std::vector<std::unique_ptr<Protocol>> children,
               std::unique_ptr<PredictorInterface> predictor, int horizon);
  ~MetaProtocol() override;

  std::string name() const override { return "meta"; }

  /// Starts the children first (their epoch timers land ahead of the
  /// meta timer in same-timestamp FIFO order, so batch children flush
  /// before each decision round), then the meta epoch timer.
  void Start() override;

  /// Stops the meta timer, then every child (batch children flush their
  /// remaining buffers). In-flight switches complete as their partitions
  /// drain.
  void Stop() override;

  /// The per-epoch decision round: folds the observation windows into the
  /// EWMAs, pulls fresh forecasts, and starts any flips that pass
  /// hysteresis and the cost gate.
  void OnEpoch(SimTime now) override;

  /// Arms the gate on this protocol AND every child, so child-internal
  /// retries (RetryAfterBackoff re-enters the child's own Submit) respect
  /// degradation too.
  void EnableDegradation(const ChaosConfig* config) override;

  const GeoPlacement* geo_placement() const override {
    return geo_.active() ? &geo_ : nullptr;
  }

  // --- introspection (harness, tests) ----------------------------------------
  size_t num_children() const { return children_.size(); }
  const std::string& child_name(size_t i) const { return child_names_[i]; }
  Protocol* child(size_t i) { return children_[i].get(); }
  /// Index into child_names() of the child currently serving `pid`.
  int AssignmentOf(PartitionId pid) const { return parts_[pid].assigned; }
  /// Completed flips (mirrors the metrics series).
  uint64_t switches_completed() const { return switches_; }
  /// Partitions per child under the current assignment.
  std::vector<uint64_t> AssignmentCounts() const;
  /// True while any partition is mid-handoff.
  bool SwitchInProgress() const;
  /// Transactions parked behind an in-progress handoff.
  size_t parked() const { return parked_.size(); }

 protected:
  void SubmitTxn(TxnPtr txn, TxnDoneFn done) override;

 private:
  struct ParkedTxn {
    // shared_ptr wrapper: TxnDoneFn closures must stay copyable for
    // std::function, and TxnPtr is move-only.
    std::shared_ptr<TxnPtr> txn;
    TxnDoneFn done;
  };

  struct PartitionState {
    int assigned = 0;       // child index currently serving this partition
    int switching_to = -1;  // target child while a handoff drains, else -1
    int inflight = 0;       // meta-submitted txns not yet handed back
    int last_desired = 0;
    int desired_streak = 0;
    int64_t last_flip_epoch = 0;
    double load_ewma = 0.0;   // txns/epoch touching this partition
    double cross_ewma = 0.0;  // fraction of those that were multi-partition
    uint64_t window_total = 0;
    uint64_t window_cross = 0;
  };

  /// The decision rule: which child the current signals favor.
  int DesiredChild(const PartitionState& ps, double norm_load) const;
  /// Placement cost of flipping `pid` to `target` (0 toward the baseline;
  /// wm x the geo migration multiplier otherwise).
  double FlipCost(PartitionId pid, int target) const;
  /// Majority vote of the touched partitions' assignments (ties -> lowest
  /// child index).
  int RouteChild(const std::vector<PartitionId>& parts) const;
  void StartSwitch(PartitionId pid, int target, SimTime now);
  void CompleteSwitch(PartitionId pid, SimTime now);

  MetaConfig config_;
  int horizon_;
  GeoPlacement geo_;
  CostModel cost_;
  std::vector<std::string> child_names_;
  std::vector<std::unique_ptr<Protocol>> children_;
  std::unique_ptr<PredictorInterface> predictor_;
  std::vector<PartitionState> parts_;
  std::deque<ParkedTxn> parked_;
  int64_t epoch_index_ = 0;
  uint64_t switches_ = 0;
  std::vector<double> forecast_;  // per-partition forecast scratch
};

}  // namespace lion
