#include "protocols/geo_occ.h"

#include <utility>

#include "harness/registry.h"
#include "protocols/batch_util.h"

namespace lion {

// Per-transaction validation round state. `locked` mirrors `parts`: only
// partitions whose ValidateAndLock succeeded hold locks and need a release
// message on the abort path.
struct GeoOccProtocol::TxnState {
  Item item;
  NodeId coord = 0;
  std::vector<PartitionId> parts;
  std::vector<char> locked;
  int pending = 0;
  bool ok = true;
};

GeoOccProtocol::GeoOccProtocol(Cluster* cluster, MetricsCollector* metrics)
    : BatchProtocol(cluster, metrics) {}

void GeoOccProtocol::ExecuteBatch(std::vector<Item> batch) {
  // Optimistic execution: every transaction of the epoch reads in parallel
  // with no coordination. Conflicts surface later, at validation.
  for (Item& item : batch) {
    auto st = std::make_shared<TxnState>();
    st->item = std::move(item);
    Transaction* txn = st->item.txn->get();
    st->coord = batch_util::HomeNode(cluster_, *txn);
    st->parts = txn->Partitions();
    st->locked.assign(st->parts.size(), 0);
    txn->set_coordinator(st->coord);
    txn->set_exec_class(batch_util::IsSingleHome(cluster_, *txn)
                            ? ExecClass::kSingleNode
                            : ExecClass::kDistributed);
    SimTime start = cluster_->sim()->Now();
    batch_util::ReadPhase(cluster_, txn, st->coord, [this, st, txn, start]() {
      txn->breakdown().execution += cluster_->sim()->Now() - start;
      ValidatePhase(st);
    });
  }
}

void GeoOccProtocol::ValidatePhase(const std::shared_ptr<TxnState>& st) {
  // One validate-and-lock request per touched partition, served at its
  // primary. Remote primaries — in a geo deployment, typically the
  // cross-region ones — pay one WAN round-trip; that round-trip is per
  // epoch-boundary, not per lock acquisition.
  Transaction* txn = st->item.txn->get();
  const ClusterConfig& cfg = cluster_->config();
  st->pending = static_cast<int>(st->parts.size());
  SimTime start = cluster_->sim()->Now();

  for (size_t i = 0; i < st->parts.size(); ++i) {
    PartitionId pid = st->parts[i];
    NodeId primary = cluster_->router().PrimaryOf(pid);
    int n_ops = static_cast<int>(txn->OpsOn(pid).size());
    SimTime cost = n_ops * cfg.validation_cost_per_op;
    auto validate = [this, st, txn, pid, i, start]() {
      bool locked = Occ::ValidateAndLock(cluster_->store(pid), txn);
      st->locked[i] = locked ? 1 : 0;
      if (!locked) st->ok = false;
      if (--st->pending == 0) {
        txn->breakdown().commit += cluster_->sim()->Now() - start;
        FinishValidation(st);
      }
    };
    if (primary == st->coord) {
      cluster_->pool(primary)->Submit(TaskPriority::kResume, cost, validate);
    } else {
      uint64_t req = MessageSizes::kPrepare +
                     static_cast<uint64_t>(n_ops) * MessageSizes::kOpRequest;
      cluster_->network().Send(
          st->coord, primary, req,
          [this, st, primary, cost, validate]() {
            cluster_->pool(primary)->Submit(
                TaskPriority::kService, cost,
                [this, st, primary, validate]() {
                  validate();
                  // Vote travels back to the coordinator; the decision
                  // itself is the epoch-boundary commit/abort below.
                  cluster_->network().Send(primary, st->coord,
                                           MessageSizes::kCommitDecision,
                                           []() {});
                });
          });
    }
  }
}

void GeoOccProtocol::FinishValidation(const std::shared_ptr<TxnState>& st) {
  if (st->ok) {
    ApplyPhase(st);
  } else {
    validation_aborts_++;
    AbortPhase(st);
  }
}

void GeoOccProtocol::ApplyPhase(const std::shared_ptr<TxnState>& st) {
  // Unanimous yes: install writes, append the replication log, and release
  // locks at every primary; visibility waits for the epoch to close (group
  // commit), so all of an epoch's survivors become visible together.
  Transaction* txn = st->item.txn->get();
  const ClusterConfig& cfg = cluster_->config();
  auto pending = std::make_shared<int>(static_cast<int>(st->parts.size()));
  SimTime start = cluster_->sim()->Now();

  for (PartitionId pid : st->parts) {
    NodeId primary = cluster_->router().PrimaryOf(pid);
    int writes = 0;
    for (const auto& op : txn->ops())
      if (op.partition == pid && op.type == OpType::kWrite) writes++;
    SimTime cost = cfg.log_write_cost + writes * cfg.op_local_cost;
    auto apply = [this, st, txn, pid, pending, start]() {
      Occ::ApplyAndUnlock(cluster_->store(pid), txn, &cluster_->replication());
      if (--(*pending) == 0) {
        txn->breakdown().commit += cluster_->sim()->Now() - start;
        CommitAtEpochEnd(&st->item);
      }
    };
    if (primary == st->coord) {
      cluster_->pool(primary)->Submit(TaskPriority::kResume, cost, apply);
    } else {
      uint64_t bytes = MessageSizes::kHeader +
                       static_cast<uint64_t>(writes) * MessageSizes::kLogEntry;
      cluster_->network().Send(st->coord, primary, bytes,
                               [this, primary, cost, apply]() {
                                 cluster_->pool(primary)->Submit(
                                     TaskPriority::kService, cost, apply);
                               });
    }
  }
}

void GeoOccProtocol::AbortPhase(const std::shared_ptr<TxnState>& st) {
  // Conflict: release whatever locks validation managed to take, then
  // re-queue for the next epoch (abort-and-retry).
  Transaction* txn = st->item.txn->get();
  auto release_pending = std::make_shared<int>(0);
  for (size_t i = 0; i < st->parts.size(); ++i) {
    if (!st->locked[i]) continue;
    (*release_pending)++;
  }
  auto requeue = [this, st]() { Requeue(std::move(st->item)); };
  if (*release_pending == 0) {
    requeue();
    return;
  }
  for (size_t i = 0; i < st->parts.size(); ++i) {
    if (!st->locked[i]) continue;
    PartitionId pid = st->parts[i];
    NodeId primary = cluster_->router().PrimaryOf(pid);
    auto release = [this, txn, pid, release_pending, requeue]() {
      Occ::ReleaseLocks(cluster_->store(pid), txn);
      if (--(*release_pending) == 0) requeue();
    };
    if (primary == st->coord) {
      cluster_->pool(primary)->Submit(TaskPriority::kResume, 0, release);
    } else {
      cluster_->network().Send(st->coord, primary,
                               MessageSizes::kCommitDecision,
                               [this, primary, release]() {
                                 cluster_->pool(primary)->Submit(
                                     TaskPriority::kService, 0, release);
                               });
    }
  }
}


// Self-registration: resolving "geo_occ" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterGeoOccProtocol(
    "geo_occ", ExecutionMode::kBatch,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<GeoOccProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
