#include "protocols/hermes.h"

#include <algorithm>

#include "protocols/batch_util.h"
#include "txn/occ.h"

#include "harness/registry.h"

namespace lion {

HermesProtocol::HermesProtocol(Cluster* cluster, MetricsCollector* metrics,
                               HermesConfig config)
    : BatchProtocol(cluster, metrics), config_(config) {
  for (NodeId n = 0; n < cluster->num_nodes(); ++n) {
    lock_managers_.push_back(std::make_unique<WorkerPool>(cluster->sim(), 1));
  }
}

void HermesProtocol::ExecuteBatch(std::vector<Item> batch) {
  // Prescient reordering: group transactions by partition signature so
  // consecutive ones reuse each other's migrations.
  std::sort(batch.begin(), batch.end(), [](const Item& a, const Item& b) {
    return (*a.txn)->Partitions() < (*b.txn)->Partitions();
  });
  for (auto& item : batch) MigrateThenRun(std::move(item));
}

void HermesProtocol::MigrateThenRun(Item item) {
  Transaction* txn = item.txn->get();
  NodeId dst = batch_util::HomeNode(cluster_, *txn);
  auto missing = std::make_shared<std::vector<PartitionId>>();
  for (PartitionId pid : txn->Partitions()) {
    if (cluster_->router().PrimaryOf(pid) != dst) missing->push_back(pid);
  }
  txn->set_coordinator(dst);
  txn->set_exec_class(missing->empty() ? ExecClass::kSingleNode
                                       : ExecClass::kRemastered);
  auto item_shared = std::make_shared<Item>(std::move(item));
  MigrateNext(item_shared, dst, missing, 0);
}

void HermesProtocol::MigrateNext(std::shared_ptr<Item> item, NodeId dst,
                                 std::shared_ptr<std::vector<PartitionId>> missing,
                                 size_t index) {
  Transaction* txn = item->txn->get();
  // Placement may have changed while waiting: skip already-local entries.
  while (index < missing->size() &&
         cluster_->router().PrimaryOf((*missing)[index]) == dst) {
    index++;
  }
  if (index >= missing->size()) {
    RunLocal(item, dst);
    return;
  }
  PartitionId pid = (*missing)[index];
  uint64_t bytes = static_cast<uint64_t>(txn->OpsOn(pid).size()) *
                   cluster_->config().record_bytes;
  migrations_requested_++;
  cluster_->migration().MoveMastershipLight(
      pid, dst, bytes, [this, item, dst, missing, index, pid](bool ok) {
        if (!ok) {
          // A migration is in flight; deterministic order means we simply
          // wait and retry (no aborts in Hermes).
          cluster_->remaster().WaitUntilAvailable(
              pid, [this, item, dst, missing, index]() {
                MigrateNext(item, dst, missing, index);
              });
          return;
        }
        MigrateNext(item, dst, missing, index + 1);
      });
}

void HermesProtocol::RunLocal(std::shared_ptr<Item> item, NodeId dst) {
  const ClusterConfig& cfg = cluster_->config();
  Transaction* txn = item->txn->get();
  int total_ops = static_cast<int>(txn->ops().size());
  SimTime lock_submit = cluster_->sim()->Now();

  // Serial lock manager grant, then local execution and write application.
  lock_managers_[dst]->Submit(
      TaskPriority::kService, total_ops * config_.lock_cost_per_op,
      [this, item, dst, txn, total_ops, lock_submit, cfg]() {
        txn->breakdown().scheduling += cluster_->sim()->Now() - lock_submit;
        SimTime exec_start = cluster_->sim()->Now();
        cluster_->pool(dst)->Submit(
            TaskPriority::kResume,
            cfg.txn_setup_cost + txn->extra_compute() +
                total_ops * cfg.op_local_cost,
            [this, item, dst, txn, exec_start]() {
              for (PartitionId pid : txn->Partitions()) {
                Occ::ReadOps(cluster_->store(pid), txn);
              }
              txn->breakdown().execution += cluster_->sim()->Now() - exec_start;
              SimTime apply_start = cluster_->sim()->Now();
              batch_util::ApplyWrites(cluster_, txn, dst,
                                      [this, item, txn, apply_start]() {
                                        txn->breakdown().commit +=
                                            cluster_->sim()->Now() - apply_start;
                                        CommitAtEpochEnd(item.get());
                                      });
            });
      });
}


// Self-registration: resolving "Hermes" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterHermesProtocol(
    "Hermes", ExecutionMode::kBatch,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<HermesProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
