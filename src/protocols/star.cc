#include "protocols/star.h"

#include "protocols/batch_util.h"

#include "harness/registry.h"

namespace lion {

StarProtocol::StarProtocol(Cluster* cluster, MetricsCollector* metrics,
                           StarConfig config)
    : BatchProtocol(cluster, metrics), config_(config) {}

void StarProtocol::Start() {
  // Deployment assumption of Star: the super node is provisioned with a
  // replica of every partition up front (asymmetric replication).
  for (PartitionId pid = 0; pid < cluster_->num_partitions(); ++pid) {
    ReplicaGroup* g = cluster_->router().mutable_group(pid);
    if (!g->HasReplica(config_.super_node)) {
      g->AddSecondary(config_.super_node, g->primary_lsn());
    }
  }
  BatchProtocol::Start();
}

void StarProtocol::ExecuteBatch(std::vector<Item> batch) {
  // Partition phase: single-home transactions execute on their home nodes.
  // Single-master phase: cross-partition transactions run on the super node
  // after the phase switch.
  std::vector<Item> cross;
  for (auto& item : batch) {
    Transaction* txn = item.txn->get();
    if (batch_util::IsSingleHome(cluster_, *txn)) {
      NodeId home = batch_util::HomeNode(cluster_, *txn);
      txn->set_exec_class(ExecClass::kSingleNode);
      txn->set_coordinator(home);
      Transaction* raw = txn;
      auto item_shared = std::make_shared<Item>(std::move(item));
      SimTime start = cluster_->sim()->Now();
      batch_util::ReadPhase(cluster_, raw, home, [this, raw, home, item_shared,
                                                  start]() {
        raw->breakdown().execution += cluster_->sim()->Now() - start;
        SimTime apply_start = cluster_->sim()->Now();
        batch_util::ApplyWrites(cluster_, raw, home,
                                [this, raw, item_shared, apply_start]() {
                                  raw->breakdown().commit +=
                                      cluster_->sim()->Now() - apply_start;
                                  CommitAtEpochEnd(item_shared.get());
                                });
      });
    } else {
      cross.push_back(std::move(item));
    }
  }
  if (cross.empty()) return;
  // Phase switch barrier, then route every cross txn to the super node.
  auto cross_shared = std::make_shared<std::vector<Item>>(std::move(cross));
  cluster_->sim()->Schedule(config_.phase_switch_delay, [this, cross_shared]() {
    for (auto& item : *cross_shared) RunOnSuperNode(std::move(item));
  });
}

void StarProtocol::RunOnSuperNode(Item item) {
  const ClusterConfig& cfg = cluster_->config();
  Transaction* txn = item.txn->get();
  super_node_txns_++;
  // All replicas are local on the super node: the transaction executes as a
  // single-node one (the conversion Star achieves via its phase switching).
  txn->set_exec_class(ExecClass::kRemastered);
  txn->set_coordinator(config_.super_node);

  int total_ops = static_cast<int>(txn->ops().size());
  int total_writes = 0;
  for (const auto& op : txn->ops())
    if (op.type == OpType::kWrite) total_writes++;

  auto item_shared = std::make_shared<Item>(std::move(item));
  SimTime submit = cluster_->sim()->Now();
  SimTime exec_cost = cfg.txn_setup_cost + txn->extra_compute() +
                      total_ops * cfg.op_local_cost;
  SimTime apply_cost = cfg.log_write_cost + total_writes * cfg.op_local_cost;

  // Every cross transaction consumes super-node worker time: the bottleneck.
  cluster_->pool(config_.super_node)
      ->Submit(TaskPriority::kNew, exec_cost, [this, txn, item_shared, submit,
                                               apply_cost]() {
        txn->breakdown().scheduling += 0;
        txn->breakdown().execution += cluster_->sim()->Now() - submit;
        for (PartitionId pid : txn->Partitions()) {
          (void)pid;
        }
        cluster_->pool(config_.super_node)
            ->Submit(TaskPriority::kResume, apply_cost, [this, txn,
                                                         item_shared]() {
              SimTime apply_at = cluster_->sim()->Now();
              for (const auto& op : txn->ops()) {
                if (op.type != OpType::kWrite) continue;
                cluster_->store(op.partition)->Apply(op.key, op.write_value);
                cluster_->replication().Append(op.partition, op.key,
                                               op.write_value);
              }
              txn->breakdown().commit += cluster_->sim()->Now() - apply_at;
              CommitAtEpochEnd(item_shared.get());
            });
      });
}


// Self-registration: resolving "Star" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterStarProtocol(
    "Star", ExecutionMode::kBatch,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<StarProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
