// Lotus baseline: epoch-based execution with granule locks.
#pragma once

#include <vector>

#include "protocols/batch_protocol.h"

namespace lion {

/// Lotus executes batches under partition-granule locks that are held until
/// the epoch ends, with asynchronous commit and replication (near-zero
/// scheduling cost). Single-home transactions are fast; under contention or
/// high cross-partition ratios, granule conflicts abort transactions into
/// the next epoch, inflating tail latency (Figs. 9, 14).
class LotusProtocol : public BatchProtocol {
 public:
  /// Granules per partition: Lotus locks key-range chunks, not whole
  /// partitions, which preserves intra-partition concurrency.
  static constexpr int kGranulesPerPartition = 1024;

  LotusProtocol(Cluster* cluster, MetricsCollector* metrics);

  std::string name() const override { return "Lotus"; }

  uint64_t granule_conflicts() const { return granule_conflicts_; }

 protected:
  void ExecuteBatch(std::vector<Item> batch) override;

 private:
  /// Granule id of one operation (partition chunk by key range).
  int GranuleOf(PartitionId pid, Key key) const;

  /// Reader/writer granule locks, held to the epoch boundary. Reads share;
  /// writes are exclusive against both readers and other writers.
  std::vector<TxnId> granule_writer_;
  std::vector<uint32_t> granule_readers_;
  uint64_t records_per_partition_;
  uint64_t granule_conflicts_ = 0;
  bool release_scheduled_ = false;
};

}  // namespace lion
