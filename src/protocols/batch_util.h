// Small execution-phase helpers shared by the custom batch protocols.
#pragma once

#include <functional>
#include <memory>

#include "replication/cluster.h"
#include "sim/network.h"
#include "txn/occ.h"
#include "txn/transaction.h"

namespace lion {
namespace batch_util {

/// Runs the read phase of `txn` from `coord`: local partitions read in one
/// worker task, remote partitions via one request/response round each
/// (charged at the serving node). Calls `done` when every partition's reads
/// completed. Also charges the admission cost at `coord`.
inline void ReadPhase(Cluster* cluster, Transaction* txn, NodeId coord,
                      std::function<void()> done) {
  const ClusterConfig& cfg = cluster->config();
  auto parts = txn->Partitions();
  auto pending = std::make_shared<int>(static_cast<int>(parts.size()));
  auto done_shared = std::make_shared<std::function<void()>>(std::move(done));
  SimTime setup = cfg.txn_setup_cost + txn->extra_compute();

  cluster->pool(coord)->Submit(
      TaskPriority::kNew, setup, [cluster, txn, coord, parts, pending,
                                  done_shared, cfg]() {
        for (PartitionId pid : parts) {
          int n_ops = static_cast<int>(txn->OpsOn(pid).size());
          NodeId primary = cluster->router().PrimaryOf(pid);
          auto one_done = [pending, done_shared]() {
            if (--(*pending) == 0) (*done_shared)();
          };
          if (primary == coord) {
            cluster->pool(coord)->Submit(TaskPriority::kResume,
                                         n_ops * cfg.op_local_cost,
                                         [cluster, txn, pid, one_done]() {
                                           Occ::ReadOps(cluster->store(pid), txn);
                                           one_done();
                                         });
          } else {
            uint64_t req = MessageSizes::kHeader +
                           static_cast<uint64_t>(n_ops) * MessageSizes::kOpRequest;
            uint64_t resp = MessageSizes::kHeader +
                            static_cast<uint64_t>(n_ops) * MessageSizes::kOpResponse;
            cluster->network().Send(
                coord, primary, req,
                [cluster, txn, pid, primary, coord, n_ops, resp, one_done, cfg]() {
                  cluster->pool(primary)->Submit(
                      TaskPriority::kService, n_ops * cfg.op_service_cost,
                      [cluster, txn, pid, primary, coord, resp, one_done]() {
                        Occ::ReadOps(cluster->store(pid), txn);
                        cluster->network().Send(primary, coord, resp, one_done);
                      });
                });
          }
        }
      });
}

/// Applies `txn`'s writes on every touched partition at its primary node
/// (one worker task per partition), appending to the replication log.
/// Ignores record locks: callers guarantee isolation (deterministic order
/// or granule locks). Calls `done` when all partitions applied.
inline void ApplyWrites(Cluster* cluster, Transaction* txn, NodeId coord,
                        std::function<void()> done) {
  const ClusterConfig& cfg = cluster->config();
  auto parts = txn->Partitions();
  auto pending = std::make_shared<int>(static_cast<int>(parts.size()));
  auto done_shared = std::make_shared<std::function<void()>>(std::move(done));
  for (PartitionId pid : parts) {
    int writes = 0;
    for (const auto& op : txn->ops())
      if (op.partition == pid && op.type == OpType::kWrite) writes++;
    NodeId primary = cluster->router().PrimaryOf(pid);
    SimTime cost = cfg.log_write_cost + writes * cfg.op_local_cost;
    auto apply = [cluster, txn, pid, pending, done_shared]() {
      PartitionStore* store = cluster->store(pid);
      for (const auto& op : txn->ops()) {
        if (op.partition != pid || op.type != OpType::kWrite) continue;
        store->Apply(op.key, op.write_value);
        cluster->replication().Append(pid, op.key, op.write_value);
      }
      if (--(*pending) == 0) (*done_shared)();
    };
    if (primary == coord) {
      cluster->pool(primary)->Submit(TaskPriority::kResume, cost, apply);
    } else {
      cluster->network().Send(coord, primary,
                              MessageSizes::kHeader +
                                  static_cast<uint64_t>(writes) * MessageSizes::kLogEntry,
                              [cluster, primary, cost, apply]() {
                                cluster->pool(primary)->Submit(
                                    TaskPriority::kService, cost, apply);
                              });
    }
  }
}

/// Node hosting the most of `txn`'s primary partitions.
inline NodeId HomeNode(Cluster* cluster, const Transaction& txn) {
  std::vector<int> count(cluster->num_nodes(), 0);
  for (PartitionId pid : txn.Partitions())
    count[cluster->router().PrimaryOf(pid)]++;
  NodeId best = 0;
  for (NodeId n = 1; n < cluster->num_nodes(); ++n)
    if (count[n] > count[best]) best = n;
  return best;
}

/// True if all primary partitions of `txn` live on one node.
inline bool IsSingleHome(Cluster* cluster, const Transaction& txn) {
  NodeId home = kInvalidNode;
  for (PartitionId pid : txn.Partitions()) {
    NodeId n = cluster->router().PrimaryOf(pid);
    if (home == kInvalidNode) home = n;
    else if (home != n) return false;
  }
  return true;
}

}  // namespace batch_util
}  // namespace lion
