// Shared machinery for epoch/batch execution protocols (Star, Calvin,
// Hermes, Aria, Lotus and batch-mode Lion all collect transactions into
// batches delimited by the global epoch).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "protocols/protocol.h"

namespace lion {

/// Buffers submitted transactions and flushes them as a batch every epoch
/// (or when the batch-size cap is reached). Subclasses implement
/// ExecuteBatch; aborted items can be re-queued into the next batch with
/// Requeue (deterministic protocols never abort).
class BatchProtocol : public Protocol {
 public:
  BatchProtocol(Cluster* cluster, MetricsCollector* metrics,
                size_t max_batch = 10000)
      : Protocol(cluster, metrics), max_batch_(max_batch) {}

  void Start() override { StartEpochTimer(); }

  /// Flushes buffered transactions before halting the epoch timer, so
  /// every submitted transaction's completion still fires.
  void Stop() override {
    Protocol::Stop();
    Flush();
  }

  /// Epoch boundary: flush the buffered batch.
  void OnEpoch(SimTime now) override {
    (void)now;
    Flush();
  }

  void SubmitTxn(TxnPtr txn, TxnDoneFn done) override {
    OnSubmit(*txn);
    buffer_.push_back(Item{std::make_shared<TxnPtr>(std::move(txn)),
                           std::move(done)});
    if (buffer_.size() >= max_batch_) Flush();
  }

 protected:
  struct Item {
    std::shared_ptr<TxnPtr> txn;
    TxnDoneFn done;
  };

  /// Hook: bookkeeping on submission (access recording etc.).
  virtual void OnSubmit(const Transaction& txn) { (void)txn; }

  /// Executes one flushed batch. Items are in submission order.
  virtual void ExecuteBatch(std::vector<Item> batch) = 0;

  /// Completes an item: records the commit and returns ownership.
  void Commit(Item* item) {
    metrics_->OnCommit(**item->txn, cluster_->sim()->Now());
    item->done(std::move(*item->txn));
  }

  /// Re-queues an aborted item into the next batch. After Stop() no epoch
  /// tick remains to pick the retry up, so schedule one more flush an
  /// epoch later — the completion must still fire. (Not synchronous: some
  /// protocols hold locks to the epoch boundary, so an immediate re-flush
  /// would re-conflict forever; a strong event also keeps RunUntilIdle
  /// draining until the retry lands.)
  void Requeue(Item item) {
    metrics_->OnAbort();
    (*item.txn)->ResetForRestart();
    buffer_.push_back(std::move(item));
    if (stopped()) {
      cluster_->sim()->Schedule(cluster_->config().epoch_interval,
                                [this]() { Flush(); });
    }
  }

  /// Commits `item` once the current epoch closes (group visibility).
  void CommitAtEpochEnd(Item* item) {
    SimTime wait_start = cluster_->sim()->Now();
    auto txn = item->txn;
    auto done = item->done;
    cluster_->replication().OnEpochEnd([this, txn, done, wait_start]() {
      (*txn)->breakdown().replication += cluster_->sim()->Now() - wait_start;
      metrics_->OnCommit(**txn, cluster_->sim()->Now());
      done(std::move(*txn));
    });
  }

  void Flush() {
    if (buffer_.empty()) return;
    std::vector<Item> batch;
    batch.swap(buffer_);
    ExecuteBatch(std::move(batch));
  }

  size_t buffered() const { return buffer_.size(); }

 private:
  size_t max_batch_;
  std::vector<Item> buffer_;
};

}  // namespace lion
