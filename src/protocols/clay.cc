#include "protocols/clay.h"

#include <algorithm>

#include "protocols/twopc.h"

#include "harness/registry.h"

namespace lion {

ClayProtocol::ClayProtocol(Cluster* cluster, MetricsCollector* metrics,
                           ClayConfig config)
    : Protocol(cluster, metrics),
      engine_(cluster, metrics),
      config_(config),
      prev_busy_(cluster->num_nodes(), 0),
      monitor_timer_(cluster->sim(), [this](SimTime) { Monitor(); }) {}

void ClayProtocol::Start() {
  stopped_ = false;
  monitor_timer_.Start(config_.monitor_interval);
}

void ClayProtocol::Stop() {
  Protocol::Stop();
  monitor_timer_.Stop();
}

void ClayProtocol::Monitor() {
  // Per-node worker busy time over the last monitoring window.
  int n = cluster_->num_nodes();
  std::vector<double> load(n, 0.0);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    SimTime busy = cluster_->pool(i)->busy_time();
    load[i] = static_cast<double>(busy - prev_busy_[i]);
    prev_busy_[i] = busy;
    total += load[i];
  }
  if (total <= 0.0) return;
  double avg = total / n;
  NodeId hottest = 0, coolest = 0;
  for (NodeId i = 1; i < n; ++i) {
    if (load[i] > load[hottest]) hottest = i;
    if (load[i] < load[coolest]) coolest = i;
  }
  if (load[hottest] <= avg * (1.0 + config_.epsilon)) return;  // balanced

  // Build the migrating clump: the hottest partitions mastered on the
  // overloaded node, each pulled together with its strongest co-accessed
  // partner from recent history.
  std::vector<PartitionId> on_hot = cluster_->router().PrimariesOn(hottest);
  std::sort(on_hot.begin(), on_hot.end(), [this](PartitionId a, PartitionId b) {
    return cluster_->router().RawFrequency(a) > cluster_->router().RawFrequency(b);
  });
  int moved = 0;
  for (PartitionId pid : on_hot) {
    if (moved >= config_.clump_budget) break;
    moved++;
    repartitions_++;
    NodeId target = coolest;
    // Asynchronous replication + remastering (per the paper's Clay setup).
    if (cluster_->router().HasSecondary(target, pid)) {
      cluster_->remaster().Remaster(pid, target, [](bool) {});
    } else {
      cluster_->migration().AddReplica(pid, target, [this, pid, target](bool ok) {
        if (!ok) return;
        cluster_->migration().EvictIfOverLimit(pid, target);
        cluster_->remaster().Remaster(pid, target, [](bool) {});
      });
    }
  }
}

void ClayProtocol::SubmitTxn(TxnPtr txn, TxnDoneFn done) {
  std::vector<PartitionId> parts = txn->Partitions();
  for (PartitionId pid : parts) cluster_->router().RecordAccess(pid);
  history_.push_back(parts);
  if (history_.size() > config_.history_capacity) history_.pop_front();

  NodeId coord = TwoPcProtocol::RouteToMostPrimaries(*txn, cluster_->router());
  Transaction* raw = txn.get();
  auto txn_shared = std::make_shared<TxnPtr>(std::move(txn));
  engine_.Run(raw, coord, TwoPhaseEngine::Options{},
              [this, txn_shared, done](bool committed) {
                if (committed) {
                  metrics_->OnCommit(**txn_shared, cluster_->sim()->Now());
                  done(std::move(*txn_shared));
                } else {
                  RetryAfterBackoff(std::move(*txn_shared), done);
                }
              });
}


// Self-registration: resolving "Clay" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterClayProtocol(
    "Clay", ExecutionMode::kStandard,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<ClayProtocol>(ctx.cluster, ctx.metrics, ctx.config.clay);
    });
}  // namespace

}  // namespace lion
