// Configuration of the runtime meta-protocol (meta.* schema group): the
// candidate child protocols, the flip thresholds the per-epoch decision rule
// applies to forecast load and observed cross-partition ratios, and the
// hysteresis / cost gating that keeps assignments from thrashing.
//
// Standalone (strings only) so harness/experiment_config.h can embed it
// without pulling protocol headers into every config consumer.
#pragma once

#include <string>

namespace lion {

struct MetaConfig {
  /// Child protocol every partition starts on (and cold partitions stay
  /// on). Resolved through ProtocolRegistry; must not be "meta".
  std::string baseline = "2PC";
  /// Child a partition predicted write-hot AND cross-heavy flips to — a
  /// STAR-style single-master batch mode by default.
  std::string single_master = "Star";
  /// Optional WAN candidate for cross-heavy but not write-hot partitions in
  /// multi-region topologies (e.g. "geo_occ"). Empty disables the lane.
  std::string wan;
  /// Normalized forecast load (per-partition forecast / hottest partition)
  /// at or above which a partition counts as write-hot.
  double hot_threshold = 0.5;
  /// Smoothed cross-partition ratio at or above which a partition counts as
  /// cross-heavy.
  double cross_threshold = 0.3;
  /// Consecutive epochs the decision rule must prefer the same non-current
  /// child before a flip is attempted.
  int hysteresis_epochs = 3;
  /// Minimum epochs between flips of the same partition.
  int cooldown_epochs = 10;
  /// Cost gate: a flip fires only when the partition's smoothed
  /// cross-partition load (txns/epoch) reaches cost_gate x the flip's
  /// placement cost (wm, WAN-multiplied across regions). 0 disables gating.
  double cost_gate = 0.05;
  /// EWMA factor for the observed per-partition load / cross-ratio windows.
  double smoothing = 0.3;
};

}  // namespace lion
