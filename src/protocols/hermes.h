// Hermes baseline: deterministic execution + prescient migration.
#pragma once

#include <memory>
#include <vector>

#include "protocols/batch_protocol.h"
#include "sim/worker_pool.h"

namespace lion {

struct HermesConfig {
  /// Lock-manager processing time per lock request.
  SimTime lock_cost_per_op = 2 * kMicrosecond;
};

/// Hermes collects transactions in batches, reorders each batch so that
/// transactions touching the same partitions are adjacent (prescient
/// routing), migrates partitions on demand so each transaction becomes
/// single-home, and then executes deterministically under a single-threaded
/// per-node lock manager. Migration reuse within a batch tames ping-pong,
/// but every workload shift still pays blocking migrations — the jitter of
/// Figs. 8b/10.
class HermesProtocol : public BatchProtocol {
 public:
  HermesProtocol(Cluster* cluster, MetricsCollector* metrics,
                 HermesConfig config = HermesConfig{});

  std::string name() const override { return "Hermes"; }

  uint64_t migrations_requested() const { return migrations_requested_; }

 protected:
  void ExecuteBatch(std::vector<Item> batch) override;

 private:
  void MigrateThenRun(Item item);
  void MigrateNext(std::shared_ptr<Item> item, NodeId dst,
                   std::shared_ptr<std::vector<PartitionId>> missing,
                   size_t index);
  void RunLocal(std::shared_ptr<Item> item, NodeId dst);

  HermesConfig config_;
  std::vector<std::unique_ptr<WorkerPool>> lock_managers_;
  uint64_t migrations_requested_ = 0;
};

}  // namespace lion
