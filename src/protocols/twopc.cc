#include "protocols/twopc.h"

#include <vector>

#include "harness/registry.h"

namespace lion {

TwoPcProtocol::TwoPcProtocol(Cluster* cluster, MetricsCollector* metrics)
    : Protocol(cluster, metrics), engine_(cluster, metrics) {}

NodeId TwoPcProtocol::RouteToMostPrimaries(const Transaction& txn,
                                           const RouterTable& table) {
  std::vector<int> count(table.num_nodes(), 0);
  for (PartitionId pid : txn.Partitions()) count[table.PrimaryOf(pid)]++;
  NodeId best = 0;
  for (NodeId n = 1; n < table.num_nodes(); ++n) {
    if (count[n] > count[best]) best = n;
  }
  return best;
}

void TwoPcProtocol::SubmitTxn(TxnPtr txn, TxnDoneFn done) {
  NodeId coord = RouteToMostPrimaries(*txn, cluster_->router());
  for (PartitionId pid : txn->Partitions()) {
    cluster_->router().RecordAccess(pid);
  }
  Transaction* raw = txn.get();
  auto txn_shared = std::make_shared<TxnPtr>(std::move(txn));
  TwoPhaseEngine::Options opts;
  engine_.Run(raw, coord, opts, [this, txn_shared, done](bool committed) {
    if (committed) {
      metrics_->OnCommit(**txn_shared, cluster_->sim()->Now());
      done(std::move(*txn_shared));
    } else {
      RetryAfterBackoff(std::move(*txn_shared), done);
    }
  });
}


// Self-registration: resolving "2PC" through ProtocolRegistry needs no
// harness edits (see harness/registry.h).
namespace {
const ProtocolRegistrar kRegisterTwoPcProtocol(
    "2PC", ExecutionMode::kStandard,
    [](const ProtocolContext& ctx) -> std::unique_ptr<Protocol> {
      return std::make_unique<TwoPcProtocol>(ctx.cluster, ctx.metrics);
    });
}  // namespace

}  // namespace lion
