// Deterministic random number generation for reproducible simulations.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace lion {

/// PCG32 generator. Small, fast, and fully deterministic across platforms,
/// which keeps every simulated experiment reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform 32-bit value.
  uint32_t Next();

  /// Uniform 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index according to the (non-negative) weights given.
  /// Returns 0 if all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Opaque snapshot of the generator position, equal iff the same number
  /// of draws happened since seeding. Lets stream-discipline asserts verify
  /// that a code path did not draw from a stream it must not touch.
  uint64_t StateFingerprint() const { return state_; }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipfian distribution over [0, n) with parameter theta, using the
/// Gray et al. rejection-free method popularized by YCSB.
///
/// theta = 0 degenerates to uniform; theta -> 1 concentrates mass on low
/// indices. The generator precomputes zeta(n, theta) once per (n, theta).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  /// Draws the next zipfian-distributed index in [0, n).
  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace lion
