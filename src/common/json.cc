#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lion {

namespace {

/// Shortest decimal form that strtod's back to the same double, so emitted
/// configs survive a parse round trip bit-exactly. JSON has no non-finite
/// literals: infinities emit as over-range decimals (which strtod reads
/// back as +/-inf), NaN emits as null so a later parse fails loudly
/// instead of smuggling garbage through.
std::string FormatDouble(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

bool LexemeIsIntegral(const std::string& lexeme) {
  return lexeme.find_first_of(".eE") == std::string::npos;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Status ParseDocument(Json* out) {
    SkipWhitespace();
    Status s = ParseValue(out, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters after value");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 100;

  Status Error(const std::string& msg) const {
    // Position as line:column, both 1-based, for hand-edited config files.
    int line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        line++;
        col = 1;
      } else {
        col++;
      }
    }
    return Status::InvalidArgument("json parse error at " +
                                   std::to_string(line) + ":" +
                                   std::to_string(col) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      pos_++;
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(const char* literal) {
    size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (Eof()) return Error("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = Json::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (Consume("true")) {
          *out = Json::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (Consume("false")) {
          *out = Json::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (Consume("null")) {
          *out = Json::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default: return ParseNumber(out);
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (!Eof() && Peek() == '-') pos_++;
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos_ = start;
      return Error("invalid value");
    }
    if (Peek() == '0') {
      pos_++;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) pos_++;
    }
    if (!Eof() && Peek() == '.') {
      pos_++;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek())))
        return Error("digit expected after decimal point");
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) pos_++;
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      pos_++;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) pos_++;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek())))
        return Error("digit expected in exponent");
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) pos_++;
    }
    // Keep the lexeme verbatim; typed accessors convert on demand.
    *out = Json::RawNumber(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return Error("invalid \\u escape");
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    pos_++;  // opening quote
    out->clear();
    for (;;) {
      if (Eof()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20)
        return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (Eof()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          Status s = ParseHex4(&cp);
          if (!s.ok()) return s;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return Error("unpaired surrogate");
            pos_ += 2;
            unsigned low = 0;
            s = ParseHex4(&low);
            if (!s.ok()) return s;
            if (low < 0xDC00 || low > 0xDFFF)
              return Error("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default: return Error("invalid escape character");
      }
    }
  }

  Status ParseArray(Json* out, int depth) {
    pos_++;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (!Eof() && Peek() == ']') {
      pos_++;
      return Status::OK();
    }
    for (;;) {
      Json item;
      Status s = ParseValue(&item, depth + 1);
      if (!s.ok()) return s;
      out->Add(std::move(item));
      SkipWhitespace();
      if (Eof()) return Error("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return Status::OK();
      if (c != ',') {
        pos_--;
        return Error("',' or ']' expected in array");
      }
      SkipWhitespace();
    }
  }

  Status ParseObject(Json* out, int depth) {
    pos_++;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (!Eof() && Peek() == '}') {
      pos_++;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (Eof() || Peek() != '"') return Error("member name expected");
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      if (out->Find(key) != nullptr)
        return Error("duplicate key \"" + key + "\"");
      SkipWhitespace();
      if (Eof() || text_[pos_] != ':') return Error("':' expected");
      pos_++;
      SkipWhitespace();
      Json value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Eof()) return Error("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return Status::OK();
      if (c != ',') {
        pos_--;
        return Error("',' or '}' expected in object");
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool b) {
  Json v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Json Json::Int(int64_t value) {
  Json v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

Json Json::Uint(uint64_t value) {
  Json v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

Json Json::Double(double value) {
  Json v;
  v.type_ = Type::kNumber;
  v.scalar_ = FormatDouble(value);
  return v;
}

Json Json::RawNumber(std::string lexeme) {
  Json v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::move(lexeme);
  return v;
}

Json Json::Str(std::string s) {
  Json v;
  v.type_ = Type::kString;
  v.scalar_ = std::move(s);
  return v;
}

Json Json::Array() {
  Json v;
  v.type_ = Type::kArray;
  return v;
}

Json Json::Object() {
  Json v;
  v.type_ = Type::kObject;
  return v;
}

Status Json::GetBool(bool* out) const {
  if (type_ != Type::kBool)
    return Status::InvalidArgument(std::string("expected bool, got ") +
                                   JsonTypeName(type_));
  *out = bool_;
  return Status::OK();
}

Status Json::GetDouble(double* out) const {
  if (type_ != Type::kNumber)
    return Status::InvalidArgument(std::string("expected number, got ") +
                                   JsonTypeName(type_));
  *out = std::strtod(scalar_.c_str(), nullptr);
  return Status::OK();
}

Status Json::GetInt64(int64_t* out) const {
  if (type_ != Type::kNumber)
    return Status::InvalidArgument(std::string("expected integer, got ") +
                                   JsonTypeName(type_));
  if (!LexemeIsIntegral(scalar_))
    return Status::InvalidArgument("expected integer, got " + scalar_);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar_.c_str() + scalar_.size())
    return Status::InvalidArgument(scalar_ + " out of int64 range");
  *out = v;
  return Status::OK();
}

Status Json::GetUint64(uint64_t* out) const {
  if (type_ != Type::kNumber)
    return Status::InvalidArgument(std::string("expected integer, got ") +
                                   JsonTypeName(type_));
  if (!LexemeIsIntegral(scalar_) || (!scalar_.empty() && scalar_[0] == '-'))
    return Status::InvalidArgument("expected unsigned integer, got " +
                                   scalar_);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar_.c_str() + scalar_.size())
    return Status::InvalidArgument(scalar_ + " out of uint64 range");
  *out = v;
  return Status::OK();
}

const Json* Json::Find(const std::string& key) const {
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Json::Add(Json v) { items_.push_back(std::move(v)); }

void Json::Set(std::string key, Json v) {
  members_.emplace_back(std::move(key), std::move(v));
}

std::string Json::Dump() const {
  std::string out;
  AppendTo(&out);
  return out;
}

void Json::AppendTo(std::string* out) const {
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: *out += scalar_; break;
    case Type::kString: AppendEscaped(out, scalar_); break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        items_[i].AppendTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendEscaped(out, members_[i].first);
        out->push_back(':');
        members_[i].second.AppendTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

Status Json::Parse(const std::string& text, Json* out) {
  return Parser(text).ParseDocument(out);
}

Status Json::ParseFile(const std::string& path, Json* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("cannot read " + path);
  Status s = Parse(text, out);
  if (!s.ok())
    return Status::InvalidArgument(path + ": " + s.message());
  return s;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

const char* JsonTypeName(Json::Type type) {
  switch (type) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "unknown";
}

}  // namespace lion
