// Move-only type-erased callable, for closures that capture unique_ptrs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <type_traits>
#include <utility>

namespace lion {

template <typename Signature>
class MoveFn;

/// Drop-in replacement for std::function on paths whose closures need to
/// capture move-only state (TxnPtr, unique_ptr-owned batches). Unlike
/// std::function it never requires the target to be copyable, so scheduler
/// callbacks can own their transaction outright instead of smuggling it
/// through a shared_ptr shim.
template <typename R, typename... Args>
class MoveFn<R(Args...)> {
 public:
  MoveFn() = default;
  MoveFn(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  MoveFn(F&& fn)  // NOLINT: implicit, mirrors std::function
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(fn))) {}

  MoveFn(MoveFn&&) = default;
  MoveFn& operator=(MoveFn&&) = default;
  MoveFn(const MoveFn&) = delete;
  MoveFn& operator=(const MoveFn&) = delete;

  R operator()(Args... args) {
    if (impl_ == nullptr) {
      // Mirror std::function's bad_function_call diagnosability without
      // exceptions: fail loudly at the call, not as a remote segfault.
      std::fprintf(stderr, "fatal: invoking an empty MoveFn\n");
      std::abort();
    }
    return impl_->Invoke(std::forward<Args>(args)...);
  }

  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R Invoke(Args...) = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F f) : fn(std::move(f)) {}
    R Invoke(Args... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace lion
