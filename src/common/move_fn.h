// Move-only type-erased callable, for closures that capture unique_ptrs.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace lion {

template <typename Signature>
class MoveFn;

/// Drop-in replacement for std::function on paths whose closures need to
/// capture move-only state (TxnPtr, unique_ptr-owned batches). Unlike
/// std::function it never requires the target to be copyable, so scheduler
/// callbacks can own their transaction outright instead of smuggling it
/// through a shared_ptr shim.
///
/// Targets up to kInlineBytes (with compatible alignment and a noexcept
/// move constructor) live in an inline small buffer: constructing,
/// invoking, and destroying such a MoveFn never touches the allocator.
/// This is the simulator's per-event hot path — a typical scheduler
/// closure (`this` + TxnPtr + completion callback ≈ 48 bytes) stays
/// inline, so scheduling an event is allocation-free. Fat closures fall
/// back to one heap allocation, exactly like the old unique_ptr design.
/// Dispatch is a three-entry static vtable (invoke / relocate / destroy)
/// instead of a virtual base, which keeps the empty state a null pointer
/// and relocation a single indirect call.
template <typename R, typename... Args>
class MoveFn<R(Args...)> {
 public:
  /// Small-buffer capacity. Sized for the repo's scheduler closures; bump
  /// deliberately — every Event in the simulator heap carries this buffer.
  static constexpr size_t kInlineBytes = 48;

  MoveFn() = default;
  MoveFn(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  MoveFn(F&& fn) {  // NOLINT: implicit, mirrors std::function
    using Target = std::decay_t<F>;
    if constexpr (kFitsInline<Target>) {
      ::new (static_cast<void*>(storage_)) Target(std::forward<F>(fn));
      vtable_ = &InlineOps<Target>::kVtable;
    } else {
      ::new (static_cast<void*>(storage_))
          Target*(new Target(std::forward<F>(fn)));
      vtable_ = &HeapOps<Target>::kVtable;
    }
  }

  MoveFn(MoveFn&& other) noexcept { MoveFrom(other); }

  MoveFn& operator=(MoveFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  MoveFn(const MoveFn&) = delete;
  MoveFn& operator=(const MoveFn&) = delete;

  ~MoveFn() { Reset(); }

  R operator()(Args... args) {
    if (vtable_ == nullptr) {
      // Mirror std::function's bad_function_call diagnosability without
      // exceptions: fail loudly at the call, not as a remote segfault.
      std::fprintf(stderr, "fatal: invoking an empty MoveFn\n");
      std::abort();
    }
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  /// True iff the current target lives in the small buffer (test hook for
  /// the allocation-free guarantee). An empty MoveFn reports false.
  bool uses_inline_storage() const {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  struct VTable {
    R (*invoke)(void* target, Args&&... args);
    /// Move-constructs the target into `dst` and destroys it in `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* target) noexcept;
    bool inline_storage;
  };

  // The noexcept-move requirement keeps MoveFn's own move operations
  // noexcept (the simulator's event heap relies on that for std::push_heap
  // correctness under reallocation).
  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static R Invoke(void* target, Args&&... args) {
      return (*static_cast<F*>(target))(std::forward<Args>(args)...);
    }
    static void Relocate(void* src, void* dst) noexcept {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* target) noexcept {
      static_cast<F*>(target)->~F();
    }
    static constexpr VTable kVtable{&Invoke, &Relocate, &Destroy,
                                    /*inline_storage=*/true};
  };

  template <typename F>
  struct HeapOps {
    static F* Ptr(void* slot) { return *static_cast<F**>(slot); }
    static R Invoke(void* slot, Args&&... args) {
      return (*Ptr(slot))(std::forward<Args>(args)...);
    }
    static void Relocate(void* src, void* dst) noexcept {
      ::new (dst) F*(Ptr(src));  // ownership transfers with the pointer
    }
    static void Destroy(void* slot) noexcept { delete Ptr(slot); }
    static constexpr VTable kVtable{&Invoke, &Relocate, &Destroy,
                                    /*inline_storage=*/false};
  };

  void MoveFrom(MoveFn& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(other.storage_, storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace lion
