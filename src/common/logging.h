// Minimal leveled logging for the simulator. Off by default in benchmarks.
#pragma once

#include <cstdio>

namespace lion {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are suppressed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
const char* LevelName(LogLevel level);
}  // namespace internal

}  // namespace lion

// Usage: LION_LOG(kInfo, "planner moved %d clumps", n);
#define LION_LOG(level, ...)                                                    \
  do {                                                                          \
    if (static_cast<int>(::lion::LogLevel::level) >=                            \
        static_cast<int>(::lion::GetLogLevel())) {                              \
      std::fprintf(stderr, "[%s] ",                                             \
                   ::lion::internal::LevelName(::lion::LogLevel::level));       \
      std::fprintf(stderr, __VA_ARGS__);                                        \
      std::fprintf(stderr, "\n");                                               \
    }                                                                           \
  } while (0)
