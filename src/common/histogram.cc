#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lion {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      min_(std::numeric_limits<int64_t>::max()),
      max_(std::numeric_limits<int64_t>::min()),
      sum_(0.0) {}

int64_t Histogram::BucketLow(size_t index) {
  if (index < kSubBuckets) return static_cast<int64_t>(index);
  size_t msb = index / kSubBuckets;
  size_t offset = index % kSubBuckets;
  uint64_t base = 1ULL << msb;
  return static_cast<int64_t>(base + (offset << (msb - 4)));
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketLow(i), min_, max_);
    }
  }
  return max_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = std::numeric_limits<int64_t>::min();
  sum_ = 0.0;
}

}  // namespace lion
