// Minimal JSON document model + parser for configuration round-tripping.
//
// Numbers keep their source lexeme and are re-emitted verbatim, so
// parse→emit is lossless for any 64-bit integer or shortest-form double — a
// property the config schema layer (harness/config_schema.h) relies on for
// exact ExperimentConfig round trips. The parser is a strict RFC 8259
// subset: UTF-8 input, \uXXXX escapes (incl. surrogate pairs), duplicate
// object keys rejected, trailing garbage rejected, errors reported as
// Status with line:column positions. No external dependency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lion {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() : type_(Type::kNull) {}

  // --- construction ---------------------------------------------------------
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t v);
  static Json Uint(uint64_t v);
  /// Shortest decimal lexeme that parses back to exactly `v`.
  static Json Double(double v);
  /// Number from an already-validated lexeme (parser + schema use; the
  /// caller vouches that `lexeme` matches the JSON number grammar).
  static Json RawNumber(std::string lexeme);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // --- checked scalar access -------------------------------------------------
  /// Type mismatches come back as kInvalidArgument ("expected number, got
  /// string"); integer accessors additionally reject fractional/exponent
  /// lexemes and out-of-range magnitudes.
  Status GetBool(bool* out) const;
  Status GetDouble(double* out) const;
  Status GetInt64(int64_t* out) const;
  Status GetUint64(uint64_t* out) const;

  /// String payload; valid only when is_string().
  const std::string& str() const { return scalar_; }
  /// Source (or emitted) lexeme; valid only when is_number().
  const std::string& number_lexeme() const { return scalar_; }

  // --- containers ------------------------------------------------------------
  const std::vector<Json>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }
  /// Object member lookup; nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;

  /// Appends to an array value.
  void Add(Json v);
  /// Appends a member to an object value (duplicate keys are the caller's
  /// bug; the parser never produces them).
  void Set(std::string key, Json v);

  // --- serialization ---------------------------------------------------------
  /// Compact form: no whitespace, members in stored order.
  std::string Dump() const;
  void AppendTo(std::string* out) const;

  /// Parses one complete document from `text`.
  static Status Parse(const std::string& text, Json* out);
  /// Reads `path` fully and parses it; read failures are kNotFound.
  static Status ParseFile(const std::string& path, Json* out);

 private:
  Type type_;
  bool bool_ = false;
  std::string scalar_;  // number lexeme or string payload
  std::vector<Json> items_;
  std::vector<Member> members_;
};

/// Lower-case type name ("number", "object", ...) for error messages.
const char* JsonTypeName(Json::Type type);

/// Appends `s` to `*out` with JSON string escaping (quotes, backslashes,
/// control characters) but without the surrounding quotes — the shared
/// escaper for every hand-assembled JSON emitter (Json::Dump, the sweep
/// merger, result ToJson labels).
void AppendJsonEscaped(std::string* out, const std::string& s);

}  // namespace lion
