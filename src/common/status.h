// Status-based error handling (no exceptions), following the RocksDB/Arrow
// convention for database libraries.
#pragma once

#include <string>
#include <utility>

namespace lion {

/// Lightweight result of an operation that can fail.
///
/// Library code returns Status instead of throwing; callers must check `ok()`.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kAlreadyExists,
    kInvalidArgument,
    kFailedPrecondition,
    kAborted,
    kUnavailable,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsFailedPrecondition() const { return code_ == Code::kFailedPrecondition; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Stable identifier ("OK", "NOT_FOUND", ...) for a status code — the one
/// switch shared by Status::ToString and every JSON emitter.
const char* StatusCodeName(Status::Code code);

}  // namespace lion
