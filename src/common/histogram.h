// Latency histogram with percentile extraction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace lion {

/// Log-bucketed histogram for latency-like quantities (nanoseconds).
///
/// Buckets grow geometrically (~4% relative error), so percentile queries are
/// cheap and memory use is constant regardless of sample count.
///
/// Record() runs once per transaction (latency, phase breakdowns), so the
/// whole per-sample path is inline and O(1): bucket selection is a single
/// bit-scan (count-leading-zeros) plus shifts — no loops, no out-of-line
/// call.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative samples are clamped to zero.
  void Record(int64_t value) {
    if (value < 0) value = 0;
    buckets_[BucketFor(value)]++;
    count_++;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value);
  }

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Returns the value at quantile q in [0, 1]; 0 if empty.
  int64_t Percentile(double q) const;

  int64_t Min() const { return count_ == 0 ? 0 : min_; }
  int64_t Max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  uint64_t Count() const { return count_; }

  void Reset();

 private:
  // 16 sub-buckets per power of two covers the int64 range in 64*16 buckets.
  static constexpr size_t kSubBuckets = 16;
  static constexpr size_t kNumBuckets = 64 * kSubBuckets;

  static size_t BucketFor(int64_t value) {
    uint64_t v = static_cast<uint64_t>(value < 0 ? 0 : value);
    if (v < kSubBuckets) return static_cast<size_t>(v);
    int msb = 63 - __builtin_clzll(v);  // bit-scan: O(1) per sample
    // Position within the power-of-two range, quantized to kSubBuckets slots.
    uint64_t offset = (v - (1ULL << msb)) >> (msb - 4);
    size_t idx =
        static_cast<size_t>(msb) * kSubBuckets + static_cast<size_t>(offset);
    return std::min(idx, kNumBuckets - 1);
  }
  static int64_t BucketLow(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
};

}  // namespace lion
