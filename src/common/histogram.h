// Latency histogram with percentile extraction.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace lion {

/// Log-bucketed histogram for latency-like quantities (nanoseconds).
///
/// Buckets grow geometrically (~4% relative error), so percentile queries are
/// cheap and memory use is constant regardless of sample count.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative samples are clamped to zero.
  void Record(int64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Returns the value at quantile q in [0, 1]; 0 if empty.
  int64_t Percentile(double q) const;

  int64_t Min() const { return count_ == 0 ? 0 : min_; }
  int64_t Max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  uint64_t Count() const { return count_; }

  void Reset();

 private:
  static size_t BucketFor(int64_t value);
  static int64_t BucketLow(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
};

}  // namespace lion
