#include "common/status.h"

namespace lion {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kAborted:
      return "ABORTED";
    case Status::Code::kUnavailable:
      return "UNAVAILABLE";
    case Status::Code::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lion
