// Recycled slot storage for in-flight values referenced by index.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace lion {

/// Parks values in a slab and hands out stable uint32 indices, recycling
/// freed slots so the steady state allocates nothing. Shared by the
/// simulator's event queue and the worker pool, which both park a move-only
/// callback per in-flight item and reference it from a small POD (heap
/// entry, completion closure) instead of carrying it around.
///
/// Invariant the callers rely on: Take() moves the value out and frees the
/// slot *before* the caller runs it, because running it may Park() again
/// and legitimately recycle the same slot.
template <typename T>
class SlotPool {
 public:
  /// Stores `value` and returns its slot index.
  uint32_t Park(T value) {
    if (!free_.empty()) {
      uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(value);
      return slot;
    }
    uint32_t slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(value));
    return slot;
  }

  /// Moves the value out of `slot` and recycles the slot.
  T Take(uint32_t slot) {
    T value = std::move(slots_[slot]);
    free_.push_back(slot);
    return value;
  }

  void Reserve(size_t n) {
    slots_.reserve(n);
    free_.reserve(n);
  }

  /// Number of currently parked values. Owners that mirror the pool with
  /// their own pending count (the simulator's schedulers, the worker pool)
  /// assert against this to catch leaked or double-taken slots.
  size_t in_use() const { return slots_.size() - free_.size(); }

 private:
  std::vector<T> slots_;
  std::vector<uint32_t> free_;
};

}  // namespace lion
