// Core scalar types and time units shared across the Lion codebase.
#pragma once

#include <cstdint>

namespace lion {

/// Identifies an executor node in the cluster. Negative values are invalid.
using NodeId = int32_t;

/// Identifies a horizontal data partition. Negative values are invalid.
using PartitionId = int32_t;

/// Globally unique transaction identifier (assigned by the driver).
using TxnId = uint64_t;

/// Flat record key. Workloads map (table, primary key) pairs into this space.
using Key = uint64_t;

/// Record payload. Only 8 bytes are materialized; the configured record size
/// is used for all byte accounting (network, migration).
using Value = uint64_t;

/// Monotonic per-record version, bumped on every committed write.
using Version = uint64_t;

/// Log sequence number within a partition's replication log.
using Lsn = uint64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PartitionId kInvalidPartition = -1;

/// Simulated time in nanoseconds.
using SimTime = int64_t;

inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Converts simulated time to fractional seconds (for reporting only).
inline double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }

}  // namespace lion
