#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace lion {

Rng::Rng(uint64_t seed) : state_(0), inc_((seed << 1u) | 1u) {
  Next();
  state_ += 0x9e3779b97f4a7c15ULL + seed;
  Next();
}

uint32_t Rng::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::Next64() {
  return (static_cast<uint64_t>(Next()) << 32) | Next();
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  return Next64() % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next()) / 4294967296.0;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  if (theta_ <= 0.0) {
    // Uniform fallback; the remaining members are unused.
    alpha_ = zetan_ = eta_ = zeta2theta_ = 0.0;
    return;
  }
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng* rng) {
  if (theta_ <= 0.0) {
    return rng->Uniform(n_);
  }
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace lion
