// Fixed-capacity sliding window over doubles with O(1) append.
#pragma once

#include <cstddef>
#include <vector>

namespace lion {

/// A bounded FIFO window: Push appends, and once `capacity` values are held
/// the oldest is evicted — in O(1), unlike vector::erase(begin()) which
/// shifts the whole window. Logical index 0 is always the oldest retained
/// value. Used for the per-template arrival-rate histories, where one closed
/// sampling interval appends to every tracked template.
class RingWindow {
 public:
  RingWindow() = default;
  explicit RingWindow(size_t capacity) { Reset(capacity); }

  /// Sets the capacity and clears the contents.
  void Reset(size_t capacity) {
    data_.assign(capacity, 0.0);
    start_ = 0;
    size_ = 0;
  }

  size_t capacity() const { return data_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends `v`; evicts the oldest value when full. No-op at capacity 0.
  void Push(double v) {
    if (data_.empty()) return;
    if (size_ < data_.size()) {
      data_[(start_ + size_) % data_.size()] = v;
      size_++;
    } else {
      data_[start_] = v;
      start_ = (start_ + 1) % data_.size();
    }
  }

  /// Value at logical index `i` (0 = oldest retained).
  double operator[](size_t i) const {
    return data_[(start_ + i) % data_.size()];
  }

  /// Materializes the window oldest-first into `out` (resized to size()).
  void CopyTo(std::vector<double>* out) const {
    out->resize(size_);
    for (size_t i = 0; i < size_; ++i) (*out)[i] = (*this)[i];
  }

 private:
  std::vector<double> data_;
  size_t start_ = 0;
  size_t size_ = 0;
};

}  // namespace lion
