#include "common/logging.h"

namespace lion {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace internal
}  // namespace lion
