#include "workload/dynamic.h"

#include "harness/registry.h"

namespace lion {

DynamicYcsbWorkload::DynamicYcsbWorkload(const ClusterConfig& cluster,
                                         std::vector<DynamicPhase> phases,
                                         bool cycle)
    : phases_(std::move(phases)), total_(0), cycle_(cycle) {
  for (const DynamicPhase& p : phases_) {
    generators_.push_back(std::make_unique<YcsbWorkload>(cluster, p.ycsb));
    total_ += p.duration;
  }
}

size_t DynamicYcsbWorkload::PhaseAt(SimTime now) const {
  SimTime t = now;
  if (cycle_ && total_ > 0) t = now % total_;
  SimTime acc = 0;
  for (size_t i = 0; i < phases_.size(); ++i) {
    acc += phases_[i].duration;
    if (t < acc) return i;
  }
  return phases_.size() - 1;
}

TxnPtr DynamicYcsbWorkload::Next(TxnId id, SimTime now, Rng* rng) {
  return generators_[PhaseAt(now)]->Next(id, now, rng);
}

std::vector<DynamicPhase> DynamicYcsbWorkload::HotspotInterval(
    const ClusterConfig& cluster, SimTime period) {
  // Three custom queries, uniform access; the partition-ID interval of each
  // query is fixed within a period and shifts across periods.
  std::vector<DynamicPhase> phases;
  int m = cluster.total_partitions();
  for (int i = 0; i < 3; ++i) {
    DynamicPhase p;
    p.ycsb.cross_ratio = 1.0;
    p.ycsb.skew_factor = 0.0;
    p.ycsb.partition_offset = (i * m) / 3;
    p.duration = period;
    phases.push_back(p);
  }
  return phases;
}

std::vector<DynamicPhase> DynamicYcsbWorkload::HotspotPosition(
    const ClusterConfig& cluster, SimTime period) {
  std::vector<DynamicPhase> phases;
  // A: uniform, 50% cross.
  DynamicPhase a;
  a.ycsb.cross_ratio = 0.5;
  a.duration = period;
  phases.push_back(a);
  // B: skew, 50% cross.
  DynamicPhase b;
  b.ycsb.cross_ratio = 0.5;
  b.ycsb.skew_factor = 0.8;
  b.duration = period;
  phases.push_back(b);
  // C: skew, 100% cross.
  DynamicPhase c;
  c.ycsb.cross_ratio = 1.0;
  c.ycsb.skew_factor = 0.8;
  c.duration = period;
  phases.push_back(c);
  // D: skew, 100% cross, shifted key distribution (partition-ID offset).
  DynamicPhase d;
  d.ycsb.cross_ratio = 1.0;
  d.ycsb.skew_factor = 0.8;
  d.ycsb.partition_offset = cluster.total_partitions() / 2;
  d.duration = period;
  phases.push_back(d);
  return phases;
}


namespace {
const WorkloadRegistrar kRegisterHotspotInterval(
    "ycsb-hotspot-interval",
    [](const WorkloadContext& ctx) -> std::unique_ptr<WorkloadGenerator> {
      return std::make_unique<DynamicYcsbWorkload>(
          ctx.config.cluster,
          DynamicYcsbWorkload::HotspotInterval(ctx.config.cluster,
                                               ctx.config.dynamic_period));
    });
const WorkloadRegistrar kRegisterHotspotPosition(
    "ycsb-hotspot-position",
    [](const WorkloadContext& ctx) -> std::unique_ptr<WorkloadGenerator> {
      return std::make_unique<DynamicYcsbWorkload>(
          ctx.config.cluster,
          DynamicYcsbWorkload::HotspotPosition(ctx.config.cluster,
                                               ctx.config.dynamic_period));
    });
}  // namespace

}  // namespace lion
