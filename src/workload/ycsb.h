// YCSB-style transactional workload (Sec. VI-A1).
#pragma once

#include <memory>

#include "replication/cluster_config.h"
#include "workload/workload.h"

namespace lion {

/// YCSB parameters. The paper's skew_factor controls how often a
/// transaction's home partition falls inside the hot node's partition set
/// (0.8 => 80% of transactions target one node); cross-partition
/// transactions always touch exactly two partitions, the second residing on
/// a different (initial-placement) node.
/// How cross-partition transactions choose their second partition.
enum class CrossPattern {
  /// Stable disjoint pairing: partition 2i co-accesses partition 2i+1
  /// (after offset rotation). Under round-robin placement the pair spans
  /// two nodes, so it is distributed until a protocol co-locates it. This
  /// mirrors the structured co-access the paper's workloads exhibit
  /// (fixed partition-ID intervals per period, customer/warehouse affinity).
  kPaired,
  /// Fully random second partition on another node (no stable structure).
  kRandomNode,
};

struct YcsbConfig {
  int ops_per_txn = 10;
  CrossPattern cross_pattern = CrossPattern::kPaired;
  /// Fraction of transactions accessing two partitions on different nodes.
  double cross_ratio = 0.0;
  /// Fraction of transactions whose home partition is on the hot node.
  double skew_factor = 0.0;
  /// Zipfian theta over keys within a partition (0 = uniform).
  double zipf_theta = 0.0;
  /// Per-operation probability of being a write.
  double write_ratio = 0.1;
  /// The node whose (initial) partitions form the hotspot.
  NodeId hot_node = 0;
  /// Rotates the partition space: partition p behaves as (p + offset) mod m.
  /// Dynamic scenarios shift this to move hotspots (Sec. VI-C2).
  int partition_offset = 0;
};

/// Generates YCSB transactions over the cluster's partition space. The
/// "home node" of a partition is its initial round-robin node (p mod n), so
/// workload skew is independent of any placement changes protocols make.
class YcsbWorkload : public WorkloadGenerator {
 public:
  YcsbWorkload(const ClusterConfig& cluster, const YcsbConfig& config);

  std::string name() const override { return "ycsb"; }
  TxnPtr Next(TxnId id, SimTime now, Rng* rng) override;

  /// Live knobs used by the dynamic-workload wrappers.
  YcsbConfig& config() { return config_; }

 private:
  PartitionId PickHomePartition(Rng* rng) const;
  PartitionId PickRemotePartition(PartitionId home, Rng* rng) const;
  Key PickKey(Rng* rng);

  int num_nodes_;
  int total_partitions_;
  uint64_t records_per_partition_;
  YcsbConfig config_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

}  // namespace lion
