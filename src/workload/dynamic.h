// Dynamic workloads with shifting hotspots (Sec. VI-C2).
#pragma once

#include <memory>
#include <vector>

#include "workload/ycsb.h"

namespace lion {

/// One phase of a dynamic scenario: a YCSB configuration active for
/// `duration` of simulated time.
struct DynamicPhase {
  YcsbConfig ycsb;
  SimTime duration = 5 * kSecond;
};

/// Cycles through YCSB phases over simulated time, changing access patterns
/// at each boundary (non-overlapping hotspots per the paper's setup).
class DynamicYcsbWorkload : public WorkloadGenerator {
 public:
  DynamicYcsbWorkload(const ClusterConfig& cluster,
                      std::vector<DynamicPhase> phases, bool cycle = true);

  std::string name() const override { return "ycsb-dynamic"; }
  TxnPtr Next(TxnId id, SimTime now, Rng* rng) override;

  /// Index of the phase active at `now`.
  size_t PhaseAt(SimTime now) const;

  size_t num_phases() const { return phases_.size(); }

  /// The scenario of Fig. 8a/10a: uniform access whose partition-ID
  /// interval shifts every `period` (three custom queries).
  static std::vector<DynamicPhase> HotspotInterval(const ClusterConfig& cluster,
                                                   SimTime period);

  /// The scenario of Fig. 8b/10b: periods A (uniform, 50% cross),
  /// B (skew, 50%), C (skew, 100%), D (skew, 100%, shifted distribution).
  static std::vector<DynamicPhase> HotspotPosition(const ClusterConfig& cluster,
                                                   SimTime period);

 private:
  std::vector<DynamicPhase> phases_;
  std::vector<std::unique_ptr<YcsbWorkload>> generators_;
  SimTime total_;
  bool cycle_;
};

}  // namespace lion
