#include "workload/ycsb.h"

#include <cassert>

#include "harness/registry.h"

namespace lion {

YcsbWorkload::YcsbWorkload(const ClusterConfig& cluster, const YcsbConfig& config)
    : num_nodes_(cluster.num_nodes),
      total_partitions_(cluster.total_partitions()),
      records_per_partition_(cluster.records_per_partition),
      config_(config) {
  if (config_.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfianGenerator>(records_per_partition_,
                                               config_.zipf_theta);
  }
}

PartitionId YcsbWorkload::PickHomePartition(Rng* rng) const {
  int partitions_per_node = total_partitions_ / num_nodes_;
  PartitionId base;
  if (config_.skew_factor > 0.0 && rng->Bernoulli(config_.skew_factor)) {
    // Hot: one of the partitions initially placed on hot_node.
    int idx = static_cast<int>(rng->Uniform(partitions_per_node));
    base = config_.hot_node + idx * num_nodes_;
  } else {
    base = static_cast<PartitionId>(rng->Uniform(total_partitions_));
  }
  return base;  // offset applies after pairing (see Next)
}

PartitionId YcsbWorkload::PickRemotePartition(PartitionId home, Rng* rng) const {
  if (config_.cross_pattern == CrossPattern::kPaired) {
    // Disjoint stable pairs 2i <-> 2i+1 in the pre-offset space.
    PartitionId partner = home ^ 1;
    if (partner >= total_partitions_) partner = home - 1;
    if (partner != home) return partner;
  }
  // A partition whose initial node differs from home's initial node.
  int home_node = home % num_nodes_;
  for (int attempt = 0; attempt < 64; ++attempt) {
    PartitionId p = static_cast<PartitionId>(rng->Uniform(total_partitions_));
    if (p % num_nodes_ != home_node) return p;
  }
  return (home + 1) % total_partitions_;  // single-node clusters
}

Key YcsbWorkload::PickKey(Rng* rng) {
  if (zipf_ != nullptr) return zipf_->Next(rng);
  return rng->Uniform(records_per_partition_);
}

TxnPtr YcsbWorkload::Next(TxnId id, SimTime now, Rng* rng) {
  auto txn = std::make_unique<Transaction>(id, now);
  PartitionId home = PickHomePartition(rng);
  bool cross = config_.cross_ratio > 0.0 && rng->Bernoulli(config_.cross_ratio);
  PartitionId second = cross ? PickRemotePartition(home, rng) : home;
  // The offset rotates the whole partition space (dynamic hotspot shifts).
  home = (home + config_.partition_offset) % total_partitions_;
  second = (second + config_.partition_offset) % total_partitions_;

  int n = config_.ops_per_txn;
  txn->ops().reserve(n);
  for (int i = 0; i < n; ++i) {
    Operation op;
    // Cross-partition transactions split their accesses across the two
    // involved partitions (first half home, second half remote).
    op.partition = (cross && i >= n / 2) ? second : home;
    op.key = PickKey(rng);
    // Avoid intra-txn duplicate keys on the same partition (re-draw on
    // collision, bounded: a nudge can itself collide under heavy zipf skew).
    for (int guard = 0; guard < 64; ++guard) {
      bool dup = false;
      for (const auto& prev : txn->ops()) {
        if (prev.partition == op.partition && prev.key == op.key) {
          dup = true;
          break;
        }
      }
      if (!dup) break;
      op.key = (op.key + 1 + rng->Uniform(16)) % records_per_partition_;
    }
    if (rng->Bernoulli(config_.write_ratio)) {
      op.type = OpType::kWrite;
      op.write_value = rng->Next64();
    } else {
      op.type = OpType::kRead;
    }
    txn->ops().push_back(op);
  }
  return txn;
}


namespace {
const WorkloadRegistrar kRegisterYcsb(
    "ycsb", [](const WorkloadContext& ctx) -> std::unique_ptr<WorkloadGenerator> {
      return std::make_unique<YcsbWorkload>(ctx.config.cluster, ctx.config.ycsb);
    });
}  // namespace

}  // namespace lion
