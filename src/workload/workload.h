// Workload generator interface.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace lion {

/// Produces the stream of transactions the driver feeds into a protocol.
/// Implementations: YCSB, TPC-C, and dynamic wrappers that shift hotspots
/// over simulated time (Sec. VI-C2).
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  virtual std::string name() const = 0;

  /// Generates the next transaction. `now` lets dynamic workloads pick the
  /// active phase; `rng` is the experiment's deterministic generator.
  virtual TxnPtr Next(TxnId id, SimTime now, Rng* rng) = 0;
};

}  // namespace lion
