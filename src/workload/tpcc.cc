#include "workload/tpcc.h"

#include <set>

#include "harness/registry.h"

namespace lion {

TpccWorkload::TpccWorkload(const ClusterConfig& cluster, const TpccConfig& config)
    : num_nodes_(cluster.num_nodes),
      num_warehouses_(cluster.total_partitions()),
      config_(config) {}

void TpccWorkload::Load(Cluster* cluster) {
  // Every key below carries a table tag in its high bits, so all of them
  // land in the store's sparse side table; reserving the exact row count up
  // front replaces a cascade of doubling rehashes per warehouse with one.
  const uint64_t rows_per_warehouse =
      1 +
      static_cast<uint64_t>(config_.districts_per_warehouse) *
          (1 + static_cast<uint64_t>(config_.customers_per_district)) +
      2 * static_cast<uint64_t>(config_.items);
  for (PartitionId w = 0; w < num_warehouses_; ++w) {
    PartitionStore* store = cluster->store(w);
    store->ReserveSparse(rows_per_warehouse);
    store->Insert(MakeKey(kWarehouse, 0), 0);
    for (int d = 0; d < config_.districts_per_warehouse; ++d) {
      store->Insert(MakeKey(kDistrict, d), 1);  // value: next_o_id seed
      for (int c = 0; c < config_.customers_per_district; ++c) {
        store->Insert(
            MakeKey(kCustomer, d * config_.customers_per_district + c), 0);
      }
    }
    for (int i = 0; i < config_.items; ++i) {
      store->Insert(MakeKey(kItem, i), 100 + i);
      store->Insert(MakeKey(kStock, i), 91);  // s_quantity
    }
  }
}

PartitionId TpccWorkload::PickWarehouse(Rng* rng) const {
  if (config_.skew_factor > 0.0 && rng->Bernoulli(config_.skew_factor)) {
    int per_node = num_warehouses_ / num_nodes_;
    int idx = static_cast<int>(rng->Uniform(per_node));
    return config_.hot_node + idx * num_nodes_;
  }
  return static_cast<PartitionId>(rng->Uniform(num_warehouses_));
}

PartitionId TpccWorkload::RemoteWarehouse(PartitionId home, Rng* rng) const {
  // "The same customer makes purchases from different warehouses over time"
  // (Sec. VI-A1): each warehouse's customers have a stable partner
  // warehouse, giving the co-access structure the planner can exploit.
  PartitionId partner = home ^ 1;
  if (partner >= num_warehouses_) partner = home > 0 ? home - 1 : home;
  if (partner != home) return partner;
  for (int attempt = 0; attempt < 32; ++attempt) {
    PartitionId w = static_cast<PartitionId>(rng->Uniform(num_warehouses_));
    if (w != home) return w;
  }
  return home;
}

TxnPtr TpccWorkload::Next(TxnId id, SimTime now, Rng* rng) {
  double r = rng->NextDouble();
  if (r < config_.payment_ratio) return PaymentTxn(id, now, rng);
  r -= config_.payment_ratio;
  if (r < config_.delivery_ratio) return DeliveryTxn(id, now, rng);
  r -= config_.delivery_ratio;
  if (r < config_.order_status_ratio) return OrderStatusTxn(id, now, rng);
  r -= config_.order_status_ratio;
  if (r < config_.stock_level_ratio) return StockLevelTxn(id, now, rng);
  return NewOrderTxn(id, now, rng);
}

TxnPtr TpccWorkload::NewOrderTxn(TxnId id, SimTime now, Rng* rng) {
  auto txn = std::make_unique<Transaction>(id, now);
  txn->set_extra_compute(config_.think_time);
  PartitionId w = PickWarehouse(rng);
  int d = static_cast<int>(rng->Uniform(config_.districts_per_warehouse));
  int c = static_cast<int>(rng->Uniform(config_.customers_per_district));
  bool remote = config_.remote_ratio > 0.0 && rng->Bernoulli(config_.remote_ratio);
  PartitionId remote_w = remote ? RemoteWarehouse(w, rng) : w;

  auto add = [&txn](PartitionId pid, Key key, OpType type, Value v = 0,
                    bool insert = false) {
    Operation op;
    op.partition = pid;
    op.key = key;
    op.type = type;
    op.is_insert = insert;
    op.write_value = v;
    txn->ops().push_back(op);
  };

  // Warehouse tax rate (read), district next_o_id (read-modify-write: the
  // classic contention point), customer discount (read).
  add(w, MakeKey(kWarehouse, 0), OpType::kRead);
  add(w, MakeKey(kDistrict, d), OpType::kWrite, id);  // bump next_o_id
  add(w, MakeKey(kCustomer, d * config_.customers_per_district + c),
      OpType::kRead);
  // Insert ORDER and NEW-ORDER rows (keys unique per transaction).
  add(w, MakeKey(kOrder, id), OpType::kWrite, id, /*insert=*/true);
  add(w, MakeKey(kNewOrder, id), OpType::kWrite, id, /*insert=*/true);

  int lines = static_cast<int>(
      rng->UniformRange(config_.min_order_lines, config_.max_order_lines));
  for (int l = 0; l < lines; ++l) {
    uint64_t item = rng->Uniform(config_.items);
    // ITEM is replicated read-only: read it at the home warehouse.
    add(w, MakeKey(kItem, item), OpType::kRead);
    // Stock read-modify-write, possibly at the remote warehouse: the last
    // line goes remote in a remote NewOrder (TPC-C: ~1% per line; here the
    // txn-level remote_ratio knob drives the cross-partition share).
    PartitionId stock_w = (remote && l == lines - 1) ? remote_w : w;
    add(stock_w, MakeKey(kStock, item), OpType::kWrite, id);
    // Insert ORDER-LINE.
    add(w, MakeKey(kOrderLine, id * 16 + l), OpType::kWrite, id,
        /*insert=*/true);
  }
  return txn;
}

TxnPtr TpccWorkload::PaymentTxn(TxnId id, SimTime now, Rng* rng) {
  auto txn = std::make_unique<Transaction>(id, now);
  txn->set_extra_compute(config_.think_time);
  PartitionId w = PickWarehouse(rng);
  int d = static_cast<int>(rng->Uniform(config_.districts_per_warehouse));
  int c = static_cast<int>(rng->Uniform(config_.customers_per_district));
  bool remote_cust = config_.remote_payment_ratio > 0.0 &&
                     rng->Bernoulli(config_.remote_payment_ratio);
  PartitionId cust_w = remote_cust ? RemoteWarehouse(w, rng) : w;

  auto add = [&txn](PartitionId pid, Key key, OpType type, Value v = 0,
                    bool insert = false) {
    Operation op;
    op.partition = pid;
    op.key = key;
    op.type = type;
    op.is_insert = insert;
    op.write_value = v;
    txn->ops().push_back(op);
  };
  // Warehouse and district YTD updates, customer balance update, history row.
  add(w, MakeKey(kWarehouse, 0), OpType::kWrite, id);
  add(w, MakeKey(kDistrict, d), OpType::kWrite, id);
  add(cust_w, MakeKey(kCustomer, d * config_.customers_per_district + c),
      OpType::kWrite, id);
  add(w, MakeKey(kHistory, id), OpType::kWrite, id, /*insert=*/true);
  return txn;
}

TxnPtr TpccWorkload::DeliveryTxn(TxnId id, SimTime now, Rng* rng) {
  // Delivery processes the oldest undelivered order of every district of
  // one warehouse: per district, delete the NEW-ORDER row, update the ORDER
  // row's carrier id, and update the customer balance. Single-warehouse.
  auto txn = std::make_unique<Transaction>(id, now);
  txn->set_extra_compute(config_.think_time * 2);  // batch of 10 districts
  PartitionId w = PickWarehouse(rng);
  auto add = [&txn](PartitionId pid, Key key, OpType type, Value v = 0,
                    bool insert = false) {
    Operation op;
    op.partition = pid;
    op.key = key;
    op.type = type;
    op.is_insert = insert;
    op.write_value = v;
    txn->ops().push_back(op);
  };
  for (int d = 0; d < config_.districts_per_warehouse; ++d) {
    // The oldest undelivered order id is approximated by the district seed;
    // the NEW-ORDER delete and ORDER update are writes on per-txn keys.
    add(w, MakeKey(kNewOrder, id * 16 + d), OpType::kWrite, 0, /*insert=*/true);
    add(w, MakeKey(kOrder, id * 16 + d), OpType::kWrite, id, /*insert=*/true);
    int c = static_cast<int>(rng->Uniform(config_.customers_per_district));
    add(w, MakeKey(kCustomer, d * config_.customers_per_district + c),
        OpType::kWrite, id);
  }
  return txn;
}

TxnPtr TpccWorkload::OrderStatusTxn(TxnId id, SimTime now, Rng* rng) {
  // Read-only: customer row plus their most recent order and its lines.
  auto txn = std::make_unique<Transaction>(id, now);
  txn->set_extra_compute(config_.think_time);
  PartitionId w = PickWarehouse(rng);
  int d = static_cast<int>(rng->Uniform(config_.districts_per_warehouse));
  int c = static_cast<int>(rng->Uniform(config_.customers_per_district));
  auto add = [&txn](PartitionId pid, Key key) {
    Operation op;
    op.partition = pid;
    op.key = key;
    op.type = OpType::kRead;
    txn->ops().push_back(op);
  };
  add(w, MakeKey(kCustomer, d * config_.customers_per_district + c));
  add(w, MakeKey(kOrder, id));  // last order (approximated key)
  for (int l = 0; l < 5; ++l) add(w, MakeKey(kOrderLine, id * 16 + l));
  return txn;
}

TxnPtr TpccWorkload::StockLevelTxn(TxnId id, SimTime now, Rng* rng) {
  // Read-only: district next_o_id, then the stock rows of the items in the
  // last 20 orders, counting those below a threshold.
  auto txn = std::make_unique<Transaction>(id, now);
  txn->set_extra_compute(config_.think_time * 2);
  PartitionId w = PickWarehouse(rng);
  int d = static_cast<int>(rng->Uniform(config_.districts_per_warehouse));
  auto add = [&txn](PartitionId pid, Key key) {
    Operation op;
    op.partition = pid;
    op.key = key;
    op.type = OpType::kRead;
    txn->ops().push_back(op);
  };
  add(w, MakeKey(kDistrict, d));
  std::set<uint64_t> items;
  while (items.size() < 12) items.insert(rng->Uniform(config_.items));
  for (uint64_t item : items) add(w, MakeKey(kStock, item));
  return txn;
}


namespace {
const WorkloadRegistrar kRegisterTpcc(
    "tpcc", [](const WorkloadContext& ctx) -> std::unique_ptr<WorkloadGenerator> {
      auto workload =
          std::make_unique<TpccWorkload>(ctx.config.cluster, ctx.config.tpcc);
      // Preload warehouse/district/customer/item/stock rows so reads observe
      // real versions; the factory runs against the live cluster.
      workload->Load(ctx.cluster);
      return workload;
    });
}  // namespace

}  // namespace lion
