// Scaled TPC-C workload: NewOrder + Payment over warehouse partitions.
#pragma once

#include "replication/cluster.h"
#include "workload/workload.h"

namespace lion {

struct TpccConfig {
  int districts_per_warehouse = 10;
  int customers_per_district = 120;  // scaled from 3000
  int items = 1000;                  // scaled from 100000
  /// Order lines per NewOrder: uniform in [min, max] (spec: 5..15).
  int min_order_lines = 5;
  int max_order_lines = 15;
  /// Fraction of NewOrder transactions that buy from a remote warehouse
  /// ("the same customer makes purchases from different warehouses over
  /// time", Sec. VI-A1). Plays the role of the cross-partition ratio.
  double remote_ratio = 0.1;
  /// Fraction of Payment transactions in the mix (0 = pure NewOrder).
  double payment_ratio = 0.0;
  /// Payment: probability the customer belongs to a remote warehouse.
  double remote_payment_ratio = 0.15;
  /// Fractions of the remaining transaction types (evaluation default 0:
  /// the paper focuses on NewOrder; the full TPC-C mix is 4/4/4%).
  double delivery_ratio = 0.0;
  double order_status_ratio = 0.0;
  double stock_level_ratio = 0.0;
  /// Fraction of transactions targeting the hot node's warehouses.
  double skew_factor = 0.0;
  NodeId hot_node = 0;
  /// Coordinator-side business logic time per transaction.
  SimTime think_time = 5 * kMicrosecond;
};

/// TPC-C with one warehouse per partition. The nine relations are encoded
/// into the flat key space (table tag in the high bits); ITEM is read-only
/// and treated as locally replicated, per common practice.
class TpccWorkload : public WorkloadGenerator {
 public:
  /// Key-space tags for the nine relations.
  enum Table : uint64_t {
    kWarehouse = 1,
    kDistrict = 2,
    kCustomer = 3,
    kHistory = 4,
    kNewOrder = 5,
    kOrder = 6,
    kOrderLine = 7,
    kItem = 8,
    kStock = 9,
  };

  TpccWorkload(const ClusterConfig& cluster, const TpccConfig& config);

  std::string name() const override { return "tpcc"; }
  TxnPtr Next(TxnId id, SimTime now, Rng* rng) override;

  /// Loads warehouse/district/customer/item/stock rows into the stores so
  /// reads observe real versions (district rows carry the next_o_id
  /// contention point). Call once before driving transactions.
  void Load(Cluster* cluster);

  static Key MakeKey(Table table, uint64_t id) {
    return (static_cast<uint64_t>(table) << 40) | id;
  }

  TpccConfig& config() { return config_; }

 private:
  TxnPtr NewOrderTxn(TxnId id, SimTime now, Rng* rng);
  TxnPtr PaymentTxn(TxnId id, SimTime now, Rng* rng);
  TxnPtr DeliveryTxn(TxnId id, SimTime now, Rng* rng);
  TxnPtr OrderStatusTxn(TxnId id, SimTime now, Rng* rng);
  TxnPtr StockLevelTxn(TxnId id, SimTime now, Rng* rng);
  PartitionId PickWarehouse(Rng* rng) const;
  PartitionId RemoteWarehouse(PartitionId home, Rng* rng) const;

  int num_nodes_;
  int num_warehouses_;  // == total partitions
  TpccConfig config_;
};

}  // namespace lion
