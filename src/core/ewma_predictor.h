// EWMA/Holt baseline workload predictor.
//
// Same three-phase pipeline as the LSTM predictor (template tracking,
// cosine-β classing, forecast + wv(t, h) trigger — all inherited from
// TemplateClassPredictor), but the per-class model is Holt's linear
// exponential smoothing: a smoothed level plus a smoothed trend, refit over
// the class series each planning round and extrapolated `horizon` intervals
// ahead. Orders of magnitude cheaper than BPTT training, no RNG, and a
// one-flag A/B against the LSTM (`predictor.kind=ewma`): any throughput gap
// between the two isolates what forecast quality — not pipeline mechanics —
// buys Lion's pre-replication.
// Registered in PredictorRegistry as "ewma".
#pragma once

#include <cstdint>

#include "core/predictor_config.h"
#include "core/template_predictor.h"

namespace lion {

class EwmaPredictor : public TemplateClassPredictor {
 public:
  EwmaPredictor(PredictorConfig config, uint64_t seed = 7);

 protected:
  void FitModels() override;
  double ForecastClass(const WorkloadClass& cls, int horizon) const override;

 private:
  struct HoltModel : ClassModel {
    double level = 0.0;
    double trend = 0.0;
    double last_mse = 1e9;  // one-step-ahead MSE over the fitted series
    bool fitted = false;
  };
};

}  // namespace lion
