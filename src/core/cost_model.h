// The replica-placement and routing cost model (Sec. IV-B2, Eq. 3-4).
#pragma once

#include <vector>

#include "common/types.h"
#include "core/clump.h"
#include "replication/router_table.h"

namespace lion {

struct CostModelConfig {
  /// w_r: cost weight of remastering an existing secondary.
  double wr = 1.0;
  /// w_m: cost weight of migrating (copying) a missing replica. Migration
  /// moves the full partition, so it dominates remastering.
  double wm = 10.0;
  /// Routing-side weight of accessing a partition with no local replica
  /// (remote execution + 2PC participation).
  double remote_access = 4.0;
};

class GeoPlacement;

/// Evaluates Eq. 3/4 for clump placement, and the execution-cost side
/// f_c(n, T) used by the transaction router.
class CostModel {
 public:
  explicit CostModel(CostModelConfig config) : config_(config) {}

  /// Attaches region-aware pricing: cross-region migrations are scaled by
  /// the geo config's WAN multiplier. Null (the default) prices every pair
  /// equally. `geo` must outlive this model.
  void SetGeoPlacement(const GeoPlacement* geo) { geo_ = geo; }

  /// cnt_r(v, n) of Eq. 4: 1 + log2(f(v, primary) + 1) when `n` holds a
  /// live secondary of `v` (remastering a hot primary is more disruptive),
  /// else 0.
  double CntRemaster(const RouterTable& table, PartitionId v, NodeId n) const;

  /// cnt_m(v, n) of Eq. 4: 1 when `n` holds no replica of `v`, else 0 —
  /// scaled by the WAN multiplier when the copy (primary of v -> n) crosses
  /// regions, so the provisioner prices WAN moves correctly.
  double CntMigrate(const RouterTable& table, PartitionId v, NodeId n) const;

  /// f_o(n, c) of Eq. 3: wr * sum(cnt_r) + wm * sum(cnt_m).
  double PlacementCost(const RouterTable& table, const Clump& clump,
                       NodeId n) const;

  /// f_c(n, T) of Eq. 1: per-partition execution cost of running a
  /// transaction touching `parts` on node `n` — free on local primaries,
  /// w_r-scaled for remasterable secondaries, remote_access otherwise.
  double ExecutionCost(const RouterTable& table,
                       const std::vector<PartitionId>& parts, NodeId n) const;

  const CostModelConfig& config() const { return config_; }

 private:
  CostModelConfig config_;
  const GeoPlacement* geo_ = nullptr;
};

}  // namespace lion
