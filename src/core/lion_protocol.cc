#include "core/lion_protocol.h"

#include <cstdio>
#include <memory>

#include "harness/registry.h"

namespace lion {

/// One epoch's buffered transactions (batch execution, Sec. IV-D).
struct LionProtocol::Batch {
  struct Entry {
    std::shared_ptr<TxnPtr> txn;
    TxnDoneFn done;
    NodeId dst = kInvalidNode;
    bool convertible = false;   // single-node feasible at buffering time
    bool used_remaster = false; // issued async remaster requests
    bool remaster_failed = false;
  };
  std::vector<Entry> entries;
  /// Remaster requests still in flight for this batch; the batch's
  /// execution phase starts only after all are acknowledged (the barrier).
  int outstanding_remasters = 0;
  bool flushed = false;
};

LionProtocol::LionProtocol(Cluster* cluster, MetricsCollector* metrics,
                           LionOptions options,
                           std::unique_ptr<PredictorInterface> predictor)
    : Protocol(cluster, metrics),
      options_(options),
      engine_(cluster, metrics),
      router_(cluster, options.cost),
      cost_model_(options.cost),
      predictor_(std::move(predictor)),
      current_batch_(std::make_shared<Batch>()) {
  if (options_.enable_planner) {
    planner_ = std::make_unique<Planner>(cluster, options_.planner,
                                         predictor_.get());
  }
  geo_placement_ = GeoPlacement(options_.geo, &cluster->topology());
  cost_model_.SetGeoPlacement(&geo_placement_);
  if (planner_ != nullptr) planner_->SetGeoPlacement(&geo_placement_);
}

void LionProtocol::Start() {
  // Bootstrap-time provisioning: satisfy the min-replicas-per-region
  // constraint before any traffic (no-op when unconfigured).
  geo_placement_.EnsureRegionalReplicas(&cluster_->router(),
                                        cluster_->config().max_replicas);
  if (planner_ != nullptr) planner_->Start();
  if (options_.batch_mode) StartEpochTimer();
}

void LionProtocol::Stop() {
  Protocol::Stop();
  if (planner_ != nullptr) planner_->Stop();
  if (options_.batch_mode) FlushBatch();
}

void LionProtocol::OnEpoch(SimTime now) {
  (void)now;
  FlushBatch();
}

void LionProtocol::SubmitTxn(TxnPtr txn, TxnDoneFn done) {
  std::vector<PartitionId> parts = txn->Partitions();
  for (PartitionId p : parts) cluster_->router().RecordAccess(p);
  if (planner_ != nullptr) planner_->RecordTxn(parts, cluster_->sim()->Now());

  if (options_.batch_mode) {
    SubmitBatch(std::move(txn), std::move(done));
  } else {
    SubmitStandard(std::move(txn), std::move(done));
  }
}

bool LionProtocol::WorthRemastering(PartitionId pid, NodeId dst,
                                    size_t ops_on_pid) const {
  double remaster_cost =
      options_.cost.wr * cost_model_.CntRemaster(cluster_->router(), pid, dst);
  // Remote execution costs remote_access per partition plus a small per-op
  // component, so stealing mastership for a tiny remote working set only
  // happens when the partition is cold (low f in Eq. 4).
  double remote_cost =
      options_.cost.remote_access * (0.5 + 0.1 * static_cast<double>(ops_on_pid));
  return remaster_cost > 0.0 && remaster_cost <= remote_cost;
}

void LionProtocol::Execute(Transaction* txn, NodeId dst, ExecClass cls,
                           std::function<void(bool)> cb) {
  txn->set_exec_class(cls);
  TwoPhaseEngine::Options opts;
  opts.group_commit_visibility = options_.group_commit;
  engine_.Run(txn, dst, opts, std::move(cb));
}

void LionProtocol::SubmitStandard(TxnPtr txn, TxnDoneFn done) {
  std::vector<PartitionId> parts = txn->Partitions();
  NodeId dst = router_.Route(parts);

  // Classify the three cases of Sec. III against the routed node.
  std::vector<PartitionId> need_remaster;
  bool feasible = true;
  for (PartitionId p : parts) {
    if (cluster_->router().PrimaryOf(p) == dst) continue;
    if (cluster_->router().HasSecondary(dst, p) &&
        geo_placement_.AllowsPrimaryOn(cluster_->router(), p, dst) &&
        WorthRemastering(p, dst, txn->OpsOn(p).size())) {
      need_remaster.push_back(p);
    } else {
      feasible = false;  // case 3: some replica missing (or too hot to steal)
      break;
    }
  }

  Transaction* raw = txn.get();
  auto txn_shared = std::make_shared<TxnPtr>(std::move(txn));
  auto finish = [this, txn_shared, done](bool committed) {
    if (committed) {
      metrics_->OnCommit(**txn_shared, cluster_->sim()->Now());
      done(std::move(*txn_shared));
    } else {
      RetryAfterBackoff(std::move(*txn_shared), done);
    }
  };

  if (!feasible) {
    // Case 3: regular distributed transaction with 2PC.
    fallback_distributed_++;
    Execute(raw, dst, ExecClass::kDistributed, finish);
    return;
  }
  if (need_remaster.empty()) {
    // Case 1: every primary already local — direct single-node execution.
    Execute(raw, dst, ExecClass::kSingleNode, finish);
    return;
  }

  // Case 2: remaster the secondaries onto dst, then execute locally. If any
  // remaster conflicts (another node is converting the same partition), the
  // transaction falls back to distributed execution (Sec. III).
  remaster_requests_ += need_remaster.size();
  auto pending = std::make_shared<int>(static_cast<int>(need_remaster.size()));
  auto any_failed = std::make_shared<bool>(false);
  for (PartitionId p : need_remaster) {
    cluster_->remaster().Remaster(p, dst, [this, raw, dst, pending, any_failed,
                                           finish](bool ok) {
      if (!ok) *any_failed = true;
      if (--(*pending) > 0) return;
      if (*any_failed) {
        fallback_distributed_++;
        Execute(raw, dst, ExecClass::kDistributed, finish);
      } else {
        remaster_conversions_++;
        Execute(raw, dst, ExecClass::kRemastered, finish);
      }
    });
  }
}

void LionProtocol::SubmitBatch(TxnPtr txn, TxnDoneFn done) {
  std::vector<PartitionId> parts = txn->Partitions();
  NodeId dst = router_.Route(parts);

  Batch::Entry entry;
  entry.dst = dst;
  entry.done = std::move(done);
  entry.convertible = true;

  std::vector<PartitionId> need_remaster;
  for (PartitionId p : parts) {
    if (cluster_->router().PrimaryOf(p) == dst) continue;
    Transaction* raw_txn = txn.get();
    if (cluster_->router().HasSecondary(dst, p) &&
        geo_placement_.AllowsPrimaryOn(cluster_->router(), p, dst) &&
        WorthRemastering(p, dst, raw_txn->OpsOn(p).size())) {
      need_remaster.push_back(p);
    } else {
      entry.convertible = false;
      need_remaster.clear();
      break;
    }
  }

  entry.txn = std::make_shared<TxnPtr>(std::move(txn));
  std::shared_ptr<Batch> batch = current_batch_;
  batch->entries.push_back(std::move(entry));
  size_t entry_idx = batch->entries.size() - 1;

  // Asynchronous remastering (Sec. IV-D): issue the requests immediately,
  // do NOT wait — the executor keeps buffering subsequent transactions. The
  // batch index is carried in the callback to locate the context.
  if (!need_remaster.empty()) {
    batch->entries[entry_idx].used_remaster = true;
    remaster_requests_ += need_remaster.size();
    batch->outstanding_remasters += static_cast<int>(need_remaster.size());
    for (PartitionId p : need_remaster) {
      cluster_->remaster().Remaster(
          p, entry.dst, [this, batch, entry_idx](bool ok) {
            if (!ok) batch->entries[entry_idx].remaster_failed = true;
            batch->outstanding_remasters--;
            if (batch->flushed && batch->outstanding_remasters == 0) {
              ExecuteBatch(batch);
            }
          });
    }
  }

  if (batch->entries.size() >= options_.max_batch_size) FlushBatch();

  // After Stop() the epoch timer no longer flushes; a retry resubmitted
  // here (RetryAfterBackoff re-enters Submit) would otherwise sit in the
  // fresh batch forever. Schedule one more flush so its completion fires;
  // deferred an epoch so conflicting locks can clear first.
  if (stopped()) {
    cluster_->sim()->Schedule(cluster_->config().epoch_interval,
                              [this]() { FlushBatch(); });
  }
}

void LionProtocol::FlushBatch() {
  std::shared_ptr<Batch> batch = current_batch_;
  if (batch->entries.empty() || batch->flushed) return;
  current_batch_ = std::make_shared<Batch>();
  batch->flushed = true;
  // Barrier: execution starts only once every remastering request of the
  // batch has been acknowledged.
  if (batch->outstanding_remasters == 0) ExecuteBatch(batch);
}

void LionProtocol::ExecuteBatch(const std::shared_ptr<Batch>& batch) {
  for (auto& entry : batch->entries) {
    Transaction* raw = entry.txn->get();
    auto txn_shared = entry.txn;
    TxnDoneFn done = entry.done;
    auto finish = [this, txn_shared, done](bool committed) {
      if (committed) {
        metrics_->OnCommit(**txn_shared, cluster_->sim()->Now());
        done(std::move(*txn_shared));
      } else {
        RetryAfterBackoff(std::move(*txn_shared), done);
      }
    };

    // Re-derive the execution class against the post-remaster placement.
    bool single = true;
    for (PartitionId p : raw->Partitions()) {
      if (cluster_->router().PrimaryOf(p) != entry.dst) {
        single = false;
        break;
      }
    }
    ExecClass cls;
    if (!single) {
      cls = ExecClass::kDistributed;
      fallback_distributed_++;
    } else if (entry.used_remaster && !entry.remaster_failed) {
      cls = ExecClass::kRemastered;
      remaster_conversions_++;
    } else {
      cls = ExecClass::kSingleNode;
    }
    Execute(raw, entry.dst, cls, finish);
  }
}


// Self-registration of the Lion family (Table II): each variant toggles the
// partitioning strategy, batch execution, and the workload predictor. The
// predictor is resolved through PredictorRegistry by `predictor.kind`
// (default "lstm"; "off" disables it even for predicting variants) and
// owned by the protocol instance.
namespace {

std::unique_ptr<Protocol> MakeLionVariant(const ProtocolContext& ctx,
                                          PartitioningStrategy strategy,
                                          bool batch, bool predict) {
  LionOptions opts = ctx.config.lion;
  opts.planner.strategy = strategy;
  opts.batch_mode = batch;
  opts.group_commit = batch;
  std::unique_ptr<PredictorInterface> predictor;
  if (predict && ctx.config.predictor.kind != kPredictorOff) {
    // The seed offset keeps the predictor's RNG stream disjoint from the
    // workload/simulator streams derived from the same experiment seed.
    PredictorContext pctx{ctx.config.predictor, ctx.config.seed + 101};
    Status s = PredictorRegistry::Global().Create(ctx.config.predictor.kind,
                                                  pctx, &predictor);
    if (!s.ok()) {
      // ExperimentBuilder::Validate rejects unknown kinds before any factory
      // runs; reaching this means the protocol was constructed directly with
      // an unvalidated config. Surface the cause and fail construction.
      std::fprintf(stderr, "lion: %s\n", s.ToString().c_str());
      return nullptr;
    }
  }
  return std::make_unique<LionProtocol>(ctx.cluster, ctx.metrics, opts,
                                        std::move(predictor));
}

constexpr auto kRearrange = PartitioningStrategy::kReplicaRearrangement;
constexpr auto kSchism = PartitioningStrategy::kSchism;

// Standard-execution Lion with prediction (the non-batch figures).
const ProtocolRegistrar kRegisterLion(
    "Lion", ExecutionMode::kStandard, [](const ProtocolContext& ctx) {
      return MakeLionVariant(ctx, kRearrange, /*batch=*/false, /*predict=*/true);
    });
const ProtocolRegistrar kRegisterLionS(
    "Lion(S)", ExecutionMode::kStandard, [](const ProtocolContext& ctx) {
      return MakeLionVariant(ctx, kSchism, /*batch=*/false, /*predict=*/false);
    });
const ProtocolRegistrar kRegisterLionSW(
    "Lion(SW)", ExecutionMode::kStandard, [](const ProtocolContext& ctx) {
      return MakeLionVariant(ctx, kSchism, /*batch=*/false, /*predict=*/true);
    });
const ProtocolRegistrar kRegisterLionR(
    "Lion(R)", ExecutionMode::kStandard, [](const ProtocolContext& ctx) {
      return MakeLionVariant(ctx, kRearrange, /*batch=*/false, /*predict=*/false);
    });
const ProtocolRegistrar kRegisterLionRW(
    "Lion(RW)", ExecutionMode::kStandard, [](const ProtocolContext& ctx) {
      return MakeLionVariant(ctx, kRearrange, /*batch=*/false, /*predict=*/true);
    });
const ProtocolRegistrar kRegisterLionRB(
    "Lion(RB)", ExecutionMode::kBatch, [](const ProtocolContext& ctx) {
      return MakeLionVariant(ctx, kRearrange, /*batch=*/true, /*predict=*/false);
    });
// Lion(B) = full batch Lion: rearrangement + prediction + batch execution.
const ProtocolRegistrar kRegisterLionB(
    "Lion(B)", ExecutionMode::kBatch, [](const ProtocolContext& ctx) {
      return MakeLionVariant(ctx, kRearrange, /*batch=*/true, /*predict=*/true);
    });

}  // namespace

}  // namespace lion
