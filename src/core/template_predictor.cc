#include "core/template_predictor.h"

#include <algorithm>
#include <cmath>

#include "ml/matrix.h"

namespace lion {

TemplateClassPredictor::TemplateClassPredictor(PredictorConfig config,
                                               uint64_t seed)
    : config_(config), rng_(seed) {}

void TemplateClassPredictor::MaybeCloseIntervals(SimTime now) {
  const SimTime interval = config_.sample_interval;
  if (now - interval_start_ < interval) return;
  const uint64_t elapsed =
      static_cast<uint64_t>((now - interval_start_) / interval);
  interval_start_ += static_cast<SimTime>(elapsed) * interval;
  if (templates_.empty()) {
    // Nothing has been observed yet (predictor attached late, or the
    // first transaction arrives deep into the run): fast-forward the grid
    // in O(1). These intervals carry no data, so they don't count as
    // closed — intervals_closed() measures history actually recorded.
    return;
  }
  // The open interval's counts close into the first boundary; the rest of
  // the gap is idle (zeros). Only the trailing class_window entries survive
  // the ring, so a gap of any length costs O(window), not O(gap).
  const uint64_t zeros =
      std::min<uint64_t>(elapsed - 1, config_.class_window);
  for (Template& t : templates_) {
    t.ar.Push(t.current);
    for (uint64_t i = 0; i < zeros; ++i) t.ar.Push(0.0);
    t.current = 0.0;
  }
  intervals_closed_ += elapsed;
}

void TemplateClassPredictor::ForceCloseInterval(SimTime now) {
  interval_start_ = now;
  if (templates_.empty()) return;  // same invariant as MaybeCloseIntervals:
                                   // nothing recorded, nothing closed
  for (Template& t : templates_) {
    t.ar.Push(t.current);
    t.current = 0.0;
  }
  intervals_closed_++;
}

void TemplateClassPredictor::OnTxn(const std::vector<PartitionId>& parts,
                                   SimTime now) {
  MaybeCloseIntervals(now);
  auto it = template_index_.find(parts);
  size_t idx;
  if (it == template_index_.end()) {
    if (templates_.size() >= config_.max_templates) return;  // capped
    idx = templates_.size();
    Template t;
    t.parts = parts;
    t.ar.Reset(config_.class_window);
    // Align the new template's history with everyone else's.
    if (!templates_.empty()) {
      for (size_t i = 0; i < templates_[0].ar.size(); ++i) t.ar.Push(0.0);
    }
    templates_.push_back(std::move(t));
    template_index_.emplace(parts, idx);
  } else {
    idx = it->second;
  }
  templates_[idx].current += 1.0;
  templates_[idx].total += 1.0;
}

void TemplateClassPredictor::Reclassify() {
  // Greedy cosine clustering of template arrival-rate vectors: a template
  // joins the first class whose mean series is within distance β. Series
  // align at their ends (the shared recent history), so a template tracked
  // for fewer intervals than its class compares over the common suffix.
  std::vector<WorkloadClass> old = std::move(classes_);
  classes_.clear();
  for (size_t i = 0; i < templates_.size(); ++i) {
    templates_[i].ar.CopyTo(&series_scratch_);
    const Vec& series = series_scratch_;
    if (series.empty()) continue;
    bool placed = false;
    for (WorkloadClass& cls : classes_) {
      double sim = vecops::SuffixCosineSimilarity(series, cls.series);
      if (sim >= 1.0 - config_.beta) {
        // Merge: running mean of member series over the common suffix.
        double n = static_cast<double>(cls.members.size());
        size_t m = std::min(cls.series.size(), series.size());
        size_t coff = cls.series.size() - m;
        size_t soff = series.size() - m;
        for (size_t k = 0; k < m; ++k) {
          cls.series[coff + k] =
              (cls.series[coff + k] * n + series[soff + k]) / (n + 1.0);
        }
        cls.members.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      WorkloadClass cls;
      cls.members.push_back(i);
      cls.series = series;
      classes_.push_back(std::move(cls));
    }
  }
  // Reuse fitted models where the membership signature survived; otherwise
  // a fresh model fits below. (Cheap heuristic: match by first member.)
  for (WorkloadClass& cls : classes_) {
    for (WorkloadClass& prev : old) {
      if (prev.model != nullptr && !prev.members.empty() &&
          prev.members[0] == cls.members[0]) {
        cls.model = std::move(prev.model);
        break;
      }
    }
  }
}

double TemplateClassPredictor::VariationOverForecasts(
    std::vector<double>* forecasts) const {
  if (classes_.empty()) return 0.0;
  // Normalize by the hottest class's current rate so γ is scale-free.
  double max_rate = 1.0;
  for (const WorkloadClass& cls : classes_) {
    if (!cls.series.empty()) max_rate = std::max(max_rate, cls.series.back());
  }
  double sum = 0.0;
  for (const WorkloadClass& cls : classes_) {
    double current = cls.series.empty() ? 0.0 : cls.series.back();
    double future = ForecastClass(cls, config_.horizon);
    if (forecasts != nullptr) forecasts->push_back(future);
    double delta = (future - current) / max_rate;
    sum += delta * delta;
  }
  return std::sqrt(sum / static_cast<double>(classes_.size()));
}

double TemplateClassPredictor::WorkloadVariation(SimTime now) {
  MaybeCloseIntervals(now);
  return VariationOverForecasts(nullptr);
}

void TemplateClassPredictor::ForecastPartitions(SimTime now, int horizon,
                                                std::vector<double>* out) {
  MaybeCloseIntervals(now);
  out->clear();
  if (templates_.empty()) return;
  // Series only move when a sampling interval closes, so refit at most once
  // per closed interval: a consumer polling every epoch (10 ms) against a
  // 100 ms sampling interval reuses the fitted models nine ticks out of ten.
  if (fitted_at_intervals_ != intervals_closed_) {
    Reclassify();
    FitModels();
    fitted_at_intervals_ = intervals_closed_;
  }
  if (classes_.empty()) return;
  for (const WorkloadClass& cls : classes_) {
    double rate = ForecastClass(cls, horizon);
    if (rate <= 0.0 || cls.members.empty()) continue;
    // The class series is the mean over member templates, so the forecast
    // is each member's expected rate; a member loads every partition it
    // touches (a cross-partition transaction costs work on each leg).
    for (size_t ti : cls.members) {
      for (PartitionId p : templates_[ti].parts) {
        if (out->size() <= static_cast<size_t>(p)) out->resize(p + 1, 0.0);
        (*out)[p] += rate;
      }
    }
  }
}

void TemplateClassPredictor::AugmentGraph(HeatGraph* graph, SimTime now) {
  MaybeCloseIntervals(now);
  if (templates_.empty() || config_.wp <= 0.0) return;
  Reclassify();
  FitModels();

  // One forecast per class per round: the wv computation caches them for
  // the edge-injection loop below (an LSTM forward pass per class is the
  // expensive half of a planning round).
  forecast_scratch_.clear();
  double wv = VariationOverForecasts(&forecast_scratch_);
  if (wv <= config_.gamma) return;
  triggers_++;

  for (size_t c = 0; c < classes_.size(); ++c) {
    const WorkloadClass& cls = classes_[c];
    double current = cls.series.empty() ? 0.0 : cls.series.back();
    double future = forecast_scratch_[c];
    if (future <= current) continue;  // only rising workloads pre-replicate

    // Reservoir-sample member templates (Vitter's Algorithm R).
    std::vector<size_t> reservoir;
    size_t k = config_.sample_size;
    for (size_t i = 0; i < cls.members.size(); ++i) {
      if (reservoir.size() < k) {
        reservoir.push_back(cls.members[i]);
      } else {
        size_t j = static_cast<size_t>(rng_.Uniform(i + 1));
        if (j < k) reservoir[j] = cls.members[i];
      }
    }
    double share =
        future / std::max(1.0, static_cast<double>(cls.members.size()));
    for (size_t ti : reservoir) {
      const Template& t = templates_[ti];
      if (t.parts.size() < 2) continue;  // no co-access edge to strengthen
      double weight = config_.wp * config_.prediction_scale * share;
      if (weight > 0.0) graph->AddAccess(t.parts, weight);
    }
  }
}

}  // namespace lion
