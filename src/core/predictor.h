// LSTM-based workload prediction (Sec. IV-C).
//
// The three-phase pipeline (template tracking, cosine-β classing, the
// wv(t, h) trigger) lives in TemplateClassPredictor; this subclass supplies
// the paper's per-class forecasting model — a lightweight LSTM trained on
// the normalized arrival-rate series, retrained when its MSE degrades.
// Registered in PredictorRegistry as "lstm" (the default predictor.kind).
#pragma once

#include <cstdint>
#include <memory>

#include "core/predictor_config.h"
#include "core/template_predictor.h"
#include "ml/lstm.h"

namespace lion {

class LstmPredictor : public TemplateClassPredictor {
 public:
  LstmPredictor(PredictorConfig config, uint64_t seed = 7);

 protected:
  void FitModels() override;
  double ForecastClass(const WorkloadClass& cls, int horizon) const override;

 private:
  struct LstmModel : ClassModel {
    std::unique_ptr<LstmNetwork> lstm;
    double norm = 1.0;  // normalization factor for LSTM I/O
    double last_mse = 1e9;
  };

  uint64_t lstm_seed_;
};

}  // namespace lion
