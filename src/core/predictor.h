// LSTM-based workload prediction (Sec. IV-C).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/predictor_interface.h"
#include "ml/lstm.h"

namespace lion {

struct PredictorConfig {
  /// Sampling interval i of the arrival-rate history (Eq. 5).
  SimTime sample_interval = 100 * kMillisecond;
  /// Cap on tracked templates (hottest retained).
  size_t max_templates = 512;
  /// β: cosine-distance threshold below which templates merge into one
  /// workload class (similarity >= 1 - β).
  double beta = 0.15;
  /// Length of the arrival-rate window kept per class.
  size_t class_window = 64;
  /// LSTM input length (paper: preceding ten periods).
  int history_window = 10;
  /// h of Eq. 6: forecast horizon in sampling intervals.
  int horizon = 3;
  /// γ: workload-variation threshold that triggers pre-replication.
  double gamma = 0.10;
  /// w_p: weight coefficient of predicted workloads in the heat graph
  /// (0 disables the prediction mechanism's influence).
  double wp = 1.0;
  /// Scale from forecast arrival rate (txns/interval) to graph weight.
  double prediction_scale = 1.0;
  /// Reservoir sample size: templates drawn per rising workload class.
  size_t sample_size = 8;
  /// Training epochs per planning round, and the MSE above which a class
  /// model is retrained (Sec. IV-C: retrain to maintain accuracy).
  int train_epochs = 10;
  double retrain_mse = 0.01;
  LstmConfig lstm;  // defaults: 2 layers x 20 hidden, matching the paper
};

/// Realizes the three-phase prediction pipeline:
///   1. template identification — transactions accessing the same partition
///      set share a template whose arrival-rate history is tracked;
///   2. workload classification — templates whose arrival rates move
///      together (cosine distance < β) merge into workload classes;
///   3. time-series prediction — a per-class LSTM forecasts arrival rates;
///      rising classes contribute reservoir-sampled templates to the heat
///      graph with weight w_p, and wv(t, h) > γ signals pre-replication.
class LstmPredictor : public PredictorInterface {
 public:
  LstmPredictor(PredictorConfig config, uint64_t seed = 7);

  void OnTxn(const std::vector<PartitionId>& parts, SimTime now) override;
  void AugmentGraph(HeatGraph* graph, SimTime now) override;
  double WorkloadVariation(SimTime now) override;

  // --- introspection (tests, examples) --------------------------------------
  size_t num_templates() const { return templates_.size(); }
  size_t num_classes() const { return classes_.size(); }
  uint64_t intervals_closed() const { return intervals_closed_; }
  uint64_t pre_replications_triggered() const { return triggers_; }

  /// Closes the current sampling interval immediately (test hook).
  void ForceCloseInterval(SimTime now);

  /// Arrival-rate series of class `k` (normalized counts per interval).
  const std::vector<double>& ClassSeries(size_t k) const {
    return classes_[k].series;
  }

 private:
  struct Template {
    std::vector<PartitionId> parts;
    std::vector<double> ar;  // counts per closed interval
    double current = 0.0;    // counts in the open interval
    double total = 0.0;
  };
  struct WorkloadClass {
    std::vector<size_t> members;
    std::vector<double> series;  // mean arrival rate of member templates
    std::unique_ptr<LstmNetwork> lstm;
    double norm = 1.0;  // normalization factor for LSTM I/O
    double last_mse = 1e9;
  };

  void MaybeCloseIntervals(SimTime now);
  void Reclassify();
  void TrainModels();
  /// Forecast of class k, `horizon` intervals ahead (denormalized).
  double ForecastClass(const WorkloadClass& cls, int horizon) const;

  PredictorConfig config_;
  Rng rng_;
  SimTime interval_start_ = 0;
  uint64_t intervals_closed_ = 0;
  uint64_t triggers_ = 0;
  uint64_t lstm_seed_ = 0;
  std::map<std::vector<PartitionId>, size_t> template_index_;
  std::vector<Template> templates_;
  std::vector<WorkloadClass> classes_;
};

}  // namespace lion
