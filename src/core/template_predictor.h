// Shared three-phase prediction pipeline (Sec. IV-C), model-agnostic.
//
// Every concrete predictor (the paper's LSTM, the EWMA/Holt baseline)
// realizes the same three phases:
//   1. template identification — transactions accessing the same partition
//      set share a template whose arrival-rate history is tracked;
//   2. workload classification — templates whose arrival rates move
//      together (cosine distance < β) merge into workload classes;
//   3. time-series prediction — a per-class model forecasts arrival rates;
//      rising classes contribute reservoir-sampled templates to the heat
//      graph with weight w_p, and wv(t, h) > γ signals pre-replication.
// Phases 1 and 2 plus the wv trigger live here; subclasses supply only the
// per-class forecasting model via FitModels()/ForecastClass(). That keeps
// prediction-mechanism ablations honest: lstm-vs-ewma A/Bs differ in the
// forecast alone, never in bookkeeping.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/ring_window.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/predictor_config.h"
#include "core/predictor_interface.h"

namespace lion {

class TemplateClassPredictor : public PredictorInterface {
 public:
  void OnTxn(const std::vector<PartitionId>& parts, SimTime now) override;
  void AugmentGraph(HeatGraph* graph, SimTime now) override;
  double WorkloadVariation(SimTime now) override;
  void ForecastPartitions(SimTime now, int horizon,
                          std::vector<double>* out) override;

  // --- introspection (tests, examples) --------------------------------------
  size_t num_templates() const { return templates_.size(); }
  size_t num_classes() const { return classes_.size(); }
  /// Sampling intervals closed since the first observation. Before anything
  /// is observed nothing can close, so a predictor first fed at time T
  /// reports 0 here (not T / sample_interval).
  uint64_t intervals_closed() const { return intervals_closed_; }
  uint64_t pre_replications_triggered() const { return triggers_; }

  /// Closes the current sampling interval immediately (test hook).
  void ForceCloseInterval(SimTime now);

  /// Arrival-rate series of class `k` (mean counts per interval of its
  /// member templates). Out-of-range `k` returns an empty series.
  const std::vector<double>& ClassSeries(size_t k) const {
    static const std::vector<double> kEmpty;
    return k < classes_.size() ? classes_[k].series : kEmpty;
  }

 protected:
  TemplateClassPredictor(PredictorConfig config, uint64_t seed);

  /// Per-class model state; concrete predictors subclass this and downcast.
  /// Models follow their class across reclassification (matched by first
  /// member) so training state survives membership churn.
  struct ClassModel {
    virtual ~ClassModel() = default;
  };

  struct WorkloadClass {
    std::vector<size_t> members;
    std::vector<double> series;  // mean arrival rate of member templates
    std::unique_ptr<ClassModel> model;
  };

  /// Fits/updates every class's model from its current series. Called once
  /// per planning round, after reclassification and before forecasting.
  virtual void FitModels() = 0;

  /// Forecast of class `cls`, `horizon` intervals ahead (denormalized).
  virtual double ForecastClass(const WorkloadClass& cls,
                               int horizon) const = 0;

  std::vector<WorkloadClass>& classes() { return classes_; }
  const std::vector<WorkloadClass>& classes() const { return classes_; }

  PredictorConfig config_;

 private:
  struct Template {
    std::vector<PartitionId> parts;
    RingWindow ar;        // counts per closed interval (bounded window)
    double current = 0.0; // counts in the open interval
    double total = 0.0;
  };

  /// Closes every sampling interval boundary crossed since the last call.
  /// O(min(elapsed, class_window)) per template regardless of gap length:
  /// before the first observation the grid fast-forwards in O(1) (nothing
  /// to record, nothing counted), and a long idle gap appends at most one
  /// window of zeros since older entries would be evicted anyway.
  void MaybeCloseIntervals(SimTime now);
  void Reclassify();
  /// wv(t, h) over the current classes; when `forecasts` is non-null it
  /// receives each class's forecast in class order, so AugmentGraph pays
  /// one model inference per class per round instead of two.
  double VariationOverForecasts(std::vector<double>* forecasts) const;

  Rng rng_;
  SimTime interval_start_ = 0;
  uint64_t intervals_closed_ = 0;
  /// intervals_closed_ value at the last Reclassify+FitModels run by
  /// ForecastPartitions. Series only change when an interval closes, so a
  /// caller polling faster than the sampling interval (the meta-protocol's
  /// epoch loop) reuses the fitted models instead of retraining each tick.
  /// ~0 = never fitted.
  uint64_t fitted_at_intervals_ = ~uint64_t{0};
  uint64_t triggers_ = 0;
  std::map<std::vector<PartitionId>, size_t> template_index_;
  std::vector<Template> templates_;
  std::vector<WorkloadClass> classes_;
  std::vector<double> series_scratch_;    // reused linearization buffer
  std::vector<double> forecast_scratch_;  // per-round forecast cache
};

}  // namespace lion
